#include "ml/serialize.h"

#include <bit>
#include <cctype>
#include <cerrno>
#include <cstring>
#include <fstream>
#include <iomanip>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>
#include <stdexcept>

#if defined(__unix__) || defined(__APPLE__)
#define OISA_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

#include "core/crc32.h"

namespace oisa::ml {

namespace {

using core::Status;
using core::StatusOr;

constexpr std::string_view kMagic = "oisamodel";
constexpr unsigned kVersion = 1;
/// Bodies past this are a corrupt length field, not a real model (the
/// largest forests in this repo serialize to a few MB).
constexpr std::uint64_t kMaxBodyBytes = 1ull << 30;

// --- body writers (the version-0 text format, unchanged) --------------

void writeTreeBody(const DecisionTree& tree, std::ostream& os) {
  // Round-trip-exact float formatting for leaf probabilities.
  os << std::setprecision(std::numeric_limits<float>::max_digits10);
  os << "tree " << tree.nodes().size() << "\n";
  for (const DecisionTree::Node& n : tree.nodes()) {
    os << n.feature << ' ' << n.left << ' ' << n.right << ' '
       << n.probability << "\n";
  }
}

void writeForestBody(const RandomForest& forest, std::ostream& os) {
  os << "forest " << forest.trees().size() << "\n";
  for (const DecisionTree& tree : forest.trees()) {
    writeTreeBody(tree, os);
  }
}

// --- body readers (throw std::runtime_error; the envelope layer maps
// everything that escapes the format to Corruption) -------------------

DecisionTree readTreeBody(std::istream& is) {
  std::string tag;
  std::size_t count = 0;
  if (!(is >> tag >> count) || tag != "tree") {
    throw std::runtime_error("loadTree: bad header");
  }
  // A trained tree always has a root; the fast inference paths rely on
  // loaded trees being non-empty, so reject it here at the trust boundary.
  if (count == 0) {
    throw std::runtime_error("loadTree: empty node list");
  }
  std::vector<DecisionTree::Node> nodes(count);
  for (DecisionTree::Node& n : nodes) {
    if (!(is >> n.feature >> n.left >> n.right >> n.probability)) {
      throw std::runtime_error("loadTree: truncated node list");
    }
    if (n.feature >= 0 && (n.left >= count || n.right >= count)) {
      throw std::runtime_error("loadTree: child index out of range");
    }
  }
  DecisionTree tree;
  tree.setNodes(std::move(nodes));
  return tree;
}

RandomForest readForestBody(std::istream& is) {
  std::string tag;
  std::size_t count = 0;
  if (!(is >> tag >> count) || tag != "forest") {
    throw std::runtime_error("loadForest: bad header");
  }
  if (count == 0) {
    throw std::runtime_error("loadForest: empty forest");
  }
  std::vector<DecisionTree> trees;
  trees.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    trees.push_back(readTreeBody(is));
  }
  RandomForest forest;
  forest.setTrees(std::move(trees));
  return forest;
}

// --- envelope ---------------------------------------------------------

void writeEnvelope(std::ostream& os, const std::string& body) {
  std::ostringstream crcHex;
  crcHex << std::hex << std::setw(8) << std::setfill('0')
         << core::crc32(body);
  os << kMagic << ' ' << kVersion << ' ' << body.size() << ' '
     << crcHex.str() << '\n'
     << body;
}

StatusOr<std::string> readEnvelope(std::istream& is) {
  std::string magic;
  unsigned version = 0;
  std::uint64_t bytes = 0;
  std::string crcHex;
  if (!(is >> magic)) {
    return Status::corruption("model envelope: missing magic");
  }
  if (magic != kMagic) {
    return Status::corruption("model envelope: bad magic '" + magic + "'");
  }
  if (!(is >> version >> bytes >> crcHex)) {
    return Status::corruption("model envelope: malformed header");
  }
  if (version != kVersion) {
    return Status::corruption("model envelope: unsupported version " +
                              std::to_string(version));
  }
  if (bytes > kMaxBodyBytes) {
    return Status::corruption("model envelope: absurd body size " +
                              std::to_string(bytes));
  }
  if (is.get() != '\n') {
    return Status::corruption("model envelope: missing body separator");
  }
  std::string body(bytes, '\0');
  is.read(body.data(), static_cast<std::streamsize>(bytes));
  if (static_cast<std::uint64_t>(is.gcount()) != bytes) {
    return Status::corruption("model envelope: body truncated (" +
                              std::to_string(is.gcount()) + " of " +
                              std::to_string(bytes) + " bytes)");
  }
  std::uint32_t expected = 0;
  if (crcHex.size() != 8) {
    return Status::corruption("model envelope: malformed checksum field");
  }
  for (const char c : crcHex) {
    // Strictly the writer's lowercase spelling: a case-insensitive parse
    // would let single-bit flips of hex letters through undetected.
    const bool digit = c >= '0' && c <= '9';
    const bool lower = c >= 'a' && c <= 'f';
    if (!digit && !lower) {
      return Status::corruption("model envelope: malformed checksum field");
    }
    expected = expected * 16 +
               static_cast<std::uint32_t>(digit ? c - '0' : c - 'a' + 10);
  }
  if (core::crc32(body) != expected) {
    return Status::corruption("model envelope: checksum mismatch");
  }
  return body;
}

template <typename T, typename BodyReader>
StatusOr<T> readModel(std::istream& is, BodyReader readBody) {
  StatusOr<std::string> body = readEnvelope(is);
  if (!body.isOk()) return body.status();
  std::istringstream bodyStream(body.value());
  try {
    T model = readBody(bodyStream);
    // A body that checksummed but has bytes past the parsed model means
    // the writer and reader disagree — reject rather than drop data.
    std::string rest;
    if (bodyStream >> rest) {
      return Status::corruption("model body: trailing data '" + rest + "'");
    }
    return model;
  } catch (const std::exception& e) {
    return Status::corruption(std::string("model body: ") + e.what());
  }
}

}  // namespace

void saveTree(const DecisionTree& tree, std::ostream& os) {
  std::ostringstream body;
  writeTreeBody(tree, body);
  writeEnvelope(os, body.str());
}

void saveForest(const RandomForest& forest, std::ostream& os) {
  std::ostringstream body;
  writeForestBody(forest, body);
  writeEnvelope(os, body.str());
}

StatusOr<DecisionTree> readTree(std::istream& is) {
  return readModel<DecisionTree>(is, readTreeBody);
}

StatusOr<RandomForest> readForest(std::istream& is) {
  return readModel<RandomForest>(is, readForestBody);
}

DecisionTree loadTree(std::istream& is) {
  return readTree(is).valueOrThrow();
}

RandomForest loadForest(std::istream& is) {
  return readForest(is).valueOrThrow();
}

// --- binary envelope v2: flat forest banks ---------------------------

namespace {

// The sections are memcpy'd straight between memory and file, so the
// on-disk little-endian layout is only correct on a little-endian host.
// Every platform this repo targets qualifies; a big-endian port would
// add byte-swapping here rather than silently writing the wrong format.
static_assert(std::endian::native == std::endian::little,
              "flat bank envelope v2 requires a little-endian host");

constexpr char kBankMagic[8] = {'O', 'I', 'S', 'A', 'F', 'B', '2', '\n'};
constexpr std::uint32_t kBankVersion = 2;
constexpr std::size_t kBankHeaderBytes = 64;
constexpr std::size_t kBankCrcOffset = 56;

[[nodiscard]] constexpr std::size_t alignUp8(std::size_t x) noexcept {
  return (x + 7u) & ~std::size_t{7};
}

/// Byte offsets of the six sections (and the exact total file size) for
/// the given counts. Callers cap the counts first (node count fits
/// uint32, trees <= nodes, forests <= trees), which bounds every product
/// far below 2^64 — no overflow checks needed per term.
struct BankLayout {
  std::size_t forestBegin = 0;
  std::size_t roots = 0;
  std::size_t feature = 0;
  std::size_t left = 0;
  std::size_t right = 0;
  std::size_t prob = 0;
  std::size_t total = 0;
};

[[nodiscard]] BankLayout bankLayout(std::uint64_t forestCount,
                                    std::uint64_t treeCount,
                                    std::uint64_t nodeCount) noexcept {
  BankLayout l;
  std::size_t at = kBankHeaderBytes;
  l.forestBegin = at;
  at = alignUp8(at + (forestCount + 1) * sizeof(std::uint32_t));
  l.roots = at;
  at = alignUp8(at + treeCount * sizeof(std::uint32_t));
  l.feature = at;
  at = alignUp8(at + nodeCount * sizeof(std::int16_t));
  l.left = at;
  at = alignUp8(at + nodeCount * sizeof(std::uint32_t));
  l.right = at;
  at = alignUp8(at + nodeCount * sizeof(std::uint32_t));
  l.prob = at;
  at = alignUp8(at + nodeCount * sizeof(float));
  l.total = at;
  return l;
}

void put32(std::string& out, std::size_t at, std::uint32_t v) {
  std::memcpy(out.data() + at, &v, sizeof v);
}
void put64(std::string& out, std::size_t at, std::uint64_t v) {
  std::memcpy(out.data() + at, &v, sizeof v);
}
[[nodiscard]] std::uint32_t get32(const char* data, std::size_t at) {
  std::uint32_t v = 0;
  std::memcpy(&v, data + at, sizeof v);
  return v;
}
[[nodiscard]] std::uint64_t get64(const char* data, std::size_t at) {
  std::uint64_t v = 0;
  std::memcpy(&v, data + at, sizeof v);
  return v;
}

/// CRC-32 of the file image with the 4 checksum bytes treated as zero,
/// so the stored checksum guards every other byte — header fields,
/// section data, and the alignment padding (written as zeros) alike.
[[nodiscard]] std::uint32_t bankCrc(const char* data, std::size_t size) {
  static constexpr char kZeros[4] = {0, 0, 0, 0};
  std::uint32_t crc = core::crc32Init();
  crc = core::crc32Update(crc, std::string_view(data, kBankCrcOffset));
  crc = core::crc32Update(crc, std::string_view(kZeros, sizeof kZeros));
  crc = core::crc32Update(
      crc, std::string_view(data + kBankCrcOffset + 4,
                            size - kBankCrcOffset - 4));
  return core::crc32Final(crc);
}

template <typename T>
void putSection(std::string& out, std::size_t at, std::span<const T> data) {
  if (!data.empty()) {
    std::memcpy(out.data() + at, data.data(), data.size_bytes());
  }
}

}  // namespace

std::string serializeFlatBank(const FlatBankView& bank, std::uint32_t meta0,
                              std::uint32_t meta1) {
  core::throwIfError(validateFlatBank(bank));
  const std::uint64_t forestCount = bank.forestCount();
  const std::uint64_t treeCount = bank.roots.size();
  const std::uint64_t nodeCount = bank.nodeCount();
  const BankLayout l = bankLayout(forestCount, treeCount, nodeCount);
  std::string out(l.total, '\0');
  std::memcpy(out.data(), kBankMagic, sizeof kBankMagic);
  put32(out, 8, kBankVersion);
  put32(out, 12, bank.featureCount);
  put32(out, 16, meta0);
  put32(out, 20, meta1);
  put64(out, 24, forestCount);
  put64(out, 32, treeCount);
  put64(out, 40, nodeCount);
  put64(out, 48, l.total);
  // bytes [56,60) = crc (patched below), [60,64) = zero padding.
  putSection(out, l.forestBegin, bank.forestBegin);
  putSection(out, l.roots, bank.roots);
  putSection(out, l.feature, bank.feature);
  putSection(out, l.left, bank.left);
  putSection(out, l.right, bank.right);
  putSection(out, l.prob, bank.prob);
  put32(out, kBankCrcOffset, bankCrc(out.data(), out.size()));
  return out;
}

void writeFlatBank(std::ostream& os, const FlatBankView& bank,
                   std::uint32_t meta0, std::uint32_t meta1) {
  const std::string image = serializeFlatBank(bank, meta0, meta1);
  os.write(image.data(), static_cast<std::streamsize>(image.size()));
}

core::Status writeFlatBankFile(const std::string& path,
                               const FlatBankView& bank, std::uint32_t meta0,
                               std::uint32_t meta1) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  if (!os) {
    return Status::ioError("flat bank: cannot open '" + path +
                           "' for writing");
  }
  writeFlatBank(os, bank, meta0, meta1);
  os.flush();
  if (!os) {
    return Status::ioError("flat bank: write to '" + path + "' failed");
  }
  return Status::ok();
}

core::StatusOr<MappedForestBank> MappedForestBank::parse(
    std::shared_ptr<const char> storage, std::size_t size, bool mapped) {
  const auto corrupt = [](std::string what) {
    return Status::corruption("flat bank envelope: " + std::move(what));
  };
  const char* data = storage.get();
  if (size < kBankHeaderBytes) {
    return corrupt("file smaller than the header (" + std::to_string(size) +
                   " bytes)");
  }
  if (std::memcmp(data, kBankMagic, sizeof kBankMagic) != 0) {
    return corrupt("bad magic");
  }
  const std::uint32_t version = get32(data, 8);
  if (version != kBankVersion) {
    return corrupt("unsupported version " + std::to_string(version));
  }
  const std::uint32_t featureCount = get32(data, 12);
  const std::uint32_t meta0 = get32(data, 16);
  const std::uint32_t meta1 = get32(data, 20);
  const std::uint64_t forestCount = get64(data, 24);
  const std::uint64_t treeCount = get64(data, 32);
  const std::uint64_t nodeCount = get64(data, 40);
  const std::uint64_t fileBytes = get64(data, 48);
  if (fileBytes != size) {
    return corrupt("size mismatch: header says " + std::to_string(fileBytes) +
                   " bytes, file has " + std::to_string(size));
  }
  if (bankCrc(data, size) != get32(data, kBankCrcOffset)) {
    return corrupt("checksum mismatch");
  }
  // The CRC already vouches for writer-produced files; these caps reject
  // hand-crafted images whose counts would overflow the layout
  // arithmetic or break the inference invariants.
  if (nodeCount > std::numeric_limits<std::uint32_t>::max() ||
      treeCount > nodeCount || forestCount > treeCount + 1) {
    return corrupt("implausible section counts");
  }
  if (featureCount == 0 ||
      featureCount > static_cast<std::uint32_t>(
                         std::numeric_limits<std::int16_t>::max()) +
                         1u) {
    return corrupt("feature count " + std::to_string(featureCount) +
                   " outside the int16 node format");
  }
  const BankLayout l = bankLayout(forestCount, treeCount, nodeCount);
  if (l.total != size) {
    return corrupt("section counts disagree with file size");
  }
  MappedForestBank out;
  // Sections start 8-byte aligned relative to an mmap page / operator-new
  // base, so the reinterpret casts below are aligned loads.
  out.view_.forestBegin = std::span<const std::uint32_t>(
      reinterpret_cast<const std::uint32_t*>(data + l.forestBegin),
      forestCount + 1);
  out.view_.roots = std::span<const std::uint32_t>(
      reinterpret_cast<const std::uint32_t*>(data + l.roots), treeCount);
  out.view_.feature = std::span<const std::int16_t>(
      reinterpret_cast<const std::int16_t*>(data + l.feature), nodeCount);
  out.view_.left = std::span<const std::uint32_t>(
      reinterpret_cast<const std::uint32_t*>(data + l.left), nodeCount);
  out.view_.right = std::span<const std::uint32_t>(
      reinterpret_cast<const std::uint32_t*>(data + l.right), nodeCount);
  out.view_.prob = std::span<const float>(
      reinterpret_cast<const float*>(data + l.prob), nodeCount);
  out.view_.featureCount = featureCount;
  if (Status s = validateFlatBank(out.view_); !s.isOk()) return s;
  out.storage_ = std::move(storage);
  out.meta0_ = meta0;
  out.meta1_ = meta1;
  out.mapped_ = mapped;
  return out;
}

core::StatusOr<MappedForestBank> MappedForestBank::fromBuffer(
    std::string bytes) {
  // The buffer must outlive the view; park it in shared storage and
  // alias the character data. Any image large enough to pass the header
  // check is heap-allocated (no SSO), so the data is operator-new
  // aligned as parse() requires.
  auto owner = std::make_shared<const std::string>(std::move(bytes));
  const std::size_t size = owner->size();
  std::shared_ptr<const char> storage(owner, owner->data());
  return parse(std::move(storage), size, /*mapped=*/false);
}

core::StatusOr<MappedForestBank> MappedForestBank::open(
    const std::string& path) {
#if OISA_HAVE_MMAP
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd >= 0) {
    struct stat st{};
    if (::fstat(fd, &st) == 0 && st.st_size >= 0 &&
        static_cast<std::uint64_t>(st.st_size) >= kBankHeaderBytes) {
      const auto size = static_cast<std::size_t>(st.st_size);
      void* map = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
      ::close(fd);
      if (map != MAP_FAILED) {
        std::shared_ptr<const char> storage(
            static_cast<const char*>(map),
            [size](const char* p) { ::munmap(const_cast<char*>(p), size); });
        return parse(std::move(storage), size, /*mapped=*/true);
      }
      // mmap refused (unusual filesystem?): fall through to the read
      // path below, which reopens the file.
    } else {
      ::close(fd);
      // Tiny or stat-less file: let the read path produce the right
      // Corruption/IoError diagnostic.
    }
  }
#endif
  std::ifstream is(path, std::ios::binary);
  if (!is) {
    return Status::ioError("flat bank: cannot open '" + path + "'");
  }
  std::ostringstream buffer;
  buffer << is.rdbuf();
  if (is.bad()) {
    return Status::ioError("flat bank: read from '" + path + "' failed");
  }
  return fromBuffer(std::move(buffer).str());
}

}  // namespace oisa::ml
