#include "ml/serialize.h"

#include <cctype>
#include <iomanip>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "core/crc32.h"

namespace oisa::ml {

namespace {

using core::Status;
using core::StatusOr;

constexpr std::string_view kMagic = "oisamodel";
constexpr unsigned kVersion = 1;
/// Bodies past this are a corrupt length field, not a real model (the
/// largest forests in this repo serialize to a few MB).
constexpr std::uint64_t kMaxBodyBytes = 1ull << 30;

// --- body writers (the version-0 text format, unchanged) --------------

void writeTreeBody(const DecisionTree& tree, std::ostream& os) {
  // Round-trip-exact float formatting for leaf probabilities.
  os << std::setprecision(std::numeric_limits<float>::max_digits10);
  os << "tree " << tree.nodes().size() << "\n";
  for (const DecisionTree::Node& n : tree.nodes()) {
    os << n.feature << ' ' << n.left << ' ' << n.right << ' '
       << n.probability << "\n";
  }
}

void writeForestBody(const RandomForest& forest, std::ostream& os) {
  os << "forest " << forest.trees().size() << "\n";
  for (const DecisionTree& tree : forest.trees()) {
    writeTreeBody(tree, os);
  }
}

// --- body readers (throw std::runtime_error; the envelope layer maps
// everything that escapes the format to Corruption) -------------------

DecisionTree readTreeBody(std::istream& is) {
  std::string tag;
  std::size_t count = 0;
  if (!(is >> tag >> count) || tag != "tree") {
    throw std::runtime_error("loadTree: bad header");
  }
  // A trained tree always has a root; the fast inference paths rely on
  // loaded trees being non-empty, so reject it here at the trust boundary.
  if (count == 0) {
    throw std::runtime_error("loadTree: empty node list");
  }
  std::vector<DecisionTree::Node> nodes(count);
  for (DecisionTree::Node& n : nodes) {
    if (!(is >> n.feature >> n.left >> n.right >> n.probability)) {
      throw std::runtime_error("loadTree: truncated node list");
    }
    if (n.feature >= 0 && (n.left >= count || n.right >= count)) {
      throw std::runtime_error("loadTree: child index out of range");
    }
  }
  DecisionTree tree;
  tree.setNodes(std::move(nodes));
  return tree;
}

RandomForest readForestBody(std::istream& is) {
  std::string tag;
  std::size_t count = 0;
  if (!(is >> tag >> count) || tag != "forest") {
    throw std::runtime_error("loadForest: bad header");
  }
  if (count == 0) {
    throw std::runtime_error("loadForest: empty forest");
  }
  std::vector<DecisionTree> trees;
  trees.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    trees.push_back(readTreeBody(is));
  }
  RandomForest forest;
  forest.setTrees(std::move(trees));
  return forest;
}

// --- envelope ---------------------------------------------------------

void writeEnvelope(std::ostream& os, const std::string& body) {
  std::ostringstream crcHex;
  crcHex << std::hex << std::setw(8) << std::setfill('0')
         << core::crc32(body);
  os << kMagic << ' ' << kVersion << ' ' << body.size() << ' '
     << crcHex.str() << '\n'
     << body;
}

StatusOr<std::string> readEnvelope(std::istream& is) {
  std::string magic;
  unsigned version = 0;
  std::uint64_t bytes = 0;
  std::string crcHex;
  if (!(is >> magic)) {
    return Status::corruption("model envelope: missing magic");
  }
  if (magic != kMagic) {
    return Status::corruption("model envelope: bad magic '" + magic + "'");
  }
  if (!(is >> version >> bytes >> crcHex)) {
    return Status::corruption("model envelope: malformed header");
  }
  if (version != kVersion) {
    return Status::corruption("model envelope: unsupported version " +
                              std::to_string(version));
  }
  if (bytes > kMaxBodyBytes) {
    return Status::corruption("model envelope: absurd body size " +
                              std::to_string(bytes));
  }
  if (is.get() != '\n') {
    return Status::corruption("model envelope: missing body separator");
  }
  std::string body(bytes, '\0');
  is.read(body.data(), static_cast<std::streamsize>(bytes));
  if (static_cast<std::uint64_t>(is.gcount()) != bytes) {
    return Status::corruption("model envelope: body truncated (" +
                              std::to_string(is.gcount()) + " of " +
                              std::to_string(bytes) + " bytes)");
  }
  std::uint32_t expected = 0;
  if (crcHex.size() != 8) {
    return Status::corruption("model envelope: malformed checksum field");
  }
  for (const char c : crcHex) {
    // Strictly the writer's lowercase spelling: a case-insensitive parse
    // would let single-bit flips of hex letters through undetected.
    const bool digit = c >= '0' && c <= '9';
    const bool lower = c >= 'a' && c <= 'f';
    if (!digit && !lower) {
      return Status::corruption("model envelope: malformed checksum field");
    }
    expected = expected * 16 +
               static_cast<std::uint32_t>(digit ? c - '0' : c - 'a' + 10);
  }
  if (core::crc32(body) != expected) {
    return Status::corruption("model envelope: checksum mismatch");
  }
  return body;
}

template <typename T, typename BodyReader>
StatusOr<T> readModel(std::istream& is, BodyReader readBody) {
  StatusOr<std::string> body = readEnvelope(is);
  if (!body.isOk()) return body.status();
  std::istringstream bodyStream(body.value());
  try {
    T model = readBody(bodyStream);
    // A body that checksummed but has bytes past the parsed model means
    // the writer and reader disagree — reject rather than drop data.
    std::string rest;
    if (bodyStream >> rest) {
      return Status::corruption("model body: trailing data '" + rest + "'");
    }
    return model;
  } catch (const std::exception& e) {
    return Status::corruption(std::string("model body: ") + e.what());
  }
}

}  // namespace

void saveTree(const DecisionTree& tree, std::ostream& os) {
  std::ostringstream body;
  writeTreeBody(tree, body);
  writeEnvelope(os, body.str());
}

void saveForest(const RandomForest& forest, std::ostream& os) {
  std::ostringstream body;
  writeForestBody(forest, body);
  writeEnvelope(os, body.str());
}

StatusOr<DecisionTree> readTree(std::istream& is) {
  return readModel<DecisionTree>(is, readTreeBody);
}

StatusOr<RandomForest> readForest(std::istream& is) {
  return readModel<RandomForest>(is, readForestBody);
}

DecisionTree loadTree(std::istream& is) {
  return readTree(is).valueOrThrow();
}

RandomForest loadForest(std::istream& is) {
  return readForest(is).valueOrThrow();
}

}  // namespace oisa::ml
