#include "ml/serialize.h"

#include <iomanip>
#include <istream>
#include <limits>
#include <ostream>
#include <stdexcept>

namespace oisa::ml {

void saveTree(const DecisionTree& tree, std::ostream& os) {
  // Round-trip-exact float formatting for leaf probabilities.
  os << std::setprecision(std::numeric_limits<float>::max_digits10);
  os << "tree " << tree.nodes().size() << "\n";
  for (const DecisionTree::Node& n : tree.nodes()) {
    os << n.feature << ' ' << n.left << ' ' << n.right << ' '
       << n.probability << "\n";
  }
}

DecisionTree loadTree(std::istream& is) {
  std::string tag;
  std::size_t count = 0;
  if (!(is >> tag >> count) || tag != "tree") {
    throw std::runtime_error("loadTree: bad header");
  }
  // A trained tree always has a root; the fast inference paths rely on
  // loaded trees being non-empty, so reject it here at the trust boundary.
  if (count == 0) {
    throw std::runtime_error("loadTree: empty node list");
  }
  std::vector<DecisionTree::Node> nodes(count);
  for (DecisionTree::Node& n : nodes) {
    if (!(is >> n.feature >> n.left >> n.right >> n.probability)) {
      throw std::runtime_error("loadTree: truncated node list");
    }
    if (n.feature >= 0 &&
        (n.left >= count || n.right >= count)) {
      throw std::runtime_error("loadTree: child index out of range");
    }
  }
  DecisionTree tree;
  tree.setNodes(std::move(nodes));
  return tree;
}

void saveForest(const RandomForest& forest, std::ostream& os) {
  os << "forest " << forest.trees().size() << "\n";
  for (const DecisionTree& tree : forest.trees()) {
    saveTree(tree, os);
  }
}

RandomForest loadForest(std::istream& is) {
  std::string tag;
  std::size_t count = 0;
  if (!(is >> tag >> count) || tag != "forest") {
    throw std::runtime_error("loadForest: bad header");
  }
  if (count == 0) {
    throw std::runtime_error("loadForest: empty forest");
  }
  std::vector<DecisionTree> trees;
  trees.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    trees.push_back(loadTree(is));
  }
  RandomForest forest;
  forest.setTrees(std::move(trees));
  return forest;
}

}  // namespace oisa::ml
