#include "ml/dataset.h"

#include <numeric>

namespace oisa::ml {

std::size_t Dataset::positiveCount() const noexcept {
  return static_cast<std::size_t>(
      std::accumulate(labels_.begin(), labels_.end(), std::size_t{0}));
}

}  // namespace oisa::ml
