#include "ml/dataset.h"

#include <bit>
#include <numeric>

namespace oisa::ml {

std::size_t PackedView::positiveCount() const noexcept {
  std::size_t pos = 0;
  for (std::size_t w = 0; w < wordCount; ++w) pos += std::popcount(labels[w]);
  return pos;
}

std::size_t Dataset::positiveCount() const noexcept {
  return static_cast<std::size_t>(
      std::accumulate(labels_.begin(), labels_.end(), std::size_t{0}));
}

const PackedView& Dataset::packed() const {
  if (!packedDirty_) return packedView_;
  const std::size_t rows = rowCount();
  const std::size_t words = (rows + 63) / 64;
  // featureCount_ feature columns followed by the label column.
  packedStorage_.assign((featureCount_ + 1) * words, 0);
  for (std::size_t r = 0; r < rows; ++r) {
    const std::uint64_t bit = std::uint64_t{1} << (r % 64);
    const std::size_t w = r / 64;
    const std::uint8_t* row = data_.data() + r * featureCount_;
    for (std::size_t f = 0; f < featureCount_; ++f) {
      if (row[f] != 0) packedStorage_[f * words + w] |= bit;
    }
    if (labels_[r] != 0) packedStorage_[featureCount_ * words + w] |= bit;
  }
  packedView_.rowCount = rows;
  packedView_.wordCount = words;
  packedView_.columns.resize(featureCount_);
  for (std::size_t f = 0; f < featureCount_; ++f) {
    packedView_.columns[f] = packedStorage_.data() + f * words;
  }
  packedView_.labels = packedStorage_.data() + featureCount_ * words;
  packedDirty_ = false;
  return packedView_;
}

}  // namespace oisa::ml
