// oisa_ml: common interface of binary classifiers.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <stdexcept>
#include <vector>

namespace oisa::ml {

/// A trained binary classifier over binary feature vectors.
class BinaryClassifier {
 public:
  virtual ~BinaryClassifier() = default;

  /// Predicted class for one feature vector.
  [[nodiscard]] virtual bool predict(
      std::span<const std::uint8_t> features) const = 0;

  /// Predicted probability of the positive class in [0, 1].
  [[nodiscard]] virtual double predictProbability(
      std::span<const std::uint8_t> features) const = 0;

  /// Batched inference over 64 feature rows at once. featureWords[f]
  /// carries feature f of lane L in bit L (the column-major packed layout
  /// of ml::PackedView); `probabilities` receives the 64 per-lane
  /// probabilities and the returned word has bit L set when lane L is
  /// predicted positive. Lane results equal the scalar paths bit for bit.
  /// The default unpacks lanes through the scalar predictProbability();
  /// word-parallel substrates (DecisionTree, RandomForest) override it.
  [[nodiscard]] virtual std::uint64_t predictBatch(
      std::span<const std::uint64_t> featureWords,
      std::span<double> probabilities) const {
    if (probabilities.size() < 64) {
      throw std::invalid_argument(
          "BinaryClassifier::predictBatch: need 64 probability slots");
    }
    std::vector<std::uint8_t> row(featureWords.size());
    std::uint64_t predictions = 0;
    for (std::size_t lane = 0; lane < 64; ++lane) {
      for (std::size_t f = 0; f < row.size(); ++f) {
        row[f] = static_cast<std::uint8_t>((featureWords[f] >> lane) & 1u);
      }
      const double p = predictProbability(row);
      probabilities[lane] = p;
      if (p >= 0.5) predictions |= std::uint64_t{1} << lane;
    }
    return predictions;
  }
};

}  // namespace oisa::ml
