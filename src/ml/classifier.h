// oisa_ml: common interface of binary classifiers.
#pragma once

#include <cstdint>
#include <memory>
#include <span>

namespace oisa::ml {

/// A trained binary classifier over binary feature vectors.
class BinaryClassifier {
 public:
  virtual ~BinaryClassifier() = default;

  /// Predicted class for one feature vector.
  [[nodiscard]] virtual bool predict(
      std::span<const std::uint8_t> features) const = 0;

  /// Predicted probability of the positive class in [0, 1].
  [[nodiscard]] virtual double predictProbability(
      std::span<const std::uint8_t> features) const = 0;
};

}  // namespace oisa::ml
