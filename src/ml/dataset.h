// oisa_ml: binary-feature dataset for supervised classification.
//
// The timing-error prediction features of the paper are all single bits
// (operand bits of the current and previous cycle, plus two RTL output
// bits), so features are stored as bytes in a dense row-major matrix.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

namespace oisa::ml {

/// Dense binary-feature dataset with boolean labels.
class Dataset {
 public:
  explicit Dataset(std::size_t featureCount) : featureCount_(featureCount) {
    if (featureCount == 0) {
      throw std::invalid_argument("Dataset: featureCount must be > 0");
    }
  }

  void addRow(std::span<const std::uint8_t> features, bool label) {
    if (features.size() != featureCount_) {
      throw std::invalid_argument("Dataset: row has wrong feature count");
    }
    data_.insert(data_.end(), features.begin(), features.end());
    labels_.push_back(label ? 1 : 0);
  }

  [[nodiscard]] std::size_t rowCount() const noexcept {
    return labels_.size();
  }
  [[nodiscard]] std::size_t featureCount() const noexcept {
    return featureCount_;
  }
  [[nodiscard]] std::span<const std::uint8_t> row(std::size_t i) const {
    return {data_.data() + i * featureCount_, featureCount_};
  }
  [[nodiscard]] bool label(std::size_t i) const { return labels_.at(i) != 0; }
  [[nodiscard]] std::uint8_t feature(std::size_t row,
                                     std::size_t col) const noexcept {
    return data_[row * featureCount_ + col];
  }

  /// Number of positive labels (convenience for imbalance checks).
  [[nodiscard]] std::size_t positiveCount() const noexcept;

  void reserve(std::size_t rows) {
    data_.reserve(rows * featureCount_);
    labels_.reserve(rows);
  }

 private:
  std::size_t featureCount_;
  std::vector<std::uint8_t> data_;
  std::vector<std::uint8_t> labels_;
};

}  // namespace oisa::ml
