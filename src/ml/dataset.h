// oisa_ml: binary-feature dataset for supervised classification.
//
// The timing-error prediction features of the paper are all single bits
// (operand bits of the current and previous cycle, plus two RTL output
// bits), so the dataset carries two synchronized representations:
//
//  * a dense row-major byte matrix (one byte per feature) — the layout the
//    scalar reference paths and the tests address row by row, and
//  * a column-major *packed* view — one `uint64_t` word per 64 rows per
//    feature, labels packed the same way — the substrate of the popcount
//    CART trainer and the 64-lane batched forest inference
//    (the BatchEvaluator playbook applied to the ML layer).
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

namespace oisa::ml {

/// Non-owning column-major packed view of a binary dataset. Column f is
/// `wordCount` words; bit (r % 64) of word (r / 64) holds feature f of row
/// r. Labels are packed identically. Tail bits past `rowCount` are zero —
/// trainers and batched predictors rely on that invariant.
struct PackedView {
  std::size_t rowCount = 0;
  std::size_t wordCount = 0;                  ///< ceil(rowCount / 64)
  std::vector<const std::uint64_t*> columns;  ///< one pointer per feature
  const std::uint64_t* labels = nullptr;      ///< wordCount words

  [[nodiscard]] std::size_t featureCount() const noexcept {
    return columns.size();
  }
  /// Number of positive labels (a popcount over the label words).
  [[nodiscard]] std::size_t positiveCount() const noexcept;
};

/// Dense binary-feature dataset with boolean labels.
class Dataset {
 public:
  explicit Dataset(std::size_t featureCount) : featureCount_(featureCount) {
    if (featureCount == 0) {
      throw std::invalid_argument("Dataset: featureCount must be > 0");
    }
  }

  // The packed cache holds pointers into this object's own storage, so
  // copies must not inherit it (they rebuild on demand); moves keep it —
  // the pointed-to heap buffer transfers — but re-dirty the source.
  Dataset(const Dataset& other)
      : featureCount_(other.featureCount_),
        data_(other.data_),
        labels_(other.labels_) {}
  Dataset& operator=(const Dataset& other) {
    if (this != &other) {
      featureCount_ = other.featureCount_;
      data_ = other.data_;
      labels_ = other.labels_;
      packedStorage_.clear();
      packedView_ = {};
      packedDirty_ = true;
    }
    return *this;
  }
  Dataset(Dataset&& other) noexcept
      : featureCount_(other.featureCount_),
        data_(std::move(other.data_)),
        labels_(std::move(other.labels_)),
        packedStorage_(std::move(other.packedStorage_)),
        packedView_(std::move(other.packedView_)),
        packedDirty_(other.packedDirty_) {
    other.packedView_ = {};
    other.packedDirty_ = true;
  }
  Dataset& operator=(Dataset&& other) noexcept {
    if (this != &other) {
      featureCount_ = other.featureCount_;
      data_ = std::move(other.data_);
      labels_ = std::move(other.labels_);
      packedStorage_ = std::move(other.packedStorage_);
      packedView_ = std::move(other.packedView_);
      packedDirty_ = other.packedDirty_;
      other.packedView_ = {};
      other.packedDirty_ = true;
    }
    return *this;
  }

  void addRow(std::span<const std::uint8_t> features, bool label) {
    if (features.size() != featureCount_) {
      throw std::invalid_argument("Dataset: row has wrong feature count");
    }
    data_.insert(data_.end(), features.begin(), features.end());
    labels_.push_back(label ? 1 : 0);
    packedDirty_ = true;
  }

  [[nodiscard]] std::size_t rowCount() const noexcept {
    return labels_.size();
  }
  [[nodiscard]] std::size_t featureCount() const noexcept {
    return featureCount_;
  }
  [[nodiscard]] std::span<const std::uint8_t> row(std::size_t i) const {
    return {data_.data() + i * featureCount_, featureCount_};
  }
  [[nodiscard]] bool label(std::size_t i) const { return labels_.at(i) != 0; }
  [[nodiscard]] std::uint8_t feature(std::size_t row,
                                     std::size_t col) const noexcept {
    return data_[row * featureCount_ + col];
  }

  /// Number of positive labels (convenience for imbalance checks).
  [[nodiscard]] std::size_t positiveCount() const noexcept;

  /// The column-major packed view of the current rows. Built lazily on
  /// first use and cached until the next addRow; the returned reference
  /// (and the words it points into) stays valid until then. The first call
  /// after a mutation is not safe to race — pack before sharing across
  /// threads.
  [[nodiscard]] const PackedView& packed() const;

  void reserve(std::size_t rows) {
    data_.reserve(rows * featureCount_);
    labels_.reserve(rows);
  }

 private:
  std::size_t featureCount_;
  std::vector<std::uint8_t> data_;
  std::vector<std::uint8_t> labels_;
  // Lazily built packed mirror of data_/labels_ (see packed()).
  mutable std::vector<std::uint64_t> packedStorage_;
  mutable PackedView packedView_;
  mutable bool packedDirty_ = true;
};

}  // namespace oisa::ml
