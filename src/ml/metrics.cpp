#include "ml/metrics.h"

namespace oisa::ml {

ConfusionMatrix evaluate(const BinaryClassifier& model, const Dataset& data) {
  ConfusionMatrix cm;
  for (std::size_t i = 0; i < data.rowCount(); ++i) {
    cm.add(model.predict(data.row(i)), data.label(i));
  }
  return cm;
}

}  // namespace oisa::ml
