#include "ml/importance.h"

#include <cmath>
#include <numeric>
#include <utility>

namespace oisa::ml {

std::vector<double> featureImportance(const DecisionTree& tree,
                                      std::size_t featureCount) {
  std::vector<double> importance(featureCount, 0.0);
  if (!tree.trained()) return importance;
  // Iterative walk carrying depth; weight = 2^-depth approximates the
  // fraction of samples reaching the node.
  std::vector<std::pair<std::uint32_t, int>> stack{{0u, 0}};
  const auto& nodes = tree.nodes();
  while (!stack.empty()) {
    const auto [idx, depth] = stack.back();
    stack.pop_back();
    const auto& node = nodes[idx];
    if (node.feature < 0) continue;
    if (static_cast<std::size_t>(node.feature) < featureCount) {
      importance[static_cast<std::size_t>(node.feature)] +=
          std::ldexp(1.0, -depth);
    }
    stack.emplace_back(node.left, depth + 1);
    stack.emplace_back(node.right, depth + 1);
  }
  const double total =
      std::accumulate(importance.begin(), importance.end(), 0.0);
  if (total > 0.0) {
    for (double& v : importance) v /= total;
  }
  return importance;
}

std::vector<double> featureImportance(const RandomForest& forest,
                                      std::size_t featureCount) {
  std::vector<double> importance(featureCount, 0.0);
  if (!forest.trained()) return importance;
  for (const DecisionTree& tree : forest.trees()) {
    const auto one = featureImportance(tree, featureCount);
    for (std::size_t i = 0; i < featureCount; ++i) importance[i] += one[i];
  }
  const double total =
      std::accumulate(importance.begin(), importance.end(), 0.0);
  if (total > 0.0) {
    for (double& v : importance) v /= total;
  }
  return importance;
}

}  // namespace oisa::ml
