// oisa_ml: Random Forest classifier (bagging + feature subsampling).
//
// The paper's model of choice: "RFC alleviates overfitting by developing
// more than one decision tree and using their average result as final
// prediction". Deterministic given the seed. Training runs on the packed
// popcount substrate (fit on a Dataset or a PackedView); the seed row-scan
// pipeline is retained as fitReference() and grows *identical* trees.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "ml/decision_tree.h"

namespace oisa::ml {

/// Forest growth controls.
struct ForestParams {
  std::size_t treeCount = 10;
  TreeParams tree{};  ///< tree.featuresPerSplit 0 = auto (sqrt(featureCount))
  bool bootstrap = true;  ///< sample rows with replacement per tree
};

/// Random Forest of CART trees; prediction is the mean tree probability.
class RandomForest final : public BinaryClassifier {
 public:
  /// Packed popcount training (the default path). The Dataset overload
  /// delegates to the packed view; both draw the same bootstrap samples and
  /// grow the same trees as fitReference().
  void fit(const Dataset& data, const ForestParams& params,
           std::uint64_t seed = 1);
  void fit(const PackedView& data, const ForestParams& params,
           std::uint64_t seed = 1);

  /// The seed per-row-scan pipeline, retained as the differential-testing
  /// reference for fit().
  void fitReference(const Dataset& data, const ForestParams& params,
                    std::uint64_t seed = 1);

  [[nodiscard]] bool predict(
      std::span<const std::uint8_t> features) const override;
  [[nodiscard]] double predictProbability(
      std::span<const std::uint8_t> features) const override;

  /// predictProbability without the trained() validation, for hot loops
  /// that validated once at entry. Precondition: trained().
  [[nodiscard]] double probabilityUnchecked(
      std::span<const std::uint8_t> features) const noexcept;

  /// 64-lane batched forest inference: featureWords[f] carries feature f of
  /// lane L in bit L. Each lane's probability is accumulated tree by tree
  /// in the scalar summation order, so lane results equal
  /// predict()/predictProbability() bit for bit.
  [[nodiscard]] std::uint64_t predictBatch(
      std::span<const std::uint64_t> featureWords,
      std::span<double> probabilities) const override;

  [[nodiscard]] const std::vector<DecisionTree>& trees() const noexcept {
    return trees_;
  }
  void setTrees(std::vector<DecisionTree> trees) {
    trees_ = std::move(trees);
  }
  [[nodiscard]] bool trained() const noexcept { return !trees_.empty(); }

 private:
  std::vector<DecisionTree> trees_;
};

/// Baseline that always predicts the training majority class — the paper's
/// implicit "no model" comparison point for ablations.
class MajorityClassifier final : public BinaryClassifier {
 public:
  void fit(const Dataset& data);
  void fit(const PackedView& data);

  [[nodiscard]] bool predict(
      std::span<const std::uint8_t>) const override {
    return majority_;
  }
  [[nodiscard]] double predictProbability(
      std::span<const std::uint8_t>) const override {
    return probability_;
  }
  [[nodiscard]] std::uint64_t predictBatch(
      std::span<const std::uint64_t>,
      std::span<double> probabilities) const override {
    if (probabilities.size() < 64) {
      throw std::invalid_argument(
          "MajorityClassifier::predictBatch: need 64 probability slots");
    }
    std::fill_n(probabilities.data(), 64, probability_);
    return majority_ ? ~std::uint64_t{0} : 0;
  }

 private:
  bool majority_ = false;
  double probability_ = 0.0;
};

}  // namespace oisa::ml
