// oisa_ml: Random Forest classifier (bagging + feature subsampling).
//
// The paper's model of choice: "RFC alleviates overfitting by developing
// more than one decision tree and using their average result as final
// prediction". Deterministic given the seed.
#pragma once

#include <cstdint>
#include <vector>

#include "ml/decision_tree.h"

namespace oisa::ml {

/// Forest growth controls.
struct ForestParams {
  std::size_t treeCount = 10;
  TreeParams tree{};  ///< tree.featuresPerSplit 0 = auto (sqrt(featureCount))
  bool bootstrap = true;  ///< sample rows with replacement per tree
};

/// Random Forest of CART trees; prediction is the mean tree probability.
class RandomForest final : public BinaryClassifier {
 public:
  void fit(const Dataset& data, const ForestParams& params,
           std::uint64_t seed = 1);

  [[nodiscard]] bool predict(
      std::span<const std::uint8_t> features) const override;
  [[nodiscard]] double predictProbability(
      std::span<const std::uint8_t> features) const override;

  [[nodiscard]] const std::vector<DecisionTree>& trees() const noexcept {
    return trees_;
  }
  void setTrees(std::vector<DecisionTree> trees) {
    trees_ = std::move(trees);
  }
  [[nodiscard]] bool trained() const noexcept { return !trees_.empty(); }

 private:
  std::vector<DecisionTree> trees_;
};

/// Baseline that always predicts the training majority class — the paper's
/// implicit "no model" comparison point for ablations.
class MajorityClassifier final : public BinaryClassifier {
 public:
  void fit(const Dataset& data);

  [[nodiscard]] bool predict(
      std::span<const std::uint8_t>) const override {
    return majority_;
  }
  [[nodiscard]] double predictProbability(
      std::span<const std::uint8_t>) const override {
    return probability_;
  }

 private:
  bool majority_ = false;
  double probability_ = 0.0;
};

}  // namespace oisa::ml
