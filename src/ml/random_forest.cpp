#include "ml/random_forest.h"

#include <cmath>
#include <numeric>
#include <stdexcept>

namespace oisa::ml {

void RandomForest::fit(const Dataset& data, const ForestParams& params,
                       std::uint64_t seed) {
  if (data.rowCount() == 0) {
    throw std::invalid_argument("RandomForest::fit: empty dataset");
  }
  if (params.treeCount == 0) {
    throw std::invalid_argument("RandomForest::fit: treeCount must be > 0");
  }
  TreeParams treeParams = params.tree;
  if (treeParams.featuresPerSplit == 0) {
    treeParams.featuresPerSplit = static_cast<std::size_t>(
        std::lround(std::sqrt(static_cast<double>(data.featureCount()))));
  }
  trees_.clear();

  // Degenerate case short-cut: constant labels need a single leaf (frequent
  // for timing bits that never fail at a mild overclock).
  const std::size_t pos = data.positiveCount();
  if (pos == 0 || pos == data.rowCount()) {
    DecisionTree leaf;
    leaf.fit(data, TreeParams{0, 2, 1, 0}, seed);
    trees_.push_back(std::move(leaf));
    return;
  }

  std::mt19937_64 rng(seed);
  const std::size_t n = data.rowCount();
  std::vector<std::uint32_t> rows(n);
  for (std::size_t t = 0; t < params.treeCount; ++t) {
    if (params.bootstrap) {
      std::uniform_int_distribution<std::uint32_t> pick(
          0, static_cast<std::uint32_t>(n - 1));
      for (std::size_t i = 0; i < n; ++i) rows[i] = pick(rng);
    } else {
      std::iota(rows.begin(), rows.end(), 0u);
    }
    DecisionTree tree;
    tree.fit(data, rows, treeParams, rng);
    trees_.push_back(std::move(tree));
  }
}

bool RandomForest::predict(std::span<const std::uint8_t> features) const {
  return predictProbability(features) >= 0.5;
}

double RandomForest::predictProbability(
    std::span<const std::uint8_t> features) const {
  if (trees_.empty()) {
    throw std::logic_error("RandomForest: predict before fit");
  }
  double sum = 0.0;
  for (const DecisionTree& tree : trees_) {
    sum += tree.predictProbability(features);
  }
  return sum / static_cast<double>(trees_.size());
}

void MajorityClassifier::fit(const Dataset& data) {
  if (data.rowCount() == 0) {
    throw std::invalid_argument("MajorityClassifier::fit: empty dataset");
  }
  probability_ = static_cast<double>(data.positiveCount()) /
                 static_cast<double>(data.rowCount());
  majority_ = probability_ >= 0.5;
}

}  // namespace oisa::ml
