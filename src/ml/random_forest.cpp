#include "ml/random_forest.h"

#include <cmath>
#include <numeric>
#include <stdexcept>

namespace oisa::ml {

namespace {

/// The forest pipeline, shared by the packed and reference paths so both
/// draw identical bootstrap samples from the same rng stream. `fitTree`
/// grows one tree on a row multiset; `fitLeaf` grows the single-leaf tree
/// of the constant-label short-cut.
template <typename FitTree, typename FitLeaf>
void growForest(std::vector<DecisionTree>& trees, std::size_t rowCount,
                std::size_t positiveCount, std::size_t featureCount,
                const ForestParams& params, std::uint64_t seed,
                FitTree&& fitTree, FitLeaf&& fitLeaf) {
  if (rowCount == 0) {
    throw std::invalid_argument("RandomForest::fit: empty dataset");
  }
  if (params.treeCount == 0) {
    throw std::invalid_argument("RandomForest::fit: treeCount must be > 0");
  }
  TreeParams treeParams = params.tree;
  if (treeParams.featuresPerSplit == 0) {
    treeParams.featuresPerSplit = static_cast<std::size_t>(
        std::lround(std::sqrt(static_cast<double>(featureCount))));
  }
  trees.clear();

  // Degenerate case short-cut: constant labels need a single leaf (frequent
  // for timing bits that never fail at a mild overclock).
  if (positiveCount == 0 || positiveCount == rowCount) {
    DecisionTree leaf;
    fitLeaf(leaf);
    trees.push_back(std::move(leaf));
    return;
  }

  std::mt19937_64 rng(seed);
  std::vector<std::uint32_t> rows(rowCount);
  for (std::size_t t = 0; t < params.treeCount; ++t) {
    if (params.bootstrap) {
      std::uniform_int_distribution<std::uint32_t> pick(
          0, static_cast<std::uint32_t>(rowCount - 1));
      for (std::size_t i = 0; i < rowCount; ++i) rows[i] = pick(rng);
    } else {
      std::iota(rows.begin(), rows.end(), 0u);
    }
    DecisionTree tree;
    fitTree(tree, rows, treeParams, rng);
    trees.push_back(std::move(tree));
  }
}

}  // namespace

void RandomForest::fit(const Dataset& data, const ForestParams& params,
                       std::uint64_t seed) {
  fit(data.packed(), params, seed);
}

void RandomForest::fit(const PackedView& data, const ForestParams& params,
                       std::uint64_t seed) {
  growForest(
      trees_, data.rowCount, data.positiveCount(), data.featureCount(),
      params, seed,
      [&](DecisionTree& tree, std::span<const std::uint32_t> rows,
          const TreeParams& treeParams, std::mt19937_64& rng) {
        tree.fit(data, rows, treeParams, rng);
      },
      [&](DecisionTree& leaf) {
        leaf.fit(data, TreeParams{0, 2, 1, 0}, seed);
      });
}

void RandomForest::fitReference(const Dataset& data,
                                const ForestParams& params,
                                std::uint64_t seed) {
  growForest(
      trees_, data.rowCount(), data.positiveCount(), data.featureCount(),
      params, seed,
      [&](DecisionTree& tree, std::span<const std::uint32_t> rows,
          const TreeParams& treeParams, std::mt19937_64& rng) {
        tree.fitReference(data, rows, treeParams, rng);
      },
      [&](DecisionTree& leaf) {
        leaf.fitReference(data, TreeParams{0, 2, 1, 0}, seed);
      });
}

bool RandomForest::predict(std::span<const std::uint8_t> features) const {
  return predictProbability(features) >= 0.5;
}

double RandomForest::predictProbability(
    std::span<const std::uint8_t> features) const {
  if (trees_.empty()) {
    throw std::logic_error("RandomForest: predict before fit");
  }
  return probabilityUnchecked(features);
}

double RandomForest::probabilityUnchecked(
    std::span<const std::uint8_t> features) const noexcept {
  double sum = 0.0;
  for (const DecisionTree& tree : trees_) {
    sum += tree.probabilityUnchecked(features);
  }
  return sum / static_cast<double>(trees_.size());
}

std::uint64_t RandomForest::predictBatch(
    std::span<const std::uint64_t> featureWords,
    std::span<double> probabilities) const {
  if (trees_.empty()) {
    throw std::logic_error("RandomForest: predict before fit");
  }
  if (probabilities.size() < 64) {
    throw std::invalid_argument(
        "RandomForest::predictBatch: need 64 probability slots");
  }
  std::fill_n(probabilities.data(), 64, 0.0);
  // One leaf-probability addition per lane per tree, tree by tree — the
  // same per-lane summation order as the scalar path, so results match bit
  // for bit.
  for (const DecisionTree& tree : trees_) {
    tree.accumulateBatch(featureWords, probabilities.data());
  }
  const auto count = static_cast<double>(trees_.size());
  std::uint64_t predictions = 0;
  for (std::size_t lane = 0; lane < 64; ++lane) {
    probabilities[lane] = probabilities[lane] / count;
    if (probabilities[lane] >= 0.5) predictions |= std::uint64_t{1} << lane;
  }
  return predictions;
}

void MajorityClassifier::fit(const Dataset& data) {
  if (data.rowCount() == 0) {
    throw std::invalid_argument("MajorityClassifier::fit: empty dataset");
  }
  probability_ = static_cast<double>(data.positiveCount()) /
                 static_cast<double>(data.rowCount());
  majority_ = probability_ >= 0.5;
}

void MajorityClassifier::fit(const PackedView& data) {
  if (data.rowCount == 0) {
    throw std::invalid_argument("MajorityClassifier::fit: empty dataset");
  }
  probability_ = static_cast<double>(data.positiveCount()) /
                 static_cast<double>(data.rowCount);
  majority_ = probability_ >= 0.5;
}

}  // namespace oisa::ml
