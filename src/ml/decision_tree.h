// oisa_ml: CART decision tree for binary features (Gini impurity).
//
// The building block of the paper's Random Forest Classification: each tree
// "learns a set of decision rules based on the pattern of input and their
// possible outcomes". Nodes are stored in a flat vector — no pointer
// chasing, trivially serializable.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

#include "ml/classifier.h"
#include "ml/dataset.h"

namespace oisa::ml {

/// Tree growth controls.
struct TreeParams {
  int maxDepth = 12;
  std::size_t minSamplesSplit = 4;  ///< below this a node becomes a leaf
  std::size_t minSamplesLeaf = 1;   ///< both split sides must keep this many
  /// Features examined per split: 0 = all (plain CART); forests pass
  /// ~sqrt(featureCount) for decorrelation.
  std::size_t featuresPerSplit = 0;
};

/// CART binary decision tree over binary features.
class DecisionTree final : public BinaryClassifier {
 public:
  /// Grows a tree on `rows` (indices into `data`); `rng` drives feature
  /// subsampling when params.featuresPerSplit > 0.
  void fit(const Dataset& data, std::span<const std::uint32_t> rows,
           const TreeParams& params, std::mt19937_64& rng);

  /// Grows on the whole dataset.
  void fit(const Dataset& data, const TreeParams& params,
           std::uint64_t seed = 1);

  [[nodiscard]] bool predict(
      std::span<const std::uint8_t> features) const override;
  [[nodiscard]] double predictProbability(
      std::span<const std::uint8_t> features) const override;

  [[nodiscard]] std::size_t nodeCount() const noexcept {
    return nodes_.size();
  }
  [[nodiscard]] int depth() const noexcept;
  [[nodiscard]] bool trained() const noexcept { return !nodes_.empty(); }

  /// Serialization hooks (text format; see serialize.h).
  struct Node {
    std::int32_t feature = -1;   ///< -1 for a leaf
    std::uint32_t left = 0;      ///< child when feature value == 0
    std::uint32_t right = 0;     ///< child when feature value == 1
    float probability = 0.0f;    ///< P(positive) at this node
  };
  [[nodiscard]] const std::vector<Node>& nodes() const noexcept {
    return nodes_;
  }
  void setNodes(std::vector<Node> nodes) { nodes_ = std::move(nodes); }

 private:
  std::uint32_t grow(const Dataset& data, std::vector<std::uint32_t>& rows,
                     int depth, const TreeParams& params,
                     std::mt19937_64& rng);

  std::vector<Node> nodes_;
};

}  // namespace oisa::ml
