// oisa_ml: CART decision tree for binary features (Gini impurity).
//
// The building block of the paper's Random Forest Classification: each tree
// "learns a set of decision rules based on the pattern of input and their
// possible outcomes". Nodes are stored in a flat vector — no pointer
// chasing, trivially serializable.
//
// Training runs on the packed column-major substrate: every candidate
// split's counts come from popcount(featureWord & rowPlane) instead of
// per-row byte loads, with bootstrap multiplicities carried as bit-planes.
// The seed row-scan trainer is retained as fitReference() — the golden
// reference the packed trainer must match *node for node* (the
// wheel-vs-heap differential pattern applied to training).
#pragma once

#include <cstdint>
#include <random>
#include <vector>

#include "ml/classifier.h"
#include "ml/dataset.h"

namespace oisa::ml {

/// Tree growth controls.
struct TreeParams {
  int maxDepth = 12;
  std::size_t minSamplesSplit = 4;  ///< below this a node becomes a leaf
  std::size_t minSamplesLeaf = 1;   ///< both split sides must keep this many
  /// Features examined per split: 0 = all (plain CART); forests pass
  /// ~sqrt(featureCount) for decorrelation.
  std::size_t featuresPerSplit = 0;
};

/// CART binary decision tree over binary features.
class DecisionTree final : public BinaryClassifier {
 public:
  /// Grows a tree on `rows` (indices into `data`, duplicates allowed —
  /// bootstrap samples carry multiplicity); `rng` drives feature
  /// subsampling when params.featuresPerSplit > 0. This is the packed
  /// popcount trainer; it produces node arrays identical to fitReference()
  /// for the same inputs and rng state.
  void fit(const PackedView& data, std::span<const std::uint32_t> rows,
           const TreeParams& params, std::mt19937_64& rng);

  /// Grows on the whole packed dataset.
  void fit(const PackedView& data, const TreeParams& params,
           std::uint64_t seed = 1);

  /// Dataset conveniences (delegate to the packed trainer via
  /// Dataset::packed()).
  void fit(const Dataset& data, std::span<const std::uint32_t> rows,
           const TreeParams& params, std::mt19937_64& rng);
  void fit(const Dataset& data, const TreeParams& params,
           std::uint64_t seed = 1);

  /// The seed per-row-scan trainer, retained as the differential-testing
  /// reference for the packed fit() paths.
  void fitReference(const Dataset& data, std::span<const std::uint32_t> rows,
                    const TreeParams& params, std::mt19937_64& rng);
  void fitReference(const Dataset& data, const TreeParams& params,
                    std::uint64_t seed = 1);

  [[nodiscard]] bool predict(
      std::span<const std::uint8_t> features) const override;
  [[nodiscard]] double predictProbability(
      std::span<const std::uint8_t> features) const override;

  /// predictProbability without the trained() validation, for hot loops
  /// that validated once at entry. Precondition: trained().
  [[nodiscard]] double probabilityUnchecked(
      std::span<const std::uint8_t> features) const noexcept;

  /// Batched inference: featureWords[f] carries feature f of lane L in bit
  /// L (the packed column layout). Writes each lane's leaf probability and
  /// returns the mask of lanes predicted positive — lane for lane equal to
  /// the scalar predict()/predictProbability().
  [[nodiscard]] std::uint64_t predictBatch(
      std::span<const std::uint64_t> featureWords,
      std::span<double> probabilities) const override;

  /// Batched building block for forests: adds each lane's leaf probability
  /// into sums[0..63] (one addition per lane, so callers control the
  /// accumulation order). Precondition: trained().
  void accumulateBatch(std::span<const std::uint64_t> featureWords,
                       double* sums) const noexcept;

  [[nodiscard]] std::size_t nodeCount() const noexcept {
    return nodes_.size();
  }
  [[nodiscard]] int depth() const noexcept;
  [[nodiscard]] bool trained() const noexcept { return !nodes_.empty(); }

  /// Serialization hooks (text format; see serialize.h).
  struct Node {
    std::int32_t feature = -1;   ///< -1 for a leaf
    std::uint32_t left = 0;      ///< child when feature value == 0
    std::uint32_t right = 0;     ///< child when feature value == 1
    float probability = 0.0f;    ///< P(positive) at this node
  };
  [[nodiscard]] const std::vector<Node>& nodes() const noexcept {
    return nodes_;
  }
  void setNodes(std::vector<Node> nodes) { nodes_ = std::move(nodes); }

 private:
  struct PackedGrowContext;
  struct PackedRows;

  std::uint32_t grow(const Dataset& data, std::vector<std::uint32_t>& rows,
                     int depth, const TreeParams& params,
                     std::mt19937_64& rng);
  std::uint32_t growPacked(PackedGrowContext& ctx, PackedRows& rows,
                           int depth);
  void accumulateLanes(std::span<const std::uint64_t> featureWords,
                       std::uint32_t idx, std::uint64_t mask,
                       double* sums) const noexcept;

  std::vector<Node> nodes_;
};

}  // namespace oisa::ml
