#include "ml/flat_forest.h"

#include <array>
#include <bit>
#include <limits>
#include <stdexcept>
#include <string>

namespace oisa::ml {

double FlatForest::probability(
    std::span<const std::uint8_t> features) const noexcept {
  const FlatBankView& b = bank_;
  double sum = 0.0;
  for (const std::uint32_t root : roots_) {
    std::uint32_t idx = root;
    while (b.feature[idx] >= 0) {
      idx = features[static_cast<std::size_t>(b.feature[idx])] ? b.right[idx]
                                                              : b.left[idx];
    }
    sum += b.prob[idx];
  }
  return sum / static_cast<double>(roots_.size());
}

void FlatForest::accumulateTreeLanes(
    std::uint32_t idx, std::uint64_t mask,
    std::span<const std::uint64_t> featureWords,
    double* sums) const noexcept {
  // The explicit-stack lane-mask traversal of DecisionTree::
  // accumulateLanes, re-rooted on the flat arrays. The stack bound holds
  // for any bank that passed validateFlatBank: children strictly follow
  // their parent, so depth never exceeds the node count, and grown trees
  // are capped far below 64 levels; a deeper (hand-built) tree spills
  // into recursion rather than overflowing.
  const FlatBankView& b = bank_;
  struct Frame {
    std::uint32_t idx;
    std::uint64_t mask;
  };
  std::array<Frame, 64> stack;
  std::size_t top = 0;
  for (;;) {
    while (b.feature[idx] >= 0) {
      const auto feat = static_cast<std::size_t>(b.feature[idx]);
      const std::uint64_t right = mask & featureWords[feat];
      const std::uint64_t left = mask ^ right;
      if (right == 0) {
        idx = b.left[idx];
        continue;
      }
      if (left == 0) {
        idx = b.right[idx];
        mask = right;
        continue;
      }
      if (top < stack.size()) {
        stack[top++] = Frame{b.right[idx], right};
      } else {
        accumulateTreeLanes(b.right[idx], right, featureWords, sums);
      }
      idx = b.left[idx];
      mask = left;
    }
    const double p = b.prob[idx];
    if (mask == ~std::uint64_t{0}) {
      for (std::size_t lane = 0; lane < 64; ++lane) sums[lane] += p;
    } else {
      std::uint64_t m = mask;
      while (m != 0) {
        sums[std::countr_zero(m)] += p;
        m &= m - 1;
      }
    }
    if (top == 0) return;
    --top;
    idx = stack[top].idx;
    mask = stack[top].mask;
  }
}

std::uint64_t FlatForest::predictWord(
    std::span<const std::uint64_t> featureWords, double* sums) const noexcept {
  for (const std::uint32_t root : roots_) {
    accumulateTreeLanes(root, ~std::uint64_t{0}, featureWords, sums);
  }
  const auto count = static_cast<double>(roots_.size());
  std::uint64_t predictions = 0;
  for (std::size_t lane = 0; lane < 64; ++lane) {
    sums[lane] = sums[lane] / count;
    if (sums[lane] >= 0.5) predictions |= std::uint64_t{1} << lane;
  }
  return predictions;
}

FlatForestBank FlatForestBank::build(std::span<const RandomForest> forests,
                                     std::uint32_t featureCount) {
  if (featureCount >
      static_cast<std::uint32_t>(std::numeric_limits<std::int16_t>::max()) +
          1u) {
    throw std::invalid_argument(
        "FlatForestBank::build: featureCount exceeds the int16 node format");
  }
  FlatForestBank bank;
  bank.featureCount_ = featureCount;
  std::size_t totalNodes = 0;
  std::size_t totalTrees = 0;
  for (const RandomForest& forest : forests) {
    if (!forest.trained()) {
      throw std::invalid_argument("FlatForestBank::build: untrained forest");
    }
    totalTrees += forest.trees().size();
    for (const DecisionTree& tree : forest.trees()) {
      totalNodes += tree.nodes().size();
    }
  }
  if (totalNodes > std::numeric_limits<std::uint32_t>::max()) {
    throw std::invalid_argument(
        "FlatForestBank::build: arena exceeds uint32 offsets");
  }
  bank.feature_.reserve(totalNodes);
  bank.left_.reserve(totalNodes);
  bank.right_.reserve(totalNodes);
  bank.prob_.reserve(totalNodes);
  bank.roots_.reserve(totalTrees);
  bank.forestBegin_.reserve(forests.size() + 1);

  bank.forestBegin_.push_back(0);
  for (const RandomForest& forest : forests) {
    for (const DecisionTree& tree : forest.trees()) {
      const auto base = static_cast<std::uint32_t>(bank.feature_.size());
      bank.roots_.push_back(base);
      for (const DecisionTree::Node& n : tree.nodes()) {
        if (n.feature >= static_cast<std::int32_t>(featureCount)) {
          throw std::invalid_argument(
              "FlatForestBank::build: split feature " +
              std::to_string(n.feature) + " out of range");
        }
        bank.feature_.push_back(
            n.feature < 0 ? std::int16_t{-1}
                          : static_cast<std::int16_t>(n.feature));
        bank.left_.push_back(base + n.left);
        bank.right_.push_back(base + n.right);
        bank.prob_.push_back(n.probability);
      }
    }
    bank.forestBegin_.push_back(
        static_cast<std::uint32_t>(bank.roots_.size()));
  }
  return bank;
}

FlatBankView FlatForestBank::view() const noexcept {
  FlatBankView v;
  v.feature = feature_;
  v.left = left_;
  v.right = right_;
  v.prob = prob_;
  v.roots = roots_;
  v.forestBegin = forestBegin_;
  v.featureCount = featureCount_;
  return v;
}

core::Status validateFlatBank(const FlatBankView& bank) {
  const auto corrupt = [](std::string what) {
    return core::Status::corruption("flat bank: " + std::move(what));
  };
  if (bank.forestBegin.empty()) {
    return corrupt("missing forest offset table");
  }
  if (bank.left.size() != bank.nodeCount() ||
      bank.right.size() != bank.nodeCount() ||
      bank.prob.size() != bank.nodeCount()) {
    return corrupt("node array lengths disagree");
  }
  if (bank.forestBegin.front() != 0 ||
      bank.forestBegin.back() != bank.roots.size()) {
    return corrupt("forest offset table does not span the root table");
  }
  for (std::size_t f = 1; f < bank.forestBegin.size(); ++f) {
    if (bank.forestBegin[f] < bank.forestBegin[f - 1]) {
      return corrupt("forest offset table not monotonic at entry " +
                     std::to_string(f));
    }
    if (bank.forestBegin[f] == bank.forestBegin[f - 1]) {
      // An empty forest would make predictWord divide by zero; the
      // builder never emits one (trained() forests have trees).
      return corrupt("forest " + std::to_string(f - 1) + " has no trees");
    }
  }
  const auto nodes = static_cast<std::uint32_t>(bank.nodeCount());
  for (std::size_t t = 0; t < bank.roots.size(); ++t) {
    if (bank.roots[t] >= nodes) {
      return corrupt("tree root " + std::to_string(t) + " out of range");
    }
  }
  for (std::uint32_t i = 0; i < nodes; ++i) {
    const std::int16_t feat = bank.feature[i];
    if (feat < 0) continue;  // leaf: children unused
    if (static_cast<std::uint32_t>(feat) >= bank.featureCount) {
      return corrupt("node " + std::to_string(i) + " splits feature " +
                     std::to_string(feat) + " past featureCount " +
                     std::to_string(bank.featureCount));
    }
    // Children strictly after the parent: the growers' append order,
    // and the property that makes any walk provably terminate.
    if (bank.left[i] <= i || bank.left[i] >= nodes || bank.right[i] <= i ||
        bank.right[i] >= nodes) {
      return corrupt("node " + std::to_string(i) +
                     " child offsets out of order");
    }
  }
  return core::Status::ok();
}

}  // namespace oisa::ml
