// oisa_ml: classification quality metrics.
#pragma once

#include <cstdint>

#include "ml/classifier.h"
#include "ml/dataset.h"

namespace oisa::ml {

/// Binary confusion matrix and derived scores.
struct ConfusionMatrix {
  std::uint64_t truePositive = 0;
  std::uint64_t trueNegative = 0;
  std::uint64_t falsePositive = 0;
  std::uint64_t falseNegative = 0;

  void add(bool predicted, bool actual) noexcept {
    if (predicted && actual) ++truePositive;
    else if (predicted && !actual) ++falsePositive;
    else if (!predicted && actual) ++falseNegative;
    else ++trueNegative;
  }

  [[nodiscard]] std::uint64_t total() const noexcept {
    return truePositive + trueNegative + falsePositive + falseNegative;
  }
  [[nodiscard]] double accuracy() const noexcept {
    const auto t = total();
    return t ? static_cast<double>(truePositive + trueNegative) /
                   static_cast<double>(t)
             : 0.0;
  }
  [[nodiscard]] double errorRate() const noexcept { return 1.0 - accuracy(); }
  [[nodiscard]] double precision() const noexcept {
    const auto d = truePositive + falsePositive;
    return d ? static_cast<double>(truePositive) / static_cast<double>(d)
             : 0.0;
  }
  [[nodiscard]] double recall() const noexcept {
    const auto d = truePositive + falseNegative;
    return d ? static_cast<double>(truePositive) / static_cast<double>(d)
             : 0.0;
  }
  [[nodiscard]] double f1() const noexcept {
    const double p = precision();
    const double r = recall();
    return (p + r) > 0.0 ? 2.0 * p * r / (p + r) : 0.0;
  }
};

/// Evaluates a classifier over a labeled dataset.
[[nodiscard]] ConfusionMatrix evaluate(const BinaryClassifier& model,
                                       const Dataset& data);

}  // namespace oisa::ml
