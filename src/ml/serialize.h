// oisa_ml: text serialization of trained models.
//
// Line-oriented bodies (human-diffable, as before) wrapped in an
// integrity envelope so trained timing-error models can be saved next to
// a synthesized design and reloaded without retraining — and so a rotted
// or truncated model file is *detected*, never silently half-loaded:
//
//   oisamodel <version> <bodyBytes> <crc32-hex>\n
//   <body: "tree N" / "forest N" lines exactly as version 0 wrote them>
//
// The loader verifies magic, version, exact body length and CRC-32
// before parsing a single node; flipping any byte of a saved model makes
// loading fail with StatusCode::Corruption. Multiple envelopes
// concatenate cleanly on one stream (the bit-level predictor stores one
// forest per output bit that way).
#pragma once

#include <iosfwd>

#include "core/status.h"
#include "ml/decision_tree.h"
#include "ml/random_forest.h"

namespace oisa::ml {

void saveTree(const DecisionTree& tree, std::ostream& os);
void saveForest(const RandomForest& forest, std::ostream& os);

/// Status-returning loaders: Corruption for any integrity failure
/// (bad magic/version, truncation, checksum mismatch, malformed or
/// out-of-range node data), IoError for stream read failures.
[[nodiscard]] core::StatusOr<DecisionTree> readTree(std::istream& is);
[[nodiscard]] core::StatusOr<RandomForest> readForest(std::istream& is);

/// Throwing convenience wrappers (raise core::StatusError, which is-a
/// std::runtime_error, so pre-Status callers keep working unchanged).
[[nodiscard]] DecisionTree loadTree(std::istream& is);
[[nodiscard]] RandomForest loadForest(std::istream& is);

}  // namespace oisa::ml
