// oisa_ml: text serialization of trained models.
//
// Simple line-oriented format so trained timing-error models can be saved
// next to a synthesized design and reloaded without retraining.
#pragma once

#include <iosfwd>

#include "ml/decision_tree.h"
#include "ml/random_forest.h"

namespace oisa::ml {

void saveTree(const DecisionTree& tree, std::ostream& os);
[[nodiscard]] DecisionTree loadTree(std::istream& is);

void saveForest(const RandomForest& forest, std::ostream& os);
[[nodiscard]] RandomForest loadForest(std::istream& is);

}  // namespace oisa::ml
