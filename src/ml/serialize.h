// oisa_ml: serialization of trained models.
//
// Two envelopes, one integrity policy (flipping any byte of a saved
// model makes loading fail with StatusCode::Corruption):
//
// v1 — text. Line-oriented bodies (human-diffable, as before) wrapped
// in an integrity envelope so trained timing-error models can be saved
// next to a synthesized design and reloaded without retraining — and so
// a rotted or truncated model file is *detected*, never silently
// half-loaded:
//
//   oisamodel <version> <bodyBytes> <crc32-hex>\n
//   <body: "tree N" / "forest N" lines exactly as version 0 wrote them>
//
// The loader verifies magic, version, exact body length and CRC-32
// before parsing a single node. Multiple envelopes concatenate cleanly
// on one stream (the bit-level predictor used to store one forest per
// output bit that way).
//
// v2 — binary, for flat forest banks (flat_forest.h). The serving
// format: a 64-byte little-endian header (magic "OISAFB2\n", version,
// featureCount, two application meta words, section counts, total file
// size, whole-file CRC-32) followed by the six 8-byte-aligned
// structure-of-arrays sections exactly as FlatForestBank holds them in
// memory. Loading is mmap (or one read) + header/CRC check +
// validateFlatBank — zero per-node parsing; the spans of the returned
// view point straight into the file bytes.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>

#include "core/status.h"
#include "ml/decision_tree.h"
#include "ml/flat_forest.h"
#include "ml/random_forest.h"

namespace oisa::ml {

void saveTree(const DecisionTree& tree, std::ostream& os);
void saveForest(const RandomForest& forest, std::ostream& os);

/// Status-returning loaders: Corruption for any integrity failure
/// (bad magic/version, truncation, checksum mismatch, malformed or
/// out-of-range node data), IoError for stream read failures.
[[nodiscard]] core::StatusOr<DecisionTree> readTree(std::istream& is);
[[nodiscard]] core::StatusOr<RandomForest> readForest(std::istream& is);

/// Throwing convenience wrappers (raise core::StatusError, which is-a
/// std::runtime_error, so pre-Status callers keep working unchanged).
[[nodiscard]] DecisionTree loadTree(std::istream& is);
[[nodiscard]] RandomForest loadForest(std::istream& is);

// --- binary envelope v2: flat forest banks ---------------------------

/// The complete v2 file image for `bank` as a byte string: header
/// (CRC-32 over every byte of the file with the checksum field zeroed)
/// plus the aligned node-array sections. `meta0`/`meta1` are two opaque
/// application words stored in the header (the bit-level predictor keeps
/// its operand width and feature-config bits there), returned verbatim
/// by the loader.
[[nodiscard]] std::string serializeFlatBank(const FlatBankView& bank,
                                            std::uint32_t meta0 = 0,
                                            std::uint32_t meta1 = 0);

void writeFlatBank(std::ostream& os, const FlatBankView& bank,
                   std::uint32_t meta0 = 0, std::uint32_t meta1 = 0);

/// Writes the v2 image to `path` (IoError on any filesystem failure).
[[nodiscard]] core::Status writeFlatBankFile(const std::string& path,
                                             const FlatBankView& bank,
                                             std::uint32_t meta0 = 0,
                                             std::uint32_t meta1 = 0);

/// A loaded v2 bank: owns (or maps) the raw file bytes and exposes a
/// FlatBankView whose spans point straight into them. Movable and
/// cheaply copyable (shared storage); the view stays valid for the
/// lifetime of any copy.
class MappedForestBank {
 public:
  MappedForestBank() = default;

  /// Opens `path` by mmap when available, falling back to one read into
  /// a heap buffer. IoError when the file can't be opened or read;
  /// Corruption when the bytes fail any header, size, CRC, or
  /// structural check — a single flipped byte or truncation anywhere in
  /// the file is detected before a node is ever walked.
  [[nodiscard]] static core::StatusOr<MappedForestBank> open(
      const std::string& path);

  /// Same validation over an in-memory image (the corruption tests flip
  /// bytes of serializeFlatBank output and feed it here).
  [[nodiscard]] static core::StatusOr<MappedForestBank> fromBuffer(
      std::string bytes);

  [[nodiscard]] const FlatBankView& view() const noexcept { return view_; }
  [[nodiscard]] std::uint32_t meta0() const noexcept { return meta0_; }
  [[nodiscard]] std::uint32_t meta1() const noexcept { return meta1_; }
  /// True when the storage is an mmap of the file rather than a copy.
  [[nodiscard]] bool mapped() const noexcept { return mapped_; }
  [[nodiscard]] bool empty() const noexcept { return storage_ == nullptr; }

 private:
  [[nodiscard]] static core::StatusOr<MappedForestBank> parse(
      std::shared_ptr<const char> storage, std::size_t size, bool mapped);

  std::shared_ptr<const char> storage_;
  FlatBankView view_;
  std::uint32_t meta0_ = 0;
  std::uint32_t meta1_ = 0;
  bool mapped_ = false;
};

}  // namespace oisa::ml
