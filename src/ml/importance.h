// oisa_ml: split-based feature importance.
//
// Trees don't store impurity gains, so importance is estimated from split
// usage weighted by node population share (approximated by 2^-depth: a
// split nearer the root sees more samples). Good enough to rank features —
// the predictor uses it to show that the paper's {x[t-1], yRTL} features
// carry real signal.
#pragma once

#include <vector>

#include "ml/decision_tree.h"
#include "ml/random_forest.h"

namespace oisa::ml {

/// Per-feature importance of one tree, normalized to sum to 1 (all zeros
/// for a leaf-only tree). `featureCount` sizes the result.
[[nodiscard]] std::vector<double> featureImportance(const DecisionTree& tree,
                                                    std::size_t featureCount);

/// Mean tree importance across a forest, normalized to sum to 1.
[[nodiscard]] std::vector<double> featureImportance(
    const RandomForest& forest, std::size_t featureCount);

}  // namespace oisa::ml
