// oisa_ml: flat, mmap-able forest banks — the serving-grade inference
// substrate.
//
// A trained RandomForest is a vector of DecisionTree objects, each owning
// its own node vector: three pointer hops per tree before the first node
// is touched, and nothing about the layout survives serialization without
// per-node parsing. FlatForestBank flattens a whole *bank* of forests
// (the bit-level predictor's 33 per-output-bit forests) into one
// structure-of-arrays arena:
//
//   feature[i]  int16   split feature of node i (-1 = leaf)
//   left[i]     uint32  arena-absolute child when the feature is 0
//   right[i]    uint32  arena-absolute child when the feature is 1
//   prob[i]     float   P(positive) at node i (meaningful at leaves)
//
// plus a forest-major table of tree-root offsets. Children are always
// appended after their parent (the growers' invariant, revalidated at
// every trust boundary), so the arena is trivially acyclic and a walk
// always terminates. The arrays are exactly what the binary model
// envelope v2 (serialize.h) writes, so a saved bank loads by mmap with
// zero per-node work: validate the header and CRC, then cast.
//
// Inference is bit-identical to the pointer forests: the scalar walk
// takes the same branches, and the 64-lane masked walk accumulates leaf
// probabilities tree by tree in the same order as
// RandomForest::predictBatch (the explicit-stack traversal of
// DecisionTree::accumulateLanes, re-rooted on the flat arrays).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/status.h"
#include "ml/random_forest.h"

namespace oisa::ml {

/// Non-owning structure-of-arrays view over a whole bank arena. Spans
/// point either at a FlatForestBank's vectors or straight into an mmap-ed
/// model file (MappedForestBank).
struct FlatBankView {
  std::span<const std::int16_t> feature;
  std::span<const std::uint32_t> left;
  std::span<const std::uint32_t> right;
  std::span<const float> prob;
  /// All tree roots, forest-major (arena-absolute node indices).
  std::span<const std::uint32_t> roots;
  /// forestCount()+1 offsets into `roots`; forest f owns
  /// roots[forestBegin[f] .. forestBegin[f+1]).
  std::span<const std::uint32_t> forestBegin;
  /// Exclusive upper bound on split-feature indices (row length the bank
  /// was trained on).
  std::uint32_t featureCount = 0;

  [[nodiscard]] std::size_t forestCount() const noexcept {
    return forestBegin.empty() ? 0 : forestBegin.size() - 1;
  }
  [[nodiscard]] std::size_t nodeCount() const noexcept {
    return feature.size();
  }
};

/// One forest of a flat bank: the arena spans plus this forest's slice of
/// the root table. Cheap to construct per call; inference-only. Holds the
/// view by value (it is only spans), so constructing from a temporary
/// `bank.view()` is safe — the underlying arena must outlive the forest.
class FlatForest {
 public:
  FlatForest(const FlatBankView& bank, std::size_t forest) noexcept
      : bank_(bank),
        roots_(bank.roots.subspan(
            bank.forestBegin[forest],
            bank.forestBegin[forest + 1] - bank.forestBegin[forest])) {}

  [[nodiscard]] std::size_t treeCount() const noexcept {
    return roots_.size();
  }

  /// Mean leaf probability over the trees — the scalar forest walk on
  /// flat arrays, branch-for-branch RandomForest::probabilityUnchecked.
  /// Precondition: treeCount() > 0.
  [[nodiscard]] double probability(
      std::span<const std::uint8_t> features) const noexcept;

  [[nodiscard]] bool predict(
      std::span<const std::uint8_t> features) const noexcept {
    return probability(features) >= 0.5;
  }

  /// 64-lane masked forest walk: featureWords[f] carries feature f of
  /// lane L in bit L. Accumulates each lane's leaf probability tree by
  /// tree into sums[0..63] (caller-provided, NOT cleared here), divides
  /// by the tree count, and returns the mask of lanes with probability
  /// >= 0.5 — the same summation order as RandomForest::predictBatch, so
  /// results match the pointer forests bit for bit. Allocation-free.
  /// Precondition: treeCount() > 0, sums zero-filled by the caller.
  [[nodiscard]] std::uint64_t predictWord(
      std::span<const std::uint64_t> featureWords,
      double* sums) const noexcept;

 private:
  void accumulateTreeLanes(std::uint32_t root, std::uint64_t mask,
                           std::span<const std::uint64_t> featureWords,
                           double* sums) const noexcept;

  FlatBankView bank_;
  std::span<const std::uint32_t> roots_;
};

/// Owning flat bank: builds the arena from trained pointer forests.
class FlatForestBank {
 public:
  FlatForestBank() = default;

  /// Flattens `forests` (all trained, all over rows of `featureCount`
  /// features) into one arena. Tree and node order are preserved, so the
  /// result is node-for-node the concatenation of the inputs with child
  /// offsets rebased to the arena. Throws std::invalid_argument on an
  /// untrained forest or an out-of-range split feature.
  [[nodiscard]] static FlatForestBank build(
      std::span<const RandomForest> forests, std::uint32_t featureCount);

  [[nodiscard]] FlatBankView view() const noexcept;
  [[nodiscard]] bool empty() const noexcept { return forestBegin_.empty(); }

 private:
  std::vector<std::int16_t> feature_;
  std::vector<std::uint32_t> left_;
  std::vector<std::uint32_t> right_;
  std::vector<float> prob_;
  std::vector<std::uint32_t> roots_;
  std::vector<std::uint32_t> forestBegin_;
  std::uint32_t featureCount_ = 0;
};

/// Structural validation of a (possibly just-cast) bank view: offset
/// table shape, root/child bounds, split features within featureCount,
/// and the children-follow-parent ordering that guarantees acyclic
/// walks. One linear scan, no allocation — the only per-node work a
/// loaded bank ever gets. Returns Corruption with a located diagnostic.
[[nodiscard]] core::Status validateFlatBank(const FlatBankView& bank);

}  // namespace oisa::ml
