#include "ml/decision_tree.h"

#include <algorithm>
#include <array>
#include <bit>
#include <numeric>
#include <stdexcept>

namespace oisa::ml {

namespace {

/// Gini impurity of a node with `pos` positives out of `n`.
[[nodiscard]] double gini(std::size_t pos, std::size_t n) noexcept {
  if (n == 0) return 0.0;
  const double q = static_cast<double>(pos) / static_cast<double>(n);
  return 2.0 * q * (1.0 - q);
}

/// Candidate features for one split: all, or a random subset (forest
/// mode). Shared by the packed and reference trainers so both consume the
/// rng identically — a precondition of their node-for-node equality.
void selectCandidates(std::size_t featureCount, const TreeParams& params,
                      std::mt19937_64& rng,
                      std::vector<std::uint32_t>& candidates) {
  candidates.resize(featureCount);
  std::iota(candidates.begin(), candidates.end(), 0u);
  if (params.featuresPerSplit == 0 ||
      params.featuresPerSplit >= featureCount) {
    return;
  }
  // Partial Fisher-Yates over feature indices.
  for (std::size_t i = 0; i < params.featuresPerSplit; ++i) {
    std::uniform_int_distribution<std::size_t> pick(i, featureCount - 1);
    std::swap(candidates[i], candidates[pick(rng)]);
  }
  candidates.resize(params.featuresPerSplit);
}

}  // namespace

// ---------------------------------------------------------------------------
// Packed popcount trainer
// ---------------------------------------------------------------------------

/// Per-fit state of the packed trainer. A node's row multiset is a stack of
/// multiplicity bit-planes (`planeCount` x `wordCount` words): plane k holds
/// bit k of every row's repeat count, so weighted counts are
/// sum_k 2^k * popcount(plane_k & ...). Plain subsets are the planeCount==1
/// special case.
struct DecisionTree::PackedGrowContext {
  const PackedView& data;
  const TreeParams& params;
  std::mt19937_64& rng;
  std::size_t planeCount;
  std::size_t words;
  std::vector<std::uint32_t> candidates;  // scratch, rebuilt per node
};

/// One node's row multiset. Beyond the planes themselves it carries the
/// per-plane list of populated word indices — deep nodes are sparse, and
/// every scan (candidate counting, partitioning) touches only those words
/// — and the node's weighted (n, pos), which the parent knows from its
/// winning split, so nothing is ever rescanned to recover statistics.
struct DecisionTree::PackedRows {
  std::vector<std::uint64_t> planes;               // planeCount x words
  std::vector<std::vector<std::uint32_t>> active;  // per plane
  std::size_t n = 0;    ///< weighted row count
  std::size_t pos = 0;  ///< weighted positive count
};

void DecisionTree::fit(const PackedView& data,
                       std::span<const std::uint32_t> rows,
                       const TreeParams& params, std::mt19937_64& rng) {
  if (rows.empty()) {
    throw std::invalid_argument("DecisionTree::fit: no training rows");
  }
  nodes_.clear();
  const std::size_t words = data.wordCount;
  // Row multiplicities (bootstrap samples repeat rows) as bit-planes,
  // built in one pass: adding a row is a bitwise ripple-carry increment
  // across the planes, growing a new plane only when the top one carries.
  PackedRows root;
  root.planes.assign(words, 0);
  std::size_t planeCount = 1;
  for (std::uint32_t r : rows) {
    if (r >= data.rowCount) {
      throw std::out_of_range("DecisionTree::fit: row index out of range");
    }
    const std::size_t w = r / 64;
    std::uint64_t carry = std::uint64_t{1} << (r % 64);
    for (std::size_t k = 0; k < planeCount && carry != 0; ++k) {
      std::uint64_t& plane = root.planes[k * words + w];
      const std::uint64_t old = plane;
      plane ^= carry;
      carry &= old;
    }
    if (carry != 0) {
      root.planes.resize((planeCount + 1) * words, 0);
      root.planes[planeCount * words + w] = carry;
      ++planeCount;
    }
  }
  root.active.resize(planeCount);
  root.n = rows.size();
  for (std::size_t k = 0; k < planeCount; ++k) {
    const std::uint64_t* plane = root.planes.data() + k * words;
    std::size_t cp = 0;
    for (std::size_t w = 0; w < words; ++w) {
      if (plane[w] != 0) {
        root.active[k].push_back(static_cast<std::uint32_t>(w));
        cp += static_cast<std::size_t>(std::popcount(plane[w] &
                                                     data.labels[w]));
      }
    }
    root.pos += cp << k;
  }
  PackedGrowContext ctx{data, params, rng, planeCount, words, {}};
  (void)growPacked(ctx, root, 0);
}

void DecisionTree::fit(const PackedView& data, const TreeParams& params,
                       std::uint64_t seed) {
  std::vector<std::uint32_t> rows(data.rowCount);
  std::iota(rows.begin(), rows.end(), 0u);
  std::mt19937_64 rng(seed);
  fit(data, rows, params, rng);
}

void DecisionTree::fit(const Dataset& data,
                       std::span<const std::uint32_t> rows,
                       const TreeParams& params, std::mt19937_64& rng) {
  fit(data.packed(), rows, params, rng);
}

void DecisionTree::fit(const Dataset& data, const TreeParams& params,
                       std::uint64_t seed) {
  fit(data.packed(), params, seed);
}

std::uint32_t DecisionTree::growPacked(PackedGrowContext& ctx,
                                       PackedRows& rows, int depth) {
  const std::size_t words = ctx.words;
  const std::size_t planeCount = ctx.planeCount;
  const std::uint64_t* labels = ctx.data.labels;
  const std::size_t n = rows.n;
  const std::size_t pos = rows.pos;

  const auto nodeIndex = static_cast<std::uint32_t>(nodes_.size());
  Node node;
  node.probability =
      n ? static_cast<float>(static_cast<double>(pos) / static_cast<double>(n))
        : 0.0f;
  nodes_.push_back(node);

  const bool pure = pos == 0 || pos == n;
  if (pure || depth >= ctx.params.maxDepth ||
      n < ctx.params.minSamplesSplit) {
    return nodeIndex;  // leaf
  }

  selectCandidates(ctx.data.featureCount(), ctx.params, ctx.rng,
                   ctx.candidates);

  const double parentImpurity = gini(pos, n);
  double bestGain = 1e-12;
  std::int32_t bestFeature = -1;
  std::size_t bestN1 = 0, bestPos1 = 0;
  for (std::uint32_t feat : ctx.candidates) {
    const std::uint64_t* col = ctx.data.columns[feat];
    std::size_t n1 = 0, pos1 = 0;
    for (std::size_t k = 0; k < planeCount; ++k) {
      const std::uint64_t* plane = rows.planes.data() + k * words;
      std::size_t c = 0, cp = 0;
      for (const std::uint32_t w : rows.active[k]) {
        const std::uint64_t m = plane[w] & col[w];
        c += static_cast<std::size_t>(std::popcount(m));
        cp += static_cast<std::size_t>(std::popcount(m & labels[w]));
      }
      n1 += c << k;
      pos1 += cp << k;
    }
    const std::size_t n0 = n - n1;
    const std::size_t pos0 = pos - pos1;
    if (n0 < ctx.params.minSamplesLeaf || n1 < ctx.params.minSamplesLeaf) {
      continue;
    }
    const double childImpurity =
        (static_cast<double>(n0) * gini(pos0, n0) +
         static_cast<double>(n1) * gini(pos1, n1)) /
        static_cast<double>(n);
    const double gain = parentImpurity - childImpurity;
    if (gain > bestGain) {
      bestGain = gain;
      bestFeature = static_cast<std::int32_t>(feat);
      bestN1 = n1;
      bestPos1 = pos1;
    }
  }
  if (bestFeature < 0) {
    return nodeIndex;  // no useful split found: leaf
  }

  // Partition: rows with the feature set split off into the right child,
  // the rest become the left child in place — plane & col / plane & ~col
  // preserve every row's multiplicity, and only the parent's active words
  // can be populated. The winning split's counts are the children's (n,
  // pos), so neither child rescans anything.
  const std::uint64_t* col =
      ctx.data.columns[static_cast<std::size_t>(bestFeature)];
  PackedRows right;
  right.planes.assign(planeCount * words, 0);
  right.active.resize(planeCount);
  for (std::size_t k = 0; k < planeCount; ++k) {
    std::uint64_t* leftPlane = rows.planes.data() + k * words;
    std::uint64_t* rightPlane = right.planes.data() + k * words;
    std::vector<std::uint32_t>& leftActive = rows.active[k];
    std::vector<std::uint32_t>& rightActive = right.active[k];
    std::size_t keep = 0;
    for (const std::uint32_t w : leftActive) {
      const std::uint64_t v = leftPlane[w];
      const std::uint64_t r = v & col[w];
      const std::uint64_t l = v ^ r;
      leftPlane[w] = l;
      if (l != 0) leftActive[keep++] = w;
      if (r != 0) {
        rightPlane[w] = r;
        rightActive.push_back(w);
      }
    }
    leftActive.resize(keep);
  }
  right.n = bestN1;
  right.pos = bestPos1;
  rows.n = n - bestN1;
  rows.pos = pos - bestPos1;

  nodes_[nodeIndex].feature = bestFeature;
  const std::uint32_t left = growPacked(ctx, rows, depth + 1);
  nodes_[nodeIndex].left = left;
  const std::uint32_t rightIndex = growPacked(ctx, right, depth + 1);
  nodes_[nodeIndex].right = rightIndex;
  return nodeIndex;
}

// ---------------------------------------------------------------------------
// Reference row-scan trainer (the seed algorithm, kept verbatim)
// ---------------------------------------------------------------------------

void DecisionTree::fitReference(const Dataset& data,
                                std::span<const std::uint32_t> rows,
                                const TreeParams& params,
                                std::mt19937_64& rng) {
  if (rows.empty()) {
    throw std::invalid_argument("DecisionTree::fit: no training rows");
  }
  nodes_.clear();
  std::vector<std::uint32_t> work(rows.begin(), rows.end());
  (void)grow(data, work, 0, params, rng);
}

void DecisionTree::fitReference(const Dataset& data, const TreeParams& params,
                                std::uint64_t seed) {
  std::vector<std::uint32_t> rows(data.rowCount());
  std::iota(rows.begin(), rows.end(), 0u);
  std::mt19937_64 rng(seed);
  fitReference(data, rows, params, rng);
}

std::uint32_t DecisionTree::grow(const Dataset& data,
                                 std::vector<std::uint32_t>& rows, int depth,
                                 const TreeParams& params,
                                 std::mt19937_64& rng) {
  const std::size_t n = rows.size();
  std::size_t pos = 0;
  for (std::uint32_t r : rows) pos += data.label(r) ? 1 : 0;

  const auto nodeIndex = static_cast<std::uint32_t>(nodes_.size());
  Node node;
  node.probability =
      n ? static_cast<float>(static_cast<double>(pos) / static_cast<double>(n))
        : 0.0f;
  nodes_.push_back(node);

  const bool pure = pos == 0 || pos == n;
  if (pure || depth >= params.maxDepth || n < params.minSamplesSplit) {
    return nodeIndex;  // leaf
  }

  std::vector<std::uint32_t> candidates;
  selectCandidates(data.featureCount(), params, rng, candidates);

  const double parentImpurity = gini(pos, n);
  double bestGain = 1e-12;
  std::int32_t bestFeature = -1;
  for (std::uint32_t feat : candidates) {
    std::size_t n1 = 0, pos1 = 0;
    for (std::uint32_t r : rows) {
      if (data.feature(r, feat) != 0) {
        ++n1;
        pos1 += data.label(r) ? 1 : 0;
      }
    }
    const std::size_t n0 = n - n1;
    const std::size_t pos0 = pos - pos1;
    if (n0 < params.minSamplesLeaf || n1 < params.minSamplesLeaf) continue;
    const double childImpurity =
        (static_cast<double>(n0) * gini(pos0, n0) +
         static_cast<double>(n1) * gini(pos1, n1)) /
        static_cast<double>(n);
    const double gain = parentImpurity - childImpurity;
    if (gain > bestGain) {
      bestGain = gain;
      bestFeature = static_cast<std::int32_t>(feat);
    }
  }
  if (bestFeature < 0) {
    return nodeIndex;  // no useful split found: leaf
  }

  // Partition rows in place: zeros first.
  auto mid = std::partition(rows.begin(), rows.end(),
                            [&](std::uint32_t r) {
                              return data.feature(
                                         r, static_cast<std::size_t>(
                                                bestFeature)) == 0;
                            });
  std::vector<std::uint32_t> rightRows(mid, rows.end());
  rows.erase(mid, rows.end());

  nodes_[nodeIndex].feature = bestFeature;
  const std::uint32_t left = grow(data, rows, depth + 1, params, rng);
  nodes_[nodeIndex].left = left;
  const std::uint32_t right = grow(data, rightRows, depth + 1, params, rng);
  nodes_[nodeIndex].right = right;
  return nodeIndex;
}

// ---------------------------------------------------------------------------
// Inference
// ---------------------------------------------------------------------------

bool DecisionTree::predict(std::span<const std::uint8_t> features) const {
  return predictProbability(features) >= 0.5;
}

double DecisionTree::predictProbability(
    std::span<const std::uint8_t> features) const {
  if (nodes_.empty()) {
    throw std::logic_error("DecisionTree: predict before fit");
  }
  return probabilityUnchecked(features);
}

double DecisionTree::probabilityUnchecked(
    std::span<const std::uint8_t> features) const noexcept {
  std::uint32_t idx = 0;
  while (nodes_[idx].feature >= 0) {
    const auto feat = static_cast<std::size_t>(nodes_[idx].feature);
    idx = features[feat] ? nodes_[idx].right : nodes_[idx].left;
  }
  return nodes_[idx].probability;
}

std::uint64_t DecisionTree::predictBatch(
    std::span<const std::uint64_t> featureWords,
    std::span<double> probabilities) const {
  if (nodes_.empty()) {
    throw std::logic_error("DecisionTree: predict before fit");
  }
  if (probabilities.size() < 64) {
    throw std::invalid_argument(
        "DecisionTree::predictBatch: need 64 probability slots");
  }
  std::fill_n(probabilities.data(), 64, 0.0);
  accumulateBatch(featureWords, probabilities.data());
  std::uint64_t predictions = 0;
  for (std::size_t lane = 0; lane < 64; ++lane) {
    if (probabilities[lane] >= 0.5) predictions |= std::uint64_t{1} << lane;
  }
  return predictions;
}

void DecisionTree::accumulateBatch(std::span<const std::uint64_t> featureWords,
                                   double* sums) const noexcept {
  accumulateLanes(featureWords, 0, ~std::uint64_t{0}, sums);
}

void DecisionTree::accumulateLanes(std::span<const std::uint64_t> featureWords,
                                   std::uint32_t idx, std::uint64_t mask,
                                   double* sums) const noexcept {
  // Lane-mask traversal: each (node, mask) pair splits its lanes by the
  // feature word and follows only populated sides, so one walk serves all
  // 64 lanes. Pending right branches live on a fixed-size explicit stack
  // sized past any grown tree's depth; pathologically deep trees (only
  // reachable through setNodes/deserialization) spill into recursion.
  struct Frame {
    std::uint32_t idx;
    std::uint64_t mask;
  };
  std::array<Frame, 64> stack;
  std::size_t top = 0;
  for (;;) {
    while (nodes_[idx].feature >= 0) {
      const auto feat = static_cast<std::size_t>(nodes_[idx].feature);
      const std::uint64_t right = mask & featureWords[feat];
      const std::uint64_t left = mask ^ right;
      if (right == 0) {
        idx = nodes_[idx].left;
        continue;
      }
      if (left == 0) {
        idx = nodes_[idx].right;
        mask = right;
        continue;
      }
      if (top < stack.size()) {
        stack[top++] = Frame{nodes_[idx].right, right};
      } else {
        accumulateLanes(featureWords, nodes_[idx].right, right, sums);
      }
      idx = nodes_[idx].left;
      mask = left;
    }
    const double p = nodes_[idx].probability;
    if (mask == ~std::uint64_t{0}) {
      for (std::size_t lane = 0; lane < 64; ++lane) sums[lane] += p;
    } else {
      while (mask != 0) {
        sums[std::countr_zero(mask)] += p;
        mask &= mask - 1;
      }
    }
    if (top == 0) return;
    --top;
    idx = stack[top].idx;
    mask = stack[top].mask;
  }
}

int DecisionTree::depth() const noexcept {
  if (nodes_.empty()) return 0;
  // Iterative depth computation over the flat representation.
  std::vector<std::pair<std::uint32_t, int>> stack{{0u, 1}};
  int best = 0;
  while (!stack.empty()) {
    const auto [idx, d] = stack.back();
    stack.pop_back();
    best = std::max(best, d);
    if (nodes_[idx].feature >= 0) {
      stack.emplace_back(nodes_[idx].left, d + 1);
      stack.emplace_back(nodes_[idx].right, d + 1);
    }
  }
  return best;
}

}  // namespace oisa::ml
