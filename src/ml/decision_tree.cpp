#include "ml/decision_tree.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace oisa::ml {

namespace {

/// Gini impurity of a node with `pos` positives out of `n`.
[[nodiscard]] double gini(std::size_t pos, std::size_t n) noexcept {
  if (n == 0) return 0.0;
  const double q = static_cast<double>(pos) / static_cast<double>(n);
  return 2.0 * q * (1.0 - q);
}

}  // namespace

void DecisionTree::fit(const Dataset& data,
                       std::span<const std::uint32_t> rows,
                       const TreeParams& params, std::mt19937_64& rng) {
  if (rows.empty()) {
    throw std::invalid_argument("DecisionTree::fit: no training rows");
  }
  nodes_.clear();
  std::vector<std::uint32_t> work(rows.begin(), rows.end());
  (void)grow(data, work, 0, params, rng);
}

void DecisionTree::fit(const Dataset& data, const TreeParams& params,
                       std::uint64_t seed) {
  std::vector<std::uint32_t> rows(data.rowCount());
  std::iota(rows.begin(), rows.end(), 0u);
  std::mt19937_64 rng(seed);
  fit(data, rows, params, rng);
}

std::uint32_t DecisionTree::grow(const Dataset& data,
                                 std::vector<std::uint32_t>& rows, int depth,
                                 const TreeParams& params,
                                 std::mt19937_64& rng) {
  const std::size_t n = rows.size();
  std::size_t pos = 0;
  for (std::uint32_t r : rows) pos += data.label(r) ? 1 : 0;

  const auto nodeIndex = static_cast<std::uint32_t>(nodes_.size());
  Node node;
  node.probability =
      n ? static_cast<float>(static_cast<double>(pos) / static_cast<double>(n))
        : 0.0f;
  nodes_.push_back(node);

  const bool pure = pos == 0 || pos == n;
  if (pure || depth >= params.maxDepth || n < params.minSamplesSplit) {
    return nodeIndex;  // leaf
  }

  // Candidate features: all, or a random subset (forest mode).
  const std::size_t f = data.featureCount();
  std::vector<std::uint32_t> candidates;
  if (params.featuresPerSplit == 0 || params.featuresPerSplit >= f) {
    candidates.resize(f);
    std::iota(candidates.begin(), candidates.end(), 0u);
  } else {
    // Partial Fisher-Yates over feature indices.
    candidates.resize(f);
    std::iota(candidates.begin(), candidates.end(), 0u);
    for (std::size_t i = 0; i < params.featuresPerSplit; ++i) {
      std::uniform_int_distribution<std::size_t> pick(i, f - 1);
      std::swap(candidates[i], candidates[pick(rng)]);
    }
    candidates.resize(params.featuresPerSplit);
  }

  const double parentImpurity = gini(pos, n);
  double bestGain = 1e-12;
  std::int32_t bestFeature = -1;
  for (std::uint32_t feat : candidates) {
    std::size_t n1 = 0, pos1 = 0;
    for (std::uint32_t r : rows) {
      if (data.feature(r, feat) != 0) {
        ++n1;
        pos1 += data.label(r) ? 1 : 0;
      }
    }
    const std::size_t n0 = n - n1;
    const std::size_t pos0 = pos - pos1;
    if (n0 < params.minSamplesLeaf || n1 < params.minSamplesLeaf) continue;
    const double childImpurity =
        (static_cast<double>(n0) * gini(pos0, n0) +
         static_cast<double>(n1) * gini(pos1, n1)) /
        static_cast<double>(n);
    const double gain = parentImpurity - childImpurity;
    if (gain > bestGain) {
      bestGain = gain;
      bestFeature = static_cast<std::int32_t>(feat);
    }
  }
  if (bestFeature < 0) {
    return nodeIndex;  // no useful split found: leaf
  }

  // Partition rows in place: zeros first.
  auto mid = std::partition(rows.begin(), rows.end(),
                            [&](std::uint32_t r) {
                              return data.feature(
                                         r, static_cast<std::size_t>(
                                                bestFeature)) == 0;
                            });
  std::vector<std::uint32_t> rightRows(mid, rows.end());
  rows.erase(mid, rows.end());

  nodes_[nodeIndex].feature = bestFeature;
  const std::uint32_t left = grow(data, rows, depth + 1, params, rng);
  nodes_[nodeIndex].left = left;
  const std::uint32_t right = grow(data, rightRows, depth + 1, params, rng);
  nodes_[nodeIndex].right = right;
  return nodeIndex;
}

bool DecisionTree::predict(std::span<const std::uint8_t> features) const {
  return predictProbability(features) >= 0.5;
}

double DecisionTree::predictProbability(
    std::span<const std::uint8_t> features) const {
  if (nodes_.empty()) {
    throw std::logic_error("DecisionTree: predict before fit");
  }
  std::uint32_t idx = 0;
  while (nodes_[idx].feature >= 0) {
    const auto feat = static_cast<std::size_t>(nodes_[idx].feature);
    idx = features[feat] ? nodes_[idx].right : nodes_[idx].left;
  }
  return nodes_[idx].probability;
}

int DecisionTree::depth() const noexcept {
  if (nodes_.empty()) return 0;
  // Iterative depth computation over the flat representation.
  std::vector<std::pair<std::uint32_t, int>> stack{{0u, 1}};
  int best = 0;
  while (!stack.empty()) {
    const auto [idx, d] = stack.back();
    stack.pop_back();
    best = std::max(best, d);
    if (nodes_[idx].feature >= 0) {
      stack.emplace_back(nodes_[idx].left, d + 1);
      stack.emplace_back(nodes_[idx].right, d + 1);
    }
  }
  return best;
}

}  // namespace oisa::ml
