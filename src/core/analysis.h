// oisa_core: closed-form analysis of ISA structural errors under uniform
// random operands.
//
// Carry speculation fails at a path boundary exactly when the speculation
// window is all-propagate and a carry arrives at the window start; with
// uniform operands these events have simple closed forms, which the
// property tests cross-check against Monte-Carlo measurements of the
// behavioral model. Where exact expressions would require joint carry
// distributions (multi-boundary correlation, post-fault sum distributions)
// the functions document their independence approximations.
#pragma once

#include <cstdint>
#include <vector>

#include "core/error_stats.h"
#include "core/isa_config.h"

namespace oisa::core {

/// P(carry into bit `bitIndex`) of an exact addition of uniform random
/// operands with carry-in 0: (1 - 2^-bitIndex) / 2.
[[nodiscard]] double carryProbability(int bitIndex) noexcept;

/// P(speculation fault at path `pathIndex` >= 1) for uniform operands:
/// the S-bit window is all-propagate (2^-S) and a carry reaches the window
/// start. Exact (no approximation). Path 0 never faults.
[[nodiscard]] double faultProbability(const IsaConfig& cfg, int pathIndex);

/// Expected number of speculation faults per addition: sum of the per-path
/// fault probabilities (exact by linearity, despite cross-path
/// correlation).
[[nodiscard]] double meanFaultsPerAddition(const IsaConfig& cfg);

/// P(a fault at this path is repaired by the +-1 correction): the C LSBs
/// of the local sum are uniform, so correction fails with probability
/// 2^-C (all-ones guard). Exact; 0 when C == 0.
[[nodiscard]] double correctionProbability(const IsaConfig& cfg) noexcept;

/// P(E_struct != 0) assuming independent per-path uncompensated faults:
/// 1 - prod(1 - p_i * 2^-C). Cross-path carries are weakly correlated, so
/// this is an approximation (tests allow a few percent of slack).
[[nodiscard]] double structuralErrorRateApprox(const IsaConfig& cfg);

/// Expected signed structural error per addition, assuming per-fault
/// contributions are independent and the preceding sum's balanced MSBs are
/// uniform: sum_i p_i * 2^-C * (-2^(iK) + balancingGain_i). Approximate.
[[nodiscard]] double expectedStructuralErrorApprox(const IsaConfig& cfg);

/// Monte-Carlo measurement of the behavioral model's structural errors
/// under uniform random operands — the empirical counterpart of the closed
/// forms above (property tests cross-check the two; benches quote both).
struct StructuralMonteCarlo {
  std::uint64_t samples = 0;
  std::vector<std::uint64_t> pathFaults;  ///< speculation faults per path
  ErrorStats errors;                      ///< signed E_struct stream

  /// Measured counterpart of faultProbability(cfg, path).
  [[nodiscard]] double faultRate(int path) const;
  /// Measured counterpart of meanFaultsPerAddition(cfg).
  [[nodiscard]] double meanFaultsPerAddition() const;
};

/// Draws `samples` uniform operand pairs (carry-in 0) through the
/// behavioral adder and accumulates fault counts and error statistics.
/// Deterministic for a given seed; samples are drawn in 64-bit words so
/// results are independent of the adder width.
[[nodiscard]] StructuralMonteCarlo sampleStructuralErrors(
    const IsaConfig& cfg, std::uint64_t samples, std::uint64_t seed);

}  // namespace oisa::core
