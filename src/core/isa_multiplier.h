// oisa_core: approximate multiplier built on Inexact Speculative Adders.
//
// The ISA architecture "has already been successfully verified and
// integrated in multiplier circuits" (paper Sec. II, ref [9]). This module
// models that integration: a WxW -> 2W array multiplier whose partial
// products are accumulated by a 2W-bit ISA adder per row, so every
// structural approximation of the adder configuration propagates into the
// product. The gate-level twin lives in oisa_circuits and is cross-checked
// for bit-exactness.
#pragma once

#include <cstdint>

#include "core/isa_adder.h"
#include "core/isa_config.h"

namespace oisa::core {

/// Configuration of the ISA-based array multiplier.
struct MultiplierConfig {
  int width = 16;    ///< operand width W (product is 2W bits, W <= 32)
  IsaConfig adder;   ///< accumulation adder config; adder.width must be 2W

  void validate() const;

  /// Convenience: multiplier of width W whose row adders use the quadruple
  /// (block, spec, correction, reduction) at width 2W.
  [[nodiscard]] static MultiplierConfig make(int width, int block, int spec,
                                             int correction, int reduction);
  /// Exact reference multiplier of width W.
  [[nodiscard]] static MultiplierConfig makeExact(int width);
};

/// Behavioral ISA-based array multiplier.
class IsaMultiplier {
 public:
  explicit IsaMultiplier(const MultiplierConfig& cfg);

  /// Approximate product of two width-bit unsigned operands.
  [[nodiscard]] std::uint64_t multiply(std::uint64_t a,
                                       std::uint64_t b) const;

  /// Exact 2W-bit reference product.
  [[nodiscard]] std::uint64_t exactMultiply(std::uint64_t a,
                                            std::uint64_t b) const noexcept;

  /// Signed structural error of one product.
  [[nodiscard]] std::int64_t structuralError(std::uint64_t a,
                                             std::uint64_t b) const;

  [[nodiscard]] const MultiplierConfig& config() const noexcept {
    return cfg_;
  }

 private:
  MultiplierConfig cfg_;
  IsaAdder rowAdder_;
  std::uint64_t operandMask_;
};

}  // namespace oisa::core
