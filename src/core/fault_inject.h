// oisa_core: deterministic, seedable infrastructure-fault injection.
//
// The paper treats *hardware* faults as first-class simulable events
// (stuck-at injection); this registry does the same for *infrastructure*
// faults — torn checkpoint writes, failed opens, dying grid cells — so
// the recovery paths are regression-testable instead of only exercised
// by real outages.
//
// A plan is a comma-separated list of sites:
//
//   OISA_FAULT_INJECT="checkpoint.write:2,grid.cell:5+,file.open:*"
//
//   site:N   fail exactly the Nth hit of that site (1-based) — a
//            *transient* fault: the retry succeeds;
//   site:N+  fail every hit from the Nth on — a *permanent* fault;
//   site:*   fail every hit (shorthand for site:1+).
//
// Hit counting is per-site and process-global, so a given plan names one
// deterministic failure schedule: same plan + same execution order =
// same faults. (Grid cells are claimed concurrently, so under threads the
// *which-cell* mapping of grid.cell hits is scheduling-dependent; tests
// that need an exact cell pin the plan to single-threaded runs or use
// `*`/`N+` whose effect is order-independent.)
//
// When no plan is armed the hot-path check is one branch on a relaxed
// atomic bool — cheap enough to leave in release builds at every site.
// Tests arm plans programmatically with ScopedFaultPlan; the env var is
// read once at first use for whole-process injection (CI kill tests).
#pragma once

#include <atomic>
#include <string>
#include <vector>

#include "core/status.h"

namespace oisa::core {

namespace fault_inject_detail {
extern std::atomic<bool> gArmed;
[[nodiscard]] bool shouldFailSlow(const char* site);
}  // namespace fault_inject_detail

namespace fault_inject {

/// Well-known sites (callers pass these; tests reference them by name).
inline constexpr const char* kCheckpointWrite = "checkpoint.write";
inline constexpr const char* kCheckpointRead = "checkpoint.read";
inline constexpr const char* kFileOpen = "file.open";
inline constexpr const char* kGridCell = "grid.cell";
inline constexpr const char* kWorkerSpawn = "worker.spawn";
inline constexpr const char* kWorkerHeartbeat = "worker.heartbeat";

/// True when this hit of `site` must fail according to the armed plan.
/// Compiles to a single untaken branch when nothing is armed.
[[nodiscard]] inline bool shouldFail(const char* site) {
  if (!fault_inject_detail::gArmed.load(std::memory_order_relaxed)) {
    return false;
  }
  return fault_inject_detail::shouldFailSlow(site);
}

/// Throws StatusError(code) when this hit of `site` must fail.
inline void maybeThrow(const char* site,
                       StatusCode code = StatusCode::Internal) {
  if (shouldFail(site)) {
    throw StatusError(Status(
        code, std::string("fault injected at site '") + site + "'"));
  }
}

/// Arms `plan` ("" disarms), replacing any previous plan and resetting
/// all hit counters. Throws StatusError(InvalidInput) on a malformed
/// plan. Not meant to race with in-flight shouldFail callers.
void arm(const std::string& plan);

/// Disarms injection and resets hit counters.
void reset();

/// Hits recorded so far for `site` (armed plans only; test introspection).
[[nodiscard]] std::uint64_t hitCount(const std::string& site);

/// Sites with an armed rule that no shouldFail() call ever reached —
/// almost always a misspelled site name in a plan. The same list is
/// warned to stderr at process exit while a plan is still armed, so a
/// typo in a CI smoke script cannot fake a passing injection run.
[[nodiscard]] std::vector<std::string> armedUnhitSites();

}  // namespace fault_inject

/// RAII plan for tests: arms on construction, disarms on destruction.
class ScopedFaultPlan {
 public:
  explicit ScopedFaultPlan(const std::string& plan) {
    fault_inject::arm(plan);
  }
  ~ScopedFaultPlan() { fault_inject::reset(); }
  ScopedFaultPlan(const ScopedFaultPlan&) = delete;
  ScopedFaultPlan& operator=(const ScopedFaultPlan&) = delete;
};

}  // namespace oisa::core
