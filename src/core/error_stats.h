// oisa_core: streaming accumulators for error statistics.
//
// All paper metrics are computed from streams of per-cycle signed errors:
// mean, mean absolute, RMS (the paper's headline metric for relative
// errors), error rate and worst case. The accumulator is single-pass and
// O(1) memory so ten-million-sample characterizations stream through it.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>

namespace oisa::core {

/// Signed difference `a - b` of two unsigned composed output values, as a
/// double. Computed in unsigned space: composed values may use bit 63 at
/// adder widths 63-64, where int64 casts of the operands would overflow.
[[nodiscard]] constexpr double signedErrorAsDouble(std::uint64_t a,
                                                   std::uint64_t b) noexcept {
  return a >= b ? static_cast<double>(a - b) : -static_cast<double>(b - a);
}

/// Single-pass accumulator over a stream of (signed) error values.
class ErrorStats {
 public:
  /// Records one error observation.
  void add(double error) noexcept {
    n_ += 1;
    sum_ += error;
    sumAbs_ += std::abs(error);
    sumSq_ += error * error;
    minV_ = std::min(minV_, error);
    maxV_ = std::max(maxV_, error);
    if (error != 0.0) nonzero_ += 1;
  }

  /// Merges another accumulator (for sharded/parallel runs).
  void merge(const ErrorStats& o) noexcept {
    n_ += o.n_;
    sum_ += o.sum_;
    sumAbs_ += o.sumAbs_;
    sumSq_ += o.sumSq_;
    minV_ = std::min(minV_, o.minV_);
    maxV_ = std::max(maxV_, o.maxV_);
    nonzero_ += o.nonzero_;
  }

  [[nodiscard]] std::uint64_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept {
    return n_ ? sum_ / static_cast<double>(n_) : 0.0;
  }
  [[nodiscard]] double meanAbs() const noexcept {
    return n_ ? sumAbs_ / static_cast<double>(n_) : 0.0;
  }
  /// Root mean square — the paper's main relative-error metric
  /// (proportional to 1/SNR, independent of adder bit-width).
  [[nodiscard]] double rms() const noexcept {
    return n_ ? std::sqrt(sumSq_ / static_cast<double>(n_)) : 0.0;
  }
  /// Fraction of observations with a non-zero error.
  [[nodiscard]] double errorRate() const noexcept {
    return n_ ? static_cast<double>(nonzero_) / static_cast<double>(n_) : 0.0;
  }
  [[nodiscard]] double minValue() const noexcept { return n_ ? minV_ : 0.0; }
  [[nodiscard]] double maxValue() const noexcept { return n_ ? maxV_ : 0.0; }
  [[nodiscard]] double maxAbs() const noexcept {
    return n_ ? std::max(std::abs(minV_), std::abs(maxV_)) : 0.0;
  }

 private:
  std::uint64_t n_ = 0;
  std::uint64_t nonzero_ = 0;
  double sum_ = 0.0;
  double sumAbs_ = 0.0;
  double sumSq_ = 0.0;
  double minV_ = std::numeric_limits<double>::infinity();
  double maxV_ = -std::numeric_limits<double>::infinity();
};

}  // namespace oisa::core
