// oisa_core: CRC-32 (ISO-HDLC / zlib polynomial 0xEDB88320).
//
// Integrity guard for the on-disk artifacts that must detect silent
// corruption — campaign checkpoints and serialized models. A single
// flipped bit anywhere in the guarded bytes changes the checksum, which
// the loaders report as StatusCode::Corruption so callers can fall back
// to recompute instead of consuming garbage.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string_view>

namespace oisa::core {

namespace detail {

consteval std::array<std::uint32_t, 256> makeCrc32Table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

inline constexpr std::array<std::uint32_t, 256> kCrc32Table = makeCrc32Table();

}  // namespace detail

/// Streaming update: feed chunks with `crc = crc32Update(crc, chunk)`,
/// starting from crc32Init().
[[nodiscard]] constexpr std::uint32_t crc32Init() noexcept {
  return 0xFFFFFFFFu;
}

[[nodiscard]] constexpr std::uint32_t crc32Update(
    std::uint32_t crc, std::string_view bytes) noexcept {
  for (const char ch : bytes) {
    crc = detail::kCrc32Table[(crc ^ static_cast<std::uint8_t>(ch)) & 0xFFu] ^
          (crc >> 8);
  }
  return crc;
}

[[nodiscard]] constexpr std::uint32_t crc32Final(std::uint32_t crc) noexcept {
  return crc ^ 0xFFFFFFFFu;
}

/// One-shot CRC-32 of `bytes`.
[[nodiscard]] constexpr std::uint32_t crc32(std::string_view bytes) noexcept {
  return crc32Final(crc32Update(crc32Init(), bytes));
}

}  // namespace oisa::core
