#include "core/fault_inject.h"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <string_view>
#include <unordered_map>

namespace oisa::core {

namespace fault_inject_detail {

std::atomic<bool> gArmed{false};

namespace {

/// One site's schedule: which hits fail.
struct SiteRule {
  std::uint64_t nth = 0;     ///< first failing hit (1-based)
  bool permanent = false;    ///< fail every hit >= nth
  std::uint64_t hits = 0;    ///< hits observed so far
};

struct Registry {
  std::mutex mutex;
  std::unordered_map<std::string, SiteRule> rules;
  // Sites hit while armed but without a rule still count (introspection).
  std::unordered_map<std::string, std::uint64_t> extraHits;
};

Registry& registry() {
  static Registry r;
  return r;
}

/// Parses "site:N", "site:N+" or "site:*" into (site, rule).
Status parseEntry(std::string_view entry, std::string& site, SiteRule& rule) {
  const std::size_t colon = entry.rfind(':');
  if (colon == std::string_view::npos || colon == 0 ||
      colon + 1 == entry.size()) {
    return Status::invalidInput("fault_inject: malformed plan entry '" +
                                std::string(entry) +
                                "' (expected site:N, site:N+ or site:*)");
  }
  site = std::string(entry.substr(0, colon));
  std::string_view spec = entry.substr(colon + 1);
  if (spec == "*") {
    rule = SiteRule{1, true, 0};
    return Status::ok();
  }
  bool permanent = false;
  if (spec.back() == '+') {
    permanent = true;
    spec.remove_suffix(1);
  }
  std::uint64_t nth = 0;
  if (spec.empty()) {
    return Status::invalidInput("fault_inject: empty hit index in '" +
                                std::string(entry) + "'");
  }
  for (const char ch : spec) {
    if (ch < '0' || ch > '9') {
      return Status::invalidInput("fault_inject: bad hit index in '" +
                                  std::string(entry) + "'");
    }
    nth = nth * 10 + static_cast<std::uint64_t>(ch - '0');
  }
  if (nth == 0) {
    return Status::invalidInput(
        "fault_inject: hit indices are 1-based; got 0 in '" +
        std::string(entry) + "'");
  }
  rule = SiteRule{nth, permanent, 0};
  return Status::ok();
}

/// Reads OISA_FAULT_INJECT exactly once, before main touches any site.
/// A malformed env plan aborts loudly: silently ignoring it would turn a
/// CI injection run into a false-green pass.
struct EnvArm {
  EnvArm() {
    const char* env = std::getenv("OISA_FAULT_INJECT");
    if (env != nullptr && *env != '\0') fault_inject::arm(env);
  }
};
const EnvArm gEnvArm;

/// At-exit typo guard: a rule whose site string never matched a real
/// shouldFail() call silently arms *nothing* — a CI smoke script with a
/// misspelled site would pass while injecting no fault at all. Warn
/// about every armed-but-never-reached site when the process exits with
/// a plan still armed (tests that arm via ScopedFaultPlan reset before
/// exit and are exempt). Uses fprintf: std::cerr may already be mid-
/// destruction inside atexit handlers.
void warnUnhitSitesAtExit() {
  for (const std::string& site : fault_inject::armedUnhitSites()) {
    std::fprintf(stderr,
                 "warning: OISA_FAULT_INJECT site '%s' was armed but never "
                 "hit (misspelled site name?)\n",
                 site.c_str());
  }
}

std::once_flag gExitWarningRegistered;

}  // namespace

bool shouldFailSlow(const char* site) {
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mutex);
  const auto it = r.rules.find(site);
  if (it == r.rules.end()) {
    ++r.extraHits[site];
    return false;
  }
  SiteRule& rule = it->second;
  ++rule.hits;
  return rule.permanent ? rule.hits >= rule.nth : rule.hits == rule.nth;
}

}  // namespace fault_inject_detail

namespace fault_inject {

void arm(const std::string& plan) {
  using fault_inject_detail::gArmed;
  auto& r = fault_inject_detail::registry();
  decltype(r.rules) rules;
  std::size_t begin = 0;
  while (begin <= plan.size()) {
    std::size_t end = plan.find(',', begin);
    if (end == std::string::npos) end = plan.size();
    const std::string_view entry =
        std::string_view(plan).substr(begin, end - begin);
    begin = end + 1;
    if (entry.empty()) continue;
    std::string site;
    fault_inject_detail::SiteRule rule;
    throwIfError(fault_inject_detail::parseEntry(entry, site, rule));
    rules[std::move(site)] = rule;
  }
  {
    const std::lock_guard<std::mutex> lock(r.mutex);
    r.rules = std::move(rules);
    r.extraHits.clear();
    gArmed.store(!r.rules.empty(), std::memory_order_relaxed);
  }
  std::call_once(fault_inject_detail::gExitWarningRegistered, [] {
    (void)std::atexit(fault_inject_detail::warnUnhitSitesAtExit);
  });
}

void reset() {
  auto& r = fault_inject_detail::registry();
  const std::lock_guard<std::mutex> lock(r.mutex);
  r.rules.clear();
  r.extraHits.clear();
  fault_inject_detail::gArmed.store(false, std::memory_order_relaxed);
}

std::uint64_t hitCount(const std::string& site) {
  auto& r = fault_inject_detail::registry();
  const std::lock_guard<std::mutex> lock(r.mutex);
  if (const auto it = r.rules.find(site); it != r.rules.end()) {
    return it->second.hits;
  }
  if (const auto it = r.extraHits.find(site); it != r.extraHits.end()) {
    return it->second;
  }
  return 0;
}

std::vector<std::string> armedUnhitSites() {
  auto& r = fault_inject_detail::registry();
  const std::lock_guard<std::mutex> lock(r.mutex);
  std::vector<std::string> sites;
  for (const auto& [site, rule] : r.rules) {
    if (rule.hits == 0) sites.push_back(site);
  }
  std::sort(sites.begin(), sites.end());  // deterministic warning order
  return sites;
}

}  // namespace fault_inject

}  // namespace oisa::core
