// oisa_core: minimal fork/exec + pipe wrapper for process-isolated work.
//
// The sharded campaign supervisor (experiments/shard.h) needs exactly
// four things from the OS: spawn a child running this same binary with
// different flags, read its heartbeat bytes without blocking, learn how
// it ended (exit code vs. signal), and kill it when it stalls. This
// wrapper provides those four and nothing else — no shells, no stdio
// redirection, no job control.
//
// Heartbeat pipe: spawn() creates a pipe, keeps the (non-blocking) read
// end, and hands the write end to the child through the
// OISA_HEARTBEAT_FD environment variable. Children that know the
// protocol (experiments::HeartbeatEmitter) write newline-framed
// messages; children that don't simply inherit an unused fd. The pipe
// doubles as a liveness signal: EOF on the read end means the child is
// gone even before the reaper notices.
//
// Fault site "worker.spawn" (core/fault_inject.h) makes spawn() itself
// fail deterministically, so supervisor retry/backoff paths are
// regression-testable without exhausting real PIDs.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/status.h"

namespace oisa::core {

/// How a child ended: normal exit (with code) or a terminating signal.
struct ProcessExit {
  enum class Kind { Exited, Signaled };
  Kind kind = Kind::Exited;
  int exitCode = 0;  ///< valid when kind == Exited
  int signal = 0;    ///< valid when kind == Signaled

  [[nodiscard]] bool clean() const noexcept {
    return kind == Kind::Exited && exitCode == 0;
  }
  /// "exit 3" or "signal 9 (Killed)".
  [[nodiscard]] std::string toString() const;
};

/// One spawned child process plus the read end of its heartbeat pipe.
/// Move-only. The destructor never leaks a zombie: a still-running child
/// is SIGKILLed and reaped (supervisors that care about graceful exits
/// call wait()/poll() themselves first).
class Subprocess {
 public:
  Subprocess() = default;
  Subprocess(Subprocess&& other) noexcept;
  Subprocess& operator=(Subprocess&& other) noexcept;
  Subprocess(const Subprocess&) = delete;
  Subprocess& operator=(const Subprocess&) = delete;
  ~Subprocess();

  /// Forks and execs `binary` with `args` (argv[0] is set to `binary`).
  /// `extraEnv` entries are added to the inherited environment. The
  /// child's OISA_HEARTBEAT_FD names the pipe write end. Returns IoError
  /// when the fork/pipe fails (including via the "worker.spawn" fault
  /// site); an exec failure surfaces as the child exiting 127.
  [[nodiscard]] static StatusOr<Subprocess> spawn(
      const std::string& binary, const std::vector<std::string>& args,
      const std::vector<std::pair<std::string, std::string>>& extraEnv = {});

  [[nodiscard]] bool valid() const noexcept { return pid_ > 0; }
  [[nodiscard]] int pid() const noexcept { return pid_; }
  /// Non-blocking read end of the heartbeat pipe (-1 after EOF/close).
  [[nodiscard]] int heartbeatFd() const noexcept { return fd_; }

  /// Appends available heartbeat bytes to `out` without blocking.
  /// Returns the byte count, 0 when nothing is pending, or -1 on EOF
  /// (the write end is gone; the fd is closed as a side effect).
  int readHeartbeat(std::string& out);

  /// Reaps the child if it has ended (WNOHANG); std::nullopt while it is
  /// still running. Idempotent after the first successful reap.
  [[nodiscard]] std::optional<ProcessExit> poll();

  /// Blocks until the child ends and reaps it.
  ProcessExit wait();

  /// Sends `signal` (default SIGKILL) to a still-running child.
  void kill(int signal);

 private:
  void closeFd() noexcept;

  int pid_ = -1;
  int fd_ = -1;
  std::optional<ProcessExit> exit_;  ///< set once reaped
};

/// Absolute path of the running executable (/proc/self/exe where that
/// exists), falling back to `fallback` — typically argv[0]. Supervisors
/// use this to re-invoke their own binary as a shard worker.
[[nodiscard]] std::string selfExecutablePath(const char* fallback);

}  // namespace oisa::core
