// oisa_core: bit-level-equivalent error distributions (paper Fig. 10).
//
// Arithmetic errors are translated to their equivalent bit positions by
// XOR-ing two value streams (e.g. y_gold vs y_diamond for structural
// errors, y_silver vs y_gold for timing errors) and counting per-position
// flip rates, the "internal error rate" of the paper.
#pragma once

#include <cstdint>
#include <vector>

namespace oisa::core {

/// Per-bit-position flip-rate histogram between two value streams.
class BitErrorDistribution {
 public:
  /// `width` — number of bit positions tracked (sum bits, optionally +1 for
  /// the carry-out).
  explicit BitErrorDistribution(int width);

  /// Records one cycle: every differing bit position gets one flip count.
  void add(std::uint64_t observed, std::uint64_t reference) noexcept;

  /// Internal error rate of bit `position` (flips / cycles).
  [[nodiscard]] double rate(int position) const;

  /// All per-position rates, LSB first.
  [[nodiscard]] std::vector<double> rates() const;

  [[nodiscard]] int width() const noexcept { return width_; }
  [[nodiscard]] std::uint64_t cycles() const noexcept { return cycles_; }
  [[nodiscard]] std::uint64_t flips(int position) const {
    return flips_.at(static_cast<std::size_t>(position));
  }
  /// Total flips across all positions (for quick "any error" checks).
  [[nodiscard]] std::uint64_t totalFlips() const noexcept;

 private:
  int width_;
  std::uint64_t cycles_ = 0;
  std::vector<std::uint64_t> flips_;
};

}  // namespace oisa::core
