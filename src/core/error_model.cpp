#include "core/error_model.h"

namespace oisa::core {

ErrorSample decomposeErrors(const OutputTriple& t) noexcept {
  ErrorSample s;
  s.eStruct = static_cast<std::int64_t>(t.gold) -
              static_cast<std::int64_t>(t.diamond);
  s.eTiming = static_cast<std::int64_t>(t.silver) -
              static_cast<std::int64_t>(t.gold);
  s.eJoint = s.eStruct + s.eTiming;
  if (t.diamond != 0) {
    const double d = static_cast<double>(t.diamond);
    s.reStruct = static_cast<double>(s.eStruct) / d;
    s.reTiming = static_cast<double>(s.eTiming) / d;
    s.reJoint = static_cast<double>(s.eJoint) / d;
  }
  return s;
}

void ErrorCombination::add(const OutputTriple& t) noexcept {
  const ErrorSample s = decomposeErrors(t);
  ++cycles_;
  eStruct_.add(static_cast<double>(s.eStruct));
  eTiming_.add(static_cast<double>(s.eTiming));
  eJoint_.add(static_cast<double>(s.eJoint));
  if (s.reStruct) {
    reStruct_.add(*s.reStruct);
    reTiming_.add(*s.reTiming);
    reJoint_.add(*s.reJoint);
  } else {
    ++skipped_;
  }
}

void ErrorCombination::merge(const ErrorCombination& o) noexcept {
  eStruct_.merge(o.eStruct_);
  eTiming_.merge(o.eTiming_);
  eJoint_.merge(o.eJoint_);
  reStruct_.merge(o.reStruct_);
  reTiming_.merge(o.reTiming_);
  reJoint_.merge(o.reJoint_);
  skipped_ += o.skipped_;
  cycles_ += o.cycles_;
}

}  // namespace oisa::core
