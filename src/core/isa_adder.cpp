#include "core/isa_adder.h"

#include <bit>
#include <stdexcept>

namespace oisa::core {

namespace {
/// Low-n-bit mask, safe for n in [0, 64].
[[nodiscard]] constexpr std::uint64_t maskBits(int n) noexcept {
  if (n <= 0) return 0;
  if (n >= 64) return ~std::uint64_t{0};
  return (std::uint64_t{1} << n) - 1;
}
}  // namespace

IsaAdder::IsaAdder(const IsaConfig& cfg) : cfg_(cfg) {
  cfg_.validate();
  mask_ = maskBits(cfg_.width);
  blockMask_ = cfg_.exact ? mask_ : maskBits(cfg_.block);
}

IsaSum IsaAdder::exactAdd(std::uint64_t a, std::uint64_t b,
                          bool carryIn) const {
  a &= mask_;
  b &= mask_;
  // Split the top bit off so width-64 carry-out is computable without
  // 65-bit arithmetic.
  const std::uint64_t low = (a & (mask_ >> 1)) + (b & (mask_ >> 1)) +
                            (carryIn ? 1u : 0u);
  const int top = cfg_.width - 1;
  const std::uint64_t topSum = ((a >> top) & 1u) + ((b >> top) & 1u) +
                               ((low >> top) & 1u);
  IsaSum r;
  r.sum = ((low & maskBits(top)) | ((topSum & 1u) << top)) & mask_;
  r.carryOut = (topSum >> 1) != 0;
  return r;
}

IsaSum IsaAdder::add(std::uint64_t a, std::uint64_t b, bool carryIn) const {
  std::vector<PathTrace> traces;
  return addTraced(a, b, carryIn, traces);
}

IsaSum IsaAdder::addTraced(std::uint64_t a, std::uint64_t b, bool carryIn,
                           std::vector<PathTrace>& traces) const {
  a &= mask_;
  b &= mask_;
  if (cfg_.exact) {
    traces.assign(1, PathTrace{});
    return exactAdd(a, b, carryIn);
  }
  const int k = cfg_.block;
  const int paths = cfg_.pathCount();
  const int s = cfg_.spec;
  const int c = cfg_.correction;
  const int r = cfg_.reduction;
  const std::uint64_t topRMask = maskBits(r) << (k - r);

  traces.assign(static_cast<std::size_t>(paths), PathTrace{});
  std::vector<std::uint64_t> sums(static_cast<std::size_t>(paths), 0);
  std::vector<bool> couts(static_cast<std::size_t>(paths), false);
  std::vector<bool> specs(static_cast<std::size_t>(paths), false);

  // Stage 1: concurrent speculative paths (SPEC + ADD).
  for (int i = 0; i < paths; ++i) {
    const int base = i * k;
    const std::uint64_t ai = (a >> base) & blockMask_;
    const std::uint64_t bi = (b >> base) & blockMask_;
    bool spec = false;
    if (i == 0) {
      spec = carryIn;  // the first path uses the exact adder carry-in
    } else if (s > 0) {
      // Carry look-ahead over the S bits preceding this path, with the
      // window carry-in speculated at 0 (or 1 for the dual polarity): the
      // speculated carry is the carry-out of the S-bit window addition.
      const std::uint64_t aw = (a >> (base - s)) & maskBits(s);
      const std::uint64_t bw = (b >> (base - s)) & maskBits(s);
      const std::uint64_t win = aw + bw + (cfg_.speculateHigh ? 1u : 0u);
      spec = ((win >> s) & 1u) != 0;
    } else {
      spec = cfg_.speculateHigh;  // S == 0: constant speculation
    }
    const std::uint64_t raw = ai + bi + (spec ? 1u : 0u);
    sums[static_cast<std::size_t>(i)] = raw & blockMask_;
    couts[static_cast<std::size_t>(i)] = ((raw >> k) & 1u) != 0;
    specs[static_cast<std::size_t>(i)] = spec;
    traces[static_cast<std::size_t>(i)].specCarry = spec;
    traces[static_cast<std::size_t>(i)].rawSum = raw & blockMask_;
  }

  // Stage 2: COMP blocks. Each path compares its speculated carry against
  // the carry-out of the preceding sub-adder, then corrects its own LSBs or
  // balances the preceding sum's MSBs.
  for (int i = 1; i < paths; ++i) {
    const auto idx = static_cast<std::size_t>(i);
    const bool cPrev = couts[idx - 1];
    traces[idx].trueCarryIn = cPrev;
    const int err = static_cast<int>(cPrev) - static_cast<int>(specs[idx]);
    traces[idx].faultDirection = err;
    if (err == 0) continue;
    const std::uint64_t lowC = sums[idx] & maskBits(c);
    const std::int64_t blockWeight = std::int64_t{1}
                                     << (static_cast<unsigned>(i) *
                                         static_cast<unsigned>(k));
    const std::int64_t prevWeight = std::int64_t{1}
                                    << (static_cast<unsigned>(i - 1) *
                                        static_cast<unsigned>(k));
    if (err > 0) {
      // Missed carry: the local sum is short of +1.
      if (c > 0 && lowC != maskBits(c)) {
        sums[idx] += 1;  // stays within the C-bit group by the guard above
        traces[idx].corrected = true;
      } else if (r > 0) {
        // Preceding sum is 2^k too low (its carry was dropped): saturating
        // its top R bits towards 1 shrinks the deficit below 2^(k-r).
        const std::int64_t delta = static_cast<std::int64_t>(
            (sums[idx - 1] | topRMask) - sums[idx - 1]);
        traces[idx].errorContribution = -blockWeight + delta * prevWeight;
        sums[idx - 1] |= topRMask;
        traces[idx].balanced = true;
      } else {
        traces[idx].errorContribution = -blockWeight;
      }
    } else {
      // Spurious carry: the local sum is +1 too high.
      if (c > 0 && lowC != 0) {
        sums[idx] -= 1;
        traces[idx].corrected = true;
      } else if (r > 0) {
        const std::int64_t delta = static_cast<std::int64_t>(
            sums[idx - 1] - (sums[idx - 1] & ~topRMask));
        traces[idx].errorContribution = blockWeight - delta * prevWeight;
        sums[idx - 1] &= ~topRMask;
        traces[idx].balanced = true;
      } else {
        traces[idx].errorContribution = blockWeight;
      }
    }
  }

  IsaSum result;
  for (int i = 0; i < paths; ++i) {
    result.sum |= sums[static_cast<std::size_t>(i)]
                  << (static_cast<unsigned>(i) * static_cast<unsigned>(k));
  }
  result.sum &= mask_;
  result.carryOut = couts[static_cast<std::size_t>(paths - 1)];
  return result;
}

std::vector<int> equivalentBitPositions(std::span<const PathTrace> traces) {
  std::vector<int> positions;
  for (const PathTrace& t : traces) {
    if (t.errorContribution == 0) continue;
    const auto magnitude = static_cast<std::uint64_t>(
        t.errorContribution < 0 ? -t.errorContribution : t.errorContribution);
    positions.push_back(63 - std::countl_zero(magnitude));
  }
  return positions;
}

std::int64_t IsaAdder::structuralError(std::uint64_t a, std::uint64_t b,
                                       bool carryIn) const {
  const IsaSum gold = add(a, b, carryIn);
  const IsaSum diamond = exactAdd(a, b, carryIn);
  // Subtract in unsigned space (wraps, then two's-complement cast): composed
  // values may use bit 63 at widths 63-64, where int64 casts would overflow.
  return static_cast<std::int64_t>(gold.value(cfg_.width) -
                                   diamond.value(cfg_.width));
}

}  // namespace oisa::core
