#include "core/isa_config.h"

#include <stdexcept>

namespace oisa::core {

std::string IsaConfig::name() const {
  if (exact) return "exact";
  return "(" + std::to_string(block) + "," + std::to_string(spec) + "," +
         std::to_string(correction) + "," + std::to_string(reduction) + ")" +
         (speculateHigh ? "+" : "");
}

void IsaConfig::validate() const {
  if (width < 1 || width > 64) {
    throw std::invalid_argument("IsaConfig: width must be in [1,64]");
  }
  if (exact) return;
  if (block < 1 || block > width || width % block != 0) {
    throw std::invalid_argument(
        "IsaConfig: block must divide width (got block=" +
        std::to_string(block) + ", width=" + std::to_string(width) + ")");
  }
  if (spec < 0 || spec > block) {
    throw std::invalid_argument("IsaConfig: spec must be in [0, block]");
  }
  if (correction < 0 || correction > block) {
    throw std::invalid_argument("IsaConfig: correction must be in [0, block]");
  }
  if (reduction < 0 || reduction > block) {
    throw std::invalid_argument("IsaConfig: reduction must be in [0, block]");
  }
}

IsaConfig makeIsa(int block, int spec, int correction, int reduction,
                  int width) {
  IsaConfig cfg;
  cfg.width = width;
  cfg.block = block;
  cfg.spec = spec;
  cfg.correction = correction;
  cfg.reduction = reduction;
  cfg.exact = false;
  cfg.validate();
  return cfg;
}

IsaConfig makeExact(int width) {
  IsaConfig cfg;
  cfg.width = width;
  cfg.exact = true;
  cfg.validate();
  return cfg;
}

const std::vector<IsaConfig>& paperDesigns() {
  static const std::vector<IsaConfig> designs = {
      makeIsa(8, 0, 0, 0),  makeIsa(8, 0, 0, 2),  makeIsa(8, 0, 0, 4),
      makeIsa(8, 0, 1, 4),  makeIsa(8, 0, 1, 6),  makeIsa(16, 0, 0, 0),
      makeIsa(16, 1, 0, 0), makeIsa(16, 1, 0, 2), makeIsa(16, 2, 0, 4),
      makeIsa(16, 2, 1, 6), makeIsa(16, 7, 0, 8), makeExact(32),
  };
  return designs;
}

}  // namespace oisa::core
