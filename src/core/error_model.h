// oisa_core: the paper's combined structural + timing error model (Sec. IV).
//
// Three output values per cycle:
//   y_diamond — ideal output of an exact addition,
//   y_gold    — expected output of the implemented (inexact) circuit:
//               structural errors only,
//   y_silver  — output of the over-clocked implemented circuit: structural
//               plus timing errors.
// Signed arithmetic errors:   E_struct = y_gold  - y_diamond
//                             E_timing = y_silver - y_gold
//                             E_joint  = E_struct + E_timing
// Relative errors divide both contributions by the *exact* result
// y_diamond (eq. 3), keeping signs so contributions may add (Fig. 4) or
// compensate (Fig. 5).
#pragma once

#include <cstdint>
#include <optional>

#include "core/error_stats.h"

namespace oisa::core {

/// One cycle's worth of the three abstraction-level outputs.
struct OutputTriple {
  std::uint64_t diamond = 0;  ///< exact addition result
  std::uint64_t gold = 0;     ///< properly-clocked inexact circuit
  std::uint64_t silver = 0;   ///< over-clocked inexact circuit
};

/// Signed per-cycle error decomposition.
struct ErrorSample {
  std::int64_t eStruct = 0;
  std::int64_t eTiming = 0;
  std::int64_t eJoint = 0;                 ///< == eStruct + eTiming always
  std::optional<double> reStruct;          ///< empty when y_diamond == 0
  std::optional<double> reTiming;
  std::optional<double> reJoint;
};

/// Decomposes one output triple into signed error contributions.
[[nodiscard]] ErrorSample decomposeErrors(const OutputTriple& t) noexcept;

/// Streaming accumulator implementing the Fig. 6 pseudo-code: feed one
/// OutputTriple per cycle, read off the per-contribution statistics.
class ErrorCombination {
 public:
  /// Records one cycle. Cycles with y_diamond == 0 contribute to the
  /// arithmetic statistics but are skipped for relative errors (division by
  /// the exact result is undefined); `skippedRelative()` counts them.
  void add(const OutputTriple& t) noexcept;

  [[nodiscard]] const ErrorStats& arithStruct() const noexcept {
    return eStruct_;
  }
  [[nodiscard]] const ErrorStats& arithTiming() const noexcept {
    return eTiming_;
  }
  [[nodiscard]] const ErrorStats& arithJoint() const noexcept {
    return eJoint_;
  }
  [[nodiscard]] const ErrorStats& relStruct() const noexcept {
    return reStruct_;
  }
  [[nodiscard]] const ErrorStats& relTiming() const noexcept {
    return reTiming_;
  }
  [[nodiscard]] const ErrorStats& relJoint() const noexcept {
    return reJoint_;
  }
  [[nodiscard]] std::uint64_t skippedRelative() const noexcept {
    return skipped_;
  }
  [[nodiscard]] std::uint64_t cycles() const noexcept { return cycles_; }

  void merge(const ErrorCombination& o) noexcept;

 private:
  ErrorStats eStruct_, eTiming_, eJoint_;
  ErrorStats reStruct_, reTiming_, reJoint_;
  std::uint64_t skipped_ = 0;
  std::uint64_t cycles_ = 0;
};

}  // namespace oisa::core
