#include "core/subprocess.h"

#include <cerrno>
#include <cstring>
#include <utility>

#include "core/fault_inject.h"

#ifndef _WIN32
#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>
#endif

namespace oisa::core {

std::string ProcessExit::toString() const {
  if (kind == Kind::Exited) return "exit " + std::to_string(exitCode);
#ifndef _WIN32
  const char* name = strsignal(signal);
  return "signal " + std::to_string(signal) +
         (name != nullptr ? " (" + std::string(name) + ")" : "");
#else
  return "signal " + std::to_string(signal);
#endif
}

Subprocess::Subprocess(Subprocess&& other) noexcept
    : pid_(std::exchange(other.pid_, -1)),
      fd_(std::exchange(other.fd_, -1)),
      exit_(std::exchange(other.exit_, std::nullopt)) {}

Subprocess& Subprocess::operator=(Subprocess&& other) noexcept {
  if (this != &other) {
    this->~Subprocess();
    pid_ = std::exchange(other.pid_, -1);
    fd_ = std::exchange(other.fd_, -1);
    exit_ = std::exchange(other.exit_, std::nullopt);
  }
  return *this;
}

Subprocess::~Subprocess() {
#ifndef _WIN32
  if (valid() && !exit_.has_value()) {
    ::kill(pid_, SIGKILL);
    (void)wait();  // never leak a zombie
  }
#endif
  closeFd();
}

void Subprocess::closeFd() noexcept {
#ifndef _WIN32
  if (fd_ >= 0) ::close(fd_);
#endif
  fd_ = -1;
}

#ifndef _WIN32

StatusOr<Subprocess> Subprocess::spawn(
    const std::string& binary, const std::vector<std::string>& args,
    const std::vector<std::pair<std::string, std::string>>& extraEnv) {
  if (fault_inject::shouldFail(fault_inject::kWorkerSpawn)) {
    return Status::ioError("spawn '" + binary + "': fault injected");
  }
  int fds[2] = {-1, -1};
  if (::pipe(fds) != 0) {
    return Status::ioError("pipe: " + std::string(std::strerror(errno)));
  }
  // Read end: supervisor side, non-blocking, invisible to the child.
  (void)::fcntl(fds[0], F_SETFL, O_NONBLOCK);
  (void)::fcntl(fds[0], F_SETFD, FD_CLOEXEC);

  const pid_t pid = ::fork();
  if (pid < 0) {
    const Status s =
        Status::ioError("fork: " + std::string(std::strerror(errno)));
    ::close(fds[0]);
    ::close(fds[1]);
    return s;
  }
  if (pid == 0) {
    // Child: keep only the pipe write end, advertise it, exec. Only
    // async-signal-safe-ish calls happen between fork and exec; the
    // argv/env strings are assembled before exec touches the heap via
    // std::string (single-threaded child, so heap use is safe anyway).
    ::close(fds[0]);
    const std::string fdText = std::to_string(fds[1]);
    ::setenv("OISA_HEARTBEAT_FD", fdText.c_str(), 1);
    for (const auto& [key, value] : extraEnv) {
      ::setenv(key.c_str(), value.c_str(), 1);
    }
    std::vector<char*> argv;
    argv.reserve(args.size() + 2);
    argv.push_back(const_cast<char*>(binary.c_str()));
    for (const std::string& a : args) {
      argv.push_back(const_cast<char*>(a.c_str()));
    }
    argv.push_back(nullptr);
    ::execv(binary.c_str(), argv.data());
    // Exec failed: report on stderr and die with the conventional 127.
    const std::string msg =
        "subprocess: exec '" + binary + "': " + std::strerror(errno) + "\n";
    (void)!::write(STDERR_FILENO, msg.data(), msg.size());
    ::_exit(127);
  }
  // Parent.
  ::close(fds[1]);
  Subprocess child;
  child.pid_ = static_cast<int>(pid);
  child.fd_ = fds[0];
  return child;
}

int Subprocess::readHeartbeat(std::string& out) {
  if (fd_ < 0) return -1;
  char buffer[4096];
  int total = 0;
  for (;;) {
    const ssize_t n = ::read(fd_, buffer, sizeof buffer);
    if (n > 0) {
      out.append(buffer, static_cast<std::size_t>(n));
      total += static_cast<int>(n);
      continue;
    }
    if (n == 0) {  // EOF: the write end is gone
      closeFd();
      return total > 0 ? total : -1;
    }
    if (errno == EINTR) continue;
    // EAGAIN/EWOULDBLOCK: drained everything currently available.
    return total;
  }
}

std::optional<ProcessExit> Subprocess::poll() {
  if (exit_.has_value()) return exit_;
  if (!valid()) return std::nullopt;
  int status = 0;
  const pid_t r = ::waitpid(pid_, &status, WNOHANG);
  if (r != pid_) return std::nullopt;
  ProcessExit e;
  if (WIFSIGNALED(status)) {
    e.kind = ProcessExit::Kind::Signaled;
    e.signal = WTERMSIG(status);
  } else {
    e.kind = ProcessExit::Kind::Exited;
    e.exitCode = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  }
  exit_ = e;
  return exit_;
}

ProcessExit Subprocess::wait() {
  if (exit_.has_value()) return *exit_;
  int status = 0;
  pid_t r = 0;
  do {
    r = ::waitpid(pid_, &status, 0);
  } while (r < 0 && errno == EINTR);
  ProcessExit e;
  if (r == pid_ && WIFSIGNALED(status)) {
    e.kind = ProcessExit::Kind::Signaled;
    e.signal = WTERMSIG(status);
  } else {
    e.kind = ProcessExit::Kind::Exited;
    e.exitCode = (r == pid_ && WIFEXITED(status)) ? WEXITSTATUS(status) : -1;
  }
  exit_ = e;
  return *exit_;
}

void Subprocess::kill(int signal) {
  if (valid() && !exit_.has_value()) ::kill(pid_, signal);
}

std::string selfExecutablePath(const char* fallback) {
  char buffer[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buffer, sizeof buffer - 1);
  if (n > 0) return std::string(buffer, static_cast<std::size_t>(n));
  return fallback != nullptr ? fallback : "";
}

#else  // _WIN32: the sharded supervisor is POSIX-only; fail loudly.

StatusOr<Subprocess> Subprocess::spawn(
    const std::string& binary, const std::vector<std::string>&,
    const std::vector<std::pair<std::string, std::string>>&) {
  return Status::internal("subprocess: unsupported on this platform ('" +
                          binary + "')");
}
int Subprocess::readHeartbeat(std::string&) { return -1; }
std::optional<ProcessExit> Subprocess::poll() { return std::nullopt; }
ProcessExit Subprocess::wait() { return ProcessExit{}; }
void Subprocess::kill(int) {}
std::string selfExecutablePath(const char* fallback) {
  return fallback != nullptr ? fallback : "";
}

#endif

}  // namespace oisa::core
