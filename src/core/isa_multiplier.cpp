#include "core/isa_multiplier.h"

#include <stdexcept>

namespace oisa::core {

void MultiplierConfig::validate() const {
  if (width < 1 || width > 32) {
    throw std::invalid_argument("MultiplierConfig: width must be 1..32");
  }
  adder.validate();
  if (adder.width != 2 * width) {
    throw std::invalid_argument(
        "MultiplierConfig: adder.width must be twice the operand width");
  }
}

MultiplierConfig MultiplierConfig::make(int width, int block, int spec,
                                        int correction, int reduction) {
  MultiplierConfig cfg;
  cfg.width = width;
  cfg.adder = makeIsa(block, spec, correction, reduction, 2 * width);
  cfg.validate();
  return cfg;
}

MultiplierConfig MultiplierConfig::makeExact(int width) {
  MultiplierConfig cfg;
  cfg.width = width;
  cfg.adder = oisa::core::makeExact(2 * width);
  cfg.validate();
  return cfg;
}

IsaMultiplier::IsaMultiplier(const MultiplierConfig& cfg)
    : cfg_(cfg), rowAdder_(cfg.adder) {
  cfg_.validate();
  operandMask_ = cfg_.width >= 64 ? ~std::uint64_t{0}
                                  : (std::uint64_t{1} << cfg_.width) - 1;
}

std::uint64_t IsaMultiplier::multiply(std::uint64_t a,
                                      std::uint64_t b) const {
  a &= operandMask_;
  b &= operandMask_;
  // Row-by-row accumulation, exactly like the gate-level array: the running
  // sum goes through the (approximate) 2W-bit row adder once per set of
  // partial-product bits. Row 0 initializes the accumulator directly.
  std::uint64_t acc = (b & 1u) ? a : 0;
  for (int i = 1; i < cfg_.width; ++i) {
    const std::uint64_t pp = ((b >> i) & 1u) ? (a << i) : 0;
    acc = rowAdder_.add(acc, pp).sum;
  }
  return acc;
}

std::uint64_t IsaMultiplier::exactMultiply(std::uint64_t a,
                                           std::uint64_t b) const noexcept {
  return (a & operandMask_) * (b & operandMask_);
}

std::int64_t IsaMultiplier::structuralError(std::uint64_t a,
                                            std::uint64_t b) const {
  return static_cast<std::int64_t>(multiply(a, b)) -
         static_cast<std::int64_t>(exactMultiply(a, b));
}

}  // namespace oisa::core
