#include "core/analysis.h"

#include <cmath>
#include <random>
#include <stdexcept>

#include "core/isa_adder.h"

namespace oisa::core {

double carryProbability(int bitIndex) noexcept {
  if (bitIndex <= 0) return 0.0;
  return 0.5 * (1.0 - std::ldexp(1.0, -bitIndex));
}

namespace {

/// P(speculated carry of a path = 1): the S-bit window generates, which for
/// uniform bits is the S-bit carry-generation probability. Path 0 uses the
/// external carry-in (assumed 0), and S = 0 speculates constant 0.
double specOneProbability(const IsaConfig& cfg, int pathIndex) noexcept {
  if (pathIndex == 0 || cfg.spec == 0) return 0.0;
  return carryProbability(cfg.spec);
}

/// P(a carry reaches the window start of path `pathIndex` inside the
/// circuit). The carry is produced by block pathIndex-1 from its m = K - S
/// low bits plus its own speculated carry-in surviving an all-propagate
/// chain: P(G_m) + 2^-m * P(spec_{i-1} = 1). Exact under bit uniformity.
double carryAtWindowStart(const IsaConfig& cfg, int pathIndex) noexcept {
  const int m = cfg.block - cfg.spec;
  return carryProbability(m) +
         std::ldexp(1.0, -m) * specOneProbability(cfg, pathIndex - 1);
}

}  // namespace

double faultProbability(const IsaConfig& cfg, int pathIndex) {
  cfg.validate();
  if (cfg.exact) return 0.0;
  if (cfg.speculateHigh) {
    throw std::invalid_argument(
        "faultProbability: closed forms cover speculate-at-0 designs only");
  }
  if (pathIndex < 0 || pathIndex >= cfg.pathCount()) {
    throw std::invalid_argument("faultProbability: bad path index");
  }
  if (pathIndex == 0) return 0.0;  // true carry-in, never speculates
  // Fault: the S window bits all XOR-propagate (the only way the window
  // both fails to generate and passes the incoming carry) and a carry
  // reaches the window start.
  return std::ldexp(1.0, -cfg.spec) * carryAtWindowStart(cfg, pathIndex);
}

double meanFaultsPerAddition(const IsaConfig& cfg) {
  cfg.validate();
  if (cfg.exact) return 0.0;
  double sum = 0.0;
  for (int i = 1; i < cfg.pathCount(); ++i) {
    sum += faultProbability(cfg, i);
  }
  return sum;
}

double correctionProbability(const IsaConfig& cfg) noexcept {
  if (cfg.exact || cfg.correction == 0) return 0.0;
  return 1.0 - std::ldexp(1.0, -cfg.correction);
}

double structuralErrorRateApprox(const IsaConfig& cfg) {
  cfg.validate();
  if (cfg.exact) return 0.0;
  const double uncorrectable = 1.0 - correctionProbability(cfg);
  double noError = 1.0;
  for (int i = 1; i < cfg.pathCount(); ++i) {
    noError *= 1.0 - faultProbability(cfg, i) * uncorrectable;
  }
  return 1.0 - noError;
}

double expectedStructuralErrorApprox(const IsaConfig& cfg) {
  cfg.validate();
  if (cfg.exact) return 0.0;
  const double uncorrectable = 1.0 - correctionProbability(cfg);
  const int k = cfg.block;
  const int r = cfg.reduction;
  const int s = cfg.spec;

  // Expected balancing gain, conditioned on the fault:
  //  * S = 0: the preceding block overflowed, so its residual sum follows a
  //    decreasing-triangular law with mean 2^K/3; forcing the top R bits
  //    gains E[delta] = (2/3) 2^K - 2^(K-R)/2.
  //  * S > 0: the carry crossed the all-propagate window, so the window's
  //    sum bits (the top S of the preceding sum) are all 0 and are fully
  //    gained; the bit right below the window carried out (P(bit=0) =
  //    3/4); deeper balanced bits are ~uniform.
  double balancingGain = 0.0;
  if (r > 0) {
    if (s == 0) {
      balancingGain = (2.0 / 3.0) * std::ldexp(1.0, k) -
                      0.5 * std::ldexp(1.0, k - r);
    } else {
      for (int j = k - r; j < k; ++j) {
        double pZero = 0.5;
        if (j >= k - s) pZero = 1.0;
        else if (j == k - s - 1) pZero = 0.75;
        balancingGain += pZero * std::ldexp(1.0, j);
      }
    }
  }

  double expected = 0.0;
  for (int i = 1; i < cfg.pathCount(); ++i) {
    const double blockWeight = std::ldexp(1.0, k);
    const double prevWeight = std::ldexp(1.0, (i - 1) * k);
    expected += faultProbability(cfg, i) * uncorrectable *
                (-blockWeight + balancingGain) * prevWeight;
  }
  return expected;
}

double StructuralMonteCarlo::faultRate(int path) const {
  if (path < 0 || static_cast<std::size_t>(path) >= pathFaults.size()) {
    throw std::invalid_argument("StructuralMonteCarlo: bad path index");
  }
  if (samples == 0) return 0.0;
  return static_cast<double>(pathFaults[static_cast<std::size_t>(path)]) /
         static_cast<double>(samples);
}

double StructuralMonteCarlo::meanFaultsPerAddition() const {
  if (samples == 0) return 0.0;
  std::uint64_t total = 0;
  for (const std::uint64_t f : pathFaults) total += f;
  return static_cast<double>(total) / static_cast<double>(samples);
}

StructuralMonteCarlo sampleStructuralErrors(const IsaConfig& cfg,
                                            std::uint64_t samples,
                                            std::uint64_t seed) {
  cfg.validate();
  const IsaAdder isa(cfg);
  StructuralMonteCarlo result;
  result.samples = samples;
  result.pathFaults.assign(static_cast<std::size_t>(cfg.pathCount()), 0);
  std::mt19937_64 rng(seed);
  std::vector<PathTrace> traces;
  for (std::uint64_t i = 0; i < samples; ++i) {
    const std::uint64_t a = rng();
    const std::uint64_t b = rng();
    const IsaSum gold = isa.addTraced(a, b, false, traces);
    const IsaSum diamond = isa.exactAdd(a, b, false);
    for (std::size_t p = 0; p < traces.size(); ++p) {
      if (traces[p].faultDirection != 0) ++result.pathFaults[p];
    }
    result.errors.add(signedErrorAsDouble(gold.value(cfg.width),
                                          diamond.value(cfg.width)));
  }
  return result;
}

}  // namespace oisa::core
