#include "core/bit_distribution.h"

#include <bit>
#include <numeric>
#include <stdexcept>

namespace oisa::core {

BitErrorDistribution::BitErrorDistribution(int width) : width_(width) {
  if (width < 1 || width > 64) {
    throw std::invalid_argument("BitErrorDistribution: width must be 1..64");
  }
  flips_.assign(static_cast<std::size_t>(width), 0);
}

void BitErrorDistribution::add(std::uint64_t observed,
                               std::uint64_t reference) noexcept {
  ++cycles_;
  std::uint64_t diff = observed ^ reference;
  if (width_ < 64) diff &= (std::uint64_t{1} << width_) - 1;
  while (diff != 0) {
    const int pos = std::countr_zero(diff);
    ++flips_[static_cast<std::size_t>(pos)];
    diff &= diff - 1;
  }
}

double BitErrorDistribution::rate(int position) const {
  const auto f = flips_.at(static_cast<std::size_t>(position));
  return cycles_ ? static_cast<double>(f) / static_cast<double>(cycles_) : 0.0;
}

std::vector<double> BitErrorDistribution::rates() const {
  std::vector<double> r(static_cast<std::size_t>(width_));
  for (int i = 0; i < width_; ++i) r[static_cast<std::size_t>(i)] = rate(i);
  return r;
}

std::uint64_t BitErrorDistribution::totalFlips() const noexcept {
  return std::accumulate(flips_.begin(), flips_.end(), std::uint64_t{0});
}

}  // namespace oisa::core
