// oisa_core: typed error taxonomy for recoverable boundaries.
//
// The campaign layer (checkpointing, sharded grids, the serving daemon to
// come) needs to tell *what kind* of failure happened so it can pick the
// right recovery: a Corruption from a checkpoint load falls back to
// recompute, an IoError is retryable, an InvalidInput is a caller bug and
// must surface immediately, a Deadline aborts cleanly with partial
// results. Status/StatusOr carry that taxonomy across the recoverable
// boundaries — file import (bench/verilog), model (de)serialization,
// checkpoint load, CLI parsing — while plain exceptions remain reserved
// for internal invariant violations.
#pragma once

#include <optional>
#include <stdexcept>
#include <string>
#include <utility>

namespace oisa::core {

/// What kind of failure a Status reports (recovery is keyed off this).
enum class StatusCode {
  Ok = 0,
  InvalidInput,  ///< malformed caller-supplied data; not retryable
  Corruption,    ///< stored data failed integrity checks; recompute
  IoError,       ///< the environment failed (open/read/write); retryable
  Deadline,      ///< a wall-clock deadline or cancellation fired
  Internal,      ///< invariant violation escaping as a value (bug)
};

[[nodiscard]] constexpr const char* statusCodeName(StatusCode code) noexcept {
  switch (code) {
    case StatusCode::Ok: return "Ok";
    case StatusCode::InvalidInput: return "InvalidInput";
    case StatusCode::Corruption: return "Corruption";
    case StatusCode::IoError: return "IoError";
    case StatusCode::Deadline: return "Deadline";
    case StatusCode::Internal: return "Internal";
  }
  return "Unknown";
}

/// A success/error value: code + human-readable diagnostic.
class [[nodiscard]] Status {
 public:
  /// Success.
  Status() = default;

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  [[nodiscard]] static Status ok() { return Status{}; }
  [[nodiscard]] static Status invalidInput(std::string message) {
    return {StatusCode::InvalidInput, std::move(message)};
  }
  [[nodiscard]] static Status corruption(std::string message) {
    return {StatusCode::Corruption, std::move(message)};
  }
  [[nodiscard]] static Status ioError(std::string message) {
    return {StatusCode::IoError, std::move(message)};
  }
  [[nodiscard]] static Status deadline(std::string message) {
    return {StatusCode::Deadline, std::move(message)};
  }
  [[nodiscard]] static Status internal(std::string message) {
    return {StatusCode::Internal, std::move(message)};
  }

  [[nodiscard]] bool isOk() const noexcept { return code_ == StatusCode::Ok; }
  [[nodiscard]] StatusCode code() const noexcept { return code_; }
  [[nodiscard]] const std::string& message() const noexcept {
    return message_;
  }

  /// `"Corruption: checkpoint ... crc mismatch"` (or `"Ok"`).
  [[nodiscard]] std::string toString() const {
    if (isOk()) return "Ok";
    return std::string(statusCodeName(code_)) + ": " + message_;
  }

 private:
  StatusCode code_ = StatusCode::Ok;
  std::string message_;
};

/// Exception bridge: thrown by the convenience throwing wrappers around
/// Status-returning boundaries, so legacy callers keep one catch site
/// while new callers branch on the typed code.
class StatusError : public std::runtime_error {
 public:
  explicit StatusError(Status status)
      : std::runtime_error(status.toString()), status_(std::move(status)) {}

  [[nodiscard]] const Status& status() const noexcept { return status_; }
  [[nodiscard]] StatusCode code() const noexcept { return status_.code(); }

 private:
  Status status_;
};

/// Throws StatusError when `status` is not Ok (the throwing-wrapper shim).
inline void throwIfError(const Status& status) {
  if (!status.isOk()) throw StatusError(status);
}

/// Either a value or an error Status. Deliberately tiny: no implicit
/// conversions from T, no reference support — enough for the boundaries
/// this repo converts.
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT(google-explicit-constructor)
    if (status_.isOk()) {
      status_ = Status::internal("StatusOr constructed from an Ok Status");
    }
  }
  StatusOr(T value)  // NOLINT(google-explicit-constructor)
      : value_(std::move(value)) {}

  [[nodiscard]] bool isOk() const noexcept { return status_.isOk(); }
  [[nodiscard]] const Status& status() const noexcept { return status_; }

  /// Value access; only valid when isOk(). The throwing accessor is the
  /// bridge for legacy call sites.
  [[nodiscard]] const T& value() const& { return *value_; }
  [[nodiscard]] T& value() & { return *value_; }
  [[nodiscard]] T&& value() && { return *std::move(value_); }

  /// Returns the value or throws StatusError.
  [[nodiscard]] T&& valueOrThrow() && {
    throwIfError(status_);
    return *std::move(value_);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace oisa::core
