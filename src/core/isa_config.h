// oisa_core: design-point description of an Inexact Speculative Adder.
//
// A design is the paper's quadruple (block, spec, correction, reduction) on
// a fixed operand width, or the exact reference adder. The same IsaConfig
// drives both the behavioral model (core) and the gate-level generator
// (circuits), which are cross-checked for equivalence in tests.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace oisa::core {

/// Parameters of an Inexact Speculative Adder design point.
///
/// Paper notation: quadruple (block size, SPEC size, correction, reduction),
/// e.g. (8,0,0,4) = 8-bit blocks, carry speculated constant-0, no
/// correction, 4-bit error reduction on the preceding sum.
struct IsaConfig {
  int width = 32;      ///< total adder width in bits (N)
  int block = 8;       ///< speculative path width (K); width % block == 0
  int spec = 0;        ///< carry-speculation window size (S), 0..block
  int correction = 0;  ///< correctable LSBs of the local sum (C), 0..block
  int reduction = 0;   ///< balanced MSBs of the preceding sum (R), 0..block
  bool exact = false;  ///< exact reference adder (other fields ignored)
  /// Speculation polarity. The paper's designs speculate the window
  /// carry-in at 0 (false): a fault can only be a *missed* carry. The dual
  /// policy assumes the window carry-in is 1 (the ISCAS'15 architecture's
  /// other direction): faults can then also be *spurious* carries,
  /// exercising the decrement-correction / force-down-balancing hardware.
  bool speculateHigh = false;

  /// Paper-style display name: "(8,0,0,4)" or "exact"; speculate-at-1
  /// designs get a '+' suffix, e.g. "(8,2,1,4)+".
  [[nodiscard]] std::string name() const;

  /// Number of concurrent speculative paths (width / block); 1 when exact.
  [[nodiscard]] int pathCount() const noexcept {
    return exact ? 1 : width / block;
  }

  /// Throws std::invalid_argument if the parameters are inconsistent.
  void validate() const;

  friend bool operator==(const IsaConfig&, const IsaConfig&) = default;
};

/// Convenience constructor matching the paper's quadruple notation.
[[nodiscard]] IsaConfig makeIsa(int block, int spec, int correction,
                                int reduction, int width = 32);

/// The exact reference adder at the given width.
[[nodiscard]] IsaConfig makeExact(int width = 32);

/// The twelve designs evaluated in the paper (Section V-A): eleven ISA
/// quadruples plus the exact adder, all 32-bit, all fitting the 0.3 ns
/// timing constraint.
[[nodiscard]] const std::vector<IsaConfig>& paperDesigns();

}  // namespace oisa::core
