#include "fault/fault_universe.h"

#include <array>
#include <stdexcept>
#include <utility>

namespace oisa::fault {

namespace {

using netlist::CompiledNetlist;
using netlist::GateKind;

/// Gate-local (controlling input value -> forced output value) pairs that
/// make an input stem fault equivalent to an output stem fault.
struct EquivRule {
  bool in;
  bool out;
};

std::span<const EquivRule> rulesFor(GateKind kind) {
  static constexpr std::array<EquivRule, 2> kBuf{{{false, false},
                                                  {true, true}}};
  static constexpr std::array<EquivRule, 2> kInv{{{false, true},
                                                  {true, false}}};
  static constexpr std::array<EquivRule, 1> kAnd{{{false, false}}};
  static constexpr std::array<EquivRule, 1> kNand{{{false, true}}};
  static constexpr std::array<EquivRule, 1> kOr{{{true, true}}};
  static constexpr std::array<EquivRule, 1> kNor{{{true, false}}};
  switch (kind) {
    case GateKind::Buf: return kBuf;
    case GateKind::Inv: return kInv;
    case GateKind::And2:
    case GateKind::And3: return kAnd;
    case GateKind::Nand2: return kNand;
    case GateKind::Or2:
    case GateKind::Or3: return kOr;
    case GateKind::Nor2: return kNor;
    default: return {};
  }
}

/// Union-find over full-universe fault indices, tracking per class the
/// preferred representative (the member merged in from the output side,
/// i.e. the fanout-free region's dominator).
class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n), rep_(n), rank_(n, 0) {
    for (std::size_t i = 0; i < n; ++i) {
      parent_[i] = i;
      rep_[i] = i;
    }
  }

  std::size_t find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  /// Merges the classes of `in` and `out`; the merged class inherits the
  /// representative of `out`'s class (the downstream side).
  void uniteTowards(std::size_t in, std::size_t out) {
    std::size_t ri = find(in);
    std::size_t ro = find(out);
    if (ri == ro) return;
    const std::size_t preferred = rep_[ro];
    if (rank_[ri] < rank_[ro]) std::swap(ri, ro);
    parent_[ro] = ri;
    if (rank_[ri] == rank_[ro]) ++rank_[ri];
    rep_[ri] = preferred;
  }

  [[nodiscard]] std::size_t representative(std::size_t root) const {
    return rep_[root];
  }

 private:
  std::vector<std::size_t> parent_;
  std::vector<std::size_t> rep_;  ///< valid at roots
  std::vector<std::uint8_t> rank_;
};

}  // namespace

FaultUniverse::FaultUniverse(
    std::shared_ptr<const CompiledNetlist> compiled)
    : compiled_(std::move(compiled)) {
  if (!compiled_ || !compiled_->acyclic()) {
    throw std::runtime_error(
        "FaultUniverse: fault simulation needs an acyclic netlist");
  }
  const std::size_t nets = compiled_->netCount();
  const auto offsets = compiled_->fanoutOffsets();

  // Full universe. Stem faults first — fault (net, SA-v) lives at index
  // 2*net + v, which is what the collapsing unions address — then branch
  // faults for every reader entry of every multi-fanout net.
  all_.reserve(2 * nets);
  for (std::uint32_t n = 0; n < nets; ++n) {
    all_.push_back(Fault{n, Fault::kStem, StuckAt::SA0});
    all_.push_back(Fault{n, Fault::kStem, StuckAt::SA1});
  }
  for (std::uint32_t n = 0; n < nets; ++n) {
    if (offsets[n + 1] - offsets[n] < 2) continue;
    for (std::uint32_t i = offsets[n]; i < offsets[n + 1]; ++i) {
      all_.push_back(Fault{n, i, StuckAt::SA0});
      all_.push_back(Fault{n, i, StuckAt::SA1});
    }
  }

  std::vector<bool> isOutput(nets, false);
  for (const std::uint32_t po : compiled_->outputNets()) isOutput[po] = true;

  const auto stemId = [](std::uint32_t net, bool v) {
    return static_cast<std::size_t>(2 * net + (v ? 1 : 0));
  };

  // Gate-local equivalence, iterated over every gate: chains of unions
  // walk each fanout-free region up to its dominator.
  UnionFind uf(all_.size());
  for (std::uint32_t gi = 0; gi < compiled_->gateCount(); ++gi) {
    const CompiledNetlist::GateRec& g = compiled_->gate(gi);
    const auto rules = rulesFor(g.kind);
    if (rules.empty()) continue;
    const int arity = netlist::gateArity(g.kind);
    for (int pin = 0; pin < arity; ++pin) {
      const std::uint32_t n = g.in[pin];
      // Skip duplicate pins of one net: the first visit already united.
      bool seen = false;
      for (int p = 0; p < pin; ++p) seen = seen || g.in[p] == n;
      if (seen) continue;
      // Equivalence needs the input's faulty value to be invisible
      // anywhere but through this gate: exactly one reader entry
      // (necessarily this gate; a merged multi-pin entry still qualifies,
      // since a controlling value on any pin forces the output) and no
      // direct primary-output tap.
      if (offsets[n + 1] - offsets[n] != 1 || isOutput[n]) continue;
      for (const EquivRule& rule : rules) {
        uf.uniteTowards(stemId(n, rule.in), stemId(g.out, rule.out));
      }
    }
  }

  // Freeze classes in first-seen order.
  classOf_.resize(all_.size());
  std::vector<std::size_t> classIndexOfRoot(all_.size(),
                                            static_cast<std::size_t>(-1));
  for (std::size_t f = 0; f < all_.size(); ++f) {
    const std::size_t root = uf.find(f);
    std::size_t& ci = classIndexOfRoot[root];
    if (ci == static_cast<std::size_t>(-1)) {
      ci = reps_.size();
      reps_.push_back(all_[uf.representative(root)]);
      classSize_.push_back(0);
    }
    classOf_[f] = ci;
    ++classSize_[ci];
  }
}

std::vector<Fault> sampleFaults(std::span<const Fault> faults,
                                std::size_t maxCount) {
  if (faults.size() <= maxCount) return {faults.begin(), faults.end()};
  std::vector<Fault> out;
  out.reserve(maxCount);
  // Exact-count even spread (the selectTimedFaults formula): indices are
  // strictly increasing because faults.size() > maxCount.
  for (std::size_t i = 0; i < maxCount; ++i) {
    out.push_back(faults[i * faults.size() / maxCount]);
  }
  return out;
}

}  // namespace oisa::fault
