#include "fault/serial_fault_sim.h"

#include <stdexcept>
#include <string>

namespace oisa::fault {

using netlist::CompiledNetlist;

SerialFaultSimulator::SerialFaultSimulator(
    std::shared_ptr<const CompiledNetlist> compiled)
    : compiled_(std::move(compiled)) {
  if (!compiled_ || !compiled_->acyclic()) {
    throw std::runtime_error(
        "SerialFaultSimulator: fault simulation needs an acyclic netlist");
  }
}

void SerialFaultSimulator::setPattern(
    std::span<const std::uint8_t> inputBits) {
  pattern_.assign(inputBits.begin(), inputBits.end());
  simulate(pattern_, nullptr, good_);
}

std::vector<std::uint8_t> SerialFaultSimulator::goodOutputs() const {
  const auto pos = compiled_->outputNets();
  std::vector<std::uint8_t> out(pos.size());
  for (std::size_t i = 0; i < pos.size(); ++i) out[i] = good_[pos[i]];
  return out;
}

std::vector<std::uint8_t> SerialFaultSimulator::faultyOutputs(
    const Fault& f) const {
  simulate(pattern_, &f, scratch_);
  const auto pos = compiled_->outputNets();
  std::vector<std::uint8_t> out(pos.size());
  for (std::size_t i = 0; i < pos.size(); ++i) out[i] = scratch_[pos[i]];
  return out;
}

bool SerialFaultSimulator::detects(const Fault& f) const {
  simulate(pattern_, &f, scratch_);
  for (const std::uint32_t po : compiled_->outputNets()) {
    if (scratch_[po] != good_[po]) return true;
  }
  return false;
}

void SerialFaultSimulator::simulate(std::span<const std::uint8_t> inputBits,
                                    const Fault* f,
                                    std::vector<std::uint8_t>& values) const {
  const auto pis = compiled_->inputNets();
  if (inputBits.size() != pis.size()) {
    throw std::invalid_argument(
        "SerialFaultSimulator: expected " + std::to_string(pis.size()) +
        " input bits, got " + std::to_string(inputBits.size()));
  }
  // A stem fault overrides its net everywhere; a branch fault overrides
  // only the pins of the one reader gate addressed by the CSR entry.
  const bool stem = f != nullptr && f->isStem();
  const std::uint8_t stuck =
      f != nullptr && f->stuck == StuckAt::SA1 ? 1 : 0;
  std::uint32_t branchGate = 0xffffffff;
  std::uint32_t branchPins = 0;
  if (f != nullptr && !f->isStem()) {
    const std::uint32_t entry = compiled_->readers()[f->branch];
    branchGate = entry >> 3;
    branchPins = entry & 7u;
  }

  values.assign(compiled_->netCount(), 0);
  for (std::size_t i = 0; i < pis.size(); ++i) {
    values[pis[i]] = inputBits[i] ? 1 : 0;
  }
  if (stem) values[f->net] = stuck;
  for (const std::uint32_t gi : compiled_->topologicalOrder()) {
    const CompiledNetlist::GateRec& g = compiled_->gate(gi);
    unsigned a = values[g.in[0]];
    unsigned b = values[g.in[1]];
    unsigned c = values[g.in[2]];
    if (gi == branchGate) {
      if ((branchPins & 1u) != 0) a = stuck;
      if ((branchPins & 2u) != 0) b = stuck;
      if ((branchPins & 4u) != 0) c = stuck;
    }
    const unsigned minterm = a | (b << 1) | (c << 2);
    values[g.out] = static_cast<std::uint8_t>((g.truth >> minterm) & 1u);
    if (stem && g.out == f->net) values[g.out] = stuck;
  }
}

}  // namespace oisa::fault
