// oisa_fault: single stuck-at fault model over the compiled netlist.
//
// A fault is a permanent defect forcing one signal to a constant. Two
// flavors exist, matching the classic ISCAS-85 fault-simulation setting:
//
//  * stem faults — the whole net is stuck, every reader and any primary
//    output tap sees the forced value;
//  * branch faults — one fanout branch of a multi-fanout net is stuck:
//    only the addressed reader gate sees the forced value, the stem and
//    the remaining branches stay healthy. A branch is addressed by its
//    entry in the CompiledNetlist CSR reader array, so a net wired to
//    several pins of one gate is a single branch whose defect forces all
//    of those pins together (the merged-pin-mask convention of the CSR).
//
// Branch faults are only meaningful on nets with two or more reader
// entries: a fanout-free connection's branch fault is structurally
// identical to its stem fault, so the universe never enumerates it.
#pragma once

#include <cstdint>
#include <string>

#include "netlist/compiled_netlist.h"

namespace oisa::fault {

/// Stuck-at polarity.
enum class StuckAt : std::uint8_t { SA0 = 0, SA1 = 1 };

/// The 64-lane word a stuck value forces in every lane.
[[nodiscard]] constexpr std::uint64_t stuckWord(StuckAt v) noexcept {
  return v == StuckAt::SA1 ? ~std::uint64_t{0} : 0;
}

/// One single stuck-at fault.
struct Fault {
  /// Reader-array index marking a stem fault (no branch addressed).
  static constexpr std::uint32_t kStem = 0xffffffff;

  std::uint32_t net = 0;        ///< faulted net (NetId::value)
  std::uint32_t branch = kStem; ///< CSR reader index for branch faults
  StuckAt stuck = StuckAt::SA0;

  [[nodiscard]] constexpr bool isStem() const noexcept {
    return branch == kStem;
  }
  friend constexpr bool operator==(const Fault&, const Fault&) = default;
};

/// Human-readable fault description, e.g. "n42/SA1" for a stem fault or
/// "n42->g7/SA0" for the branch feeding gate 7.
[[nodiscard]] inline std::string describeFault(
    const netlist::CompiledNetlist& compiled, const Fault& f) {
  std::string s = compiled.source().net(netlist::NetId{f.net}).name;
  if (s.empty()) s = "n" + std::to_string(f.net);
  if (!f.isStem()) {
    s += "->g" + std::to_string(compiled.readers()[f.branch] >> 3);
  }
  return s + (f.stuck == StuckAt::SA1 ? "/SA1" : "/SA0");
}

}  // namespace oisa::fault
