// oisa_fault: timing-aware stuck-at injection.
//
// Bridges the static fault model to the 64-lane timed engine: a stem
// fault becomes a net clamp on the LaneTimedSimulator's wheel
// (forceNet), so the same defect can be studied under overclocked
// sampling — the paper's timing-error mechanism on a *defective* ISA
// rather than a healthy one. Branch faults are pin-level and have no net
// to clamp; the universe's collapsed representatives of fanout-free
// regions are stems, so campaigns restrict the timed phase to stem
// classes (selectTimedFaults).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "fault/fault_model.h"
#include "timing/lane_dispatch.h"
#include "timing/lane_sim.h"

namespace oisa::fault {

/// Clamps every lane of `sim` to the stuck value of stem fault `f`.
/// `laneMask` restricts the defect to a subset of lanes (healthy lanes
/// keep simulating the good machine — differential runs in one sweep).
/// Throws std::invalid_argument for branch faults.
void injectStuckAt(timing::LaneTimedSimulator& sim, const Fault& f,
                   std::uint64_t laneMask = ~std::uint64_t{0});

/// Width-agnostic overload over the dispatched simulator interface. The
/// 64-bit `laneMask` is broadcast across every 64-lane sub-block (a
/// defect in "lane L" exists in lane L of each sub-block).
void injectStuckAt(timing::AnyLaneSimulator& sim, const Fault& f,
                   std::uint64_t laneMask = ~std::uint64_t{0});

/// Deterministically picks up to `count` stem faults from `candidates`
/// (e.g. detected collapsed classes), spread evenly across the list so a
/// small sample still covers low- and high-significance sites.
[[nodiscard]] std::vector<Fault> selectTimedFaults(
    std::span<const Fault> candidates, std::size_t count);

}  // namespace oisa::fault
