// oisa_fault: parallel-pattern single-fault-propagation (PPSFP) engine.
//
// The classic fast stuck-at simulation scheme on the repo's word-parallel
// substrate: load W input patterns as W/64 uint64_t lane words per primary
// input (bit L of sub-word j = pattern 64j+L), simulate the good machine
// once with a single BatchEvaluator-style topological sweep, then for each
// fault propagate only the faulty cone:
//
//  * injection is a forced W-lane block at the fault site — the whole
//    stem block for a stem fault, or a forced operand on the addressed
//    reader's pins for a branch fault;
//  * propagation walks a levelized frontier over the CompiledNetlist CSR
//    arrays, re-evaluating a gate only when an input's faulty block
//    changed, with copy-on-write faulty values (an epoch stamp per net
//    selects faulty vs good, so per-fault cleanup is O(1));
//  * the engine early-outs as soon as the frontier converges with the
//    good machine — a recomputed block equal to the net's current
//    effective value schedules nothing.
//
// A fault is detected in lane L when any primary output's faulty block
// differs from the good block in bit L. Per fault the cost is the faulty
// cone, not the circuit, and each sweep carries W patterns — the two
// classic multipliers that make full fault simulation tractable.
//
// The template parameter is a netlist::LaneBlock; the 64-lane `PpsfpEngine`
// alias is the canonical reference (bit-exact against the serial
// single-pattern SerialFaultSimulator, asserted by tests/fault_sim_test.cpp
// on random netlists, c17 and all twelve paper designs), and wider widths
// are proven bit-exact against it by tests/lane_width_test.cpp.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "fault/fault_model.h"
#include "netlist/compiled_netlist.h"
#include "netlist/lane_block.h"

namespace oisa::fault {

/// W-pattern single-fault propagation engine over one compiled netlist.
template <class Block>
class PpsfpEngineT {
 public:
  /// Patterns carried per sweep.
  static constexpr std::size_t kLanes = Block::kBits;
  /// uint64 words per net in every lane-major span.
  static constexpr std::size_t kWords = Block::kWords;

  /// Throws std::runtime_error on a cyclic compile.
  explicit PpsfpEngineT(
      std::shared_ptr<const netlist::CompiledNetlist> compiled)
      : compiled_(std::move(compiled)) {
    if (!compiled_ || !compiled_->acyclic()) {
      throw std::runtime_error(
          "PpsfpEngine: fault simulation needs an acyclic netlist");
    }
    const std::size_t nets = compiled_->netCount();
    const std::size_t gates = compiled_->gateCount();
    good_.assign(nets * kWords, 0);
    faulty_.assign(nets * kWords, 0);
    valEpoch_.assign(nets, 0);
    outEpoch_.assign(nets, 0);
    gateEpoch_.assign(gates, 0);
    isOutput_.assign(nets, false);
    for (const std::uint32_t po : compiled_->outputNets()) {
      isOutput_[po] = true;
    }

    // Levelize off the topological order: a gate's level is one past the
    // deepest driving gate, so every input net of a level-l gate is
    // committed while draining buckets < l — one evaluation per gate per
    // fault suffices.
    level_.assign(gates, 0);
    std::vector<std::uint32_t> netLevel(nets, 0);
    std::uint32_t maxLevel = 0;
    for (const std::uint32_t gi : compiled_->topologicalOrder()) {
      const netlist::CompiledNetlist::GateRec& g = compiled_->gate(gi);
      std::uint32_t lvl = 0;
      for (const std::uint32_t in : g.in) lvl = std::max(lvl, netLevel[in]);
      level_[gi] = lvl;
      netLevel[g.out] = lvl + 1;
      maxLevel = std::max(maxLevel, lvl);
    }
    frontier_.resize(static_cast<std::size_t>(maxLevel) + 1);
  }

  /// Loads a pattern block and simulates the good machine: kWords words
  /// per primary input (declaration order, input-major), bit L of
  /// sub-word j = pattern 64j+L's value. `patternCount` < kLanes masks
  /// the unused high lanes out of detection.
  void loadPatterns(std::span<const std::uint64_t> inputWords,
                    std::size_t patternCount = kLanes) {
    const auto pis = compiled_->inputNets();
    if (inputWords.size() != pis.size() * kWords) {
      throw std::invalid_argument(
          "PpsfpEngine: expected " + std::to_string(pis.size() * kWords) +
          " input words, got " + std::to_string(inputWords.size()));
    }
    if (patternCount == 0 || patternCount > kLanes) {
      throw std::invalid_argument("PpsfpEngine: need 1.." +
                                  std::to_string(kLanes) + " patterns");
    }
    std::uint64_t maskWords[kWords];
    for (std::size_t j = 0; j < kWords; ++j) {
      const std::size_t lo = j * 64;
      if (patternCount >= lo + 64) {
        maskWords[j] = ~std::uint64_t{0};
      } else if (patternCount <= lo) {
        maskWords[j] = 0;
      } else {
        maskWords[j] = (std::uint64_t{1} << (patternCount - lo)) - 1;
      }
    }
    laneMask_ = Block::load(maskWords);
    std::fill(good_.begin(), good_.end(), 0);
    for (std::size_t i = 0; i < pis.size(); ++i) {
      Block::load(inputWords.data() + i * kWords)
          .store(good_.data() + std::size_t{pis[i]} * kWords);
    }
    for (const std::uint32_t gi : compiled_->topologicalOrder()) {
      const netlist::CompiledNetlist::GateRec& g = compiled_->gate(gi);
      const Block out = netlist::evalGateBlock<Block>(
          g.kind, goodBlock(g.in[0]), goodBlock(g.in[1]),
          goodBlock(g.in[2]));
      out.store(good_.data() + std::size_t{g.out} * kWords);
    }
  }

  /// Lanes holding valid patterns in the current block (64-lane engine
  /// only; wider engines use laneMaskWords()).
  [[nodiscard]] std::uint64_t laneMask() const noexcept
    requires(Block::kWords == 1)
  {
    return laneMask_.word(0);
  }

  /// Good-machine value word of a net for the current block (64-lane
  /// engine only).
  [[nodiscard]] std::uint64_t goodWord(netlist::NetId net) const
    requires(Block::kWords == 1)
  {
    return good_[net.value];
  }

  /// Simulates one fault against the loaded block; bit L of the result is
  /// set when pattern L drives the fault effect to a primary output
  /// (64-lane engine only; wider engines use detectLanesInto()).
  [[nodiscard]] std::uint64_t detectLanes(const Fault& f)
    requires(Block::kWords == 1)
  {
    return detectBlock(f).word(0);
  }

  /// Width-generic detection: writes kWords words into `out`; bit L of
  /// sub-word j is set when pattern 64j+L detects the fault.
  void detectLanesInto(const Fault& f, std::span<std::uint64_t> out) {
    if (out.size() != kWords) {
      throw std::invalid_argument(
          "PpsfpEngine::detectLanesInto: expected " +
          std::to_string(kWords) + " output words");
    }
    detectBlock(f).store(out.data());
  }

  /// Faults simulated and faulty-cone gate evaluations since
  /// construction (perf counters for benches and reports).
  [[nodiscard]] std::uint64_t faultsSimulated() const noexcept {
    return faultCount_;
  }
  [[nodiscard]] std::uint64_t gateEvaluations() const noexcept {
    return evalCount_;
  }
  /// Faults skipped by the activation fast exit (forced value equal to
  /// the stem's good block in every valid lane): the early-out rate the
  /// observability layer reports is activationSkips()/faultsSimulated().
  [[nodiscard]] std::uint64_t activationSkips() const noexcept {
    return skipCount_;
  }

  [[nodiscard]] const std::shared_ptr<const netlist::CompiledNetlist>&
  compiled() const noexcept {
    return compiled_;
  }

 private:
  [[nodiscard]] Block goodBlock(std::uint32_t net) const noexcept {
    return Block::load(good_.data() + std::size_t{net} * kWords);
  }
  [[nodiscard]] Block effective(std::uint32_t net) const noexcept {
    return valEpoch_[net] == epoch_
               ? Block::load(faulty_.data() + std::size_t{net} * kWords)
               : goodBlock(net);
  }

  void commit(std::uint32_t net, Block word) {
    word.store(faulty_.data() + std::size_t{net} * kWords);
    valEpoch_[net] = epoch_;
    if (isOutput_[net] && outEpoch_[net] != epoch_) {
      outEpoch_[net] = epoch_;
      touchedOutputs_.push_back(net);
    }
    const auto offsets = compiled_->fanoutOffsets();
    const auto readers = compiled_->readers();
    for (std::uint32_t i = offsets[net]; i < offsets[net + 1]; ++i) {
      enqueue(readers[i] >> 3);
    }
  }

  void enqueue(std::uint32_t gate) {
    if (gateEpoch_[gate] == epoch_) return;
    gateEpoch_[gate] = epoch_;
    const std::uint32_t lvl = level_[gate];
    frontier_[lvl].push_back(gate);
    minLevel_ = std::min(minLevel_, lvl);
  }

  [[nodiscard]] Block detectBlock(const Fault& f) {
    ++faultCount_;
    ++epoch_;
    touchedOutputs_.clear();
    minLevel_ = static_cast<std::uint32_t>(frontier_.size());

    // Injection. A fault whose forced block matches the stem's good block
    // in every valid lane is not activated by this block: nothing can
    // propagate, so skip the sweep entirely.
    const Block forced = Block::splat(stuckWord(f.stuck));
    std::uint32_t branchGate = 0xffffffff;
    std::uint32_t branchPins = 0;
    if (!((forced ^ goodBlock(f.net)) & laneMask_).any()) {
      ++skipCount_;  // per fault, outside the word loop
      return Block::zero();
    }
    if (f.isStem()) {
      commit(f.net, forced);
    } else {
      const std::uint32_t entry = compiled_->readers()[f.branch];
      branchGate = entry >> 3;
      branchPins = entry & 7u;
      enqueue(branchGate);
    }

    // Levelized single-fault propagation. Buckets only ever grow at
    // levels above the one being drained (commits enqueue readers, which
    // sit strictly deeper), so one pass over the levels visits the whole
    // cone.
    for (std::uint32_t lvl = minLevel_;
         lvl < static_cast<std::uint32_t>(frontier_.size()); ++lvl) {
      std::vector<std::uint32_t>& bucket = frontier_[lvl];
      for (std::size_t i = 0; i < bucket.size(); ++i) {
        const std::uint32_t gi = bucket[i];
        const netlist::CompiledNetlist::GateRec& g = compiled_->gate(gi);
        Block a = effective(g.in[0]);
        Block b = effective(g.in[1]);
        Block c = effective(g.in[2]);
        if (gi == branchGate) {
          if ((branchPins & 1u) != 0) a = forced;
          if ((branchPins & 2u) != 0) b = forced;
          if ((branchPins & 4u) != 0) c = forced;
        }
        ++evalCount_;
        const Block out = netlist::evalGateBlock<Block>(g.kind, a, b, c);
        // Early-out: a block equal to the net's current effective value
        // is the frontier converging with the good machine (or a no-op)
        // — nothing downstream can change.
        if (!(out == effective(g.out))) commit(g.out, out);
      }
      bucket.clear();
    }

    Block detected = Block::zero();
    for (const std::uint32_t net : touchedOutputs_) {
      detected =
          detected |
          (Block::load(faulty_.data() + std::size_t{net} * kWords) ^
           goodBlock(net));
    }
    return detected & laneMask_;
  }

  std::shared_ptr<const netlist::CompiledNetlist> compiled_;
  std::vector<std::uint64_t> good_;    // good machine, NetId * kWords
  std::vector<std::uint64_t> faulty_;  // copy-on-write faulty values
  std::vector<std::uint64_t> valEpoch_;
  std::vector<std::uint64_t> gateEpoch_;  // frontier membership stamp
  std::vector<std::uint64_t> outEpoch_;   // touched-output stamp
  std::vector<std::uint32_t> level_;      // per gate, from the topo order
  std::vector<std::vector<std::uint32_t>> frontier_;  // bucket per level
  std::vector<std::uint32_t> touchedOutputs_;
  std::vector<bool> isOutput_;
  Block laneMask_ = Block::ones();
  std::uint64_t epoch_ = 0;
  std::uint32_t minLevel_ = 0;  // first frontier bucket used this fault
  std::uint64_t faultCount_ = 0;
  std::uint64_t evalCount_ = 0;
  std::uint64_t skipCount_ = 0;
};

/// The canonical 64-lane reference engine (original API: one word per
/// input, uint64 lane masks and detection words).
using PpsfpEngine = PpsfpEngineT<netlist::LaneBlock64>;

// Portable widths are instantiated once in ppsfp.cpp (baseline flags);
// the intrinsic widths live in the per-arch dispatch TUs.
extern template class PpsfpEngineT<netlist::LaneBlock<64>>;
extern template class PpsfpEngineT<netlist::LaneBlock<256>>;
extern template class PpsfpEngineT<netlist::LaneBlock<512>>;

}  // namespace oisa::fault
