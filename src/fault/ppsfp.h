// oisa_fault: parallel-pattern single-fault-propagation (PPSFP) engine.
//
// The classic fast stuck-at simulation scheme on the repo's word-parallel
// substrate: load 64 input patterns as one uint64_t lane word per primary
// input (bit L = pattern L), simulate the good machine once with a single
// BatchEvaluator-style topological sweep, then for each fault propagate
// only the faulty cone:
//
//  * injection is a forced 64-lane word at the fault site — the whole
//    stem word for a stem fault, or a forced operand on the addressed
//    reader's pins for a branch fault;
//  * propagation walks a levelized frontier over the CompiledNetlist CSR
//    arrays, re-evaluating a gate only when an input's faulty word
//    changed, with copy-on-write faulty values (an epoch stamp per net
//    selects faulty vs good, so per-fault cleanup is O(1));
//  * the engine early-outs as soon as the frontier converges with the
//    good machine — a recomputed word equal to the net's current
//    effective value schedules nothing.
//
// A fault is detected in lane L when any primary output's faulty word
// differs from the good word in bit L. Per fault the cost is the faulty
// cone, not the circuit, and each sweep carries 64 patterns — the two
// classic multipliers that make full fault simulation tractable.
// Bit-exactness against the serial single-pattern reference
// (SerialFaultSimulator) is asserted by tests/fault_sim_test.cpp on
// random netlists, c17 and all twelve paper designs.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "fault/fault_model.h"
#include "netlist/compiled_netlist.h"

namespace oisa::fault {

/// 64-pattern single-fault propagation engine over one compiled netlist.
class PpsfpEngine {
 public:
  /// Patterns carried per sweep.
  static constexpr std::size_t kLanes = 64;

  /// Throws std::runtime_error on a cyclic compile.
  explicit PpsfpEngine(
      std::shared_ptr<const netlist::CompiledNetlist> compiled);

  /// Loads a pattern block and simulates the good machine: one word per
  /// primary input (declaration order), bit L = pattern L's value.
  /// `patternCount` < 64 masks the unused high lanes out of detection.
  void loadPatterns(std::span<const std::uint64_t> inputWords,
                    std::size_t patternCount = kLanes);

  /// Lanes holding valid patterns in the current block.
  [[nodiscard]] std::uint64_t laneMask() const noexcept { return laneMask_; }

  /// Good-machine value word of a net for the current block.
  [[nodiscard]] std::uint64_t goodWord(netlist::NetId net) const {
    return good_[net.value];
  }

  /// Simulates one fault against the loaded block; bit L of the result is
  /// set when pattern L drives the fault effect to a primary output.
  [[nodiscard]] std::uint64_t detectLanes(const Fault& f);

  /// Faults simulated and faulty-cone gate evaluations since
  /// construction (perf counters for benches and reports).
  [[nodiscard]] std::uint64_t faultsSimulated() const noexcept {
    return faultCount_;
  }
  [[nodiscard]] std::uint64_t gateEvaluations() const noexcept {
    return evalCount_;
  }

  [[nodiscard]] const std::shared_ptr<const netlist::CompiledNetlist>&
  compiled() const noexcept {
    return compiled_;
  }

 private:
  [[nodiscard]] std::uint64_t effective(std::uint32_t net) const noexcept {
    return valEpoch_[net] == epoch_ ? faulty_[net] : good_[net];
  }
  void commit(std::uint32_t net, std::uint64_t word);
  void enqueue(std::uint32_t gate);

  std::shared_ptr<const netlist::CompiledNetlist> compiled_;
  std::vector<std::uint64_t> good_;    // good machine, indexed by NetId
  std::vector<std::uint64_t> faulty_;  // copy-on-write faulty values
  std::vector<std::uint64_t> valEpoch_;
  std::vector<std::uint64_t> gateEpoch_;  // frontier membership stamp
  std::vector<std::uint64_t> outEpoch_;   // touched-output stamp
  std::vector<std::uint32_t> level_;      // per gate, from the topo order
  std::vector<std::vector<std::uint32_t>> frontier_;  // one bucket per level
  std::vector<std::uint32_t> touchedOutputs_;
  std::vector<bool> isOutput_;
  std::uint64_t laneMask_ = ~std::uint64_t{0};
  std::uint64_t epoch_ = 0;
  std::uint32_t minLevel_ = 0;  // first frontier bucket used this fault
  std::uint64_t faultCount_ = 0;
  std::uint64_t evalCount_ = 0;
};

}  // namespace oisa::fault
