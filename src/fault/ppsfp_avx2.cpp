// AVX2 dispatch TU — the only oisa_fault object compiled with -mavx2.
// Only the LaneBlock<256, Avx2> engine variant may be instantiated here.
#if defined(__AVX2__)

#include "fault/ppsfp_dispatch_impl.h"

namespace oisa::fault::detail {

std::unique_ptr<AnyPpsfpEngine> makePpsfpEngineAvx2(
    std::shared_ptr<const netlist::CompiledNetlist> compiled) {
  using Block = netlist::LaneBlock<256, netlist::LaneArch::Avx2>;
  return std::make_unique<PpsfpEngineAdapter<Block>>(std::move(compiled));
}

}  // namespace oisa::fault::detail

#endif  // __AVX2__
