// AVX-512 dispatch TU — the only oisa_fault object compiled with
// -mavx512f. Same minimality rule as ppsfp_avx2.cpp.
#if defined(__AVX512F__)

#include "fault/ppsfp_dispatch_impl.h"

namespace oisa::fault::detail {

std::unique_ptr<AnyPpsfpEngine> makePpsfpEngineAvx512(
    std::shared_ptr<const netlist::CompiledNetlist> compiled) {
  using Block = netlist::LaneBlock<512, netlist::LaneArch::Avx512>;
  return std::make_unique<PpsfpEngineAdapter<Block>>(std::move(compiled));
}

}  // namespace oisa::fault::detail

#endif  // __AVX512F__
