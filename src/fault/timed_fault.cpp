#include "fault/timed_fault.h"

#include <stdexcept>

namespace oisa::fault {

void injectStuckAt(timing::LaneTimedSimulator& sim, const Fault& f,
                   std::uint64_t laneMask) {
  if (!f.isStem()) {
    throw std::invalid_argument(
        "injectStuckAt: branch faults are pin-level and cannot be "
        "expressed as a net clamp; use a stem fault");
  }
  sim.forceNet(netlist::NetId{f.net}, laneMask, stuckWord(f.stuck));
}

void injectStuckAt(timing::AnyLaneSimulator& sim, const Fault& f,
                   std::uint64_t laneMask) {
  if (!f.isStem()) {
    throw std::invalid_argument(
        "injectStuckAt: branch faults are pin-level and cannot be "
        "expressed as a net clamp; use a stem fault");
  }
  sim.forceNet(netlist::NetId{f.net}, laneMask, stuckWord(f.stuck));
}

std::vector<Fault> selectTimedFaults(std::span<const Fault> candidates,
                                     std::size_t count) {
  std::vector<Fault> stems;
  for (const Fault& f : candidates) {
    if (f.isStem()) stems.push_back(f);
  }
  if (stems.size() <= count) return stems;
  // Even stride over the stem list: candidates arrive in net order, so a
  // contiguous prefix would sample only the lowest-significance sites.
  std::vector<Fault> picked;
  picked.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    picked.push_back(stems[i * stems.size() / count]);
  }
  return picked;
}

}  // namespace oisa::fault
