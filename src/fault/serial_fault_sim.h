// oisa_fault: serial single-pattern stuck-at reference simulator.
//
// The textbook baseline every fast fault simulator is validated against:
// for one input pattern and one fault, re-simulate the whole netlist with
// the fault injected and compare primary outputs against the good
// machine. O(gates) per (fault, pattern) with no propagation shortcuts —
// deliberately simple, so the differential tests and the
// bench/micro_fault_sim speedup baseline rest on independently-obvious
// code rather than on a second clever engine.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "fault/fault_model.h"
#include "netlist/compiled_netlist.h"

namespace oisa::fault {

/// One-pattern-at-a-time reference fault simulator.
class SerialFaultSimulator {
 public:
  /// Throws std::runtime_error on a cyclic compile.
  explicit SerialFaultSimulator(
      std::shared_ptr<const netlist::CompiledNetlist> compiled);

  /// Loads a pattern (one bit per primary input, declaration order) and
  /// simulates the good machine.
  void setPattern(std::span<const std::uint8_t> inputBits);

  /// Good-machine net values for the current pattern, indexed by NetId.
  [[nodiscard]] const std::vector<std::uint8_t>& goodValues() const noexcept {
    return good_;
  }

  /// Good-machine primary-output values, declaration order.
  [[nodiscard]] std::vector<std::uint8_t> goodOutputs() const;

  /// Full faulty re-simulation of the current pattern: primary-output
  /// values of the machine containing `f`.
  [[nodiscard]] std::vector<std::uint8_t> faultyOutputs(const Fault& f) const;

  /// True when `f` flips at least one primary output on the current
  /// pattern.
  [[nodiscard]] bool detects(const Fault& f) const;

  [[nodiscard]] const std::shared_ptr<const netlist::CompiledNetlist>&
  compiled() const noexcept {
    return compiled_;
  }

 private:
  void simulate(std::span<const std::uint8_t> inputBits, const Fault* f,
                std::vector<std::uint8_t>& values) const;

  std::shared_ptr<const netlist::CompiledNetlist> compiled_;
  std::vector<std::uint8_t> pattern_;
  std::vector<std::uint8_t> good_;
  mutable std::vector<std::uint8_t> scratch_;
};

}  // namespace oisa::fault
