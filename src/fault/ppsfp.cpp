#include "fault/ppsfp.h"

namespace oisa::fault {

// The 64-lane reference plus the portable wide fallbacks; intrinsic widths
// are instantiated only in ppsfp_avx2.cpp / ppsfp_avx512.cpp.
template class PpsfpEngineT<netlist::LaneBlock<64>>;
template class PpsfpEngineT<netlist::LaneBlock<256>>;
template class PpsfpEngineT<netlist::LaneBlock<512>>;

}  // namespace oisa::fault
