#include "fault/ppsfp.h"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "netlist/batch_evaluator.h"  // evalGateWord

namespace oisa::fault {

using netlist::CompiledNetlist;

PpsfpEngine::PpsfpEngine(std::shared_ptr<const CompiledNetlist> compiled)
    : compiled_(std::move(compiled)) {
  if (!compiled_ || !compiled_->acyclic()) {
    throw std::runtime_error(
        "PpsfpEngine: fault simulation needs an acyclic netlist");
  }
  const std::size_t nets = compiled_->netCount();
  const std::size_t gates = compiled_->gateCount();
  good_.assign(nets, 0);
  faulty_.assign(nets, 0);
  valEpoch_.assign(nets, 0);
  outEpoch_.assign(nets, 0);
  gateEpoch_.assign(gates, 0);
  isOutput_.assign(nets, false);
  for (const std::uint32_t po : compiled_->outputNets()) {
    isOutput_[po] = true;
  }

  // Levelize off the topological order: a gate's level is one past the
  // deepest driving gate, so every input net of a level-l gate is
  // committed while draining buckets < l — one evaluation per gate per
  // fault suffices.
  level_.assign(gates, 0);
  std::vector<std::uint32_t> netLevel(nets, 0);
  std::uint32_t maxLevel = 0;
  for (const std::uint32_t gi : compiled_->topologicalOrder()) {
    const CompiledNetlist::GateRec& g = compiled_->gate(gi);
    std::uint32_t lvl = 0;
    for (const std::uint32_t in : g.in) lvl = std::max(lvl, netLevel[in]);
    level_[gi] = lvl;
    netLevel[g.out] = lvl + 1;
    maxLevel = std::max(maxLevel, lvl);
  }
  frontier_.resize(static_cast<std::size_t>(maxLevel) + 1);
}

void PpsfpEngine::loadPatterns(std::span<const std::uint64_t> inputWords,
                               std::size_t patternCount) {
  const auto pis = compiled_->inputNets();
  if (inputWords.size() != pis.size()) {
    throw std::invalid_argument(
        "PpsfpEngine: expected " + std::to_string(pis.size()) +
        " input words, got " + std::to_string(inputWords.size()));
  }
  if (patternCount == 0 || patternCount > kLanes) {
    throw std::invalid_argument("PpsfpEngine: need 1..64 patterns");
  }
  laneMask_ = patternCount == kLanes
                  ? ~std::uint64_t{0}
                  : (std::uint64_t{1} << patternCount) - 1;
  std::fill(good_.begin(), good_.end(), 0);
  for (std::size_t i = 0; i < pis.size(); ++i) {
    good_[pis[i]] = inputWords[i];
  }
  for (const std::uint32_t gi : compiled_->topologicalOrder()) {
    const CompiledNetlist::GateRec& g = compiled_->gate(gi);
    good_[g.out] = netlist::evalGateWord(g.kind, good_[g.in[0]],
                                         good_[g.in[1]], good_[g.in[2]]);
  }
}

void PpsfpEngine::commit(std::uint32_t net, std::uint64_t word) {
  faulty_[net] = word;
  valEpoch_[net] = epoch_;
  if (isOutput_[net] && outEpoch_[net] != epoch_) {
    outEpoch_[net] = epoch_;
    touchedOutputs_.push_back(net);
  }
  const auto offsets = compiled_->fanoutOffsets();
  const auto readers = compiled_->readers();
  for (std::uint32_t i = offsets[net]; i < offsets[net + 1]; ++i) {
    enqueue(readers[i] >> 3);
  }
}

void PpsfpEngine::enqueue(std::uint32_t gate) {
  if (gateEpoch_[gate] == epoch_) return;
  gateEpoch_[gate] = epoch_;
  const std::uint32_t lvl = level_[gate];
  frontier_[lvl].push_back(gate);
  minLevel_ = std::min(minLevel_, lvl);
}

std::uint64_t PpsfpEngine::detectLanes(const Fault& f) {
  ++faultCount_;
  ++epoch_;
  touchedOutputs_.clear();
  minLevel_ = static_cast<std::uint32_t>(frontier_.size());

  // Injection. A fault whose forced word matches the stem's good word in
  // every valid lane is not activated by this block: nothing can
  // propagate, so skip the sweep entirely.
  const std::uint64_t forced = stuckWord(f.stuck);
  std::uint32_t branchGate = 0xffffffff;
  std::uint32_t branchPins = 0;
  if (((forced ^ good_[f.net]) & laneMask_) == 0) return 0;
  if (f.isStem()) {
    commit(f.net, forced);
  } else {
    const std::uint32_t entry = compiled_->readers()[f.branch];
    branchGate = entry >> 3;
    branchPins = entry & 7u;
    enqueue(branchGate);
  }

  // Levelized single-fault propagation. Buckets only ever grow at levels
  // above the one being drained (commits enqueue readers, which sit
  // strictly deeper), so one pass over the levels visits the whole cone.
  for (std::uint32_t lvl = minLevel_;
       lvl < static_cast<std::uint32_t>(frontier_.size()); ++lvl) {
    std::vector<std::uint32_t>& bucket = frontier_[lvl];
    for (std::size_t i = 0; i < bucket.size(); ++i) {
      const std::uint32_t gi = bucket[i];
      const CompiledNetlist::GateRec& g = compiled_->gate(gi);
      std::uint64_t a = effective(g.in[0]);
      std::uint64_t b = effective(g.in[1]);
      std::uint64_t c = effective(g.in[2]);
      if (gi == branchGate) {
        if ((branchPins & 1u) != 0) a = forced;
        if ((branchPins & 2u) != 0) b = forced;
        if ((branchPins & 4u) != 0) c = forced;
      }
      ++evalCount_;
      const std::uint64_t out = netlist::evalGateWord(g.kind, a, b, c);
      // Early-out: a word equal to the net's current effective value is
      // the frontier converging with the good machine (or a no-op) —
      // nothing downstream can change.
      if (out != effective(g.out)) commit(g.out, out);
    }
    bucket.clear();
  }

  std::uint64_t detected = 0;
  for (const std::uint32_t net : touchedOutputs_) {
    detected |= faulty_[net] ^ good_[net];
  }
  return detected & laneMask_;
}

}  // namespace oisa::fault
