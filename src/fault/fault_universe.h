// oisa_fault: the single stuck-at fault universe of one compiled netlist.
//
// Enumerates the classic full universe — stuck-at-0/1 on every net (stem
// faults) plus stuck-at-0/1 on every fanout branch of every multi-fanout
// net — and collapses it by structural equivalence so simulation only
// visits one representative per class.
//
// Collapsing rule (fanout-free dominator merging): when a net feeds
// exactly one reader entry, a stuck-at at that net is indistinguishable
// from a stuck-at at the reader's output for the gate-local equivalences
//
//   BUF  in/SA-v  == out/SA-v        INV  in/SA-v  == out/SA-!v
//   AND  in/SA-0  == out/SA-0        NAND in/SA-0  == out/SA-1
//   OR   in/SA-1  == out/SA-1        NOR  in/SA-1  == out/SA-0
//
// (controlling input value forces the controlled output value; with no
// other fanout, the faulty machines are identical circuits). Iterating
// the rule over every gate chains faults through fanout-free regions up
// to each region's dominator, which becomes the class representative —
// the member closest to the primary outputs, so the PPSFP engine
// propagates through the shortest cone. XOR/MUX/AOI/OAI/MAJ inputs have
// no controlling value shared this way and stay uncollapsed, as do nets
// that are themselves primary outputs (their faulty value is directly
// observable, so merging them into a downstream fault would be unsound).
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <vector>

#include "fault/fault_model.h"
#include "netlist/compiled_netlist.h"

namespace oisa::fault {

/// Full + collapsed stuck-at universe over one compiled (acyclic) netlist.
class FaultUniverse {
 public:
  /// Builds and collapses the universe. Throws std::runtime_error on a
  /// cyclic compile (fault simulation needs a topological order).
  explicit FaultUniverse(
      std::shared_ptr<const netlist::CompiledNetlist> compiled);

  /// Every fault in the universe: 2 per net + 2 per fanout branch of
  /// every net with >= 2 reader entries.
  [[nodiscard]] std::span<const Fault> all() const noexcept { return all_; }

  /// One representative per structural-equivalence class.
  [[nodiscard]] std::span<const Fault> collapsed() const noexcept {
    return reps_;
  }

  /// Class index (into collapsed()) of full-universe fault `faultIndex`.
  [[nodiscard]] std::size_t classOf(std::size_t faultIndex) const {
    return classOf_[faultIndex];
  }

  /// Number of full-universe faults merged into class `classIndex`.
  [[nodiscard]] std::size_t classSize(std::size_t classIndex) const {
    return classSize_[classIndex];
  }

  [[nodiscard]] const std::shared_ptr<const netlist::CompiledNetlist>&
  compiled() const noexcept {
    return compiled_;
  }

 private:
  std::shared_ptr<const netlist::CompiledNetlist> compiled_;
  std::vector<Fault> all_;
  std::vector<Fault> reps_;
  std::vector<std::size_t> classOf_;    // full index -> class index
  std::vector<std::size_t> classSize_;  // class index -> member count
};

/// Evenly strided sample of a fault list, head and tail represented —
/// the shared subset policy for bounded differential checks (benches,
/// tests) over large universes. Returns all of `faults` when it already
/// fits in `maxCount`.
[[nodiscard]] std::vector<Fault> sampleFaults(std::span<const Fault> faults,
                                              std::size_t maxCount);

}  // namespace oisa::fault
