#include "fault/ppsfp_dispatch.h"

#include <stdexcept>

#include "fault/ppsfp_dispatch_impl.h"

namespace oisa::fault {

using netlist::LaneArch;
using netlist::LaneBlock;
using netlist::LaneSelection;

std::unique_ptr<AnyPpsfpEngine> makePpsfpEngine(
    std::shared_ptr<const netlist::CompiledNetlist> compiled) {
  return makePpsfpEngine(std::move(compiled), netlist::selectLaneWidth());
}

std::unique_ptr<AnyPpsfpEngine> makePpsfpEngine(
    std::shared_ptr<const netlist::CompiledNetlist> compiled,
    LaneSelection sel) {
  if (sel.arch != LaneArch::Portable &&
      !netlist::cpuSupportsLaneArch(sel.arch)) {
    throw std::invalid_argument("makePpsfpEngine: variant " +
                                netlist::laneSelectionName(sel) +
                                " is not runnable on this build/CPU");
  }
  switch (sel.arch) {
    case LaneArch::Avx2:
#if defined(OISA_HAVE_AVX2)
      return detail::makePpsfpEngineAvx2(std::move(compiled));
#else
      break;
#endif
    case LaneArch::Avx512:
#if defined(OISA_HAVE_AVX512)
      return detail::makePpsfpEngineAvx512(std::move(compiled));
#else
      break;
#endif
    case LaneArch::Portable:
      switch (sel.width) {
        case 64:
          return std::make_unique<
              detail::PpsfpEngineAdapter<LaneBlock<64>>>(
              std::move(compiled));
        case 256:
          return std::make_unique<
              detail::PpsfpEngineAdapter<LaneBlock<256>>>(
              std::move(compiled));
        case 512:
          return std::make_unique<
              detail::PpsfpEngineAdapter<LaneBlock<512>>>(
              std::move(compiled));
        default: break;
      }
      break;
  }
  throw std::invalid_argument("makePpsfpEngine: unsupported variant " +
                              netlist::laneSelectionName(sel));
}

}  // namespace oisa::fault
