// oisa_fault: the AnyPpsfpEngine adapter template. Included by dispatch
// TUs only; each instantiates solely the Block flavors it owns.
#pragma once

#include <memory>
#include <utility>

#include "fault/ppsfp.h"
#include "fault/ppsfp_dispatch.h"

namespace oisa::fault::detail {

template <class Block>
class PpsfpEngineAdapter final : public AnyPpsfpEngine {
 public:
  explicit PpsfpEngineAdapter(
      std::shared_ptr<const netlist::CompiledNetlist> compiled)
      : impl_(std::move(compiled)) {}

  [[nodiscard]] std::size_t lanes() const noexcept override {
    return Block::kBits;
  }
  [[nodiscard]] std::size_t wordsPerNet() const noexcept override {
    return Block::kWords;
  }
  [[nodiscard]] netlist::LaneSelection selection() const noexcept override {
    return {Block::kBits, Block::kArch};
  }
  void loadPatterns(std::span<const std::uint64_t> inputWords,
                    std::size_t patternCount) override {
    impl_.loadPatterns(inputWords, patternCount);
  }
  void detectLanesInto(const Fault& f,
                       std::span<std::uint64_t> out) override {
    impl_.detectLanesInto(f, out);
  }
  [[nodiscard]] std::uint64_t faultsSimulated() const noexcept override {
    return impl_.faultsSimulated();
  }
  [[nodiscard]] std::uint64_t gateEvaluations() const noexcept override {
    return impl_.gateEvaluations();
  }
  [[nodiscard]] std::uint64_t activationSkips() const noexcept override {
    return impl_.activationSkips();
  }
  [[nodiscard]] const std::shared_ptr<const netlist::CompiledNetlist>&
  compiled() const noexcept override {
    return impl_.compiled();
  }

 private:
  PpsfpEngineT<Block> impl_;
};

}  // namespace oisa::fault::detail
