// oisa_fault: random/workload-pattern fault-coverage campaigns.
//
// Drives a PpsfpEngine over a stream of 64-pattern blocks and tracks
// which collapsed fault classes have been detected. Detected classes are
// dropped from later blocks by default (classic fault dropping — the
// bulk of the universe falls in the first few blocks, so dropping turns
// the campaign cost from classes x blocks into roughly classes +
// hard-fault tails). The detected set is independent of dropping; only
// the work saved changes.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "fault/fault_universe.h"
#include "fault/ppsfp.h"

namespace oisa::fault {

/// Campaign controls.
struct CoverageOptions {
  std::uint64_t patterns = 1 << 14;  ///< stimuli to apply (rounded up to 64)
  std::uint64_t seed = 1;            ///< RNG seed (random-pattern campaigns)
  bool dropDetected = true;          ///< classic fault dropping
};

/// Campaign result over the collapsed universe.
struct CoverageResult {
  std::size_t universeFaults = 0;    ///< full universe size
  std::size_t collapsedClasses = 0;
  std::size_t detectedClasses = 0;
  std::uint64_t patternsApplied = 0;
  /// Per collapsed class: first pattern index whose block detected it
  /// (~0 when undetected).
  std::vector<std::uint64_t> firstDetectedAt;
  /// Per collapsed class: detected flag.
  std::vector<std::uint8_t> detected;

  [[nodiscard]] double coverage() const noexcept {
    return collapsedClasses == 0
               ? 0.0
               : static_cast<double>(detectedClasses) /
                     static_cast<double>(collapsedClasses);
  }
};

/// Fills `inputWords` (one word per primary input, lane-major) with the
/// next block of stimuli and returns how many patterns it packed (1..64;
/// 0 ends the campaign early).
using PatternBlockSource =
    std::function<std::size_t(std::span<std::uint64_t> inputWords)>;

/// Runs a campaign over `source` blocks until `options.patterns` stimuli
/// were applied, every class is detected, or the source runs dry.
[[nodiscard]] CoverageResult runCoverage(const FaultUniverse& universe,
                                         PpsfpEngine& engine,
                                         const CoverageOptions& options,
                                         const PatternBlockSource& source);

/// Convenience campaign: uniform random primary-input patterns.
[[nodiscard]] CoverageResult runRandomCoverage(const FaultUniverse& universe,
                                               PpsfpEngine& engine,
                                               const CoverageOptions& options);

}  // namespace oisa::fault
