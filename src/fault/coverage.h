// oisa_fault: random/workload-pattern fault-coverage campaigns.
//
// Drives a PPSFP engine over a stream of W-pattern blocks and tracks
// which collapsed fault classes have been detected. Detected classes are
// dropped from later blocks by default (classic fault dropping — the
// bulk of the universe falls in the first few blocks, so dropping turns
// the campaign cost from classes x blocks into roughly classes +
// hard-fault tails). The detected set is independent of dropping; only
// the work saved changes.
//
// The campaign accepts any engine width through AnyPpsfpEngine and keeps
// its results byte-identical to the 64-lane reference: patterns stream
// through the block in sub-block-major lane order (pattern p of a block
// sits in bit p%64 of sub-word p/64), first-detection indices are read
// off the earliest detecting sub-word, and the applied-pattern counter
// advances per 64-pattern sub-block — so CoverageResult is a pure
// function of the pattern stream, not of the engine width.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "fault/fault_universe.h"
#include "fault/ppsfp.h"
#include "fault/ppsfp_dispatch.h"

namespace oisa::fault {

/// Campaign controls.
struct CoverageOptions {
  std::uint64_t patterns = 1 << 14;  ///< stimuli to apply (rounded up to 64)
  std::uint64_t seed = 1;            ///< RNG seed (random-pattern campaigns)
  bool dropDetected = true;          ///< classic fault dropping
};

/// Campaign result over the collapsed universe.
struct CoverageResult {
  std::size_t universeFaults = 0;    ///< full universe size
  std::size_t collapsedClasses = 0;
  std::size_t detectedClasses = 0;
  std::uint64_t patternsApplied = 0;
  /// Per collapsed class: first pattern index whose block detected it
  /// (~0 when undetected).
  std::vector<std::uint64_t> firstDetectedAt;
  /// Per collapsed class: detected flag.
  std::vector<std::uint8_t> detected;

  [[nodiscard]] double coverage() const noexcept {
    return collapsedClasses == 0
               ? 0.0
               : static_cast<double>(detectedClasses) /
                     static_cast<double>(collapsedClasses);
  }
};

/// Fills `inputWords` (wordsPerNet words per primary input, input-major,
/// lane-major within each input) with the next block of stimuli and
/// returns how many patterns it packed (1..lanes; 0 ends the campaign
/// early). Pattern p of the block goes to bit p%64 of sub-word p/64.
using PatternBlockSource =
    std::function<std::size_t(std::span<std::uint64_t> inputWords)>;

/// Runs a campaign over `source` blocks until `options.patterns` stimuli
/// were applied, every class is detected, or the source runs dry.
[[nodiscard]] CoverageResult runCoverage(const FaultUniverse& universe,
                                         AnyPpsfpEngine& engine,
                                         const CoverageOptions& options,
                                         const PatternBlockSource& source);

/// Convenience campaign: uniform random primary-input patterns. The RNG
/// stream is drawn one 64-pattern sub-block at a time (all inputs, then
/// the next sub-block), so any width replays the 64-lane draw sequence.
[[nodiscard]] CoverageResult runRandomCoverage(const FaultUniverse& universe,
                                               AnyPpsfpEngine& engine,
                                               const CoverageOptions& options);

/// Reference-width overloads over a concrete 64-lane engine (the
/// original API; all existing call sites and tests).
[[nodiscard]] CoverageResult runCoverage(const FaultUniverse& universe,
                                         PpsfpEngine& engine,
                                         const CoverageOptions& options,
                                         const PatternBlockSource& source);
[[nodiscard]] CoverageResult runRandomCoverage(const FaultUniverse& universe,
                                               PpsfpEngine& engine,
                                               const CoverageOptions& options);

}  // namespace oisa::fault
