#include "fault/coverage.h"

#include <algorithm>
#include <array>
#include <bit>
#include <random>

#include "obs/metrics.h"
#include "obs/span.h"

namespace oisa::fault {

namespace {

/// Non-owning AnyPpsfpEngine view over a caller-held 64-lane engine, so
/// the reference-width overloads share the generic campaign loop (and its
/// caller keeps reading the engine's perf counters afterwards).
class RefEngineView final : public AnyPpsfpEngine {
 public:
  explicit RefEngineView(PpsfpEngine& engine) : engine_(engine) {}

  [[nodiscard]] std::size_t lanes() const noexcept override {
    return PpsfpEngine::kLanes;
  }
  [[nodiscard]] std::size_t wordsPerNet() const noexcept override {
    return 1;
  }
  [[nodiscard]] netlist::LaneSelection selection() const noexcept override {
    return {64, netlist::LaneArch::Portable};
  }
  void loadPatterns(std::span<const std::uint64_t> inputWords,
                    std::size_t patternCount) override {
    engine_.loadPatterns(inputWords, patternCount);
  }
  void detectLanesInto(const Fault& f,
                       std::span<std::uint64_t> out) override {
    engine_.detectLanesInto(f, out);
  }
  [[nodiscard]] std::uint64_t faultsSimulated() const noexcept override {
    return engine_.faultsSimulated();
  }
  [[nodiscard]] std::uint64_t gateEvaluations() const noexcept override {
    return engine_.gateEvaluations();
  }
  [[nodiscard]] std::uint64_t activationSkips() const noexcept override {
    return engine_.activationSkips();
  }
  [[nodiscard]] const std::shared_ptr<const netlist::CompiledNetlist>&
  compiled() const noexcept override {
    return engine_.compiled();
  }

 private:
  PpsfpEngine& engine_;
};

}  // namespace

CoverageResult runCoverage(const FaultUniverse& universe,
                           AnyPpsfpEngine& engine,
                           const CoverageOptions& options,
                           const PatternBlockSource& source) {
  // Engine counters drain once per campaign at the end of this function
  // — counters only, outside the per-fault and per-word loops.
  const obs::ObsSpan span("fault.coverage", "fault", "classes",
                          universe.collapsed().size());
  const std::uint64_t faults0 = engine.faultsSimulated();
  const std::uint64_t evals0 = engine.gateEvaluations();
  const std::uint64_t skips0 = engine.activationSkips();
  const auto classes = universe.collapsed();
  const std::size_t kWords = engine.wordsPerNet();
  CoverageResult result;
  result.universeFaults = universe.all().size();
  result.collapsedClasses = classes.size();
  result.detected.assign(classes.size(), 0);
  result.firstDetectedAt.assign(classes.size(), ~std::uint64_t{0});

  std::vector<std::uint64_t> inputWords(
      universe.compiled()->inputNets().size() * kWords, 0);
  std::vector<std::uint64_t> det(kWords, 0);
  while (result.patternsApplied < options.patterns &&
         result.detectedClasses < result.collapsedClasses) {
    const std::size_t count = source(inputWords);
    if (count == 0) break;  // source exhausted
    engine.loadPatterns(inputWords, count);
    // For byte-identity with the 64-lane reference the applied-pattern
    // counter must stop at the sub-block that completed detection, not at
    // the end of the wide block: the reference campaign would have exited
    // its loop right after that 64-pattern block.
    std::size_t lastDetectWord = 0;
    for (std::size_t ci = 0; ci < classes.size(); ++ci) {
      if (options.dropDetected && result.detected[ci] != 0) continue;
      engine.detectLanesInto(classes[ci], det);
      if (result.detected[ci] != 0) continue;
      std::size_t j = 0;
      while (j < kWords && det[j] == 0) ++j;
      if (j == kWords) continue;
      result.detected[ci] = 1;
      ++result.detectedClasses;
      result.firstDetectedAt[ci] =
          result.patternsApplied + 64 * j +
          static_cast<std::uint64_t>(std::countr_zero(det[j]));
      lastDetectWord = std::max(lastDetectWord, j);
    }
    if (result.detectedClasses == result.collapsedClasses) {
      result.patternsApplied +=
          std::min<std::uint64_t>(count, 64 * (lastDetectWord + 1));
    } else {
      result.patternsApplied += count;
    }
  }
  static obs::Counter& faultsSimulated = obs::counter("fault.faults_simulated");
  static obs::Counter& gateEvals = obs::counter("fault.gate_evaluations");
  static obs::Counter& skips = obs::counter("fault.activation_skips");
  static obs::Counter& patterns = obs::counter("fault.patterns_applied");
  static obs::Counter& detected = obs::counter("fault.classes_detected");
  faultsSimulated.add(engine.faultsSimulated() - faults0);
  gateEvals.add(engine.gateEvaluations() - evals0);
  skips.add(engine.activationSkips() - skips0);
  patterns.add(result.patternsApplied);
  detected.add(result.detectedClasses);
  return result;
}

CoverageResult runRandomCoverage(const FaultUniverse& universe,
                                 AnyPpsfpEngine& engine,
                                 const CoverageOptions& options) {
  std::mt19937_64 rng(options.seed);
  std::uint64_t remaining = options.patterns;
  const std::size_t lanes = engine.lanes();
  const std::size_t kWords = engine.wordsPerNet();
  const std::size_t inputs = universe.compiled()->inputNets().size();
  const PatternBlockSource source =
      [&](std::span<std::uint64_t> inputWords) -> std::size_t {
    if (remaining == 0) return 0;
    const auto count = static_cast<std::size_t>(
        std::min<std::uint64_t>(remaining, lanes));
    remaining -= count;
    // Draw sub-block-major — one fresh word per primary input, then the
    // next 64-pattern sub-block — replaying the 64-lane reference's RNG
    // sequence exactly. Sub-blocks past `count` stay zero; the engine
    // masks them out of detection.
    std::fill(inputWords.begin(), inputWords.end(), 0);
    const std::size_t blocks = (count + 63) / 64;
    for (std::size_t j = 0; j < blocks; ++j) {
      for (std::size_t i = 0; i < inputs; ++i) {
        inputWords[i * kWords + j] = rng();
      }
    }
    return count;
  };
  return runCoverage(universe, engine, options, source);
}

CoverageResult runCoverage(const FaultUniverse& universe, PpsfpEngine& engine,
                           const CoverageOptions& options,
                           const PatternBlockSource& source) {
  RefEngineView view(engine);
  return runCoverage(universe, view, options, source);
}

CoverageResult runRandomCoverage(const FaultUniverse& universe,
                                 PpsfpEngine& engine,
                                 const CoverageOptions& options) {
  RefEngineView view(engine);
  return runRandomCoverage(universe, view, options);
}

}  // namespace oisa::fault
