#include "fault/coverage.h"

#include <bit>
#include <random>

namespace oisa::fault {

CoverageResult runCoverage(const FaultUniverse& universe, PpsfpEngine& engine,
                           const CoverageOptions& options,
                           const PatternBlockSource& source) {
  const auto classes = universe.collapsed();
  CoverageResult result;
  result.universeFaults = universe.all().size();
  result.collapsedClasses = classes.size();
  result.detected.assign(classes.size(), 0);
  result.firstDetectedAt.assign(classes.size(), ~std::uint64_t{0});

  std::vector<std::uint64_t> inputWords(
      universe.compiled()->inputNets().size(), 0);
  while (result.patternsApplied < options.patterns &&
         result.detectedClasses < result.collapsedClasses) {
    const std::size_t count = source(inputWords);
    if (count == 0) break;  // source exhausted
    engine.loadPatterns(inputWords, count);
    for (std::size_t ci = 0; ci < classes.size(); ++ci) {
      if (options.dropDetected && result.detected[ci] != 0) continue;
      const std::uint64_t lanes = engine.detectLanes(classes[ci]);
      if (lanes == 0 || result.detected[ci] != 0) continue;
      result.detected[ci] = 1;
      ++result.detectedClasses;
      result.firstDetectedAt[ci] =
          result.patternsApplied +
          static_cast<std::uint64_t>(std::countr_zero(lanes));
    }
    result.patternsApplied += count;
  }
  return result;
}

CoverageResult runRandomCoverage(const FaultUniverse& universe,
                                 PpsfpEngine& engine,
                                 const CoverageOptions& options) {
  std::mt19937_64 rng(options.seed);
  std::uint64_t remaining = options.patterns;
  const PatternBlockSource source =
      [&](std::span<std::uint64_t> inputWords) -> std::size_t {
    if (remaining == 0) return 0;
    const auto count = static_cast<std::size_t>(
        std::min<std::uint64_t>(remaining, PpsfpEngine::kLanes));
    remaining -= count;
    // One fresh 64-lane word per primary input; lanes beyond `count` are
    // masked out by the engine.
    for (std::uint64_t& w : inputWords) w = rng();
    return count;
  };
  return runCoverage(universe, engine, options, source);
}

}  // namespace oisa::fault
