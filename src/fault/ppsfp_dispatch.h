// oisa_fault: width-erased PPSFP interface + factory for the runtime
// lane-width dispatcher (netlist/lane_width.h). runCoverage and the
// defect scan hold AnyPpsfpEngine so wider SIMD blocks flow through the
// fault pipelines transparently.
#pragma once

#include <cstdint>
#include <memory>
#include <span>

#include "fault/fault_model.h"
#include "netlist/compiled_netlist.h"
#include "netlist/lane_width.h"

namespace oisa::fault {

/// Width-erased PpsfpEngineT. Pattern spans are input-major with
/// wordsPerNet() uint64 words per primary input; detection spans hold
/// wordsPerNet() words (bit L of sub-word j = pattern 64j+L detects).
class AnyPpsfpEngine {
 public:
  virtual ~AnyPpsfpEngine() = default;

  [[nodiscard]] virtual std::size_t lanes() const noexcept = 0;
  [[nodiscard]] virtual std::size_t wordsPerNet() const noexcept = 0;
  [[nodiscard]] virtual netlist::LaneSelection selection()
      const noexcept = 0;
  virtual void loadPatterns(std::span<const std::uint64_t> inputWords,
                            std::size_t patternCount) = 0;
  virtual void detectLanesInto(const Fault& f,
                               std::span<std::uint64_t> out) = 0;
  [[nodiscard]] virtual std::uint64_t faultsSimulated() const noexcept = 0;
  [[nodiscard]] virtual std::uint64_t gateEvaluations() const noexcept = 0;
  [[nodiscard]] virtual std::uint64_t activationSkips() const noexcept = 0;
  [[nodiscard]] virtual const std::shared_ptr<const netlist::CompiledNetlist>&
  compiled() const noexcept = 0;
};

/// Builds the engine variant for `sel` (default: selectLaneWidth()).
/// Throws std::invalid_argument for a variant this build/CPU cannot run.
[[nodiscard]] std::unique_ptr<AnyPpsfpEngine> makePpsfpEngine(
    std::shared_ptr<const netlist::CompiledNetlist> compiled);
[[nodiscard]] std::unique_ptr<AnyPpsfpEngine> makePpsfpEngine(
    std::shared_ptr<const netlist::CompiledNetlist> compiled,
    netlist::LaneSelection sel);

namespace detail {

// Per-arch factories, defined in the -mavx2 / -mavx512f dispatch TUs.
[[nodiscard]] std::unique_ptr<AnyPpsfpEngine> makePpsfpEngineAvx2(
    std::shared_ptr<const netlist::CompiledNetlist> compiled);
[[nodiscard]] std::unique_ptr<AnyPpsfpEngine> makePpsfpEngineAvx512(
    std::shared_ptr<const netlist::CompiledNetlist> compiled);

}  // namespace detail

}  // namespace oisa::fault
