#include "netlist/dot.h"

#include <ostream>

namespace oisa::netlist {

namespace {
/// DOT identifiers must avoid special characters; we quote everything.
void writeQuoted(std::ostream& os, const std::string& s) {
  os << '"';
  for (char ch : s) {
    if (ch == '"' || ch == '\\') os << '\\';
    os << ch;
  }
  os << '"';
}
}  // namespace

void writeDot(const Netlist& nl, std::ostream& os) {
  os << "digraph ";
  writeQuoted(os, nl.name());
  os << " {\n  rankdir=LR;\n";
  for (NetId pi : nl.primaryInputs()) {
    os << "  ";
    writeQuoted(os, nl.net(pi).name);
    os << " [shape=box,color=blue];\n";
  }
  for (std::uint32_t gi = 0; gi < nl.gateCount(); ++gi) {
    const Gate& g = nl.gateAt(GateId{gi});
    os << "  g" << gi << " [label=\"" << gateName(g.kind) << "\"];\n";
    for (NetId in : g.inputs()) {
      const Net& n = nl.net(in);
      if (n.driver == DriverKind::PrimaryInput) {
        os << "  ";
        writeQuoted(os, n.name);
        os << " -> g" << gi << ";\n";
      } else if (n.driver == DriverKind::Gate) {
        os << "  g" << n.driverGate.value << " -> g" << gi << ";\n";
      }
    }
  }
  for (std::size_t i = 0; i < nl.primaryOutputs().size(); ++i) {
    const NetId net = nl.primaryOutputs()[i];
    const Net& n = nl.net(net);
    os << "  ";
    writeQuoted(os, nl.outputName(i));
    os << " [shape=doublecircle,color=red];\n";
    if (n.driver == DriverKind::Gate) {
      os << "  g" << n.driverGate.value << " -> ";
    } else {
      os << "  ";
      writeQuoted(os, n.name);
      os << " -> ";
    }
    writeQuoted(os, nl.outputName(i));
    os << ";\n";
  }
  os << "}\n";
}

}  // namespace oisa::netlist
