#include "netlist/netlist.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace oisa::netlist {

std::size_t GateHistogram::total() const noexcept {
  return std::accumulate(counts.begin(), counts.end(), std::size_t{0});
}

NetId Netlist::makeNet(std::string name, DriverKind driver,
                       GateId driverGate) {
  NetId id{static_cast<std::uint32_t>(nets_.size())};
  nets_.push_back(Net{std::move(name), driver, driverGate});
  return id;
}

NetId Netlist::input(std::string name) {
  NetId id = makeNet(std::move(name), DriverKind::PrimaryInput, GateId{});
  inputs_.push_back(id);
  return id;
}

NetId Netlist::gate(GateKind kind, std::span<const NetId> ins,
                    std::string outName) {
  const auto arity = static_cast<std::size_t>(gateArity(kind));
  if (ins.size() != arity) {
    throw std::invalid_argument("Netlist::gate: wrong input count for " +
                                std::string(gateName(kind)));
  }
  for (NetId in : ins) {
    if (!in.valid() || in.value >= nets_.size()) {
      throw std::invalid_argument("Netlist::gate: invalid input net");
    }
  }
  GateId gid{static_cast<std::uint32_t>(gates_.size())};
  Gate g;
  g.kind = kind;
  std::copy(ins.begin(), ins.end(), g.in.begin());
  if (outName.empty()) {
    outName = std::string(gateName(kind)) + "_" + std::to_string(gid.value);
  }
  g.out = makeNet(std::move(outName), DriverKind::Gate, gid);
  gates_.push_back(g);
  return gates_.back().out;
}

NetId Netlist::gate1(GateKind kind, NetId a, std::string outName) {
  const std::array<NetId, 1> ins{a};
  return gate(kind, ins, std::move(outName));
}

NetId Netlist::gate2(GateKind kind, NetId a, NetId b, std::string outName) {
  const std::array<NetId, 2> ins{a, b};
  return gate(kind, ins, std::move(outName));
}

NetId Netlist::gate3(GateKind kind, NetId a, NetId b, NetId c,
                     std::string outName) {
  const std::array<NetId, 3> ins{a, b, c};
  return gate(kind, ins, std::move(outName));
}

NetId Netlist::constant(bool value) {
  auto& cached = value ? const1_ : const0_;
  if (!cached) {
    cached = gate(value ? GateKind::Const1 : GateKind::Const0, {},
                  value ? "const1" : "const0");
  }
  return *cached;
}

void Netlist::output(std::string name, NetId net) {
  if (!net.valid() || net.value >= nets_.size()) {
    throw std::invalid_argument("Netlist::output: invalid net");
  }
  outputs_.push_back(net);
  outputNames_.push_back(std::move(name));
}

void Netlist::replaceGateInput(GateId gate, int pin, NetId net) {
  if (!gate.valid() || gate.value >= gates_.size()) {
    throw std::invalid_argument("Netlist::replaceGateInput: invalid gate");
  }
  Gate& g = gates_[gate.value];
  if (pin < 0 || pin >= gateArity(g.kind)) {
    throw std::invalid_argument("Netlist::replaceGateInput: invalid pin");
  }
  if (!net.valid() || net.value >= nets_.size()) {
    throw std::invalid_argument("Netlist::replaceGateInput: invalid net");
  }
  g.in[static_cast<std::size_t>(pin)] = net;
}

std::vector<GateId> Netlist::topologicalOrder() const {
  // Kahn's algorithm over the gate graph. A gate is ready once all of its
  // input nets are driven by primary inputs or already-emitted gates.
  std::vector<std::uint32_t> pending(gates_.size(), 0);
  std::vector<std::vector<GateId>> readers(nets_.size());
  for (std::uint32_t gi = 0; gi < gates_.size(); ++gi) {
    const Gate& g = gates_[gi];
    for (NetId in : g.inputs()) {
      const Net& n = nets_[in.value];
      if (n.driver == DriverKind::Gate) {
        ++pending[gi];
        readers[in.value].push_back(GateId{gi});
      } else if (n.driver == DriverKind::None) {
        throw std::runtime_error("Netlist: gate reads undriven net " +
                                 n.name);
      }
    }
  }
  std::vector<GateId> order;
  order.reserve(gates_.size());
  std::vector<GateId> ready;
  for (std::uint32_t gi = 0; gi < gates_.size(); ++gi) {
    if (pending[gi] == 0) ready.push_back(GateId{gi});
  }
  while (!ready.empty()) {
    GateId gid = ready.back();
    ready.pop_back();
    order.push_back(gid);
    const Gate& g = gates_[gid.value];
    for (GateId reader : readers[g.out.value]) {
      if (--pending[reader.value] == 0) ready.push_back(reader);
    }
  }
  if (order.size() != gates_.size()) {
    throw std::runtime_error("Netlist '" + name_ +
                             "': combinational cycle detected");
  }
  return order;
}

std::vector<std::vector<GateId>> Netlist::fanoutMap() const {
  std::vector<std::vector<GateId>> fanout(nets_.size());
  for (std::uint32_t gi = 0; gi < gates_.size(); ++gi) {
    for (NetId in : gates_[gi].inputs()) {
      fanout[in.value].push_back(GateId{gi});
    }
  }
  return fanout;
}

std::vector<std::uint32_t> Netlist::fanoutCounts() const {
  std::vector<std::uint32_t> counts(nets_.size(), 0);
  for (const Gate& g : gates_) {
    for (NetId in : g.inputs()) ++counts[in.value];
  }
  for (NetId out : outputs_) ++counts[out.value];
  return counts;
}

GateHistogram Netlist::histogram() const {
  GateHistogram h;
  for (const Gate& g : gates_) {
    ++h.counts[static_cast<std::size_t>(g.kind)];
  }
  return h;
}

void Netlist::validate() const {
  for (const Net& n : nets_) {
    if (n.driver == DriverKind::None) {
      throw std::runtime_error("Netlist '" + name_ + "': undriven net " +
                               n.name);
    }
    if (n.driver == DriverKind::Gate &&
        (!n.driverGate.valid() || n.driverGate.value >= gates_.size())) {
      throw std::runtime_error("Netlist '" + name_ +
                               "': dangling driver for net " + n.name);
    }
  }
  for (const Gate& g : gates_) {
    if (!g.out.valid() || g.out.value >= nets_.size()) {
      throw std::runtime_error("Netlist '" + name_ + "': gate without output");
    }
    for (NetId in : g.inputs()) {
      if (!in.valid() || in.value >= nets_.size()) {
        throw std::runtime_error("Netlist '" + name_ +
                                 "': gate with invalid input");
      }
    }
  }
  (void)topologicalOrder();  // throws on cycles
}

}  // namespace oisa::netlist
