#include "netlist/batch_evaluator.h"

#include <stdexcept>

namespace oisa::netlist {

namespace detail {

std::shared_ptr<const CompiledNetlist> requireAcyclicBatch(
    std::shared_ptr<const CompiledNetlist> compiled) {
  if (!compiled || !compiled->acyclic()) {
    throw std::runtime_error(
        "BatchEvaluator: netlist has a combinational cycle");
  }
  return compiled;
}

}  // namespace detail

// The reference width plus the portable wide fallbacks used by the runtime
// dispatcher on machines without the matching vector ISA. The intrinsic
// widths are instantiated only in the per-arch dispatch TUs
// (lane_simd_avx2.cpp / lane_simd_avx512.cpp).
template class BatchEvaluatorT<LaneBlock<64>>;
template class BatchEvaluatorT<LaneBlock<256>>;
template class BatchEvaluatorT<LaneBlock<512>>;

}  // namespace oisa::netlist
