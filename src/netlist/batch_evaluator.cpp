#include "netlist/batch_evaluator.h"

#include <array>
#include <stdexcept>

namespace oisa::netlist {

void transpose64(std::span<std::uint64_t, 64> rows) noexcept {
  // Hacker's Delight 7-6 block-swap, in LSB-first convention (element
  // (i, j) = bit j of rows[i]): at each step, exchange the upper-right and
  // lower-left j x j sub-blocks of every 2j x 2j block along the diagonal.
  std::uint64_t m = 0x00000000ffffffffull;
  for (std::size_t j = 32; j != 0; j >>= 1, m ^= m << j) {
    for (std::size_t k = 0; k < 64; k = (k + j + 1) & ~j) {
      const std::uint64_t t = ((rows[k] >> j) ^ rows[k + j]) & m;
      rows[k] ^= t << j;
      rows[k + j] ^= t;
    }
  }
}

BatchEvaluator::BatchEvaluator(const Netlist& nl)
    : nl_(nl), order_(nl.topologicalOrder()) {}

void BatchEvaluator::evaluateInto(std::span<const std::uint64_t> inputWords,
                                  std::vector<std::uint64_t>& values) const {
  const auto pis = nl_.primaryInputs();
  if (inputWords.size() != pis.size()) {
    throw std::invalid_argument(
        "BatchEvaluator: expected " + std::to_string(pis.size()) +
        " input words, got " + std::to_string(inputWords.size()));
  }
  values.assign(nl_.netCount(), 0);
  for (std::size_t i = 0; i < pis.size(); ++i) {
    values[pis[i].value] = inputWords[i];
  }
  for (GateId gid : order_) {
    const Gate& g = nl_.gateAt(gid);
    const auto ins = g.inputs();
    const std::uint64_t a = ins.empty() ? 0 : values[ins[0].value];
    const std::uint64_t b = ins.size() > 1 ? values[ins[1].value] : 0;
    const std::uint64_t c = ins.size() > 2 ? values[ins[2].value] : 0;
    values[g.out.value] = evalGateWord(g.kind, a, b, c);
  }
}

std::vector<std::uint64_t> BatchEvaluator::evaluate(
    std::span<const std::uint64_t> inputWords) const {
  std::vector<std::uint64_t> values;
  evaluateInto(inputWords, values);
  return values;
}

std::vector<std::uint64_t> BatchEvaluator::evaluateOutputs(
    std::span<const std::uint64_t> inputWords) const {
  const auto values = evaluate(inputWords);
  const auto pos = nl_.primaryOutputs();
  std::vector<std::uint64_t> out(pos.size());
  for (std::size_t i = 0; i < pos.size(); ++i) {
    out[i] = values[pos[i].value];
  }
  return out;
}

std::vector<std::uint64_t> BatchEvaluator::evaluateWords(
    std::span<const std::uint64_t> patterns) const {
  const auto pis = nl_.primaryInputs();
  const auto pos = nl_.primaryOutputs();
  if (pis.size() > kLanes || pos.size() > kLanes) {
    throw std::invalid_argument("BatchEvaluator::evaluateWords: > 64 ports");
  }
  if (patterns.empty() || patterns.size() > kLanes) {
    throw std::invalid_argument(
        "BatchEvaluator::evaluateWords: need 1..64 patterns");
  }
  // Transpose pattern-major rows into lane-major columns: after the
  // transpose, word i holds bit i of every pattern, i.e. the 64-lane value
  // of primary input i — with pattern p in lane p.
  std::array<std::uint64_t, kLanes> matrix{};
  for (std::size_t p = 0; p < patterns.size(); ++p) {
    matrix[p] = patterns[p];
  }
  transpose64(matrix);
  const auto outWords =
      evaluateOutputs(std::span<const std::uint64_t>(matrix.data(),
                                                     pis.size()));
  // Transpose back: row o currently holds output o across lanes; afterwards
  // row p packs all outputs of pattern p.
  matrix.fill(0);
  for (std::size_t o = 0; o < outWords.size(); ++o) {
    matrix[o] = outWords[o];
  }
  transpose64(matrix);
  return {matrix.begin(), matrix.begin() + static_cast<std::ptrdiff_t>(
                                               patterns.size())};
}

}  // namespace oisa::netlist
