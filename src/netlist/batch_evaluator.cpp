#include "netlist/batch_evaluator.h"

#include <array>
#include <stdexcept>
#include <string>

#include "netlist/bitops.h"

namespace oisa::netlist {

namespace {

std::shared_ptr<const CompiledNetlist> requireAcyclic(
    std::shared_ptr<const CompiledNetlist> compiled) {
  if (!compiled || !compiled->acyclic()) {
    throw std::runtime_error(
        "BatchEvaluator: netlist has a combinational cycle");
  }
  return compiled;
}

}  // namespace

BatchEvaluator::BatchEvaluator(const Netlist& nl)
    : BatchEvaluator(CompiledNetlist::compile(nl)) {}

BatchEvaluator::BatchEvaluator(std::shared_ptr<const CompiledNetlist> compiled)
    : compiled_(requireAcyclic(std::move(compiled))) {}

void BatchEvaluator::evaluateInto(std::span<const std::uint64_t> inputWords,
                                  std::vector<std::uint64_t>& values) const {
  const auto pis = compiled_->inputNets();
  if (inputWords.size() != pis.size()) {
    throw std::invalid_argument(
        "BatchEvaluator: expected " + std::to_string(pis.size()) +
        " input words, got " + std::to_string(inputWords.size()));
  }
  values.assign(compiled_->netCount(), 0);
  for (std::size_t i = 0; i < pis.size(); ++i) {
    values[pis[i]] = inputWords[i];
  }
  for (const std::uint32_t gi : compiled_->topologicalOrder()) {
    const CompiledNetlist::GateRec& g = compiled_->gate(gi);
    values[g.out] = evalGateWord(g.kind, values[g.in[0]], values[g.in[1]],
                                 values[g.in[2]]);
  }
}

std::vector<std::uint64_t> BatchEvaluator::evaluate(
    std::span<const std::uint64_t> inputWords) const {
  std::vector<std::uint64_t> values;
  evaluateInto(inputWords, values);
  return values;
}

std::vector<std::uint64_t> BatchEvaluator::evaluateOutputs(
    std::span<const std::uint64_t> inputWords) const {
  const auto values = evaluate(inputWords);
  const auto pos = compiled_->outputNets();
  std::vector<std::uint64_t> out(pos.size());
  for (std::size_t i = 0; i < pos.size(); ++i) {
    out[i] = values[pos[i]];
  }
  return out;
}

std::vector<std::uint64_t> BatchEvaluator::evaluateWords(
    std::span<const std::uint64_t> patterns) const {
  const auto pis = compiled_->inputNets();
  const auto pos = compiled_->outputNets();
  if (pis.size() > kLanes || pos.size() > kLanes) {
    throw std::invalid_argument("BatchEvaluator::evaluateWords: > 64 ports");
  }
  if (patterns.empty() || patterns.size() > kLanes) {
    throw std::invalid_argument(
        "BatchEvaluator::evaluateWords: need 1..64 patterns");
  }
  // Transpose pattern-major rows into lane-major columns: after the
  // transpose, word i holds bit i of every pattern, i.e. the 64-lane value
  // of primary input i — with pattern p in lane p.
  std::array<std::uint64_t, kLanes> matrix{};
  for (std::size_t p = 0; p < patterns.size(); ++p) {
    matrix[p] = patterns[p];
  }
  transpose64(matrix);
  const auto outWords =
      evaluateOutputs(std::span<const std::uint64_t>(matrix.data(),
                                                     pis.size()));
  // Transpose back: row o currently holds output o across lanes; afterwards
  // row p packs all outputs of pattern p.
  matrix.fill(0);
  for (std::size_t o = 0; o < outWords.size(); ++o) {
    matrix[o] = outWords[o];
  }
  transpose64(matrix);
  return {matrix.begin(), matrix.begin() + static_cast<std::ptrdiff_t>(
                                               patterns.size())};
}

}  // namespace oisa::netlist
