// oisa_netlist: runtime lane-width selection + the type-erased evaluator.
//
// The templated engines (BatchEvaluatorT, timing::LaneTimedSimulatorT,
// fault::PpsfpEngineT) are compile-time constructs; this header is the
// runtime face: a LaneSelection names a (width, arch) pair, the dispatcher
// picks the widest one the CPU supports (AVX-512 -> 512, AVX2 -> 256, else
// the 64-lane reference), and the OISA_FORCE_LANE_WIDTH environment
// variable overrides it for testing:
//
//   OISA_FORCE_LANE_WIDTH=64          reference engine
//   OISA_FORCE_LANE_WIDTH=256 / 512   vector width (falls back to the
//                                     portable variant without CPU support)
//   OISA_FORCE_LANE_WIDTH=portable    256-bit portable fallback
//   OISA_FORCE_LANE_WIDTH=portable256 / portable512   explicit portables
//
// AnyBatchEvaluator is the width-erased evaluator the experiment layer
// holds; the timing and fault layers have matching Any* interfaces
// (timing/lane_dispatch.h, fault/ppsfp_dispatch.h). All erased APIs speak
// flat uint64 spans with wordsPerNet() words per net, so the 64-lane data
// layout generalizes by a stride, not a new format.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "netlist/compiled_netlist.h"
#include "netlist/lane_block.h"

namespace oisa::netlist {

/// Environment variable consulted by selectLaneWidth().
inline constexpr const char* kLaneWidthEnvVar = "OISA_FORCE_LANE_WIDTH";

/// One dispatchable engine variant: a lane width and the implementation
/// flavor carrying it.
struct LaneSelection {
  std::size_t width = 64;
  LaneArch arch = LaneArch::Portable;

  [[nodiscard]] std::size_t wordsPerNet() const noexcept {
    return width / 64;
  }
  [[nodiscard]] friend bool operator==(const LaneSelection&,
                                       const LaneSelection&) noexcept =
      default;
};

/// Human-readable name, e.g. "64", "256-avx2", "512-portable".
[[nodiscard]] std::string laneSelectionName(LaneSelection sel);

/// True when this CPU can execute the given flavor (Portable: always).
[[nodiscard]] bool cpuSupportsLaneArch(LaneArch arch);

/// Every variant instantiable on this build + CPU, narrowest first. The
/// 64-lane reference is always element 0; intrinsic variants appear only
/// when both the build flags and the CPU support them.
[[nodiscard]] std::vector<LaneSelection> availableLaneSelections();

/// The widest intrinsic variant this CPU supports, else the 64-lane
/// reference. (Portable wide variants are never chosen by default: without
/// vector units they are strictly more work per sweep than 64 lanes.)
[[nodiscard]] LaneSelection defaultLaneSelection();

/// Parses an OISA_FORCE_LANE_WIDTH value. Throws std::invalid_argument on
/// an unknown spec. Forced 256/512 degrade to the portable variant when
/// the build or CPU lacks the vector ISA.
[[nodiscard]] LaneSelection parseLaneWidthSpec(std::string_view spec);

/// defaultLaneSelection(), unless OISA_FORCE_LANE_WIDTH overrides it. Reads
/// the environment on every call so tests can flip widths mid-process.
[[nodiscard]] LaneSelection selectLaneWidth();

/// Width-erased BatchEvaluatorT: the interface TraceCollector and the
/// experiment pipelines program against. Spans are input-/output-/net-major
/// with wordsPerNet() uint64 words per port or net; sub-word j of a net
/// holds lanes [64j, 64j + 64).
class AnyBatchEvaluator {
 public:
  virtual ~AnyBatchEvaluator() = default;

  [[nodiscard]] virtual std::size_t lanes() const noexcept = 0;
  [[nodiscard]] virtual std::size_t wordsPerNet() const noexcept = 0;
  [[nodiscard]] virtual LaneSelection selection() const noexcept = 0;
  virtual void evaluateInto(std::span<const std::uint64_t> inputWords,
                            std::vector<std::uint64_t>& values) const = 0;
  virtual void evaluateOutputsInto(std::span<const std::uint64_t> inputWords,
                                   std::vector<std::uint64_t>& out) const = 0;
  [[nodiscard]] virtual const std::shared_ptr<const CompiledNetlist>&
  compiled() const noexcept = 0;
};

/// Builds the evaluator variant for `sel` (default: selectLaneWidth()).
/// Throws std::invalid_argument for a variant this build/CPU cannot run.
[[nodiscard]] std::unique_ptr<AnyBatchEvaluator> makeBatchEvaluator(
    std::shared_ptr<const CompiledNetlist> compiled);
[[nodiscard]] std::unique_ptr<AnyBatchEvaluator> makeBatchEvaluator(
    std::shared_ptr<const CompiledNetlist> compiled, LaneSelection sel);

namespace detail {

// Implemented in the per-arch dispatch TUs (the only objects compiled with
// -mavx2 / -mavx512f). Declared unconditionally; defined only when CMake
// detected the flags (OISA_HAVE_AVX2 / OISA_HAVE_AVX512), and called only
// after a cpuSupportsLaneArch() check.
[[nodiscard]] std::unique_ptr<AnyBatchEvaluator> makeBatchEvaluatorAvx2(
    std::shared_ptr<const CompiledNetlist> compiled);
[[nodiscard]] std::unique_ptr<AnyBatchEvaluator> makeBatchEvaluatorAvx512(
    std::shared_ptr<const CompiledNetlist> compiled);

}  // namespace detail

}  // namespace oisa::netlist
