// oisa_netlist: primitive gate library.
//
// The gate alphabet is deliberately close to a standard-cell library subset
// (inverters, 2/3-input monotone gates, XORs, a 2:1 mux and a majority cell)
// so that the timing layer can attach technology-style delays per kind.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

namespace oisa::netlist {

/// Primitive cell kinds available to circuit generators.
enum class GateKind : std::uint8_t {
  Const0,  ///< constant driver, 0 inputs
  Const1,  ///< constant driver, 0 inputs
  Buf,     ///< y = a
  Inv,     ///< y = !a
  And2,    ///< y = a & b
  Or2,     ///< y = a | b
  Nand2,   ///< y = !(a & b)
  Nor2,    ///< y = !(a | b)
  Xor2,    ///< y = a ^ b
  Xnor2,   ///< y = !(a ^ b)
  And3,    ///< y = a & b & c
  Or3,     ///< y = a | b | c
  Aoi21,   ///< y = !((a & b) | c)
  Oai21,   ///< y = !((a | b) & c)
  Mux2,    ///< y = s ? b : a   (inputs: a, b, s)
  Maj3,    ///< y = majority(a, b, c) — full-adder carry cell
};

/// Number of distinct gate kinds (for per-kind tables).
inline constexpr std::size_t kGateKindCount = 16;

/// Number of input pins for a gate kind.
[[nodiscard]] constexpr int gateArity(GateKind kind) noexcept {
  switch (kind) {
    case GateKind::Const0:
    case GateKind::Const1: return 0;
    case GateKind::Buf:
    case GateKind::Inv: return 1;
    case GateKind::And2:
    case GateKind::Or2:
    case GateKind::Nand2:
    case GateKind::Nor2:
    case GateKind::Xor2:
    case GateKind::Xnor2: return 2;
    case GateKind::And3:
    case GateKind::Or3:
    case GateKind::Aoi21:
    case GateKind::Oai21:
    case GateKind::Mux2:
    case GateKind::Maj3: return 3;
  }
  return 0;
}

/// Combinational function of a gate kind over (up to) three boolean inputs.
[[nodiscard]] constexpr bool evalGate(GateKind kind, bool a, bool b,
                                      bool c) noexcept {
  switch (kind) {
    case GateKind::Const0: return false;
    case GateKind::Const1: return true;
    case GateKind::Buf: return a;
    case GateKind::Inv: return !a;
    case GateKind::And2: return a && b;
    case GateKind::Or2: return a || b;
    case GateKind::Nand2: return !(a && b);
    case GateKind::Nor2: return !(a || b);
    case GateKind::Xor2: return a != b;
    case GateKind::Xnor2: return a == b;
    case GateKind::And3: return a && b && c;
    case GateKind::Or3: return a || b || c;
    case GateKind::Aoi21: return !((a && b) || c);
    case GateKind::Oai21: return !((a || b) && c);
    case GateKind::Mux2: return c ? b : a;
    case GateKind::Maj3: return (a && b) || (a && c) || (b && c);
  }
  return false;
}

/// Human-readable cell name (used by reports and DOT export).
[[nodiscard]] constexpr std::string_view gateName(GateKind kind) noexcept {
  switch (kind) {
    case GateKind::Const0: return "CONST0";
    case GateKind::Const1: return "CONST1";
    case GateKind::Buf: return "BUF";
    case GateKind::Inv: return "INV";
    case GateKind::And2: return "AND2";
    case GateKind::Or2: return "OR2";
    case GateKind::Nand2: return "NAND2";
    case GateKind::Nor2: return "NOR2";
    case GateKind::Xor2: return "XOR2";
    case GateKind::Xnor2: return "XNOR2";
    case GateKind::And3: return "AND3";
    case GateKind::Or3: return "OR3";
    case GateKind::Aoi21: return "AOI21";
    case GateKind::Oai21: return "OAI21";
    case GateKind::Mux2: return "MUX2";
    case GateKind::Maj3: return "MAJ3";
  }
  return "?";
}

/// All gate kinds, for iteration in tests and per-kind tables.
[[nodiscard]] constexpr std::array<GateKind, kGateKindCount>
allGateKinds() noexcept {
  return {GateKind::Const0, GateKind::Const1, GateKind::Buf,   GateKind::Inv,
          GateKind::And2,   GateKind::Or2,    GateKind::Nand2, GateKind::Nor2,
          GateKind::Xor2,   GateKind::Xnor2,  GateKind::And3,  GateKind::Or3,
          GateKind::Aoi21,  GateKind::Oai21,  GateKind::Mux2,  GateKind::Maj3};
}

}  // namespace oisa::netlist
