#include "netlist/equivalence.h"

#include <algorithm>
#include <bit>
#include <random>
#include <sstream>

#include "netlist/batch_evaluator.h"

namespace oisa::netlist {

namespace {

std::string describeMismatch(const Netlist& a,
                             const std::vector<std::uint8_t>& inputs,
                             const std::vector<std::uint8_t>& outA,
                             const std::vector<std::uint8_t>& outB) {
  std::ostringstream os;
  os << "mismatch at inputs [";
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    os << int{inputs[i]};
  }
  os << "]: ";
  for (std::size_t i = 0; i < outA.size(); ++i) {
    if (outA[i] != outB[i]) {
      os << a.outputName(i) << "=" << int{outA[i]} << " vs " << int{outB[i]}
         << " ";
    }
  }
  return os.str();
}

/// Stages vectors into 64-wide batches and compares both netlists one
/// word-parallel sweep at a time — the checker's default evaluation path.
/// Counting and counterexample selection match the scalar checker exactly:
/// on a mismatch, `vectorsTried` includes vectors up to and including the
/// earliest failing one, which is the lowest mismatching lane of the first
/// failing batch.
class BatchChecker {
 public:
  BatchChecker(const Netlist& a, const Netlist& b, EquivalenceResult& result)
      : a_(a), evalA_(a), evalB_(b), result_(result) {}

  /// Stages one vector; evaluates when 64 are pending. Returns false once a
  /// mismatch has been found (result_ is then fully filled in).
  [[nodiscard]] bool tryVector(const std::vector<std::uint8_t>& in) {
    staged_.push_back(in);
    if (staged_.size() == BatchEvaluator::kLanes) return flush();
    return true;
  }

  /// Evaluates any pending partial batch. Returns false on mismatch.
  [[nodiscard]] bool flush() {
    if (staged_.empty()) return true;
    const std::size_t n = staged_.front().size();
    std::vector<std::uint64_t> inWords(n, 0);
    for (std::size_t lane = 0; lane < staged_.size(); ++lane) {
      for (std::size_t i = 0; i < n; ++i) {
        if (staged_[lane][i]) inWords[i] |= std::uint64_t{1} << lane;
      }
    }
    const auto outA = evalA_.evaluateOutputs(inWords);
    const auto outB = evalB_.evaluateOutputs(inWords);
    const std::uint64_t laneMask =
        staged_.size() == BatchEvaluator::kLanes
            ? ~std::uint64_t{0}
            : (std::uint64_t{1} << staged_.size()) - 1;
    std::uint64_t diff = 0;
    for (std::size_t o = 0; o < outA.size(); ++o) {
      diff |= outA[o] ^ outB[o];
    }
    diff &= laneMask;
    if (diff == 0) {
      result_.vectorsTried += staged_.size();
      staged_.clear();
      return true;
    }
    const auto lane = static_cast<std::size_t>(std::countr_zero(diff));
    result_.vectorsTried += lane + 1;
    std::vector<std::uint8_t> scalarA(outA.size());
    std::vector<std::uint8_t> scalarB(outB.size());
    for (std::size_t o = 0; o < outA.size(); ++o) {
      scalarA[o] = static_cast<std::uint8_t>((outA[o] >> lane) & 1u);
      scalarB[o] = static_cast<std::uint8_t>((outB[o] >> lane) & 1u);
    }
    result_.counterexample = staged_[lane];
    result_.message = describeMismatch(a_, staged_[lane], scalarA, scalarB);
    staged_.clear();
    return false;
  }

 private:
  const Netlist& a_;
  BatchEvaluator evalA_;
  BatchEvaluator evalB_;
  EquivalenceResult& result_;
  std::vector<std::vector<std::uint8_t>> staged_;
};

}  // namespace

EquivalenceResult checkEquivalence(const Netlist& a, const Netlist& b,
                                   const EquivalenceOptions& options) {
  EquivalenceResult result;
  if (a.primaryInputs().size() != b.primaryInputs().size() ||
      a.primaryOutputs().size() != b.primaryOutputs().size()) {
    result.message = "port shape mismatch";
    return result;
  }
  const std::size_t n = a.primaryInputs().size();
  BatchChecker checker(a, b, result);

  std::vector<std::uint8_t> in(n, 0);
  if (n <= static_cast<std::size_t>(options.exhaustiveLimit)) {
    const std::uint64_t limit = std::uint64_t{1} << n;
    for (std::uint64_t pattern = 0; pattern < limit; ++pattern) {
      for (std::size_t i = 0; i < n; ++i) {
        in[i] = static_cast<std::uint8_t>((pattern >> i) & 1u);
      }
      if (!checker.tryVector(in)) return result;
    }
    if (!checker.flush()) return result;
    result.equivalent = true;
    result.message = "exhaustively equivalent";
    return result;
  }

  // Directed corners: all-zero, all-one, walking ones/zeros, alternating.
  auto fill = [&](auto&& bit) {
    for (std::size_t i = 0; i < n; ++i) {
      in[i] = static_cast<std::uint8_t>(bit(i) ? 1 : 0);
    }
  };
  fill([](std::size_t) { return false; });
  if (!checker.tryVector(in)) return result;
  fill([](std::size_t) { return true; });
  if (!checker.tryVector(in)) return result;
  fill([](std::size_t i) { return i % 2 == 0; });
  if (!checker.tryVector(in)) return result;
  fill([](std::size_t i) { return i % 2 == 1; });
  if (!checker.tryVector(in)) return result;
  for (std::size_t hot = 0; hot < n; ++hot) {
    fill([hot](std::size_t i) { return i == hot; });
    if (!checker.tryVector(in)) return result;
    fill([hot](std::size_t i) { return i != hot; });
    if (!checker.tryVector(in)) return result;
  }

  std::mt19937_64 rng(options.seed);
  for (std::uint64_t v = 0; v < options.randomVectors; ++v) {
    for (std::size_t i = 0; i < n; ++i) {
      in[i] = static_cast<std::uint8_t>(rng() & 1u);
    }
    if (!checker.tryVector(in)) return result;
  }
  if (!checker.flush()) return result;
  result.equivalent = true;
  result.message = "no mismatch in " + std::to_string(result.vectorsTried) +
                   " vectors (simulation-based check)";
  return result;
}

}  // namespace oisa::netlist
