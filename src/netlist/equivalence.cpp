#include "netlist/equivalence.h"

#include <random>
#include <sstream>

#include "netlist/evaluator.h"

namespace oisa::netlist {

namespace {

std::string describeMismatch(const Netlist& a,
                             const std::vector<std::uint8_t>& inputs,
                             const std::vector<std::uint8_t>& outA,
                             const std::vector<std::uint8_t>& outB) {
  std::ostringstream os;
  os << "mismatch at inputs [";
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    os << int{inputs[i]};
  }
  os << "]: ";
  for (std::size_t i = 0; i < outA.size(); ++i) {
    if (outA[i] != outB[i]) {
      os << a.outputName(i) << "=" << int{outA[i]} << " vs " << int{outB[i]}
         << " ";
    }
  }
  return os.str();
}

}  // namespace

EquivalenceResult checkEquivalence(const Netlist& a, const Netlist& b,
                                   const EquivalenceOptions& options) {
  EquivalenceResult result;
  if (a.primaryInputs().size() != b.primaryInputs().size() ||
      a.primaryOutputs().size() != b.primaryOutputs().size()) {
    result.message = "port shape mismatch";
    return result;
  }
  const std::size_t n = a.primaryInputs().size();
  const Evaluator evalA(a);
  const Evaluator evalB(b);

  auto tryVector = [&](const std::vector<std::uint8_t>& in) {
    ++result.vectorsTried;
    const auto outA = evalA.evaluateOutputs(in);
    const auto outB = evalB.evaluateOutputs(in);
    if (outA != outB) {
      result.counterexample = in;
      result.message = describeMismatch(a, in, outA, outB);
      return false;
    }
    return true;
  };

  std::vector<std::uint8_t> in(n, 0);
  if (n <= static_cast<std::size_t>(options.exhaustiveLimit)) {
    const std::uint64_t limit = std::uint64_t{1} << n;
    for (std::uint64_t pattern = 0; pattern < limit; ++pattern) {
      for (std::size_t i = 0; i < n; ++i) {
        in[i] = static_cast<std::uint8_t>((pattern >> i) & 1u);
      }
      if (!tryVector(in)) return result;
    }
    result.equivalent = true;
    result.message = "exhaustively equivalent";
    return result;
  }

  // Directed corners: all-zero, all-one, walking ones/zeros, alternating.
  auto fill = [&](auto&& bit) {
    for (std::size_t i = 0; i < n; ++i) {
      in[i] = static_cast<std::uint8_t>(bit(i) ? 1 : 0);
    }
  };
  fill([](std::size_t) { return false; });
  if (!tryVector(in)) return result;
  fill([](std::size_t) { return true; });
  if (!tryVector(in)) return result;
  fill([](std::size_t i) { return i % 2 == 0; });
  if (!tryVector(in)) return result;
  fill([](std::size_t i) { return i % 2 == 1; });
  if (!tryVector(in)) return result;
  for (std::size_t hot = 0; hot < n; ++hot) {
    fill([hot](std::size_t i) { return i == hot; });
    if (!tryVector(in)) return result;
    fill([hot](std::size_t i) { return i != hot; });
    if (!tryVector(in)) return result;
  }

  std::mt19937_64 rng(options.seed);
  for (std::uint64_t v = 0; v < options.randomVectors; ++v) {
    for (std::size_t i = 0; i < n; ++i) {
      in[i] = static_cast<std::uint8_t>(rng() & 1u);
    }
    if (!tryVector(in)) return result;
  }
  result.equivalent = true;
  result.message = "no mismatch in " + std::to_string(result.vectorsTried) +
                   " vectors (simulation-based check)";
  return result;
}

}  // namespace oisa::netlist
