#include "netlist/compiled_netlist.h"

#include <stdexcept>

namespace oisa::netlist {

CompiledNetlist::CompiledNetlist(const Netlist& nl)
    : nl_(&nl), netCount_(nl.netCount()) {
  // Same malformed-input guard the engines previously inherited from
  // Netlist::topologicalOrder: an undriven net read by a gate is a hard
  // error at compile, never a silent constant 0. (Cycles, by contrast,
  // are representable — acyclic() reports them.)
  for (std::uint32_t gi = 0; gi < nl.gateCount(); ++gi) {
    for (const NetId in : nl.gateAt(GateId{gi}).inputs()) {
      if (nl.net(in).driver == DriverKind::None) {
        throw std::runtime_error("CompiledNetlist: gate reads undriven net " +
                                 nl.net(in).name);
      }
    }
  }
  inputNets_.reserve(nl.primaryInputs().size());
  for (const NetId pi : nl.primaryInputs()) inputNets_.push_back(pi.value);
  outputNets_.reserve(nl.primaryOutputs().size());
  for (const NetId po : nl.primaryOutputs()) outputNets_.push_back(po.value);

  // Dense gate records: input/output net indices plus the gate function as
  // an 8-entry truth table. Unused input slots alias net 0 so engines can
  // gather all three operands unconditionally.
  gates_.resize(nl.gateCount());
  for (std::uint32_t gi = 0; gi < nl.gateCount(); ++gi) {
    const Gate& g = nl.gateAt(GateId{gi});
    GateRec& rec = gates_[gi];
    rec.kind = g.kind;
    rec.out = g.out.value;
    const auto ins = g.inputs();
    for (std::size_t pin = 0; pin < ins.size(); ++pin) {
      rec.in[pin] = ins[pin].value;
    }
    std::uint8_t truth = 0;
    for (unsigned m = 0; m < 8; ++m) {
      if (evalGate(g.kind, (m & 1) != 0, (m & 2) != 0, (m & 4) != 0)) {
        truth = static_cast<std::uint8_t>(truth | (1u << m));
      }
    }
    rec.truth = truth;
  }

  // CSR fanout with merged multi-pin entries: a net wired to several pins
  // of one gate becomes a single entry carrying the combined minterm mask,
  // so one committed change updates the whole minterm before the gate is
  // re-evaluated. Per-gate pins are visited together, which makes the
  // merge a one-entry lookback.
  fanoutOffsets_.assign(netCount_ + 1, 0);
  constexpr std::uint32_t kNoGate = 0xffffffff;
  std::vector<std::uint32_t> lastGate(netCount_, kNoGate);
  for (std::uint32_t gi = 0; gi < nl.gateCount(); ++gi) {
    for (const NetId in : nl.gateAt(GateId{gi}).inputs()) {
      if (lastGate[in.value] != gi) {
        lastGate[in.value] = gi;
        ++fanoutOffsets_[in.value + 1];
      }
    }
  }
  for (std::size_t i = 1; i < fanoutOffsets_.size(); ++i) {
    fanoutOffsets_[i] += fanoutOffsets_[i - 1];
  }
  readers_.resize(fanoutOffsets_.back());
  std::vector<std::uint32_t> cursor(fanoutOffsets_.begin(),
                                    fanoutOffsets_.end() - 1);
  std::fill(lastGate.begin(), lastGate.end(), kNoGate);
  for (std::uint32_t gi = 0; gi < nl.gateCount(); ++gi) {
    const auto ins = nl.gateAt(GateId{gi}).inputs();
    for (std::size_t pin = 0; pin < ins.size(); ++pin) {
      const std::uint32_t net = ins[pin].value;
      const auto mask = static_cast<std::uint32_t>(1u << pin);
      if (lastGate[net] == gi) {
        readers_[cursor[net] - 1] |= mask;  // merge multi-pin connection
      } else {
        lastGate[net] = gi;
        readers_[cursor[net]++] = (gi << 3) | mask;
      }
    }
  }

  // Kahn levelization over the merged CSR. Unlike Netlist::
  // topologicalOrder this does not throw on a cycle: the order stays
  // partial (and is discarded), acyclic() reports false, and cycle-capable
  // consumers (the timed engines) construct anyway.
  {
    // Pending counts come from the merged CSR (one entry per (net, gate)
    // even for multi-pin connections), so each entry traversed below
    // decrements exactly one count.
    std::vector<std::uint32_t> pending(nl.gateCount(), 0);
    for (std::uint32_t net = 0; net < netCount_; ++net) {
      if (nl.net(NetId{net}).driver != DriverKind::Gate) continue;
      for (std::uint32_t i = fanoutOffsets_[net]; i < fanoutOffsets_[net + 1];
           ++i) {
        ++pending[readers_[i] >> 3];
      }
    }
    order_.reserve(nl.gateCount());
    for (std::uint32_t gi = 0; gi < nl.gateCount(); ++gi) {
      if (pending[gi] == 0) order_.push_back(gi);
    }
    for (std::size_t head = 0; head < order_.size(); ++head) {
      const GateRec& g = gates_[order_[head]];
      const std::uint32_t begin = fanoutOffsets_[g.out];
      const std::uint32_t end = fanoutOffsets_[g.out + 1];
      for (std::uint32_t i = begin; i < end; ++i) {
        const std::uint32_t reader = readers_[i] >> 3;
        if (--pending[reader] == 0) order_.push_back(reader);
      }
    }
    acyclic_ = order_.size() == nl.gateCount();
    if (!acyclic_) order_.clear();
  }

  // Settled all-inputs-low state: one zero-delay sweep in topological
  // order (this also assigns constant nets their value). Cyclic netlists
  // have no settled state; they reset to all-zeros.
  zeroState_.assign(netCount_, 0);
  for (const std::uint32_t gi : order_) {
    const GateRec& g = gates_[gi];
    const unsigned minterm = static_cast<unsigned>(zeroState_[g.in[0]]) |
                             (static_cast<unsigned>(zeroState_[g.in[1]]) << 1) |
                             (static_cast<unsigned>(zeroState_[g.in[2]]) << 2);
    zeroState_[g.out] = static_cast<std::uint8_t>((g.truth >> minterm) & 1u);
  }
}

}  // namespace oisa::netlist
