// AVX-512 dispatch TU — the only oisa_netlist object compiled with
// -mavx512f. Same minimality rule as lane_simd_avx2.cpp.
#if defined(__AVX512F__)

#include "netlist/lane_width_impl.h"

namespace oisa::netlist::detail {

std::unique_ptr<AnyBatchEvaluator> makeBatchEvaluatorAvx512(
    std::shared_ptr<const CompiledNetlist> compiled) {
  return std::make_unique<
      BatchEvaluatorAdapter<LaneBlock<512, LaneArch::Avx512>>>(
      std::move(compiled));
}

}  // namespace oisa::netlist::detail

#endif  // __AVX512F__
