// oisa_netlist: minimal ISCAS-85 `.bench`-format importer.
//
// The `.bench` netlist format of the classic ISCAS-85/89 benchmark
// suites (c17, c432, ... — the circuits every published fault simulator
// is measured on):
//
//   # comment
//   INPUT(G1)
//   OUTPUT(G22)
//   G10 = NAND(G1, G3)
//   G22 = NOT(G10)
//
// Supported cells: AND, OR, XOR, NAND, NOR, XNOR, NOT, BUF/BUFF, at any
// arity >= 1 (>= 1 input; wider-than-3 gates are decomposed into chains
// of the repo's 2/3-input primitives, inverting kinds as reduce +
// invert). Statements may appear in any order; definitions are resolved
// by name. Sequential elements (DFF) and unknown cells are rejected with
// a diagnostic — the fault engine is combinational.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>

#include "core/status.h"
#include "netlist/netlist.h"

namespace oisa::netlist {

/// Hard ceiling on a single cell's fan-in. Real benchmark circuits top
/// out around a few dozen; anything wider is a corrupt or adversarial
/// file, and rejecting it up front keeps the arity-reduction loop from
/// materializing millions of gates.
inline constexpr std::size_t kMaxGateArity = 4096;

/// Status-returning parsers: every malformed input — bad syntax,
/// undefined/duplicated signals, unsupported or sequential cells,
/// combinational cycles, absurd gate widths, binary garbage — comes back
/// as StatusCode::InvalidInput with a line-numbered diagnostic; file
/// open/read failures as IoError. No malformed byte stream crashes or
/// throws past these.
[[nodiscard]] core::StatusOr<Netlist> readBenchStatus(
    std::istream& in, std::string topName = "bench");
[[nodiscard]] core::StatusOr<Netlist> readBenchStringStatus(
    std::string_view text, std::string topName = "bench");
[[nodiscard]] core::StatusOr<Netlist> readBenchFileStatus(
    const std::string& path);

/// Throwing convenience wrappers over the Status parsers (they raise
/// core::StatusError, which is-a std::runtime_error, so pre-Status
/// callers keep working unchanged).
[[nodiscard]] Netlist readBench(std::istream& in,
                                std::string topName = "bench");

/// Parses a `.bench`-format circuit from an in-memory string (embedded
/// test circuits, generated netlists).
[[nodiscard]] Netlist readBenchString(std::string_view text,
                                      std::string topName = "bench");

/// Parses a `.bench` file from disk; the top name defaults to the file
/// path.
[[nodiscard]] Netlist readBenchFile(const std::string& path);

}  // namespace oisa::netlist
