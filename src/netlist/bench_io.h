// oisa_netlist: minimal ISCAS-85 `.bench`-format importer.
//
// The `.bench` netlist format of the classic ISCAS-85/89 benchmark
// suites (c17, c432, ... — the circuits every published fault simulator
// is measured on):
//
//   # comment
//   INPUT(G1)
//   OUTPUT(G22)
//   G10 = NAND(G1, G3)
//   G22 = NOT(G10)
//
// Supported cells: AND, OR, XOR, NAND, NOR, XNOR, NOT, BUF/BUFF, at any
// arity >= 1 (>= 1 input; wider-than-3 gates are decomposed into chains
// of the repo's 2/3-input primitives, inverting kinds as reduce +
// invert). Statements may appear in any order; definitions are resolved
// by name. Sequential elements (DFF) and unknown cells are rejected with
// a diagnostic — the fault engine is combinational.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>

#include "netlist/netlist.h"

namespace oisa::netlist {

/// Parses a `.bench`-format circuit from a stream. Throws
/// std::runtime_error with a line-numbered diagnostic on malformed
/// input, undefined or duplicated signals, unsupported cells, or a
/// combinational cycle.
[[nodiscard]] Netlist readBench(std::istream& in,
                                std::string topName = "bench");

/// Parses a `.bench`-format circuit from an in-memory string (embedded
/// test circuits, generated netlists).
[[nodiscard]] Netlist readBenchString(std::string_view text,
                                      std::string topName = "bench");

/// Parses a `.bench` file from disk; the top name defaults to the file
/// path.
[[nodiscard]] Netlist readBenchFile(const std::string& path);

}  // namespace oisa::netlist
