// oisa_netlist: the W-bit lane block — the SIMD data plane of every
// word-parallel engine.
//
// A LaneBlock<W, Arch> is W independent evaluation lanes stored as W/64
// machine words: the generalization of the repo's original "one uint64_t
// per net" convention to 256/512-bit vectors. Engines keep their data
// planes as flat std::uint64_t arrays with `kWords` words per net (word j
// of a net holds lanes [64j, 64j + 64)), and use LaneBlock purely as the
// register type for gather/op/scatter, so slicing any wide run back into
// 64-lane sub-runs is a stride, not a shuffle — the property the
// differential tests use to prove every width bit-exact against the
// 64-lane reference engines.
//
// Three architectures:
//  * LaneArch::Portable — std::uint64_t[kWords] with plain loops; valid
//    for any W and the only variant normal translation units may
//    instantiate. The 64-bit portable block is the canonical reference.
//  * LaneArch::Avx2 — W=256 as one __m256i; defined only when the
//    including TU is compiled with -mavx2 (the dedicated dispatch TUs).
//  * LaneArch::Avx512 — W=512 as one __m512i; defined only under
//    -mavx512f, likewise.
//
// The intrinsic specializations are deliberately invisible elsewhere:
// only the per-arch instantiation TUs (e.g. lane_simd_avx2.cpp) name
// them, so no AVX code can leak into objects that must run on
// x86-64-v2-only hosts. Runtime selection lives in netlist/lane_width.h.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>

#if defined(__AVX2__) || defined(__AVX512F__)
#include <immintrin.h>
#endif

#include "netlist/gate.h"

namespace oisa::netlist {

/// Implementation flavor of a LaneBlock. Portable is valid everywhere;
/// the vector flavors exist only in TUs compiled with the matching ISA.
enum class LaneArch : std::uint8_t { Portable, Avx2, Avx512 };

/// W-lane block, W/64 uint64 words. Primary template: portable fallback.
template <std::size_t W, LaneArch A = LaneArch::Portable>
struct LaneBlock {
  static_assert(A == LaneArch::Portable,
                "intrinsic LaneBlock specializations are provided "
                "separately (and only under the matching -m flags)");
  static_assert(W >= 64 && W % 64 == 0, "lane width must be a multiple of 64");

  static constexpr std::size_t kBits = W;
  static constexpr std::size_t kWords = W / 64;
  static constexpr LaneArch kArch = A;

  std::uint64_t w[kWords];

  [[nodiscard]] static LaneBlock load(const std::uint64_t* p) noexcept {
    LaneBlock b;
    for (std::size_t i = 0; i < kWords; ++i) b.w[i] = p[i];
    return b;
  }
  void store(std::uint64_t* p) const noexcept {
    for (std::size_t i = 0; i < kWords; ++i) p[i] = w[i];
  }
  [[nodiscard]] static LaneBlock splat(std::uint64_t v) noexcept {
    LaneBlock b;
    for (std::size_t i = 0; i < kWords; ++i) b.w[i] = v;
    return b;
  }
  [[nodiscard]] static LaneBlock zero() noexcept { return splat(0); }
  [[nodiscard]] static LaneBlock ones() noexcept {
    return splat(~std::uint64_t{0});
  }

  /// Slice-to-u64: lanes [64j, 64j + 64) of the block.
  [[nodiscard]] std::uint64_t word(std::size_t j) const noexcept {
    return w[j];
  }

  [[nodiscard]] friend LaneBlock operator&(LaneBlock a, LaneBlock b) noexcept {
    for (std::size_t i = 0; i < kWords; ++i) a.w[i] &= b.w[i];
    return a;
  }
  [[nodiscard]] friend LaneBlock operator|(LaneBlock a, LaneBlock b) noexcept {
    for (std::size_t i = 0; i < kWords; ++i) a.w[i] |= b.w[i];
    return a;
  }
  [[nodiscard]] friend LaneBlock operator^(LaneBlock a, LaneBlock b) noexcept {
    for (std::size_t i = 0; i < kWords; ++i) a.w[i] ^= b.w[i];
    return a;
  }
  [[nodiscard]] LaneBlock operator~() const noexcept {
    LaneBlock b;
    for (std::size_t i = 0; i < kWords; ++i) b.w[i] = ~w[i];
    return b;
  }
  [[nodiscard]] friend bool operator==(const LaneBlock& a,
                                       const LaneBlock& b) noexcept {
    std::uint64_t diff = 0;
    for (std::size_t i = 0; i < kWords; ++i) diff |= a.w[i] ^ b.w[i];
    return diff == 0;
  }

  /// True when any lane is set ("any-lane-changed" on an XOR).
  [[nodiscard]] bool any() const noexcept {
    std::uint64_t acc = 0;
    for (std::size_t i = 0; i < kWords; ++i) acc |= w[i];
    return acc != 0;
  }
  /// Set-lane count across the whole block.
  [[nodiscard]] int popcount() const noexcept {
    int n = 0;
    for (std::size_t i = 0; i < kWords; ++i) n += std::popcount(w[i]);
    return n;
  }
};

#if defined(__AVX2__)
/// 256-lane block as one AVX2 vector. Only the -mavx2 dispatch TUs may
/// name this type.
template <>
struct LaneBlock<256, LaneArch::Avx2> {
  static constexpr std::size_t kBits = 256;
  static constexpr std::size_t kWords = 4;
  static constexpr LaneArch kArch = LaneArch::Avx2;

  __m256i v;

  [[nodiscard]] static LaneBlock load(const std::uint64_t* p) noexcept {
    return {_mm256_loadu_si256(reinterpret_cast<const __m256i*>(p))};
  }
  void store(std::uint64_t* p) const noexcept {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(p), v);
  }
  [[nodiscard]] static LaneBlock splat(std::uint64_t x) noexcept {
    return {_mm256_set1_epi64x(static_cast<long long>(x))};
  }
  [[nodiscard]] static LaneBlock zero() noexcept {
    return {_mm256_setzero_si256()};
  }
  [[nodiscard]] static LaneBlock ones() noexcept { return splat(~std::uint64_t{0}); }

  [[nodiscard]] std::uint64_t word(std::size_t j) const noexcept {
    alignas(32) std::uint64_t tmp[4];
    _mm256_store_si256(reinterpret_cast<__m256i*>(tmp), v);
    return tmp[j];
  }

  [[nodiscard]] friend LaneBlock operator&(LaneBlock a, LaneBlock b) noexcept {
    return {_mm256_and_si256(a.v, b.v)};
  }
  [[nodiscard]] friend LaneBlock operator|(LaneBlock a, LaneBlock b) noexcept {
    return {_mm256_or_si256(a.v, b.v)};
  }
  [[nodiscard]] friend LaneBlock operator^(LaneBlock a, LaneBlock b) noexcept {
    return {_mm256_xor_si256(a.v, b.v)};
  }
  [[nodiscard]] LaneBlock operator~() const noexcept {
    return {_mm256_xor_si256(v, ones().v)};
  }
  [[nodiscard]] friend bool operator==(const LaneBlock& a,
                                       const LaneBlock& b) noexcept {
    return _mm256_testz_si256(_mm256_xor_si256(a.v, b.v),
                              _mm256_xor_si256(a.v, b.v)) != 0;
  }
  [[nodiscard]] bool any() const noexcept {
    return _mm256_testz_si256(v, v) == 0;
  }
  [[nodiscard]] int popcount() const noexcept {
    alignas(32) std::uint64_t tmp[4];
    _mm256_store_si256(reinterpret_cast<__m256i*>(tmp), v);
    return std::popcount(tmp[0]) + std::popcount(tmp[1]) +
           std::popcount(tmp[2]) + std::popcount(tmp[3]);
  }
};
#endif  // __AVX2__

#if defined(__AVX512F__)
/// 512-lane block as one AVX-512 vector. Only the -mavx512f dispatch TUs
/// may name this type.
template <>
struct LaneBlock<512, LaneArch::Avx512> {
  static constexpr std::size_t kBits = 512;
  static constexpr std::size_t kWords = 8;
  static constexpr LaneArch kArch = LaneArch::Avx512;

  __m512i v;

  [[nodiscard]] static LaneBlock load(const std::uint64_t* p) noexcept {
    return {_mm512_loadu_si512(p)};
  }
  void store(std::uint64_t* p) const noexcept { _mm512_storeu_si512(p, v); }
  [[nodiscard]] static LaneBlock splat(std::uint64_t x) noexcept {
    return {_mm512_set1_epi64(static_cast<long long>(x))};
  }
  [[nodiscard]] static LaneBlock zero() noexcept {
    return {_mm512_setzero_si512()};
  }
  [[nodiscard]] static LaneBlock ones() noexcept { return splat(~std::uint64_t{0}); }

  [[nodiscard]] std::uint64_t word(std::size_t j) const noexcept {
    alignas(64) std::uint64_t tmp[8];
    _mm512_store_si512(tmp, v);
    return tmp[j];
  }

  [[nodiscard]] friend LaneBlock operator&(LaneBlock a, LaneBlock b) noexcept {
    return {_mm512_and_epi64(a.v, b.v)};
  }
  [[nodiscard]] friend LaneBlock operator|(LaneBlock a, LaneBlock b) noexcept {
    return {_mm512_or_epi64(a.v, b.v)};
  }
  [[nodiscard]] friend LaneBlock operator^(LaneBlock a, LaneBlock b) noexcept {
    return {_mm512_xor_epi64(a.v, b.v)};
  }
  [[nodiscard]] LaneBlock operator~() const noexcept {
    // vpternlogq 0x55 = NOT(a), one op instead of xor-with-ones.
    return {_mm512_ternarylogic_epi64(v, v, v, 0x55)};
  }
  [[nodiscard]] friend bool operator==(const LaneBlock& a,
                                       const LaneBlock& b) noexcept {
    return _mm512_cmpneq_epi64_mask(a.v, b.v) == 0;
  }
  [[nodiscard]] bool any() const noexcept {
    return _mm512_test_epi64_mask(v, v) != 0;
  }
  [[nodiscard]] int popcount() const noexcept {
    alignas(64) std::uint64_t tmp[8];
    _mm512_store_si512(tmp, v);
    int n = 0;
    for (const std::uint64_t x : tmp) n += std::popcount(x);
    return n;
  }
};
#endif  // __AVX512F__

/// The canonical 64-lane reference block.
using LaneBlock64 = LaneBlock<64, LaneArch::Portable>;

/// Block-parallel gate function: every lane of a/b/c is an independent
/// evaluation. Mirrors evalGateWord (and the scalar evalGate) bit-for-bit
/// in every lane at every width — the single definition all templated
/// engines share.
template <class Block>
[[nodiscard]] inline Block evalGateBlock(GateKind kind, Block a, Block b,
                                         Block c) noexcept {
  switch (kind) {
    case GateKind::Const0: return Block::zero();
    case GateKind::Const1: return Block::ones();
    case GateKind::Buf: return a;
    case GateKind::Inv: return ~a;
    case GateKind::And2: return a & b;
    case GateKind::Or2: return a | b;
    case GateKind::Nand2: return ~(a & b);
    case GateKind::Nor2: return ~(a | b);
    case GateKind::Xor2: return a ^ b;
    case GateKind::Xnor2: return ~(a ^ b);
    case GateKind::And3: return a & b & c;
    case GateKind::Or3: return a | b | c;
    case GateKind::Aoi21: return ~((a & b) | c);
    case GateKind::Oai21: return ~((a | b) & c);
    case GateKind::Mux2: return (c & b) | (~c & a);
    case GateKind::Maj3: return (a & b) | (a & c) | (b & c);
  }
  return Block::zero();
}

}  // namespace oisa::netlist
