// oisa_netlist: zero-delay functional evaluation.
//
// Evaluates a netlist as a pure boolean function. Used as the golden
// reference for the timed simulator (T -> infinity must agree with this) and
// by equivalence tests between generated netlists and behavioral models.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "netlist/netlist.h"

namespace oisa::netlist {

/// Reusable zero-delay evaluator. Caches the topological order so repeated
/// evaluations of the same netlist are a single linear sweep.
class Evaluator {
 public:
  explicit Evaluator(const Netlist& nl);

  /// Evaluates with the given primary-input values (one per primary input,
  /// in declaration order) and returns net values for the whole netlist.
  /// The result vector is indexed by NetId::value.
  [[nodiscard]] std::vector<std::uint8_t> evaluate(
      std::span<const std::uint8_t> inputValues) const;

  /// Evaluates and returns only the primary-output values, in declaration
  /// order.
  [[nodiscard]] std::vector<std::uint8_t> evaluateOutputs(
      std::span<const std::uint8_t> inputValues) const;

  /// Convenience for arithmetic circuits: packs inputs from a 64-bit word
  /// (bit i of `word` drives primary input i) and returns outputs packed the
  /// same way (output i becomes bit i). Requires <= 64 inputs / outputs.
  [[nodiscard]] std::uint64_t evaluateWord(std::uint64_t word) const;

  [[nodiscard]] const Netlist& netlist() const noexcept { return nl_; }

 private:
  const Netlist& nl_;
  std::vector<GateId> order_;
};

}  // namespace oisa::netlist
