// oisa_netlist: shared word-level bit manipulation primitives.
//
// Home of the 64x64 bit-matrix transpose that every 64-lane subsystem uses
// to convert between pattern-major words (one word per pattern/row) and
// lane-major words (one word per net/feature, bit L = lane L): the
// functional BatchEvaluator, the lane-parallel timed trace collector, and
// the packed ML feature extraction.
#pragma once

#include <cstdint>
#include <span>

namespace oisa::netlist {

/// In-place transpose of a 64x64 bit matrix stored as 64 row words
/// (bit j of rows[i] = element (i, j)).
inline void transpose64(std::span<std::uint64_t, 64> rows) noexcept {
  // Hacker's Delight 7-6 block-swap, in LSB-first convention: at each step,
  // exchange the upper-right and lower-left j x j sub-blocks of every
  // 2j x 2j block along the diagonal.
  std::uint64_t m = 0x00000000ffffffffull;
  for (std::size_t j = 32; j != 0; j >>= 1, m ^= m << j) {
    for (std::size_t k = 0; k < 64; k = (k + j + 1) & ~j) {
      const std::uint64_t t = ((rows[k] >> j) ^ rows[k + j]) & m;
      rows[k] ^= t << j;
      rows[k + j] ^= t;
    }
  }
}

}  // namespace oisa::netlist
