// oisa_netlist: word-parallel (W-lane) zero-delay evaluation.
//
// Packs W independent input patterns into W/64 std::uint64_t words per net
// — bit L of sub-word j belongs to pattern 64j + L — and evaluates all of
// them in a single topological sweep using bitwise gate functions. This is
// the classic bit-parallel fault-simulation idiom: the sweep cost is
// identical to one scalar Evaluator pass, so throughput improves by up to
// W x for functional Monte-Carlo sampling, equivalence checking and
// workload replay.
//
// The engine is a template over netlist::LaneBlock (64-bit scalar, 256-bit
// AVX2, 512-bit AVX-512, or any portable multiple-of-64 width); the
// original 64-lane engine is the `BatchEvaluator` alias and stays the
// canonical reference. Data planes are flat uint64 vectors with kWords
// words per net (input-major: net n's lanes live at [n*kWords,
// (n+1)*kWords)), so slicing a wide run into 64-lane sub-runs is a stride
// — the property tests/lane_width_test.cpp uses to prove every width
// bit-exact against the reference.
//
// Runs over the shared netlist::CompiledNetlist substrate (dense gate
// records + cached topological order), so it can share one compile with the
// timed engines. Functionally equivalent to Evaluator lane by lane
// (cross-checked by tests/batch_evaluator_test.cpp on every adder
// topology). The 64x64 lane transpose lives in netlist/bitops.h.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "netlist/bitops.h"
#include "netlist/compiled_netlist.h"
#include "netlist/lane_block.h"
#include "netlist/netlist.h"

namespace oisa::netlist {

/// Word-parallel gate function: each bit position of a/b/c is an independent
/// evaluation lane. Mirrors evalGate() bit-for-bit in every lane.
[[nodiscard]] constexpr std::uint64_t evalGateWord(GateKind kind,
                                                   std::uint64_t a,
                                                   std::uint64_t b,
                                                   std::uint64_t c) noexcept {
  switch (kind) {
    case GateKind::Const0: return 0;
    case GateKind::Const1: return ~std::uint64_t{0};
    case GateKind::Buf: return a;
    case GateKind::Inv: return ~a;
    case GateKind::And2: return a & b;
    case GateKind::Or2: return a | b;
    case GateKind::Nand2: return ~(a & b);
    case GateKind::Nor2: return ~(a | b);
    case GateKind::Xor2: return a ^ b;
    case GateKind::Xnor2: return ~(a ^ b);
    case GateKind::And3: return a & b & c;
    case GateKind::Or3: return a | b | c;
    case GateKind::Aoi21: return ~((a & b) | c);
    case GateKind::Oai21: return ~((a | b) & c);
    case GateKind::Mux2: return (c & b) | (~c & a);
    case GateKind::Maj3: return (a & b) | (a & c) | (b & c);
  }
  return 0;
}

namespace detail {

/// Shared cycle guard for all BatchEvaluatorT widths (single definition,
/// single error message). Defined in batch_evaluator.cpp.
[[nodiscard]] std::shared_ptr<const CompiledNetlist> requireAcyclicBatch(
    std::shared_ptr<const CompiledNetlist> compiled);

}  // namespace detail

/// Reusable W-lane evaluator over a compiled netlist.
///
/// Two layouts are supported:
///  * lane-major ("kWords words per net"): evaluate()/evaluateOutputs()
///    take kWords words per primary input whose bit L of sub-word j is
///    pattern (64j + L)'s value of that input. Works for any port count —
///    this is the hot-path API.
///  * pattern-major ("one word per pattern"): evaluateWords() takes packed
///    words in the Evaluator::evaluateWord convention (bit i = primary
///    input i) and transposes internally. Requires <= 64 inputs/outputs.
template <class Block>
class BatchEvaluatorT {
 public:
  /// Number of patterns evaluated per sweep.
  static constexpr std::size_t kLanes = Block::kBits;
  /// uint64 words per net in every lane-major span.
  static constexpr std::size_t kWords = Block::kWords;

  /// Compiles `nl` privately. Throws std::runtime_error on a cyclic
  /// netlist (functional evaluation needs a topological order).
  explicit BatchEvaluatorT(const Netlist& nl)
      : BatchEvaluatorT(CompiledNetlist::compile(nl)) {}

  /// Shares an existing compile (e.g. with a timed engine over the same
  /// design). Same cycle check as the Netlist constructor.
  explicit BatchEvaluatorT(std::shared_ptr<const CompiledNetlist> compiled)
      : compiled_(detail::requireAcyclicBatch(std::move(compiled))) {}

  /// Evaluates kLanes patterns at once. `inputWords` holds kWords words per
  /// primary input (declaration order, input-major). Returns kWords words
  /// per net, indexed by NetId::value * kWords. For batches smaller than
  /// kLanes the extra lanes simply compute whatever the unused input bits
  /// encode; callers mask them out.
  [[nodiscard]] std::vector<std::uint64_t> evaluate(
      std::span<const std::uint64_t> inputWords) const {
    std::vector<std::uint64_t> values;
    evaluateInto(inputWords, values);
    return values;
  }

  /// Like evaluate() but writes into `values` (resized to
  /// netCount() * kWords), avoiding per-batch allocation in hot loops.
  void evaluateInto(std::span<const std::uint64_t> inputWords,
                    std::vector<std::uint64_t>& values) const {
    const auto pis = compiled_->inputNets();
    if (inputWords.size() != pis.size() * kWords) {
      throw std::invalid_argument(
          "BatchEvaluator: expected " + std::to_string(pis.size() * kWords) +
          " input words, got " + std::to_string(inputWords.size()));
    }
    values.assign(compiled_->netCount() * kWords, 0);
    for (std::size_t i = 0; i < pis.size(); ++i) {
      Block::load(inputWords.data() + i * kWords)
          .store(values.data() + std::size_t{pis[i]} * kWords);
    }
    for (const std::uint32_t gi : compiled_->topologicalOrder()) {
      const CompiledNetlist::GateRec& g = compiled_->gate(gi);
      const Block out = evalGateBlock<Block>(
          g.kind, Block::load(values.data() + std::size_t{g.in[0]} * kWords),
          Block::load(values.data() + std::size_t{g.in[1]} * kWords),
          Block::load(values.data() + std::size_t{g.in[2]} * kWords));
      out.store(values.data() + std::size_t{g.out} * kWords);
    }
  }

  /// Evaluates kLanes patterns and returns kWords words per primary output
  /// (declaration order, output-major).
  [[nodiscard]] std::vector<std::uint64_t> evaluateOutputs(
      std::span<const std::uint64_t> inputWords) const {
    const auto values = evaluate(inputWords);
    const auto pos = compiled_->outputNets();
    std::vector<std::uint64_t> out(pos.size() * kWords);
    for (std::size_t i = 0; i < pos.size(); ++i) {
      for (std::size_t j = 0; j < kWords; ++j) {
        out[i * kWords + j] = values[std::size_t{pos[i]} * kWords + j];
      }
    }
    return out;
  }

  /// Pattern-major batch counterpart of Evaluator::evaluateWord: element p
  /// of `patterns` packs primary-input bits of pattern p (bit i drives
  /// input i); the result packs primary-output bits the same way. Accepts
  /// 1..kLanes patterns per call and requires <= 64 inputs / outputs.
  [[nodiscard]] std::vector<std::uint64_t> evaluateWords(
      std::span<const std::uint64_t> patterns) const {
    const auto pis = compiled_->inputNets();
    const auto pos = compiled_->outputNets();
    if (pis.size() > 64 || pos.size() > 64) {
      throw std::invalid_argument("BatchEvaluator::evaluateWords: > 64 ports");
    }
    if (patterns.empty() || patterns.size() > kLanes) {
      throw std::invalid_argument(
          "BatchEvaluator::evaluateWords: need 1.." + std::to_string(kLanes) +
          " patterns");
    }
    // Transpose pattern-major rows into lane-major columns, one 64-pattern
    // sub-block at a time: after the transpose of sub-block j, its word i
    // holds bit i of patterns [64j, 64j + 64), i.e. sub-word j of primary
    // input i's lane-major value.
    const std::size_t blocks = (patterns.size() + 63) / 64;
    std::vector<std::uint64_t> inWords(pis.size() * kWords, 0);
    std::array<std::uint64_t, 64> matrix{};
    for (std::size_t j = 0; j < blocks; ++j) {
      matrix.fill(0);
      const std::size_t base = j * 64;
      const std::size_t count = std::min<std::size_t>(64,
                                                      patterns.size() - base);
      for (std::size_t p = 0; p < count; ++p) {
        matrix[p] = patterns[base + p];
      }
      transpose64(matrix);
      for (std::size_t i = 0; i < pis.size(); ++i) {
        inWords[i * kWords + j] = matrix[i];
      }
    }
    const auto outWords = evaluateOutputs(inWords);
    // Transpose back per sub-block: row o holds output o across the
    // sub-block's lanes; afterwards row p packs all outputs of pattern
    // base + p.
    std::vector<std::uint64_t> result(patterns.size());
    for (std::size_t j = 0; j < blocks; ++j) {
      matrix.fill(0);
      for (std::size_t o = 0; o < pos.size(); ++o) {
        matrix[o] = outWords[o * kWords + j];
      }
      transpose64(matrix);
      const std::size_t base = j * 64;
      const std::size_t count = std::min<std::size_t>(64,
                                                      patterns.size() - base);
      for (std::size_t p = 0; p < count; ++p) {
        result[base + p] = matrix[p];
      }
    }
    return result;
  }

  [[nodiscard]] const Netlist& netlist() const noexcept {
    return compiled_->source();
  }
  [[nodiscard]] const std::shared_ptr<const CompiledNetlist>& compiled()
      const noexcept {
    return compiled_;
  }

 private:
  std::shared_ptr<const CompiledNetlist> compiled_;
};

/// The canonical 64-lane reference evaluator (original API: one word per
/// net, one word per input/output).
using BatchEvaluator = BatchEvaluatorT<LaneBlock64>;

// Portable widths are instantiated once in batch_evaluator.cpp (compiled
// with the baseline flags) so TUs built with wider -m flags never emit
// portable-width code — that keeps the dispatch binaries runnable on
// x86-64-v2-only hosts.
extern template class BatchEvaluatorT<LaneBlock<64>>;
extern template class BatchEvaluatorT<LaneBlock<256>>;
extern template class BatchEvaluatorT<LaneBlock<512>>;

}  // namespace oisa::netlist
