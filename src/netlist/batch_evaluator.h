// oisa_netlist: word-parallel (64-lane) zero-delay evaluation.
//
// Packs 64 independent input patterns into one std::uint64_t per net — bit L
// of every word belongs to pattern L — and evaluates all of them in a single
// topological sweep using bitwise gate functions. This is the classic
// bit-parallel fault-simulation idiom: the sweep cost is identical to one
// scalar Evaluator pass, so throughput improves by up to 64x for functional
// Monte-Carlo sampling, equivalence checking and workload replay.
//
// Runs over the shared netlist::CompiledNetlist substrate (dense gate
// records + cached topological order), so it can share one compile with the
// timed engines. Functionally equivalent to Evaluator lane by lane
// (cross-checked by tests/batch_evaluator_test.cpp on every adder
// topology). The 64x64 lane transpose lives in netlist/bitops.h.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "netlist/compiled_netlist.h"
#include "netlist/netlist.h"

namespace oisa::netlist {

/// Word-parallel gate function: each bit position of a/b/c is an independent
/// evaluation lane. Mirrors evalGate() bit-for-bit in every lane.
[[nodiscard]] constexpr std::uint64_t evalGateWord(GateKind kind,
                                                   std::uint64_t a,
                                                   std::uint64_t b,
                                                   std::uint64_t c) noexcept {
  switch (kind) {
    case GateKind::Const0: return 0;
    case GateKind::Const1: return ~std::uint64_t{0};
    case GateKind::Buf: return a;
    case GateKind::Inv: return ~a;
    case GateKind::And2: return a & b;
    case GateKind::Or2: return a | b;
    case GateKind::Nand2: return ~(a & b);
    case GateKind::Nor2: return ~(a | b);
    case GateKind::Xor2: return a ^ b;
    case GateKind::Xnor2: return ~(a ^ b);
    case GateKind::And3: return a & b & c;
    case GateKind::Or3: return a | b | c;
    case GateKind::Aoi21: return ~((a & b) | c);
    case GateKind::Oai21: return ~((a | b) & c);
    case GateKind::Mux2: return (c & b) | (~c & a);
    case GateKind::Maj3: return (a & b) | (a & c) | (b & c);
  }
  return 0;
}

/// Reusable 64-lane evaluator over a compiled netlist.
///
/// Two layouts are supported:
///  * lane-major ("one word per net"): evaluate()/evaluateOutputs() take one
///    word per primary input whose bit L is pattern L's value of that input.
///    Works for any port count — this is the hot-path API.
///  * pattern-major ("one word per pattern"): evaluateWords() takes packed
///    words in the Evaluator::evaluateWord convention (bit i = primary
///    input i) and transposes internally. Requires <= 64 inputs/outputs.
class BatchEvaluator {
 public:
  /// Number of patterns evaluated per sweep.
  static constexpr std::size_t kLanes = 64;

  /// Compiles `nl` privately. Throws std::runtime_error on a cyclic
  /// netlist (functional evaluation needs a topological order).
  explicit BatchEvaluator(const Netlist& nl);

  /// Shares an existing compile (e.g. with a timed engine over the same
  /// design). Same cycle check as the Netlist constructor.
  explicit BatchEvaluator(std::shared_ptr<const CompiledNetlist> compiled);

  /// Evaluates 64 patterns at once. `inputWords` holds one word per primary
  /// input (declaration order); bit L of word i is pattern L's value of
  /// input i. Returns one word per net, indexed by NetId::value. For
  /// batches smaller than 64 the extra lanes simply compute whatever the
  /// unused input bits encode; callers mask them out.
  [[nodiscard]] std::vector<std::uint64_t> evaluate(
      std::span<const std::uint64_t> inputWords) const;

  /// Like evaluate() but writes into `values` (resized to netCount()),
  /// avoiding per-batch allocation in hot loops.
  void evaluateInto(std::span<const std::uint64_t> inputWords,
                    std::vector<std::uint64_t>& values) const;

  /// Evaluates 64 patterns and returns one word per primary output
  /// (declaration order); bit L of word o is pattern L's value of output o.
  [[nodiscard]] std::vector<std::uint64_t> evaluateOutputs(
      std::span<const std::uint64_t> inputWords) const;

  /// Pattern-major batch counterpart of Evaluator::evaluateWord: element p
  /// of `patterns` packs primary-input bits of pattern p (bit i drives
  /// input i); the result packs primary-output bits the same way. Accepts
  /// 1..64 patterns per call and requires <= 64 inputs / outputs.
  [[nodiscard]] std::vector<std::uint64_t> evaluateWords(
      std::span<const std::uint64_t> patterns) const;

  [[nodiscard]] const Netlist& netlist() const noexcept {
    return compiled_->source();
  }
  [[nodiscard]] const std::shared_ptr<const CompiledNetlist>& compiled()
      const noexcept {
    return compiled_;
  }

 private:
  std::shared_ptr<const CompiledNetlist> compiled_;
};

}  // namespace oisa::netlist
