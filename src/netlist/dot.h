// oisa_netlist: Graphviz DOT export for debugging and documentation.
#pragma once

#include <iosfwd>

#include "netlist/netlist.h"

namespace oisa::netlist {

/// Writes a Graphviz `digraph` of the netlist: primary inputs as boxes,
/// gates as ellipses labeled with their cell name, primary outputs as
/// double circles.
void writeDot(const Netlist& nl, std::ostream& os);

}  // namespace oisa::netlist
