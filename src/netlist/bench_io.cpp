#include "netlist/bench_io.h"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <istream>
#include <sstream>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "core/fault_inject.h"

namespace oisa::netlist {

namespace {

std::string trim(std::string_view text) {
  std::size_t begin = 0;
  while (begin < text.size() &&
         std::isspace(static_cast<unsigned char>(text[begin])) != 0) {
    ++begin;
  }
  std::size_t end = text.size();
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1])) != 0) {
    --end;
  }
  return std::string(text.substr(begin, end - begin));
}

std::string upper(std::string value) {
  std::transform(value.begin(), value.end(), value.begin(),
                 [](unsigned char c) { return static_cast<char>(std::toupper(c)); });
  return value;
}

[[noreturn]] void fail(std::size_t line, const std::string& message) {
  throw core::StatusError(core::Status::invalidInput(
      "readBench: line " + std::to_string(line) + ": " + message));
}

/// One `lhs = OP(args...)` statement, unresolved.
struct Definition {
  std::string op;                  // upper-cased cell name
  std::vector<std::string> args;   // input signal names
  std::size_t line = 0;
  bool building = false;           // cycle-detection mark
  NetId net{};                     // filled once built
  bool built = false;
};

/// Recursive-descent resolver: definitions may appear in any order, so a
/// signal is built on first use, with an in-progress mark catching
/// combinational cycles.
class BenchBuilder {
 public:
  explicit BenchBuilder(std::string topName) : nl_(std::move(topName)) {}

  void addInput(const std::string& name, std::size_t line) {
    if (defs_.count(name) != 0 || inputs_.count(name) != 0) {
      fail(line, "signal '" + name + "' defined twice");
    }
    inputs_.emplace(name, nl_.input(name));
  }

  void addOutput(const std::string& name, std::size_t line) {
    outputs_.emplace_back(name, line);
  }

  void addDefinition(const std::string& name, Definition def) {
    if (defs_.count(name) != 0 || inputs_.count(name) != 0) {
      fail(def.line, "signal '" + name + "' defined twice");
    }
    defOrder_.push_back(name);
    defs_.emplace(name, std::move(def));
  }

  Netlist finish() {
    // Resolve in declaration order (not unordered_map order), so the
    // same .bench text always builds the same NetId/gate numbering —
    // fault-universe indices, sampled fault subsets and report output
    // stay identical across platforms and standard libraries.
    for (const std::string& name : defOrder_) {
      resolve(name, defs_.find(name)->second.line);
    }
    for (const auto& [name, line] : outputs_) {
      nl_.output(name, resolve(name, line));
    }
    nl_.validate();
    return std::move(nl_);
  }

 private:
  /// Iterative depth-first resolution (deep circuits — e.g. generated
  /// inverter chains — must raise diagnostics, not overflow the call
  /// stack). A definition is marked `building` while any of its
  /// dependencies is on the explicit stack; meeting a building
  /// definition again is a combinational cycle.
  NetId resolve(const std::string& name, std::size_t fromLine) {
    if (const auto it = inputs_.find(name); it != inputs_.end()) {
      return it->second;
    }
    const auto root = defs_.find(name);
    if (root == defs_.end()) {
      fail(fromLine, "signal '" + name + "' is never defined");
    }
    if (root->second.built) return root->second.net;

    struct Frame {
      Definition* def;
      const std::string* name;
      std::size_t nextArg = 0;
    };
    std::vector<Frame> stack;
    root->second.building = true;
    stack.push_back(Frame{&root->second, &root->first});
    while (!stack.empty()) {
      Frame& frame = stack.back();
      Definition& def = *frame.def;
      if (frame.nextArg < def.args.size()) {
        const std::string& arg = def.args[frame.nextArg];
        ++frame.nextArg;
        if (inputs_.count(arg) != 0) continue;
        const auto it = defs_.find(arg);
        if (it == defs_.end()) {
          fail(def.line, "signal '" + arg + "' is never defined");
        }
        Definition& dep = it->second;
        if (dep.built) continue;
        if (dep.building) {
          fail(dep.line, "combinational cycle through '" + arg + "'");
        }
        dep.building = true;
        stack.push_back(Frame{&dep, &it->first});
        continue;
      }
      std::vector<NetId> ins;
      ins.reserve(def.args.size());
      for (const std::string& arg : def.args) {
        if (const auto it = inputs_.find(arg); it != inputs_.end()) {
          ins.push_back(it->second);
        } else {
          ins.push_back(defs_.find(arg)->second.net);
        }
      }
      def.net = build(*frame.name, def, ins);
      def.built = true;
      def.building = false;
      stack.pop_back();
    }
    return root->second.net;
  }

  /// Reduces `ins` with 2/3-input `kind` gates; intermediates are named
  /// off the target signal.
  NetId reduce(GateKind kind2, GateKind kind3, std::span<const NetId> ins,
               const std::string& name) {
    if (ins.size() == 1) return ins[0];
    if (ins.size() == 3) return nl_.gate3(kind3, ins[0], ins[1], ins[2], name);
    NetId acc = ins[0];
    for (std::size_t i = 1; i < ins.size(); ++i) {
      const bool last = i + 1 == ins.size();
      acc = nl_.gate2(kind2, acc, ins[i],
                      last ? name : name + "$r" + std::to_string(i));
    }
    return acc;
  }

  NetId build(const std::string& name, const Definition& def,
              std::span<const NetId> ins) {
    const std::string& op = def.op;
    const std::size_t line = def.line;
    if (ins.empty()) fail(line, op + " needs at least one input");
    const auto requireOne = [&] {
      if (ins.size() != 1) fail(line, op + " takes exactly one input");
    };
    if (op == "NOT") {
      requireOne();
      return nl_.gate1(GateKind::Inv, ins[0], name);
    }
    if (op == "BUF" || op == "BUFF") {
      requireOne();
      return nl_.gate1(GateKind::Buf, ins[0], name);
    }
    if (op == "AND") {
      if (ins.size() == 1) return nl_.gate1(GateKind::Buf, ins[0], name);
      return reduce(GateKind::And2, GateKind::And3, ins, name);
    }
    if (op == "OR") {
      if (ins.size() == 1) return nl_.gate1(GateKind::Buf, ins[0], name);
      return reduce(GateKind::Or2, GateKind::Or3, ins, name);
    }
    if (op == "XOR") {
      if (ins.size() == 1) return nl_.gate1(GateKind::Buf, ins[0], name);
      if (ins.size() == 2) return nl_.gate2(GateKind::Xor2, ins[0], ins[1], name);
      NetId acc = ins[0];
      for (std::size_t i = 1; i < ins.size(); ++i) {
        const bool last = i + 1 == ins.size();
        acc = nl_.gate2(GateKind::Xor2, acc, ins[i],
                        last ? name : name + "$r" + std::to_string(i));
      }
      return acc;
    }
    if (op == "NAND") {
      if (ins.size() == 2) return nl_.gate2(GateKind::Nand2, ins[0], ins[1], name);
      const NetId all = reduce(GateKind::And2, GateKind::And3, ins, name + "$and");
      return nl_.gate1(GateKind::Inv, all, name);
    }
    if (op == "NOR") {
      if (ins.size() == 2) return nl_.gate2(GateKind::Nor2, ins[0], ins[1], name);
      const NetId any = reduce(GateKind::Or2, GateKind::Or3, ins, name + "$or");
      return nl_.gate1(GateKind::Inv, any, name);
    }
    if (op == "XNOR") {
      if (ins.size() == 2) return nl_.gate2(GateKind::Xnor2, ins[0], ins[1], name);
      NetId acc = ins[0];
      for (std::size_t i = 1; i < ins.size(); ++i) {
        acc = nl_.gate2(GateKind::Xor2, acc, ins[i], name + "$r" + std::to_string(i));
      }
      return nl_.gate1(GateKind::Inv, acc, name);
    }
    if (op == "DFF" || op == "DFFSR" || op == "LATCH") {
      fail(line, op + " is sequential; readBench imports combinational "
                      "circuits only");
    }
    fail(line, "unsupported cell '" + op + "'");
  }

  Netlist nl_;
  std::unordered_map<std::string, NetId> inputs_;
  std::unordered_map<std::string, Definition> defs_;
  std::vector<std::string> defOrder_;  ///< declaration order of defs_
  std::vector<std::pair<std::string, std::size_t>> outputs_;
};

/// Extracts `NAME(payload)` from a statement tail; returns false when the
/// parentheses are malformed.
bool parseCall(const std::string& text, std::string& name,
               std::string& payload) {
  const std::size_t open = text.find('(');
  const std::size_t close = text.rfind(')');
  if (open == std::string::npos || close == std::string::npos ||
      close < open) {
    return false;
  }
  name = upper(trim(text.substr(0, open)));
  payload = trim(text.substr(open + 1, close - open - 1));
  return true;
}

std::vector<std::string> splitArgs(const std::string& payload,
                                   std::size_t line) {
  std::vector<std::string> args;
  std::stringstream ss(payload);
  std::string token;
  while (std::getline(ss, token, ',')) {
    token = trim(token);
    if (token.empty()) fail(line, "empty argument");
    args.push_back(std::move(token));
  }
  return args;
}

}  // namespace

Netlist readBench(std::istream& in, std::string topName) {
  BenchBuilder builder(std::move(topName));
  std::string line;
  std::size_t lineNo = 0;
  while (std::getline(in, line)) {
    ++lineNo;
    if (const std::size_t hash = line.find('#'); hash != std::string::npos) {
      line.resize(hash);
    }
    line = trim(line);
    if (line.empty()) continue;

    const std::size_t eq = line.find('=');
    std::string callName;
    std::string payload;
    if (eq == std::string::npos) {
      // Port declaration: INPUT(x) / OUTPUT(x).
      if (!parseCall(line, callName, payload) || payload.empty()) {
        fail(lineNo, "expected INPUT(...), OUTPUT(...) or an assignment");
      }
      if (callName == "INPUT") {
        builder.addInput(payload, lineNo);
      } else if (callName == "OUTPUT") {
        builder.addOutput(payload, lineNo);
      } else {
        fail(lineNo, "unknown declaration '" + callName + "'");
      }
      continue;
    }

    const std::string lhs = trim(line.substr(0, eq));
    if (lhs.empty()) fail(lineNo, "missing signal name before '='");
    if (!parseCall(line.substr(eq + 1), callName, payload) ||
        payload.empty()) {
      fail(lineNo, "expected '" + lhs + " = CELL(args...)'");
    }
    Definition def;
    def.op = callName;
    def.args = splitArgs(payload, lineNo);
    if (def.args.size() > kMaxGateArity) {
      fail(lineNo, "gate '" + lhs + "' has absurd fan-in " +
                       std::to_string(def.args.size()) + " (limit " +
                       std::to_string(kMaxGateArity) + ")");
    }
    def.line = lineNo;
    builder.addDefinition(lhs, std::move(def));
  }
  return builder.finish();
}

Netlist readBenchString(std::string_view text, std::string topName) {
  std::istringstream in{std::string(text)};
  return readBench(in, std::move(topName));
}

Netlist readBenchFile(const std::string& path) {
  core::fault_inject::maybeThrow(core::fault_inject::kFileOpen,
                                 core::StatusCode::IoError);
  std::ifstream in(path);
  if (!in) {
    throw core::StatusError(
        core::Status::ioError("readBenchFile: cannot open " + path));
  }
  return readBench(in, path);
}

core::StatusOr<Netlist> readBenchStatus(std::istream& in,
                                        std::string topName) {
  try {
    return readBench(in, std::move(topName));
  } catch (const core::StatusError& e) {
    return e.status();
  } catch (const std::exception& e) {
    // Netlist::validate and the builder throw plain exceptions for
    // structural violations; on this boundary they are still a property
    // of the input text.
    return core::Status::invalidInput(std::string("readBench: ") + e.what());
  }
}

core::StatusOr<Netlist> readBenchStringStatus(std::string_view text,
                                              std::string topName) {
  std::istringstream in{std::string(text)};
  return readBenchStatus(in, std::move(topName));
}

core::StatusOr<Netlist> readBenchFileStatus(const std::string& path) {
  try {
    return readBenchFile(path);
  } catch (const core::StatusError& e) {
    return e.status();
  } catch (const std::exception& e) {
    return core::Status::invalidInput(std::string("readBench: ") + e.what());
  }
}

}  // namespace oisa::netlist
