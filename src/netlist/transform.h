// oisa_netlist: synthesis-style cleanup transforms.
//
// `sweep` performs constant propagation, buffer/alias collapsing and
// dead-gate elimination, producing a fresh netlist that computes the same
// primary-output functions (checked by the equivalence tests). Circuit
// generators emit structural constants (e.g. a constant-0 speculated carry)
// that a synthesis tool would fold; this pass is that fold.
#pragma once

#include <cstddef>

#include "netlist/netlist.h"

namespace oisa::netlist {

/// Result of a sweep: the optimized netlist plus reduction statistics.
struct SweepResult {
  Netlist netlist;
  std::size_t foldedGates = 0;   ///< gates removed by constant folding/aliasing
  std::size_t deadGates = 0;     ///< gates removed as unreachable from outputs
  std::size_t originalGates = 0;
};

/// Constant propagation + alias collapsing + dead-gate elimination.
/// Primary inputs and outputs (names and order) are preserved exactly.
[[nodiscard]] SweepResult sweep(const Netlist& nl);

}  // namespace oisa::netlist
