#include "netlist/transform.h"

#include <optional>
#include <vector>

namespace oisa::netlist {

namespace {

/// Folded value of an old net in the new netlist: a constant or a signal.
struct Folded {
  std::optional<bool> constant;
  NetId signal{};  ///< valid iff !constant
};

/// Forward constant-propagation / alias-collapsing rebuild.
/// Returns the folded netlist; `emitted` counts gates actually created.
Netlist foldConstants(const Netlist& nl, std::size_t& emitted) {
  Netlist out(nl.name());
  std::vector<Folded> value(nl.netCount());
  for (NetId pi : nl.primaryInputs()) {
    value[pi.value] = Folded{std::nullopt, out.input(nl.net(pi).name)};
  }

  auto signalOf = [&](const Folded& f) -> NetId {
    return f.constant ? out.constant(*f.constant) : f.signal;
  };
  auto emit1 = [&](GateKind kind, const Folded& a) {
    ++emitted;
    return Folded{std::nullopt, out.gate1(kind, signalOf(a))};
  };
  auto emit2 = [&](GateKind kind, const Folded& a, const Folded& b) {
    ++emitted;
    return Folded{std::nullopt, out.gate2(kind, signalOf(a), signalOf(b))};
  };
  auto emit3 = [&](GateKind kind, const Folded& a, const Folded& b,
                   const Folded& c) {
    ++emitted;
    return Folded{std::nullopt,
                  out.gate3(kind, signalOf(a), signalOf(b), signalOf(c))};
  };
  auto constant = [](bool v) { return Folded{v, NetId{}}; };
  auto isConst = [](const Folded& f, bool v) {
    return f.constant && *f.constant == v;
  };

  for (GateId gid : nl.topologicalOrder()) {
    const Gate& g = nl.gateAt(gid);
    const auto ins = g.inputs();
    // Resolve inputs (primary inputs and earlier gates are already folded).
    Folded a = !ins.empty() ? value[ins[0].value] : Folded{};
    Folded b = ins.size() > 1 ? value[ins[1].value] : Folded{};
    Folded c = ins.size() > 2 ? value[ins[2].value] : Folded{};

    // Fully-constant cone: fold to a constant.
    const bool allConst = (ins.empty() || a.constant) &&
                          (ins.size() < 2 || b.constant) &&
                          (ins.size() < 3 || c.constant);
    Folded result;
    if (allConst) {
      result = constant(evalGate(g.kind, a.constant.value_or(false),
                                 b.constant.value_or(false),
                                 c.constant.value_or(false)));
    } else {
      switch (g.kind) {
        case GateKind::Const0: result = constant(false); break;
        case GateKind::Const1: result = constant(true); break;
        case GateKind::Buf: result = a; break;
        case GateKind::Inv: result = emit1(GateKind::Inv, a); break;
        case GateKind::And2:
          if (isConst(a, false) || isConst(b, false)) result = constant(false);
          else if (isConst(a, true)) result = b;
          else if (isConst(b, true)) result = a;
          else result = emit2(GateKind::And2, a, b);
          break;
        case GateKind::Or2:
          if (isConst(a, true) || isConst(b, true)) result = constant(true);
          else if (isConst(a, false)) result = b;
          else if (isConst(b, false)) result = a;
          else result = emit2(GateKind::Or2, a, b);
          break;
        case GateKind::Nand2:
          if (isConst(a, false) || isConst(b, false)) result = constant(true);
          else if (isConst(a, true)) result = emit1(GateKind::Inv, b);
          else if (isConst(b, true)) result = emit1(GateKind::Inv, a);
          else result = emit2(GateKind::Nand2, a, b);
          break;
        case GateKind::Nor2:
          if (isConst(a, true) || isConst(b, true)) result = constant(false);
          else if (isConst(a, false)) result = emit1(GateKind::Inv, b);
          else if (isConst(b, false)) result = emit1(GateKind::Inv, a);
          else result = emit2(GateKind::Nor2, a, b);
          break;
        case GateKind::Xor2:
          if (isConst(a, false)) result = b;
          else if (isConst(b, false)) result = a;
          else if (isConst(a, true)) result = emit1(GateKind::Inv, b);
          else if (isConst(b, true)) result = emit1(GateKind::Inv, a);
          else result = emit2(GateKind::Xor2, a, b);
          break;
        case GateKind::Xnor2:
          if (isConst(a, true)) result = b;
          else if (isConst(b, true)) result = a;
          else if (isConst(a, false)) result = emit1(GateKind::Inv, b);
          else if (isConst(b, false)) result = emit1(GateKind::Inv, a);
          else result = emit2(GateKind::Xnor2, a, b);
          break;
        case GateKind::And3:
          if (isConst(a, false) || isConst(b, false) || isConst(c, false)) {
            result = constant(false);
          } else if (isConst(a, true) && isConst(b, true)) result = c;
          else if (isConst(a, true) && isConst(c, true)) result = b;
          else if (isConst(b, true) && isConst(c, true)) result = a;
          else if (isConst(a, true)) result = emit2(GateKind::And2, b, c);
          else if (isConst(b, true)) result = emit2(GateKind::And2, a, c);
          else if (isConst(c, true)) result = emit2(GateKind::And2, a, b);
          else result = emit3(GateKind::And3, a, b, c);
          break;
        case GateKind::Or3:
          if (isConst(a, true) || isConst(b, true) || isConst(c, true)) {
            result = constant(true);
          } else if (isConst(a, false) && isConst(b, false)) result = c;
          else if (isConst(a, false) && isConst(c, false)) result = b;
          else if (isConst(b, false) && isConst(c, false)) result = a;
          else if (isConst(a, false)) result = emit2(GateKind::Or2, b, c);
          else if (isConst(b, false)) result = emit2(GateKind::Or2, a, c);
          else if (isConst(c, false)) result = emit2(GateKind::Or2, a, b);
          else result = emit3(GateKind::Or3, a, b, c);
          break;
        case GateKind::Aoi21:  // !((a & b) | c)
          if (isConst(c, true)) result = constant(false);
          else if (isConst(a, false) || isConst(b, false)) {
            result = isConst(c, false) ? constant(true)
                                       : emit1(GateKind::Inv, c);
          } else if (isConst(c, false)) {
            result = emit2(GateKind::Nand2, a, b);
          } else if (isConst(a, true)) {
            result = emit2(GateKind::Nor2, b, c);
          } else if (isConst(b, true)) {
            result = emit2(GateKind::Nor2, a, c);
          } else {
            result = emit3(GateKind::Aoi21, a, b, c);
          }
          break;
        case GateKind::Oai21:  // !((a | b) & c)
          if (isConst(c, false)) result = constant(true);
          else if (isConst(a, true) || isConst(b, true)) {
            result = isConst(c, true) ? constant(false)
                                      : emit1(GateKind::Inv, c);
          } else if (isConst(c, true)) {
            result = emit2(GateKind::Nor2, a, b);
          } else if (isConst(a, false)) {
            result = emit2(GateKind::Nand2, b, c);
          } else if (isConst(b, false)) {
            result = emit2(GateKind::Nand2, a, c);
          } else {
            result = emit3(GateKind::Oai21, a, b, c);
          }
          break;
        case GateKind::Mux2:  // y = s ? b : a, inputs (a, b, s=c)
          if (isConst(c, false)) result = a;
          else if (isConst(c, true)) result = b;
          else if (!a.constant && !b.constant && a.signal == b.signal) {
            result = a;
          } else if (isConst(a, false) && isConst(b, true)) {
            result = c;  // mux degenerates to the select itself
          } else if (isConst(a, true) && isConst(b, false)) {
            result = emit1(GateKind::Inv, c);
          } else {
            result = emit3(GateKind::Mux2, a, b, c);
          }
          break;
        case GateKind::Maj3:
          if (isConst(a, false)) result = emit2(GateKind::And2, b, c);
          else if (isConst(b, false)) result = emit2(GateKind::And2, a, c);
          else if (isConst(c, false)) result = emit2(GateKind::And2, a, b);
          else if (isConst(a, true)) result = emit2(GateKind::Or2, b, c);
          else if (isConst(b, true)) result = emit2(GateKind::Or2, a, c);
          else if (isConst(c, true)) result = emit2(GateKind::Or2, a, b);
          else result = emit3(GateKind::Maj3, a, b, c);
          break;
      }
    }
    value[g.out.value] = result;
  }

  for (std::size_t i = 0; i < nl.primaryOutputs().size(); ++i) {
    const Folded& f = value[nl.primaryOutputs()[i].value];
    out.output(nl.outputName(i), signalOf(f));
  }
  return out;
}

/// Removes gates not in the input cone of any primary output.
Netlist stripDead(const Netlist& nl, std::size_t& kept) {
  std::vector<bool> liveNet(nl.netCount(), false);
  std::vector<NetId> stack(nl.primaryOutputs().begin(),
                           nl.primaryOutputs().end());
  while (!stack.empty()) {
    const NetId net = stack.back();
    stack.pop_back();
    if (liveNet[net.value]) continue;
    liveNet[net.value] = true;
    const Net& n = nl.net(net);
    if (n.driver == DriverKind::Gate) {
      for (NetId in : nl.gateAt(n.driverGate).inputs()) {
        if (!liveNet[in.value]) stack.push_back(in);
      }
    }
  }

  Netlist out(nl.name());
  std::vector<NetId> remap(nl.netCount(), NetId{});
  for (NetId pi : nl.primaryInputs()) {
    remap[pi.value] = out.input(nl.net(pi).name);
  }
  kept = 0;
  for (GateId gid : nl.topologicalOrder()) {
    const Gate& g = nl.gateAt(gid);
    if (!liveNet[g.out.value]) continue;
    std::vector<NetId> ins;
    for (NetId in : g.inputs()) ins.push_back(remap[in.value]);
    remap[g.out.value] = out.gate(g.kind, ins, nl.net(g.out).name);
    ++kept;
  }
  for (std::size_t i = 0; i < nl.primaryOutputs().size(); ++i) {
    out.output(nl.outputName(i), remap[nl.primaryOutputs()[i].value]);
  }
  return out;
}

}  // namespace

SweepResult sweep(const Netlist& nl) {
  std::size_t folded = 0;
  Netlist afterFold = foldConstants(nl, folded);
  std::size_t kept = 0;
  Netlist stripped = stripDead(afterFold, kept);
  SweepResult result{std::move(stripped), 0, 0, nl.gateCount()};
  result.foldedGates = nl.gateCount() - folded;
  result.deadGates = afterFold.gateCount() - kept;
  return result;
}

}  // namespace oisa::netlist
