// oisa_netlist: structural Verilog export.
//
// Writes a synthesizable gate-level Verilog module using primitive
// continuous assignments, so generated designs can be taken to external
// EDA tools (simulation, synthesis, LEC) unchanged.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>

#include "core/status.h"
#include "netlist/netlist.h"

namespace oisa::netlist {

/// Writes `nl` as a structural Verilog-2001 module named after the
/// netlist (sanitized to an identifier).
void writeVerilog(const Netlist& nl, std::ostream& os);

/// Sanitizes an arbitrary name into a Verilog identifier (used for the
/// module name and all nets; exposed for tests).
[[nodiscard]] std::string verilogIdentifier(const std::string& name);

/// Parses the structural subset writeVerilog emits — one module of
/// `input wire` / `output wire` scalar ports, `wire` declarations and
/// `assign` statements over `~ & | ^ ?:` expressions and 1'b0/1'b1
/// literals — back into a Netlist. Gate decomposition is structural
/// (`~(a & b)` becomes Inv(And2), not Nand2), so round-trips are checked
/// with functional equivalence, not gate-count identity.
///
/// Every malformed input returns StatusCode::InvalidInput with a
/// line-numbered diagnostic: unterminated statements, duplicate net
/// definitions, nets assigned twice, self-referential (cyclic) assigns,
/// undefined nets, unsupported syntax, binary garbage. File variants
/// return IoError when the file cannot be opened.
[[nodiscard]] core::StatusOr<Netlist> readVerilog(std::istream& in);
[[nodiscard]] core::StatusOr<Netlist> readVerilogString(std::string_view text);
[[nodiscard]] core::StatusOr<Netlist> readVerilogFile(const std::string& path);

}  // namespace oisa::netlist
