// oisa_netlist: structural Verilog export.
//
// Writes a synthesizable gate-level Verilog module using primitive
// continuous assignments, so generated designs can be taken to external
// EDA tools (simulation, synthesis, LEC) unchanged.
#pragma once

#include <iosfwd>

#include "netlist/netlist.h"

namespace oisa::netlist {

/// Writes `nl` as a structural Verilog-2001 module named after the
/// netlist (sanitized to an identifier).
void writeVerilog(const Netlist& nl, std::ostream& os);

/// Sanitizes an arbitrary name into a Verilog identifier (used for the
/// module name and all nets; exposed for tests).
[[nodiscard]] std::string verilogIdentifier(const std::string& name);

}  // namespace oisa::netlist
