#include "netlist/lane_width.h"

#include <cstdlib>
#include <stdexcept>

#include "netlist/lane_width_impl.h"

namespace oisa::netlist {

std::string laneSelectionName(LaneSelection sel) {
  std::string name = std::to_string(sel.width);
  switch (sel.arch) {
    case LaneArch::Portable:
      if (sel.width > 64) name += "-portable";
      break;
    case LaneArch::Avx2: name += "-avx2"; break;
    case LaneArch::Avx512: name += "-avx512"; break;
  }
  return name;
}

bool cpuSupportsLaneArch(LaneArch arch) {
  switch (arch) {
    case LaneArch::Portable: return true;
    case LaneArch::Avx2:
#if defined(OISA_HAVE_AVX2) && (defined(__x86_64__) || defined(__i386__))
      return __builtin_cpu_supports("avx2") != 0;
#else
      return false;
#endif
    case LaneArch::Avx512:
#if defined(OISA_HAVE_AVX512) && (defined(__x86_64__) || defined(__i386__))
      return __builtin_cpu_supports("avx512f") != 0;
#else
      return false;
#endif
  }
  return false;
}

std::vector<LaneSelection> availableLaneSelections() {
  std::vector<LaneSelection> out;
  out.push_back({64, LaneArch::Portable});
  out.push_back({256, LaneArch::Portable});
  if (cpuSupportsLaneArch(LaneArch::Avx2)) {
    out.push_back({256, LaneArch::Avx2});
  }
  out.push_back({512, LaneArch::Portable});
  if (cpuSupportsLaneArch(LaneArch::Avx512)) {
    out.push_back({512, LaneArch::Avx512});
  }
  return out;
}

LaneSelection defaultLaneSelection() {
  if (cpuSupportsLaneArch(LaneArch::Avx512)) return {512, LaneArch::Avx512};
  if (cpuSupportsLaneArch(LaneArch::Avx2)) return {256, LaneArch::Avx2};
  return {64, LaneArch::Portable};
}

LaneSelection parseLaneWidthSpec(std::string_view spec) {
  if (spec == "64") return {64, LaneArch::Portable};
  if (spec == "256") {
    return cpuSupportsLaneArch(LaneArch::Avx2)
               ? LaneSelection{256, LaneArch::Avx2}
               : LaneSelection{256, LaneArch::Portable};
  }
  if (spec == "512") {
    return cpuSupportsLaneArch(LaneArch::Avx512)
               ? LaneSelection{512, LaneArch::Avx512}
               : LaneSelection{512, LaneArch::Portable};
  }
  if (spec == "portable" || spec == "portable256") {
    return {256, LaneArch::Portable};
  }
  if (spec == "portable512") return {512, LaneArch::Portable};
  throw std::invalid_argument(
      std::string(kLaneWidthEnvVar) + ": unknown lane width spec \"" +
      std::string(spec) +
      "\" (expected 64, 256, 512, portable, portable256 or portable512)");
}

LaneSelection selectLaneWidth() {
  if (const char* spec = std::getenv(kLaneWidthEnvVar);
      spec != nullptr && spec[0] != '\0') {
    return parseLaneWidthSpec(spec);
  }
  return defaultLaneSelection();
}

std::unique_ptr<AnyBatchEvaluator> makeBatchEvaluator(
    std::shared_ptr<const CompiledNetlist> compiled) {
  return makeBatchEvaluator(std::move(compiled), selectLaneWidth());
}

std::unique_ptr<AnyBatchEvaluator> makeBatchEvaluator(
    std::shared_ptr<const CompiledNetlist> compiled, LaneSelection sel) {
  if (sel.arch != LaneArch::Portable && !cpuSupportsLaneArch(sel.arch)) {
    throw std::invalid_argument("makeBatchEvaluator: variant " +
                                laneSelectionName(sel) +
                                " is not runnable on this build/CPU");
  }
  switch (sel.arch) {
    case LaneArch::Avx2:
#if defined(OISA_HAVE_AVX2)
      return detail::makeBatchEvaluatorAvx2(std::move(compiled));
#else
      break;
#endif
    case LaneArch::Avx512:
#if defined(OISA_HAVE_AVX512)
      return detail::makeBatchEvaluatorAvx512(std::move(compiled));
#else
      break;
#endif
    case LaneArch::Portable:
      switch (sel.width) {
        case 64:
          return std::make_unique<
              detail::BatchEvaluatorAdapter<LaneBlock<64>>>(
              std::move(compiled));
        case 256:
          return std::make_unique<
              detail::BatchEvaluatorAdapter<LaneBlock<256>>>(
              std::move(compiled));
        case 512:
          return std::make_unique<
              detail::BatchEvaluatorAdapter<LaneBlock<512>>>(
              std::move(compiled));
        default: break;
      }
      break;
  }
  throw std::invalid_argument("makeBatchEvaluator: unsupported variant " +
                              laneSelectionName(sel));
}

}  // namespace oisa::netlist
