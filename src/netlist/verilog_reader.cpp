// oisa_netlist: structural Verilog importer — the inverse of
// writeVerilog, closing the export/import round-trip so externally
// edited or tool-processed modules can come back into the repo's IR.
//
// The accepted grammar is the writer's output subset:
//
//   module NAME ( input wire a, ..., output wire y, ... );
//     wire n1;             // one or more, comma lists allowed
//     assign n1 = expr;    // ~ & | ^ ?: over nets and 1'b0 / 1'b1
//     assign y = n1;
//   endmodule
//
// with `//` line and `/* */` block comments. Assignments may appear in
// any order (resolution is demand-driven with cycle detection, like the
// .bench importer). Everything outside the subset is a line-numbered
// InvalidInput Status — this parser is a robustness boundary, so it
// must diagnose, never crash, on arbitrary bytes.
#include "netlist/verilog.h"

#include <cctype>
#include <fstream>
#include <istream>
#include <memory>
#include <sstream>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/fault_inject.h"

namespace oisa::netlist {

namespace {

using core::Status;
using core::StatusError;

[[noreturn]] void fail(std::size_t line, const std::string& message) {
  throw StatusError(Status::invalidInput(
      "readVerilog: line " + std::to_string(line) + ": " + message));
}

// --- tokenizer --------------------------------------------------------

struct Token {
  enum Kind { Ident, Literal, Punct, End } kind = End;
  std::string text;      // identifier name, or literal/punct spelling
  bool literalValue = false;
  std::size_t line = 0;
};

class Lexer {
 public:
  explicit Lexer(std::string_view text) : text_(text) {}

  Token next() {
    skipSpaceAndComments();
    Token tok;
    tok.line = line_;
    if (pos_ >= text_.size()) return tok;  // End
    const char c = text_[pos_];
    if (std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_' ||
        c == '$') {
      tok.kind = Token::Ident;
      while (pos_ < text_.size() && isIdentChar(text_[pos_])) {
        tok.text += text_[pos_++];
      }
      return tok;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
      // Only the two single-bit literals exist in the subset.
      if (text_.substr(pos_, 4) == "1'b0" || text_.substr(pos_, 4) == "1'B0") {
        tok.kind = Token::Literal;
        tok.literalValue = false;
        pos_ += 4;
        return tok;
      }
      if (text_.substr(pos_, 4) == "1'b1" || text_.substr(pos_, 4) == "1'B1") {
        tok.kind = Token::Literal;
        tok.literalValue = true;
        pos_ += 4;
        return tok;
      }
      fail(line_, "unsupported numeric literal (only 1'b0 / 1'b1)");
    }
    switch (c) {
      case '(': case ')': case ';': case ',': case '=':
      case '~': case '&': case '|': case '^': case '?': case ':':
        tok.kind = Token::Punct;
        tok.text = c;
        ++pos_;
        return tok;
      default:
        break;
    }
    fail(line_, std::string("unexpected character '") +
                    (std::isprint(static_cast<unsigned char>(c)) != 0
                         ? std::string(1, c)
                         : "\\x" + toHex(c)) +
                    "'");
  }

 private:
  static bool isIdentChar(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_' ||
           c == '$';
  }

  static std::string toHex(char c) {
    static const char* digits = "0123456789abcdef";
    const auto u = static_cast<unsigned char>(c);
    return {digits[u >> 4], digits[u & 0xF]};
  }

  void skipSpaceAndComments() {
    for (;;) {
      while (pos_ < text_.size() &&
             std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
        if (text_[pos_] == '\n') ++line_;
        ++pos_;
      }
      if (text_.substr(pos_, 2) == "//") {
        while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
        continue;
      }
      if (text_.substr(pos_, 2) == "/*") {
        const std::size_t open = line_;
        pos_ += 2;
        while (pos_ < text_.size() && text_.substr(pos_, 2) != "*/") {
          if (text_[pos_] == '\n') ++line_;
          ++pos_;
        }
        if (pos_ >= text_.size()) fail(open, "unterminated block comment");
        pos_ += 2;
        continue;
      }
      return;
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::size_t line_ = 1;
};

// --- expression AST ---------------------------------------------------

struct Expr {
  enum Kind { Ref, Const, Not, And, Or, Xor, Mux } kind = Ref;
  std::string name;       // Ref
  bool value = false;     // Const
  std::size_t line = 0;
  std::unique_ptr<Expr> a, b, c;  // operands; Mux: a=cond, b=then, c=else
};

using ExprPtr = std::unique_ptr<Expr>;

ExprPtr makeExpr(Expr::Kind kind, std::size_t line) {
  auto e = std::make_unique<Expr>();
  e->kind = kind;
  e->line = line;
  return e;
}

// --- parser -----------------------------------------------------------

/// One `assign lhs = expr;`, unresolved.
struct Assign {
  ExprPtr expr;
  std::size_t line = 0;
  bool building = false;  // cycle-detection mark
  bool built = false;
  NetId net{};
};

class Parser {
 public:
  explicit Parser(std::string_view text) : lexer_(text) { advance(); }

  Netlist parse() {
    expectKeyword("module");
    const Token name = expectIdent("module name");
    Netlist nl(name.text);
    expectPunct("(");
    parsePortList(nl);
    expectPunct(")");
    expectPunct(";");
    for (;;) {
      if (tok_.kind == Token::End) {
        fail(tok_.line, "unterminated module (missing 'endmodule')");
      }
      if (isKeyword("endmodule")) {
        advance();
        break;
      }
      if (isKeyword("wire")) {
        advance();
        parseWireDecl();
        continue;
      }
      if (isKeyword("assign")) {
        advance();
        parseAssign();
        continue;
      }
      fail(tok_.line, "expected 'wire', 'assign' or 'endmodule', got " +
                          describe(tok_));
    }
    if (tok_.kind != Token::End) {
      fail(tok_.line, "trailing tokens after 'endmodule'");
    }
    return finish(std::move(nl));
  }

 private:
  // -- token plumbing --
  void advance() { tok_ = lexer_.next(); }

  bool isKeyword(std::string_view kw) const {
    return tok_.kind == Token::Ident && tok_.text == kw;
  }

  void expectKeyword(const std::string& kw) {
    if (!isKeyword(kw)) {
      fail(tok_.line, "expected '" + kw + "', got " + describe(tok_));
    }
    advance();
  }

  Token expectIdent(const std::string& what) {
    if (tok_.kind != Token::Ident) {
      fail(tok_.line, "expected " + what + ", got " + describe(tok_));
    }
    Token t = tok_;
    advance();
    return t;
  }

  void expectPunct(const std::string& p) {
    if (tok_.kind != Token::Punct || tok_.text != p) {
      fail(tok_.line, "expected '" + p + "', got " + describe(tok_));
    }
    advance();
  }

  bool acceptPunct(const std::string& p) {
    if (tok_.kind == Token::Punct && tok_.text == p) {
      advance();
      return true;
    }
    return false;
  }

  static std::string describe(const Token& t) {
    switch (t.kind) {
      case Token::Ident: return "'" + t.text + "'";
      case Token::Literal: return t.literalValue ? "'1'b1'" : "'1'b0'";
      case Token::Punct: return "'" + t.text + "'";
      case Token::End: return "end of input";
    }
    return "?";
  }

  // -- declarations --
  void parsePortList(Netlist& nl) {
    bool isInput = false;
    bool haveDirection = false;
    while (tok_.kind == Token::Ident) {
      if (isKeyword("input") || isKeyword("output")) {
        isInput = isKeyword("input");
        haveDirection = true;
        advance();
        if (isKeyword("wire")) advance();
      } else if (!haveDirection) {
        fail(tok_.line, "port '" + tok_.text +
                            "' needs an input/output direction");
      }
      const Token port = expectIdent("port name");
      declareName(port.text, port.line);
      if (isInput) {
        inputs_.emplace(port.text, nl.input(port.text));
      } else {
        outputs_.emplace_back(port.text, port.line);
      }
      if (!acceptPunct(",")) break;
    }
  }

  void parseWireDecl() {
    for (;;) {
      const Token wire = expectIdent("wire name");
      declareName(wire.text, wire.line);
      wires_.insert(wire.text);
      if (acceptPunct(",")) continue;
      expectPunct(";");
      return;
    }
  }

  void parseAssign() {
    const Token lhs = expectIdent("assignment target");
    if (inputs_.count(lhs.text) != 0) {
      fail(lhs.line, "cannot assign to input port '" + lhs.text + "'");
    }
    if (declared_.count(lhs.text) == 0) {
      fail(lhs.line, "assignment to undeclared net '" + lhs.text + "'");
    }
    if (assigns_.count(lhs.text) != 0) {
      fail(lhs.line, "net '" + lhs.text + "' assigned twice");
    }
    expectPunct("=");
    Assign assign;
    assign.expr = parseTernary();
    assign.line = lhs.line;
    expectPunct(";");
    assignOrder_.push_back(lhs.text);
    assigns_.emplace(lhs.text, std::move(assign));
  }

  void declareName(const std::string& name, std::size_t line) {
    if (!declared_.insert(name).second) {
      fail(line, "net '" + name + "' declared twice");
    }
  }

  // -- expressions (precedence: ?: < | < ^ < & < ~ < primary) --
  ExprPtr parseTernary() {
    ExprPtr cond = parseOr();
    if (!acceptPunct("?")) return cond;
    auto e = makeExpr(Expr::Mux, cond->line);
    e->a = std::move(cond);
    e->b = parseTernary();
    expectPunct(":");
    e->c = parseTernary();
    return e;
  }

  ExprPtr parseOr() {
    ExprPtr left = parseXor();
    while (acceptPunct("|")) {
      auto e = makeExpr(Expr::Or, left->line);
      e->a = std::move(left);
      e->b = parseXor();
      left = std::move(e);
    }
    return left;
  }

  ExprPtr parseXor() {
    ExprPtr left = parseAnd();
    while (acceptPunct("^")) {
      auto e = makeExpr(Expr::Xor, left->line);
      e->a = std::move(left);
      e->b = parseAnd();
      left = std::move(e);
    }
    return left;
  }

  ExprPtr parseAnd() {
    ExprPtr left = parseUnary();
    while (acceptPunct("&")) {
      auto e = makeExpr(Expr::And, left->line);
      e->a = std::move(left);
      e->b = parseUnary();
      left = std::move(e);
    }
    return left;
  }

  ExprPtr parseUnary() {
    if (acceptPunct("~")) {
      auto e = makeExpr(Expr::Not, tok_.line);
      e->a = parseUnary();
      return e;
    }
    return parsePrimary();
  }

  ExprPtr parsePrimary() {
    if (acceptPunct("(")) {
      ExprPtr inner = parseTernary();
      expectPunct(")");
      return inner;
    }
    if (tok_.kind == Token::Literal) {
      auto e = makeExpr(Expr::Const, tok_.line);
      e->value = tok_.literalValue;
      advance();
      return e;
    }
    if (tok_.kind == Token::Ident) {
      auto e = makeExpr(Expr::Ref, tok_.line);
      e->name = tok_.text;
      advance();
      return e;
    }
    fail(tok_.line, "expected an expression, got " + describe(tok_));
  }

  // -- netlist construction --
  Netlist finish(Netlist nl) {
    nl_ = &nl;
    for (const std::string& name : assignOrder_) {
      resolveNet(name, assigns_.find(name)->second.line);
    }
    if (outputs_.empty()) fail(1, "module has no output ports");
    for (const auto& [name, line] : outputs_) {
      nl.output(name, resolveNet(name, line));
    }
    nl.validate();
    nl_ = nullptr;
    return nl;
  }

  /// Demand-driven, order-independent resolution with cycle detection —
  /// `assign a = b; assign b = a;` is a diagnostic, not a hang. The
  /// writer's topological output keeps recursion depth at one here;
  /// hand-written deep chains recurse, bounded by kMaxResolveDepth.
  NetId resolveNet(const std::string& name, std::size_t fromLine) {
    if (const auto it = inputs_.find(name); it != inputs_.end()) {
      return it->second;
    }
    const auto it = assigns_.find(name);
    if (it == assigns_.end()) {
      fail(fromLine, "net '" + name + "' is never assigned");
    }
    Assign& assign = it->second;
    if (assign.built) return assign.net;
    if (assign.building) {
      fail(assign.line, "combinational cycle through '" + name + "'");
    }
    if (++depth_ > kMaxResolveDepth) {
      fail(fromLine, "assignment chain deeper than " +
                         std::to_string(kMaxResolveDepth));
    }
    assign.building = true;
    assign.net = buildExpr(*assign.expr, name);
    assign.building = false;
    assign.built = true;
    --depth_;
    return assign.net;
  }

  NetId buildExpr(const Expr& e, const std::string& name) {
    Netlist& nl = *nl_;
    const auto sub = [&](const Expr& child, int index) {
      if (child.kind == Expr::Ref) return resolveNet(child.name, child.line);
      return buildExpr(child, name + "$e" + std::to_string(index));
    };
    switch (e.kind) {
      case Expr::Ref: {
        // `assign y = n;` — an alias; materialize a buffer so `y` is a
        // distinct named net, matching the .bench importer's BUF.
        const NetId src = resolveNet(e.name, e.line);
        return nl.gate1(GateKind::Buf, src, name);
      }
      case Expr::Const:
        return nl.constant(e.value);
      case Expr::Not:
        return nl.gate1(GateKind::Inv, sub(*e.a, 0), name);
      case Expr::And:
        return nl.gate2(GateKind::And2, sub(*e.a, 0), sub(*e.b, 1), name);
      case Expr::Or:
        return nl.gate2(GateKind::Or2, sub(*e.a, 0), sub(*e.b, 1), name);
      case Expr::Xor:
        return nl.gate2(GateKind::Xor2, sub(*e.a, 0), sub(*e.b, 1), name);
      case Expr::Mux:
        // writeVerilog emits `sel ? then : else` for Mux2(a=else,
        // b=then, c=sel); rebuild with the same pin convention.
        return nl.gate3(GateKind::Mux2, sub(*e.c, 2), sub(*e.b, 1),
                        sub(*e.a, 0), name);
    }
    fail(e.line, "internal: unhandled expression kind");
  }

  static constexpr std::size_t kMaxResolveDepth = 100000;

  Lexer lexer_;
  Token tok_;
  Netlist* nl_ = nullptr;
  std::unordered_map<std::string, NetId> inputs_;
  std::vector<std::pair<std::string, std::size_t>> outputs_;
  std::unordered_map<std::string, Assign> assigns_;
  std::vector<std::string> assignOrder_;  ///< declaration order
  std::unordered_set<std::string> declared_;
  std::unordered_set<std::string> wires_;
  std::size_t depth_ = 0;
};

}  // namespace

core::StatusOr<Netlist> readVerilogString(std::string_view text) {
  try {
    Parser parser(text);
    return parser.parse();
  } catch (const StatusError& e) {
    return e.status();
  } catch (const std::exception& e) {
    // Netlist::validate and the builder throw plain exceptions for
    // structural violations; at this boundary they are a property of
    // the input text.
    return Status::invalidInput(std::string("readVerilog: ") + e.what());
  }
}

core::StatusOr<Netlist> readVerilog(std::istream& in) {
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) {
    return Status::ioError("readVerilog: stream read failed");
  }
  return readVerilogString(buffer.str());
}

core::StatusOr<Netlist> readVerilogFile(const std::string& path) {
  if (core::fault_inject::shouldFail(core::fault_inject::kFileOpen)) {
    return Status::ioError("fault injected at site 'file.open' (" + path +
                           ")");
  }
  std::ifstream in(path);
  if (!in) {
    return Status::ioError("readVerilogFile: cannot open " + path);
  }
  return readVerilog(in);
}

}  // namespace oisa::netlist
