// AVX2 dispatch TU — the only oisa_netlist object compiled with -mavx2.
// It must stay minimal: anything instantiated here is compiled with vector
// flags, so only the LaneBlock<256, Avx2> engine variant may live here.
// (Portable widths carry `extern template` declarations, so including the
// engine header cannot re-emit them with the wrong flags.)
#if defined(__AVX2__)

#include "netlist/lane_width_impl.h"

namespace oisa::netlist::detail {

std::unique_ptr<AnyBatchEvaluator> makeBatchEvaluatorAvx2(
    std::shared_ptr<const CompiledNetlist> compiled) {
  return std::make_unique<
      BatchEvaluatorAdapter<LaneBlock<256, LaneArch::Avx2>>>(
      std::move(compiled));
}

}  // namespace oisa::netlist::detail

#endif  // __AVX2__
