// oisa_netlist: gate-level intermediate representation.
//
// A Netlist owns nets and gates. Every net has exactly one driver (a gate, a
// primary input, or a constant) and any number of readers. The builder API
// (`input`, `gate`, `output`, ...) is what circuit generators use; analysis
// passes (topological order, fanout maps, stats) live here too because they
// are pure structure queries.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "netlist/gate.h"

namespace oisa::netlist {

/// Strongly-typed handle to a net (a single-bit signal).
struct NetId {
  std::uint32_t value = kInvalid;
  static constexpr std::uint32_t kInvalid = 0xffffffff;

  [[nodiscard]] constexpr bool valid() const noexcept {
    return value != kInvalid;
  }
  friend constexpr bool operator==(NetId, NetId) = default;
};

/// Strongly-typed handle to a gate instance.
struct GateId {
  std::uint32_t value = kInvalid;
  static constexpr std::uint32_t kInvalid = 0xffffffff;

  [[nodiscard]] constexpr bool valid() const noexcept {
    return value != kInvalid;
  }
  friend constexpr bool operator==(GateId, GateId) = default;
};

/// A gate instance: kind + input nets + single output net.
struct Gate {
  GateKind kind = GateKind::Const0;
  std::array<NetId, 3> in{};  ///< only the first gateArity(kind) entries used
  NetId out{};

  [[nodiscard]] std::span<const NetId> inputs() const noexcept {
    return {in.data(), static_cast<std::size_t>(gateArity(kind))};
  }
};

/// How a net is driven.
enum class DriverKind : std::uint8_t { None, PrimaryInput, Gate };

/// A single-bit signal.
struct Net {
  std::string name;
  DriverKind driver = DriverKind::None;
  GateId driverGate{};  ///< valid iff driver == DriverKind::Gate
};

/// Per-kind gate population of a netlist (area/report helper).
struct GateHistogram {
  std::array<std::size_t, kGateKindCount> counts{};

  [[nodiscard]] std::size_t total() const noexcept;
  [[nodiscard]] std::size_t of(GateKind kind) const noexcept {
    return counts[static_cast<std::size_t>(kind)];
  }
};

/// Gate-level netlist with single-output gates and named ports.
///
/// Invariants (checked by `validate()`):
///  * every net has exactly one driver once the netlist is complete;
///  * gate input nets exist and are driven;
///  * the combinational graph is acyclic (checked by `topologicalOrder`).
class Netlist {
 public:
  explicit Netlist(std::string name = "top") : name_(std::move(name)) {}

  // --- builder API -------------------------------------------------------

  /// Creates a primary input net.
  NetId input(std::string name);

  /// Creates a gate of `kind` reading `ins`; returns its fresh output net.
  NetId gate(GateKind kind, std::span<const NetId> ins,
             std::string outName = {});

  /// Convenience overloads for fixed arities.
  NetId gate1(GateKind kind, NetId a, std::string outName = {});
  NetId gate2(GateKind kind, NetId a, NetId b, std::string outName = {});
  NetId gate3(GateKind kind, NetId a, NetId b, NetId c,
              std::string outName = {});

  /// Returns a (cached) constant-0 / constant-1 net.
  NetId constant(bool value);

  /// Declares `net` as a primary output named `name`.
  void output(std::string name, NetId net);

  /// Rewires input pin `pin` of `gate` to read `net` (transform/rewiring
  /// primitive). This can create combinational cycles: `validate()` and
  /// `topologicalOrder()` report them, functional evaluators refuse them,
  /// and the timed engines construct anyway, relying on their event
  /// budgets to diagnose non-settling runs.
  void replaceGateInput(GateId gate, int pin, NetId net);

  // --- structure queries --------------------------------------------------

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] std::size_t netCount() const noexcept { return nets_.size(); }
  [[nodiscard]] std::size_t gateCount() const noexcept {
    return gates_.size();
  }
  [[nodiscard]] const Net& net(NetId id) const { return nets_.at(id.value); }
  [[nodiscard]] const Gate& gateAt(GateId id) const {
    return gates_.at(id.value);
  }
  [[nodiscard]] std::span<const NetId> primaryInputs() const noexcept {
    return inputs_;
  }
  [[nodiscard]] std::span<const NetId> primaryOutputs() const noexcept {
    return outputs_;
  }
  [[nodiscard]] const std::string& outputName(std::size_t i) const {
    return outputNames_.at(i);
  }

  /// Gates in dependency order (inputs before readers).
  /// Throws std::runtime_error on a combinational cycle.
  [[nodiscard]] std::vector<GateId> topologicalOrder() const;

  /// Readers of each net: fanout[net] = gates whose inputs include net.
  [[nodiscard]] std::vector<std::vector<GateId>> fanoutMap() const;

  /// Fanout count per net (cheaper than fanoutMap when only sizes matter);
  /// primary outputs count as one extra load each.
  [[nodiscard]] std::vector<std::uint32_t> fanoutCounts() const;

  /// Gate population per kind.
  [[nodiscard]] GateHistogram histogram() const;

  /// Checks structural invariants; throws std::runtime_error on violation.
  void validate() const;

 private:
  NetId makeNet(std::string name, DriverKind driver, GateId driverGate);

  std::string name_;
  std::vector<Net> nets_;
  std::vector<Gate> gates_;
  std::vector<NetId> inputs_;
  std::vector<NetId> outputs_;
  std::vector<std::string> outputNames_;
  std::optional<NetId> const0_;
  std::optional<NetId> const1_;
};

}  // namespace oisa::netlist
