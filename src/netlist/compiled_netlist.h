// oisa_netlist: immutable compiled form of a Netlist, shared by engines.
//
// Every evaluation engine used to flatten the same structure privately at
// construction: CSR fanout with packed pin masks, 8-entry truth tables,
// dense per-gate input/output net indices, the levelized (topological)
// order, and the settled all-inputs-low state. CompiledNetlist extracts
// that one flattening into an immutable, shareable object: the functional
// BatchEvaluator, the scalar timed wheel engine (timing::TimedSimulator)
// and the 64-lane timed engine (timing::LaneTimedSimulator) all construct
// from the same compiled substrate, so a pipeline that runs several
// engines over one design compiles the netlist exactly once.
//
// A CompiledNetlist may be built from a *cyclic* netlist (e.g. after
// transform rewiring): `acyclic()` is false, `topologicalOrder()` is empty
// and the zero state is all-zeros. Functional evaluators require an
// acyclic compile; the timed engines construct either way and rely on
// their event budgets to diagnose non-settling runs.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "netlist/netlist.h"

namespace oisa::netlist {

/// Immutable, engine-agnostic flattening of one Netlist.
///
/// Lifetime: holds a reference to the source Netlist (for port/name
/// queries only; all hot-path structure is copied into dense arrays), so
/// the Netlist must outlive the compile — the same contract the engines
/// already had individually.
class CompiledNetlist {
 public:
  /// Dense per-gate record. Unused input slots point at net 0, which is
  /// always a valid index; gate functions ignore operands beyond their
  /// arity, so engines may load all three inputs unconditionally.
  struct GateRec {
    std::array<std::uint32_t, 3> in{};
    std::uint32_t out = 0;
    GateKind kind = GateKind::Const0;
    std::uint8_t truth = 0;  ///< 8-entry truth table, bit m = f(minterm m)
  };

  /// Compiles `nl` into a shareable immutable form.
  [[nodiscard]] static std::shared_ptr<const CompiledNetlist> compile(
      const Netlist& nl) {
    return std::make_shared<const CompiledNetlist>(nl);
  }

  explicit CompiledNetlist(const Netlist& nl);

  [[nodiscard]] const Netlist& source() const noexcept { return *nl_; }
  [[nodiscard]] std::size_t netCount() const noexcept { return netCount_; }
  [[nodiscard]] std::size_t gateCount() const noexcept {
    return gates_.size();
  }
  [[nodiscard]] const GateRec& gate(std::uint32_t gi) const noexcept {
    return gates_[gi];
  }

  /// Primary input / output net indices, in declaration order.
  [[nodiscard]] std::span<const std::uint32_t> inputNets() const noexcept {
    return inputNets_;
  }
  [[nodiscard]] std::span<const std::uint32_t> outputNets() const noexcept {
    return outputNets_;
  }

  /// CSR fanout: readers()[fanoutOffsets()[n] .. fanoutOffsets()[n+1]) are
  /// the gates reading net n, each entry packing `gateIndex << 3` with the
  /// minterm bits the net drives in its low 3 bits (a net wired to several
  /// pins of one gate is merged into a single entry with the combined
  /// mask).
  [[nodiscard]] std::span<const std::uint32_t> fanoutOffsets() const noexcept {
    return fanoutOffsets_;
  }
  [[nodiscard]] std::span<const std::uint32_t> readers() const noexcept {
    return readers_;
  }

  /// Gates in dependency order; empty when the netlist is cyclic.
  [[nodiscard]] std::span<const std::uint32_t> topologicalOrder()
      const noexcept {
    return order_;
  }
  [[nodiscard]] bool acyclic() const noexcept { return acyclic_; }

  /// The settled "powered up with all primary inputs low" net values (one
  /// byte per net, indexed by NetId) — the timed engines' reset state.
  /// All-zeros when the netlist is cyclic (no settled state exists).
  [[nodiscard]] std::span<const std::uint8_t> zeroState() const noexcept {
    return zeroState_;
  }

 private:
  const Netlist* nl_;
  std::size_t netCount_ = 0;
  std::vector<GateRec> gates_;
  std::vector<std::uint32_t> inputNets_;
  std::vector<std::uint32_t> outputNets_;
  std::vector<std::uint32_t> fanoutOffsets_;
  std::vector<std::uint32_t> readers_;
  std::vector<std::uint32_t> order_;
  std::vector<std::uint8_t> zeroState_;
  bool acyclic_ = false;
};

}  // namespace oisa::netlist
