// oisa_netlist: the AnyBatchEvaluator adapter template. Included by the
// dispatch TUs only (lane_width.cpp for the portable widths, the
// lane_simd_*.cpp per-arch TUs for the intrinsic ones) — each TU
// instantiates the adapter solely for the Block flavors it owns, so no
// vector code leaks into baseline objects.
#pragma once

#include <memory>
#include <utility>

#include "netlist/batch_evaluator.h"
#include "netlist/lane_width.h"

namespace oisa::netlist::detail {

template <class Block>
class BatchEvaluatorAdapter final : public AnyBatchEvaluator {
 public:
  explicit BatchEvaluatorAdapter(
      std::shared_ptr<const CompiledNetlist> compiled)
      : impl_(std::move(compiled)) {}

  [[nodiscard]] std::size_t lanes() const noexcept override {
    return Block::kBits;
  }
  [[nodiscard]] std::size_t wordsPerNet() const noexcept override {
    return Block::kWords;
  }
  [[nodiscard]] LaneSelection selection() const noexcept override {
    return {Block::kBits, Block::kArch};
  }
  void evaluateInto(std::span<const std::uint64_t> inputWords,
                    std::vector<std::uint64_t>& values) const override {
    impl_.evaluateInto(inputWords, values);
  }
  void evaluateOutputsInto(std::span<const std::uint64_t> inputWords,
                           std::vector<std::uint64_t>& out) const override {
    out = impl_.evaluateOutputs(inputWords);
  }
  [[nodiscard]] const std::shared_ptr<const CompiledNetlist>& compiled()
      const noexcept override {
    return impl_.compiled();
  }

 private:
  BatchEvaluatorT<Block> impl_;
};

}  // namespace oisa::netlist::detail
