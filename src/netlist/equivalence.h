// oisa_netlist: simulation-based combinational equivalence checking.
//
// Compares two netlists with identical port shapes: exhaustively when the
// input count is small, otherwise with directed corner patterns plus seeded
// random vectors (a lightweight stand-in for formal CEC — sufficient for
// the regression use here, where mismatches are dense when present).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "netlist/netlist.h"

namespace oisa::netlist {

/// Checker controls.
struct EquivalenceOptions {
  int exhaustiveLimit = 14;        ///< exhaustive when #inputs <= this
  std::uint64_t randomVectors = 4096;
  std::uint64_t seed = 1;
};

/// Outcome of an equivalence check.
struct EquivalenceResult {
  bool equivalent = false;
  std::uint64_t vectorsTried = 0;
  /// First mismatching input assignment (one byte per primary input) and a
  /// human-readable description, when not equivalent.
  std::optional<std::vector<std::uint8_t>> counterexample;
  std::string message;
};

/// Checks that `a` and `b` compute the same outputs for all (tried) inputs.
/// Port *counts* must match; names need not.
[[nodiscard]] EquivalenceResult checkEquivalence(
    const Netlist& a, const Netlist& b, const EquivalenceOptions& options = {});

}  // namespace oisa::netlist
