#include "netlist/evaluator.h"

#include <stdexcept>

namespace oisa::netlist {

Evaluator::Evaluator(const Netlist& nl) : nl_(nl), order_(nl.topologicalOrder()) {}

std::vector<std::uint8_t> Evaluator::evaluate(
    std::span<const std::uint8_t> inputValues) const {
  const auto pis = nl_.primaryInputs();
  if (inputValues.size() != pis.size()) {
    throw std::invalid_argument("Evaluator: expected " +
                                std::to_string(pis.size()) + " inputs, got " +
                                std::to_string(inputValues.size()));
  }
  std::vector<std::uint8_t> values(nl_.netCount(), 0);
  for (std::size_t i = 0; i < pis.size(); ++i) {
    values[pis[i].value] = inputValues[i] ? 1 : 0;
  }
  for (GateId gid : order_) {
    const Gate& g = nl_.gateAt(gid);
    const auto ins = g.inputs();
    const bool a = !ins.empty() && values[ins[0].value] != 0;
    const bool b = ins.size() > 1 && values[ins[1].value] != 0;
    const bool c = ins.size() > 2 && values[ins[2].value] != 0;
    values[g.out.value] = evalGate(g.kind, a, b, c) ? 1 : 0;
  }
  return values;
}

std::vector<std::uint8_t> Evaluator::evaluateOutputs(
    std::span<const std::uint8_t> inputValues) const {
  const auto values = evaluate(inputValues);
  const auto pos = nl_.primaryOutputs();
  std::vector<std::uint8_t> out(pos.size());
  for (std::size_t i = 0; i < pos.size(); ++i) {
    out[i] = values[pos[i].value];
  }
  return out;
}

std::uint64_t Evaluator::evaluateWord(std::uint64_t word) const {
  const auto pis = nl_.primaryInputs();
  const auto pos = nl_.primaryOutputs();
  if (pis.size() > 64 || pos.size() > 64) {
    throw std::invalid_argument("Evaluator::evaluateWord: > 64 ports");
  }
  std::vector<std::uint8_t> in(pis.size());
  for (std::size_t i = 0; i < pis.size(); ++i) {
    in[i] = static_cast<std::uint8_t>((word >> i) & 1u);
  }
  const auto out = evaluateOutputs(in);
  std::uint64_t packed = 0;
  for (std::size_t i = 0; i < out.size(); ++i) {
    if (out[i]) packed |= (std::uint64_t{1} << i);
  }
  return packed;
}

}  // namespace oisa::netlist
