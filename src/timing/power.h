// oisa_timing: activity-based power and energy estimation.
//
// The paper's premise is energy efficiency: speculative architectures relax
// timing *and energy* constraints. This module estimates per-design power
// from real switching activity: the event-driven simulator counts every net
// toggle under a workload, each toggle is charged the cell's switching
// energy (scaled by fanout load), and leakage is charged per cell area.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "netlist/netlist.h"
#include "timing/cell_library.h"
#include "timing/delay_annotation.h"

namespace oisa::timing {

/// Per-cell-kind energy characterization.
struct CellPower {
  double switchingFj = 0.0;   ///< energy per output toggle at fanout 1 (fJ)
  double perFanoutFj = 0.0;   ///< extra per additional fanout load
  double leakageNw = 0.0;     ///< static leakage (nW)
};

/// Per-kind power table (companion of CellLibrary).
class PowerLibrary {
 public:
  [[nodiscard]] const CellPower& cell(netlist::GateKind kind) const noexcept {
    return cells_[static_cast<std::size_t>(kind)];
  }
  CellPower& cell(netlist::GateKind kind) noexcept {
    return cells_[static_cast<std::size_t>(kind)];
  }

  /// Energy values matching the generic65 timing library.
  [[nodiscard]] static PowerLibrary generic65();

 private:
  std::array<CellPower, netlist::kGateKindCount> cells_{};
};

/// Result of a power measurement run.
struct PowerReport {
  std::uint64_t cycles = 0;
  std::uint64_t toggles = 0;        ///< committed net changes
  double dynamicEnergyFj = 0.0;     ///< total switching energy
  double energyPerOpFj = 0.0;       ///< dynamic energy / cycles
  double dynamicPowerUw = 0.0;      ///< at the given clock period
  double leakagePowerUw = 0.0;
  double totalPowerUw = 0.0;
  double meanTogglesPerCycle = 0.0;
};

/// Simulates `stimuli` through the netlist at `periodNs` (first vector is
/// the settled reset, not billed) and charges switching + leakage energy.
[[nodiscard]] PowerReport measurePower(
    const netlist::Netlist& nl, const DelayAnnotation& delays,
    const PowerLibrary& power, double periodNs,
    std::span<const std::vector<std::uint8_t>> stimuli);

}  // namespace oisa::timing
