#include "timing/vcd.h"

#include <cmath>
#include <ostream>
#include <stdexcept>

namespace oisa::timing {

namespace {

/// Short printable VCD identifier for an observed-net index.
std::string vcdId(std::uint32_t index) {
  std::string id;
  do {
    id += static_cast<char>('!' + index % 94);
    index /= 94;
  } while (index != 0);
  return id;
}

}  // namespace

VcdWriter VcdWriter::forPorts(const netlist::Netlist& nl) {
  std::vector<netlist::NetId> nets(nl.primaryInputs().begin(),
                                   nl.primaryInputs().end());
  nets.insert(nets.end(), nl.primaryOutputs().begin(),
              nl.primaryOutputs().end());
  return VcdWriter(nl, std::move(nets));
}

VcdWriter::VcdWriter(const netlist::Netlist& nl,
                     std::vector<netlist::NetId> nets)
    : nl_(nl), nets_(std::move(nets)) {
  observedIndex_.assign(nl.netCount(), -1);
  for (std::size_t i = 0; i < nets_.size(); ++i) {
    if (!nets_[i].valid() || nets_[i].value >= nl.netCount()) {
      throw std::invalid_argument("VcdWriter: invalid net");
    }
    observedIndex_[nets_[i].value] = static_cast<int>(i);
  }
  last_.assign(nets_.size(), -1);
}

void VcdWriter::sample(double timeNs,
                       const std::vector<std::uint8_t>& netValues) {
  if (netValues.size() != nl_.netCount()) {
    throw std::invalid_argument("VcdWriter::sample: bad value vector");
  }
  for (std::size_t i = 0; i < nets_.size(); ++i) {
    record(timeNs, nets_[i], netValues[nets_[i].value] != 0);
  }
}

void VcdWriter::record(double timeNs, netlist::NetId net, bool value) {
  const int idx = observedIndex_.at(net.value);
  if (idx < 0) return;  // not observed
  if (last_[static_cast<std::size_t>(idx)] ==
      static_cast<signed char>(value ? 1 : 0)) {
    return;
  }
  last_[static_cast<std::size_t>(idx)] = value ? 1 : 0;
  changes_.push_back(Change{
      static_cast<std::uint64_t>(std::llround(timeNs * 1000.0)),
      static_cast<std::uint32_t>(idx), value});
}

void VcdWriter::write(std::ostream& os) const {
  os << "$date oisa $end\n$version oisa timed simulator $end\n"
     << "$timescale 1ps $end\n$scope module "
     << (nl_.name().empty() ? "top" : nl_.name()) << " $end\n";
  for (std::size_t i = 0; i < nets_.size(); ++i) {
    os << "$var wire 1 " << vcdId(static_cast<std::uint32_t>(i)) << ' '
       << nl_.net(nets_[i]).name << " $end\n";
  }
  os << "$upscope $end\n$enddefinitions $end\n";

  std::uint64_t lastTime = ~std::uint64_t{0};
  for (const Change& change : changes_) {
    if (change.timePs != lastTime) {
      os << '#' << change.timePs << '\n';
      lastTime = change.timePs;
    }
    os << (change.value ? '1' : '0') << vcdId(change.index) << '\n';
  }
}

}  // namespace oisa::timing
