// oisa_timing: event-driven timed gate-level simulation.
//
// The repo's analogue of the paper's SDF-annotated ModelSim runs. Gates
// have transport delays from a DelayAnnotation; input vectors are applied
// at clock edges; outputs are latched at the next edge, whether or not the
// combinational cloud has settled. An output whose cone has not settled at
// the edge latches whatever value the net holds at that instant — exactly
// the overclocking timing-error mechanism studied by the paper, including
// its dependence on the previous cycle's state.
//
// Engine: integer-picosecond calendar-queue time wheel. Delays are
// quantized to the ps grid once at construction (DelayAnnotation::
// quantizedDelaysPs), so every event timestamp is an exact integer and
// the strictly-before latch-edge comparison needs no epsilon. Because a
// net's pending events never lie more than the maximum gate delay ahead
// of the processing cursor, a power-of-two wheel sized past that delay
// holds at most one distinct timestamp per slot and event extraction is
// O(1) — no heap, no comparisons, no allocation in steady state.
//
// The immutable structure (CSR fanout with packed pin masks, truth
// tables, settled reset state) comes from the shared
// netlist::CompiledNetlist substrate, so a pipeline running several
// engines over one design — this scalar wheel, the 64-lane
// LaneTimedSimulator (lane_sim.h), the functional BatchEvaluator —
// compiles the netlist exactly once and shares the read-only arrays.
//
// The seed binary-heap engine is retained verbatim (on the same ps grid)
// as timing::HeapSimulator in heap_sim.h for differential tests and the
// micro_timed_sim benchmark.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "netlist/compiled_netlist.h"
#include "netlist/netlist.h"
#include "timing/delay_annotation.h"

namespace oisa::timing {

/// Integer-time event-driven simulator over one netlist.
///
/// Typical use goes through ClockedSampler; the raw interface is exposed
/// for tests and custom experiments. The double-valued methods
/// (advance/settle/nowNs) quantize to the ps grid via quantizeSpanPs and
/// remain for API compatibility; hot paths should use the *Ps forms.
///
/// Cyclic netlists (possible after transform rewiring) construct and
/// power up all-zero with disagreeing gates scheduled to react; any run
/// that fails to quiesce — combinational cycle, oscillator — is caught by
/// the per-call event budget (see setEventBudget) instead of looping
/// forever.
class TimedSimulator {
 public:
  /// Compiles `nl` privately.
  TimedSimulator(const netlist::Netlist& nl, const DelayAnnotation& delays);

  /// Shares an existing compile with other engines over the same design.
  TimedSimulator(std::shared_ptr<const netlist::CompiledNetlist> compiled,
                 const DelayAnnotation& delays);

  /// Applies primary-input values at the current simulation time.
  void applyInputs(std::span<const std::uint8_t> inputValues);

  /// Advances simulation, processing all events strictly before
  /// `currentTime + deltaPs`, then sets current time to that instant.
  void advancePs(TimePs deltaPs);

  /// Nanosecond convenience form of advancePs (delta rounds up to the
  /// grid, so advancing past an event time still passes it).
  void advance(double deltaNs) { advancePs(quantizeSpanPs(deltaNs)); }

  /// Processes every pending event (settle). Returns the timestamp of the
  /// last processed event. Throws std::runtime_error with a diagnostic if
  /// the event budget is exceeded (non-settling or cyclic netlist).
  TimePs settlePs();

  /// Nanosecond form of settlePs.
  double settle() { return static_cast<double>(settlePs()) / kPsPerNs; }

  /// Current value of each primary output, in declaration order.
  [[nodiscard]] std::vector<std::uint8_t> sampleOutputs() const;

  /// Allocation-free sampling: writes the primary-output values into
  /// `out` (resized once to the output count, then reused).
  void sampleOutputsInto(std::vector<std::uint8_t>& out) const;

  /// Current value of an arbitrary net.
  [[nodiscard]] bool netValue(netlist::NetId net) const noexcept {
    return values_[net.value] != 0;
  }

  [[nodiscard]] TimePs nowPs() const noexcept { return now_; }
  [[nodiscard]] double nowNs() const noexcept {
    return static_cast<double>(now_) / kPsPerNs;
  }

  /// Number of committed net changes since construction (perf counter).
  [[nodiscard]] std::uint64_t eventsProcessed() const noexcept {
    return eventCount_;
  }

  /// Caps the committed events a single advancePs/settlePs call may
  /// process before throwing std::runtime_error. This is the guard that
  /// turns a non-settling netlist (combinational cycle, oscillator) into
  /// a clear diagnostic instead of an unbounded loop. The default budget
  /// (~4M events per call) is far above any legitimate single-period
  /// advance or settle of the supported design sizes.
  void setEventBudget(std::uint64_t maxEventsPerCall) noexcept {
    budget_ = maxEventsPerCall;
  }
  [[nodiscard]] std::uint64_t eventBudget() const noexcept { return budget_; }

  /// Resets to the settled all-inputs-low state at time 0 with no events.
  /// A cyclic netlist instead powers up all-zero with the disagreeing
  /// gates scheduled to react, so the first advance/settle converges to a
  /// logic-consistent quiescent state (or trips the event budget).
  void reset();

  /// All current net values, indexed by NetId (for waveform observers).
  [[nodiscard]] const std::vector<std::uint8_t>& netValues() const noexcept {
    return values_;
  }

  /// The shared compiled structure this simulator runs on.
  [[nodiscard]] const std::shared_ptr<const netlist::CompiledNetlist>&
  compiled() const noexcept {
    return compiled_;
  }

  /// Observer invoked on every committed net change (including input
  /// applications): (timeNs, net, newValue). Pass nullptr to disable.
  /// Intended for waveform dumping; adds per-event overhead when set.
  void setChangeObserver(
      std::function<void(double, netlist::NetId, bool)> observer) {
    observer_ = std::move(observer);
  }

 private:
  /// Dense per-gate record, 16 bytes so one reader evaluation touches one
  /// cache line. `state` packs the hot evaluation word:
  ///   bits 0-2   current input minterm (maintained incrementally as
  ///              driving nets commit),
  ///   bits 3-10  the gate function as an 8-entry truth table,
  ///   bit  11    last scheduled output value (the schedule-time dedup of
  ///              the seed engine, reindexed from output net to gate —
  ///              every gate output net has exactly one driver).
  struct GateRec {
    std::uint32_t state;
    std::uint32_t out;      ///< output net index
    std::uint32_t delayPs;  ///< quantized transport delay
    std::uint32_t pad_ = 0;
  };
  /// Largest supported transport delay (~1 us). The wheel's slot count
  /// scales with the maximum gate delay, so this bound both keeps memory
  /// sane (<= 2^20 slots) and guards the narrowing into GateRec::delayPs
  /// — construction throws beyond it instead of silently wrapping.
  static constexpr TimePs kMaxDelayPs = TimePs{1} << 20;
  static constexpr std::uint32_t kMintermMask = 0x7;
  static constexpr unsigned kTruthShift = 3;
  static constexpr unsigned kLastSchedShift = 11;
  static constexpr std::uint64_t kDefaultEventBudget = std::uint64_t{1} << 22;

  /// One scheduled net change; its timestamp is implied by the wheel slot.
  struct SlotEvent {
    std::uint32_t net;
    std::uint32_t value;
  };

  /// Wheel slot with an explicit length so the schedule path can do a
  /// branchless conditional append (unconditional store, length advanced
  /// by 0 or 1): `data.size()` is the capacity, `len` the live prefix.
  struct Slot {
    std::vector<SlotEvent> data;
    std::uint32_t len = 0;
  };

  // Hot path: force-inlined into the drain loop — the per-event call
  // overhead is measurable at ~450 events/cycle.
#if defined(__GNUC__) || defined(__clang__)
  __attribute__((always_inline))
#endif
  inline void
  scheduleReaders(std::uint32_t net, std::uint32_t value, TimePs atTime);
#if defined(__GNUC__) || defined(__clang__)
  __attribute__((always_inline))
#endif
  inline void
  drainSlot(TimePs t);
  void runUntil(TimePs horizon);  // processes events with time < horizon
  [[noreturn]] void throwBudgetExceeded() const;

  std::shared_ptr<const netlist::CompiledNetlist> compiled_;
  std::vector<GateRec> gates_;  // indexed by gate index
  /// Shared immutable CSR fanout (owned by compiled_): offsets per net,
  /// entries packing reader gate index << 3 | driven minterm bits.
  std::span<const std::uint32_t> fanoutOffset_;
  std::span<const std::uint32_t> readers_;
  std::span<const std::uint32_t> inputNets_;  // primary-input net indices
  std::vector<std::uint8_t> values_;          // indexed by NetId
  std::vector<Slot> wheel_;
  std::uint32_t wheelMask_ = 0;
  std::uint64_t pending_ = 0;  // events currently in the wheel
  TimePs now_ = 0;             // simulation frontier
  TimePs cursor_ = 0;          // next tick to scan (<= first pending event)
  std::uint64_t eventCount_ = 0;
  std::uint64_t budget_ = kDefaultEventBudget;
  std::uint64_t failAt_ = ~std::uint64_t{0};  // eventCount_ cap of this call
  std::function<void(double, netlist::NetId, bool)> observer_;
};

/// Drives a TimedSimulator like a clocked register stage: one input vector
/// per cycle, outputs latched one period later. In-flight events survive
/// across edges, so a too-short period exhibits history-dependent timing
/// errors exactly like hardware.
class ClockedSampler {
 public:
  /// `periodNs` — the (possibly overclocked) clock period; quantized once
  /// to the ps grid (rounding up) and reused for every step.
  ClockedSampler(const netlist::Netlist& nl, const DelayAnnotation& delays,
                 double periodNs);

  /// Settles the circuit on an initial vector (reset cycle; no sampling).
  void initialize(std::span<const std::uint8_t> inputValues);

  /// Applies the cycle's inputs, advances one period, and returns the
  /// latched primary-output values.
  [[nodiscard]] std::vector<std::uint8_t> step(
      std::span<const std::uint8_t> inputValues);

  /// Allocation-free step for hot loops: latched outputs land in `out`.
  void stepInto(std::span<const std::uint8_t> inputValues,
                std::vector<std::uint8_t>& out);

  [[nodiscard]] double periodNs() const noexcept { return periodNs_; }
  [[nodiscard]] TimePs periodPs() const noexcept { return periodPs_; }
  [[nodiscard]] TimedSimulator& simulator() noexcept { return sim_; }

 private:
  TimedSimulator sim_;
  double periodNs_;
  TimePs periodPs_;
};

}  // namespace oisa::timing
