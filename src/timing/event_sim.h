// oisa_timing: event-driven timed gate-level simulation.
//
// The repo's analogue of the paper's SDF-annotated ModelSim runs. Gates
// have transport delays from a DelayAnnotation; input vectors are applied
// at clock edges; outputs are latched at the next edge, whether or not the
// combinational cloud has settled. An output whose cone has not settled at
// the edge latches whatever value the net holds at that instant — exactly
// the overclocking timing-error mechanism studied by the paper, including
// its dependence on the previous cycle's state.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "netlist/netlist.h"
#include "timing/delay_annotation.h"

namespace oisa::timing {

/// Continuous-time event-driven simulator over one netlist.
///
/// Typical use goes through ClockedSampler; the raw interface is exposed
/// for tests and custom experiments.
class TimedSimulator {
 public:
  TimedSimulator(const netlist::Netlist& nl, const DelayAnnotation& delays);

  /// Applies primary-input values at the current simulation time.
  void applyInputs(std::span<const std::uint8_t> inputValues);

  /// Advances simulation, processing all events strictly before
  /// `currentTime + deltaNs`, then sets current time to that instant.
  void advance(double deltaNs);

  /// Processes every pending event (unbounded settle). Returns the
  /// timestamp of the last processed event relative to the call.
  double settle();

  /// Current value of each primary output, in declaration order.
  [[nodiscard]] std::vector<std::uint8_t> sampleOutputs() const;

  /// Current value of an arbitrary net.
  [[nodiscard]] bool netValue(netlist::NetId net) const {
    return values_.at(net.value) != 0;
  }

  [[nodiscard]] double nowNs() const noexcept { return now_; }

  /// Number of events processed since construction (perf counter).
  [[nodiscard]] std::uint64_t eventsProcessed() const noexcept {
    return eventCount_;
  }

  /// Resets to the all-undefined (zero) state at time 0 with no events.
  void reset();

  /// All current net values, indexed by NetId (for waveform observers).
  [[nodiscard]] const std::vector<std::uint8_t>& netValues() const noexcept {
    return values_;
  }

  /// Observer invoked on every committed net change (including input
  /// applications): (timeNs, net, newValue). Pass nullptr to disable.
  /// Intended for waveform dumping; adds per-event overhead when set.
  void setChangeObserver(
      std::function<void(double, netlist::NetId, bool)> observer) {
    observer_ = std::move(observer);
  }

 private:
  struct Event {
    double time;
    std::uint32_t net;
    std::uint8_t value;
    std::uint64_t seq;  ///< tie-breaker: same-time events apply in schedule order

    [[nodiscard]] bool operator>(const Event& o) const noexcept {
      if (time != o.time) return time > o.time;
      return seq > o.seq;
    }
  };

  void scheduleReaders(netlist::NetId net, double atTime);
  void runUntil(double horizon);  // processes events with time < horizon

  const netlist::Netlist& nl_;
  const DelayAnnotation& delays_;
  std::vector<std::vector<netlist::GateId>> fanout_;
  std::vector<std::uint8_t> values_;        // indexed by NetId
  std::vector<std::uint8_t> lastScheduled_; // last scheduled value per net
  std::vector<Event> heap_;                 // min-heap on (time, seq)
  double now_ = 0.0;
  std::uint64_t seq_ = 0;
  std::uint64_t eventCount_ = 0;
  std::function<void(double, netlist::NetId, bool)> observer_;
};

/// Drives a TimedSimulator like a clocked register stage: one input vector
/// per cycle, outputs latched one period later. In-flight events survive
/// across edges, so a too-short period exhibits history-dependent timing
/// errors exactly like hardware.
class ClockedSampler {
 public:
  /// `periodNs` — the (possibly overclocked) clock period.
  ClockedSampler(const netlist::Netlist& nl, const DelayAnnotation& delays,
                 double periodNs);

  /// Settles the circuit on an initial vector (reset cycle; no sampling).
  void initialize(std::span<const std::uint8_t> inputValues);

  /// Applies the cycle's inputs, advances one period, and returns the
  /// latched primary-output values.
  [[nodiscard]] std::vector<std::uint8_t> step(
      std::span<const std::uint8_t> inputValues);

  [[nodiscard]] double periodNs() const noexcept { return periodNs_; }
  [[nodiscard]] TimedSimulator& simulator() noexcept { return sim_; }

 private:
  TimedSimulator sim_;
  double periodNs_;
};

}  // namespace oisa::timing
