// oisa_timing: width-erased interfaces over the templated timed engines,
// plus the factories the runtime lane-width dispatcher (see
// netlist/lane_width.h) routes through. TraceCollector and the defect
// scan hold these instead of concrete LaneTimedSimulatorT widths, so
// wider SIMD blocks flow through the experiment pipelines transparently.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "netlist/compiled_netlist.h"
#include "netlist/lane_width.h"
#include "netlist/netlist.h"
#include "timing/delay_annotation.h"

namespace oisa::timing {

/// Width-erased LaneTimedSimulatorT. All spans are lane-major with
/// wordsPerNet() uint64 words per input/output/net; sub-word j of a net
/// holds lanes [64j, 64j + 64).
class AnyLaneSimulator {
 public:
  virtual ~AnyLaneSimulator() = default;

  [[nodiscard]] virtual std::size_t lanes() const noexcept = 0;
  [[nodiscard]] virtual std::size_t wordsPerNet() const noexcept = 0;
  virtual void applyInputs(std::span<const std::uint64_t> inputWords) = 0;
  virtual void advancePs(TimePs deltaPs) = 0;
  virtual TimePs settlePs() = 0;
  virtual void sampleOutputsInto(std::vector<std::uint64_t>& out) const = 0;
  virtual void reset() = 0;
  /// 64-bit mask/bits pattern, applied alike to every 64-lane sub-word
  /// (matches LaneTimedSimulatorT::forceNet).
  virtual void forceNet(netlist::NetId net, std::uint64_t laneMask,
                        std::uint64_t bits) = 0;
  virtual void clearNetForces() = 0;
  virtual void setEventBudget(std::uint64_t maxEventsPerCall) = 0;
  [[nodiscard]] virtual std::uint64_t eventsProcessed() const noexcept = 0;
  [[nodiscard]] virtual std::uint64_t laneTransitionsCommitted()
      const noexcept = 0;
  [[nodiscard]] virtual const std::vector<std::uint64_t>& netWords()
      const noexcept = 0;
  [[nodiscard]] virtual TimePs nowPs() const noexcept = 0;
  [[nodiscard]] virtual const std::shared_ptr<const netlist::CompiledNetlist>&
  compiled() const noexcept = 0;
};

/// Width-erased LaneClockedSamplerT.
class AnyLaneSampler {
 public:
  virtual ~AnyLaneSampler() = default;

  [[nodiscard]] virtual netlist::LaneSelection selection() const noexcept = 0;
  [[nodiscard]] virtual std::size_t lanes() const noexcept = 0;
  [[nodiscard]] virtual std::size_t wordsPerNet() const noexcept = 0;
  virtual void initialize(std::span<const std::uint64_t> inputWords) = 0;
  virtual void stepInto(std::span<const std::uint64_t> inputWords,
                        std::vector<std::uint64_t>& out) = 0;
  [[nodiscard]] virtual double periodNs() const noexcept = 0;
  [[nodiscard]] virtual TimePs periodPs() const noexcept = 0;
  [[nodiscard]] virtual AnyLaneSimulator& simulator() noexcept = 0;
};

/// Builds the clocked-sampler variant for `sel` (default:
/// netlist::selectLaneWidth()). Throws std::invalid_argument for a
/// variant this build/CPU cannot run.
[[nodiscard]] std::unique_ptr<AnyLaneSampler> makeLaneSampler(
    std::shared_ptr<const netlist::CompiledNetlist> compiled,
    const DelayAnnotation& delays, double periodNs);
[[nodiscard]] std::unique_ptr<AnyLaneSampler> makeLaneSampler(
    std::shared_ptr<const netlist::CompiledNetlist> compiled,
    const DelayAnnotation& delays, double periodNs,
    netlist::LaneSelection sel);

namespace detail {

// Per-arch factories, defined in the -mavx2 / -mavx512f dispatch TUs.
[[nodiscard]] std::unique_ptr<AnyLaneSampler> makeLaneSamplerAvx2(
    std::shared_ptr<const netlist::CompiledNetlist> compiled,
    const DelayAnnotation& delays, double periodNs);
[[nodiscard]] std::unique_ptr<AnyLaneSampler> makeLaneSamplerAvx512(
    std::shared_ptr<const netlist::CompiledNetlist> compiled,
    const DelayAnnotation& delays, double periodNs);

}  // namespace detail

}  // namespace oisa::timing
