// oisa_timing: Razor-style shadow-latch error detection (paper refs
// [10]-[12], the Better-Than-Worst-Case alternative to model-based
// prediction).
//
// A main flip-flop samples at the (overclocked) period; a shadow latch
// samples the same nets a safe margin later. A mismatch flags a timing
// error; recovery replays the operation at a cycle penalty. The paper's
// argument — "such techniques incur silicon overhead for online monitoring
// and recovery penalty" — is quantified by the ablation bench built on this
// model.
//
// Idealization: the shadow margin is modeled as dead time appended to each
// cycle (a real Razor overlaps it with the next cycle after min-delay
// fixing); detection semantics are unaffected. Errors slower than
// period + margin escape the shadow too (true Razor behavior).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "timing/event_sim.h"

namespace oisa::timing {

/// Clocked sampler with a delayed shadow sample and detection statistics.
class RazorSampler {
 public:
  /// `periodNs` — overclocked clock; `shadowMarginNs` — how much later the
  /// shadow latch samples; `recoveryPenaltyCycles` — replay cost per
  /// detection (pipeline flush depth).
  RazorSampler(const netlist::Netlist& nl, const DelayAnnotation& delays,
               double periodNs, double shadowMarginNs,
               double recoveryPenaltyCycles = 1.0);

  void initialize(std::span<const std::uint8_t> inputValues);

  struct StepResult {
    std::vector<std::uint8_t> main;    ///< sampled at the clock edge
    std::vector<std::uint8_t> shadow;  ///< sampled margin later
    bool detected = false;             ///< any main/shadow mismatch
  };

  [[nodiscard]] StepResult step(std::span<const std::uint8_t> inputValues);

  // --- accounting ---------------------------------------------------------
  [[nodiscard]] std::uint64_t cycles() const noexcept { return cycles_; }
  [[nodiscard]] std::uint64_t detections() const noexcept {
    return detections_;
  }
  [[nodiscard]] double detectionRate() const noexcept {
    return cycles_ ? static_cast<double>(detections_) /
                         static_cast<double>(cycles_)
                   : 0.0;
  }
  /// Mean clock cycles per completed operation including replay penalty.
  [[nodiscard]] double effectiveCyclesPerOp() const noexcept {
    return cycles_ ? 1.0 + recoveryPenaltyCycles_ * detectionRate() : 0.0;
  }
  /// Throughput relative to a safe clock of `safePeriodNs`: frequency gain
  /// discounted by replay cycles.
  [[nodiscard]] double throughputGain(double safePeriodNs) const noexcept {
    return (safePeriodNs / periodNs_) / effectiveCyclesPerOp();
  }

  [[nodiscard]] double periodNs() const noexcept { return periodNs_; }
  [[nodiscard]] double shadowMarginNs() const noexcept {
    return shadowMarginNs_;
  }

 private:
  TimedSimulator sim_;
  double periodNs_;
  double shadowMarginNs_;
  double recoveryPenaltyCycles_;
  std::uint64_t cycles_ = 0;
  std::uint64_t detections_ = 0;
};

}  // namespace oisa::timing
