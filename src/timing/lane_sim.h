// oisa_timing: 64-lane word-parallel timed event simulation.
//
// LaneTimedSimulator is the timed counterpart of netlist::BatchEvaluator:
// it simulates 64 independent instances ("lanes") of one annotated netlist
// at once. Every net holds a 64-bit value word (bit L = lane L's value),
// an event is (timePs, net) carrying the freshly recomputed 64-lane output
// word, and a gate schedules fanout only when *any* lane changes. Because
// all lanes share the netlist and its quantized delays, transition times
// coincide across lanes and one event covers every lane that toggles at
// that (time, net) — the denser the activity, the closer the engine gets
// to 64 scalar simulations for the price of one.
//
// Per-lane semantics are bit-exact versus the scalar TimedSimulator: a
// lane's committed waveform, sampled outputs and settle behavior equal a
// scalar run fed that lane's input stream (asserted by
// tests/lane_sim_test.cpp on random netlists and all paper design
// points). The key argument: when a gate re-evaluates because some lane's
// input changed, a quiet lane's recomputed bit equals the value it
// already scheduled — its inputs are unchanged since its own last event —
// so the extra commit is a per-lane no-op.
//
// All lanes advance on one shared time wheel and cursor: clock edges are
// common instants, and the strictly-before-edge latch semantics of the
// scalar engine hold lane for lane (LaneClockedSampler mirrors
// ClockedSampler). Structure comes from the shared
// netlist::CompiledNetlist, so scalar and lane engines over one design
// share a single compile.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "netlist/compiled_netlist.h"
#include "netlist/netlist.h"
#include "timing/delay_annotation.h"

namespace oisa::timing {

/// 64-lane integer-time event-driven simulator over one netlist.
class LaneTimedSimulator {
 public:
  /// Number of independent simulation lanes per instance.
  static constexpr std::size_t kLanes = 64;

  /// Compiles `nl` privately.
  LaneTimedSimulator(const netlist::Netlist& nl,
                     const DelayAnnotation& delays);

  /// Shares an existing compile with other engines over the same design.
  LaneTimedSimulator(std::shared_ptr<const netlist::CompiledNetlist> compiled,
                     const DelayAnnotation& delays);

  /// Applies primary-input words at the current simulation time: one word
  /// per primary input (declaration order), bit L = lane L's value.
  void applyInputs(std::span<const std::uint64_t> inputWords);

  /// Advances simulation, processing all events strictly before
  /// `currentTime + deltaPs`, then sets current time to that instant.
  void advancePs(TimePs deltaPs);

  /// Nanosecond convenience form (rounds the span up to the ps grid).
  void advance(double deltaNs) { advancePs(quantizeSpanPs(deltaNs)); }

  /// Processes every pending event in every lane. Returns the timestamp of
  /// the last processed event. Throws std::runtime_error with a diagnostic
  /// if the event budget is exceeded (non-settling or cyclic netlist).
  TimePs settlePs();

  /// Current value words of the primary outputs, in declaration order.
  [[nodiscard]] std::vector<std::uint64_t> sampleOutputs() const;

  /// Allocation-free sampling: writes the primary-output words into `out`.
  void sampleOutputsInto(std::vector<std::uint64_t>& out) const;

  /// Current 64-lane value word of an arbitrary net.
  [[nodiscard]] std::uint64_t netWord(netlist::NetId net) const noexcept {
    return values_[net.value];
  }

  [[nodiscard]] TimePs nowPs() const noexcept { return now_; }

  /// Committed events since construction (one event may change many
  /// lanes); laneTransitionsCommitted() counts the per-lane bit flips.
  [[nodiscard]] std::uint64_t eventsProcessed() const noexcept {
    return eventCount_;
  }
  [[nodiscard]] std::uint64_t laneTransitionsCommitted() const noexcept {
    return laneTransitions_;
  }

  /// Per-call committed-event cap for advancePs/settlePs — the
  /// non-settling/cyclic netlist guard (see TimedSimulator::setEventBudget).
  void setEventBudget(std::uint64_t maxEventsPerCall) noexcept {
    budget_ = maxEventsPerCall;
  }
  [[nodiscard]] std::uint64_t eventBudget() const noexcept { return budget_; }

  /// Resets every lane to the settled all-inputs-low state at time 0 with
  /// no events. A cyclic netlist instead powers up all-zero with the
  /// disagreeing gates scheduled to react, as in the scalar engine.
  /// Net forces (forceNet) survive the reset and are re-applied to the
  /// power-up state.
  void reset();

  /// Net-override hook on the wheel (stuck-at / defect injection): lanes
  /// set in `laneMask` of `net` are clamped to the corresponding bits of
  /// `bits` — the clamp rewrites every word committed to the net (input
  /// application, scheduled gate output, reset state), so readers and
  /// output sampling only ever see the forced value while healthy lanes
  /// keep simulating unchanged. Takes effect immediately at the current
  /// time: a clamp that changes the net's value schedules its readers
  /// like any other committed change. Repeated calls accumulate per net.
  void forceNet(netlist::NetId net, std::uint64_t laneMask,
                std::uint64_t bits);

  /// Drops every net force. Already-committed forced values stay on the
  /// nets until re-driven (or until reset()).
  void clearNetForces();

  [[nodiscard]] bool hasNetForces() const noexcept { return forced_; }

  /// All current net value words, indexed by NetId.
  [[nodiscard]] const std::vector<std::uint64_t>& netWords() const noexcept {
    return values_;
  }

  [[nodiscard]] const std::shared_ptr<const netlist::CompiledNetlist>&
  compiled() const noexcept {
    return compiled_;
  }

 private:
  /// Dense per-gate record: input/output net indices, quantized delay and
  /// gate kind, packed into 32 bytes so one reader evaluation touches one
  /// cache line (plus the shared values_ words it gathers).
  struct GateRec {
    std::array<std::uint32_t, 3> in{};
    std::uint32_t out = 0;
    std::uint32_t delayPs = 0;
    std::uint32_t kind = 0;  ///< netlist::GateKind
    std::uint32_t pad0_ = 0;
    std::uint32_t pad1_ = 0;
  };
  static constexpr TimePs kMaxDelayPs = TimePs{1} << 20;
  static constexpr std::uint64_t kDefaultEventBudget = std::uint64_t{1} << 22;

  /// One scheduled net change carrying the full 64-lane word; the
  /// timestamp is implied by the wheel slot.
  struct SlotEvent {
    std::uint32_t net;
    std::uint64_t word;
  };
  struct Slot {
    std::vector<SlotEvent> data;
    std::uint32_t len = 0;
  };

  /// Applies the net-override clamp to a word about to be scheduled or
  /// committed for `net`. The `forced_` flag keeps the fault-free hot
  /// path at one predictable branch.
  [[nodiscard]] inline std::uint64_t clampWord(std::uint32_t net,
                                               std::uint64_t word) const {
    if (!forced_) [[likely]] {
      return word;
    }
    return (word & ~forceMask_[net]) | forceBits_[net];
  }

#if defined(__GNUC__) || defined(__clang__)
  __attribute__((always_inline))
#endif
  inline void
  scheduleReaders(std::uint32_t net, TimePs atTime);
#if defined(__GNUC__) || defined(__clang__)
  __attribute__((always_inline))
#endif
  inline void
  drainSlot(TimePs t);
  void runUntil(TimePs horizon);
  [[noreturn]] void throwBudgetExceeded() const;

  std::shared_ptr<const netlist::CompiledNetlist> compiled_;
  std::vector<GateRec> gates_;
  std::vector<std::uint64_t> lastSched_;  ///< per gate: last scheduled word
  std::span<const std::uint32_t> fanoutOffset_;  // shared CSR (compiled_)
  std::span<const std::uint32_t> readers_;
  std::span<const std::uint32_t> inputNets_;
  std::vector<std::uint64_t> values_;  // indexed by NetId
  std::vector<Slot> wheel_;
  std::uint32_t wheelMask_ = 0;
  std::uint64_t pending_ = 0;
  TimePs now_ = 0;
  TimePs cursor_ = 0;
  std::uint64_t eventCount_ = 0;
  std::uint64_t laneTransitions_ = 0;
  std::uint64_t budget_ = kDefaultEventBudget;
  std::uint64_t failAt_ = ~std::uint64_t{0};
  /// Net-override state (empty until the first forceNet call).
  std::vector<std::uint64_t> forceMask_;
  std::vector<std::uint64_t> forceBits_;
  bool forced_ = false;
};

/// Drives a LaneTimedSimulator like 64 clocked register stages sharing one
/// clock: per step, 64 input vectors (one per lane, lane-major words) are
/// applied at a common edge and all lanes' outputs latch one period later.
/// The shared cursor makes the scalar engine's strictly-before-edge latch
/// semantics hold for every lane.
class LaneClockedSampler {
 public:
  LaneClockedSampler(std::shared_ptr<const netlist::CompiledNetlist> compiled,
                     const DelayAnnotation& delays, double periodNs);
  LaneClockedSampler(const netlist::Netlist& nl, const DelayAnnotation& delays,
                     double periodNs);

  /// Settles every lane on an initial vector (reset cycle; no sampling).
  void initialize(std::span<const std::uint64_t> inputWords);

  /// Applies the cycle's 64 input vectors, advances one period, and writes
  /// the latched primary-output words into `out`.
  void stepInto(std::span<const std::uint64_t> inputWords,
                std::vector<std::uint64_t>& out);

  [[nodiscard]] double periodNs() const noexcept { return periodNs_; }
  [[nodiscard]] TimePs periodPs() const noexcept { return periodPs_; }
  [[nodiscard]] LaneTimedSimulator& simulator() noexcept { return sim_; }

 private:
  LaneTimedSimulator sim_;
  double periodNs_;
  TimePs periodPs_;
};

}  // namespace oisa::timing
