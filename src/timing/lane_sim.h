// oisa_timing: word-parallel (W-lane) timed event simulation.
//
// LaneTimedSimulatorT is the timed counterpart of netlist::BatchEvaluatorT:
// it simulates W independent instances ("lanes") of one annotated netlist
// at once. Every net holds W/64 64-bit value words (bit L of sub-word j =
// lane 64j+L's value), an event is (timePs, net) carrying the freshly
// recomputed W-lane output block, and a gate schedules fanout only when
// *any* lane changes. Because all lanes share the netlist and its
// quantized delays, transition times coincide across lanes and one event
// covers every lane that toggles at that (time, net) — the denser the
// activity, the closer the engine gets to W scalar simulations for the
// price of one.
//
// The template parameter is a netlist::LaneBlock; the original 64-lane
// engine is the `LaneTimedSimulator` alias and stays the canonical
// reference (it keeps its uint64-word API via `requires` clauses). Wider
// widths are proven bit-exact against it by slicing blocks into 64-lane
// sub-runs — see tests/lane_width_test.cpp.
//
// Per-lane semantics are bit-exact versus the scalar TimedSimulator: a
// lane's committed waveform, sampled outputs and settle behavior equal a
// scalar run fed that lane's input stream (asserted by
// tests/lane_sim_test.cpp on random netlists and all paper design
// points). The key argument: when a gate re-evaluates because some lane's
// input changed, a quiet lane's recomputed bit equals the value it
// already scheduled — its inputs are unchanged since its own last event —
// so the extra commit is a per-lane no-op.
//
// All lanes advance on one shared time wheel and cursor: clock edges are
// common instants, and the strictly-before-edge latch semantics of the
// scalar engine hold lane for lane (LaneClockedSampler mirrors
// ClockedSampler). Structure comes from the shared
// netlist::CompiledNetlist, so scalar and lane engines over one design
// share a single compile.
#pragma once

#include <algorithm>
#include <array>
#include <bit>
#include <cstdint>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "netlist/compiled_netlist.h"
#include "netlist/lane_block.h"
#include "netlist/netlist.h"
#include "timing/delay_annotation.h"

namespace oisa::timing {

/// W-lane integer-time event-driven simulator over one netlist.
template <class Block>
class LaneTimedSimulatorT {
 public:
  /// Number of independent simulation lanes per instance.
  static constexpr std::size_t kLanes = Block::kBits;
  /// uint64 words per net in every lane-major span.
  static constexpr std::size_t kWords = Block::kWords;

  /// Compiles `nl` privately.
  LaneTimedSimulatorT(const netlist::Netlist& nl,
                      const DelayAnnotation& delays)
      : LaneTimedSimulatorT(netlist::CompiledNetlist::compile(nl), delays) {}

  /// Shares an existing compile with other engines over the same design.
  LaneTimedSimulatorT(
      std::shared_ptr<const netlist::CompiledNetlist> compiled,
      const DelayAnnotation& delays)
      : compiled_(std::move(compiled)) {
    if (delays.gateCount() != compiled_->gateCount()) {
      throw std::invalid_argument(
          "LaneTimedSimulator: annotation does not match netlist");
    }
    fanoutOffset_ = compiled_->fanoutOffsets();
    readers_ = compiled_->readers();
    inputNets_ = compiled_->inputNets();
    const std::vector<TimePs> delaysPs = delays.quantizedDelaysPs();
    TimePs maxDelay = 0;
    gates_.resize(compiled_->gateCount());
    for (std::uint32_t gi = 0; gi < gates_.size(); ++gi) {
      const netlist::CompiledNetlist::GateRec& g = compiled_->gate(gi);
      const TimePs d = delaysPs[gi];
      if (d < 0 || d > kMaxDelayPs) {
        throw std::invalid_argument(
            "LaneTimedSimulator: gate delay outside supported range "
            "[0, ~1us]");
      }
      GateRec& rec = gates_[gi];
      rec.in = g.in;
      rec.out = g.out;
      rec.delayPs = static_cast<std::uint32_t>(d);
      rec.kind = static_cast<std::uint32_t>(g.kind);
      maxDelay = std::max(maxDelay, d);
    }
    lastSched_.resize(gates_.size() * kWords);
    const auto slots =
        std::bit_ceil(static_cast<std::uint64_t>(maxDelay) + 1);
    wheel_.resize(slots);
    wheelMask_ = static_cast<std::uint32_t>(slots - 1);
    reset();
  }

  /// Applies primary-input words at the current simulation time: kWords
  /// words per primary input (declaration order, input-major), bit L of
  /// sub-word j = lane 64j+L's value.
  void applyInputs(std::span<const std::uint64_t> inputWords) {
    if (inputWords.size() != inputNets_.size() * kWords) {
      throw std::invalid_argument(
          "LaneTimedSimulator: wrong input word count");
    }
    for (std::size_t i = 0; i < inputNets_.size(); ++i) {
      const std::uint32_t net = inputNets_[i];
      const Block w =
          clampBlock(net, Block::load(inputWords.data() + i * kWords));
      const Block old = loadNet(net);
      if (!(old == w)) {
        laneTransitions_ +=
            static_cast<std::uint64_t>((old ^ w).popcount());
        storeNet(net, w);
        scheduleReaders(net, now_);
      }
    }
  }

  /// Advances simulation, processing all events strictly before
  /// `currentTime + deltaPs`, then sets current time to that instant.
  void advancePs(TimePs deltaPs) {
    if (deltaPs < 0) {
      throw std::invalid_argument("LaneTimedSimulator: negative advance");
    }
    armBudget();
    runUntil(now_ + deltaPs);
    now_ += deltaPs;
  }

  /// Nanosecond convenience form (rounds the span up to the ps grid).
  void advance(double deltaNs) { advancePs(quantizeSpanPs(deltaNs)); }

  /// Processes every pending event in every lane. Returns the timestamp of
  /// the last processed event. Throws std::runtime_error with a diagnostic
  /// if the event budget is exceeded (non-settling or cyclic netlist).
  TimePs settlePs() {
    armBudget();
    TimePs last = now_;
    while (pending_ > 0) {
      if (wheel_[cursor_ & wheelMask_].len != 0) last = cursor_;
      drainSlot(cursor_);
      ++cursor_;
    }
    now_ = std::max(now_, last);
    cursor_ = now_;  // re-arm: zero-delay events at `now_` must still drain
    return last;
  }

  /// Current value words of the primary outputs, in declaration order
  /// (output-major, kWords words each).
  [[nodiscard]] std::vector<std::uint64_t> sampleOutputs() const {
    std::vector<std::uint64_t> out;
    sampleOutputsInto(out);
    return out;
  }

  /// Allocation-free sampling: writes the primary-output words into `out`.
  void sampleOutputsInto(std::vector<std::uint64_t>& out) const {
    const auto pos = compiled_->outputNets();
    out.resize(pos.size() * kWords);
    for (std::size_t i = 0; i < pos.size(); ++i) {
      for (std::size_t j = 0; j < kWords; ++j) {
        out[i * kWords + j] = values_[std::size_t{pos[i]} * kWords + j];
      }
    }
  }

  /// Current 64-lane value word of an arbitrary net (64-lane engine only;
  /// wider engines slice netWords() by kWords).
  [[nodiscard]] std::uint64_t netWord(netlist::NetId net) const noexcept
    requires(Block::kWords == 1)
  {
    return values_[net.value];
  }

  [[nodiscard]] TimePs nowPs() const noexcept { return now_; }

  /// Committed events since construction (one event may change many
  /// lanes); laneTransitionsCommitted() counts the per-lane bit flips.
  [[nodiscard]] std::uint64_t eventsProcessed() const noexcept {
    return eventCount_;
  }
  [[nodiscard]] std::uint64_t laneTransitionsCommitted() const noexcept {
    return laneTransitions_;
  }

  /// Per-call committed-event cap for advancePs/settlePs — the
  /// non-settling/cyclic netlist guard (see TimedSimulator::setEventBudget).
  void setEventBudget(std::uint64_t maxEventsPerCall) noexcept {
    budget_ = maxEventsPerCall;
  }
  [[nodiscard]] std::uint64_t eventBudget() const noexcept { return budget_; }

  /// Resets every lane to the settled all-inputs-low state at time 0 with
  /// no events. A cyclic netlist instead powers up all-zero with the
  /// disagreeing gates scheduled to react, as in the scalar engine.
  /// Net forces (forceNet) survive the reset and are re-applied to the
  /// power-up state.
  void reset() {
    // Broadcast the compiled settled all-inputs-low state to every lane.
    const auto zero = compiled_->zeroState();
    values_.resize(zero.size() * kWords);
    for (std::size_t n = 0; n < zero.size(); ++n) {
      storeNet(static_cast<std::uint32_t>(n),
               clampBlock(static_cast<std::uint32_t>(n),
                          zero[n] ? Block::ones() : Block::zero()));
    }
    for (Slot& slot : wheel_) slot.len = 0;
    pending_ = 0;
    now_ = 0;
    cursor_ = 0;
    eventCount_ = 0;
    laneTransitions_ = 0;
    for (std::uint32_t gi = 0; gi < gates_.size(); ++gi) {
      const GateRec& rec = gates_[gi];
      const Block out = clampBlock(
          rec.out, netlist::evalGateBlock<Block>(
                       static_cast<netlist::GateKind>(rec.kind),
                       loadNet(rec.in[0]), loadNet(rec.in[1]),
                       loadNet(rec.in[2])));
      out.store(lastSched_.data() + std::size_t{gi} * kWords);
      if (!(out == loadNet(rec.out))) [[unlikely]] {
        pushEvent(wheel_[rec.delayPs & wheelMask_], rec.out, out);
      }
    }
  }

  /// Net-override hook on the wheel (stuck-at / defect injection): lanes
  /// set in `laneMask` of `net` are clamped to the corresponding bits of
  /// `bits` — the clamp rewrites every word committed to the net (input
  /// application, scheduled gate output, reset state), so readers and
  /// output sampling only ever see the forced value while healthy lanes
  /// keep simulating unchanged. The 64-bit mask/bits pattern applies to
  /// every 64-lane sub-word alike, so a fault injected "in lane L" exists
  /// in lane L of each sub-block — the convention the defect scan's
  /// stream-chunking relies on. Takes effect immediately at the current
  /// time: a clamp that changes the net's value schedules its readers
  /// like any other committed change. Repeated calls accumulate per net.
  void forceNet(netlist::NetId net, std::uint64_t laneMask,
                std::uint64_t bits) {
    if (net.value >= compiled_->netCount()) {
      throw std::invalid_argument(
          "LaneTimedSimulator::forceNet: net index out of range (fault from "
          "another netlist?)");
    }
    if (forceMask_.empty()) {
      forceMask_.assign(values_.size(), 0);
      forceBits_.assign(values_.size(), 0);
    }
    const Block mask =
        Block::splat(laneMask) |
        Block::load(forceMask_.data() + std::size_t{net.value} * kWords);
    const Block oldBits =
        Block::load(forceBits_.data() + std::size_t{net.value} * kWords);
    const Block newBits = (oldBits & ~Block::splat(laneMask)) |
                          (Block::splat(bits) & Block::splat(laneMask));
    mask.store(forceMask_.data() + std::size_t{net.value} * kWords);
    newBits.store(forceBits_.data() + std::size_t{net.value} * kWords);
    forced_ = true;
    // Commit the clamp immediately at the current time, exactly like an
    // input change: readers of a net whose value flips react after their
    // own delays.
    const Block old = loadNet(net.value);
    const Block w = clampBlock(net.value, old);
    if (!(old == w)) {
      laneTransitions_ += static_cast<std::uint64_t>((old ^ w).popcount());
      storeNet(net.value, w);
      scheduleReaders(net.value, now_);
    }
  }

  /// Drops every net force. Already-committed forced values stay on the
  /// nets until re-driven (or until reset()).
  void clearNetForces() {
    if (!forced_) return;
    forced_ = false;
    std::fill(forceMask_.begin(), forceMask_.end(), 0);
    std::fill(forceBits_.begin(), forceBits_.end(), 0);
  }

  [[nodiscard]] bool hasNetForces() const noexcept { return forced_; }

  /// All current net value words, indexed by NetId * kWords.
  [[nodiscard]] const std::vector<std::uint64_t>& netWords() const noexcept {
    return values_;
  }

  [[nodiscard]] const std::shared_ptr<const netlist::CompiledNetlist>&
  compiled() const noexcept {
    return compiled_;
  }

 private:
  /// Dense per-gate record: input/output net indices, quantized delay and
  /// gate kind, packed into 32 bytes so one reader evaluation touches one
  /// cache line (plus the shared values_ words it gathers).
  struct GateRec {
    std::array<std::uint32_t, 3> in{};
    std::uint32_t out = 0;
    std::uint32_t delayPs = 0;
    std::uint32_t kind = 0;  ///< netlist::GateKind
    std::uint32_t pad0_ = 0;
    std::uint32_t pad1_ = 0;
  };
  static constexpr TimePs kMaxDelayPs = TimePs{1} << 20;
  static constexpr std::uint64_t kDefaultEventBudget = std::uint64_t{1}
                                                       << 22;

  /// One scheduled net change carrying the full W-lane block; the
  /// timestamp is implied by the wheel slot.
  struct SlotEvent {
    std::uint32_t net;
    std::array<std::uint64_t, kWords> word;
  };
  struct Slot {
    std::vector<SlotEvent> data;
    std::uint32_t len = 0;
  };

  [[nodiscard]] inline Block loadNet(std::uint32_t net) const {
    return Block::load(values_.data() + std::size_t{net} * kWords);
  }
  inline void storeNet(std::uint32_t net, Block w) {
    w.store(values_.data() + std::size_t{net} * kWords);
  }

  /// Applies the net-override clamp to a block about to be scheduled or
  /// committed for `net`. The `forced_` flag keeps the fault-free hot
  /// path at one predictable branch.
  [[nodiscard]] inline Block clampBlock(std::uint32_t net, Block word) const {
    if (!forced_) [[likely]] {
      return word;
    }
    const Block mask =
        Block::load(forceMask_.data() + std::size_t{net} * kWords);
    const Block bits =
        Block::load(forceBits_.data() + std::size_t{net} * kWords);
    return (word & ~mask) | bits;
  }

  inline void pushEvent(Slot& slot, std::uint32_t net, Block word) {
    if (slot.len == slot.data.size()) [[unlikely]] {
      slot.data.resize(std::max<std::size_t>(8, slot.data.size() * 2));
    }
    SlotEvent& e = slot.data[slot.len];
    e.net = net;
    word.store(e.word.data());
    ++slot.len;
    ++pending_;
  }

#if defined(__GNUC__) || defined(__clang__)
  __attribute__((always_inline))
#endif
  inline void
  scheduleReaders(std::uint32_t net, TimePs atTime) {
    const std::uint32_t begin = fanoutOffset_[net];
    const std::uint32_t end = fanoutOffset_[net + 1];
    for (std::uint32_t i = begin; i < end; ++i) {
      const std::uint32_t g = readers_[i] >> 3;
      const GateRec& rec = gates_[g];
      // Recompute the full W-lane output block. Lanes whose inputs did not
      // change recompute the value they already scheduled, so the dedup
      // below drops pure no-ops and a partially-changed block re-commits
      // quiet lanes' bits harmlessly. Forced (stuck) lanes of the output
      // net are clamped before the dedup, so a defective net never
      // schedules its healthy value.
      const Block out = clampBlock(
          rec.out, netlist::evalGateBlock<Block>(
                       static_cast<netlist::GateKind>(rec.kind),
                       loadNet(rec.in[0]), loadNet(rec.in[1]),
                       loadNet(rec.in[2])));
      const Block last =
          Block::load(lastSched_.data() + std::size_t{g} * kWords);
      if (out == last) continue;
      out.store(lastSched_.data() + std::size_t{g} * kWords);
      pushEvent(wheel_[(atTime + rec.delayPs) & wheelMask_], rec.out, out);
    }
  }

#if defined(__GNUC__) || defined(__clang__)
  __attribute__((always_inline))
#endif
  inline void
  drainSlot(TimePs t) {
    Slot& slot = wheel_[t & wheelMask_];
    // Zero-delay gates append to this same slot mid-drain; the index loop
    // picks those up in schedule order (an append may reallocate the
    // backing store, so the event is copied out first).
    for (std::uint32_t i = 0; i < slot.len; ++i) {
      const SlotEvent e = slot.data[i];
      // Re-clamp at commit: an event scheduled before a forceNet call
      // still carries the healthy word.
      const Block word = clampBlock(e.net, Block::load(e.word.data()));
      const Block old = loadNet(e.net);
      if (old == word) continue;
      storeNet(e.net, word);
      laneTransitions_ +=
          static_cast<std::uint64_t>((old ^ word).popcount());
      if (++eventCount_ > failAt_) [[unlikely]] {
        throwBudgetExceeded();
      }
      scheduleReaders(e.net, t);
    }
    pending_ -= slot.len;
    slot.len = 0;
  }

  void runUntil(TimePs horizon) {
    while (pending_ > 0 && cursor_ < horizon) {
      drainSlot(cursor_);
      ++cursor_;
    }
    if (cursor_ < horizon) cursor_ = horizon;  // nothing pending: skip ahead
  }

  /// Saturating: a budget of ~0 ("unlimited") must not wrap failAt_.
  inline void armBudget() noexcept {
    failAt_ = eventCount_ > ~std::uint64_t{0} - budget_
                  ? ~std::uint64_t{0}
                  : eventCount_ + budget_;
  }

  [[noreturn]] void throwBudgetExceeded() const {
    throw std::runtime_error(
        "LaneTimedSimulator: event budget of " + std::to_string(budget_) +
        " committed events exceeded within one advance/settle call — "
        "non-settling or cyclic netlist? (the simulator state is "
        "inconsistent; call reset() before reuse)");
  }

  std::shared_ptr<const netlist::CompiledNetlist> compiled_;
  std::vector<GateRec> gates_;
  /// Per gate: last scheduled block (kWords words each).
  std::vector<std::uint64_t> lastSched_;
  std::span<const std::uint32_t> fanoutOffset_;  // shared CSR (compiled_)
  std::span<const std::uint32_t> readers_;
  std::span<const std::uint32_t> inputNets_;
  std::vector<std::uint64_t> values_;  // indexed by NetId * kWords
  std::vector<Slot> wheel_;
  std::uint32_t wheelMask_ = 0;
  std::uint64_t pending_ = 0;
  TimePs now_ = 0;
  TimePs cursor_ = 0;
  std::uint64_t eventCount_ = 0;
  std::uint64_t laneTransitions_ = 0;
  std::uint64_t budget_ = kDefaultEventBudget;
  std::uint64_t failAt_ = ~std::uint64_t{0};
  /// Net-override state (empty until the first forceNet call),
  /// kWords words per net.
  std::vector<std::uint64_t> forceMask_;
  std::vector<std::uint64_t> forceBits_;
  bool forced_ = false;
};

/// The canonical 64-lane reference engine (original API: one word per
/// net/input/output).
using LaneTimedSimulator = LaneTimedSimulatorT<netlist::LaneBlock64>;

/// Drives a LaneTimedSimulatorT like W clocked register stages sharing one
/// clock: per step, W input vectors (one per lane, lane-major words) are
/// applied at a common edge and all lanes' outputs latch one period later.
/// The shared cursor makes the scalar engine's strictly-before-edge latch
/// semantics hold for every lane.
template <class Block>
class LaneClockedSamplerT {
 public:
  static constexpr std::size_t kLanes = Block::kBits;
  static constexpr std::size_t kWords = Block::kWords;

  LaneClockedSamplerT(
      std::shared_ptr<const netlist::CompiledNetlist> compiled,
      const DelayAnnotation& delays, double periodNs)
      : sim_(std::move(compiled), delays),
        periodNs_(periodNs),
        periodPs_(quantizeSpanPs(periodNs)) {
    if (periodNs <= 0.0 || periodPs_ <= 0) {
      throw std::invalid_argument(
          "LaneClockedSampler: period must be positive");
    }
  }
  LaneClockedSamplerT(const netlist::Netlist& nl,
                      const DelayAnnotation& delays, double periodNs)
      : LaneClockedSamplerT(netlist::CompiledNetlist::compile(nl), delays,
                            periodNs) {}

  /// Settles every lane on an initial vector (reset cycle; no sampling).
  void initialize(std::span<const std::uint64_t> inputWords) {
    sim_.applyInputs(inputWords);
    (void)sim_.settlePs();
  }

  /// Applies the cycle's input vectors, advances one period, and writes
  /// the latched primary-output words into `out`.
  void stepInto(std::span<const std::uint64_t> inputWords,
                std::vector<std::uint64_t>& out) {
    sim_.applyInputs(inputWords);
    sim_.advancePs(periodPs_);
    sim_.sampleOutputsInto(out);
  }

  [[nodiscard]] double periodNs() const noexcept { return periodNs_; }
  [[nodiscard]] TimePs periodPs() const noexcept { return periodPs_; }
  [[nodiscard]] LaneTimedSimulatorT<Block>& simulator() noexcept {
    return sim_;
  }

 private:
  LaneTimedSimulatorT<Block> sim_;
  double periodNs_;
  TimePs periodPs_;
};

using LaneClockedSampler = LaneClockedSamplerT<netlist::LaneBlock64>;

// Portable widths are instantiated once in lane_sim.cpp (baseline flags);
// the intrinsic widths live in the per-arch dispatch TUs.
extern template class LaneTimedSimulatorT<netlist::LaneBlock<64>>;
extern template class LaneTimedSimulatorT<netlist::LaneBlock<256>>;
extern template class LaneTimedSimulatorT<netlist::LaneBlock<512>>;
extern template class LaneClockedSamplerT<netlist::LaneBlock<64>>;
extern template class LaneClockedSamplerT<netlist::LaneBlock<256>>;
extern template class LaneClockedSamplerT<netlist::LaneBlock<512>>;

}  // namespace oisa::timing
