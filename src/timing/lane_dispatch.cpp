#include "timing/lane_dispatch.h"

#include <stdexcept>

#include "timing/lane_dispatch_impl.h"

namespace oisa::timing {

using netlist::LaneArch;
using netlist::LaneBlock;
using netlist::LaneSelection;

std::unique_ptr<AnyLaneSampler> makeLaneSampler(
    std::shared_ptr<const netlist::CompiledNetlist> compiled,
    const DelayAnnotation& delays, double periodNs) {
  return makeLaneSampler(std::move(compiled), delays, periodNs,
                         netlist::selectLaneWidth());
}

std::unique_ptr<AnyLaneSampler> makeLaneSampler(
    std::shared_ptr<const netlist::CompiledNetlist> compiled,
    const DelayAnnotation& delays, double periodNs, LaneSelection sel) {
  if (sel.arch != LaneArch::Portable &&
      !netlist::cpuSupportsLaneArch(sel.arch)) {
    throw std::invalid_argument("makeLaneSampler: variant " +
                                netlist::laneSelectionName(sel) +
                                " is not runnable on this build/CPU");
  }
  switch (sel.arch) {
    case LaneArch::Avx2:
#if defined(OISA_HAVE_AVX2)
      return detail::makeLaneSamplerAvx2(std::move(compiled), delays,
                                         periodNs);
#else
      break;
#endif
    case LaneArch::Avx512:
#if defined(OISA_HAVE_AVX512)
      return detail::makeLaneSamplerAvx512(std::move(compiled), delays,
                                           periodNs);
#else
      break;
#endif
    case LaneArch::Portable:
      switch (sel.width) {
        case 64:
          return std::make_unique<
              detail::LaneSamplerAdapter<LaneBlock<64>>>(
              std::move(compiled), delays, periodNs);
        case 256:
          return std::make_unique<
              detail::LaneSamplerAdapter<LaneBlock<256>>>(
              std::move(compiled), delays, periodNs);
        case 512:
          return std::make_unique<
              detail::LaneSamplerAdapter<LaneBlock<512>>>(
              std::move(compiled), delays, periodNs);
        default: break;
      }
      break;
  }
  throw std::invalid_argument("makeLaneSampler: unsupported variant " +
                              netlist::laneSelectionName(sel));
}

}  // namespace oisa::timing
