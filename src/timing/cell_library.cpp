#include "timing/cell_library.h"

namespace oisa::timing {

CellLibrary CellLibrary::generic65() {
  using netlist::GateKind;
  CellLibrary lib;
  auto set = [&lib](GateKind k, double intrinsic, double perFanout,
                    double area) {
    lib.cell(k) = CellTiming{intrinsic, perFanout, area};
  };
  // Delays in ns, calibrated so a 32-bit Sklansky adder sits just below the
  // paper's 0.3 ns (3.3 GHz) constraint; areas in NAND2-equivalents.
  set(GateKind::Const0, 0.000, 0.0000, 0.0);
  set(GateKind::Const1, 0.000, 0.0000, 0.0);
  set(GateKind::Buf, 0.014, 0.0015, 1.0);
  set(GateKind::Inv, 0.011, 0.0015, 0.5);
  set(GateKind::And2, 0.021, 0.0020, 1.5);
  set(GateKind::Or2, 0.021, 0.0020, 1.5);
  set(GateKind::Nand2, 0.016, 0.0020, 1.0);
  set(GateKind::Nor2, 0.016, 0.0020, 1.0);
  set(GateKind::Xor2, 0.029, 0.0025, 2.5);
  set(GateKind::Xnor2, 0.029, 0.0025, 2.5);
  set(GateKind::And3, 0.026, 0.0022, 2.0);
  set(GateKind::Or3, 0.026, 0.0022, 2.0);
  set(GateKind::Aoi21, 0.022, 0.0022, 1.5);
  set(GateKind::Oai21, 0.022, 0.0022, 1.5);
  set(GateKind::Mux2, 0.024, 0.0025, 2.0);
  set(GateKind::Maj3, 0.025, 0.0020, 2.5);
  return lib;
}

}  // namespace oisa::timing
