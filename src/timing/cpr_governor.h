// oisa_timing: online clock-period-reduction governor.
//
// The paper's claim is that bit-level timing errors under overclocking
// are predictable; this is the controller that makes the claim
// operational. Instead of Razor-style detect-and-replay hardware (paper
// refs [4], [13]), the governor consumes the *predicted* flip rate of
// each evaluation window — produced by the flat-bank
// BitLevelPredictor::predictFlipsBlock hot path at nanoseconds per
// record — and walks a ladder of CPR (clock-period-reduction) levels
// against a residual-error budget:
//
//   rate above budget            -> step DOWN one level immediately
//   rate well under budget       -> after `holdWindows` consecutive such
//     (<= target*stepUpFraction)    windows, step UP one level
//   anywhere in between          -> hold
//
// The asymmetric hysteresis (instant retreat, patient advance) keeps the
// loop from oscillating around the budget boundary while still reclaiming
// guardband quickly when the workload calms down. Stats track how long
// the clock sat at each level, from which the mean period and the
// guardband reclaimed relative to sign-off fall out — the curves
// examples/adaptive_overclocking emits.
#pragma once

#include <cstdint>
#include <vector>

namespace oisa::timing {

struct CprGovernorConfig {
  /// Ascending overclock depths in percent of the sign-off period
  /// (0 = sign-off clock). Must be non-empty and strictly increasing.
  std::vector<double> cprLevels;
  /// Sign-off clock period; level L runs at signOff * (1 - cpr/100).
  double signOffPeriodNs = 1.0;
  /// Residual-error budget: predicted flips per record above which a
  /// window is over budget.
  double targetFlipRate = 1e-3;
  /// A window is "calm" when rate <= targetFlipRate * stepUpFraction;
  /// only calm windows count toward deepening. In [0, 1).
  double stepUpFraction = 0.5;
  /// Consecutive calm windows required before stepping deeper.
  int holdWindows = 4;
  /// Ladder index to start at.
  std::size_t startLevel = 0;
};

class CprGovernor {
 public:
  enum class Action { Hold, StepUp, StepDown };

  /// Throws std::invalid_argument on a malformed config (empty or
  /// non-ascending ladder, out-of-range fractions, startLevel past the
  /// ladder).
  explicit CprGovernor(CprGovernorConfig config);

  [[nodiscard]] std::size_t level() const noexcept { return level_; }
  [[nodiscard]] double cprPercent() const noexcept {
    return config_.cprLevels[level_];
  }
  /// The clock period currently in force.
  [[nodiscard]] double periodNs() const noexcept {
    return config_.signOffPeriodNs * (1.0 - cprPercent() / 100.0);
  }
  [[nodiscard]] const CprGovernorConfig& config() const noexcept {
    return config_;
  }

  /// One evaluation window just ran at the current level and the
  /// predictor scored it at `predictedFlipRate` flips per record.
  /// Accounts the window, then applies the control law and returns what
  /// the clock does for the *next* window.
  Action observe(double predictedFlipRate);

  struct Stats {
    std::uint64_t windows = 0;
    std::uint64_t stepUps = 0;
    std::uint64_t stepDowns = 0;
    std::uint64_t overBudgetWindows = 0;
    /// Sum over windows of the period in force — meanPeriodNs() is the
    /// energy-proxy numerator (dynamic power tracks f = 1/T).
    double periodNsSum = 0.0;
    std::vector<std::uint64_t> windowsAtLevel;

    [[nodiscard]] double meanPeriodNs() const noexcept {
      return windows == 0 ? 0.0
                          : periodNsSum / static_cast<double>(windows);
    }
  };

  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

  /// Mean guardband reclaimed so far, percent of the sign-off period:
  /// 100 * (1 - meanPeriod/signOff). 0 when no window has run.
  [[nodiscard]] double guardbandReclaimedPercent() const noexcept;

 private:
  CprGovernorConfig config_;
  std::size_t level_ = 0;
  int calmStreak_ = 0;
  Stats stats_;
};

}  // namespace oisa::timing
