#include "timing/razor.h"

#include <stdexcept>

namespace oisa::timing {

RazorSampler::RazorSampler(const netlist::Netlist& nl,
                           const DelayAnnotation& delays, double periodNs,
                           double shadowMarginNs,
                           double recoveryPenaltyCycles)
    : sim_(nl, delays),
      periodNs_(periodNs),
      shadowMarginNs_(shadowMarginNs),
      recoveryPenaltyCycles_(recoveryPenaltyCycles) {
  if (periodNs <= 0.0 || shadowMarginNs < 0.0 || recoveryPenaltyCycles < 0.0) {
    throw std::invalid_argument("RazorSampler: bad parameters");
  }
}

void RazorSampler::initialize(std::span<const std::uint8_t> inputValues) {
  sim_.applyInputs(inputValues);
  (void)sim_.settle();
}

RazorSampler::StepResult RazorSampler::step(
    std::span<const std::uint8_t> inputValues) {
  sim_.applyInputs(inputValues);
  sim_.advance(periodNs_);
  StepResult result;
  result.main = sim_.sampleOutputs();
  sim_.advance(shadowMarginNs_);
  result.shadow = sim_.sampleOutputs();
  result.detected = result.main != result.shadow;
  ++cycles_;
  if (result.detected) ++detections_;
  return result;
}

}  // namespace oisa::timing
