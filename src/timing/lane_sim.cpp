#include "timing/lane_sim.h"

namespace oisa::timing {

// The 64-lane reference plus the portable wide fallbacks; intrinsic widths
// are instantiated only in lane_sim_avx2.cpp / lane_sim_avx512.cpp.
template class LaneTimedSimulatorT<netlist::LaneBlock<64>>;
template class LaneTimedSimulatorT<netlist::LaneBlock<256>>;
template class LaneTimedSimulatorT<netlist::LaneBlock<512>>;
template class LaneClockedSamplerT<netlist::LaneBlock<64>>;
template class LaneClockedSamplerT<netlist::LaneBlock<256>>;
template class LaneClockedSamplerT<netlist::LaneBlock<512>>;

}  // namespace oisa::timing
