#include "timing/lane_sim.h"

#include <algorithm>
#include <bit>
#include <stdexcept>
#include <string>

#include "netlist/batch_evaluator.h"  // evalGateWord

namespace oisa::timing {

using netlist::CompiledNetlist;
using netlist::GateKind;
using netlist::Netlist;

LaneTimedSimulator::LaneTimedSimulator(const Netlist& nl,
                                       const DelayAnnotation& delays)
    : LaneTimedSimulator(CompiledNetlist::compile(nl), delays) {}

LaneTimedSimulator::LaneTimedSimulator(
    std::shared_ptr<const CompiledNetlist> compiled,
    const DelayAnnotation& delays)
    : compiled_(std::move(compiled)) {
  if (delays.gateCount() != compiled_->gateCount()) {
    throw std::invalid_argument(
        "LaneTimedSimulator: annotation does not match netlist");
  }
  fanoutOffset_ = compiled_->fanoutOffsets();
  readers_ = compiled_->readers();
  inputNets_ = compiled_->inputNets();
  const std::vector<TimePs> delaysPs = delays.quantizedDelaysPs();
  TimePs maxDelay = 0;
  gates_.resize(compiled_->gateCount());
  for (std::uint32_t gi = 0; gi < gates_.size(); ++gi) {
    const CompiledNetlist::GateRec& g = compiled_->gate(gi);
    const TimePs d = delaysPs[gi];
    if (d < 0 || d > kMaxDelayPs) {
      throw std::invalid_argument(
          "LaneTimedSimulator: gate delay outside supported range [0, ~1us]");
    }
    GateRec& rec = gates_[gi];
    rec.in = g.in;
    rec.out = g.out;
    rec.delayPs = static_cast<std::uint32_t>(d);
    rec.kind = static_cast<std::uint32_t>(g.kind);
    maxDelay = std::max(maxDelay, d);
  }
  lastSched_.resize(gates_.size());
  const auto slots = std::bit_ceil(static_cast<std::uint64_t>(maxDelay) + 1);
  wheel_.resize(slots);
  wheelMask_ = static_cast<std::uint32_t>(slots - 1);
  reset();
}

void LaneTimedSimulator::reset() {
  // Broadcast the compiled settled all-inputs-low state to every lane.
  // Cyclic netlists power up all-zero instead; as in the scalar engine,
  // gates disagreeing with that state are scheduled to react so the first
  // advance/settle converges to a logic-consistent quiescent state (or
  // trips the event budget if the loop oscillates).
  const auto zero = compiled_->zeroState();
  values_.resize(zero.size());
  for (std::size_t n = 0; n < zero.size(); ++n) {
    values_[n] =
        clampWord(static_cast<std::uint32_t>(n),
                  zero[n] ? ~std::uint64_t{0} : 0);
  }
  for (Slot& slot : wheel_) slot.len = 0;
  pending_ = 0;
  now_ = 0;
  cursor_ = 0;
  eventCount_ = 0;
  laneTransitions_ = 0;
  for (std::uint32_t gi = 0; gi < gates_.size(); ++gi) {
    const GateRec& rec = gates_[gi];
    const std::uint64_t out = clampWord(
        rec.out,
        netlist::evalGateWord(static_cast<GateKind>(rec.kind),
                              values_[rec.in[0]], values_[rec.in[1]],
                              values_[rec.in[2]]));
    lastSched_[gi] = out;
    if (out != values_[rec.out]) [[unlikely]] {
      Slot& slot = wheel_[rec.delayPs & wheelMask_];
      if (slot.len == slot.data.size()) {
        slot.data.resize(std::max<std::size_t>(8, slot.data.size() * 2));
      }
      slot.data[slot.len] = SlotEvent{rec.out, out};
      ++slot.len;
      ++pending_;
    }
  }
}

void LaneTimedSimulator::applyInputs(
    std::span<const std::uint64_t> inputWords) {
  if (inputWords.size() != inputNets_.size()) {
    throw std::invalid_argument(
        "LaneTimedSimulator: wrong input word count");
  }
  for (std::size_t i = 0; i < inputNets_.size(); ++i) {
    const std::uint32_t net = inputNets_[i];
    const std::uint64_t w = clampWord(net, inputWords[i]);
    if (values_[net] != w) {
      laneTransitions_ +=
          static_cast<std::uint64_t>(std::popcount(values_[net] ^ w));
      values_[net] = w;
      scheduleReaders(net, now_);
    }
  }
}

void LaneTimedSimulator::scheduleReaders(std::uint32_t net, TimePs atTime) {
  const std::uint32_t begin = fanoutOffset_[net];
  const std::uint32_t end = fanoutOffset_[net + 1];
  for (std::uint32_t i = begin; i < end; ++i) {
    const std::uint32_t g = readers_[i] >> 3;
    const GateRec& rec = gates_[g];
    // Recompute the full 64-lane output word. Lanes whose inputs did not
    // change recompute the value they already scheduled, so the dedup
    // below (`changed == 0`) drops pure no-ops and a partially-changed
    // word re-commits quiet lanes' bits harmlessly. Forced (stuck) lanes
    // of the output net are clamped before the dedup, so a defective net
    // never schedules its healthy value.
    const std::uint64_t out = clampWord(
        rec.out,
        netlist::evalGateWord(static_cast<GateKind>(rec.kind),
                              values_[rec.in[0]], values_[rec.in[1]],
                              values_[rec.in[2]]));
    const std::uint64_t changed = out ^ lastSched_[g];
    if (changed == 0) continue;
    lastSched_[g] = out;
    Slot& slot = wheel_[(atTime + rec.delayPs) & wheelMask_];
    if (slot.len == slot.data.size()) [[unlikely]] {
      slot.data.resize(std::max<std::size_t>(8, slot.data.size() * 2));
    }
    slot.data[slot.len] = SlotEvent{rec.out, out};
    ++slot.len;
    ++pending_;
  }
}

void LaneTimedSimulator::forceNet(netlist::NetId net, std::uint64_t laneMask,
                                  std::uint64_t bits) {
  if (net.value >= values_.size()) {
    throw std::invalid_argument(
        "LaneTimedSimulator::forceNet: net index out of range (fault from "
        "another netlist?)");
  }
  if (forceMask_.empty()) {
    forceMask_.assign(values_.size(), 0);
    forceBits_.assign(values_.size(), 0);
  }
  forceMask_[net.value] |= laneMask;
  forceBits_[net.value] =
      (forceBits_[net.value] & ~laneMask) | (bits & laneMask);
  forced_ = true;
  // Commit the clamp immediately at the current time, exactly like an
  // input change: readers of a net whose value flips react after their
  // own delays.
  const std::uint64_t w = clampWord(net.value, values_[net.value]);
  if (values_[net.value] != w) {
    laneTransitions_ +=
        static_cast<std::uint64_t>(std::popcount(values_[net.value] ^ w));
    values_[net.value] = w;
    scheduleReaders(net.value, now_);
  }
}

void LaneTimedSimulator::clearNetForces() {
  if (!forced_) return;
  forced_ = false;
  std::fill(forceMask_.begin(), forceMask_.end(), 0);
  std::fill(forceBits_.begin(), forceBits_.end(), 0);
}

void LaneTimedSimulator::drainSlot(TimePs t) {
  Slot& slot = wheel_[t & wheelMask_];
  // Zero-delay gates append to this same slot mid-drain; the index loop
  // picks those up in schedule order (an append may reallocate the backing
  // store, so the event is copied out first).
  for (std::uint32_t i = 0; i < slot.len; ++i) {
    const SlotEvent e = slot.data[i];
    // Re-clamp at commit: an event scheduled before a forceNet call still
    // carries the healthy word.
    const std::uint64_t word = clampWord(e.net, e.word);
    const std::uint64_t old = values_[e.net];
    if (old == word) continue;
    values_[e.net] = word;
    laneTransitions_ +=
        static_cast<std::uint64_t>(std::popcount(old ^ word));
    if (++eventCount_ > failAt_) [[unlikely]] {
      throwBudgetExceeded();
    }
    scheduleReaders(e.net, t);
  }
  pending_ -= slot.len;
  slot.len = 0;
}

void LaneTimedSimulator::throwBudgetExceeded() const {
  throw std::runtime_error(
      "LaneTimedSimulator: event budget of " + std::to_string(budget_) +
      " committed events exceeded within one advance/settle call — "
      "non-settling or cyclic netlist? (the simulator state is "
      "inconsistent; call reset() before reuse)");
}

void LaneTimedSimulator::runUntil(TimePs horizon) {
  while (pending_ > 0 && cursor_ < horizon) {
    drainSlot(cursor_);
    ++cursor_;
  }
  if (cursor_ < horizon) cursor_ = horizon;  // nothing pending: skip ahead
}

void LaneTimedSimulator::advancePs(TimePs deltaPs) {
  if (deltaPs < 0) {
    throw std::invalid_argument("LaneTimedSimulator: negative advance");
  }
  // Saturating: a budget of ~0 ("unlimited") must not wrap failAt_.
  failAt_ = eventCount_ > ~std::uint64_t{0} - budget_
                ? ~std::uint64_t{0}
                : eventCount_ + budget_;
  runUntil(now_ + deltaPs);
  now_ += deltaPs;
}

TimePs LaneTimedSimulator::settlePs() {
  // Saturating: a budget of ~0 ("unlimited") must not wrap failAt_.
  failAt_ = eventCount_ > ~std::uint64_t{0} - budget_
                ? ~std::uint64_t{0}
                : eventCount_ + budget_;
  TimePs last = now_;
  while (pending_ > 0) {
    if (wheel_[cursor_ & wheelMask_].len != 0) last = cursor_;
    drainSlot(cursor_);
    ++cursor_;
  }
  now_ = std::max(now_, last);
  cursor_ = now_;  // re-arm: zero-delay events at `now_` must still drain
  return last;
}

std::vector<std::uint64_t> LaneTimedSimulator::sampleOutputs() const {
  std::vector<std::uint64_t> out;
  sampleOutputsInto(out);
  return out;
}

void LaneTimedSimulator::sampleOutputsInto(
    std::vector<std::uint64_t>& out) const {
  const auto pos = compiled_->outputNets();
  out.resize(pos.size());
  for (std::size_t i = 0; i < pos.size(); ++i) {
    out[i] = values_[pos[i]];
  }
}

LaneClockedSampler::LaneClockedSampler(
    std::shared_ptr<const CompiledNetlist> compiled,
    const DelayAnnotation& delays, double periodNs)
    : sim_(std::move(compiled), delays),
      periodNs_(periodNs),
      periodPs_(quantizeSpanPs(periodNs)) {
  if (periodNs <= 0.0 || periodPs_ <= 0) {
    throw std::invalid_argument("LaneClockedSampler: period must be positive");
  }
}

LaneClockedSampler::LaneClockedSampler(const Netlist& nl,
                                       const DelayAnnotation& delays,
                                       double periodNs)
    : LaneClockedSampler(CompiledNetlist::compile(nl), delays, periodNs) {}

void LaneClockedSampler::initialize(
    std::span<const std::uint64_t> inputWords) {
  sim_.applyInputs(inputWords);
  (void)sim_.settlePs();
}

void LaneClockedSampler::stepInto(std::span<const std::uint64_t> inputWords,
                                  std::vector<std::uint64_t>& out) {
  sim_.applyInputs(inputWords);
  sim_.advancePs(periodPs_);
  sim_.sampleOutputsInto(out);
}

}  // namespace oisa::timing
