// oisa_timing: technology-style cell characterization.
//
// Stand-in for the paper's industrial 65 nm library: every gate kind gets an
// intrinsic propagation delay, a per-fanout load penalty and an area cost.
// The `generic65()` values are calibrated (and locked by a test) so that a
// 32-bit parallel-prefix adder lands just under the paper's 0.3 ns
// constraint and the ISA designs order by path depth exactly as the paper's
// synthesized circuits do.
#pragma once

#include <array>

#include "netlist/gate.h"

namespace oisa::timing {

/// Timing/area characterization of one cell kind.
struct CellTiming {
  double intrinsicNs = 0.0;   ///< propagation delay at fanout 1
  double perFanoutNs = 0.0;   ///< extra delay per additional fanout load
  double area = 0.0;          ///< area cost in NAND2-equivalents
};

/// Per-kind cell characterization table.
class CellLibrary {
 public:
  [[nodiscard]] const CellTiming& cell(netlist::GateKind kind) const noexcept {
    return cells_[static_cast<std::size_t>(kind)];
  }
  CellTiming& cell(netlist::GateKind kind) noexcept {
    return cells_[static_cast<std::size_t>(kind)];
  }

  /// Delay of one instance of `kind` driving `fanout` loads.
  [[nodiscard]] double delayNs(netlist::GateKind kind,
                               unsigned fanout) const noexcept {
    const CellTiming& t = cell(kind);
    const unsigned extra = fanout > 1 ? fanout - 1 : 0;
    return t.intrinsicNs + t.perFanoutNs * static_cast<double>(extra);
  }

  /// Calibrated generic library standing in for the paper's 65 nm node.
  [[nodiscard]] static CellLibrary generic65();

 private:
  std::array<CellTiming, netlist::kGateKindCount> cells_{};
};

}  // namespace oisa::timing
