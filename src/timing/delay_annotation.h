// oisa_timing: per-instance delay annotation (the repo's SDF analogue).
//
// An annotation freezes one delay per gate instance, derived from the cell
// library and the instance's fanout load. Synthesis-style passes
// (slack relaxation, process-variation jitter) then edit the per-instance
// values, exactly like back-annotating an SDF file after sizing or at a
// different PVT corner.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

#include "netlist/netlist.h"
#include "timing/cell_library.h"

namespace oisa::timing {

/// Per-gate-instance propagation delays for one netlist.
class DelayAnnotation {
 public:
  /// Derives delays from the library and each instance's fanout load.
  DelayAnnotation(const netlist::Netlist& nl, const CellLibrary& lib);

  [[nodiscard]] double delayNs(netlist::GateId gate) const {
    return delays_.at(gate.value);
  }
  void setDelayNs(netlist::GateId gate, double ns) {
    delays_.at(gate.value) = ns;
  }

  /// Multiplies one instance's delay (used by sizing passes).
  void scale(netlist::GateId gate, double factor) {
    delays_.at(gate.value) *= factor;
  }

  /// Applies multiplicative Gaussian process-variation jitter
  /// (factor = max(floor, 1 + N(0, sigma))) to every instance.
  void applyVariation(std::mt19937_64& rng, double sigma,
                      double floorFactor = 0.5);

  [[nodiscard]] std::size_t gateCount() const noexcept {
    return delays_.size();
  }

 private:
  std::vector<double> delays_;
};

}  // namespace oisa::timing
