// oisa_timing: per-instance delay annotation (the repo's SDF analogue).
//
// An annotation freezes one delay per gate instance, derived from the cell
// library and the instance's fanout load. Synthesis-style passes
// (slack relaxation, process-variation jitter) then edit the per-instance
// values, exactly like back-annotating an SDF file after sizing or at a
// different PVT corner.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

#include "netlist/netlist.h"
#include "timing/cell_library.h"

namespace oisa::timing {

/// Simulation time in integer picoseconds. The timed engines run entirely
/// on this grid: delays are quantized once at simulator construction and
/// every event timestamp is an exact integer, so event ordering and
/// latch-edge comparisons are exact (no floating-point epsilons).
using TimePs = std::int64_t;

/// Picoseconds per nanosecond (the annotation/STA unit).
inline constexpr double kPsPerNs = 1000.0;

/// Quantizes a gate delay to the integer-ps grid, flooring. Flooring keeps
/// every quantized path no longer than its STA length, so the sign-off
/// period remains an upper bound on settle time after quantization. The
/// small tolerance absorbs binary representation noise (0.011 ns must map
/// to 11 ps, not 10).
[[nodiscard]] inline TimePs quantizeDelayPs(double ns) noexcept {
  return static_cast<TimePs>(ns * kPsPerNs + 1e-6);
}

/// Quantizes a time span (clock period, advance delta) to the grid,
/// rounding up: "advance past t" must still advance past t after
/// quantization, however small the requested overshoot.
[[nodiscard]] inline TimePs quantizeSpanPs(double ns) noexcept {
  const double ps = ns * kPsPerNs;
  const auto floor = static_cast<TimePs>(ps + 1e-6);
  return static_cast<double>(floor) + 1e-6 >= ps ? floor : floor + 1;
}

/// Per-gate-instance propagation delays for one netlist.
class DelayAnnotation {
 public:
  /// Derives delays from the library and each instance's fanout load.
  DelayAnnotation(const netlist::Netlist& nl, const CellLibrary& lib);

  [[nodiscard]] double delayNs(netlist::GateId gate) const {
    return delays_.at(gate.value);
  }

  /// This instance's delay on the integer-picosecond simulation grid.
  [[nodiscard]] TimePs delayPs(netlist::GateId gate) const {
    return quantizeDelayPs(delays_.at(gate.value));
  }

  /// All instance delays quantized to the grid, indexed by GateId (bulk
  /// form consumed by the timed engines at construction).
  [[nodiscard]] std::vector<TimePs> quantizedDelaysPs() const;
  void setDelayNs(netlist::GateId gate, double ns) {
    delays_.at(gate.value) = ns;
  }

  /// Multiplies one instance's delay (used by sizing passes).
  void scale(netlist::GateId gate, double factor) {
    delays_.at(gate.value) *= factor;
  }

  /// Applies multiplicative Gaussian process-variation jitter
  /// (factor = max(floor, 1 + N(0, sigma))) to every instance.
  void applyVariation(std::mt19937_64& rng, double sigma,
                      double floorFactor = 0.5);

  [[nodiscard]] std::size_t gateCount() const noexcept {
    return delays_.size();
  }

 private:
  std::vector<double> delays_;
};

}  // namespace oisa::timing
