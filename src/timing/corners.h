// oisa_timing: PVT corner modeling and guardband analysis.
//
// The paper's motivation: designers "apply ultra-conservative guardbands"
// derived from multi-corner worst-case analysis. This module derives
// process corners from the nominal library by delay derating, and computes
// the guardband a worst-case methodology would impose on a design — the
// margin that overclocking with timing-error prediction claws back.
#pragma once

#include "netlist/netlist.h"
#include "timing/cell_library.h"
#include "timing/delay_annotation.h"

namespace oisa::timing {

/// Standard process corners (voltage/temperature folded into the factor).
enum class Corner {
  FastFast,        ///< best case: fast process, high V, low T
  TypicalTypical,  ///< nominal
  SlowSlow,        ///< worst case: slow process, low V, high T
};

[[nodiscard]] std::string_view cornerName(Corner corner) noexcept;

/// Delay derating factor of a corner relative to typical.
[[nodiscard]] double cornerDeratingFactor(Corner corner) noexcept;

/// Returns `nominal` with every cell delay scaled by the corner factor
/// (areas unchanged).
[[nodiscard]] CellLibrary libraryAtCorner(const CellLibrary& nominal,
                                          Corner corner);

/// Worst-case-design guardband of one netlist.
struct GuardbandReport {
  double typicalDelayNs = 0.0;  ///< critical delay at TT
  double worstDelayNs = 0.0;    ///< critical delay at SS
  double bestDelayNs = 0.0;     ///< critical delay at FF
  /// Margin a worst-case methodology adds on top of typical silicon.
  [[nodiscard]] double guardbandNs() const noexcept {
    return worstDelayNs - typicalDelayNs;
  }
  /// Guardband as a fraction of the worst-case period — the clock-period
  /// reduction available to a typical-silicon part under overclocking.
  [[nodiscard]] double recoverableFraction() const noexcept {
    return worstDelayNs > 0.0 ? guardbandNs() / worstDelayNs : 0.0;
  }
};

/// Runs STA at FF/TT/SS and reports the guardband.
[[nodiscard]] GuardbandReport analyzeGuardband(const netlist::Netlist& nl,
                                               const CellLibrary& nominal);

}  // namespace oisa::timing
