// oisa_timing: static timing analysis.
//
// Computes per-net arrival times (forward pass), per-gate required times and
// slacks against a clock period (backward pass), and extracts the critical
// path. All inputs arrive at t = 0 and all primary outputs are latched at
// the clock period, matching the paper's single-cycle adder setting.
#pragma once

#include <string>
#include <vector>

#include "netlist/netlist.h"
#include "timing/delay_annotation.h"

namespace oisa::timing {

/// One hop of a critical path, for reports.
struct PathStep {
  netlist::GateId gate;
  double arrivalNs = 0.0;
};

/// Result of a full STA run.
struct StaResult {
  std::vector<double> arrival;        ///< per net (indexed by NetId::value)
  std::vector<double> gateSlack;      ///< per gate, vs the given period
  double criticalDelayNs = 0.0;       ///< worst primary-output arrival
  double periodNs = 0.0;              ///< constraint used for slacks
  std::vector<PathStep> criticalPath; ///< PI-to-PO gate chain, in order

  [[nodiscard]] double worstSlackNs() const noexcept {
    return periodNs - criticalDelayNs;
  }
};

/// Runs STA with the given annotation against `periodNs`.
[[nodiscard]] StaResult analyze(const netlist::Netlist& nl,
                                const DelayAnnotation& delays,
                                double periodNs);

/// Convenience: critical delay only (period-independent).
[[nodiscard]] double criticalDelayNs(const netlist::Netlist& nl,
                                     const DelayAnnotation& delays);

/// Human-readable critical-path report (for bench/table output).
[[nodiscard]] std::string formatCriticalPath(const netlist::Netlist& nl,
                                             const StaResult& sta);

/// Total cell area of the netlist in NAND2-equivalents.
[[nodiscard]] double totalArea(const netlist::Netlist& nl,
                               const CellLibrary& lib);

}  // namespace oisa::timing
