// AVX2 dispatch TU — the only oisa_timing object compiled with -mavx2.
// Only the LaneBlock<256, Avx2> engine variant may be instantiated here
// (portable widths are extern-template'd out of this TU).
#if defined(__AVX2__)

#include "timing/lane_dispatch_impl.h"

namespace oisa::timing::detail {

std::unique_ptr<AnyLaneSampler> makeLaneSamplerAvx2(
    std::shared_ptr<const netlist::CompiledNetlist> compiled,
    const DelayAnnotation& delays, double periodNs) {
  using Block = netlist::LaneBlock<256, netlist::LaneArch::Avx2>;
  return std::make_unique<LaneSamplerAdapter<Block>>(std::move(compiled),
                                                     delays, periodNs);
}

}  // namespace oisa::timing::detail

#endif  // __AVX2__
