#include "timing/heap_sim.h"

#include <algorithm>
#include <stdexcept>

#include "netlist/evaluator.h"

namespace oisa::timing {

using netlist::Gate;
using netlist::GateId;
using netlist::Netlist;
using netlist::NetId;

HeapSimulator::HeapSimulator(const Netlist& nl, const DelayAnnotation& delays)
    : nl_(nl), fanout_(nl.fanoutMap()) {
  if (delays.gateCount() != nl.gateCount()) {
    throw std::invalid_argument(
        "HeapSimulator: annotation does not match netlist");
  }
  const std::vector<TimePs> ps = delays.quantizedDelaysPs();
  delaysPs_.assign(ps.begin(), ps.end());
  reset();
}

void HeapSimulator::reset() {
  const netlist::Evaluator eval(nl_);
  std::vector<std::uint8_t> zeros(nl_.primaryInputs().size(), 0);
  values_ = eval.evaluate(zeros);
  heap_.clear();
  now_ = 0.0;
  seq_ = 0;
  eventCount_ = 0;
  lastScheduled_ = values_;
}

void HeapSimulator::applyInputs(std::span<const std::uint8_t> inputValues) {
  const auto pis = nl_.primaryInputs();
  if (inputValues.size() != pis.size()) {
    throw std::invalid_argument("HeapSimulator: wrong input vector size");
  }
  for (std::size_t i = 0; i < pis.size(); ++i) {
    const std::uint8_t v = inputValues[i] ? 1 : 0;
    if (values_[pis[i].value] != v) {
      values_[pis[i].value] = v;
      lastScheduled_[pis[i].value] = v;
      if (observer_) observer_(now_, pis[i], v != 0);
      scheduleReaders(pis[i], now_);
    }
  }
}

void HeapSimulator::scheduleReaders(NetId net, double atTime) {
  for (GateId reader : fanout_[net.value]) {
    const Gate& g = nl_.gateAt(reader);
    const auto ins = g.inputs();
    const bool a = !ins.empty() && values_[ins[0].value] != 0;
    const bool b = ins.size() > 1 && values_[ins[1].value] != 0;
    const bool c = ins.size() > 2 && values_[ins[2].value] != 0;
    const std::uint8_t out = evalGate(g.kind, a, b, c) ? 1 : 0;
    if (lastScheduled_[g.out.value] == out) continue;
    lastScheduled_[g.out.value] = out;
    heap_.push_back(Event{atTime + delaysPs_[reader.value], g.out.value, out,
                          seq_++});
    std::push_heap(heap_.begin(), heap_.end(), std::greater<>{});
  }
}

void HeapSimulator::runUntil(double horizon) {
  while (!heap_.empty() && heap_.front().time < horizon) {
    std::pop_heap(heap_.begin(), heap_.end(), std::greater<>{});
    const Event e = heap_.back();
    heap_.pop_back();
    if (values_[e.net] == e.value) continue;
    values_[e.net] = e.value;
    ++eventCount_;
    if (observer_) observer_(e.time, NetId{e.net}, e.value != 0);
    scheduleReaders(NetId{e.net}, e.time);
  }
}

void HeapSimulator::advancePs(TimePs deltaPs) {
  const double horizon = now_ + static_cast<double>(deltaPs);
  runUntil(horizon);
  now_ = horizon;
}

TimePs HeapSimulator::settlePs() {
  double last = now_;
  while (!heap_.empty()) {
    last = std::max(last, heap_.front().time);
    // Timestamps are integers, so half a tick past the front event is an
    // exact "process everything at this instant" horizon (the seed used a
    // 1e-12 ns epsilon here).
    runUntil(heap_.front().time + 0.5);
  }
  now_ = std::max(now_, last);
  return static_cast<TimePs>(last);
}

std::vector<std::uint8_t> HeapSimulator::sampleOutputs() const {
  const auto pos = nl_.primaryOutputs();
  std::vector<std::uint8_t> out(pos.size());
  for (std::size_t i = 0; i < pos.size(); ++i) {
    out[i] = values_[pos[i].value];
  }
  return out;
}

}  // namespace oisa::timing
