#include "timing/power.h"

#include <stdexcept>

#include "timing/event_sim.h"

namespace oisa::timing {

PowerLibrary PowerLibrary::generic65() {
  using netlist::GateKind;
  PowerLibrary lib;
  auto set = [&lib](GateKind kind, double switching, double perFanout,
                    double leakage) {
    lib.cell(kind) = CellPower{switching, perFanout, leakage};
  };
  // Switching energy roughly tracks cell size; leakage tracks area.
  set(GateKind::Const0, 0.0, 0.0, 0.0);
  set(GateKind::Const1, 0.0, 0.0, 0.0);
  set(GateKind::Buf, 0.9, 0.12, 1.4);
  set(GateKind::Inv, 0.5, 0.12, 0.7);
  set(GateKind::And2, 1.2, 0.15, 2.1);
  set(GateKind::Or2, 1.2, 0.15, 2.1);
  set(GateKind::Nand2, 0.8, 0.15, 1.4);
  set(GateKind::Nor2, 0.8, 0.15, 1.4);
  set(GateKind::Xor2, 2.1, 0.18, 3.5);
  set(GateKind::Xnor2, 2.1, 0.18, 3.5);
  set(GateKind::And3, 1.7, 0.16, 2.8);
  set(GateKind::Or3, 1.7, 0.16, 2.8);
  set(GateKind::Aoi21, 1.3, 0.16, 2.1);
  set(GateKind::Oai21, 1.3, 0.16, 2.1);
  set(GateKind::Mux2, 1.6, 0.17, 2.8);
  set(GateKind::Maj3, 1.9, 0.17, 3.5);
  return lib;
}

PowerReport measurePower(const netlist::Netlist& nl,
                         const DelayAnnotation& delays,
                         const PowerLibrary& power, double periodNs,
                         std::span<const std::vector<std::uint8_t>> stimuli) {
  if (stimuli.size() < 2) {
    throw std::invalid_argument(
        "measurePower: need a reset vector plus at least one cycle");
  }
  // Per-net toggle energy: driver cell's switching cost including its
  // fanout load (inputs toggling is billed at the driving cell).
  const auto fanout = nl.fanoutCounts();
  std::vector<double> toggleEnergy(nl.netCount(), 0.0);
  for (std::uint32_t gi = 0; gi < nl.gateCount(); ++gi) {
    const netlist::Gate& g = nl.gateAt(netlist::GateId{gi});
    const CellPower& cp = power.cell(g.kind);
    const unsigned loads = fanout[g.out.value];
    const unsigned extra = loads > 1 ? loads - 1 : 0;
    toggleEnergy[g.out.value] =
        cp.switchingFj + cp.perFanoutFj * static_cast<double>(extra);
  }

  PowerReport report;
  TimedSimulator sim(nl, delays);
  double energy = 0.0;
  std::uint64_t toggles = 0;
  bool billing = false;
  sim.setChangeObserver([&](double, netlist::NetId net, bool) {
    if (!billing) return;
    energy += toggleEnergy[net.value];
    ++toggles;
  });

  sim.applyInputs(stimuli[0]);
  (void)sim.settle();
  billing = true;
  for (std::size_t i = 1; i < stimuli.size(); ++i) {
    sim.applyInputs(stimuli[i]);
    sim.advance(periodNs);
  }
  (void)sim.settle();  // bill the tail of the last cycle

  report.cycles = stimuli.size() - 1;
  report.toggles = toggles;
  report.dynamicEnergyFj = energy;
  report.energyPerOpFj = energy / static_cast<double>(report.cycles);
  // fJ / ns = uW.
  report.dynamicPowerUw =
      energy / (static_cast<double>(report.cycles) * periodNs);
  double leakageNw = 0.0;
  for (std::uint32_t gi = 0; gi < nl.gateCount(); ++gi) {
    leakageNw += power.cell(nl.gateAt(netlist::GateId{gi}).kind).leakageNw;
  }
  report.leakagePowerUw = leakageNw / 1000.0;
  report.totalPowerUw = report.dynamicPowerUw + report.leakagePowerUw;
  report.meanTogglesPerCycle =
      static_cast<double>(toggles) / static_cast<double>(report.cycles);
  return report;
}

}  // namespace oisa::timing
