#include "timing/delay_annotation.h"

#include <algorithm>

namespace oisa::timing {

DelayAnnotation::DelayAnnotation(const netlist::Netlist& nl,
                                 const CellLibrary& lib) {
  const auto fanout = nl.fanoutCounts();
  delays_.resize(nl.gateCount());
  for (std::uint32_t gi = 0; gi < nl.gateCount(); ++gi) {
    const netlist::Gate& g = nl.gateAt(netlist::GateId{gi});
    delays_[gi] = lib.delayNs(g.kind, fanout[g.out.value]);
  }
}

std::vector<TimePs> DelayAnnotation::quantizedDelaysPs() const {
  std::vector<TimePs> ps(delays_.size());
  for (std::size_t i = 0; i < delays_.size(); ++i) {
    ps[i] = quantizeDelayPs(delays_[i]);
  }
  return ps;
}

void DelayAnnotation::applyVariation(std::mt19937_64& rng, double sigma,
                                     double floorFactor) {
  std::normal_distribution<double> dist(0.0, sigma);
  for (double& d : delays_) {
    d *= std::max(floorFactor, 1.0 + dist(rng));
  }
}

}  // namespace oisa::timing
