#include "timing/cpr_governor.h"

#include <stdexcept>
#include <string>

namespace oisa::timing {

CprGovernor::CprGovernor(CprGovernorConfig config)
    : config_(std::move(config)), level_(config_.startLevel) {
  if (config_.cprLevels.empty()) {
    throw std::invalid_argument("CprGovernor: empty CPR ladder");
  }
  for (std::size_t i = 1; i < config_.cprLevels.size(); ++i) {
    if (config_.cprLevels[i] <= config_.cprLevels[i - 1]) {
      throw std::invalid_argument(
          "CprGovernor: CPR ladder must be strictly ascending");
    }
  }
  if (config_.cprLevels.back() >= 100.0) {
    throw std::invalid_argument(
        "CprGovernor: CPR of 100% or more leaves no clock period");
  }
  if (config_.signOffPeriodNs <= 0.0) {
    throw std::invalid_argument("CprGovernor: sign-off period must be > 0");
  }
  if (config_.targetFlipRate <= 0.0) {
    throw std::invalid_argument("CprGovernor: target flip rate must be > 0");
  }
  if (config_.stepUpFraction < 0.0 || config_.stepUpFraction >= 1.0) {
    throw std::invalid_argument(
        "CprGovernor: stepUpFraction must be in [0, 1)");
  }
  if (config_.holdWindows < 1) {
    throw std::invalid_argument("CprGovernor: holdWindows must be >= 1");
  }
  if (config_.startLevel >= config_.cprLevels.size()) {
    throw std::invalid_argument("CprGovernor: startLevel " +
                                std::to_string(config_.startLevel) +
                                " past the ladder");
  }
  stats_.windowsAtLevel.assign(config_.cprLevels.size(), 0);
}

CprGovernor::Action CprGovernor::observe(double predictedFlipRate) {
  // Account the window that just ran at the current level.
  ++stats_.windows;
  ++stats_.windowsAtLevel[level_];
  stats_.periodNsSum += periodNs();

  if (predictedFlipRate > config_.targetFlipRate) {
    ++stats_.overBudgetWindows;
    calmStreak_ = 0;
    if (level_ > 0) {
      --level_;
      ++stats_.stepDowns;
      return Action::StepDown;
    }
    return Action::Hold;  // already at sign-off: nowhere safer to go
  }
  if (predictedFlipRate <= config_.targetFlipRate * config_.stepUpFraction) {
    if (++calmStreak_ >= config_.holdWindows &&
        level_ + 1 < config_.cprLevels.size()) {
      calmStreak_ = 0;
      ++level_;
      ++stats_.stepUps;
      return Action::StepUp;
    }
    return Action::Hold;
  }
  // In-band: under budget but not calm — hold and restart the streak.
  calmStreak_ = 0;
  return Action::Hold;
}

double CprGovernor::guardbandReclaimedPercent() const noexcept {
  if (stats_.windows == 0) return 0.0;
  return 100.0 * (1.0 - stats_.meanPeriodNs() / config_.signOffPeriodNs);
}

}  // namespace oisa::timing
