// oisa_timing: the AnyLaneSimulator/AnyLaneSampler adapter templates.
// Included by dispatch TUs only; each instantiates solely the Block
// flavors it owns (see netlist/lane_width_impl.h for the rationale).
#pragma once

#include <memory>
#include <utility>

#include "timing/lane_dispatch.h"
#include "timing/lane_sim.h"

namespace oisa::timing::detail {

template <class Block>
class LaneSimulatorAdapter final : public AnyLaneSimulator {
 public:
  explicit LaneSimulatorAdapter(LaneTimedSimulatorT<Block>& sim)
      : sim_(sim) {}

  [[nodiscard]] std::size_t lanes() const noexcept override {
    return Block::kBits;
  }
  [[nodiscard]] std::size_t wordsPerNet() const noexcept override {
    return Block::kWords;
  }
  void applyInputs(std::span<const std::uint64_t> inputWords) override {
    sim_.applyInputs(inputWords);
  }
  void advancePs(TimePs deltaPs) override { sim_.advancePs(deltaPs); }
  TimePs settlePs() override { return sim_.settlePs(); }
  void sampleOutputsInto(std::vector<std::uint64_t>& out) const override {
    sim_.sampleOutputsInto(out);
  }
  void reset() override { sim_.reset(); }
  void forceNet(netlist::NetId net, std::uint64_t laneMask,
                std::uint64_t bits) override {
    sim_.forceNet(net, laneMask, bits);
  }
  void clearNetForces() override { sim_.clearNetForces(); }
  void setEventBudget(std::uint64_t maxEventsPerCall) override {
    sim_.setEventBudget(maxEventsPerCall);
  }
  [[nodiscard]] std::uint64_t eventsProcessed() const noexcept override {
    return sim_.eventsProcessed();
  }
  [[nodiscard]] std::uint64_t laneTransitionsCommitted()
      const noexcept override {
    return sim_.laneTransitionsCommitted();
  }
  [[nodiscard]] const std::vector<std::uint64_t>& netWords()
      const noexcept override {
    return sim_.netWords();
  }
  [[nodiscard]] TimePs nowPs() const noexcept override {
    return sim_.nowPs();
  }
  [[nodiscard]] const std::shared_ptr<const netlist::CompiledNetlist>&
  compiled() const noexcept override {
    return sim_.compiled();
  }

 private:
  LaneTimedSimulatorT<Block>& sim_;
};

template <class Block>
class LaneSamplerAdapter final : public AnyLaneSampler {
 public:
  LaneSamplerAdapter(
      std::shared_ptr<const netlist::CompiledNetlist> compiled,
      const DelayAnnotation& delays, double periodNs)
      : impl_(std::move(compiled), delays, periodNs),
        simAdapter_(impl_.simulator()) {}

  [[nodiscard]] netlist::LaneSelection selection() const noexcept override {
    return {Block::kBits, Block::kArch};
  }
  [[nodiscard]] std::size_t lanes() const noexcept override {
    return Block::kBits;
  }
  [[nodiscard]] std::size_t wordsPerNet() const noexcept override {
    return Block::kWords;
  }
  void initialize(std::span<const std::uint64_t> inputWords) override {
    impl_.initialize(inputWords);
  }
  void stepInto(std::span<const std::uint64_t> inputWords,
                std::vector<std::uint64_t>& out) override {
    impl_.stepInto(inputWords, out);
  }
  [[nodiscard]] double periodNs() const noexcept override {
    return impl_.periodNs();
  }
  [[nodiscard]] TimePs periodPs() const noexcept override {
    return impl_.periodPs();
  }
  [[nodiscard]] AnyLaneSimulator& simulator() noexcept override {
    return simAdapter_;
  }

 private:
  LaneClockedSamplerT<Block> impl_;
  LaneSimulatorAdapter<Block> simAdapter_;
};

}  // namespace oisa::timing::detail
