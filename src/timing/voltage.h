// oisa_timing: supply-voltage scaling (the dual knob to overclocking).
//
// The paper's opening cites voltage-precision scaling as the circuit-level
// approximation knob [1]: lowering Vdd at a fixed clock produces the same
// late-arrival timing errors as shortening the clock at fixed Vdd. The
// alpha-power-law delay model maps a supply voltage to a delay derating
// factor, and dynamic energy scales with Vdd^2 — enabling
// energy-vs-accuracy studies on the same simulation substrate.
#pragma once

#include "timing/cell_library.h"

namespace oisa::timing {

/// Alpha-power-law parameters (65 nm-flavored defaults).
struct VoltageModel {
  double nominalVdd = 1.2;   ///< library characterization voltage (V)
  double threshold = 0.35;   ///< effective Vth (V)
  double alpha = 1.5;        ///< velocity-saturation exponent
};

/// Delay derating factor at `vdd` relative to the nominal supply:
/// delay(V) ∝ V / (V - Vth)^alpha. Returns 1.0 at the nominal voltage.
/// Throws std::invalid_argument unless vdd > threshold.
[[nodiscard]] double voltageDelayFactor(double vdd,
                                        const VoltageModel& model = {});

/// Dynamic-energy scaling factor at `vdd`: (V / Vnom)^2.
[[nodiscard]] double voltageEnergyFactor(double vdd,
                                         const VoltageModel& model = {});

/// Returns `nominal` with every cell delay scaled to the given supply
/// voltage (areas unchanged).
[[nodiscard]] CellLibrary libraryAtVoltage(const CellLibrary& nominal,
                                           double vdd,
                                           const VoltageModel& model = {});

/// The supply at which the circuit's critical delay equals `periodNs`,
/// given its nominal-voltage critical delay — i.e. how far voltage can be
/// over-scaled before worst-case timing fails (bisection on the monotone
/// delay factor). Returns the voltage in volts.
[[nodiscard]] double voltageForDelay(double nominalCriticalNs,
                                     double periodNs,
                                     const VoltageModel& model = {});

}  // namespace oisa::timing
