// oisa_timing: the seed binary-heap event engine, retained as a reference.
//
// This is the original TimedSimulator implementation (std::push_heap over
// (time, seq) events, per-sample vector allocation), kept verbatim except
// that event times live on the same integer-picosecond grid as the wheel
// engine — timestamps are integers stored in double, so arithmetic and
// comparisons are exact and the wheel engine must match it event for
// event. Used by the differential tests (tests/wheel_sim_test.cpp) and as
// the baseline of bench/micro_timed_sim.cpp; production code should use
// TimedSimulator.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "netlist/netlist.h"
#include "timing/delay_annotation.h"

namespace oisa::timing {

/// Reference event-driven simulator: seed heap algorithm, ps time grid.
class HeapSimulator {
 public:
  HeapSimulator(const netlist::Netlist& nl, const DelayAnnotation& delays);

  /// Applies primary-input values at the current simulation time.
  void applyInputs(std::span<const std::uint8_t> inputValues);

  /// Advances simulation, processing all events strictly before
  /// `currentTime + deltaPs`, then sets current time to that instant.
  void advancePs(TimePs deltaPs);

  /// Nanosecond convenience form; the delta quantizes exactly like
  /// TimedSimulator::advance so both engines see identical horizons.
  void advance(double deltaNs) { advancePs(quantizeSpanPs(deltaNs)); }

  /// Processes every pending event. Returns the timestamp of the last
  /// processed event.
  TimePs settlePs();

  /// Current value of each primary output, in declaration order
  /// (allocates per call, like the seed engine).
  [[nodiscard]] std::vector<std::uint8_t> sampleOutputs() const;

  [[nodiscard]] bool netValue(netlist::NetId net) const {
    return values_.at(net.value) != 0;
  }

  [[nodiscard]] TimePs nowPs() const noexcept {
    return static_cast<TimePs>(now_);
  }

  /// Number of committed net changes since construction.
  [[nodiscard]] std::uint64_t eventsProcessed() const noexcept {
    return eventCount_;
  }

  /// Resets to the all-undefined (zero) state at time 0 with no events.
  void reset();

  /// Observer invoked on every committed net change, as in the seed
  /// engine: (timePs, net, newValue). Kept so the baseline pays the same
  /// per-event branch the seed paid.
  void setChangeObserver(
      std::function<void(double, netlist::NetId, bool)> observer) {
    observer_ = std::move(observer);
  }

 private:
  struct Event {
    double time;  ///< integer picoseconds held in double (exact <= 2^53)
    std::uint32_t net;
    std::uint8_t value;
    std::uint64_t seq;  ///< tie-breaker: same-time events apply in schedule order

    [[nodiscard]] bool operator>(const Event& o) const noexcept {
      if (time != o.time) return time > o.time;
      return seq > o.seq;
    }
  };

  void scheduleReaders(netlist::NetId net, double atTime);
  void runUntil(double horizon);  // processes events with time < horizon

  const netlist::Netlist& nl_;
  std::vector<double> delaysPs_;  // quantized, indexed by GateId
  std::vector<std::vector<netlist::GateId>> fanout_;
  std::vector<std::uint8_t> values_;         // indexed by NetId
  std::vector<std::uint8_t> lastScheduled_;  // last scheduled value per net
  std::vector<Event> heap_;                  // min-heap on (time, seq)
  double now_ = 0.0;
  std::uint64_t seq_ = 0;
  std::uint64_t eventCount_ = 0;
  std::function<void(double, netlist::NetId, bool)> observer_;
};

}  // namespace oisa::timing
