#include "timing/corners.h"

#include "timing/sta.h"

namespace oisa::timing {

std::string_view cornerName(Corner corner) noexcept {
  switch (corner) {
    case Corner::FastFast: return "FF";
    case Corner::TypicalTypical: return "TT";
    case Corner::SlowSlow: return "SS";
  }
  return "?";
}

double cornerDeratingFactor(Corner corner) noexcept {
  // Representative 65 nm spread: ~ -15% best case, +25% worst case.
  switch (corner) {
    case Corner::FastFast: return 0.85;
    case Corner::TypicalTypical: return 1.0;
    case Corner::SlowSlow: return 1.25;
  }
  return 1.0;
}

CellLibrary libraryAtCorner(const CellLibrary& nominal, Corner corner) {
  const double factor = cornerDeratingFactor(corner);
  CellLibrary scaled = nominal;
  for (const netlist::GateKind kind : netlist::allGateKinds()) {
    CellTiming& cell = scaled.cell(kind);
    cell.intrinsicNs *= factor;
    cell.perFanoutNs *= factor;
  }
  return scaled;
}

GuardbandReport analyzeGuardband(const netlist::Netlist& nl,
                                 const CellLibrary& nominal) {
  GuardbandReport report;
  const auto delayAt = [&](Corner corner) {
    const CellLibrary lib = libraryAtCorner(nominal, corner);
    const DelayAnnotation delays(nl, lib);
    return criticalDelayNs(nl, delays);
  };
  report.bestDelayNs = delayAt(Corner::FastFast);
  report.typicalDelayNs = delayAt(Corner::TypicalTypical);
  report.worstDelayNs = delayAt(Corner::SlowSlow);
  return report;
}

}  // namespace oisa::timing
