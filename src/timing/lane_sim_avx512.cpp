// AVX-512 dispatch TU — the only oisa_timing object compiled with
// -mavx512f. Same minimality rule as lane_sim_avx2.cpp.
#if defined(__AVX512F__)

#include "timing/lane_dispatch_impl.h"

namespace oisa::timing::detail {

std::unique_ptr<AnyLaneSampler> makeLaneSamplerAvx512(
    std::shared_ptr<const netlist::CompiledNetlist> compiled,
    const DelayAnnotation& delays, double periodNs) {
  using Block = netlist::LaneBlock<512, netlist::LaneArch::Avx512>;
  return std::make_unique<LaneSamplerAdapter<Block>>(std::move(compiled),
                                                     delays, periodNs);
}

}  // namespace oisa::timing::detail

#endif  // __AVX512F__
