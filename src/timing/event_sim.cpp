#include "timing/event_sim.h"

#include <algorithm>
#include <stdexcept>

#include "netlist/evaluator.h"

namespace oisa::timing {

using netlist::Gate;
using netlist::GateId;
using netlist::Netlist;
using netlist::NetId;

TimedSimulator::TimedSimulator(const Netlist& nl,
                               const DelayAnnotation& delays)
    : nl_(nl), delays_(delays), fanout_(nl.fanoutMap()) {
  if (delays.gateCount() != nl.gateCount()) {
    throw std::invalid_argument(
        "TimedSimulator: annotation does not match netlist");
  }
  reset();
}

void TimedSimulator::reset() {
  // The consistent "powered-up and settled with all inputs low" state: a
  // zero-delay evaluation with all primary inputs at 0 (this also assigns
  // constant nets their value).
  const netlist::Evaluator eval(nl_);
  std::vector<std::uint8_t> zeros(nl_.primaryInputs().size(), 0);
  values_ = eval.evaluate(zeros);
  heap_.clear();
  now_ = 0.0;
  seq_ = 0;
  eventCount_ = 0;
  lastScheduled_ = values_;
}

void TimedSimulator::applyInputs(std::span<const std::uint8_t> inputValues) {
  const auto pis = nl_.primaryInputs();
  if (inputValues.size() != pis.size()) {
    throw std::invalid_argument("TimedSimulator: wrong input vector size");
  }
  for (std::size_t i = 0; i < pis.size(); ++i) {
    const std::uint8_t v = inputValues[i] ? 1 : 0;
    if (values_[pis[i].value] != v) {
      values_[pis[i].value] = v;
      lastScheduled_[pis[i].value] = v;
      if (observer_) observer_(now_, pis[i], v != 0);
      scheduleReaders(pis[i], now_);
    }
  }
}

void TimedSimulator::scheduleReaders(NetId net, double atTime) {
  for (GateId reader : fanout_[net.value]) {
    const Gate& g = nl_.gateAt(reader);
    const auto ins = g.inputs();
    const bool a = !ins.empty() && values_[ins[0].value] != 0;
    const bool b = ins.size() > 1 && values_[ins[1].value] != 0;
    const bool c = ins.size() > 2 && values_[ins[2].value] != 0;
    const std::uint8_t out = evalGate(g.kind, a, b, c) ? 1 : 0;
    // Every net has a single driver with a fixed transport delay, so events
    // for a net are always pushed in non-decreasing time order; scheduling
    // a value equal to the last scheduled one would be a no-op at pop time.
    if (lastScheduled_[g.out.value] == out) continue;
    lastScheduled_[g.out.value] = out;
    heap_.push_back(Event{atTime + delays_.delayNs(reader), g.out.value, out,
                          seq_++});
    std::push_heap(heap_.begin(), heap_.end(), std::greater<>{});
  }
}

void TimedSimulator::runUntil(double horizon) {
  while (!heap_.empty() && heap_.front().time < horizon) {
    std::pop_heap(heap_.begin(), heap_.end(), std::greater<>{});
    const Event e = heap_.back();
    heap_.pop_back();
    if (values_[e.net] == e.value) continue;
    values_[e.net] = e.value;
    ++eventCount_;
    if (observer_) observer_(e.time, NetId{e.net}, e.value != 0);
    scheduleReaders(NetId{e.net}, e.time);
  }
}

void TimedSimulator::advance(double deltaNs) {
  const double horizon = now_ + deltaNs;
  runUntil(horizon);
  now_ = horizon;
}

double TimedSimulator::settle() {
  double last = now_;
  while (!heap_.empty()) {
    last = std::max(last, heap_.front().time);
    runUntil(heap_.front().time + 1e-12);
  }
  now_ = std::max(now_, last);
  return last;
}

std::vector<std::uint8_t> TimedSimulator::sampleOutputs() const {
  const auto pos = nl_.primaryOutputs();
  std::vector<std::uint8_t> out(pos.size());
  for (std::size_t i = 0; i < pos.size(); ++i) {
    out[i] = values_[pos[i].value];
  }
  return out;
}

ClockedSampler::ClockedSampler(const Netlist& nl,
                               const DelayAnnotation& delays, double periodNs)
    : sim_(nl, delays), periodNs_(periodNs) {
  if (periodNs <= 0.0) {
    throw std::invalid_argument("ClockedSampler: period must be positive");
  }
}

void ClockedSampler::initialize(std::span<const std::uint8_t> inputValues) {
  sim_.applyInputs(inputValues);
  sim_.settle();
}

std::vector<std::uint8_t> ClockedSampler::step(
    std::span<const std::uint8_t> inputValues) {
  sim_.applyInputs(inputValues);
  sim_.advance(periodNs_);
  return sim_.sampleOutputs();
}

}  // namespace oisa::timing
