#include "timing/event_sim.h"

#include <algorithm>
#include <bit>
#include <stdexcept>
#include <string>

namespace oisa::timing {

using netlist::CompiledNetlist;
using netlist::Netlist;
using netlist::NetId;

TimedSimulator::TimedSimulator(const Netlist& nl,
                               const DelayAnnotation& delays)
    : TimedSimulator(CompiledNetlist::compile(nl), delays) {}

TimedSimulator::TimedSimulator(
    std::shared_ptr<const CompiledNetlist> compiled,
    const DelayAnnotation& delays)
    : compiled_(std::move(compiled)) {
  if (delays.gateCount() != compiled_->gateCount()) {
    throw std::invalid_argument(
        "TimedSimulator: annotation does not match netlist");
  }
  fanoutOffset_ = compiled_->fanoutOffsets();
  readers_ = compiled_->readers();
  inputNets_ = compiled_->inputNets();
  // Flatten gates into dense 16-byte records: packed evaluation word,
  // output net, quantized delay. Structure (truth table, output net) comes
  // from the shared compile; the delay is per annotation, the state word
  // per simulator.
  const std::vector<TimePs> delaysPs = delays.quantizedDelaysPs();
  TimePs maxDelay = 0;
  gates_.resize(compiled_->gateCount());
  for (std::uint32_t gi = 0; gi < gates_.size(); ++gi) {
    const CompiledNetlist::GateRec& g = compiled_->gate(gi);
    const TimePs d = delaysPs[gi];
    if (d < 0 || d > kMaxDelayPs) {
      throw std::invalid_argument(
          "TimedSimulator: gate delay outside supported range [0, ~1us]");
    }
    gates_[gi] = GateRec{static_cast<std::uint32_t>(g.truth) << kTruthShift,
                         g.out, static_cast<std::uint32_t>(d)};
    maxDelay = std::max(maxDelay, d);
  }
  // All pending events lie within maxDelay of the processing cursor, so a
  // power-of-two wheel strictly larger than maxDelay never aliases two
  // distinct pending timestamps to one slot.
  const auto slots = std::bit_ceil(static_cast<std::uint64_t>(maxDelay) + 1);
  wheel_.resize(slots);
  wheelMask_ = static_cast<std::uint32_t>(slots - 1);
  reset();
}

void TimedSimulator::reset() {
  // The consistent "powered-up and settled with all inputs low" state,
  // precomputed by the compile. For a cyclic netlist no settled state
  // exists: nets power up at 0 and every gate whose function disagrees
  // with that is scheduled to react below, so the first advance/settle
  // converges to a logic-consistent quiescent state (or trips the event
  // budget if the loop oscillates).
  const auto zero = compiled_->zeroState();
  values_.assign(zero.begin(), zero.end());
  for (Slot& slot : wheel_) slot.len = 0;
  pending_ = 0;
  now_ = 0;
  cursor_ = 0;
  eventCount_ = 0;
  for (std::uint32_t gi = 0; gi < gates_.size(); ++gi) {
    const CompiledNetlist::GateRec& g = compiled_->gate(gi);
    const std::uint32_t minterm =
        static_cast<std::uint32_t>(values_[g.in[0]]) |
        (static_cast<std::uint32_t>(values_[g.in[1]]) << 1) |
        (static_cast<std::uint32_t>(values_[g.in[2]]) << 2);
    const std::uint32_t out =
        (static_cast<std::uint32_t>(g.truth) >> minterm) & 1u;
    std::uint32_t s = gates_[gi].state;
    s &= ~(kMintermMask | (1u << kLastSchedShift));
    s |= minterm;
    s |= out << kLastSchedShift;
    gates_[gi].state = s;
    // Never fires for an acyclic compile (the zero state is the gates'
    // fixed point); in a cyclic one, power-up disagreements become
    // ordinary transport-delayed events.
    if (out != values_[g.out]) [[unlikely]] {
      GateRec& rec = gates_[gi];
      Slot& slot = wheel_[rec.delayPs & wheelMask_];
      if (slot.len == slot.data.size()) {
        slot.data.resize(std::max<std::size_t>(8, slot.data.size() * 2));
      }
      slot.data[slot.len] = SlotEvent{rec.out, out};
      ++slot.len;
      ++pending_;
    }
  }
}

void TimedSimulator::applyInputs(std::span<const std::uint8_t> inputValues) {
  if (inputValues.size() != inputNets_.size()) {
    throw std::invalid_argument("TimedSimulator: wrong input vector size");
  }
  for (std::size_t i = 0; i < inputNets_.size(); ++i) {
    const std::uint8_t v = inputValues[i] ? 1 : 0;
    const std::uint32_t net = inputNets_[i];
    if (values_[net] != v) {
      values_[net] = v;
      if (observer_) observer_(nowNs(), NetId{net}, v != 0);
      scheduleReaders(net, v, now_);
    }
  }
}

void TimedSimulator::scheduleReaders(std::uint32_t net, std::uint32_t value,
                                     TimePs atTime) {
  const std::uint32_t begin = fanoutOffset_[net];
  const std::uint32_t end = fanoutOffset_[net + 1];
  for (std::uint32_t i = begin; i < end; ++i) {
    const std::uint32_t entry = readers_[i];
    GateRec& rec = gates_[entry >> 3];
    const std::uint32_t mask = entry & kMintermMask;
    // The whole body is branchless: both `value` and whether the gate
    // output flips are data-dependent coin tosses, so conditionals here
    // would mispredict ~half the time. The event is stored
    // unconditionally and the slot length advances by `changed` (a no-op
    // store is simply overwritten by the next append).
    std::uint32_t s = (rec.state & ~mask) | (mask & (0u - value));
    const std::uint32_t out = (s >> (kTruthShift + (s & kMintermMask))) & 1u;
    // Every net has a single driver with a fixed transport delay, so events
    // for a net are always scheduled in non-decreasing time order;
    // scheduling a value equal to the last scheduled one would be a no-op
    // at drain time — `changed` is the schedule-time dedup.
    const std::uint32_t changed = ((s >> kLastSchedShift) ^ out) & 1u;
    s ^= changed << kLastSchedShift;
    rec.state = s;
    Slot& slot = wheel_[(atTime + rec.delayPs) & wheelMask_];
    if (slot.len == slot.data.size()) [[unlikely]] {
      slot.data.resize(std::max<std::size_t>(8, slot.data.size() * 2));
    }
    slot.data[slot.len] = SlotEvent{rec.out, out};
    slot.len += changed;
    pending_ += changed;
  }
}

void TimedSimulator::drainSlot(TimePs t) {
  Slot& slot = wheel_[t & wheelMask_];
  // Zero-delay gates append to this same slot mid-drain; the index loop
  // picks those up in schedule order (and an append may reallocate the
  // backing store, so the event is copied out first).
  for (std::uint32_t i = 0; i < slot.len; ++i) {
    const SlotEvent e = slot.data[i];
    if (values_[e.net] == e.value) continue;
    values_[e.net] = static_cast<std::uint8_t>(e.value);
    if (++eventCount_ > failAt_) [[unlikely]] {
      throwBudgetExceeded();
    }
    if (observer_) [[unlikely]] {
      observer_(static_cast<double>(t) / kPsPerNs, NetId{e.net},
                e.value != 0);
    }
    scheduleReaders(e.net, e.value, t);
  }
  pending_ -= slot.len;
  slot.len = 0;
}

void TimedSimulator::throwBudgetExceeded() const {
  throw std::runtime_error(
      "TimedSimulator: event budget of " + std::to_string(budget_) +
      " committed events exceeded within one advance/settle call — "
      "non-settling or cyclic netlist? (the simulator state is "
      "inconsistent; call reset() before reuse)");
}

void TimedSimulator::runUntil(TimePs horizon) {
  while (pending_ > 0 && cursor_ < horizon) {
    drainSlot(cursor_);
    ++cursor_;
  }
  if (cursor_ < horizon) cursor_ = horizon;  // nothing pending: skip ahead
}

void TimedSimulator::advancePs(TimePs deltaPs) {
  if (deltaPs < 0) {
    throw std::invalid_argument("TimedSimulator: negative advance");
  }
  // Saturating: a budget of ~0 ("unlimited") must not wrap failAt_.
  failAt_ = eventCount_ > ~std::uint64_t{0} - budget_
                ? ~std::uint64_t{0}
                : eventCount_ + budget_;
  runUntil(now_ + deltaPs);
  now_ += deltaPs;
}

TimePs TimedSimulator::settlePs() {
  // Saturating: a budget of ~0 ("unlimited") must not wrap failAt_.
  failAt_ = eventCount_ > ~std::uint64_t{0} - budget_
                ? ~std::uint64_t{0}
                : eventCount_ + budget_;
  TimePs last = now_;
  while (pending_ > 0) {
    if (wheel_[cursor_ & wheelMask_].len != 0) last = cursor_;
    drainSlot(cursor_);
    ++cursor_;
  }
  now_ = std::max(now_, last);
  cursor_ = now_;  // re-arm: zero-delay events at `now_` must still drain
  return last;
}

std::vector<std::uint8_t> TimedSimulator::sampleOutputs() const {
  std::vector<std::uint8_t> out;
  sampleOutputsInto(out);
  return out;
}

void TimedSimulator::sampleOutputsInto(std::vector<std::uint8_t>& out) const {
  const auto pos = compiled_->outputNets();
  out.resize(pos.size());
  for (std::size_t i = 0; i < pos.size(); ++i) {
    out[i] = values_[pos[i]];
  }
}

ClockedSampler::ClockedSampler(const Netlist& nl,
                               const DelayAnnotation& delays, double periodNs)
    : sim_(nl, delays),
      periodNs_(periodNs),
      periodPs_(quantizeSpanPs(periodNs)) {
  if (periodNs <= 0.0 || periodPs_ <= 0) {
    throw std::invalid_argument("ClockedSampler: period must be positive");
  }
}

void ClockedSampler::initialize(std::span<const std::uint8_t> inputValues) {
  sim_.applyInputs(inputValues);
  (void)sim_.settlePs();
}

std::vector<std::uint8_t> ClockedSampler::step(
    std::span<const std::uint8_t> inputValues) {
  sim_.applyInputs(inputValues);
  sim_.advancePs(periodPs_);
  return sim_.sampleOutputs();
}

void ClockedSampler::stepInto(std::span<const std::uint8_t> inputValues,
                              std::vector<std::uint8_t>& out) {
  sim_.applyInputs(inputValues);
  sim_.advancePs(periodPs_);
  sim_.sampleOutputsInto(out);
}

}  // namespace oisa::timing
