#include "timing/event_sim.h"

#include <algorithm>
#include <bit>
#include <stdexcept>

#include "netlist/evaluator.h"

namespace oisa::timing {

using netlist::Gate;
using netlist::GateId;
using netlist::Netlist;
using netlist::NetId;

TimedSimulator::TimedSimulator(const Netlist& nl,
                               const DelayAnnotation& delays)
    : nl_(nl) {
  if (delays.gateCount() != nl.gateCount()) {
    throw std::invalid_argument(
        "TimedSimulator: annotation does not match netlist");
  }
  inputNets_.reserve(nl.primaryInputs().size());
  for (const NetId pi : nl.primaryInputs()) inputNets_.push_back(pi.value);
  // Flatten gates into dense 16-byte records: packed evaluation word,
  // output net, quantized delay.
  const std::vector<TimePs> delaysPs = delays.quantizedDelaysPs();
  TimePs maxDelay = 0;
  gates_.resize(nl.gateCount());
  for (std::uint32_t gi = 0; gi < nl.gateCount(); ++gi) {
    const Gate& g = nl.gateAt(GateId{gi});
    const TimePs d = delaysPs[gi];
    if (d < 0 || d > kMaxDelayPs) {
      throw std::invalid_argument(
          "TimedSimulator: gate delay outside supported range [0, ~1us]");
    }
    std::uint32_t truth = 0;
    for (unsigned m = 0; m < 8; ++m) {
      if (netlist::evalGate(g.kind, (m & 1) != 0, (m & 2) != 0,
                            (m & 4) != 0)) {
        truth |= 1u << m;
      }
    }
    gates_[gi] = GateRec{truth << kTruthShift, g.out.value,
                         static_cast<std::uint32_t>(d)};
    maxDelay = std::max(maxDelay, d);
  }
  // CSR fanout: for each net, the gates reading it, with the minterm bits
  // the net drives packed into the entry's low bits. A net wired to
  // several pins of one gate becomes a single entry with the merged mask,
  // so one committed change updates the whole minterm before the gate is
  // re-evaluated (the per-pin duplicates in Netlist::fanoutMap are
  // adjacent, which makes the merge a one-entry lookback).
  fanoutOffset_.assign(nl.netCount() + 1, 0);
  constexpr std::uint32_t kNoGate = 0xffffffff;
  std::vector<std::uint32_t> lastGate(nl.netCount(), kNoGate);
  for (std::uint32_t gi = 0; gi < nl.gateCount(); ++gi) {
    for (const NetId in : nl.gateAt(GateId{gi}).inputs()) {
      if (lastGate[in.value] != gi) {
        lastGate[in.value] = gi;
        ++fanoutOffset_[in.value + 1];
      }
    }
  }
  for (std::size_t i = 1; i < fanoutOffset_.size(); ++i) {
    fanoutOffset_[i] += fanoutOffset_[i - 1];
  }
  readers_.resize(fanoutOffset_.back());
  std::vector<std::uint32_t> cursor(fanoutOffset_.begin(),
                                    fanoutOffset_.end() - 1);
  std::fill(lastGate.begin(), lastGate.end(), kNoGate);
  for (std::uint32_t gi = 0; gi < nl.gateCount(); ++gi) {
    const auto ins = nl.gateAt(GateId{gi}).inputs();
    for (std::size_t pin = 0; pin < ins.size(); ++pin) {
      const std::uint32_t net = ins[pin].value;
      const auto mask = static_cast<std::uint32_t>(1u << pin);
      if (lastGate[net] == gi) {
        readers_[cursor[net] - 1] |= mask;  // merge multi-pin connection
      } else {
        lastGate[net] = gi;
        readers_[cursor[net]++] = (gi << 3) | mask;
      }
    }
  }
  // All pending events lie within maxDelay of the processing cursor, so a
  // power-of-two wheel strictly larger than maxDelay never aliases two
  // distinct pending timestamps to one slot.
  const auto slots = std::bit_ceil(static_cast<std::uint64_t>(maxDelay) + 1);
  wheel_.resize(slots);
  wheelMask_ = static_cast<std::uint32_t>(slots - 1);
  reset();
}

void TimedSimulator::reset() {
  // The consistent "powered-up and settled with all inputs low" state: a
  // zero-delay evaluation with all primary inputs at 0 (this also assigns
  // constant nets their value).
  const netlist::Evaluator eval(nl_);
  std::vector<std::uint8_t> zeros(nl_.primaryInputs().size(), 0);
  values_ = eval.evaluate(zeros);
  for (std::uint32_t gi = 0; gi < nl_.gateCount(); ++gi) {
    const Gate& g = nl_.gateAt(GateId{gi});
    const auto ins = g.inputs();
    std::uint32_t minterm = 0;
    for (std::size_t pin = 0; pin < ins.size(); ++pin) {
      if (values_[ins[pin].value] != 0) minterm |= 1u << pin;
    }
    std::uint32_t s = gates_[gi].state;
    s &= ~(kMintermMask | (1u << kLastSchedShift));
    s |= minterm;
    s |= static_cast<std::uint32_t>(values_[g.out.value]) << kLastSchedShift;
    gates_[gi].state = s;
  }
  for (Slot& slot : wheel_) slot.len = 0;
  pending_ = 0;
  now_ = 0;
  cursor_ = 0;
  eventCount_ = 0;
}

void TimedSimulator::applyInputs(std::span<const std::uint8_t> inputValues) {
  if (inputValues.size() != inputNets_.size()) {
    throw std::invalid_argument("TimedSimulator: wrong input vector size");
  }
  for (std::size_t i = 0; i < inputNets_.size(); ++i) {
    const std::uint8_t v = inputValues[i] ? 1 : 0;
    const std::uint32_t net = inputNets_[i];
    if (values_[net] != v) {
      values_[net] = v;
      if (observer_) observer_(nowNs(), NetId{net}, v != 0);
      scheduleReaders(net, v, now_);
    }
  }
}

void TimedSimulator::scheduleReaders(std::uint32_t net, std::uint32_t value,
                                     TimePs atTime) {
  const std::uint32_t begin = fanoutOffset_[net];
  const std::uint32_t end = fanoutOffset_[net + 1];
  for (std::uint32_t i = begin; i < end; ++i) {
    const std::uint32_t entry = readers_[i];
    GateRec& rec = gates_[entry >> 3];
    const std::uint32_t mask = entry & kMintermMask;
    // The whole body is branchless: both `value` and whether the gate
    // output flips are data-dependent coin tosses, so conditionals here
    // would mispredict ~half the time. The event is stored
    // unconditionally and the slot length advances by `changed` (a no-op
    // store is simply overwritten by the next append).
    std::uint32_t s = (rec.state & ~mask) | (mask & (0u - value));
    const std::uint32_t out = (s >> (kTruthShift + (s & kMintermMask))) & 1u;
    // Every net has a single driver with a fixed transport delay, so events
    // for a net are always scheduled in non-decreasing time order;
    // scheduling a value equal to the last scheduled one would be a no-op
    // at drain time — `changed` is the schedule-time dedup.
    const std::uint32_t changed = ((s >> kLastSchedShift) ^ out) & 1u;
    s ^= changed << kLastSchedShift;
    rec.state = s;
    Slot& slot = wheel_[(atTime + rec.delayPs) & wheelMask_];
    if (slot.len == slot.data.size()) [[unlikely]] {
      slot.data.resize(std::max<std::size_t>(8, slot.data.size() * 2));
    }
    slot.data[slot.len] = SlotEvent{rec.out, out};
    slot.len += changed;
    pending_ += changed;
  }
}

void TimedSimulator::drainSlot(TimePs t) {
  Slot& slot = wheel_[t & wheelMask_];
  // Zero-delay gates append to this same slot mid-drain; the index loop
  // picks those up in schedule order (and an append may reallocate the
  // backing store, so the event is copied out first).
  for (std::uint32_t i = 0; i < slot.len; ++i) {
    const SlotEvent e = slot.data[i];
    if (values_[e.net] == e.value) continue;
    values_[e.net] = static_cast<std::uint8_t>(e.value);
    ++eventCount_;
    if (observer_) [[unlikely]] {
      observer_(static_cast<double>(t) / kPsPerNs, NetId{e.net},
                e.value != 0);
    }
    scheduleReaders(e.net, e.value, t);
  }
  pending_ -= slot.len;
  slot.len = 0;
}

void TimedSimulator::runUntil(TimePs horizon) {
  while (pending_ > 0 && cursor_ < horizon) {
    drainSlot(cursor_);
    ++cursor_;
  }
  if (cursor_ < horizon) cursor_ = horizon;  // nothing pending: skip ahead
}

void TimedSimulator::advancePs(TimePs deltaPs) {
  if (deltaPs < 0) {
    throw std::invalid_argument("TimedSimulator: negative advance");
  }
  runUntil(now_ + deltaPs);
  now_ += deltaPs;
}

TimePs TimedSimulator::settlePs() {
  TimePs last = now_;
  while (pending_ > 0) {
    if (wheel_[cursor_ & wheelMask_].len != 0) last = cursor_;
    drainSlot(cursor_);
    ++cursor_;
  }
  now_ = std::max(now_, last);
  cursor_ = now_;  // re-arm: zero-delay events at `now_` must still drain
  return last;
}

std::vector<std::uint8_t> TimedSimulator::sampleOutputs() const {
  std::vector<std::uint8_t> out;
  sampleOutputsInto(out);
  return out;
}

void TimedSimulator::sampleOutputsInto(std::vector<std::uint8_t>& out) const {
  const auto pos = nl_.primaryOutputs();
  out.resize(pos.size());
  for (std::size_t i = 0; i < pos.size(); ++i) {
    out[i] = values_[pos[i].value];
  }
}

ClockedSampler::ClockedSampler(const Netlist& nl,
                               const DelayAnnotation& delays, double periodNs)
    : sim_(nl, delays),
      periodNs_(periodNs),
      periodPs_(quantizeSpanPs(periodNs)) {
  if (periodNs <= 0.0 || periodPs_ <= 0) {
    throw std::invalid_argument("ClockedSampler: period must be positive");
  }
}

void ClockedSampler::initialize(std::span<const std::uint8_t> inputValues) {
  sim_.applyInputs(inputValues);
  (void)sim_.settlePs();
}

std::vector<std::uint8_t> ClockedSampler::step(
    std::span<const std::uint8_t> inputValues) {
  sim_.applyInputs(inputValues);
  sim_.advancePs(periodPs_);
  return sim_.sampleOutputs();
}

void ClockedSampler::stepInto(std::span<const std::uint8_t> inputValues,
                              std::vector<std::uint8_t>& out) {
  sim_.applyInputs(inputValues);
  sim_.advancePs(periodPs_);
  sim_.sampleOutputsInto(out);
}

}  // namespace oisa::timing
