// oisa_timing: VCD (Value Change Dump) waveform recording.
//
// Records primary-port value changes of a TimedSimulator run into the
// standard VCD format, so overclocked failures can be inspected in any
// waveform viewer (GTKWave etc.). Time resolution is 1 ps (simulator times
// are ns doubles).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "netlist/netlist.h"

namespace oisa::timing {

/// Collects value changes for a chosen set of nets and writes a VCD file.
class VcdWriter {
 public:
  /// Observes the primary inputs and outputs of `nl` (the usual choice for
  /// debugging sampled values).
  static VcdWriter forPorts(const netlist::Netlist& nl);

  /// Observes an explicit set of nets.
  VcdWriter(const netlist::Netlist& nl, std::vector<netlist::NetId> nets);

  /// Records the value of every observed net at `timeNs` (values indexed by
  /// NetId, as exposed by TimedSimulator::netValue). Only changes are kept.
  void sample(double timeNs, const std::vector<std::uint8_t>& netValues);

  /// Convenience: record one net change directly.
  void record(double timeNs, netlist::NetId net, bool value);

  /// Writes header + change stream.
  void write(std::ostream& os) const;

  [[nodiscard]] std::size_t changeCount() const noexcept {
    return changes_.size();
  }

 private:
  struct Change {
    std::uint64_t timePs;
    std::uint32_t index;  ///< observed-net index
    bool value;
  };

  const netlist::Netlist& nl_;
  std::vector<netlist::NetId> nets_;
  std::vector<int> observedIndex_;  ///< NetId -> observed index or -1
  std::vector<signed char> last_;   ///< last recorded value (-1 unknown)
  std::vector<Change> changes_;
};

}  // namespace oisa::timing
