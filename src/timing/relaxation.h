// oisa_timing: power-recovery (slack-relaxation) sizing pass.
//
// Synthesis tools downsize or raise the threshold voltage of gates on
// non-critical paths until almost no positive slack remains, trading the
// slack for power. The visible timing effect — which is what matters for
// overclocking studies — is that path delays compress towards the clock
// constraint. This pass reproduces that effect on the delay annotation: a
// damped zero-slack algorithm distributes each gate's slack over the gates
// of its path, bounded by a per-instance slowdown cap.
#pragma once

#include "netlist/netlist.h"
#include "timing/delay_annotation.h"

namespace oisa::timing {

/// Controls for the slack-relaxation pass.
struct RelaxationOptions {
  double targetPeriodNs = 0.3;  ///< constraint the design was signed off at
  double maxSlowdown = 1.05;    ///< per-instance delay growth cap (sizing range)
  double damping = 0.5;         ///< fraction of distributed slack taken per round
  int iterations = 12;          ///< rounds of the zero-slack loop
};

/// Statistics returned by the pass, for reports and tests.
struct RelaxationReport {
  double criticalBeforeNs = 0.0;
  double criticalAfterNs = 0.0;
  double meanSlowdown = 1.0;  ///< average per-gate delay growth factor
};

/// Consumes positive slack in `delays` (in place). Never pushes the
/// critical delay above `targetPeriodNs` if it was below it before; gates
/// already critical are left untouched.
RelaxationReport relaxSlack(const netlist::Netlist& nl,
                            DelayAnnotation& delays,
                            const RelaxationOptions& options);

}  // namespace oisa::timing
