#include "timing/voltage.h"

#include <cmath>
#include <stdexcept>

namespace oisa::timing {

double voltageDelayFactor(double vdd, const VoltageModel& model) {
  if (vdd <= model.threshold) {
    throw std::invalid_argument(
        "voltageDelayFactor: vdd must exceed the threshold voltage");
  }
  const auto alphaPower = [&](double v) {
    return v / std::pow(v - model.threshold, model.alpha);
  };
  return alphaPower(vdd) / alphaPower(model.nominalVdd);
}

double voltageEnergyFactor(double vdd, const VoltageModel& model) {
  const double ratio = vdd / model.nominalVdd;
  return ratio * ratio;
}

CellLibrary libraryAtVoltage(const CellLibrary& nominal, double vdd,
                             const VoltageModel& model) {
  const double factor = voltageDelayFactor(vdd, model);
  CellLibrary scaled = nominal;
  for (const netlist::GateKind kind : netlist::allGateKinds()) {
    CellTiming& cell = scaled.cell(kind);
    cell.intrinsicNs *= factor;
    cell.perFanoutNs *= factor;
  }
  return scaled;
}

double voltageForDelay(double nominalCriticalNs, double periodNs,
                       const VoltageModel& model) {
  if (nominalCriticalNs <= 0.0 || periodNs <= 0.0) {
    throw std::invalid_argument("voltageForDelay: delays must be positive");
  }
  const double targetFactor = periodNs / nominalCriticalNs;
  // Delay factor decreases monotonically with vdd: bisect.
  double lo = model.threshold + 1e-4;
  double hi = model.nominalVdd * 3.0;
  if (voltageDelayFactor(hi, model) > targetFactor) {
    throw std::invalid_argument(
        "voltageForDelay: period unreachable even at 3x nominal Vdd");
  }
  for (int iter = 0; iter < 100; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (voltageDelayFactor(mid, model) > targetFactor) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return hi;
}

}  // namespace oisa::timing
