#include "timing/relaxation.h"

#include <algorithm>
#include <vector>

#include "timing/sta.h"

namespace oisa::timing {

using netlist::Gate;
using netlist::GateId;
using netlist::Netlist;
using netlist::NetId;

RelaxationReport relaxSlack(const Netlist& nl, DelayAnnotation& delays,
                            const RelaxationOptions& options) {
  const auto order = nl.topologicalOrder();
  RelaxationReport report;
  report.criticalBeforeNs = criticalDelayNs(nl, delays);

  // Number of gates on the longest PI->PO path through each gate, used to
  // split a path's slack fairly among its gates.
  std::vector<int> fwdDepth(nl.netCount(), 0);
  std::vector<int> bwdDepth(nl.gateCount(), 1);
  for (GateId gid : order) {
    const Gate& g = nl.gateAt(gid);
    int d = 0;
    for (NetId in : g.inputs()) d = std::max(d, fwdDepth[in.value]);
    fwdDepth[g.out.value] = d + 1;
  }
  std::vector<int> netBwd(nl.netCount(), 0);
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const Gate& g = nl.gateAt(*it);
    bwdDepth[it->value] = netBwd[g.out.value] + 1;
    for (NetId in : g.inputs()) {
      netBwd[in.value] = std::max(netBwd[in.value], bwdDepth[it->value]);
    }
  }

  std::vector<double> original(nl.gateCount());
  for (std::uint32_t gi = 0; gi < nl.gateCount(); ++gi) {
    original[gi] = delays.delayNs(GateId{gi});
  }

  for (int round = 0; round < options.iterations; ++round) {
    const StaResult sta = analyze(nl, delays, options.targetPeriodNs);
    bool changed = false;
    for (std::uint32_t gi = 0; gi < nl.gateCount(); ++gi) {
      const GateId gid{gi};
      const double slack = sta.gateSlack[gi];
      if (slack <= 1e-6) continue;
      const Gate& g = nl.gateAt(gid);
      const int pathGates =
          std::max(1, fwdDepth[g.out.value] - 1 + bwdDepth[gi]);
      const double share =
          options.damping * slack / static_cast<double>(pathGates);
      const double cap = original[gi] * options.maxSlowdown;
      const double next = std::min(delays.delayNs(gid) + share, cap);
      if (next > delays.delayNs(gid) + 1e-9) {
        delays.setDelayNs(gid, next);
        changed = true;
      }
    }
    if (!changed) break;
  }

  // Safety: the damped shares should never overshoot, but guard the
  // sign-off invariant explicitly (only if the design met timing before).
  if (report.criticalBeforeNs <= options.targetPeriodNs) {
    while (criticalDelayNs(nl, delays) > options.targetPeriodNs) {
      for (std::uint32_t gi = 0; gi < nl.gateCount(); ++gi) {
        const GateId gid{gi};
        const double d = delays.delayNs(gid);
        if (d > original[gi]) {
          delays.setDelayNs(gid,
                            std::max(original[gi], d * 0.98));
        }
      }
    }
  }

  report.criticalAfterNs = criticalDelayNs(nl, delays);
  double slowdownSum = 0.0;
  for (std::uint32_t gi = 0; gi < nl.gateCount(); ++gi) {
    slowdownSum += original[gi] > 0.0
                       ? delays.delayNs(GateId{gi}) / original[gi]
                       : 1.0;
  }
  report.meanSlowdown =
      nl.gateCount() ? slowdownSum / static_cast<double>(nl.gateCount()) : 1.0;
  return report;
}

}  // namespace oisa::timing
