#include "timing/sta.h"

#include <algorithm>
#include <limits>
#include <sstream>

namespace oisa::timing {

using netlist::DriverKind;
using netlist::Gate;
using netlist::GateId;
using netlist::Netlist;
using netlist::NetId;

StaResult analyze(const Netlist& nl, const DelayAnnotation& delays,
                  double periodNs) {
  const auto order = nl.topologicalOrder();
  StaResult r;
  r.periodNs = periodNs;
  r.arrival.assign(nl.netCount(), 0.0);

  // Forward pass: arrival times. Primary inputs and constants arrive at 0.
  for (GateId gid : order) {
    const Gate& g = nl.gateAt(gid);
    double worst = 0.0;
    for (NetId in : g.inputs()) {
      worst = std::max(worst, r.arrival[in.value]);
    }
    r.arrival[g.out.value] = worst + delays.delayNs(gid);
  }
  for (NetId out : nl.primaryOutputs()) {
    r.criticalDelayNs = std::max(r.criticalDelayNs, r.arrival[out.value]);
  }

  // Backward pass: required times per net, slack per gate.
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> required(nl.netCount(), kInf);
  for (NetId out : nl.primaryOutputs()) {
    required[out.value] = std::min(required[out.value], periodNs);
  }
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const Gate& g = nl.gateAt(*it);
    const double inRequired = required[g.out.value] - delays.delayNs(*it);
    for (NetId in : g.inputs()) {
      required[in.value] = std::min(required[in.value], inRequired);
    }
  }
  r.gateSlack.assign(nl.gateCount(), kInf);
  for (GateId gid : order) {
    const Gate& g = nl.gateAt(gid);
    r.gateSlack[gid.value] = required[g.out.value] - r.arrival[g.out.value];
  }

  // Critical path: backtrack from the worst output through worst inputs.
  NetId worstOut{};
  double worstArrival = -1.0;
  for (NetId out : nl.primaryOutputs()) {
    if (r.arrival[out.value] > worstArrival) {
      worstArrival = r.arrival[out.value];
      worstOut = out;
    }
  }
  std::vector<PathStep> reversed;
  NetId cursor = worstOut;
  while (cursor.valid() && nl.net(cursor).driver == DriverKind::Gate) {
    const GateId gid = nl.net(cursor).driverGate;
    reversed.push_back(PathStep{gid, r.arrival[cursor.value]});
    const Gate& g = nl.gateAt(gid);
    NetId worstIn{};
    double best = -1.0;
    for (NetId in : g.inputs()) {
      if (r.arrival[in.value] > best) {
        best = r.arrival[in.value];
        worstIn = in;
      }
    }
    cursor = worstIn;
  }
  r.criticalPath.assign(reversed.rbegin(), reversed.rend());
  return r;
}

double criticalDelayNs(const Netlist& nl, const DelayAnnotation& delays) {
  return analyze(nl, delays, 0.0).criticalDelayNs;
}

std::string formatCriticalPath(const Netlist& nl, const StaResult& sta) {
  std::ostringstream os;
  os << "critical path (" << sta.criticalDelayNs << " ns, "
     << sta.criticalPath.size() << " stages):\n";
  for (const PathStep& step : sta.criticalPath) {
    const Gate& g = nl.gateAt(step.gate);
    os << "  " << netlist::gateName(g.kind) << " -> " << nl.net(g.out).name
       << " @ " << step.arrivalNs << " ns\n";
  }
  return os.str();
}

double totalArea(const Netlist& nl, const CellLibrary& lib) {
  double area = 0.0;
  for (std::uint32_t gi = 0; gi < nl.gateCount(); ++gi) {
    area += lib.cell(nl.gateAt(GateId{gi}).kind).area;
  }
  return area;
}

}  // namespace oisa::timing
