// oisa_circuits: full gate-level ISA generator.
//
// Generates the paper's Fig. 1 structure: N/K concurrent speculative paths,
// each with a SPEC carry speculator, a sub-ADDer and a COMP error
// compensation block. The exact design is a single full-width adder. The
// generated netlist is bit-identical to the behavioral oisa_core::IsaAdder
// (cross-checked by tests).
//
// Port convention: primary inputs a0..a{N-1}, b0..b{N-1}, cin (in that
// order); primary outputs s0..s{N-1}, cout.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "circuits/adder_topologies.h"
#include "core/isa_config.h"
#include "netlist/netlist.h"

namespace oisa::circuits {

/// Structural generation choices.
struct IsaBuildOptions {
  /// Topology used for every sub-adder (and the exact adder).
  AdderTopology subAdderTopology = AdderTopology::Sklansky;
};

/// Builds the gate-level netlist of `cfg` (ISA or exact).
[[nodiscard]] netlist::Netlist buildIsaNetlist(
    const core::IsaConfig& cfg, const IsaBuildOptions& options = {});

/// Embeddable form: instantiates the ISA (or exact) adder of `cfg` over
/// existing operand nets inside `nl` and returns the sum/carry nets. Used
/// by buildIsaNetlist and by larger datapaths (e.g. the approximate
/// multiplier) that contain ISA adders as components.
[[nodiscard]] AdderPorts buildIsaCore(netlist::Netlist& nl,
                                      const core::IsaConfig& cfg,
                                      std::span<const netlist::NetId> a,
                                      std::span<const netlist::NetId> b,
                                      std::optional<netlist::NetId> carryIn,
                                      const IsaBuildOptions& options = {});

/// Packs (a, b, cin) into the primary-input vector of a generated netlist.
[[nodiscard]] std::vector<std::uint8_t> packOperands(std::uint64_t a,
                                                     std::uint64_t b,
                                                     bool carryIn, int width);

/// Allocation-free packOperands for per-cycle hot loops: `in` is resized
/// once and reused across calls.
void packOperandsInto(std::uint64_t a, std::uint64_t b, bool carryIn,
                      int width, std::vector<std::uint8_t>& in);

/// Extracts the width-bit sum from the primary-output vector.
[[nodiscard]] std::uint64_t unpackSum(std::span<const std::uint8_t> outputs,
                                      int width);

/// Extracts the carry-out from the primary-output vector.
[[nodiscard]] bool unpackCarryOut(std::span<const std::uint8_t> outputs,
                                  int width);

}  // namespace oisa::circuits
