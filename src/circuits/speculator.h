// oisa_circuits: the ISA carry SPEC block.
//
// Speculates the carry entering a path from the S operand bits preceding it,
// with the window carry-in speculated at 0: the speculated carry is the
// window's group-generate signal, built as a logarithmic-depth
// generate/propagate tree (the "carry look-ahead approach" of the paper).
#pragma once

#include <span>

#include "netlist/netlist.h"

namespace oisa::circuits {

/// Builds the speculated carry from window operand bits `a`,`b` (LSB first,
/// both of size S >= 1). `assumeCarryIn` selects the speculation polarity:
/// false speculates the window carry-in at 0 (the carry is the window's
/// group generate), true at 1 (generate OR full propagate). Returns the
/// speculated carry net.
[[nodiscard]] netlist::NetId buildSpeculator(
    netlist::Netlist& nl, std::span<const netlist::NetId> a,
    std::span<const netlist::NetId> b, bool assumeCarryIn = false);

}  // namespace oisa::circuits
