#include "circuits/compensation.h"

#include <stdexcept>

#include "circuits/adder_topologies.h"

namespace oisa::circuits {

using netlist::GateKind;
using netlist::Netlist;
using netlist::NetId;

// Timing-aware structure: the previous path's carry-out is the last-arriving
// input of a COMP block, so everything is precomputed from early signals
// (the speculated carry and the local sum LSBs) for both carry polarities,
// and a single MUX2 selected by the late carry picks the outcome. This
// keeps the COMP contribution to the critical path at ~2 cells, which is
// what lets compensated ISA designs sign off at the same 0.3 ns constraint
// as their uncompensated siblings (paper Sec. II-B: "minimal impact on the
// critical path").
CompensationPorts buildCompensation(Netlist& nl, NetId spec, NetId coutPrev,
                                    std::span<const NetId> localSum,
                                    std::span<const NetId> prevTop,
                                    int correction) {
  if (correction < 0 ||
      static_cast<std::size_t>(correction) > localSum.size()) {
    throw std::invalid_argument("buildCompensation: bad correction size");
  }
  const auto c = static_cast<std::size_t>(correction);

  CompensationPorts ports;
  ports.fault = nl.gate2(GateKind::Xor2, spec, coutPrev);
  ports.correctedSum.assign(localSum.begin(), localSum.end());

  const NetId invSpec = nl.gate1(GateKind::Inv, spec);

  // Balancing conditions for each carry polarity, from early signals only:
  //   carry = 1 (missed if spec == 0): force prev MSBs up when correction
  //     is impossible (low C bits all ones);
  //   carry = 0 (spurious if spec == 1): force prev MSBs down when the low
  //     C bits cannot absorb a decrement (all zeros).
  NetId upIfCarry = invSpec;
  NetId downIfNoCarry = spec;

  if (c > 0) {
    const NetId andLow = andTree(nl, localSum.first(c));
    const NetId orLow = orTree(nl, localSum.first(c));
    const NetId invAndLow = nl.gate1(GateKind::Inv, andLow);
    const NetId invOrLow = nl.gate1(GateKind::Inv, orLow);

    // Per-bit flip terms for both polarities. Bit j of the increment flips
    // when bits 0..j-1 are all ones; of the decrement when all zeros.
    NetId prefixOnes{};   // AND of localSum[0..j-1]
    NetId prefixZeros{};  // AND of ~localSum[0..j-1]
    for (std::size_t j = 0; j < c; ++j) {
      NetId incFlip;  // flip if carry == 1 (missed, correctable, ripple)
      NetId decFlip;  // flip if carry == 0 (spurious, correctable, borrow)
      if (j == 0) {
        incFlip = nl.gate2(GateKind::And2, invSpec, invAndLow);
        decFlip = nl.gate2(GateKind::And2, spec, orLow);
      } else {
        incFlip = nl.gate3(GateKind::And3, invSpec, invAndLow, prefixOnes);
        decFlip = nl.gate3(GateKind::And3, spec, orLow, prefixZeros);
      }
      // Both corrected-bit candidates are ready before the carry arrives;
      // a single MUX on the late carry resolves the bit.
      const NetId ifCarry = nl.gate2(GateKind::Xor2, localSum[j], incFlip);
      const NetId ifNoCarry = nl.gate2(GateKind::Xor2, localSum[j], decFlip);
      ports.correctedSum[j] =
          nl.gate3(GateKind::Mux2, ifNoCarry, ifCarry, coutPrev);

      if (j + 1 < c) {
        const NetId invBit = nl.gate1(GateKind::Inv, localSum[j]);
        prefixOnes = j == 0 ? localSum[j]
                            : nl.gate2(GateKind::And2, prefixOnes,
                                       localSum[j]);
        prefixZeros = j == 0 ? invBit
                             : nl.gate2(GateKind::And2, prefixZeros, invBit);
      }
    }
    const NetId corrIfCarry = nl.gate2(GateKind::And2, invSpec, invAndLow);
    const NetId corrIfNoCarry = nl.gate2(GateKind::And2, spec, orLow);
    ports.corrected =
        nl.gate3(GateKind::Mux2, corrIfNoCarry, corrIfCarry, coutPrev);

    upIfCarry = nl.gate2(GateKind::And2, invSpec, andLow);
    downIfNoCarry = nl.gate2(GateKind::And2, spec, invOrLow);
  } else {
    ports.corrected = nl.constant(false);
  }

  if (!prevTop.empty()) {
    const NetId keep = nl.gate1(GateKind::Inv, downIfNoCarry);
    ports.balancedPrevTop.reserve(prevTop.size());
    for (const NetId bit : prevTop) {
      // carry = 1 branch: bit | upIfCarry; carry = 0 branch: bit & ~down.
      const NetId up = nl.gate2(GateKind::Or2, bit, upIfCarry);
      const NetId down = nl.gate2(GateKind::And2, bit, keep);
      ports.balancedPrevTop.push_back(
          nl.gate3(GateKind::Mux2, down, up, coutPrev));
    }
  }
  return ports;
}

}  // namespace oisa::circuits
