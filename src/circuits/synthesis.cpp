#include "circuits/synthesis.h"

#include "timing/sta.h"

namespace oisa::circuits {

namespace {

SynthesizedDesign elaborate(const core::IsaConfig& cfg,
                            const timing::CellLibrary& lib,
                            AdderTopology topology) {
  IsaBuildOptions build;
  build.subAdderTopology = topology;
  netlist::Netlist nl = buildIsaNetlist(cfg, build);
  timing::DelayAnnotation delays(nl, lib);
  const double critical = timing::criticalDelayNs(nl, delays);
  const double area = timing::totalArea(nl, lib);
  return SynthesizedDesign{cfg,      std::move(nl), std::move(delays),
                           topology, critical,      area};
}

}  // namespace

SynthesizedDesign synthesize(const core::IsaConfig& cfg,
                             const timing::CellLibrary& lib,
                             const SynthesisOptions& options) {
  SynthesizedDesign best = [&] {
    if (options.forcedTopology) {
      return elaborate(cfg, lib, *options.forcedTopology);
    }
    // Constraint-driven selection: cheapest topology meeting the target
    // with the selection guardband; failing that, cheapest meeting the raw
    // target; failing that, the fastest available.
    const double margined =
        options.targetPeriodNs * (1.0 - options.selectionMargin);
    std::optional<SynthesizedDesign> meetsRaw;
    std::optional<SynthesizedDesign> fastest;
    for (AdderTopology topo : selectionTopologies()) {
      SynthesizedDesign candidate = elaborate(cfg, lib, topo);
      if (candidate.criticalDelayNs <= margined) {
        return candidate;
      }
      if (!meetsRaw && candidate.criticalDelayNs <= options.targetPeriodNs) {
        meetsRaw = std::move(candidate);
      } else if (!fastest ||
                 candidate.criticalDelayNs < fastest->criticalDelayNs) {
        fastest = std::move(candidate);
      }
    }
    if (meetsRaw) return std::move(*meetsRaw);
    return std::move(*fastest);
  }();

  if (options.relaxSlack) {
    timing::RelaxationOptions relax = options.relaxation;
    relax.targetPeriodNs = options.targetPeriodNs;
    (void)timing::relaxSlack(best.netlist, best.delays, relax);
    best.criticalDelayNs =
        timing::criticalDelayNs(best.netlist, best.delays);
  }
  best.meetsTiming = best.criticalDelayNs <= options.targetPeriodNs;
  return best;
}

std::vector<SynthesizedDesign> synthesizePaperDesigns(
    const timing::CellLibrary& lib, const SynthesisOptions& options) {
  std::vector<SynthesizedDesign> designs;
  designs.reserve(core::paperDesigns().size());
  for (const core::IsaConfig& cfg : core::paperDesigns()) {
    designs.push_back(synthesize(cfg, lib, options));
  }
  return designs;
}

}  // namespace oisa::circuits
