#include "circuits/adder_topologies.h"

#include <array>
#include <stdexcept>

namespace oisa::circuits {

using netlist::GateKind;
using netlist::Netlist;
using netlist::NetId;

std::string_view topologyName(AdderTopology t) noexcept {
  switch (t) {
    case AdderTopology::RippleCarry: return "ripple-carry";
    case AdderTopology::CarrySelect: return "carry-select";
    case AdderTopology::CarryLookahead: return "carry-lookahead";
    case AdderTopology::BrentKung: return "brent-kung";
    case AdderTopology::Sklansky: return "sklansky";
    case AdderTopology::KoggeStone: return "kogge-stone";
    case AdderTopology::HanCarlson: return "han-carlson";
  }
  return "?";
}

std::span<const AdderTopology> allTopologies() noexcept {
  static constexpr std::array<AdderTopology, 7> kAll = {
      AdderTopology::RippleCarry,    AdderTopology::CarrySelect,
      AdderTopology::CarryLookahead, AdderTopology::BrentKung,
      AdderTopology::Sklansky,       AdderTopology::HanCarlson,
      AdderTopology::KoggeStone};
  return kAll;
}

std::span<const AdderTopology> selectionTopologies() noexcept {
  static constexpr std::array<AdderTopology, 6> kSelectable = {
      AdderTopology::RippleCarry, AdderTopology::CarryLookahead,
      AdderTopology::BrentKung,   AdderTopology::Sklansky,
      AdderTopology::HanCarlson,  AdderTopology::KoggeStone};
  return kSelectable;
}

NetId andTree(Netlist& nl, std::span<const NetId> nets) {
  if (nets.empty()) throw std::invalid_argument("andTree: empty input");
  std::vector<NetId> level(nets.begin(), nets.end());
  while (level.size() > 1) {
    std::vector<NetId> next;
    std::size_t i = 0;
    while (i < level.size()) {
      const std::size_t left = level.size() - i;
      if (left == 3 || (left > 3 && left % 2 == 1)) {
        next.push_back(nl.gate3(GateKind::And3, level[i], level[i + 1],
                                level[i + 2]));
        i += 3;
      } else if (left >= 2) {
        next.push_back(nl.gate2(GateKind::And2, level[i], level[i + 1]));
        i += 2;
      } else {
        next.push_back(level[i]);
        i += 1;
      }
    }
    level = std::move(next);
  }
  return level.front();
}

NetId orTree(Netlist& nl, std::span<const NetId> nets) {
  if (nets.empty()) throw std::invalid_argument("orTree: empty input");
  std::vector<NetId> level(nets.begin(), nets.end());
  while (level.size() > 1) {
    std::vector<NetId> next;
    std::size_t i = 0;
    while (i < level.size()) {
      const std::size_t left = level.size() - i;
      if (left == 3 || (left > 3 && left % 2 == 1)) {
        next.push_back(
            nl.gate3(GateKind::Or3, level[i], level[i + 1], level[i + 2]));
        i += 3;
      } else if (left >= 2) {
        next.push_back(nl.gate2(GateKind::Or2, level[i], level[i + 1]));
        i += 2;
      } else {
        next.push_back(level[i]);
        i += 1;
      }
    }
    level = std::move(next);
  }
  return level.front();
}

namespace {

/// Per-bit propagate (XOR, reusable for the sum) and generate signals.
struct PgBits {
  std::vector<NetId> p;
  std::vector<NetId> g;
};

PgBits makePg(Netlist& nl, std::span<const NetId> a,
              std::span<const NetId> b) {
  PgBits pg;
  pg.p.reserve(a.size());
  pg.g.reserve(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    pg.p.push_back(nl.gate2(GateKind::Xor2, a[i], b[i]));
    pg.g.push_back(nl.gate2(GateKind::And2, a[i], b[i]));
  }
  return pg;
}

/// s_i = p_i ^ carryIn_i ; carry-in may be absent (bit 0 of a cin-less adder).
NetId makeSumBit(Netlist& nl, NetId p, std::optional<NetId> carry) {
  if (!carry) return nl.gate1(GateKind::Buf, p);
  return nl.gate2(GateKind::Xor2, p, *carry);
}

AdderPorts buildRipple(Netlist& nl, std::span<const NetId> a,
                       std::span<const NetId> b,
                       std::optional<NetId> carryIn) {
  AdderPorts ports;
  std::optional<NetId> carry = carryIn;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const NetId p = nl.gate2(GateKind::Xor2, a[i], b[i]);
    ports.sum.push_back(makeSumBit(nl, p, carry));
    if (carry) {
      carry = nl.gate3(GateKind::Maj3, a[i], b[i], *carry);
    } else {
      carry = nl.gate2(GateKind::And2, a[i], b[i]);
    }
  }
  ports.carryOut = *carry;
  return ports;
}

/// Carry = g_{hi} | p_hi&g_{hi-1} | ... | p_hi&..&p_lo&cin, built two-level
/// (OR-tree of AND-trees) for a group of up to 4 bits.
NetId lookaheadCarry(Netlist& nl, std::span<const NetId> p,
                     std::span<const NetId> g, std::optional<NetId> cin) {
  std::vector<NetId> terms;
  const std::size_t n = p.size();
  for (std::size_t j = 0; j < n; ++j) {
    // term: g_j AND p_{j+1} AND ... AND p_{n-1}
    std::vector<NetId> factors{g[j]};
    for (std::size_t k = j + 1; k < n; ++k) factors.push_back(p[k]);
    terms.push_back(andTree(nl, factors));
  }
  if (cin) {
    std::vector<NetId> factors{*cin};
    for (std::size_t k = 0; k < n; ++k) factors.push_back(p[k]);
    terms.push_back(andTree(nl, factors));
  }
  return orTree(nl, terms);
}

// Classic CLA: per-group generate/propagate are computed in parallel
// (independent of the carry-in), only the group carry ripples — two gates
// per group — and in-group carries are a two-level look-ahead from the
// (late) group carry-in.
AdderPorts buildCla(Netlist& nl, std::span<const NetId> a,
                    std::span<const NetId> b, std::optional<NetId> carryIn) {
  constexpr std::size_t kGroup = 4;
  const PgBits pg = makePg(nl, a, b);
  AdderPorts ports;
  std::optional<NetId> groupCin = carryIn;
  for (std::size_t base = 0; base < a.size(); base += kGroup) {
    const std::size_t n = std::min(kGroup, a.size() - base);
    const std::span<const NetId> p(pg.p.data() + base, n);
    const std::span<const NetId> g(pg.g.data() + base, n);
    // In-group carries from the group carry-in.
    for (std::size_t j = 0; j < n; ++j) {
      std::optional<NetId> carry = groupCin;
      if (j > 0) {
        carry = lookaheadCarry(nl, p.first(j), g.first(j), groupCin);
      }
      ports.sum.push_back(makeSumBit(nl, p[j], carry));
    }
    // Group carry-out: G* | P* & cin, with G*/P* cin-independent.
    const NetId groupGen = lookaheadCarry(nl, p, g, std::nullopt);
    if (groupCin) {
      const NetId groupProp = andTree(nl, p);
      groupCin = nl.gate2(GateKind::Or2, groupGen,
                          nl.gate2(GateKind::And2, groupProp, *groupCin));
    } else {
      groupCin = groupGen;
    }
  }
  ports.carryOut = *groupCin;
  return ports;
}

// Carry-select: each group is computed twice (carry-in 0 and carry-in 1)
// with cheap ripple chains; the actual group carry only drives the final
// per-bit muxes and the two-gate-deep carry chain between groups.
AdderPorts buildCarrySelect(Netlist& nl, std::span<const NetId> a,
                            std::span<const NetId> b,
                            std::optional<NetId> carryIn) {
  constexpr std::size_t kGroup = 4;
  AdderPorts ports;
  std::optional<NetId> groupCin = carryIn;
  for (std::size_t base = 0; base < a.size(); base += kGroup) {
    const std::size_t n = std::min(kGroup, a.size() - base);
    const std::span<const NetId> ag(a.data() + base, n);
    const std::span<const NetId> bg(b.data() + base, n);
    if (base == 0 && !groupCin) {
      // First group with no carry-in: a single ripple chain suffices.
      AdderPorts first = buildRipple(nl, ag, bg, std::nullopt);
      ports.sum = std::move(first.sum);
      groupCin = first.carryOut;
      continue;
    }
    // Variant with group carry-in = 0.
    AdderPorts zero = buildRipple(nl, ag, bg, std::nullopt);
    // Variant with group carry-in = 1 (first cell folded: s = xnor,
    // carry = a | b; the rest is a plain full-adder chain).
    std::vector<NetId> oneSum;
    oneSum.push_back(nl.gate2(GateKind::Xnor2, ag[0], bg[0]));
    NetId oneCarry = nl.gate2(GateKind::Or2, ag[0], bg[0]);
    for (std::size_t j = 1; j < n; ++j) {
      const NetId p = nl.gate2(GateKind::Xor2, ag[j], bg[j]);
      oneSum.push_back(nl.gate2(GateKind::Xor2, p, oneCarry));
      oneCarry = nl.gate3(GateKind::Maj3, ag[j], bg[j], oneCarry);
    }
    // Select by the actual carry into the group.
    for (std::size_t j = 0; j < n; ++j) {
      ports.sum.push_back(
          nl.gate3(GateKind::Mux2, zero.sum[j], oneSum[j], *groupCin));
    }
    groupCin =
        nl.gate3(GateKind::Mux2, zero.carryOut, oneCarry, *groupCin);
  }
  ports.carryOut = *groupCin;
  return ports;
}

/// Parallel-prefix combine: (G,P) o (G',P') = (G | P&G', P&P').
struct PrefixNode {
  NetId g;
  NetId p;
};

PrefixNode combine(Netlist& nl, const PrefixNode& hi, const PrefixNode& lo) {
  PrefixNode out;
  out.g = nl.gate2(GateKind::Or2, hi.g,
                   nl.gate2(GateKind::And2, hi.p, lo.g));
  out.p = nl.gate2(GateKind::And2, hi.p, lo.p);
  return out;
}

AdderPorts prefixSums(Netlist& nl, const PgBits& pg,
                      const std::vector<PrefixNode>& prefix,
                      std::optional<NetId> carryIn) {
  // prefix[j] spans bits [0..j]; carry into bit j+1 = G_j | P_j & cin.
  const std::size_t n = pg.p.size();
  AdderPorts ports;
  auto carryInto = [&](std::size_t j) -> NetId {  // carry into bit j, j >= 1
    const PrefixNode& pre = prefix[j - 1];
    if (!carryIn) return pre.g;
    return nl.gate2(GateKind::Or2, pre.g,
                    nl.gate2(GateKind::And2, pre.p, *carryIn));
  };
  ports.sum.push_back(makeSumBit(nl, pg.p[0], carryIn));
  for (std::size_t j = 1; j < n; ++j) {
    ports.sum.push_back(nl.gate2(GateKind::Xor2, pg.p[j], carryInto(j)));
  }
  ports.carryOut = carryInto(n);
  return ports;
}

AdderPorts buildSklansky(Netlist& nl, std::span<const NetId> a,
                         std::span<const NetId> b,
                         std::optional<NetId> carryIn) {
  const PgBits pg = makePg(nl, a, b);
  const std::size_t n = a.size();
  std::vector<PrefixNode> nodes(n);
  for (std::size_t j = 0; j < n; ++j) nodes[j] = {pg.g[j], pg.p[j]};
  for (std::size_t d = 1; d < n; d <<= 1) {
    std::vector<PrefixNode> next = nodes;
    for (std::size_t j = 0; j < n; ++j) {
      if (j & d) {
        const std::size_t anchor = (j & ~(2 * d - 1)) + d - 1;
        next[j] = combine(nl, nodes[j], nodes[anchor]);
      }
    }
    nodes = std::move(next);
  }
  return prefixSums(nl, pg, nodes, carryIn);
}

AdderPorts buildKoggeStone(Netlist& nl, std::span<const NetId> a,
                           std::span<const NetId> b,
                           std::optional<NetId> carryIn) {
  const PgBits pg = makePg(nl, a, b);
  const std::size_t n = a.size();
  std::vector<PrefixNode> nodes(n);
  for (std::size_t j = 0; j < n; ++j) nodes[j] = {pg.g[j], pg.p[j]};
  for (std::size_t d = 1; d < n; d <<= 1) {
    std::vector<PrefixNode> next = nodes;
    for (std::size_t j = d; j < n; ++j) {
      next[j] = combine(nl, nodes[j], nodes[j - d]);
    }
    nodes = std::move(next);
  }
  return prefixSums(nl, pg, nodes, carryIn);
}

// Brent-Kung: up-sweep builds power-of-two prefixes, down-sweep fills the
// rest — 2*log2(n) depth with the fewest prefix nodes of any tree here.
AdderPorts buildBrentKung(Netlist& nl, std::span<const NetId> a,
                          std::span<const NetId> b,
                          std::optional<NetId> carryIn) {
  const PgBits pg = makePg(nl, a, b);
  const std::size_t n = a.size();
  std::vector<PrefixNode> nodes(n);
  for (std::size_t j = 0; j < n; ++j) nodes[j] = {pg.g[j], pg.p[j]};
  std::size_t top = 1;
  for (std::size_t d = 1; d < n; d <<= 1) {
    for (std::size_t j = 2 * d - 1; j < n; j += 2 * d) {
      nodes[j] = combine(nl, nodes[j], nodes[j - d]);
    }
    top = d;
  }
  for (std::size_t d = top; d >= 2; d >>= 1) {
    for (std::size_t j = d + d / 2 - 1; j < n; j += d) {
      nodes[j] = combine(nl, nodes[j], nodes[j - d / 2]);
    }
  }
  return prefixSums(nl, pg, nodes, carryIn);
}

// Han-Carlson: Kogge-Stone over the odd positions, one initial and one
// final fix-up level — half the wiring of Kogge-Stone at +1 level depth.
AdderPorts buildHanCarlson(Netlist& nl, std::span<const NetId> a,
                           std::span<const NetId> b,
                           std::optional<NetId> carryIn) {
  const PgBits pg = makePg(nl, a, b);
  const std::size_t n = a.size();
  std::vector<PrefixNode> nodes(n);
  for (std::size_t j = 0; j < n; ++j) nodes[j] = {pg.g[j], pg.p[j]};
  for (std::size_t j = 1; j < n; j += 2) {
    nodes[j] = combine(nl, nodes[j], nodes[j - 1]);
  }
  for (std::size_t d = 2; d < n; d <<= 1) {
    std::vector<PrefixNode> next = nodes;
    for (std::size_t j = d + 1; j < n; j += 2) {
      next[j] = combine(nl, nodes[j], nodes[j - d]);
    }
    nodes = std::move(next);
  }
  for (std::size_t j = 2; j < n; j += 2) {
    nodes[j] = combine(nl, nodes[j], nodes[j - 1]);
  }
  return prefixSums(nl, pg, nodes, carryIn);
}

}  // namespace

AdderPorts buildAdder(Netlist& nl, std::span<const NetId> a,
                      std::span<const NetId> b,
                      std::optional<NetId> carryIn, AdderTopology topology) {
  if (a.size() != b.size() || a.empty()) {
    throw std::invalid_argument("buildAdder: operand spans must match");
  }
  switch (topology) {
    case AdderTopology::RippleCarry: return buildRipple(nl, a, b, carryIn);
    case AdderTopology::CarrySelect:
      return buildCarrySelect(nl, a, b, carryIn);
    case AdderTopology::CarryLookahead: return buildCla(nl, a, b, carryIn);
    case AdderTopology::BrentKung: return buildBrentKung(nl, a, b, carryIn);
    case AdderTopology::Sklansky: return buildSklansky(nl, a, b, carryIn);
    case AdderTopology::KoggeStone: return buildKoggeStone(nl, a, b, carryIn);
    case AdderTopology::HanCarlson:
      return buildHanCarlson(nl, a, b, carryIn);
  }
  throw std::invalid_argument("buildAdder: unknown topology");
}

}  // namespace oisa::circuits
