#include "circuits/multiplier_netlist.h"

#include <stdexcept>
#include <string>

namespace oisa::circuits {

using netlist::GateKind;
using netlist::Netlist;
using netlist::NetId;

netlist::Netlist buildMultiplierNetlist(const core::MultiplierConfig& cfg,
                                        const IsaBuildOptions& options) {
  cfg.validate();
  const int w = cfg.width;
  const int pw = 2 * w;
  Netlist nl("mul" + std::to_string(w) + "x" + std::to_string(w) + "_" +
             cfg.adder.name());

  std::vector<NetId> a, b;
  for (int i = 0; i < w; ++i) a.push_back(nl.input("a" + std::to_string(i)));
  for (int i = 0; i < w; ++i) b.push_back(nl.input("b" + std::to_string(i)));
  const NetId zero = nl.constant(false);

  // Row 0 initializes the accumulator with (a & b0) in the low W bits.
  std::vector<NetId> acc(static_cast<std::size_t>(pw), zero);
  for (int j = 0; j < w; ++j) {
    acc[static_cast<std::size_t>(j)] =
        nl.gate2(GateKind::And2, a[static_cast<std::size_t>(j)], b[0]);
  }

  // Rows 1..W-1: acc += (a & b_i) << i through the ISA row adder.
  for (int i = 1; i < w; ++i) {
    std::vector<NetId> pp(static_cast<std::size_t>(pw), zero);
    for (int j = 0; j < w; ++j) {
      pp[static_cast<std::size_t>(i + j)] =
          nl.gate2(GateKind::And2, a[static_cast<std::size_t>(j)],
                   b[static_cast<std::size_t>(i)]);
    }
    AdderPorts row =
        buildIsaCore(nl, cfg.adder, acc, pp, std::nullopt, options);
    acc = std::move(row.sum);  // carry-out cannot fire for in-range products
  }

  for (int j = 0; j < pw; ++j) {
    nl.output("p" + std::to_string(j), acc[static_cast<std::size_t>(j)]);
  }
  nl.validate();
  return nl;
}

std::vector<std::uint8_t> packMultiplierOperands(std::uint64_t a,
                                                 std::uint64_t b, int width) {
  std::vector<std::uint8_t> in(static_cast<std::size_t>(2 * width));
  for (int i = 0; i < width; ++i) {
    in[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>((a >> i) & 1u);
    in[static_cast<std::size_t>(width + i)] =
        static_cast<std::uint8_t>((b >> i) & 1u);
  }
  return in;
}

std::uint64_t unpackProduct(std::span<const std::uint8_t> outputs,
                            int width) {
  if (outputs.size() < static_cast<std::size_t>(2 * width)) {
    throw std::invalid_argument("unpackProduct: output vector too small");
  }
  std::uint64_t v = 0;
  for (int i = 0; i < 2 * width; ++i) {
    if (outputs[static_cast<std::size_t>(i)]) v |= std::uint64_t{1} << i;
  }
  return v;
}

}  // namespace oisa::circuits
