// oisa_circuits: the ISA COMP (error compensation) block.
//
// Detects a speculation fault by comparing the speculated carry with the
// carry-out of the preceding sub-adder, then:
//  * correction — conditionally increments/decrements the C LSBs of the
//    local sum (guarded against overflowing the C-bit group), and
//  * error reduction / balancing — when correction is impossible, forces
//    the R MSBs of the *preceding* sum towards the carry direction.
#pragma once

#include <span>
#include <vector>

#include "netlist/netlist.h"

namespace oisa::circuits {

/// Nets produced by one COMP block.
struct CompensationPorts {
  /// This path's local sum after the conditional +-1 correction (same size
  /// as the input local sum).
  std::vector<netlist::NetId> correctedSum;
  /// The preceding path's top R bits after balancing (same order as the
  /// `prevTop` input; empty when R == 0).
  std::vector<netlist::NetId> balancedPrevTop;
  /// Diagnostic nets (also used by tests).
  netlist::NetId fault;      ///< speculated carry != previous carry-out
  netlist::NetId corrected;  ///< a +-1 correction was applied
};

/// Builds a COMP block.
///
/// `spec`      — this path's speculated carry,
/// `coutPrev`  — carry-out of the preceding sub-adder,
/// `localSum`  — this path's K sum bits (LSB first), pre-compensation,
/// `prevTop`   — the R most significant bits of the preceding sum
///               (LSB-of-the-group first); may be empty (R == 0),
/// `correction`— C, number of correctable LSBs (0 disables correction).
[[nodiscard]] CompensationPorts buildCompensation(
    netlist::Netlist& nl, netlist::NetId spec, netlist::NetId coutPrev,
    std::span<const netlist::NetId> localSum,
    std::span<const netlist::NetId> prevTop, int correction);

}  // namespace oisa::circuits
