// oisa_circuits: constraint-driven synthesis front-end.
//
// Reproduces the paper's flow "circuits synthesized for 0.3 ns": for each
// design, pick the cheapest sub-adder topology whose STA meets the target
// period, optionally followed by the power-recovery slack-relaxation pass
// (which consumes leftover slack the way a synthesis tool trades it for
// power). The result bundles everything needed downstream: netlist, delay
// annotation, and sign-off numbers.
#pragma once

#include <optional>
#include <vector>

#include "circuits/isa_netlist.h"
#include "core/isa_config.h"
#include "netlist/netlist.h"
#include "timing/cell_library.h"
#include "timing/delay_annotation.h"
#include "timing/relaxation.h"

namespace oisa::circuits {

/// Synthesis controls.
struct SynthesisOptions {
  double targetPeriodNs = 0.3;  ///< the paper's 3.3 GHz constraint
  /// Optional selection guardband: topology selection prefers structures
  /// meeting the constraint with this much margin before falling back to
  /// ones merely meeting it. 0 reproduces a synthesis tool's area-first
  /// policy (the default; the paper's designs hug the 0.3 ns constraint).
  double selectionMargin = 0.0;
  bool relaxSlack = false;      ///< run the power-recovery sizing pass
  timing::RelaxationOptions relaxation{};  ///< pass controls (period is
                                           ///< overridden by targetPeriodNs)
  /// Force one topology instead of constraint-driven selection.
  std::optional<AdderTopology> forcedTopology;
};

/// A signed-off design: netlist + frozen delays + report numbers.
struct SynthesizedDesign {
  core::IsaConfig config;
  netlist::Netlist netlist;
  timing::DelayAnnotation delays;
  AdderTopology topology = AdderTopology::Sklansky;
  double criticalDelayNs = 0.0;
  double areaNand2 = 0.0;
  bool meetsTiming = false;
};

/// Synthesizes one design against the library and options.
[[nodiscard]] SynthesizedDesign synthesize(const core::IsaConfig& cfg,
                                           const timing::CellLibrary& lib,
                                           const SynthesisOptions& options = {});

/// Synthesizes all paper designs (convenience for benches/tests).
[[nodiscard]] std::vector<SynthesizedDesign> synthesizePaperDesigns(
    const timing::CellLibrary& lib, const SynthesisOptions& options = {});

}  // namespace oisa::circuits
