// oisa_circuits: gate-level ISA-based array multiplier.
//
// WxW -> 2W array multiplier: an AND-grid of partial products accumulated
// row by row through 2W-bit ISA adder cores (buildIsaCore). Bit-identical
// to core::IsaMultiplier (cross-checked in tests).
//
// Port convention: inputs a0..a{W-1}, b0..b{W-1}; outputs p0..p{2W-1}.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "circuits/isa_netlist.h"
#include "core/isa_multiplier.h"

namespace oisa::circuits {

/// Builds the gate-level array multiplier for `cfg`.
[[nodiscard]] netlist::Netlist buildMultiplierNetlist(
    const core::MultiplierConfig& cfg, const IsaBuildOptions& options = {});

/// Packs multiplier operands into the primary-input vector.
[[nodiscard]] std::vector<std::uint8_t> packMultiplierOperands(
    std::uint64_t a, std::uint64_t b, int width);

/// Extracts the 2W-bit product from the primary-output vector.
[[nodiscard]] std::uint64_t unpackProduct(
    std::span<const std::uint8_t> outputs, int width);

}  // namespace oisa::circuits
