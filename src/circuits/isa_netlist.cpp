#include "circuits/isa_netlist.h"

#include <stdexcept>
#include <string>

#include "circuits/compensation.h"
#include "circuits/speculator.h"

namespace oisa::circuits {

using netlist::Netlist;
using netlist::NetId;

AdderPorts buildIsaCore(Netlist& nl, const core::IsaConfig& cfg,
                        std::span<const NetId> a, std::span<const NetId> b,
                        std::optional<NetId> carryIn,
                        const IsaBuildOptions& options) {
  cfg.validate();
  if (a.size() != static_cast<std::size_t>(cfg.width) ||
      b.size() != static_cast<std::size_t>(cfg.width)) {
    throw std::invalid_argument("buildIsaCore: operand width mismatch");
  }
  if (cfg.exact) {
    return buildAdder(nl, a, b, carryIn, options.subAdderTopology);
  }
  {
    const int k = cfg.block;
    const int paths = cfg.pathCount();
    const int s = cfg.spec;
    const int r = cfg.reduction;

    // Stage 1: SPEC + ADD per path.
    std::vector<std::vector<NetId>> pathSums(
        static_cast<std::size_t>(paths));
    std::vector<NetId> pathCouts(static_cast<std::size_t>(paths));
    std::vector<NetId> pathSpecs(static_cast<std::size_t>(paths));
    for (int i = 0; i < paths; ++i) {
      const auto idx = static_cast<std::size_t>(i);
      const auto base = static_cast<std::size_t>(i * k);
      const std::span<const NetId> ai(a.data() + base,
                                      static_cast<std::size_t>(k));
      const std::span<const NetId> bi(b.data() + base,
                                      static_cast<std::size_t>(k));
      std::optional<NetId> specCarry;
      if (i == 0) {
        // The first path uses the true adder carry-in (a constant 0 when
        // the instantiation has no carry-in).
        if (!carryIn) {
          specCarry = std::nullopt;
          pathSpecs[idx] = nl.constant(false);
        } else {
          specCarry = carryIn;
          pathSpecs[idx] = *carryIn;
        }
      } else if (s > 0) {
        const auto wbase = base - static_cast<std::size_t>(s);
        const std::span<const NetId> aw(a.data() + wbase,
                                        static_cast<std::size_t>(s));
        const std::span<const NetId> bw(b.data() + wbase,
                                        static_cast<std::size_t>(s));
        pathSpecs[idx] = buildSpeculator(nl, aw, bw, cfg.speculateHigh);
        specCarry = pathSpecs[idx];
      } else if (cfg.speculateHigh) {
        // S == 0 speculating high: constant-1 carry into the sub-adder.
        pathSpecs[idx] = nl.constant(true);
        specCarry = pathSpecs[idx];
      } else {
        // S == 0: carry speculated constant-0; the sub-adder takes no cin
        // (a synthesis tool would fold the constant the same way).
        pathSpecs[idx] = nl.constant(false);
        specCarry = std::nullopt;
      }
      AdderPorts ports =
          buildAdder(nl, ai, bi, specCarry, options.subAdderTopology);
      pathSums[idx] = std::move(ports.sum);
      pathCouts[idx] = ports.carryOut;
    }

    // Stage 2: COMP per path (ascending, so balancing acts on the
    // preceding path's post-correction bits, as in the behavioral model).
    for (int i = 1; i < paths; ++i) {
      const auto idx = static_cast<std::size_t>(i);
      const auto rSize = static_cast<std::size_t>(r);
      const std::span<const NetId> prevTop =
          r > 0 ? std::span<const NetId>(
                      pathSums[idx - 1].data() +
                          (static_cast<std::size_t>(k) - rSize),
                      rSize)
                : std::span<const NetId>();
      CompensationPorts comp =
          buildCompensation(nl, pathSpecs[idx], pathCouts[idx - 1],
                            pathSums[idx], prevTop, cfg.correction);
      pathSums[idx] = std::move(comp.correctedSum);
      for (std::size_t j = 0; j < comp.balancedPrevTop.size(); ++j) {
        pathSums[idx - 1][static_cast<std::size_t>(k) - rSize + j] =
            comp.balancedPrevTop[j];
      }
    }

    AdderPorts result;
    result.sum.reserve(static_cast<std::size_t>(cfg.width));
    for (int i = 0; i < paths; ++i) {
      const auto& ps = pathSums[static_cast<std::size_t>(i)];
      result.sum.insert(result.sum.end(), ps.begin(), ps.end());
    }
    result.carryOut = pathCouts[static_cast<std::size_t>(paths - 1)];
    return result;
  }
}

netlist::Netlist buildIsaNetlist(const core::IsaConfig& cfg,
                                 const IsaBuildOptions& options) {
  cfg.validate();
  Netlist nl(cfg.name());
  const int width = cfg.width;

  std::vector<NetId> a, b;
  a.reserve(static_cast<std::size_t>(width));
  b.reserve(static_cast<std::size_t>(width));
  for (int i = 0; i < width; ++i) {
    a.push_back(nl.input("a" + std::to_string(i)));
  }
  for (int i = 0; i < width; ++i) {
    b.push_back(nl.input("b" + std::to_string(i)));
  }
  const NetId cin = nl.input("cin");

  const AdderPorts ports = buildIsaCore(nl, cfg, a, b, cin, options);
  for (int i = 0; i < width; ++i) {
    nl.output("s" + std::to_string(i),
              ports.sum[static_cast<std::size_t>(i)]);
  }
  nl.output("cout", ports.carryOut);
  nl.validate();
  return nl;
}

std::vector<std::uint8_t> packOperands(std::uint64_t a, std::uint64_t b,
                                       bool carryIn, int width) {
  std::vector<std::uint8_t> in;
  packOperandsInto(a, b, carryIn, width, in);
  return in;
}

void packOperandsInto(std::uint64_t a, std::uint64_t b, bool carryIn,
                      int width, std::vector<std::uint8_t>& in) {
  in.resize(static_cast<std::size_t>(2 * width + 1));
  for (int i = 0; i < width; ++i) {
    in[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>((a >> i) & 1u);
    in[static_cast<std::size_t>(width + i)] =
        static_cast<std::uint8_t>((b >> i) & 1u);
  }
  in[static_cast<std::size_t>(2 * width)] = carryIn ? 1 : 0;
}

std::uint64_t unpackSum(std::span<const std::uint8_t> outputs, int width) {
  if (outputs.size() < static_cast<std::size_t>(width) + 1) {
    throw std::invalid_argument("unpackSum: output vector too small");
  }
  std::uint64_t v = 0;
  for (int i = 0; i < width; ++i) {
    if (outputs[static_cast<std::size_t>(i)]) {
      v |= std::uint64_t{1} << i;
    }
  }
  return v;
}

bool unpackCarryOut(std::span<const std::uint8_t> outputs, int width) {
  if (outputs.size() < static_cast<std::size_t>(width) + 1) {
    throw std::invalid_argument("unpackCarryOut: output vector too small");
  }
  return outputs[static_cast<std::size_t>(width)] != 0;
}

}  // namespace oisa::circuits
