// oisa_circuits: gate-level adder generators.
//
// Four classic topologies with different delay/area trade-offs. The
// synthesis selector (synthesis.h) picks the cheapest one meeting the path
// timing budget, mimicking what a synthesis tool does under a delay
// constraint.
#pragma once

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "netlist/netlist.h"

namespace oisa::circuits {

/// Available sub-adder structures, cheapest/slowest first (the synthesis
/// selector walks this order under a delay constraint).
enum class AdderTopology {
  RippleCarry,    ///< full-adder chain: minimal area, O(n) delay
  CarrySelect,    ///< ripple groups computed for both carries, muxed
  CarryLookahead, ///< 4-bit look-ahead groups, group carry rippled
  BrentKung,      ///< sparse prefix tree: 2log2(n) depth, minimal nodes
  Sklansky,       ///< minimal-depth prefix tree, high fanout at tree roots
  KoggeStone,     ///< minimal-depth, minimal-fanout prefix tree, most area
  HanCarlson,     ///< Kogge-Stone on odd bits, ripple fix-up: balanced cost
};

[[nodiscard]] std::string_view topologyName(AdderTopology t) noexcept;

/// All topologies, cheapest first.
[[nodiscard]] std::span<const AdderTopology> allTopologies() noexcept;

/// Topologies the constraint-driven synthesis selector walks (cheapest
/// first). Excludes CarrySelect: its duplicated dual-rail datapath roughly
/// doubles switching activity, which a power-driven flow (our synthesis
/// model runs power recovery) rejects; it stays available through
/// SynthesisOptions::forcedTopology.
[[nodiscard]] std::span<const AdderTopology> selectionTopologies() noexcept;

/// Nets produced by an adder builder.
struct AdderPorts {
  std::vector<netlist::NetId> sum;  ///< n sum bits, LSB first
  netlist::NetId carryOut;
};

/// Builds an n-bit adder over existing nets `a` and `b` (equal sizes,
/// LSB first) with an optional carry-in net, using the given topology.
/// Returns the freshly created sum/carry nets.
[[nodiscard]] AdderPorts buildAdder(netlist::Netlist& nl,
                                    std::span<const netlist::NetId> a,
                                    std::span<const netlist::NetId> b,
                                    std::optional<netlist::NetId> carryIn,
                                    AdderTopology topology);

/// Balanced AND-tree (2/3-ary) over `nets`; requires at least one net.
[[nodiscard]] netlist::NetId andTree(netlist::Netlist& nl,
                                     std::span<const netlist::NetId> nets);

/// Balanced OR-tree (2/3-ary) over `nets`; requires at least one net.
[[nodiscard]] netlist::NetId orTree(netlist::Netlist& nl,
                                    std::span<const netlist::NetId> nets);

}  // namespace oisa::circuits
