#include "circuits/speculator.h"

#include <stdexcept>
#include <vector>

namespace oisa::circuits {

using netlist::GateKind;
using netlist::Netlist;
using netlist::NetId;

namespace {

struct GroupPg {
  NetId g;
  NetId p;
};

/// Recursive half-split group generate/propagate over window bits [lo, hi).
GroupPg groupPg(Netlist& nl, std::span<const NetId> g,
                std::span<const NetId> p, std::size_t lo, std::size_t hi) {
  if (hi - lo == 1) return {g[lo], p[lo]};
  const std::size_t mid = lo + (hi - lo) / 2;
  const GroupPg low = groupPg(nl, g, p, lo, mid);
  const GroupPg high = groupPg(nl, g, p, mid, hi);
  GroupPg out;
  out.g = nl.gate2(GateKind::Or2, high.g,
                   nl.gate2(GateKind::And2, high.p, low.g));
  out.p = nl.gate2(GateKind::And2, high.p, low.p);
  return out;
}

}  // namespace

NetId buildSpeculator(Netlist& nl, std::span<const NetId> a,
                      std::span<const NetId> b, bool assumeCarryIn) {
  if (a.size() != b.size() || a.empty()) {
    throw std::invalid_argument("buildSpeculator: bad window");
  }
  // Only generate/propagate matter; OR-propagate is sufficient (and
  // cheaper than XOR) for carry derivation: with a|b propagation, the
  // group "generate" already absorbs generate-under-propagate cases, and
  // G | P covers the assumed-carry polarity exactly.
  std::vector<NetId> g, p;
  g.reserve(a.size());
  p.reserve(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    g.push_back(nl.gate2(GateKind::And2, a[i], b[i]));
    p.push_back(nl.gate2(GateKind::Or2, a[i], b[i]));
  }
  const GroupPg window = groupPg(nl, g, p, 0, g.size());
  if (!assumeCarryIn) return window.g;
  // Carry-in speculated at 1: carry unless the window kills it.
  return nl.gate2(GateKind::Or2, window.g, window.p);
}

}  // namespace oisa::circuits
