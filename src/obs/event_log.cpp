#include "obs/event_log.h"

#include <chrono>

#include "obs/metrics.h"

namespace oisa::obs {

namespace {

std::int64_t wallClockMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

}  // namespace

EventLog::EventLog(const std::string& path) {
  if (path.empty()) return;
  file_ = std::fopen(path.c_str(), "wb");
  if (file_ == nullptr) {
    std::fprintf(stderr, "warning: cannot open event log '%s'; continuing\n",
                 path.c_str());
  }
}

EventLog::~EventLog() {
  if (file_ != nullptr) std::fclose(file_);
}

void EventLog::writeLine(const std::string& line) {
  std::lock_guard<std::mutex> lock(mu_);
  std::fwrite(line.data(), 1, line.size(), file_);
  std::fputc('\n', file_);
  std::fflush(file_);
}

EventLog::Event::Event(EventLog* log, std::string_view name) : log_(log) {
  if (log_ == nullptr) return;
  line_ = "{\"ts_ms\": " + std::to_string(wallClockMs()) + ", \"event\": \"";
  appendJsonEscaped(line_, name);
  line_ += '"';
}

EventLog::Event& EventLog::Event::str(std::string_view key,
                                      std::string_view value) {
  if (log_ == nullptr) return *this;
  line_ += ", \"";
  appendJsonEscaped(line_, key);
  line_ += "\": \"";
  appendJsonEscaped(line_, value);
  line_ += '"';
  return *this;
}

EventLog::Event& EventLog::Event::u64(std::string_view key,
                                      std::uint64_t value) {
  if (log_ == nullptr) return *this;
  line_ += ", \"";
  appendJsonEscaped(line_, key);
  line_ += "\": " + std::to_string(value);
  return *this;
}

EventLog::Event& EventLog::Event::i64(std::string_view key,
                                      std::int64_t value) {
  if (log_ == nullptr) return *this;
  line_ += ", \"";
  appendJsonEscaped(line_, key);
  line_ += "\": " + std::to_string(value);
  return *this;
}

EventLog::Event::~Event() {
  if (log_ == nullptr) return;
  line_ += '}';
  log_->writeLine(line_);
}

}  // namespace oisa::obs
