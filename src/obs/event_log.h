// oisa_obs: structured JSONL event log.
//
// One JSON object per line, appended and flushed immediately — the shard
// supervisor's durable record of fleet lifecycle events (spawn, restart,
// stall-kill, quarantine, absolution, merge). JSONL because a crashed
// supervisor leaves every completed line parseable, and `jq` and
// `python -m json.tool` consume it line by line.
//
// Cold path by design (events are per-worker-lifecycle, not per-cell):
// a mutex serializes writers and every line is flushed on emit.
#pragma once

#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <string_view>

namespace oisa::obs {

class EventLog {
 public:
  /// Disabled log: emits are no-ops.
  EventLog() = default;

  /// Opens (truncates) `path` for appending events; an empty path or a
  /// failed open yields a disabled log (campaigns must not die for want
  /// of a log file — the open failure is reported on stderr once).
  explicit EventLog(const std::string& path);

  EventLog(const EventLog&) = delete;
  EventLog& operator=(const EventLog&) = delete;
  ~EventLog();

  [[nodiscard]] bool enabled() const noexcept { return file_ != nullptr; }

  /// Fluent single-line event builder; the line is written and flushed
  /// when the Event goes out of scope:
  ///   log.event("quarantine").u64("cell", 5).u64("strikes", 2);
  class Event {
   public:
    Event(Event&&) = delete;
    Event& operator=(Event&&) = delete;
    Event(const Event&) = delete;
    Event& operator=(const Event&) = delete;

    Event& str(std::string_view key, std::string_view value);
    Event& u64(std::string_view key, std::uint64_t value);
    Event& i64(std::string_view key, std::int64_t value);
    ~Event();

   private:
    friend class EventLog;
    Event(EventLog* log, std::string_view name);
    EventLog* log_;
    std::string line_;
  };

  [[nodiscard]] Event event(std::string_view name) {
    return Event(enabled() ? this : nullptr, name);
  }

 private:
  void writeLine(const std::string& line);

  std::FILE* file_ = nullptr;
  std::mutex mu_;
};

}  // namespace oisa::obs
