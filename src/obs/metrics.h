// oisa_obs: lock-free metrics registry.
//
// The always-on counting substrate every long-lived run stands on:
// handles registered once by static name, per-thread sharded atomic
// accumulation on the hot path, aggregation deferred to snapshot time.
//
// Design:
//   * `Counter` / `Gauge` / `Histogram` handles are interned by name in a
//     process-global registry and never move or die, so call sites cache
//     the reference in a function-local static and pay one init-guard
//     check plus one relaxed atomic add per update.
//   * `Counter` spreads its adds over cache-line-padded shards indexed by
//     a per-thread slot, so concurrent writers on different cores do not
//     bounce one line. Snapshots sum the shards — exact at any quiescent
//     point (all relaxed adds are individually atomic; nothing is lost).
//   * The whole registry sits behind one process-global enable flag
//     (`setMetricsEnabled`). Disabled, every update is a single relaxed
//     load and a branch — the "no sink attached" cost that bench/micro_obs
//     gates at <= 3% on the fig7 cell path.
//   * Histograms bucket by log2 (bucket i counts values in [2^(i-1), 2^i)
//     with bucket 0 for zero), plus exact total count/sum and a CAS max —
//     enough for latency distributions without per-record allocation.
//
// Telemetry is side-effect-only by construction: nothing in this layer
// feeds back into simulation state, so every CSV stays byte-identical
// with metrics on or off (CI cross-check #11).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "core/status.h"

namespace oisa::obs {

namespace detail {
/// Process-global kill switch, checked (relaxed) by every update.
extern std::atomic<bool> gMetricsEnabled;
/// Stable small id for the calling thread, used to pick a counter shard.
[[nodiscard]] std::size_t threadShardSlot() noexcept;
}  // namespace detail

/// Counter shard fan-out. Power of two; 16 lines = 1 KiB per counter,
/// enough to keep an 8-16 thread grid pool off each other's lines.
inline constexpr std::size_t kCounterShards = 16;

/// Log2 histogram buckets: bucket 0 holds zeros, bucket i (1..64) holds
/// values with bit_width i, i.e. [2^(i-1), 2^i).
inline constexpr std::size_t kHistogramBuckets = 65;

/// Monotonic event counter. add() is wait-free: one relaxed fetch_add on
/// the caller's shard.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    if (!detail::gMetricsEnabled.load(std::memory_order_relaxed)) return;
    shards_[detail::threadShardSlot() & (kCounterShards - 1)].v.fetch_add(
        n, std::memory_order_relaxed);
  }

  /// Snapshot sum over all shards. Exact whenever no add() is in flight.
  [[nodiscard]] std::uint64_t value() const noexcept {
    std::uint64_t total = 0;
    for (const Shard& s : shards_) {
      total += s.v.load(std::memory_order_relaxed);
    }
    return total;
  }

  void resetForTest() noexcept {
    for (Shard& s : shards_) s.v.store(0, std::memory_order_relaxed);
  }

 private:
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> v{0};
  };
  Shard shards_[kCounterShards];
};

/// Last-write-wins instantaneous value (queue depths, fleet sizes).
/// Gauges are low-rate; a single atomic is enough.
class Gauge {
 public:
  void set(std::int64_t v) noexcept {
    if (!detail::gMetricsEnabled.load(std::memory_order_relaxed)) return;
    v_.store(v, std::memory_order_relaxed);
  }
  void add(std::int64_t d) noexcept {
    if (!detail::gMetricsEnabled.load(std::memory_order_relaxed)) return;
    v_.fetch_add(d, std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }
  void resetForTest() noexcept { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Log2-bucketed value distribution with exact count/sum and a max.
/// record() is lock-free: three relaxed adds plus a CAS max loop that
/// only spins while the recorded value is a new maximum.
class Histogram {
 public:
  void record(std::uint64_t v) noexcept {
    if (!detail::gMetricsEnabled.load(std::memory_order_relaxed)) return;
    const std::size_t bucket = static_cast<std::size_t>(
        v == 0 ? 0 : 64 - static_cast<std::size_t>(__builtin_clzll(v)));
    buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
    std::uint64_t seen = max_.load(std::memory_order_relaxed);
    while (v > seen &&
           !max_.compare_exchange_weak(seen, v, std::memory_order_relaxed)) {
    }
  }

  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t max() const noexcept {
    return max_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t bucket(std::size_t i) const noexcept {
    return buckets_[i].load(std::memory_order_relaxed);
  }

  void resetForTest() noexcept {
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
    max_.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> buckets_[kHistogramBuckets]{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> max_{0};
};

/// One aggregated reading of the whole registry.
struct MetricsSnapshot {
  struct HistogramSample {
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    std::uint64_t max = 0;
    /// Non-empty buckets only: (bucket lower bound, count).
    std::vector<std::pair<std::uint64_t, std::uint64_t>> buckets;
  };
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, std::int64_t> gauges;
  std::map<std::string, HistogramSample> histograms;
};

/// Interns `name` (cold path, mutex) and returns the stable handle. Call
/// sites cache it: `static obs::Counter& c = obs::counter("grid.retries");`
[[nodiscard]] Counter& counter(std::string_view name);
[[nodiscard]] Gauge& gauge(std::string_view name);
[[nodiscard]] Histogram& histogram(std::string_view name);

/// Master switch. Off (the default is ON) every update degenerates to a
/// relaxed load + branch; micro_obs measures exactly this "stripped" mode.
void setMetricsEnabled(bool enabled) noexcept;
[[nodiscard]] bool metricsEnabled() noexcept;

/// Aggregates every registered metric (registry order = name order).
[[nodiscard]] MetricsSnapshot snapshotMetrics();

/// Zeroes every registered metric (handles stay valid). Test isolation
/// and the baseline for delta streaming both key off this.
void resetMetricsForTest();

/// Serializes `snap` as the oisa-metrics-v1 JSON document. `meta` (may be
/// empty) lands under "meta"; `fleet` (may be null) — the supervisor's
/// accumulated worker counter deltas — lands under "fleet".
[[nodiscard]] std::string metricsJson(
    const MetricsSnapshot& snap,
    const std::map<std::string, std::string>& meta,
    const std::map<std::string, std::uint64_t>* fleet);

/// snapshotMetrics() + metricsJson() + write to `path`.
[[nodiscard]] core::Status writeMetricsJson(
    const std::string& path, const std::map<std::string, std::string>& meta,
    const std::map<std::string, std::uint64_t>* fleet = nullptr);

/// Escapes `s` for inclusion inside a JSON string literal (quotes not
/// included). Shared by the metrics, trace and event-log writers.
void appendJsonEscaped(std::string& out, std::string_view s);

}  // namespace oisa::obs
