#include "obs/span.h"

#include <unistd.h>

#include <bit>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <vector>

#include "obs/metrics.h"

namespace oisa::obs {

namespace {

std::atomic<bool> gTracing{false};
std::atomic<TraceRing*> gRing{nullptr};
std::atomic<std::int64_t> gSessionStartNs{0};

// Rings are retired, never freed: a span racing stopTracing() may still
// hold the old pointer, and the handful of sessions a process starts
// (one per CLI run, a few per test binary) make the leak irrelevant.
std::vector<TraceRing*>& retiredRings() {
  static std::vector<TraceRing*>* v = new std::vector<TraceRing*>();
  return *v;
}
std::mutex gSessionMu;

std::uint64_t nowUs() noexcept {
  const std::int64_t ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count();
  const std::int64_t start = gSessionStartNs.load(std::memory_order_relaxed);
  return static_cast<std::uint64_t>(ns > start ? (ns - start) / 1000 : 0);
}

// Per-thread trace state: a dense tid (assigned in order of first traced
// span) and the span stack the nesting depth comes from.
struct ThreadTraceState {
  static constexpr std::uint32_t kMaxStack = 32;
  std::uint32_t tid;
  std::uint32_t depth = 0;
  const char* stack[kMaxStack] = {};

  ThreadTraceState() {
    static std::atomic<std::uint32_t> next{0};
    tid = next.fetch_add(1, std::memory_order_relaxed);
  }
};

ThreadTraceState& threadTraceState() noexcept {
  thread_local ThreadTraceState state;
  return state;
}

void pushEvent(const char* name, const char* cat, std::uint64_t tsUs,
               std::uint64_t durUs, std::uint32_t depth, const char* argKey,
               std::uint64_t argValue, char phase) noexcept {
  TraceRing* ring = gRing.load(std::memory_order_acquire);
  if (ring == nullptr) return;
  TraceEvent ev;
  std::strncpy(ev.name, name, TraceEvent::kNameCapacity - 1);
  ev.name[TraceEvent::kNameCapacity - 1] = '\0';
  ev.cat = cat;
  ev.tsUs = tsUs;
  ev.durUs = durUs;
  ev.tid = threadTraceState().tid;
  ev.depth = depth;
  ev.argKey = argKey;
  ev.argValue = argValue;
  ev.phase = phase;
  (void)ring->tryPush(ev);  // full ring => counted drop, never a stall
}

}  // namespace

TraceRing::TraceRing(std::size_t capacity) {
  const std::size_t cap = std::bit_ceil(capacity < 8 ? std::size_t{8}
                                                     : capacity);
  mask_ = cap - 1;
  slots_ = std::make_unique<Slot[]>(cap);
  for (std::size_t i = 0; i < cap; ++i) {
    slots_[i].seq.store(i, std::memory_order_relaxed);
  }
}

bool TraceRing::tryPush(const TraceEvent& ev) noexcept {
  std::uint64_t pos = head_.load(std::memory_order_relaxed);
  for (;;) {
    Slot& slot = slots_[pos & mask_];
    const std::uint64_t seq = slot.seq.load(std::memory_order_acquire);
    const std::int64_t dif =
        static_cast<std::int64_t>(seq) - static_cast<std::int64_t>(pos);
    if (dif == 0) {
      if (head_.compare_exchange_weak(pos, pos + 1,
                                      std::memory_order_relaxed)) {
        slot.ev = ev;
        slot.seq.store(pos + 1, std::memory_order_release);
        return true;
      }
      // CAS lost: pos was reloaded; retry with the new position.
    } else if (dif < 0) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
      return false;  // full
    } else {
      pos = head_.load(std::memory_order_relaxed);
    }
  }
}

bool TraceRing::tryPop(TraceEvent& out) noexcept {
  std::uint64_t pos = tail_.load(std::memory_order_relaxed);
  for (;;) {
    Slot& slot = slots_[pos & mask_];
    const std::uint64_t seq = slot.seq.load(std::memory_order_acquire);
    const std::int64_t dif = static_cast<std::int64_t>(seq) -
                             static_cast<std::int64_t>(pos + 1);
    if (dif == 0) {
      if (tail_.compare_exchange_weak(pos, pos + 1,
                                      std::memory_order_relaxed)) {
        out = slot.ev;
        slot.seq.store(pos + mask_ + 1, std::memory_order_release);
        return true;
      }
    } else if (dif < 0) {
      return false;  // empty
    } else {
      pos = tail_.load(std::memory_order_relaxed);
    }
  }
}

void startTracing(std::size_t capacity) {
  std::lock_guard<std::mutex> lock(gSessionMu);
  if (TraceRing* old = gRing.load(std::memory_order_relaxed)) {
    gTracing.store(false, std::memory_order_relaxed);
    gRing.store(nullptr, std::memory_order_release);
    retiredRings().push_back(old);
  }
  gSessionStartNs.store(std::chrono::duration_cast<std::chrono::nanoseconds>(
                            std::chrono::steady_clock::now().time_since_epoch())
                            .count(),
                        std::memory_order_relaxed);
  gRing.store(new TraceRing(capacity), std::memory_order_release);
  gTracing.store(true, std::memory_order_release);
}

void stopTracing() {
  std::lock_guard<std::mutex> lock(gSessionMu);
  gTracing.store(false, std::memory_order_relaxed);
  if (TraceRing* old = gRing.load(std::memory_order_relaxed)) {
    gRing.store(nullptr, std::memory_order_release);
    retiredRings().push_back(old);
  }
}

bool tracingEnabled() noexcept {
  return gTracing.load(std::memory_order_relaxed);
}

std::uint64_t traceDropped() noexcept {
  const TraceRing* ring = gRing.load(std::memory_order_acquire);
  return ring != nullptr ? ring->dropped() : 0;
}

ObsSpan::ObsSpan(const char* name, const char* cat, const char* argKey,
                 std::uint64_t argValue) noexcept {
  if (!gTracing.load(std::memory_order_relaxed)) return;
  armed_ = true;
  name_ = name;
  cat_ = cat;
  argKey_ = argKey;
  argValue_ = argValue;
  ThreadTraceState& state = threadTraceState();
  depth_ = state.depth;
  if (state.depth < ThreadTraceState::kMaxStack) {
    state.stack[state.depth] = name;
  }
  ++state.depth;
  startUs_ = nowUs();
}

ObsSpan::~ObsSpan() {
  if (!armed_) return;
  const std::uint64_t end = nowUs();
  ThreadTraceState& state = threadTraceState();
  if (state.depth > 0) {
    --state.depth;
    if (state.depth < ThreadTraceState::kMaxStack) {
      state.stack[state.depth] = nullptr;
    }
  }
  pushEvent(name_, cat_, startUs_, end > startUs_ ? end - startUs_ : 0,
            depth_, argKey_, argValue_, 'X');
}

void traceInstant(const char* name, const char* cat) noexcept {
  if (!gTracing.load(std::memory_order_relaxed)) return;
  pushEvent(name, cat, nowUs(), 0, threadTraceState().depth, nullptr, 0, 'i');
}

std::string drainTraceJson() {
  TraceRing* ring = gRing.load(std::memory_order_acquire);
  std::string out = "{\n\"traceEvents\": [";
  const int pid = static_cast<int>(::getpid());
  bool first = true;
  TraceEvent ev;
  std::uint64_t drained = 0;
  while (ring != nullptr && ring->tryPop(ev)) {
    if (!first) out += ',';
    first = false;
    ++drained;
    out += "\n{\"name\": \"";
    appendJsonEscaped(out, ev.name);
    out += "\", \"cat\": \"";
    appendJsonEscaped(out, ev.cat != nullptr ? ev.cat : "");
    out += "\", \"ph\": \"";
    out += ev.phase;
    out += "\", \"ts\": " + std::to_string(ev.tsUs);
    if (ev.phase == 'X') {
      out += ", \"dur\": " + std::to_string(ev.durUs);
    } else {
      out += ", \"s\": \"t\"";
    }
    out += ", \"pid\": " + std::to_string(pid) +
           ", \"tid\": " + std::to_string(ev.tid) + ", \"args\": {\"depth\": " +
           std::to_string(ev.depth);
    if (ev.argKey != nullptr) {
      out += ", \"";
      appendJsonEscaped(out, ev.argKey);
      out += "\": " + std::to_string(ev.argValue);
    }
    out += "}}";
  }
  out += "\n],\n\"displayTimeUnit\": \"ms\",\n\"otherData\": {";
  out += "\"schema\": \"oisa-trace-v1\", \"dropped\": " +
         std::to_string(ring != nullptr ? ring->dropped() : 0) +
         ", \"drained\": " + std::to_string(drained) + "}\n}\n";
  return out;
}

core::Status writeTraceJson(const std::string& path) {
  const std::string doc = drainTraceJson();
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return core::Status::ioError("trace: cannot open '" + path +
                                 "' for writing");
  }
  const std::size_t written = std::fwrite(doc.data(), 1, doc.size(), f);
  const bool closed = std::fclose(f) == 0;
  if (written != doc.size() || !closed) {
    return core::Status::ioError("trace: short write to '" + path + "'");
  }
  return core::Status::ok();
}

}  // namespace oisa::obs
