// oisa_obs: span tracing.
//
// RAII `ObsSpan` scopes record wall-time intervals into a bounded
// lock-free ring buffer and serialize as Chrome trace-event JSON — the
// `{"traceEvents": [...]}` format chrome://tracing and Perfetto open
// directly (https://ui.perfetto.dev, drag the file in).
//
// Hot-path contract:
//   * Tracing is off by default. A disarmed ObsSpan costs one relaxed
//     atomic load and a branch — cheap enough to leave in per-cell and
//     per-collect code permanently.
//   * Armed, the span captures a steady_clock timestamp at open and
//     pushes one fixed-size POD event at close. The push is a bounded
//     MPMC ring insert (Vyukov sequence-slot scheme): wait-free for
//     practical purposes and it NEVER blocks — when the ring is full the
//     event is counted dropped and the worker moves on. Slow or wedged
//     trace consumers can therefore never stall a campaign.
//   * Every thread keeps a thread-local span stack (names + depth);
//     events record their nesting depth so a flame view reconstructs even
//     across ring drops.
//
// Ordering note: events drain in ring order, which is completion order,
// not start order; trace viewers sort by `ts` themselves.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "core/status.h"

namespace oisa::obs {

/// Fixed-size POD trace record. `name` is copied (truncated) so spans can
/// label themselves with stack-built strings; `cat` and `argKey` must be
/// string literals (or otherwise outlive the tracing session).
struct TraceEvent {
  static constexpr std::size_t kNameCapacity = 48;
  char name[kNameCapacity];
  const char* cat = nullptr;
  std::uint64_t tsUs = 0;   ///< span start, µs since session start
  std::uint64_t durUs = 0;  ///< span duration in µs
  std::uint32_t tid = 0;    ///< dense per-thread id (order of first span)
  std::uint32_t depth = 0;  ///< nesting depth at open (0 = top level)
  const char* argKey = nullptr;  ///< optional single argument, nullptr = none
  std::uint64_t argValue = 0;
  char phase = 'X';  ///< Chrome phase: 'X' complete span, 'i' instant
};

/// Bounded lock-free MPMC ring (Vyukov sequence-slot queue). tryPush on a
/// full ring drops the event and bumps the drop counter instead of ever
/// waiting; tryPop drains in FIFO order.
class TraceRing {
 public:
  /// `capacity` is rounded up to a power of two, minimum 8.
  explicit TraceRing(std::size_t capacity);

  TraceRing(const TraceRing&) = delete;
  TraceRing& operator=(const TraceRing&) = delete;

  [[nodiscard]] bool tryPush(const TraceEvent& ev) noexcept;
  [[nodiscard]] bool tryPop(TraceEvent& out) noexcept;

  [[nodiscard]] std::uint64_t dropped() const noexcept {
    return dropped_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t capacity() const noexcept { return mask_ + 1; }

 private:
  struct alignas(64) Slot {
    std::atomic<std::uint64_t> seq;
    TraceEvent ev;
  };
  std::unique_ptr<Slot[]> slots_;
  std::size_t mask_;
  alignas(64) std::atomic<std::uint64_t> head_{0};  ///< next push position
  alignas(64) std::atomic<std::uint64_t> tail_{0};  ///< next pop position
  alignas(64) std::atomic<std::uint64_t> dropped_{0};
};

/// Arms tracing with a fresh ring of `capacity` events and restarts the
/// session clock. Idempotent per session: a second call replaces the ring
/// (any undrained events are discarded).
void startTracing(std::size_t capacity = std::size_t{1} << 16);

/// Disarms tracing and discards the ring. (Primarily test isolation.)
void stopTracing();

[[nodiscard]] bool tracingEnabled() noexcept;

/// Events dropped by the current session's ring (0 when disarmed).
[[nodiscard]] std::uint64_t traceDropped() noexcept;

/// Drains the ring into a Chrome trace-event JSON document:
/// {"traceEvents":[{name,cat,ph:"X",ts,dur,pid,tid,args:{...}}...],
///  "otherData":{"schema":"oisa-trace-v1","dropped":N}}.
[[nodiscard]] std::string drainTraceJson();

/// drainTraceJson() + write to `path`.
[[nodiscard]] core::Status writeTraceJson(const std::string& path);

/// RAII traced scope. Constructed disarmed when tracing is off.
class ObsSpan {
 public:
  ObsSpan(const char* name, const char* cat) noexcept
      : ObsSpan(name, cat, nullptr, 0) {}

  /// `argKey` (a literal) attaches one numeric argument to the event,
  /// e.g. ObsSpan("cell", "grid", "cell", cellIndex).
  ObsSpan(const char* name, const char* cat, const char* argKey,
          std::uint64_t argValue) noexcept;

  ObsSpan(const ObsSpan&) = delete;
  ObsSpan& operator=(const ObsSpan&) = delete;

  ~ObsSpan();

 private:
  std::uint64_t startUs_ = 0;
  const char* name_ = nullptr;
  const char* cat_ = nullptr;
  const char* argKey_ = nullptr;
  std::uint64_t argValue_ = 0;
  std::uint32_t depth_ = 0;
  bool armed_ = false;
};

/// Zero-duration instant event ("i" phase in the trace): marks a moment
/// (worker restart, checkpoint flush) rather than a scope.
void traceInstant(const char* name, const char* cat) noexcept;

}  // namespace oisa::obs
