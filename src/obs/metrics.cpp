#include "obs/metrics.h"

#include <cstdio>
#include <memory>
#include <mutex>

namespace oisa::obs {

namespace detail {

std::atomic<bool> gMetricsEnabled{true};

std::size_t threadShardSlot() noexcept {
  // Dense per-thread slots (0, 1, 2, ...) spread a thread pool evenly
  // over the shards; a hashed thread::id would collide at small counts.
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t slot =
      next.fetch_add(1, std::memory_order_relaxed);
  return slot;
}

}  // namespace detail

namespace {

// One map per kind. std::map nodes are stable, so handles returned from
// counter()/gauge()/histogram() stay valid for the process lifetime.
struct Registry {
  std::mutex mu;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms;
};

Registry& registry() {
  // Leaked on purpose: metric handles are cached in function-local
  // statics all over the codebase and may be touched during shutdown.
  static Registry* r = new Registry();
  return *r;
}

template <typename T>
T& intern(std::map<std::string, std::unique_ptr<T>, std::less<>>& m,
          std::string_view name) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  auto it = m.find(name);
  if (it == m.end()) {
    it = m.emplace(std::string(name), std::make_unique<T>()).first;
  }
  return *it->second;
}

}  // namespace

Counter& counter(std::string_view name) {
  return intern(registry().counters, name);
}

Gauge& gauge(std::string_view name) { return intern(registry().gauges, name); }

Histogram& histogram(std::string_view name) {
  return intern(registry().histograms, name);
}

void setMetricsEnabled(bool enabled) noexcept {
  detail::gMetricsEnabled.store(enabled, std::memory_order_relaxed);
}

bool metricsEnabled() noexcept {
  return detail::gMetricsEnabled.load(std::memory_order_relaxed);
}

MetricsSnapshot snapshotMetrics() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  MetricsSnapshot snap;
  for (const auto& [name, c] : r.counters) {
    snap.counters.emplace(name, c->value());
  }
  for (const auto& [name, g] : r.gauges) {
    snap.gauges.emplace(name, g->value());
  }
  for (const auto& [name, h] : r.histograms) {
    MetricsSnapshot::HistogramSample s;
    s.count = h->count();
    s.sum = h->sum();
    s.max = h->max();
    for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
      const std::uint64_t n = h->bucket(i);
      if (n == 0) continue;
      const std::uint64_t lower = i == 0 ? 0 : (std::uint64_t{1} << (i - 1));
      s.buckets.emplace_back(lower, n);
    }
    snap.histograms.emplace(name, std::move(s));
  }
  return snap;
}

void resetMetricsForTest() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  for (auto& [name, c] : r.counters) c->resetForTest();
  for (auto& [name, g] : r.gauges) g->resetForTest();
  for (auto& [name, h] : r.histograms) h->resetForTest();
}

void appendJsonEscaped(std::string& out, std::string_view s) {
  for (const char ch : s) {
    switch (ch) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(ch)));
          out += buf;
        } else {
          out += ch;
        }
    }
  }
}

namespace {

void appendKey(std::string& out, std::string_view name) {
  out += '"';
  appendJsonEscaped(out, name);
  out += "\": ";
}

template <typename Map, typename Emit>
void appendObject(std::string& out, std::string_view key, const Map& m,
                  Emit emit) {
  appendKey(out, key);
  out += "{";
  bool first = true;
  for (const auto& [name, value] : m) {
    if (!first) out += ", ";
    first = false;
    out += "\n    ";
    appendKey(out, name);
    emit(out, value);
  }
  out += m.empty() ? "}" : "\n  }";
}

}  // namespace

std::string metricsJson(const MetricsSnapshot& snap,
                        const std::map<std::string, std::string>& meta,
                        const std::map<std::string, std::uint64_t>* fleet) {
  std::string out = "{\n  \"schema\": \"oisa-metrics-v1\",\n  ";
  appendObject(out, "meta", meta, [](std::string& o, const std::string& v) {
    o += '"';
    appendJsonEscaped(o, v);
    o += '"';
  });
  out += ",\n  ";
  appendObject(out, "counters", snap.counters,
               [](std::string& o, std::uint64_t v) { o += std::to_string(v); });
  out += ",\n  ";
  appendObject(out, "gauges", snap.gauges,
               [](std::string& o, std::int64_t v) { o += std::to_string(v); });
  out += ",\n  ";
  appendObject(
      out, "histograms", snap.histograms,
      [](std::string& o, const MetricsSnapshot::HistogramSample& h) {
        o += "{\"count\": " + std::to_string(h.count) +
             ", \"sum\": " + std::to_string(h.sum) +
             ", \"max\": " + std::to_string(h.max) + ", \"buckets\": {";
        bool first = true;
        for (const auto& [lower, n] : h.buckets) {
          if (!first) o += ", ";
          first = false;
          o += '"' + std::to_string(lower) + "\": " + std::to_string(n);
        }
        o += "}}";
      });
  if (fleet != nullptr) {
    out += ",\n  ";
    appendObject(
        out, "fleet", *fleet,
        [](std::string& o, std::uint64_t v) { o += std::to_string(v); });
  }
  out += "\n}\n";
  return out;
}

core::Status writeMetricsJson(const std::string& path,
                              const std::map<std::string, std::string>& meta,
                              const std::map<std::string, std::uint64_t>* fleet) {
  const std::string doc = metricsJson(snapshotMetrics(), meta, fleet);
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return core::Status::ioError("metrics: cannot open '" + path +
                                 "' for writing");
  }
  const std::size_t written = std::fwrite(doc.data(), 1, doc.size(), f);
  const bool closed = std::fclose(f) == 0;
  if (written != doc.size() || !closed) {
    return core::Status::ioError("metrics: short write to '" + path + "'");
  }
  return core::Status::ok();
}

}  // namespace oisa::obs
