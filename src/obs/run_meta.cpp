#include "obs/run_meta.h"

#include <unistd.h>

#include <cstdlib>
#include <thread>

namespace oisa::obs {

std::string gitSha() {
  for (const char* var : {"OISA_GIT_SHA", "GITHUB_SHA"}) {
    if (const char* sha = std::getenv(var); sha != nullptr && sha[0] != '\0') {
      return sha;
    }
  }
#ifdef OISA_BUILD_GIT_SHA
  return OISA_BUILD_GIT_SHA;
#else
  return "unknown";
#endif
}

std::string hostName() {
  char buf[256];
  if (::gethostname(buf, sizeof buf) != 0) return "unknown";
  buf[sizeof buf - 1] = '\0';
  return buf;
}

std::map<std::string, std::string> runMetadata() {
  std::map<std::string, std::string> meta;
  meta.emplace("git_sha", gitSha());
  meta.emplace("hostname", hostName());
  meta.emplace("pid", std::to_string(::getpid()));
  meta.emplace("hw_threads",
               std::to_string(std::thread::hardware_concurrency()));
  return meta;
}

}  // namespace oisa::obs
