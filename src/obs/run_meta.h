// oisa_obs: run attribution metadata.
//
// The facts that make a perf number or a metrics dump attributable after
// the fact: which commit, which host, how many hardware threads, which
// process. The git sha is baked in at configure time (OISA_BUILD_GIT_SHA)
// and can be overridden at run time via OISA_GIT_SHA or GITHUB_SHA — CI
// checkouts often build from a tarball where `git` saw nothing.
#pragma once

#include <map>
#include <string>

namespace oisa::obs {

/// Commit sha: env OISA_GIT_SHA, else GITHUB_SHA, else the configure-time
/// sha, else "unknown".
[[nodiscard]] std::string gitSha();

/// gethostname(), "unknown" on failure.
[[nodiscard]] std::string hostName();

/// Baseline attribution map: git_sha, hostname, pid, hw_threads. Callers
/// (bench_common) extend it with bench-specific facts (lane width/arch,
/// configured thread count) before embedding it in a JSON epilogue.
[[nodiscard]] std::map<std::string, std::string> runMetadata();

}  // namespace oisa::obs
