// oisa_experiments: defect-aware error analysis across the paper designs.
//
// The paper studies two deterministic error sources — structural (ISA
// speculation) and timing (overclocking) — and shows they interact
// non-additively. Silicon defects are the missing third source. This scan
// grid-schedules, per paper design:
//
//  1. a stuck-at fault-coverage campaign: the collapsed fault universe of
//     the synthesized netlist simulated against the experiment workload
//     through the PPSFP engine (64 patterns per sweep, fault dropping);
//  2. a timed defect phase: a sample of detected stem-fault classes is
//     clamped into the 64-lane timed engine and the *defective* design is
//     re-measured under overclocked sampling, yielding the E_joint shift
//     a defect adds on top of the healthy structural+timing error.
//
// Rows emit like every other experiment (ASCII table + CSV via
// bench/fault_coverage.cpp).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "circuits/synthesis.h"
#include "experiments/runner.h"

namespace oisa::experiments {

/// Controls for the fault scan.
struct FaultScanOptions {
  /// cycles = coverage patterns; seed/workload drive both phases;
  /// threads fan designs out over the grid scheduler.
  RunOptions run{};
  double cprPercent = 15.0;        ///< overclock point of the timed phase
  std::uint64_t timedCycles = 8192; ///< measured cycles per timed run
  std::size_t timedFaults = 8;      ///< sampled detected stem classes
};

/// One design row.
struct FaultScanRow {
  std::string design;
  // Coverage phase.
  std::uint64_t universeFaults = 0;   ///< full universe (stems + branches)
  std::uint64_t collapsedClasses = 0; ///< after equivalence collapsing
  std::uint64_t detectedClasses = 0;
  double coveragePercent = 0.0;       ///< detected / collapsed * 100
  std::uint64_t patterns = 0;
  // Timed phase.
  double cprPercent = 0.0;
  double periodNs = 0.0;
  double rmsRelJointHealthy = 0.0;  ///< fault-free E_joint RMS (fractional)
  double rmsRelJointFaulty = 0.0;   ///< mean over the sampled defects
  double eJointShift = 0.0;         ///< faulty - healthy
  double worstRelJointFaulty = 0.0; ///< worst sampled defect's E_joint RMS
  std::uint64_t timedFaultsMeasured = 0;
};

/// Runs the scan over every design; one row per design, grid-scheduled
/// like the other experiment sweeps (bit-identical at any thread count).
[[nodiscard]] std::vector<FaultScanRow> runFaultErrorScan(
    const std::vector<circuits::SynthesizedDesign>& designs,
    const FaultScanOptions& options);

}  // namespace oisa::experiments
