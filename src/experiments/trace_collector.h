// oisa_experiments: gate-level trace collection.
//
// The paper's "Data Collection" step: drive the synthesized design with a
// workload through the overclocked event-driven simulator, recording per
// cycle the exact sum (y_diamond), the behavioral/RTL sum (y_gold) and the
// gate-level sampled sum (y_silver).
#pragma once

#include <cstdint>

#include "circuits/synthesis.h"
#include "experiments/workload.h"
#include "predict/trace.h"

namespace oisa::experiments {

/// Clock-period reduction (CPR) in percent of the sign-off period.
[[nodiscard]] constexpr double overclockedPeriodNs(double signOffNs,
                                                   double cprPercent) noexcept {
  return signOffNs * (1.0 - cprPercent / 100.0);
}

/// Runs `cycles` cycles of `workload` through `design` at `periodNs` and
/// returns the per-cycle trace. The first stimulus is used as a settled
/// reset vector (not recorded).
[[nodiscard]] predict::Trace collectTrace(
    const circuits::SynthesizedDesign& design, double periodNs,
    Workload& workload, std::uint64_t cycles);

}  // namespace oisa::experiments
