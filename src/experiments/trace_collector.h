// oisa_experiments: gate-level trace collection.
//
// The paper's "Data Collection" step: drive the synthesized design with a
// workload through the overclocked event-driven simulator, recording per
// cycle the exact sum (y_diamond), the behavioral/RTL sum (y_gold) and the
// gate-level sampled sum (y_silver).
//
// TraceCollector is the lane-parallel engine for that step. It
// materializes the workload stream once, splits the run into up to W
// contiguous chunks (W = the runtime-selected lane width, 64/256/512 —
// see netlist/lane_width.h), and replays every chunk as an independent
// lane of one timed sweep over the shared compiled netlist — W
// overclocked cycles per wheel pass instead of one. The replay is
// **bit-exact** versus the sequential scalar collector at any lane count
// and any width: a latched output depends only on the input vectors
// applied within one maximum-path-delay window before its edge, so
// seeding each chunk with a settle on the stimulus just before its window
// (plus `warmUpCycles()` replayed-but-discarded cycles when the overclock
// is deeper than half the critical path) reproduces the mid-stream
// simulator state exactly. tests/lane_sim_test.cpp asserts
// record-for-record equality against the retained scalar reference
// (collectTraceScalar), tests/lane_width_test.cpp re-asserts it at every
// available width, and bench/micro_lane_sim.cpp re-proves it before
// gating the speedup.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "circuits/synthesis.h"
#include "core/isa_adder.h"
#include "experiments/workload.h"
#include "netlist/compiled_netlist.h"
#include "predict/features.h"
#include "predict/trace.h"
#include "timing/lane_dispatch.h"
#include "timing/lane_sim.h"

namespace oisa::experiments {

/// Clock-period reduction (CPR) in percent of the sign-off period.
[[nodiscard]] constexpr double overclockedPeriodNs(double signOffNs,
                                                   double cprPercent) noexcept {
  return signOffNs * (1.0 - cprPercent / 100.0);
}

/// A collected trace together with its packed bit-column form (the
/// ml::PackedView substrate the predictor bank trains and evaluates on).
struct CollectedTrace {
  predict::Trace trace;
  predict::PackedTraceFeatures packed;
};

/// Lane-parallel timed trace collector for one (design, period) point.
///
/// Construct once per point and reuse across collects (train/test streams,
/// repeated sweeps): the netlist is compiled once and the lane simulator's
/// buffers are recycled. Each collect() resets the simulator, so repeated
/// runs with identically seeded workloads are bit-identical.
class TraceCollector {
 public:
  /// `periodNs` — the (possibly overclocked) clock period. `maxLanes`
  /// caps the independent replay streams per sweep (1 forces the scalar
  /// path; 0 means "the full selected lane width"; results are
  /// bit-identical at any value).
  TraceCollector(const circuits::SynthesizedDesign& design, double periodNs,
                 std::size_t maxLanes = 0);

  /// Runs `cycles` cycles of `workload` through the design and returns the
  /// per-cycle trace. The first stimulus is used as a settled reset vector
  /// (not recorded). Bit-identical to collectTraceScalar() for the same
  /// workload state at any lane count.
  [[nodiscard]] predict::Trace collect(Workload& workload,
                                       std::uint64_t cycles);

  /// collect() plus the packed bit-column emission: the collector owns
  /// each trace's single packing pass (the 64-row block shift-and-
  /// transpose of FeatureExtractor::packTrace, run once here over the
  /// collected records), so downstream consumers (BitLevelPredictor::
  /// fit/evaluate) take the packed blocks directly and never re-pack.
  [[nodiscard]] CollectedTrace collectPacked(
      Workload& workload, std::uint64_t cycles,
      const predict::FeatureExtractor& extractor);

  [[nodiscard]] double periodNs() const noexcept { return periodNs_; }
  [[nodiscard]] timing::TimePs periodPs() const noexcept { return periodPs_; }

  /// Cycles replayed (and discarded) ahead of each chunk so the chunk's
  /// first recorded cycle sees the exact mid-stream simulator state: the
  /// smallest W with (W + 2) * period > critical path. 0 for every paper
  /// design point (critical path < 2 periods at 5-15% CPR).
  [[nodiscard]] int warmUpCycles() const noexcept { return warmUp_; }

  /// Lanes a run of `cycles` would use (chunks must cover their warm-up).
  [[nodiscard]] std::size_t lanesFor(std::uint64_t cycles) const noexcept;

 private:
  void fillSilverLane(std::span<const Stimulus> stimuli,
                      predict::Trace& trace, std::size_t lanes);
  void fillSilverScalar(std::span<const Stimulus> stimuli,
                        predict::Trace& trace);

  const circuits::SynthesizedDesign& design_;
  core::IsaAdder behavioral_;
  std::shared_ptr<const netlist::CompiledNetlist> compiled_;
  std::unique_ptr<timing::AnyLaneSampler> sampler_;
  double periodNs_;
  timing::TimePs periodPs_;
  int warmUp_ = 0;
  std::size_t maxLanes_;
};

/// Convenience wrapper: one lane-parallel collection over a fresh
/// TraceCollector. All figure/table pipelines route through this.
[[nodiscard]] predict::Trace collectTrace(
    const circuits::SynthesizedDesign& design, double periodNs,
    Workload& workload, std::uint64_t cycles);

/// The retained sequential reference collector (the seed path): one
/// scalar wheel-engine cycle per stimulus. Differential tests and
/// micro_lane_sim compare the lane collector against this record for
/// record.
[[nodiscard]] predict::Trace collectTraceScalar(
    const circuits::SynthesizedDesign& design, double periodNs,
    Workload& workload, std::uint64_t cycles);

}  // namespace oisa::experiments
