#include "experiments/fault_scan.h"

#include <algorithm>
#include <array>
#include <thread>

#include "core/error_model.h"
#include "core/isa_adder.h"
#include "experiments/grid_scheduler.h"
#include "experiments/trace_collector.h"
#include "experiments/workload.h"
#include "fault/coverage.h"
#include "fault/fault_universe.h"
#include "fault/ppsfp.h"
#include "fault/timed_fault.h"
#include "netlist/bitops.h"
#include "netlist/compiled_netlist.h"
#include "timing/lane_sim.h"

namespace oisa::experiments {

namespace {

constexpr std::size_t kLanes = fault::PpsfpEngine::kLanes;

/// Runs `timedCycles` overclocked cycles (64 independent lanes per wheel
/// sweep) with an optional stem defect clamped in, and returns the
/// relative-E_joint RMS of the sampled outputs against the exact adder.
double measureTimedRelJoint(
    const std::shared_ptr<const netlist::CompiledNetlist>& compiled,
    const circuits::SynthesizedDesign& design, double periodNs,
    const fault::Fault* defect, std::uint64_t timedCycles,
    std::uint64_t seed, const RunOptions& run) {
  const int width = design.config.width;
  const core::IsaAdder behavioral(design.config);
  timing::LaneClockedSampler sampler(compiled, design.delays, periodNs);
  if (defect != nullptr) {
    fault::injectStuckAt(sampler.simulator(), *defect);
  }
  const auto workload = makeWorkload(run.workload, width, seed);

  const std::size_t inputCount = compiled->inputNets().size();
  std::vector<std::uint64_t> inWords(inputCount, 0);
  std::vector<std::uint64_t> outWords;
  std::array<Stimulus, kLanes> stims{};
  std::array<std::uint64_t, kLanes> sM{};

  // Reset vector: settle every lane on its first stimulus (not measured),
  // mirroring the trace collectors' initialize step.
  for (auto& s : stims) s = workload->next();
  packStimulusBlock(stims, width, inWords);
  sampler.initialize(inWords);

  core::ErrorCombination combo;
  std::uint64_t remaining = timedCycles;
  while (remaining > 0) {
    const auto lanes = static_cast<std::size_t>(
        std::min<std::uint64_t>(kLanes, remaining));
    for (std::size_t lane = 0; lane < lanes; ++lane) {
      stims[lane] = workload->next();
    }
    packStimulusBlock(std::span(stims.data(), lanes), width, inWords);
    sampler.stepInto(inWords, outWords);

    for (int i = 0; i < width; ++i) {
      sM[static_cast<std::size_t>(i)] = outWords[static_cast<std::size_t>(i)];
    }
    std::fill(sM.begin() + width, sM.end(), 0);
    const std::uint64_t coutWord = outWords[static_cast<std::size_t>(width)];
    netlist::transpose64(sM);

    for (std::size_t lane = 0; lane < lanes; ++lane) {
      const Stimulus& s = stims[lane];
      std::uint64_t silver = sM[lane];
      if (width < 64 && ((coutWord >> lane) & 1u) != 0) {
        silver |= std::uint64_t{1} << width;
      }
      combo.add(core::OutputTriple{
          behavioral.exactAdd(s.a, s.b, s.carryIn).value(width),
          behavioral.add(s.a, s.b, s.carryIn).value(width), silver});
    }
    remaining -= lanes;
  }
  return combo.relJoint().rms();
}

}  // namespace

std::vector<FaultScanRow> runFaultErrorScan(
    const std::vector<circuits::SynthesizedDesign>& designs,
    const FaultScanOptions& options) {
  std::vector<FaultScanRow> rows(designs.size());
  unsigned workers = options.run.threads == 0
                         ? std::thread::hardware_concurrency()
                         : options.run.threads;
  if (workers == 0) workers = 1;
  workers = static_cast<unsigned>(
      std::min<std::size_t>(workers, std::max<std::size_t>(designs.size(), 1)));
  GridScheduler pool(workers);
  pool.run(designs.size(), [&](std::size_t d) {
    const circuits::SynthesizedDesign& design = designs[d];
    const int width = design.config.width;
    const auto compiled = netlist::CompiledNetlist::compile(design.netlist);
    // packStimulusBlock assumes the adder port convention (a0..aN-1,
    // b0..bN-1, cin); reject anything else (e.g. a multiplier ISA) up
    // front rather than writing past the input-word span.
    if (compiled->inputNets().size() !=
        static_cast<std::size_t>(2 * width + 1)) {
      throw std::invalid_argument(
          "runFaultErrorScan: design '" + design.config.name() +
          "' does not follow the adder port convention (expected " +
          std::to_string(2 * width + 1) + " primary inputs, got " +
          std::to_string(compiled->inputNets().size()) + ")");
    }

    FaultScanRow row;
    row.design = design.config.name();
    row.cprPercent = options.cprPercent;
    row.periodNs =
        overclockedPeriodNs(options.run.signOffPeriodNs, options.cprPercent);

    // Phase 1: PPSFP coverage under the experiment workload. Every design
    // sees the same stimulus stream (shared seed), as in the paper's
    // common random sample.
    fault::FaultUniverse universe(compiled);
    fault::PpsfpEngine engine(compiled);
    fault::CoverageOptions coverage;
    coverage.patterns = options.run.cycles;
    const auto workload =
        makeWorkload(options.run.workload, width, options.run.seed);
    std::array<Stimulus, kLanes> stims{};
    std::uint64_t remaining = coverage.patterns;
    const fault::PatternBlockSource source =
        [&](std::span<std::uint64_t> inputWords) -> std::size_t {
      if (remaining == 0) return 0;
      const auto count = static_cast<std::size_t>(
          std::min<std::uint64_t>(remaining, kLanes));
      remaining -= count;
      for (std::size_t lane = 0; lane < count; ++lane) {
        stims[lane] = workload->next();
      }
      packStimulusBlock(std::span(stims.data(), count), width, inputWords);
      return count;
    };
    const fault::CoverageResult cov =
        fault::runCoverage(universe, engine, coverage, source);
    row.universeFaults = cov.universeFaults;
    row.collapsedClasses = cov.collapsedClasses;
    row.detectedClasses = cov.detectedClasses;
    row.coveragePercent = cov.coverage() * 100.0;
    row.patterns = cov.patternsApplied;

    // Phase 2: timed defective runs on a deterministic sample of the
    // detected stem classes, against a paired healthy baseline (same
    // workload seed, same period).
    std::vector<fault::Fault> detectedStems;
    const auto classes = universe.collapsed();
    for (std::size_t ci = 0; ci < classes.size(); ++ci) {
      if (cov.detected[ci] != 0) detectedStems.push_back(classes[ci]);
    }
    const std::vector<fault::Fault> sample =
        fault::selectTimedFaults(detectedStems, options.timedFaults);
    row.rmsRelJointHealthy = measureTimedRelJoint(
        compiled, design, row.periodNs, nullptr, options.timedCycles,
        options.run.seed + 1, options.run);
    double sum = 0.0;
    for (const fault::Fault& f : sample) {
      const double rms = measureTimedRelJoint(
          compiled, design, row.periodNs, &f, options.timedCycles,
          options.run.seed + 1, options.run);
      sum += rms;
      row.worstRelJointFaulty = std::max(row.worstRelJointFaulty, rms);
    }
    row.timedFaultsMeasured = sample.size();
    // No detected stem faults -> no defective measurement: report a zero
    // shift rather than 0 - healthy (which would read as a defect
    // improving the error).
    if (!sample.empty()) {
      row.rmsRelJointFaulty = sum / static_cast<double>(sample.size());
      row.eJointShift = row.rmsRelJointFaulty - row.rmsRelJointHealthy;
    }
    rows[d] = std::move(row);
  });
  return rows;
}

}  // namespace oisa::experiments
