#include "experiments/fault_scan.h"

#include <algorithm>
#include <array>
#include <chrono>
#include <optional>
#include <thread>

#include "core/error_model.h"
#include "core/fault_inject.h"
#include "core/isa_adder.h"
#include "experiments/grid_scheduler.h"
#include "experiments/trace_collector.h"
#include "experiments/workload.h"
#include "fault/coverage.h"
#include "fault/fault_universe.h"
#include "fault/ppsfp.h"
#include "fault/timed_fault.h"
#include "netlist/bitops.h"
#include "netlist/compiled_netlist.h"
#include "timing/lane_dispatch.h"
#include "timing/lane_sim.h"
#include "timing/sta.h"

namespace oisa::experiments {

namespace {

/// Cycles replayed (and discarded) ahead of a mid-stream chunk so its
/// first measured cycle sees the exact stream state — the TraceCollector
/// warm-up bound: smallest W with (W + 2) * period > critical path.
int timedWarmUpCycles(const circuits::SynthesizedDesign& design,
                      timing::TimePs periodPs) {
  const timing::TimePs d =
      timing::quantizeSpanPs(
          timing::criticalDelayNs(design.netlist, design.delays)) +
      1;
  int warmUp = 0;
  while ((static_cast<timing::TimePs>(warmUp) + 2) * periodPs <= d) {
    ++warmUp;
  }
  return warmUp;
}

/// Runs `timedCycles` overclocked cycles with an optional stem defect
/// clamped in, and returns the relative-E_joint RMS of the sampled
/// outputs against the exact adder.
///
/// The measurement is defined by the 64-lane reference schedule — 64
/// independent stimulus streams, stream l settling on draw l and then
/// measuring draw 64 + 64b + l at cycle b, accumulated in draw order —
/// and stays **byte-identical** at any engine width: RMS accumulation is
/// order-sensitive in floating point, so wider engines never reorder it.
/// A W = 64K lane engine instead splits each stream's measured cycles
/// into K contiguous chunks (settle + warm-up replay ahead of each
/// mid-stream chunk, short chunks idling at the start — the
/// TraceCollector scheme, which reproduces mid-stream state exactly),
/// maps stream l's chunk j onto wide lane 64j + l, buffers every silver
/// sample by its draw index, and only then folds the triples into the
/// accumulator in the reference order.
double measureTimedRelJoint(
    const std::shared_ptr<const netlist::CompiledNetlist>& compiled,
    const circuits::SynthesizedDesign& design, double periodNs,
    const fault::Fault* defect, std::uint64_t timedCycles,
    std::uint64_t seed, const RunOptions& run) {
  const int width = design.config.width;
  const core::IsaAdder behavioral(design.config);
  const auto sampler =
      timing::makeLaneSampler(compiled, design.delays, periodNs);
  if (defect != nullptr) {
    fault::injectStuckAt(sampler->simulator(), *defect);
  }
  const auto workload = makeWorkload(run.workload, width, seed);
  if (timedCycles == 0) return core::ErrorCombination{}.relJoint().rms();

  // Materialize the reference draw sequence: 64 settle vectors, then the
  // measured stream (draw 64 + m drives measurement m; stream l of the
  // reference schedule owns measurements m with m % 64 == l).
  std::array<Stimulus, 64> settle{};
  for (auto& s : settle) s = workload->next();
  std::vector<Stimulus> measured(static_cast<std::size_t>(timedCycles));
  for (auto& s : measured) s = workload->next();
  const auto streamLen = [&](std::size_t l) {
    return static_cast<std::size_t>((timedCycles + 63 - l) / 64);
  };
  // Stream l's stimulus sequence: index 0 = its settle vector, index
  // c + 1 = its measurement c.
  const auto streamStim = [&](std::size_t l, std::size_t idx) -> Stimulus {
    return idx == 0 ? settle[l] : measured[(idx - 1) * 64 + l];
  };

  const std::size_t kW = sampler->wordsPerNet();
  const auto wu =
      static_cast<std::size_t>(timedWarmUpCycles(design, sampler->periodPs()));

  // Chunk schedule: stream l's chunk j runs on wide lane 64j + l.
  std::vector<std::size_t> start(64 * kW);
  std::vector<std::size_t> len(64 * kW);
  std::vector<std::size_t> warm(64 * kW);
  std::size_t steps = 0;
  for (std::size_t l = 0; l < 64; ++l) {
    const std::size_t n = streamLen(l);
    const std::size_t base = n / kW;
    const std::size_t rem = n % kW;
    for (std::size_t j = 0, c = 0; j < kW; ++j) {
      const std::size_t L = 64 * j + l;
      start[L] = c;
      len[L] = base + (j < rem ? 1 : 0);
      c += len[L];
      warm[L] = std::min(wu, start[L]);
      steps = std::max(steps, warm[L] + len[L]);
    }
  }
  std::vector<std::size_t> idle(64 * kW);
  for (std::size_t L = 0; L < 64 * kW; ++L) {
    idle[L] = steps - warm[L] - len[L];
  }

  const std::size_t inputCount = compiled->inputNets().size();
  std::vector<std::uint64_t> inWords(inputCount * kW, 0);
  std::vector<std::uint64_t> subWords(inputCount, 0);
  std::vector<std::uint64_t> outWords;
  std::vector<Stimulus> cur(64 * kW);
  std::array<Stimulus, 64> subStims{};
  std::array<std::uint64_t, 64> sM{};
  std::vector<std::uint64_t> silver(measured.size(), 0);

  const auto assembleInputs = [&] {
    for (std::size_t j = 0; j < kW; ++j) {
      std::copy_n(cur.begin() + static_cast<std::ptrdiff_t>(64 * j), 64,
                  subStims.begin());
      packStimulusBlock(subStims, width, subWords);
      for (std::size_t i = 0; i < inputCount; ++i) {
        inWords[i * kW + j] = subWords[i];
      }
    }
  };

  // Settle every chunk on the stimulus ahead of its warm-up window (not
  // measured), mirroring the trace collectors' initialize step.
  for (std::size_t L = 0; L < 64 * kW; ++L) {
    cur[L] = streamStim(L % 64, start[L] - warm[L]);
  }
  assembleInputs();
  sampler->initialize(inWords);

  for (std::size_t s = 0; s < steps; ++s) {
    for (std::size_t L = 0; L < 64 * kW; ++L) {
      if (s >= idle[L]) {
        cur[L] = streamStim(L % 64, start[L] - warm[L] + 1 + (s - idle[L]));
      }
    }
    assembleInputs();
    sampler->stepInto(inWords, outWords);

    for (std::size_t j = 0; j < kW; ++j) {
      for (int i = 0; i < width; ++i) {
        sM[static_cast<std::size_t>(i)] =
            outWords[static_cast<std::size_t>(i) * kW + j];
      }
      std::fill(sM.begin() + width, sM.end(), 0);
      const std::uint64_t coutWord =
          outWords[static_cast<std::size_t>(width) * kW + j];
      netlist::transpose64(sM);
      for (std::size_t l = 0; l < 64; ++l) {
        const std::size_t L = 64 * j + l;
        if (s < idle[L] + warm[L]) continue;  // idling or warming up
        const std::size_t c = start[L] + (s - idle[L] - warm[L]);
        std::uint64_t value = sM[l];
        if (width < 64 && ((coutWord >> l) & 1u) != 0) {
          value |= std::uint64_t{1} << width;
        }
        silver[c * 64 + l] = value;
      }
    }
  }

  // Fold in reference draw order: measurement m of the 64-lane schedule
  // is block m / 64, lane m % 64 — exactly ascending m.
  core::ErrorCombination combo;
  for (std::size_t m = 0; m < measured.size(); ++m) {
    const Stimulus& stim = measured[m];
    combo.add(core::OutputTriple{
        behavioral.exactAdd(stim.a, stim.b, stim.carryIn).value(width),
        behavioral.add(stim.a, stim.b, stim.carryIn).value(width),
        silver[m]});
  }
  return combo.relJoint().rms();
}

std::string encodeFaultScanRow(const FaultScanRow& row) {
  PayloadWriter w;
  w.str(row.design);
  w.u64(row.universeFaults);
  w.u64(row.collapsedClasses);
  w.u64(row.detectedClasses);
  w.f64(row.coveragePercent);
  w.u64(row.patterns);
  w.f64(row.cprPercent);
  w.f64(row.periodNs);
  w.f64(row.rmsRelJointHealthy);
  w.f64(row.rmsRelJointFaulty);
  w.f64(row.eJointShift);
  w.f64(row.worstRelJointFaulty);
  w.u64(row.timedFaultsMeasured);
  return w.take();
}

std::optional<FaultScanRow> decodeFaultScanRow(const std::string& payload) {
  PayloadReader r{payload};
  FaultScanRow row;
  row.design = r.str();
  row.universeFaults = r.u64();
  row.collapsedClasses = r.u64();
  row.detectedClasses = r.u64();
  row.coveragePercent = r.f64();
  row.patterns = r.u64();
  row.cprPercent = r.f64();
  row.periodNs = r.f64();
  row.rmsRelJointHealthy = r.f64();
  row.rmsRelJointFaulty = r.f64();
  row.eJointShift = r.f64();
  row.worstRelJointFaulty = r.f64();
  row.timedFaultsMeasured = r.u64();
  if (!r.ok() || !r.atEnd()) return std::nullopt;
  return row;
}

}  // namespace

std::vector<FaultScanRow> runFaultErrorScan(
    const std::vector<circuits::SynthesizedDesign>& designs,
    const FaultScanOptions& options) {
  std::vector<FaultScanRow> rows(designs.size());
  CampaignFingerprint fp("runFaultErrorScan");
  fp.mix(static_cast<std::uint64_t>(designs.size()));
  for (const auto& design : designs) {
    fp.mix(design.config.name());
    fp.mix(static_cast<std::uint64_t>(design.netlist.gateCount()));
  }
  fp.mix(options.run.cycles);
  fp.mix(options.run.seed);
  fp.mix(options.run.workload);
  fp.mix(options.run.signOffPeriodNs);
  fp.mix(options.cprPercent);
  fp.mix(options.timedCycles);
  fp.mix(static_cast<std::uint64_t>(options.timedFaults));
  CampaignCheckpoint ckpt(options.run.checkpoint, fp.digest(),
                          designs.size());
  const auto scanCell = [&](std::size_t d) {
    const circuits::SynthesizedDesign& design = designs[d];
    if (const auto payload = ckpt.tryLoad(d)) {
      if (auto row = decodeFaultScanRow(*payload)) {
        rows[d] = *std::move(row);
        return;
      }
    }
    core::fault_inject::maybeThrow(core::fault_inject::kGridCell,
                                   core::StatusCode::IoError);
    const int width = design.config.width;
    const auto compiled = netlist::CompiledNetlist::compile(design.netlist);
    // packStimulusBlock assumes the adder port convention (a0..aN-1,
    // b0..bN-1, cin); reject anything else (e.g. a multiplier ISA) up
    // front rather than writing past the input-word span.
    if (compiled->inputNets().size() !=
        static_cast<std::size_t>(2 * width + 1)) {
      throw std::invalid_argument(
          "runFaultErrorScan: design '" + design.config.name() +
          "' does not follow the adder port convention (expected " +
          std::to_string(2 * width + 1) + " primary inputs, got " +
          std::to_string(compiled->inputNets().size()) + ")");
    }

    FaultScanRow row;
    row.design = design.config.name();
    row.cprPercent = options.cprPercent;
    row.periodNs =
        overclockedPeriodNs(options.run.signOffPeriodNs, options.cprPercent);

    // Phase 1: PPSFP coverage under the experiment workload. Every design
    // sees the same stimulus stream (shared seed), as in the paper's
    // common random sample.
    fault::FaultUniverse universe(compiled);
    const auto engine = fault::makePpsfpEngine(compiled);
    fault::CoverageOptions coverage;
    coverage.patterns = options.run.cycles;
    const auto workload =
        makeWorkload(options.run.workload, width, options.run.seed);
    const std::size_t engineLanes = engine->lanes();
    const std::size_t kW = engine->wordsPerNet();
    std::array<Stimulus, 64> stims{};
    std::vector<std::uint64_t> subWords(compiled->inputNets().size(), 0);
    std::uint64_t remaining = coverage.patterns;
    // Wide engines consume the same workload stream the 64-lane reference
    // would: draws stay sub-block-major (64 stimuli, then the next
    // sub-word), so pattern p of a block is always draw p of its stream
    // position and CoverageResult is width-independent.
    const fault::PatternBlockSource source =
        [&](std::span<std::uint64_t> inputWords) -> std::size_t {
      if (remaining == 0) return 0;
      const auto count = static_cast<std::size_t>(
          std::min<std::uint64_t>(remaining, engineLanes));
      remaining -= count;
      std::fill(inputWords.begin(), inputWords.end(), 0);
      for (std::size_t packed = 0, j = 0; packed < count; ++j) {
        const std::size_t sub = std::min<std::size_t>(count - packed, 64);
        for (std::size_t lane = 0; lane < sub; ++lane) {
          stims[lane] = workload->next();
        }
        packStimulusBlock(std::span(stims.data(), sub), width, subWords);
        for (std::size_t i = 0; i < subWords.size(); ++i) {
          inputWords[i * kW + j] = subWords[i];
        }
        packed += sub;
      }
      return count;
    };
    const fault::CoverageResult cov =
        fault::runCoverage(universe, *engine, coverage, source);
    row.universeFaults = cov.universeFaults;
    row.collapsedClasses = cov.collapsedClasses;
    row.detectedClasses = cov.detectedClasses;
    row.coveragePercent = cov.coverage() * 100.0;
    row.patterns = cov.patternsApplied;

    // Phase 2: timed defective runs on a deterministic sample of the
    // detected stem classes, against a paired healthy baseline (same
    // workload seed, same period).
    std::vector<fault::Fault> detectedStems;
    const auto classes = universe.collapsed();
    for (std::size_t ci = 0; ci < classes.size(); ++ci) {
      if (cov.detected[ci] != 0) detectedStems.push_back(classes[ci]);
    }
    const std::vector<fault::Fault> sample =
        fault::selectTimedFaults(detectedStems, options.timedFaults);
    row.rmsRelJointHealthy = measureTimedRelJoint(
        compiled, design, row.periodNs, nullptr, options.timedCycles,
        options.run.seed + 1, options.run);
    double sum = 0.0;
    for (const fault::Fault& f : sample) {
      const double rms = measureTimedRelJoint(
          compiled, design, row.periodNs, &f, options.timedCycles,
          options.run.seed + 1, options.run);
      sum += rms;
      row.worstRelJointFaulty = std::max(row.worstRelJointFaulty, rms);
    }
    row.timedFaultsMeasured = sample.size();
    // No detected stem faults -> no defective measurement: report a zero
    // shift rather than 0 - healthy (which would read as a defect
    // improving the error).
    if (!sample.empty()) {
      row.rmsRelJointFaulty = sum / static_cast<double>(sample.size());
      row.eJointShift = row.rmsRelJointFaulty - row.rmsRelJointHealthy;
    }
    ckpt.commit(d, encodeFaultScanRow(row));
    rows[d] = std::move(row);
  };
  try {
    runCampaignGrid(designs.size(), options.run, scanCell);
  } catch (...) {
    (void)ckpt.finish();  // persist the surviving designs' rows
    throw;
  }
  (void)ckpt.finish();
  return rows;
}

}  // namespace oisa::experiments
