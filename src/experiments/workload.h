// oisa_experiments: input workload generators.
//
// The paper characterizes adders with ten million uniform random unsigned
// inputs; additional generators exercise realistic activity patterns
// (correlated random walks as in DSP streams, sparse/bursty toggling) for
// extended studies, since timing errors depend on consecutive-cycle input
// pairs.
#pragma once

#include <cstdint>
#include <memory>
#include <random>
#include <span>
#include <string>

namespace oisa::experiments {

/// One cycle of adder stimulus.
struct Stimulus {
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  bool carryIn = false;
};

/// Abstract stream of stimuli.
class Workload {
 public:
  virtual ~Workload() = default;
  [[nodiscard]] virtual Stimulus next() = 0;
  [[nodiscard]] virtual std::string name() const = 0;
};

/// Uniform random operands over the full width (the paper's setting).
class UniformWorkload final : public Workload {
 public:
  UniformWorkload(int width, std::uint64_t seed);
  [[nodiscard]] Stimulus next() override;
  [[nodiscard]] std::string name() const override { return "uniform"; }

 private:
  std::mt19937_64 rng_;
  std::uint64_t mask_;
};

/// Random-walk operands: each operand moves by a bounded signed step each
/// cycle, modeling correlated DSP streams (low MSB activity).
class RandomWalkWorkload final : public Workload {
 public:
  /// `stepBits` — maximum step magnitude is 2^stepBits.
  RandomWalkWorkload(int width, int stepBits, std::uint64_t seed);
  [[nodiscard]] Stimulus next() override;
  [[nodiscard]] std::string name() const override { return "random-walk"; }

 private:
  std::mt19937_64 rng_;
  std::uint64_t mask_;
  std::uint64_t a_ = 0;
  std::uint64_t b_ = 0;
  std::uint64_t stepMask_;
};

/// Sparse toggling: each operand bit flips with a small probability per
/// cycle, producing low-activity inputs that rarely sensitize long paths.
class SparseToggleWorkload final : public Workload {
 public:
  SparseToggleWorkload(int width, double toggleProbability,
                       std::uint64_t seed);
  [[nodiscard]] Stimulus next() override;
  [[nodiscard]] std::string name() const override { return "sparse-toggle"; }

 private:
  std::mt19937_64 rng_;
  int width_;
  double toggleProbability_;
  std::uint64_t a_ = 0;
  std::uint64_t b_ = 0;
};

/// Factory by name ("uniform", "random-walk", "sparse-toggle") for CLIs.
[[nodiscard]] std::unique_ptr<Workload> makeWorkload(const std::string& kind,
                                                     int width,
                                                     std::uint64_t seed);

/// Packs up to 64 stimuli into lane-major primary-input words for a
/// generated adder netlist (port convention a0..aN-1, b0..bN-1, cin):
/// bit L of word i is stimulus L's value of primary input i. Lanes
/// beyond `stims.size()` replicate stimulus 0 with carry-in low
/// (don't-care lanes; callers mask them out). `inputWords` must span
/// exactly 2*width + 1 words. The single owner of the adder port-layout
/// assumption for lane-major pipelines (functional scan, fault scan).
void packStimulusBlock(std::span<const Stimulus> stims, int width,
                       std::span<std::uint64_t> inputWords);

}  // namespace oisa::experiments
