#include "experiments/cli.h"

#include <cerrno>
#include <cstdlib>
#include <stdexcept>

#include "core/status.h"

namespace oisa::experiments {

namespace {

using core::Status;
using core::StatusError;

/// `--key=garbage` used to surface as a bare std::stoull exception
/// ("stoull") with no hint of which flag was wrong; every conversion
/// failure is now an InvalidInput Status naming the flag, the expected
/// type and the offending text.
[[noreturn]] void failValue(const std::string& key, const char* expected,
                            const std::string& text) {
  throw StatusError(Status::invalidInput("--" + key + ": expected " +
                                         expected + ", got '" + text + "'"));
}

}  // namespace

ArgParser::ArgParser(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string token = argv[i];
    if (token.rfind("--", 0) != 0) {
      throw StatusError(
          Status::invalidInput("ArgParser: unexpected argument '" + token +
                               "' (expected --key=value)"));
    }
    const std::string body = token.substr(2);
    const std::size_t eq = body.find('=');
    if (eq == std::string::npos) {
      values_[body] = "true";  // boolean flag
    } else {
      values_[body.substr(0, eq)] = body.substr(eq + 1);
    }
  }
}

std::uint64_t ArgParser::getU64(const std::string& key,
                                std::uint64_t fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  const std::string& text = it->second;
  // strtoull accepts leading whitespace, "0x" and a minus sign (wrapping
  // huge); none of those are sane flag values, so pre-reject anything
  // that is not plain digits.
  if (text.empty() ||
      text.find_first_not_of("0123456789") != std::string::npos) {
    failValue(key, "an unsigned integer", text);
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(text.c_str(), &end, 10);
  if (errno == ERANGE || end != text.c_str() + text.size()) {
    failValue(key, "an unsigned integer", text);
  }
  return value;
}

std::uint64_t ArgParser::getPositiveU64(const std::string& key,
                                        std::uint64_t fallback) const {
  const std::uint64_t value = getU64(key, fallback);
  if (value == 0) failValue(key, "a positive integer", getString(key, "0"));
  return value;
}

double ArgParser::getDouble(const std::string& key, double fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  const std::string& text = it->second;
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  if (text.empty() || errno == ERANGE ||
      end != text.c_str() + text.size()) {
    failValue(key, "a number", text);
  }
  return value;
}

std::string ArgParser::getString(const std::string& key,
                                 std::string fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

bool ArgParser::getBool(const std::string& key, bool fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  const std::string& text = it->second;
  if (text == "true" || text == "1" || text == "yes") return true;
  if (text == "false" || text == "0" || text == "no") return false;
  failValue(key, "a boolean (true/false/1/0/yes/no)", text);
}

bool ArgParser::has(const std::string& key) const {
  return values_.count(key) != 0;
}

}  // namespace oisa::experiments
