#include "experiments/cli.h"

#include <stdexcept>

namespace oisa::experiments {

ArgParser::ArgParser(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string token = argv[i];
    if (token.rfind("--", 0) != 0) {
      throw std::invalid_argument("ArgParser: unexpected argument '" + token +
                                  "' (expected --key=value)");
    }
    const std::string body = token.substr(2);
    const std::size_t eq = body.find('=');
    if (eq == std::string::npos) {
      values_[body] = "true";  // boolean flag
    } else {
      values_[body.substr(0, eq)] = body.substr(eq + 1);
    }
  }
}

std::uint64_t ArgParser::getU64(const std::string& key,
                                std::uint64_t fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  return std::stoull(it->second);
}

double ArgParser::getDouble(const std::string& key, double fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  return std::stod(it->second);
}

std::string ArgParser::getString(const std::string& key,
                                 std::string fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

bool ArgParser::getBool(const std::string& key, bool fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

bool ArgParser::has(const std::string& key) const {
  return values_.count(key) != 0;
}

}  // namespace oisa::experiments
