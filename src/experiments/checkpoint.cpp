#include "experiments/checkpoint.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <utility>

#include <chrono>

#include "core/crc32.h"
#include "core/fault_inject.h"
#include "obs/metrics.h"
#include "obs/span.h"

#ifndef _WIN32
#include <fcntl.h>
#include <unistd.h>
#endif

namespace oisa::experiments {

namespace {

constexpr char kMagic[8] = {'O', 'I', 'S', 'A', 'C', 'K', 'P', 'T'};
constexpr std::uint32_t kVersion = 1;

void appendU32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFFu));
  }
}

void appendU64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFFu));
  }
}

std::uint32_t readU32(const char* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(static_cast<unsigned char>(p[i]))
         << (8 * i);
  }
  return v;
}

std::uint64_t readU64(const char* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(p[i]))
         << (8 * i);
  }
  return v;
}

/// Writes `bytes` to `path`, fsyncs, and returns IoError diagnostics on
/// any step failing.
core::Status writeFileSynced(const std::string& path,
                             std::string_view bytes) {
  if (core::fault_inject::shouldFail(core::fault_inject::kFileOpen)) {
    return core::Status::ioError("open '" + path + "': fault injected");
  }
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return core::Status::ioError("open '" + path +
                                 "': " + std::strerror(errno));
  }
  core::Status status;
  if (!bytes.empty() &&
      std::fwrite(bytes.data(), 1, bytes.size(), f) != bytes.size()) {
    status = core::Status::ioError("write '" + path +
                                   "': " + std::strerror(errno));
  }
  if (status.isOk() && std::fflush(f) != 0) {
    status = core::Status::ioError("flush '" + path +
                                   "': " + std::strerror(errno));
  }
#ifndef _WIN32
  if (status.isOk()) {
    static obs::Histogram& fsyncLatency = obs::histogram("ckpt.fsync_us");
    const auto fsyncStart = std::chrono::steady_clock::now();
    if (::fsync(::fileno(f)) != 0) {
      status = core::Status::ioError("fsync '" + path +
                                     "': " + std::strerror(errno));
    }
    fsyncLatency.record(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - fsyncStart)
            .count()));
  }
#endif
  if (std::fclose(f) != 0 && status.isOk()) {
    status = core::Status::ioError("close '" + path +
                                   "': " + std::strerror(errno));
  }
  if (status.isOk()) {
    static obs::Counter& bytesWritten = obs::counter("ckpt.bytes_written");
    bytesWritten.add(bytes.size());
  }
  return status;
}

#ifndef _WIN32
/// Fsyncs the directory containing `path` so the rename itself is
/// durable (best effort: some filesystems refuse directory fds).
void syncParentDir(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash == 0 ? 1 : slash);
  const int fd = ::open(dir.c_str(), O_RDONLY);
  if (fd >= 0) {
    (void)::fsync(fd);
    (void)::close(fd);
  }
}
#endif

}  // namespace

// --- PayloadWriter / PayloadReader ------------------------------------

void PayloadWriter::u32(std::uint32_t v) { appendU32(bytes_, v); }
void PayloadWriter::u64(std::uint64_t v) { appendU64(bytes_, v); }
void PayloadWriter::f64(double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof bits);
  appendU64(bytes_, bits);
}
void PayloadWriter::str(std::string_view v) {
  appendU64(bytes_, v.size());
  bytes_.append(v);
}

bool PayloadReader::take(std::size_t n, const char** out) {
  if (!ok_ || bytes_.size() - pos_ < n) {
    ok_ = false;
    return false;
  }
  *out = bytes_.data() + pos_;
  pos_ += n;
  return true;
}

std::uint32_t PayloadReader::u32() {
  const char* p = nullptr;
  return take(4, &p) ? readU32(p) : 0;
}

std::uint64_t PayloadReader::u64() {
  const char* p = nullptr;
  return take(8, &p) ? readU64(p) : 0;
}

double PayloadReader::f64() {
  const std::uint64_t bits = u64();
  double v = 0.0;
  std::memcpy(&v, &bits, sizeof v);
  return ok_ ? v : 0.0;
}

std::string PayloadReader::str() {
  const std::uint64_t n = u64();
  const char* p = nullptr;
  if (!take(static_cast<std::size_t>(n), &p)) return {};
  return std::string(p, static_cast<std::size_t>(n));
}

// --- CampaignFingerprint ----------------------------------------------

CampaignFingerprint& CampaignFingerprint::mix(std::string_view text) {
  // Length first so ("ab","c") and ("a","bc") hash apart.
  mix(static_cast<std::uint64_t>(text.size()));
  for (const char ch : text) {
    hash_ ^= static_cast<unsigned char>(ch);
    hash_ *= 0x100000001b3ull;  // FNV prime
  }
  return *this;
}

CampaignFingerprint& CampaignFingerprint::mix(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    hash_ ^= (v >> (8 * i)) & 0xFFu;
    hash_ *= 0x100000001b3ull;
  }
  return *this;
}

CampaignFingerprint& CampaignFingerprint::mix(double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof bits);
  return mix(bits);
}

// --- GridCheckpoint ----------------------------------------------------

const std::string* GridCheckpoint::payload(std::uint64_t cell) const {
  const auto it = cells_.find(cell);
  return it == cells_.end() ? nullptr : &it->second;
}

void GridCheckpoint::record(std::uint64_t cell, std::string payload) {
  cells_[cell] = std::move(payload);
}

std::vector<std::uint64_t> GridCheckpoint::cellIndices() const {
  std::vector<std::uint64_t> cells;
  cells.reserve(cells_.size());
  for (const auto& [cell, payload] : cells_) cells.push_back(cell);
  return cells;  // std::map iteration order is already ascending
}

void GridCheckpoint::mergeFrom(const GridCheckpoint& other) {
  for (const auto& [cell, payload] : other.cells_) cells_[cell] = payload;
}

core::Status GridCheckpoint::saveTo(const std::string& path) const {
  static obs::Counter& saves = obs::counter("ckpt.saves");
  const obs::ObsSpan span("ckpt.save", "ckpt", "cells", cells_.size());
  saves.add();
  std::string bytes;
  bytes.append(kMagic, sizeof kMagic);
  appendU32(bytes, kVersion);
  appendU64(bytes, fingerprint_);
  appendU64(bytes, cellCount_);
  appendU64(bytes, cells_.size());
  for (const auto& [cell, payload] : cells_) {
    appendU64(bytes, cell);
    appendU64(bytes, payload.size());
    bytes.append(payload);
  }
  appendU32(bytes, core::crc32(bytes));

  if (core::fault_inject::shouldFail(core::fault_inject::kCheckpointWrite)) {
    // Torn-write simulation: half the snapshot lands in the *final*
    // path, as if the crash hit a filesystem without atomic rename. The
    // next load must detect this via CRC and recompute. The save itself
    // reports failure — an incomplete snapshot is not a successful save.
    (void)writeFileSynced(
        path, std::string_view(bytes).substr(0, bytes.size() / 2));
    return core::Status::ioError("write '" + path +
                                 "': fault injected (torn write)");
  }

  const std::string tmp = path + ".tmp";
  if (core::Status s = writeFileSynced(tmp, bytes); !s.isOk()) return s;
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    const core::Status s = core::Status::ioError(
        "rename '" + tmp + "' -> '" + path + "': " + std::strerror(errno));
    (void)std::remove(tmp.c_str());
    return s;
  }
#ifndef _WIN32
  syncParentDir(path);
#endif
  return core::Status::ok();
}

core::StatusOr<GridCheckpoint> GridCheckpoint::loadFrom(
    const std::string& path) {
  if (core::fault_inject::shouldFail(core::fault_inject::kFileOpen)) {
    return core::Status::ioError("open '" + path + "': fault injected");
  }
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return core::Status::ioError("open '" + path +
                                 "': " + std::strerror(errno));
  }
  std::string bytes;
  char buffer[1 << 16];
  std::size_t n = 0;
  while ((n = std::fread(buffer, 1, sizeof buffer, f)) > 0) {
    bytes.append(buffer, n);
  }
  const bool readError = std::ferror(f) != 0;
  (void)std::fclose(f);
  if (readError) {
    return core::Status::ioError("read '" + path + "' failed");
  }
  static obs::Counter& loads = obs::counter("ckpt.loads");
  static obs::Counter& bytesRead = obs::counter("ckpt.bytes_read");
  loads.add();
  bytesRead.add(bytes.size());
  if (core::fault_inject::shouldFail(core::fault_inject::kCheckpointRead)) {
    return core::Status::corruption("read '" + path + "': fault injected");
  }

  const auto corrupt = [&](const std::string& why) {
    return core::Status::corruption("checkpoint '" + path + "': " + why);
  };
  constexpr std::size_t kHeader = sizeof kMagic + 4 + 8 + 8 + 8;
  if (bytes.size() < kHeader + 4) return corrupt("file too short");
  if (std::memcmp(bytes.data(), kMagic, sizeof kMagic) != 0) {
    return corrupt("bad magic");
  }
  const std::uint32_t storedCrc = readU32(bytes.data() + bytes.size() - 4);
  const std::uint32_t actualCrc =
      core::crc32(std::string_view(bytes).substr(0, bytes.size() - 4));
  if (storedCrc != actualCrc) return corrupt("crc mismatch");
  const std::uint32_t version = readU32(bytes.data() + sizeof kMagic);
  if (version != kVersion) {
    return corrupt("unsupported version " + std::to_string(version));
  }

  GridCheckpoint ckpt;
  ckpt.fingerprint_ = readU64(bytes.data() + sizeof kMagic + 4);
  ckpt.cellCount_ = readU64(bytes.data() + sizeof kMagic + 12);
  const std::uint64_t records = readU64(bytes.data() + sizeof kMagic + 20);
  std::size_t pos = kHeader;
  const std::size_t end = bytes.size() - 4;
  for (std::uint64_t r = 0; r < records; ++r) {
    if (end - pos < 16) return corrupt("truncated record table");
    const std::uint64_t cell = readU64(bytes.data() + pos);
    const std::uint64_t size = readU64(bytes.data() + pos + 8);
    pos += 16;
    if (size > end - pos) return corrupt("record overruns file");
    if (cell >= ckpt.cellCount_) return corrupt("cell index out of range");
    ckpt.cells_[cell] = bytes.substr(pos, static_cast<std::size_t>(size));
    pos += static_cast<std::size_t>(size);
  }
  if (pos != end) return corrupt("trailing bytes after records");
  return ckpt;
}

core::StatusOr<GridCheckpoint> mergeSnapshots(
    const std::vector<std::string>& paths) {
  GridCheckpoint merged;
  bool haveFirst = false;
  std::size_t loaded = 0;
  for (const std::string& path : paths) {
    core::StatusOr<GridCheckpoint> one = GridCheckpoint::loadFrom(path);
    if (!one.isOk()) {
      // A shard that quarantined all its cells, or a snapshot torn by
      // the very crash we are recovering from. Recomputing its cells is
      // always safe; refusing the merge would discard the good shards.
      std::cerr << "warning: shard merge skipping '" << path
                << "': " << one.status().toString() << "\n";
      continue;
    }
    ++loaded;
    if (!haveFirst) {
      merged = std::move(one).value();
      haveFirst = true;
      continue;
    }
    const GridCheckpoint& next = one.value();
    if (next.fingerprint() != merged.fingerprint() ||
        next.cellCount() != merged.cellCount()) {
      return core::Status::corruption(
          "shard merge: '" + path +
          "' belongs to a different campaign (fingerprint/shape mismatch)");
    }
    merged.mergeFrom(next);
  }
  if (!paths.empty() && loaded == 0) {
    return core::Status::ioError(
        "shard merge: none of the " + std::to_string(paths.size()) +
        " snapshot(s) could be loaded");
  }
  return merged;
}

// --- CampaignCheckpoint ------------------------------------------------

CampaignCheckpoint::CampaignCheckpoint(const CheckpointOptions& options,
                                       std::uint64_t fingerprint,
                                       std::uint64_t cellCount)
    : options_(options), snapshot_(fingerprint, cellCount) {
  if (!enabled() || !options_.resume) return;
  core::StatusOr<GridCheckpoint> loaded =
      GridCheckpoint::loadFrom(options_.path);
  if (!loaded.isOk()) {
    // Missing file = first run of a crash-restart loop: silent fresh
    // start. Anything else is worth a warning before recomputing.
    if (loaded.status().code() != core::StatusCode::IoError) {
      std::cerr << "warning: ignoring checkpoint: "
                << loaded.status().toString() << " (recomputing)\n";
    }
    return;
  }
  const GridCheckpoint& ckpt = loaded.value();
  if (ckpt.fingerprint() != fingerprint || ckpt.cellCount() != cellCount) {
    std::cerr << "warning: checkpoint '" << options_.path
              << "' belongs to a different campaign "
                 "(fingerprint/shape mismatch); recomputing\n";
    return;
  }
  snapshot_ = std::move(loaded).value();
  resumed_ = snapshot_.completedCells();
}

std::optional<std::string> CampaignCheckpoint::tryLoad(
    std::uint64_t cell) const {
  if (!enabled()) return std::nullopt;
  const std::lock_guard<std::mutex> lock(mutex_);
  const std::string* payload = snapshot_.payload(cell);
  if (payload == nullptr) return std::nullopt;
  static obs::Counter& served = obs::counter("ckpt.cells_served");
  served.add();
  return *payload;
}

void CampaignCheckpoint::commit(std::uint64_t cell, std::string payload) {
  if (!enabled()) return;
  static obs::Counter& commits = obs::counter("ckpt.cells_committed");
  commits.add();
  const std::lock_guard<std::mutex> lock(mutex_);
  snapshot_.record(cell, std::move(payload));
  if (++sinceSave_ < std::max<std::uint64_t>(options_.everyCells, 1)) return;
  sinceSave_ = 0;
  if (const core::Status s = snapshot_.saveTo(options_.path); !s.isOk()) {
    std::cerr << "warning: checkpoint save failed: " << s.toString() << "\n";
  }
}

core::Status CampaignCheckpoint::finish() {
  if (!enabled()) return core::Status::ok();
  const std::lock_guard<std::mutex> lock(mutex_);
  const core::Status s = snapshot_.saveTo(options_.path);
  if (!s.isOk()) {
    std::cerr << "warning: checkpoint save failed: " << s.toString() << "\n";
  }
  sinceSave_ = 0;
  return s;
}

}  // namespace oisa::experiments
