// oisa_experiments: tiny `--key=value` command-line parser for the bench
// and example binaries (no external dependencies).
#pragma once

#include <cstdint>
#include <map>
#include <string>

namespace oisa::experiments {

/// Parses `--key=value` and boolean `--flag` arguments; anything else is
/// rejected with an exception listing the offending token.
class ArgParser {
 public:
  ArgParser(int argc, const char* const* argv);

  [[nodiscard]] std::uint64_t getU64(const std::string& key,
                                     std::uint64_t fallback) const;
  /// getU64 that additionally rejects 0 — for flags where zero is a
  /// nonsense value the code would otherwise clamp or loop on
  /// (--checkpoint-every, --shards). The diagnostic names the flag.
  [[nodiscard]] std::uint64_t getPositiveU64(const std::string& key,
                                             std::uint64_t fallback) const;
  [[nodiscard]] double getDouble(const std::string& key,
                                 double fallback) const;
  [[nodiscard]] std::string getString(const std::string& key,
                                      std::string fallback) const;
  [[nodiscard]] bool getBool(const std::string& key, bool fallback) const;
  [[nodiscard]] bool has(const std::string& key) const;

  /// Every parsed key=value pair (bare flags stored as "true"). Shard
  /// supervisors use this to forward their own argv to workers.
  [[nodiscard]] const std::map<std::string, std::string>& all() const {
    return values_;
  }

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace oisa::experiments
