// oisa_experiments: process-isolated sharded campaigns.
//
// PR 7 made grid cells resumable, retryable, typed-failure units — but
// one wild pointer, OOM kill or hung wheel still took the whole process
// (and the whole campaign) with it. This layer adds crash *containment*:
//
//   supervisor                         worker i (same binary, re-invoked
//   (the CLI invoked with --shards=N)   with --shard-worker=i/N)
//   ──────────────────────────────     ─────────────────────────────────
//   partitions the grid into N         runs only the cells its slice
//   disjoint round-robin slices,       owns (cell % N == i), resuming
//   spawns one worker per shard        from its own snapshot
//   (core::Subprocess), monitors        <base>.shard<i>, and reports
//   each over a heartbeat pipe    <──  "S <cell>" / "D <cell>" / "H"
//                                      lines upstream
//
// A worker that exits nonzero, dies on a signal, or goes silent past
// the heartbeat deadline is restarted with exponential backoff; its
// checkpoint makes the restart cheap (completed cells reload). A cell
// that is in flight when its worker dies collects a *strike*; at K
// consecutive strikes (completing the cell erases them) the cell is
// quarantined — skipped by every later worker incarnation and reported
// with its shard, signal and strike count — so one poison cell cannot
// wedge a campaign. When every shard finishes, the supervisor merges
// the per-shard snapshots in fixed shard order into the base checkpoint
// and the CLI reruns the campaign in-process against the merged
// snapshot: every surviving cell is served from the snapshot, so the
// final CSV is byte-identical to an uninterrupted --shards=1 run.
//
// Fault sites: "worker.spawn" fails the fork/exec (supervisor retries
// with backoff), "worker.heartbeat" swallows worker→supervisor protocol
// writes (the supervisor sees silence and stall-kills). The
// OISA_ABORT_ON_CELL=<cell> hook (experiments/runner.cpp) turns one
// grid cell into deterministic poison for quarantine tests.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "core/status.h"
#include "core/subprocess.h"

namespace oisa::experiments {

// --- cell ownership ----------------------------------------------------

/// Which cells of a campaign grid this process computes. Workers own a
/// round-robin residue class (cell % count == index) — striding spreads
/// the expensive designs evenly across shards — minus the quarantined
/// cells; the default-constructed slice owns everything.
struct ShardSlice {
  unsigned index = 0;
  unsigned count = 1;
  std::vector<std::uint64_t> skipCells;  ///< sorted; quarantined cells

  [[nodiscard]] bool owns(std::uint64_t cell) const noexcept;
  /// Cells of [0, cellCount) this slice owns.
  [[nodiscard]] std::size_t ownedCells(std::size_t cellCount) const noexcept;
};

/// "<i>/<N>" as passed via --shard-worker (InvalidInput on nonsense).
struct ShardWorkerSpec {
  unsigned index = 0;
  unsigned count = 1;
  [[nodiscard]] static core::StatusOr<ShardWorkerSpec> parse(
      const std::string& text);
};

/// Shard i's private snapshot path: `<base>.shard<i>`.
[[nodiscard]] std::string shardCheckpointPath(const std::string& base,
                                              unsigned shard);

/// "3,17,25" <-> sorted cell list (used by --quarantine; InvalidInput on
/// malformed text).
[[nodiscard]] core::StatusOr<std::vector<std::uint64_t>> parseCellList(
    const std::string& text);
[[nodiscard]] std::string formatCellList(
    const std::vector<std::uint64_t>& cells);

// --- worker-side heartbeat --------------------------------------------

/// Writes newline-framed protocol messages to the supervisor's pipe:
/// "S <cell>" when a cell starts, "D <cell>" when it completes,
/// "R <total>" cumulative retries, "M <name> <delta>" a metric-counter
/// delta since the last flush, "H" bare liveness tick. Every write is
/// one short line (atomic under PIPE_BUF). The "worker.heartbeat" fault
/// site drops lines before the write — to the supervisor the worker
/// goes silent, which is exactly the stall the deadline catches.
class HeartbeatEmitter {
 public:
  explicit HeartbeatEmitter(int fd) : fd_(fd) {}

  /// Reads OISA_HEARTBEAT_FD (set by core::Subprocess::spawn); null when
  /// this process is not a supervised worker. Ignores SIGPIPE so a dead
  /// supervisor degrades to ordinary write errors.
  [[nodiscard]] static std::unique_ptr<HeartbeatEmitter> fromEnv();

  void cellStart(std::uint64_t cell);
  void cellDone(std::uint64_t cell);
  void retries(std::uint64_t total);
  /// One "M <name> <delta>" line (name must be space-free — metric names
  /// are dotted identifiers).
  void metricDelta(std::string_view name, std::uint64_t delta);
  /// Streams every obs counter that moved since the last flush as M
  /// lines — the worker half of the supervisor's fleet-wide rollup.
  /// Called periodically by CampaignMonitor's ticker and once more after
  /// the worker wrote its own metrics file, so on a clean run the
  /// supervisor's accumulated fleet counters equal the sum of the
  /// workers' metrics files exactly. (A crashed incarnation's unsent
  /// tail is lost — the rollup stays monotone but undercounts, same as
  /// the work the crash threw away.)
  void metricsFlush();
  void tick();

 private:
  void writeLine(const std::string& line);

  int fd_ = -1;
  std::mutex mutex_;
  bool broken_ = false;
  std::mutex metricsMu_;
  std::map<std::string, std::uint64_t> lastSent_;  ///< per-counter high water
};

// --- grid-loop monitor -------------------------------------------------

/// One object fusing the two consumers of grid-loop progress: the
/// `--progress` stderr heartbeat (cells done/total, retries, ETA) and a
/// shard worker's upstream HeartbeatEmitter. A background ticker keeps
/// both alive through long cells (liveness ticks every ~500 ms, progress
/// lines at most every ~2 s). Thread-safe; constructed per campaign run
/// by runCampaignGrid.
class CampaignMonitor {
 public:
  /// `quarantinedCells` — cells this run skips as quarantined (shown
  /// live in every progress line, not only in the post-merge report).
  CampaignMonitor(std::size_t totalCells, bool progressToStderr,
                  HeartbeatEmitter* heartbeat,
                  std::size_t quarantinedCells = 0);
  ~CampaignMonitor();

  CampaignMonitor(const CampaignMonitor&) = delete;
  CampaignMonitor& operator=(const CampaignMonitor&) = delete;

  void cellStart(std::uint64_t cell);
  void cellDone(std::uint64_t cell);
  /// Wired into RunPolicy::retryCounter by the grid loop.
  [[nodiscard]] std::atomic<std::uint64_t>* retryCounter() noexcept {
    return &retries_;
  }

 private:
  void tickerLoop();
  void printProgress();

  std::size_t total_;
  bool progress_;
  HeartbeatEmitter* heartbeat_;
  std::size_t quarantined_ = 0;
  std::atomic<std::uint64_t> done_{0};
  std::atomic<std::uint64_t> retries_{0};
  std::uint64_t reportedRetries_ = 0;  ///< ticker-only
  std::chrono::steady_clock::time_point start_;
  std::chrono::steady_clock::time_point lastPrint_;
  std::mutex mutex_;
  std::condition_variable stopCv_;
  bool stop_ = false;
  std::thread ticker_;
};

// --- supervisor --------------------------------------------------------

/// Supervisor controls (CLI surface: --shards, --shard-strikes,
/// --shard-timeout, --shard-backoff).
struct ShardSupervisorOptions {
  unsigned shards = 2;
  std::string binary;                    ///< path re-invoked per worker
  std::vector<std::string> workerArgs;   ///< forwarded base argv (no shard flags)
  std::string checkpointBase;            ///< merged snapshot path (required)
  bool resumeBase = false;               ///< fold an existing base snapshot in
  std::size_t cellCount = 0;             ///< grid size (budget/progress)
  unsigned maxCellStrikes = 3;           ///< K: strikes before quarantine
  double heartbeatTimeoutSec = 30.0;     ///< silence before a stall-kill
  std::uint64_t restartBackoffMs = 200;  ///< base of the exponential backoff
  /// Restart budget per shard; 0 = automatic (strikes * cells-per-shard
  /// + slack), the bound under which quarantine guarantees progress.
  unsigned maxRestartsPerShard = 0;
  bool progress = false;  ///< aggregate progress lines on stderr
  /// JSONL fleet event log (spawn/restart/stall/quarantine/merge);
  /// empty = disabled. CLI surface: --events-out.
  std::string eventLogPath;
  /// Per-worker observability sinks: when set, defaultWorkerArgs appends
  /// --metrics-out=<base>.shard<i> / --trace-out=<base>.shard<i> so every
  /// worker writes its own JSON next to the supervisor's.
  std::string workerMetricsBase;
  std::string workerTraceBase;
  /// Test seam: assembles worker argv for one shard given the current
  /// quarantine list. Defaults to the standard flag assembly
  /// (--shard-worker=i/N --checkpoint=<base> --resume [--quarantine=...]).
  std::function<std::vector<std::string>(
      unsigned shard, const std::vector<std::uint64_t>& quarantined)>
      buildWorkerArgs;
};

/// One quarantined cell, reported GridError-style.
struct QuarantinedCell {
  std::uint64_t cell = 0;
  unsigned shard = 0;
  unsigned strikes = 0;
  core::ProcessExit lastExit;  ///< how the final strike's worker died
  bool stalled = false;        ///< that death was a heartbeat stall-kill
};

/// What the supervision run did.
struct ShardReport {
  std::vector<QuarantinedCell> quarantined;  ///< skip these campaign-wide
  /// Cells struck (in flight at a worker death) that later completed —
  /// their snapshots exist, so they were false suspects, not poison.
  std::vector<std::uint64_t> absolved;
  unsigned restarts = 0;          ///< abnormal worker ends, all shards
  std::uint64_t cellsDone = 0;    ///< distinct completions observed
  /// Fleet-wide counter rollup: the sum of every worker's streamed
  /// "M <name> <delta>" lines, keyed by metric name. Exact on clean
  /// runs; monotone-but-undercounting when workers crash mid-stream.
  std::map<std::string, std::uint64_t> fleetCounters;
};

/// Runs the whole supervision loop: spawn one worker per shard, pump
/// heartbeats, stall-kill, restart with backoff, quarantine at K
/// strikes, and finally merge the per-shard snapshots (fixed shard
/// order, base snapshot first when resumeBase) into checkpointBase.
/// Returns IoError when a shard exhausts its restart budget — the
/// completed cells are still merged into the base snapshot first.
[[nodiscard]] core::StatusOr<ShardReport> runShardSupervisor(
    const ShardSupervisorOptions& options);

}  // namespace oisa::experiments
