#include "experiments/runner.h"

#include <algorithm>
#include <atomic>
#include <thread>

#include "core/bit_distribution.h"
#include "core/isa_adder.h"
#include "experiments/trace_collector.h"

namespace oisa::experiments {

namespace {

std::unique_ptr<Workload> workloadFor(const RunOptions& options, int width,
                                      std::uint64_t seedOffset) {
  return makeWorkload(options.workload, width, options.seed + seedOffset);
}

/// Runs task(0..count-1) across `threads` workers (0 = hardware
/// concurrency). Tasks must be independent.
template <typename Task>
void runParallel(std::size_t count, unsigned threads, Task&& task) {
  unsigned workers = threads == 0 ? std::thread::hardware_concurrency()
                                  : threads;
  if (workers == 0) workers = 1;
  workers = static_cast<unsigned>(
      std::min<std::size_t>(workers, count == 0 ? 1 : count));
  if (workers <= 1) {
    for (std::size_t i = 0; i < count; ++i) task(i);
    return;
  }
  std::atomic<std::size_t> next{0};
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (unsigned w = 0; w < workers; ++w) {
    pool.emplace_back([&] {
      for (std::size_t i = next.fetch_add(1); i < count;
           i = next.fetch_add(1)) {
        task(i);
      }
    });
  }
  for (std::thread& t : pool) t.join();
}

}  // namespace

std::vector<CombinationRow> runErrorCombination(
    const std::vector<circuits::SynthesizedDesign>& designs,
    std::span<const double> cprPercents, const RunOptions& options) {
  const std::size_t points = designs.size() * cprPercents.size();
  std::vector<CombinationRow> rows(points);
  runParallel(points, options.threads, [&](std::size_t point) {
    const circuits::SynthesizedDesign& design =
        designs[point / cprPercents.size()];
    const double cpr = cprPercents[point % cprPercents.size()];
    const double period = overclockedPeriodNs(options.signOffPeriodNs, cpr);
    // Same workload seed across designs and CPRs so every design sees the
    // same stimulus, as in the paper's common random sample.
    auto workload = workloadFor(options, design.config.width, 0);
    const predict::Trace trace =
        collectTrace(design, period, *workload, options.cycles);

    const int width = design.config.width;
    core::ErrorCombination combo;
    for (const predict::TraceRecord& rec : trace) {
      combo.add(core::OutputTriple{rec.diamondValue(width),
                                   rec.goldValue(width),
                                   rec.silverValue(width)});
    }
    CombinationRow row;
    row.design = design.config.name();
    row.cprPercent = cpr;
    row.periodNs = period;
    row.rmsRelStruct = combo.relStruct().rms();
    row.rmsRelTiming = combo.relTiming().rms();
    row.rmsRelJoint = combo.relJoint().rms();
    row.meanAbsJointArith = combo.arithJoint().meanAbs();
    row.structErrorRate = combo.arithStruct().errorRate();
    row.timingErrorRate = combo.arithTiming().errorRate();
    row.cycles = combo.cycles();
    rows[point] = std::move(row);
  });
  return rows;
}

std::vector<PredictionRow> runPredictionEvaluation(
    const std::vector<circuits::SynthesizedDesign>& designs,
    std::span<const double> cprPercents, const PredictionOptions& options) {
  const std::size_t points = designs.size() * cprPercents.size();
  std::vector<PredictionRow> rows(points);
  runParallel(points, options.run.threads, [&](std::size_t point) {
    const circuits::SynthesizedDesign& design =
        designs[point / cprPercents.size()];
    const double cpr = cprPercents[point % cprPercents.size()];
    const double period =
        overclockedPeriodNs(options.run.signOffPeriodNs, cpr);
    // Train and test stimuli come from differently-seeded streams.
    auto trainWorkload = workloadFor(options.run, design.config.width, 1);
    auto testWorkload = workloadFor(options.run, design.config.width, 2);
    const predict::Trace trainTrace =
        collectTrace(design, period, *trainWorkload, options.trainCycles);
    const predict::Trace testTrace =
        collectTrace(design, period, *testWorkload, options.testCycles);

    predict::BitLevelPredictor predictor(design.config.width,
                                         options.predictor);
    predictor.fit(trainTrace);
    const predict::PredictorEvaluation eval = predictor.evaluate(testTrace);

    PredictionRow row;
    row.design = design.config.name();
    row.cprPercent = cpr;
    row.periodNs = period;
    row.abper = eval.abper;
    row.avpe = eval.avpe;
    row.trainCycles = options.trainCycles;
    row.testCycles = eval.cycles;
    rows[point] = std::move(row);
  });
  return rows;
}

BitDistributionResult runBitDistribution(
    const circuits::SynthesizedDesign& design, double cprPercent,
    const RunOptions& options) {
  const double period =
      overclockedPeriodNs(options.signOffPeriodNs, cprPercent);
  auto workload = workloadFor(options, design.config.width, 0);
  const predict::Trace trace =
      collectTrace(design, period, *workload, options.cycles);

  const int width = design.config.width;
  // Positions 0..width-1 are sum bits; position `width` is the carry-out
  // (the paper's Fig. 10 x-axis spans 0..32 for 32-bit adders).
  //
  // Structural series: the paper translates each independent speculative
  // fault's net arithmetic contribution into its equivalent bit position.
  // Timing series: timing errors "might span over various outputs", so they
  // are counted bitwise (y_silver vs y_gold).
  const core::IsaAdder behavioral(design.config);
  std::vector<std::uint64_t> structuralCounts(
      static_cast<std::size_t>(width + 1), 0);
  core::BitErrorDistribution timing(width + 1);
  std::vector<core::PathTrace> traces;
  for (const predict::TraceRecord& rec : trace) {
    (void)behavioral.addTraced(rec.a, rec.b, rec.carryIn, traces);
    for (const int pos : core::equivalentBitPositions(traces)) {
      if (pos <= width) {
        ++structuralCounts[static_cast<std::size_t>(pos)];
      }
    }
    const std::uint64_t coutBit = std::uint64_t{1} << width;
    const std::uint64_t goldWord = rec.gold | (rec.goldCout ? coutBit : 0);
    const std::uint64_t silverWord =
        rec.silver | (rec.silverCout ? coutBit : 0);
    timing.add(silverWord, goldWord);
  }
  BitDistributionResult result;
  result.design = design.config.name();
  result.cprPercent = cprPercent;
  result.structuralRate.resize(static_cast<std::size_t>(width + 1));
  for (std::size_t i = 0; i < structuralCounts.size(); ++i) {
    result.structuralRate[i] =
        static_cast<double>(structuralCounts[i]) /
        static_cast<double>(trace.size());
  }
  result.timingRate = timing.rates();
  return result;
}

}  // namespace oisa::experiments
