#include "experiments/runner.h"

#include <algorithm>
#include <array>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <thread>

#include "core/bit_distribution.h"
#include "core/fault_inject.h"
#include "core/isa_adder.h"
#include "experiments/grid_scheduler.h"
#include "experiments/trace_collector.h"
#include "netlist/batch_evaluator.h"
#include "netlist/bitops.h"
#include "obs/metrics.h"
#include "obs/span.h"

namespace oisa::experiments {

namespace {

std::unique_ptr<Workload> workloadFor(const RunOptions& options, int width,
                                      std::uint64_t seedOffset) {
  return makeWorkload(options.workload, width, options.seed + seedOffset);
}

/// Per-cell flat-bank path for PredictionOptions::modelOut / modelIn.
std::string bankPath(const std::string& base, const std::string& design,
                     double cpr) {
  std::ostringstream os;
  os << base << '.' << design << ".cpr" << cpr << ".ffb";
  return os.str();
}

/// Everything every campaign fingerprint depends on: the cell grid
/// (design identities × CPR points) and the shared run controls. Thread
/// count and checkpoint controls are deliberately absent — they do not
/// change any cell's value.
CampaignFingerprint baseFingerprint(
    std::string_view pipeline,
    const std::vector<circuits::SynthesizedDesign>& designs,
    std::span<const double> cprPercents, const RunOptions& options) {
  CampaignFingerprint fp(pipeline);
  fp.mix(static_cast<std::uint64_t>(designs.size()));
  for (const auto& design : designs) {
    fp.mix(design.config.name());
    fp.mix(static_cast<std::uint64_t>(design.netlist.gateCount()));
  }
  fp.mix(static_cast<std::uint64_t>(cprPercents.size()));
  for (const double cpr : cprPercents) fp.mix(cpr);
  fp.mix(options.cycles);
  fp.mix(options.seed);
  fp.mix(options.workload);
  fp.mix(options.signOffPeriodNs);
  return fp;
}

// --- checkpoint payload codecs -----------------------------------------
// Doubles travel as bit patterns (PayloadWriter::f64), so a resumed row
// is byte-for-byte the row the interrupted run computed.

std::string encodeCombinationRow(const CombinationRow& row) {
  PayloadWriter w;
  w.str(row.design);
  w.f64(row.cprPercent);
  w.f64(row.periodNs);
  w.f64(row.rmsRelStruct);
  w.f64(row.rmsRelTiming);
  w.f64(row.rmsRelJoint);
  w.f64(row.meanAbsJointArith);
  w.f64(row.structErrorRate);
  w.f64(row.timingErrorRate);
  w.u64(row.cycles);
  return w.take();
}

std::optional<CombinationRow> decodeCombinationRow(
    const std::string& payload) {
  PayloadReader r{payload};
  CombinationRow row;
  row.design = r.str();
  row.cprPercent = r.f64();
  row.periodNs = r.f64();
  row.rmsRelStruct = r.f64();
  row.rmsRelTiming = r.f64();
  row.rmsRelJoint = r.f64();
  row.meanAbsJointArith = r.f64();
  row.structErrorRate = r.f64();
  row.timingErrorRate = r.f64();
  row.cycles = r.u64();
  if (!r.ok() || !r.atEnd()) return std::nullopt;
  return row;
}

std::string encodePredictionRow(const PredictionRow& row) {
  PayloadWriter w;
  w.str(row.design);
  w.f64(row.cprPercent);
  w.f64(row.periodNs);
  w.f64(row.abper);
  w.f64(row.avpe);
  w.u64(row.trainCycles);
  w.u64(row.testCycles);
  return w.take();
}

std::optional<PredictionRow> decodePredictionRow(const std::string& payload) {
  PayloadReader r{payload};
  PredictionRow row;
  row.design = r.str();
  row.cprPercent = r.f64();
  row.periodNs = r.f64();
  row.abper = r.f64();
  row.avpe = r.f64();
  row.trainCycles = r.u64();
  row.testCycles = r.u64();
  if (!r.ok() || !r.atEnd()) return std::nullopt;
  return row;
}

}  // namespace

void runCampaignGrid(std::size_t count, const RunOptions& options,
                     const std::function<void(std::size_t)>& task) {
  // Pool sized to the cells this slice actually computes (never more
  // workers than owned cells); results are bit-identical at any thread
  // count because every cell owns its seeded workload and simulator.
  const std::size_t owned = options.shard.ownedCells(count);
  unsigned workers = options.threads == 0
                         ? std::thread::hardware_concurrency()
                         : options.threads;
  if (workers == 0) workers = 1;
  workers = static_cast<unsigned>(
      std::min<std::size_t>(workers, std::max<std::size_t>(owned, 1)));
  GridScheduler pool(workers);
  CancelToken cancel;
  RunPolicy policy;
  policy.maxAttempts = std::max(options.cellAttempts, 1u);
  policy.retryBackoff = std::chrono::milliseconds(options.retryBackoffMs);
  if (options.deadlineSeconds > 0.0) {
    cancel.setTimeout(std::chrono::nanoseconds(
        static_cast<std::int64_t>(options.deadlineSeconds * 1e9)));
    policy.cancel = &cancel;
  }
  CampaignMonitor monitor(owned, options.progress, options.heartbeat,
                          options.shard.skipCells.size());
  policy.retryCounter = monitor.retryCounter();
  // Deterministic poison cell for quarantine tests: the named cell dies
  // by abort() *after* announcing itself (so a supervisor sees it in
  // flight) and *before* computing (so no checkpoint payload can absolve
  // it). Quarantined cells never reach this — owns() filters them first.
  static const char* abortEnv = std::getenv("OISA_ABORT_ON_CELL");
  static const std::uint64_t abortCell =
      abortEnv != nullptr && *abortEnv != '\0'
          ? std::strtoull(abortEnv, nullptr, 10)
          : ~std::uint64_t{0};
  static obs::Counter& cellsSkipped = obs::counter("grid.cells_not_owned");
  const auto wrapped = [&](std::size_t cell) {
    if (!options.shard.owns(cell)) {
      cellsSkipped.add();
      return;
    }
    monitor.cellStart(cell);
    if (cell == abortCell) {
      std::fprintf(stderr, "OISA_ABORT_ON_CELL: aborting in cell %zu\n",
                   cell);
      std::abort();
    }
    task(cell);
    monitor.cellDone(cell);
  };
  const obs::ObsSpan span("campaign", "grid", "owned_cells", owned);
  pool.run(count, wrapped, policy);
}

std::vector<CombinationRow> runErrorCombination(
    const std::vector<circuits::SynthesizedDesign>& designs,
    std::span<const double> cprPercents, const RunOptions& options) {
  const std::size_t points = designs.size() * cprPercents.size();
  std::vector<CombinationRow> rows(points);
  CampaignCheckpoint ckpt(
      options.checkpoint,
      baseFingerprint("runErrorCombination", designs, cprPercents, options)
          .digest(),
      points);
  const auto sweep = [&](std::size_t point) {
    const circuits::SynthesizedDesign& design =
        designs[point / cprPercents.size()];
    const double cpr = cprPercents[point % cprPercents.size()];
    if (const auto payload = ckpt.tryLoad(point)) {
      if (auto row = decodeCombinationRow(*payload)) {
        rows[point] = *std::move(row);
        return;
      }
    }
    // Injection site sits *after* the resume fast path, so a plan like
    // "grid.cell:*" makes any recomputation fail — resuming a complete
    // checkpoint under it proves cells were loaded, not recomputed.
    core::fault_inject::maybeThrow(core::fault_inject::kGridCell,
                                   core::StatusCode::IoError);
    const double period = overclockedPeriodNs(options.signOffPeriodNs, cpr);
    // Same workload seed across designs and CPRs so every design sees the
    // same stimulus, as in the paper's common random sample. The lane
    // collector replays 64 chunks of that stream per wheel sweep;
    // records are bit-identical to the sequential path.
    auto workload = workloadFor(options, design.config.width, 0);
    TraceCollector collector(design, period);
    const predict::Trace trace = collector.collect(*workload, options.cycles);

    const int width = design.config.width;
    core::ErrorCombination combo;
    for (const predict::TraceRecord& rec : trace) {
      combo.add(core::OutputTriple{rec.diamondValue(width),
                                   rec.goldValue(width),
                                   rec.silverValue(width)});
    }
    CombinationRow row;
    row.design = design.config.name();
    row.cprPercent = cpr;
    row.periodNs = period;
    row.rmsRelStruct = combo.relStruct().rms();
    row.rmsRelTiming = combo.relTiming().rms();
    row.rmsRelJoint = combo.relJoint().rms();
    row.meanAbsJointArith = combo.arithJoint().meanAbs();
    row.structErrorRate = combo.arithStruct().errorRate();
    row.timingErrorRate = combo.arithTiming().errorRate();
    row.cycles = combo.cycles();
    ckpt.commit(point, encodeCombinationRow(row));
    rows[point] = std::move(row);
  };
  try {
    runCampaignGrid(points, options, sweep);
  } catch (...) {
    (void)ckpt.finish();  // persist the surviving cells before surfacing
    throw;
  }
  (void)ckpt.finish();
  return rows;
}

std::vector<PredictionRow> runPredictionEvaluation(
    const std::vector<circuits::SynthesizedDesign>& designs,
    std::span<const double> cprPercents, const PredictionOptions& options) {
  const std::size_t points = designs.size() * cprPercents.size();
  std::vector<PredictionRow> rows(points);
  CampaignFingerprint fp = baseFingerprint("runPredictionEvaluation", designs,
                                           cprPercents, options.run);
  fp.mix(options.trainCycles);
  fp.mix(options.testCycles);
  fp.mix(static_cast<std::uint64_t>(options.predictor.model));
  fp.mix(std::uint64_t{options.predictor.includeOutputBits ? 1u : 0u});
  fp.mix(options.predictor.seed);
  fp.mix(static_cast<std::uint64_t>(options.predictor.forest.treeCount));
  fp.mix(static_cast<std::uint64_t>(options.predictor.forest.tree.maxDepth));
  CampaignCheckpoint ckpt(options.run.checkpoint, fp.digest(), points);
  const auto sweep = [&](std::size_t point) {
    const circuits::SynthesizedDesign& design =
        designs[point / cprPercents.size()];
    const double cpr = cprPercents[point % cprPercents.size()];
    if (const auto payload = ckpt.tryLoad(point)) {
      if (auto row = decodePredictionRow(*payload)) {
        rows[point] = *std::move(row);
        return;
      }
    }
    core::fault_inject::maybeThrow(core::fault_inject::kGridCell,
                                   core::StatusCode::IoError);
    const double period =
        overclockedPeriodNs(options.run.signOffPeriodNs, cpr);
    // Train and test stimuli come from differently-seeded streams. One
    // TraceCollector per point shares its compiled netlist and lane
    // simulator across both collections and owns each trace's single
    // packing pass (the block shift-and-transpose of packTrace), so the
    // predictor consumes packed feature/label words directly — popcount
    // training and 64-lane batched evaluation with no per-record
    // re-extraction here. Results are bit-identical to the sequential
    // per-trace pipeline (differential gates: bench/micro_lane_sim.cpp,
    // bench/micro_forest.cpp).
    TraceCollector collector(design, period);
    auto testWorkload = workloadFor(options.run, design.config.width, 2);
    // modelIn short-circuits training entirely: the cell's bank mmaps in
    // (envelope v2) and only the held-out stimulus is collected. Both
    // arms evaluate through the same flat-bank batched sweep, so the
    // rows — and any CSV written from them — are byte-identical.
    predict::BitLevelPredictor predictor = [&] {
      if (!options.modelIn.empty()) {
        return predict::BitLevelPredictor::loadFlat(
                   bankPath(options.modelIn, design.config.name(), cpr))
            .valueOrThrow();
      }
      return predict::BitLevelPredictor(design.config.width,
                                        options.predictor);
    }();
    if (predictor.width() != design.config.width) {
      throw core::StatusError(core::Status(
          core::StatusCode::InvalidInput,
          "model bank width does not match design " + design.config.name()));
    }
    if (options.modelIn.empty()) {
      auto trainWorkload = workloadFor(options.run, design.config.width, 1);
      const CollectedTrace train = collector.collectPacked(
          *trainWorkload, options.trainCycles, predictor.extractor());
      predictor.fit(train.packed);
      if (!options.modelOut.empty()) {
        core::throwIfError(predictor.saveFlat(
            bankPath(options.modelOut, design.config.name(), cpr)));
      }
    }
    const CollectedTrace test = collector.collectPacked(
        *testWorkload, options.testCycles, predictor.extractor());
    const predict::PredictorEvaluation eval =
        predictor.evaluate(test.trace, test.packed);

    PredictionRow row;
    row.design = design.config.name();
    row.cprPercent = cpr;
    row.periodNs = period;
    row.abper = eval.abper;
    row.avpe = eval.avpe;
    row.trainCycles = options.trainCycles;
    row.testCycles = eval.cycles;
    ckpt.commit(point, encodePredictionRow(row));
    rows[point] = std::move(row);
  };
  try {
    runCampaignGrid(points, options.run, sweep);
  } catch (...) {
    (void)ckpt.finish();
    throw;
  }
  (void)ckpt.finish();
  return rows;
}

BitDistributionResult runBitDistribution(
    const circuits::SynthesizedDesign& design, double cprPercent,
    const RunOptions& options) {
  const double period =
      overclockedPeriodNs(options.signOffPeriodNs, cprPercent);
  auto workload = workloadFor(options, design.config.width, 0);
  TraceCollector collector(design, period);
  const predict::Trace trace = collector.collect(*workload, options.cycles);

  const int width = design.config.width;
  // Positions 0..width-1 are sum bits; position `width` is the carry-out
  // (the paper's Fig. 10 x-axis spans 0..32 for 32-bit adders).
  //
  // Structural series: the paper translates each independent speculative
  // fault's net arithmetic contribution into its equivalent bit position.
  // Timing series: timing errors "might span over various outputs", so they
  // are counted bitwise (y_silver vs y_gold).
  const core::IsaAdder behavioral(design.config);
  std::vector<std::uint64_t> structuralCounts(
      static_cast<std::size_t>(width + 1), 0);
  core::BitErrorDistribution timing(width + 1);
  std::vector<core::PathTrace> traces;
  for (const predict::TraceRecord& rec : trace) {
    (void)behavioral.addTraced(rec.a, rec.b, rec.carryIn, traces);
    for (const int pos : core::equivalentBitPositions(traces)) {
      if (pos <= width) {
        ++structuralCounts[static_cast<std::size_t>(pos)];
      }
    }
    const std::uint64_t coutBit = std::uint64_t{1} << width;
    const std::uint64_t goldWord = rec.gold | (rec.goldCout ? coutBit : 0);
    const std::uint64_t silverWord =
        rec.silver | (rec.silverCout ? coutBit : 0);
    timing.add(silverWord, goldWord);
  }
  BitDistributionResult result;
  result.design = design.config.name();
  result.cprPercent = cprPercent;
  result.structuralRate.resize(static_cast<std::size_t>(width + 1));
  for (std::size_t i = 0; i < structuralCounts.size(); ++i) {
    result.structuralRate[i] =
        static_cast<double>(structuralCounts[i]) /
        static_cast<double>(trace.size());
  }
  result.timingRate = timing.rates();
  return result;
}

std::vector<FunctionalScanRow> runFunctionalErrorScan(
    const std::vector<circuits::SynthesizedDesign>& designs,
    const RunOptions& options) {
  constexpr std::size_t kLanes = netlist::BatchEvaluator::kLanes;
  std::vector<FunctionalScanRow> rows(designs.size());
  runCampaignGrid(designs.size(), options, [&](std::size_t d) {
    const circuits::SynthesizedDesign& design = designs[d];
    const int width = design.config.width;
    const core::IsaAdder behavioral(design.config);
    const netlist::BatchEvaluator eval(design.netlist);
    auto workload = workloadFor(options, width, 0);

    // Port convention (circuits::buildIsaNetlist): inputs a0..aN-1,
    // b0..bN-1, cin; outputs s0..sN-1, cout.
    const std::size_t inputCount = design.netlist.primaryInputs().size();
    std::vector<std::uint64_t> inWords(inputCount, 0);
    std::vector<std::uint64_t> values;
    std::array<std::uint64_t, kLanes> sM{};
    std::array<Stimulus, kLanes> stims{};

    FunctionalScanRow row;
    row.design = design.config.name();
    core::ErrorStats arith;
    core::ErrorStats rel;
    const auto pos = design.netlist.primaryOutputs();

    std::uint64_t remaining = options.cycles;
    while (remaining > 0) {
      const std::size_t lanes =
          static_cast<std::size_t>(std::min<std::uint64_t>(kLanes, remaining));
      for (std::size_t lane = 0; lane < lanes; ++lane) {
        stims[lane] = workload->next();
      }
      packStimulusBlock(std::span(stims.data(), lanes), width, inWords);

      eval.evaluateInto(inWords, values);
      for (int i = 0; i < width; ++i) {
        sM[static_cast<std::size_t>(i)] =
            values[pos[static_cast<std::size_t>(i)].value];
      }
      std::fill(sM.begin() + width, sM.end(), 0);
      const std::uint64_t coutWord =
          values[pos[static_cast<std::size_t>(width)].value];
      netlist::transpose64(sM);

      for (std::size_t lane = 0; lane < lanes; ++lane) {
        const Stimulus& s = stims[lane];
        std::uint64_t silver = sM[lane];
        if (width < 64 && ((coutWord >> lane) & 1u) != 0) {
          silver |= std::uint64_t{1} << width;
        }
        const std::uint64_t gold =
            behavioral.add(s.a, s.b, s.carryIn).value(width);
        const std::uint64_t diamond =
            behavioral.exactAdd(s.a, s.b, s.carryIn).value(width);
        if (silver != gold) row.matchesBehavioral = false;
        const double err = core::signedErrorAsDouble(silver, diamond);
        arith.add(err);
        if (diamond != 0) rel.add(err / static_cast<double>(diamond));
      }
      remaining -= lanes;
    }
    row.samples = arith.count();
    row.structErrorRate = arith.errorRate();
    row.rmsRelStruct = rel.rms();
    row.meanStruct = arith.mean();
    rows[d] = std::move(row);
  });
  return rows;
}

}  // namespace oisa::experiments
