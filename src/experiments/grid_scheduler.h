// oisa_experiments: deterministic thread pool for experiment grids.
//
// The figure pipelines sweep a (design × CPR) grid where every cell owns
// its full state — seeded workload, timed simulator, statistics — so cells
// can run in any order on any thread and still produce bit-identical
// results. GridScheduler is the worker pool that fans those cells out:
// workers are spawned once per scheduler and reused by every run() call
// made on it, cells are claimed from an atomic counter, and the calling
// thread works alongside the pool so `threads == 1` degrades to the
// plain serial loop. Current callers scope one scheduler per sweep
// (sized to the grid by runner.cpp's runParallel); longer-lived sharing
// across sweeps is supported but not yet used.
//
// Determinism contract: a task must derive all randomness from its cell
// index (e.g. `options.seed + offset`), never from shared mutable state or
// the worker identity. Under that contract the grid result is a pure
// function of (inputs, seed) — verified at 1/2/8 threads by
// tests/wheel_sim_test.cpp.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace oisa::experiments {

/// Persistent worker pool distributing independent grid cells.
class GridScheduler {
 public:
  /// `threads` — total worker count including the calling thread;
  /// 0 = hardware concurrency.
  explicit GridScheduler(unsigned threads = 0);
  ~GridScheduler();

  GridScheduler(const GridScheduler&) = delete;
  GridScheduler& operator=(const GridScheduler&) = delete;

  /// Total workers (calling thread included).
  [[nodiscard]] unsigned threadCount() const noexcept { return threadCount_; }

  /// Runs task(0..count-1) across the pool and blocks until every cell
  /// finished. The first exception thrown by a task cancels the remaining
  /// unclaimed cells and is rethrown here on the calling thread.
  void run(std::size_t count, const std::function<void(std::size_t)>& task);

 private:
  void workerLoop();
  void drain();

  unsigned threadCount_ = 1;
  std::vector<std::thread> workers_;

  std::mutex mutex_;
  std::condition_variable wake_;
  std::condition_variable done_;
  const std::function<void(std::size_t)>* task_ = nullptr;  // current job
  std::size_t count_ = 0;
  std::atomic<std::size_t> next_{0};
  unsigned busy_ = 0;          // workers still draining the current job
  std::uint64_t generation_ = 0;
  bool stop_ = false;
  std::exception_ptr error_;
};

}  // namespace oisa::experiments
