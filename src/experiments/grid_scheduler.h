// oisa_experiments: deterministic, fault-tolerant thread pool for
// experiment grids.
//
// The figure pipelines sweep a (design × CPR) grid where every cell owns
// its full state — seeded workload, timed simulator, statistics — so cells
// can run in any order on any thread and still produce bit-identical
// results. GridScheduler is the worker pool that fans those cells out:
// workers are spawned once per scheduler and reused by every run() call
// made on it, cells are claimed from an atomic counter, and the calling
// thread works alongside the pool so `threads == 1` degrades to the
// plain serial loop. Current callers scope one scheduler per sweep
// (sized to the grid by runner.cpp's runParallel); longer-lived sharing
// across sweeps is supported but not yet used.
//
// Determinism contract: a task must derive all randomness from its cell
// index (e.g. `options.seed + offset`), never from shared mutable state or
// the worker identity. Under that contract the grid result is a pure
// function of (inputs, seed) — verified at 1/2/8 threads by
// tests/wheel_sim_test.cpp.
//
// Failure contract: one bad cell must not throw away the rest of a
// multi-hour campaign. A cell failure is recorded (not rethrown) and the
// remaining cells keep running; when the grid finishes, run() throws a
// GridError aggregating *every* failed cell with its typed cause, so the
// caller still holds the completed cells' results (and can checkpoint
// them). A RunPolicy adds per-cell retry-with-backoff for transient
// failures and a cooperative CancelToken with a wall-clock deadline.
//
// Post-error / post-cancel state, precisely:
//  * every cell either ran to completion (its result is in the caller's
//    output slot), exhausted its retry attempts (listed in
//    GridError::failures()), or was never claimed after cancellation
//    (counted by GridError::cellsNotRun(), output slot untouched);
//  * cancellation is prompt: once the token fires, no worker claims
//    another cell (checked before every claim) — cells already
//    executing finish normally, and run() returns as soon as they do;
//  * the pool itself stays healthy: a later run() on the same scheduler
//    behaves exactly like a run on a fresh one.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/status.h"

namespace oisa::experiments {

/// Cooperative cancellation: observed by GridScheduler between cell
/// claims (cells are coarse, so that is the natural preemption point).
/// Either requestCancel() or passing the wall-clock deadline trips it;
/// once tripped it stays tripped.
class CancelToken {
 public:
  /// Trips the token immediately.
  void requestCancel() noexcept {
    cancelled_.store(true, std::memory_order_relaxed);
  }

  /// Trips the token once `now() >= deadline`.
  void setDeadline(std::chrono::steady_clock::time_point deadline) noexcept {
    deadlineNs_.store(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            deadline.time_since_epoch())
            .count(),
        std::memory_order_relaxed);
  }

  /// Trips the token `budget` from now.
  void setTimeout(std::chrono::nanoseconds budget) noexcept {
    setDeadline(std::chrono::steady_clock::now() + budget);
  }

  [[nodiscard]] bool cancelled() const noexcept {
    if (cancelled_.load(std::memory_order_relaxed)) return true;
    const std::int64_t d = deadlineNs_.load(std::memory_order_relaxed);
    if (d == kNoDeadline) return false;
    const std::int64_t now =
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count();
    if (now < d) return false;
    cancelled_.store(true, std::memory_order_relaxed);  // latch
    return true;
  }

 private:
  static constexpr std::int64_t kNoDeadline =
      std::numeric_limits<std::int64_t>::max();
  mutable std::atomic<bool> cancelled_{false};
  std::atomic<std::int64_t> deadlineNs_{kNoDeadline};
};

/// One failed grid cell: which cell, why, and how many attempts it got.
struct CellFailure {
  std::size_t cell = 0;
  core::Status status;
  unsigned attempts = 1;
};

/// Aggregate failure of a grid run: every failed cell with its typed
/// cause, plus whether cancellation cut the grid short. Derives from
/// std::runtime_error so pre-taxonomy catch sites keep working.
class GridError : public std::runtime_error {
 public:
  GridError(std::vector<CellFailure> failures, bool cancelled,
            std::size_t cellsNotRun);

  [[nodiscard]] const std::vector<CellFailure>& failures() const noexcept {
    return failures_;
  }
  /// True when a CancelToken (deadline or explicit) stopped the run.
  [[nodiscard]] bool cancelled() const noexcept { return cancelled_; }
  /// Cells never claimed because of cancellation.
  [[nodiscard]] std::size_t cellsNotRun() const noexcept {
    return cellsNotRun_;
  }

 private:
  std::vector<CellFailure> failures_;
  bool cancelled_ = false;
  std::size_t cellsNotRun_ = 0;
};

/// Per-run failure-handling controls.
struct RunPolicy {
  /// Total tries per cell (1 = no retry). A failure is retried unless its
  /// code is InvalidInput (a bad cell stays bad) or Deadline.
  unsigned maxAttempts = 1;
  /// Sleep before retry k is `retryBackoff << (k - 1)` (exponential).
  std::chrono::milliseconds retryBackoff{0};
  /// Optional cooperative cancellation / wall-clock deadline.
  CancelToken* cancel = nullptr;
  /// Optional non-owning counter bumped once per retry (attempt 2+), for
  /// progress reporting (--progress, shard heartbeats).
  std::atomic<std::uint64_t>* retryCounter = nullptr;
};

/// Persistent worker pool distributing independent grid cells.
class GridScheduler {
 public:
  /// `threads` — total worker count including the calling thread;
  /// 0 = hardware concurrency.
  explicit GridScheduler(unsigned threads = 0);
  ~GridScheduler();

  GridScheduler(const GridScheduler&) = delete;
  GridScheduler& operator=(const GridScheduler&) = delete;

  /// Total workers (calling thread included).
  [[nodiscard]] unsigned threadCount() const noexcept { return threadCount_; }

  /// Runs task(0..count-1) across the pool and blocks until every cell
  /// finished (or cancellation stopped further claims). Throws GridError
  /// aggregating all cell failures — never just the first — after the
  /// surviving cells completed. See the header comment for the exact
  /// post-error state.
  void run(std::size_t count, const std::function<void(std::size_t)>& task) {
    run(count, task, RunPolicy{});
  }

  /// As above with retry/backoff and cancellation controls.
  void run(std::size_t count, const std::function<void(std::size_t)>& task,
           const RunPolicy& policy);

 private:
  void workerLoop();
  void drain();
  void executeCell(std::size_t cell);

  unsigned threadCount_ = 1;
  std::vector<std::thread> workers_;

  std::mutex mutex_;
  std::condition_variable wake_;
  std::condition_variable done_;
  const std::function<void(std::size_t)>* task_ = nullptr;  // current job
  const RunPolicy* policy_ = nullptr;                       // current job
  std::size_t count_ = 0;
  std::atomic<std::size_t> next_{0};
  std::atomic<std::int64_t> runStartNs_{0};  // obs: queue-wait baseline
  std::atomic<bool> stopClaims_{false};  // cancellation observed
  std::vector<CellFailure> failures_;    // guarded by mutex_
  unsigned busy_ = 0;          // workers still draining the current job
  std::uint64_t generation_ = 0;
  bool stop_ = false;
};

}  // namespace oisa::experiments
