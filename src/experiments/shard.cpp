#include "experiments/shard.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <set>
#include <string_view>
#include <unordered_map>
#include <utility>

#include "core/fault_inject.h"
#include "experiments/checkpoint.h"
#include "obs/event_log.h"
#include "obs/metrics.h"

#ifndef _WIN32
#include <csignal>
#include <poll.h>
#include <unistd.h>
#endif

namespace oisa::experiments {

// --- cell ownership ----------------------------------------------------

bool ShardSlice::owns(std::uint64_t cell) const noexcept {
  if (count > 1 && cell % count != index) return false;
  return !std::binary_search(skipCells.begin(), skipCells.end(), cell);
}

std::size_t ShardSlice::ownedCells(std::size_t cellCount) const noexcept {
  std::size_t owned = 0;
  for (std::uint64_t c = 0; c < cellCount; ++c) owned += owns(c) ? 1 : 0;
  return owned;
}

core::StatusOr<ShardWorkerSpec> ShardWorkerSpec::parse(
    const std::string& text) {
  const auto bad = [&] {
    return core::Status::invalidInput(
        "--shard-worker: expected <index>/<count> with index < count, got '" +
        text + "'");
  };
  const std::size_t slash = text.find('/');
  if (slash == std::string::npos || slash == 0 || slash + 1 == text.size()) {
    return bad();
  }
  std::uint64_t parts[2] = {0, 0};
  const std::string_view views[2] = {
      std::string_view(text).substr(0, slash),
      std::string_view(text).substr(slash + 1)};
  for (int i = 0; i < 2; ++i) {
    for (const char ch : views[i]) {
      if (ch < '0' || ch > '9') return bad();
      parts[i] = parts[i] * 10 + static_cast<std::uint64_t>(ch - '0');
      if (parts[i] > 1u << 20) return bad();
    }
  }
  if (parts[1] == 0 || parts[0] >= parts[1]) return bad();
  ShardWorkerSpec spec;
  spec.index = static_cast<unsigned>(parts[0]);
  spec.count = static_cast<unsigned>(parts[1]);
  return spec;
}

std::string shardCheckpointPath(const std::string& base, unsigned shard) {
  return base + ".shard" + std::to_string(shard);
}

core::StatusOr<std::vector<std::uint64_t>> parseCellList(
    const std::string& text) {
  std::vector<std::uint64_t> cells;
  std::size_t begin = 0;
  while (begin <= text.size()) {
    std::size_t end = text.find(',', begin);
    if (end == std::string::npos) end = text.size();
    const std::string_view item =
        std::string_view(text).substr(begin, end - begin);
    begin = end + 1;
    if (item.empty()) continue;
    std::uint64_t cell = 0;
    for (const char ch : item) {
      if (ch < '0' || ch > '9') {
        return core::Status::invalidInput(
            "cell list: expected comma-separated cell indices, got '" +
            std::string(item) + "'");
      }
      cell = cell * 10 + static_cast<std::uint64_t>(ch - '0');
    }
    cells.push_back(cell);
  }
  std::sort(cells.begin(), cells.end());
  cells.erase(std::unique(cells.begin(), cells.end()), cells.end());
  return cells;
}

std::string formatCellList(const std::vector<std::uint64_t>& cells) {
  std::string out;
  for (const std::uint64_t cell : cells) {
    if (!out.empty()) out.push_back(',');
    out += std::to_string(cell);
  }
  return out;
}

// --- worker-side heartbeat --------------------------------------------

std::unique_ptr<HeartbeatEmitter> HeartbeatEmitter::fromEnv() {
  const char* env = std::getenv("OISA_HEARTBEAT_FD");
  if (env == nullptr || *env == '\0') return nullptr;
  const int fd = std::atoi(env);
  if (fd <= 0) return nullptr;
#ifndef _WIN32
  // A supervisor that died mid-campaign must not SIGPIPE the worker —
  // the worker keeps computing and its checkpoint still lands.
  (void)std::signal(SIGPIPE, SIG_IGN);
#endif
  return std::make_unique<HeartbeatEmitter>(fd);
}

void HeartbeatEmitter::cellStart(std::uint64_t cell) {
  writeLine("S " + std::to_string(cell) + "\n");
}

void HeartbeatEmitter::cellDone(std::uint64_t cell) {
  writeLine("D " + std::to_string(cell) + "\n");
}

void HeartbeatEmitter::retries(std::uint64_t total) {
  writeLine("R " + std::to_string(total) + "\n");
}

void HeartbeatEmitter::metricDelta(std::string_view name,
                                   std::uint64_t delta) {
  std::string line = "M ";
  line += name;
  line += ' ';
  line += std::to_string(delta);
  line += '\n';
  writeLine(line);
}

void HeartbeatEmitter::metricsFlush() {
  const obs::MetricsSnapshot snap = obs::snapshotMetrics();
  const std::lock_guard<std::mutex> lock(metricsMu_);
  for (const auto& [name, value] : snap.counters) {
    std::uint64_t& sent = lastSent_[name];
    if (value <= sent) continue;  // counters are monotone; equal = quiet
    const std::uint64_t delta = value - sent;
    sent = value;
    metricDelta(name, delta);
  }
}

void HeartbeatEmitter::tick() { writeLine("H\n"); }

void HeartbeatEmitter::writeLine(const std::string& line) {
#ifndef _WIN32
  // The fault drops the *line*, not the fd: the worker keeps computing
  // normally but looks dead from the supervisor's side.
  if (core::fault_inject::shouldFail(core::fault_inject::kWorkerHeartbeat)) {
    return;
  }
  const std::lock_guard<std::mutex> lock(mutex_);
  if (broken_) return;
  std::size_t written = 0;
  while (written < line.size()) {
    const ssize_t n =
        ::write(fd_, line.data() + written, line.size() - written);
    if (n > 0) {
      written += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    broken_ = true;  // supervisor gone; protocol is best-effort
    return;
  }
#else
  (void)line;
#endif
}

// --- grid-loop monitor -------------------------------------------------

CampaignMonitor::CampaignMonitor(std::size_t totalCells,
                                 bool progressToStderr,
                                 HeartbeatEmitter* heartbeat,
                                 std::size_t quarantinedCells)
    : total_(totalCells),
      progress_(progressToStderr),
      heartbeat_(heartbeat),
      quarantined_(quarantinedCells),
      start_(std::chrono::steady_clock::now()),
      lastPrint_(start_) {
  if (progress_ || heartbeat_ != nullptr) {
    ticker_ = std::thread([this] { tickerLoop(); });
  }
}

CampaignMonitor::~CampaignMonitor() {
  if (ticker_.joinable()) {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      stop_ = true;
    }
    stopCv_.notify_all();
    ticker_.join();
  }
  if (progress_) printProgress();  // final line: done == total (or error)
}

void CampaignMonitor::cellStart(std::uint64_t cell) {
  if (heartbeat_ != nullptr) heartbeat_->cellStart(cell);
}

void CampaignMonitor::cellDone(std::uint64_t cell) {
  done_.fetch_add(1, std::memory_order_relaxed);
  if (heartbeat_ != nullptr) heartbeat_->cellDone(cell);
}

void CampaignMonitor::tickerLoop() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (!stop_) {
    stopCv_.wait_for(lock, std::chrono::milliseconds(500));
    if (stop_) break;
    lock.unlock();
    if (heartbeat_ != nullptr) {
      heartbeat_->tick();
      const std::uint64_t retries = retries_.load(std::memory_order_relaxed);
      if (retries != reportedRetries_) {
        reportedRetries_ = retries;
        heartbeat_->retries(retries);
      }
      // Stream obs counter deltas upstream so the supervisor's fleet
      // rollup tracks the campaign live (cheap: registry snapshot every
      // ~500 ms, against seconds-long cells).
      heartbeat_->metricsFlush();
    }
    if (progress_) {
      const auto now = std::chrono::steady_clock::now();
      if (now - lastPrint_ >= std::chrono::seconds(2)) {
        lastPrint_ = now;
        printProgress();
      }
    }
    lock.lock();
  }
}

void CampaignMonitor::printProgress() {
  const std::uint64_t done = done_.load(std::memory_order_relaxed);
  const std::uint64_t retries = retries_.load(std::memory_order_relaxed);
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
          .count();
  std::string line = "progress: " + std::to_string(done) + "/" +
                     std::to_string(total_) + " cells";
  if (retries > 0) line += ", " + std::to_string(retries) + " retries";
  if (quarantined_ > 0) {
    line += ", " + std::to_string(quarantined_) + " quarantined";
  }
  char timing[64];
  std::snprintf(timing, sizeof timing, ", elapsed %.1fs", elapsed);
  line += timing;
  if (done > 0 && done < total_) {
    const double eta =
        elapsed / static_cast<double>(done) *
        static_cast<double>(total_ - done);
    std::snprintf(timing, sizeof timing, ", eta %.1fs", eta);
    line += timing;
  }
  line += "\n";
  // One write: progress lines from workers and supervisor interleave on
  // the shared stderr, but never mid-line.
  std::fwrite(line.data(), 1, line.size(), stderr);
  std::fflush(stderr);
}

// --- supervisor --------------------------------------------------------

#ifndef _WIN32

namespace {

/// Supervisor-side view of one shard's worker lifecycle.
struct ShardState {
  core::Subprocess proc;
  bool running = false;
  bool finished = false;  ///< worker exited cleanly
  unsigned launches = 0;
  bool stallKilled = false;  ///< we SIGKILLed it for heartbeat silence
  std::chrono::steady_clock::time_point lastTraffic;
  std::chrono::steady_clock::time_point nextSpawn;  ///< backoff gate
  std::string rx;                                   ///< partial line buffer
  std::set<std::uint64_t> inFlight;  ///< S seen, no D yet
  std::uint64_t reportedRetries = 0;
};

std::vector<std::string> defaultWorkerArgs(
    const ShardSupervisorOptions& options, unsigned shard,
    const std::vector<std::uint64_t>& quarantined) {
  std::vector<std::string> args = options.workerArgs;
  args.push_back("--shard-worker=" + std::to_string(shard) + "/" +
                 std::to_string(options.shards));
  args.push_back("--checkpoint=" + options.checkpointBase);
  args.push_back("--resume");
  if (!quarantined.empty()) {
    args.push_back("--quarantine=" + formatCellList(quarantined));
  }
  if (!options.workerMetricsBase.empty()) {
    args.push_back("--metrics-out=" +
                   shardCheckpointPath(options.workerMetricsBase, shard));
  }
  if (!options.workerTraceBase.empty()) {
    args.push_back("--trace-out=" +
                   shardCheckpointPath(options.workerTraceBase, shard));
  }
  return args;
}

}  // namespace

core::StatusOr<ShardReport> runShardSupervisor(
    const ShardSupervisorOptions& options) {
  using Clock = std::chrono::steady_clock;
  if (options.shards < 1) {
    return core::Status::invalidInput("supervisor: --shards must be >= 1");
  }
  if (options.checkpointBase.empty()) {
    return core::Status::invalidInput(
        "supervisor: a checkpoint base path is required (shard results "
        "merge through it)");
  }
  if (options.binary.empty()) {
    return core::Status::invalidInput("supervisor: worker binary unknown");
  }

  const unsigned strikesToQuarantine = std::max(1u, options.maxCellStrikes);
  // Quarantine guarantees progress: each abnormal death strikes at least
  // one owned cell (or exhausts this budget), so K strikes per cell
  // bounds total restarts. Slack absorbs spawn faults and stall kills
  // that strike nothing.
  const std::size_t cellsPerShard =
      options.cellCount / options.shards + 1;
  const unsigned restartBudget =
      options.maxRestartsPerShard > 0
          ? options.maxRestartsPerShard
          : static_cast<unsigned>(strikesToQuarantine * cellsPerShard + 8);

  // Durable JSONL record of fleet lifecycle; disabled when no path given.
  obs::EventLog elog(options.eventLogPath);
  elog.event("supervisor_start")
      .u64("shards", options.shards)
      .u64("cells", options.cellCount)
      .u64("restart_budget", restartBudget);

  ShardReport report;
  std::vector<ShardState> shards(options.shards);
  const auto now0 = Clock::now();
  for (ShardState& s : shards) {
    s.lastTraffic = now0;
    s.nextSpawn = now0;
  }
  std::unordered_map<std::uint64_t, unsigned> strikes;
  std::set<std::uint64_t> quarantinedSet;
  std::set<std::uint64_t> completed;  ///< distinct D cells (progress)
  core::Status failure;  ///< first budget exhaustion; merge still runs

  const auto quarantineList = [&] {
    return std::vector<std::uint64_t>(quarantinedSet.begin(),
                                      quarantinedSet.end());
  };
  const auto buildArgs = [&](unsigned shard) {
    return options.buildWorkerArgs
               ? options.buildWorkerArgs(shard, quarantineList())
               : defaultWorkerArgs(options, shard, quarantineList());
  };
  const auto backoffFor = [&](const ShardState& s) {
    const unsigned exponent =
        std::min(s.launches > 0 ? s.launches - 1 : 0u, 6u);
    return std::chrono::milliseconds(options.restartBackoffMs << exponent);
  };

  // One strike per in-flight cell on an abnormal worker end. The cells a
  // dead worker had started but not finished are the only suspects; a
  // cell that later completes is absolved after the merge.
  const auto strikeInFlight = [&](unsigned shardIndex, ShardState& s,
                                  const core::ProcessExit& how) {
    for (const std::uint64_t cell : s.inFlight) {
      if (quarantinedSet.count(cell) != 0) continue;
      const unsigned count = ++strikes[cell];
      if (count < strikesToQuarantine) continue;
      quarantinedSet.insert(cell);
      QuarantinedCell q;
      q.cell = cell;
      q.shard = shardIndex;
      q.strikes = count;
      q.lastExit = how;
      q.stalled = s.stallKilled;
      report.quarantined.push_back(q);
      elog.event("quarantine")
          .u64("cell", cell)
          .u64("shard", shardIndex)
          .u64("strikes", count)
          .str("exit", how.toString())
          .u64("stalled", s.stallKilled ? 1 : 0);
      std::fprintf(stderr,
                   "warning: quarantining cell %llu (shard %u): worker died "
                   "with %s %u time(s) while it was in flight\n",
                   static_cast<unsigned long long>(cell), shardIndex,
                   how.toString().c_str(), count);
    }
    s.inFlight.clear();
  };

  const auto handleLine = [&](ShardState& s, std::string_view line) {
    if (line.empty()) return;
    const char tag = line[0];
    if (tag == 'M') {
      // "M <name> <delta>" — accumulate into the fleet counter rollup.
      // Deltas from restarted incarnations just keep adding: each line
      // covers work since that incarnation's previous flush.
      const std::size_t sp = line.rfind(' ');
      if (sp == std::string::npos || sp <= 2 || sp + 1 == line.size()) return;
      const std::string_view name = line.substr(2, sp - 2);
      std::uint64_t delta = 0;
      for (const char ch : line.substr(sp + 1)) {
        if (ch < '0' || ch > '9') return;
        delta = delta * 10 + static_cast<std::uint64_t>(ch - '0');
      }
      report.fleetCounters[std::string(name)] += delta;
      return;
    }
    std::uint64_t value = 0;
    if (tag == 'S' || tag == 'D' || tag == 'R') {
      if (line.size() <= 2) return;  // garbled; traffic already proves life
      for (const char ch : line.substr(2)) {
        if (ch < '0' || ch > '9') return;
        value = value * 10 + static_cast<std::uint64_t>(ch - '0');
      }
    }
    switch (tag) {
      case 'S':
        s.inFlight.insert(value);
        break;
      case 'D':
        s.inFlight.erase(value);
        strikes.erase(value);  // completion wipes the record clean
        completed.insert(value);
        break;
      case 'R':
        s.reportedRetries = value;
        break;
      default:
        break;  // 'H' and anything unknown: traffic already proves life
    }
  };

  const auto pumpShard = [&](ShardState& s) {
    const int n = s.proc.readHeartbeat(s.rx);
    if (n > 0) s.lastTraffic = Clock::now();
    std::size_t begin = 0;
    for (;;) {
      const std::size_t eol = s.rx.find('\n', begin);
      if (eol == std::string::npos) break;
      handleLine(s, std::string_view(s.rx).substr(begin, eol - begin));
      begin = eol + 1;
    }
    s.rx.erase(0, begin);
  };

  const auto progressLine = [&](const char* event) {
    if (!options.progress) return;
    std::uint64_t retries = 0;
    for (const ShardState& s : shards) retries += s.reportedRetries;
    std::fprintf(stderr,
                 "shards: %zu/%zu cells, %llu retries, %u restart(s), "
                 "%zu quarantined%s%s\n",
                 completed.size(), options.cellCount,
                 static_cast<unsigned long long>(retries), report.restarts,
                 quarantinedSet.size(), *event != '\0' ? " — " : "", event);
  };

  auto lastProgress = Clock::now();
  for (;;) {
    bool allFinished = true;
    for (const ShardState& s : shards) allFinished &= s.finished;
    if (allFinished || !failure.isOk()) break;

    const auto now = Clock::now();

    // (Re)spawn shards that are due.
    for (unsigned i = 0; i < options.shards; ++i) {
      ShardState& s = shards[i];
      if (s.finished || s.running || now < s.nextSpawn) continue;
      ++s.launches;
      core::StatusOr<core::Subprocess> spawned =
          core::Subprocess::spawn(options.binary, buildArgs(i));
      if (!spawned.isOk()) {
        elog.event("spawn_failed")
            .u64("shard", i)
            .u64("launch", s.launches)
            .str("error", spawned.status().toString());
        std::fprintf(stderr, "warning: shard %u spawn failed: %s\n", i,
                     spawned.status().toString().c_str());
        ++report.restarts;
        if (s.launches > restartBudget) {
          failure = core::Status::ioError(
              "shard " + std::to_string(i) + " exhausted its restart budget (" +
              std::to_string(restartBudget) + ")");
          break;
        }
        s.nextSpawn = now + backoffFor(s);
        continue;
      }
      s.proc = std::move(spawned).value();
      s.running = true;
      s.stallKilled = false;
      s.lastTraffic = now;
      s.rx.clear();
      s.inFlight.clear();
      elog.event("spawn").u64("shard", i).u64("launch", s.launches);
    }
    if (!failure.isOk()) break;

    // Sleep on the heartbeat fds (100 ms cap keeps backoff gates live).
    std::vector<pollfd> fds;
    fds.reserve(options.shards);
    for (ShardState& s : shards) {
      if (s.running && s.proc.heartbeatFd() >= 0) {
        fds.push_back(pollfd{s.proc.heartbeatFd(), POLLIN, 0});
      }
    }
    if (!fds.empty()) {
      (void)::poll(fds.data(), static_cast<nfds_t>(fds.size()), 100);
    } else {
      struct timespec ts {0, 20 * 1000 * 1000};
      (void)::nanosleep(&ts, nullptr);
    }

    // Pump heartbeats, reap deaths, kill stalls.
    const auto afterPoll = Clock::now();
    for (unsigned i = 0; i < options.shards; ++i) {
      ShardState& s = shards[i];
      if (!s.running) continue;
      pumpShard(s);
      if (std::optional<core::ProcessExit> end = s.proc.poll()) {
        pumpShard(s);  // drain protocol lines that raced the death
        s.running = false;
        if (end->clean()) {
          s.finished = true;
          s.inFlight.clear();
          elog.event("shard_finished").u64("shard", i);
          progressLine(("shard " + std::to_string(i) + " finished").c_str());
          continue;
        }
        elog.event("worker_died")
            .u64("shard", i)
            .str("exit", end->toString())
            .u64("stalled", s.stallKilled ? 1 : 0)
            .u64("in_flight", s.inFlight.size());
        strikeInFlight(i, s, *end);
        ++report.restarts;
        std::fprintf(stderr,
                     "warning: shard %u worker ended with %s%s; restarting\n",
                     i, end->toString().c_str(),
                     s.stallKilled ? " (heartbeat stall)" : "");
        if (s.launches > restartBudget) {
          failure = core::Status::ioError(
              "shard " + std::to_string(i) + " exhausted its restart budget (" +
              std::to_string(restartBudget) + ")");
          continue;
        }
        s.nextSpawn = afterPoll + backoffFor(s);
        continue;
      }
      const double silentFor =
          std::chrono::duration<double>(afterPoll - s.lastTraffic).count();
      if (options.heartbeatTimeoutSec > 0 &&
          silentFor > options.heartbeatTimeoutSec && !s.stallKilled) {
        std::fprintf(stderr,
                     "warning: shard %u silent for %.1fs; killing worker\n", i,
                     silentFor);
        elog.event("stall_kill")
            .u64("shard", i)
            .u64("silent_ms", static_cast<std::uint64_t>(silentFor * 1000.0));
        s.stallKilled = true;
        s.proc.kill(SIGKILL);  // reaped by poll() next iteration
      }
    }

    if (options.progress &&
        afterPoll - lastProgress >= std::chrono::seconds(2)) {
      lastProgress = afterPoll;
      progressLine("");
    }
  }

  // Merge the per-shard snapshots into the base checkpoint — fixed
  // order (base first when resuming, then shard 0..N-1) so the merged
  // file is byte-stable. Runs even on budget exhaustion: whatever the
  // shards completed must survive.
  std::vector<std::string> paths;
  if (options.resumeBase) paths.push_back(options.checkpointBase);
  for (unsigned i = 0; i < options.shards; ++i) {
    paths.push_back(shardCheckpointPath(options.checkpointBase, i));
  }
  core::StatusOr<GridCheckpoint> merged = mergeSnapshots(paths);
  if (merged.isOk()) {
    // Absolution: a quarantined cell whose payload made it into a shard
    // snapshot did complete — its D line was lost (dropped heartbeat),
    // not its computation. Serving it from the snapshot keeps the final
    // CSV byte-identical to an unsharded run.
    auto& quarantined = report.quarantined;
    for (auto it = quarantined.begin(); it != quarantined.end();) {
      if (merged.value().payload(it->cell) != nullptr) {
        elog.event("absolve").u64("cell", it->cell);
        report.absolved.push_back(it->cell);
        completed.insert(it->cell);
        it = quarantined.erase(it);
      } else {
        ++it;
      }
    }
    elog.event("merge_saved")
        .u64("cells", merged.value().completedCells())
        .str("path", options.checkpointBase);
    if (const core::Status s =
            merged.value().saveTo(options.checkpointBase);
        !s.isOk()) {
      std::fprintf(stderr, "warning: shard merge save failed: %s\n",
                   s.toString().c_str());
    }
  } else if (failure.isOk()) {
    // No snapshot anywhere usually means the campaign is tiny enough
    // that workers finished without autosaving — finish() always saves,
    // so this is rare. The final in-process pass recomputes; only byte
    // identity with a *crashy* run is at risk, correctness is not.
    std::fprintf(stderr, "warning: shard merge produced nothing: %s\n",
                 merged.status().toString().c_str());
  }

  report.cellsDone = completed.size();
  {
    auto done = elog.event("supervisor_done");
    done.u64("cells_done", report.cellsDone)
        .u64("restarts", report.restarts)
        .u64("quarantined", report.quarantined.size())
        .u64("absolved", report.absolved.size());
    if (!failure.isOk()) done.str("failure", failure.toString());
  }
  if (!failure.isOk()) return failure;
  return report;
}

#else  // _WIN32

core::StatusOr<ShardReport> runShardSupervisor(
    const ShardSupervisorOptions&) {
  return core::Status::internal(
      "sharded campaign supervision is POSIX-only");
}

#endif

}  // namespace oisa::experiments
