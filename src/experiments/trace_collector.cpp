#include "experiments/trace_collector.h"

#include "core/isa_adder.h"
#include "timing/event_sim.h"

namespace oisa::experiments {

predict::Trace collectTrace(const circuits::SynthesizedDesign& design,
                            double periodNs, Workload& workload,
                            std::uint64_t cycles) {
  const int width = design.config.width;
  const core::IsaAdder behavioral(design.config);
  timing::ClockedSampler sampler(design.netlist, design.delays, periodNs);

  // Reusable input/output buffers: the per-cycle loop performs no heap
  // allocation (trace growth aside), keeping the wheel engine's event
  // processing the only per-cycle cost.
  std::vector<std::uint8_t> inputs;
  std::vector<std::uint8_t> outputs;

  const Stimulus reset = workload.next();
  circuits::packOperandsInto(reset.a, reset.b, reset.carryIn, width, inputs);
  sampler.initialize(inputs);

  predict::Trace trace;
  trace.reserve(cycles);
  for (std::uint64_t t = 0; t < cycles; ++t) {
    const Stimulus stim = workload.next();
    circuits::packOperandsInto(stim.a, stim.b, stim.carryIn, width, inputs);
    sampler.stepInto(inputs, outputs);

    predict::TraceRecord rec;
    rec.a = stim.a;
    rec.b = stim.b;
    rec.carryIn = stim.carryIn;
    const core::IsaSum diamond =
        behavioral.exactAdd(stim.a, stim.b, stim.carryIn);
    rec.diamond = diamond.sum;
    rec.diamondCout = diamond.carryOut;
    const core::IsaSum gold = behavioral.add(stim.a, stim.b, stim.carryIn);
    rec.gold = gold.sum;
    rec.goldCout = gold.carryOut;
    rec.silver = circuits::unpackSum(outputs, width);
    rec.silverCout = circuits::unpackCarryOut(outputs, width);
    trace.push_back(rec);
  }
  return trace;
}

}  // namespace oisa::experiments
