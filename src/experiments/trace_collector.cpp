#include "experiments/trace_collector.h"

#include <algorithm>
#include <array>
#include <stdexcept>

#include "circuits/isa_netlist.h"
#include "netlist/bitops.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "timing/event_sim.h"
#include "timing/sta.h"

namespace oisa::experiments {

TraceCollector::TraceCollector(const circuits::SynthesizedDesign& design,
                               double periodNs, std::size_t maxLanes)
    : design_(design),
      behavioral_(design.config),
      compiled_(netlist::CompiledNetlist::compile(design.netlist)),
      sampler_(timing::makeLaneSampler(compiled_, design.delays, periodNs)),
      periodNs_(periodNs),
      periodPs_(sampler_->periodPs()),
      maxLanes_(std::min<std::size_t>(
          std::max<std::size_t>(maxLanes == 0 ? sampler_->lanes() : maxLanes,
                                1),
          sampler_->lanes())) {
  // Warm-up bound: a latched output depends on primary-input values within
  // one maximum output path delay D before its edge. With settle + W
  // replayed cycles ahead of a chunk, all input samples a recorded cycle
  // can reach are reproduced exactly iff (W + 2) * period > D. The STA
  // critical delay bounds D (per-gate quantization floors); +1 ps absorbs
  // double-summation noise in the ns-domain STA.
  const timing::TimePs d =
      timing::quantizeSpanPs(
          timing::criticalDelayNs(design.netlist, design.delays)) +
      1;
  while ((static_cast<timing::TimePs>(warmUp_) + 2) * periodPs_ <= d) {
    ++warmUp_;
  }
}

std::size_t TraceCollector::lanesFor(std::uint64_t cycles) const noexcept {
  // Every chunk must hold at least warm-up + 1 cycles so its settle vector
  // exists inside the stream; degenerate runs collapse to fewer lanes.
  const auto perLane = static_cast<std::uint64_t>(warmUp_) + 1;
  const std::uint64_t lanes = cycles / perLane;
  return static_cast<std::size_t>(
      std::clamp<std::uint64_t>(lanes, 1, maxLanes_));
}

predict::Trace TraceCollector::collect(Workload& workload,
                                       std::uint64_t cycles) {
  // Materialize the stream once: stimuli[0] is the settled reset vector,
  // stimuli[t + 1] drives recorded cycle t — the exact draw sequence of
  // the sequential collector, so workload state evolves identically.
  std::vector<Stimulus> stimuli(cycles + 1);
  for (auto& s : stimuli) s = workload.next();

  const int width = design_.config.width;
  predict::Trace trace(cycles);
  for (std::uint64_t t = 0; t < cycles; ++t) {
    const Stimulus& stim = stimuli[t + 1];
    predict::TraceRecord& rec = trace[t];
    rec.a = stim.a;
    rec.b = stim.b;
    rec.carryIn = stim.carryIn;
    const core::IsaSum diamond =
        behavioral_.exactAdd(stim.a, stim.b, stim.carryIn);
    rec.diamond = diamond.sum;
    rec.diamondCout = diamond.carryOut;
    const core::IsaSum gold = behavioral_.add(stim.a, stim.b, stim.carryIn);
    rec.gold = gold.sum;
    rec.goldCout = gold.carryOut;
  }
  if (cycles == 0) return trace;

  // The lane path needs the adder port convention (2W+1 inputs, W+1
  // outputs) to fit one 64x64 output transpose per sweep; anything else —
  // and explicit --lanes=1 style requests — takes the scalar loop.
  const std::size_t lanes = lanesFor(cycles);
  const bool adderPorts =
      width <= 63 &&
      compiled_->inputNets().size() ==
          static_cast<std::size_t>(2 * width + 1) &&
      compiled_->outputNets().size() == static_cast<std::size_t>(width + 1);
  // Engine counters are drained here, at the collect boundary — one span
  // and two counter adds per collect, never inside the per-cycle or
  // per-word loops (the instrumentation-cost contract micro_obs gates).
  const obs::ObsSpan span("trace.collect", "sim", "cycles", cycles);
  static obs::Counter& eventsCommitted = obs::counter("sim.events_committed");
  static obs::Counter& laneTransitions = obs::counter("sim.lane_transitions");
  static obs::Counter& collects = obs::counter("sim.collects");
  const std::uint64_t events0 = sampler_->simulator().eventsProcessed();
  const std::uint64_t lanes0 = sampler_->simulator().laneTransitionsCommitted();
  if (lanes <= 1 || !adderPorts) {
    fillSilverScalar(stimuli, trace);
  } else {
    fillSilverLane(stimuli, trace, lanes);
  }
  collects.add();
  eventsCommitted.add(sampler_->simulator().eventsProcessed() - events0);
  laneTransitions.add(sampler_->simulator().laneTransitionsCommitted() -
                      lanes0);
  return trace;
}

void TraceCollector::fillSilverScalar(std::span<const Stimulus> stimuli,
                                      predict::Trace& trace) {
  const int width = design_.config.width;
  timing::TimedSimulator sim(compiled_, design_.delays);
  std::vector<std::uint8_t> inputs;
  std::vector<std::uint8_t> outputs;
  circuits::packOperandsInto(stimuli[0].a, stimuli[0].b, stimuli[0].carryIn,
                             width, inputs);
  sim.applyInputs(inputs);
  (void)sim.settlePs();
  for (std::size_t t = 0; t < trace.size(); ++t) {
    const Stimulus& stim = stimuli[t + 1];
    circuits::packOperandsInto(stim.a, stim.b, stim.carryIn, width, inputs);
    sim.applyInputs(inputs);
    sim.advancePs(periodPs_);
    sim.sampleOutputsInto(outputs);
    trace[t].silver = circuits::unpackSum(outputs, width);
    trace[t].silverCout = circuits::unpackCarryOut(outputs, width);
  }
  // The scalar path's wheel engine is local to this fill; credit its
  // event total to the same counter the lane path feeds.
  static obs::Counter& eventsCommitted = obs::counter("sim.events_committed");
  eventsCommitted.add(sim.eventsProcessed());
}

void TraceCollector::fillSilverLane(std::span<const Stimulus> stimuli,
                                    predict::Trace& trace,
                                    std::size_t lanes) {
  const std::size_t kWords = sampler_->wordsPerNet();
  const auto width = static_cast<std::size_t>(design_.config.width);
  const std::size_t n = trace.size();
  const auto wu = static_cast<std::size_t>(warmUp_);
  const std::uint64_t sumMask = (std::uint64_t{1} << width) - 1;

  // Contiguous chunks, sizes differing by at most one. Lane L replays
  // stimulus indices settle(L) .. start(L) + len(L): a settle on the
  // vector ahead of its warm-up window, wu discarded cycles, then its
  // recorded range. Lanes with shorter schedules idle (inputs frozen,
  // settled, zero events) at the *start*, so every lane finishes on the
  // final sweep and the per-sweep bookkeeping stays uniform. The same
  // argument covers every lane width: each record's value depends only on
  // its own chunk's replay, so the chunk count (64 or 512) never shows up
  // in the trace — only in the wall time.
  const std::size_t base = n / lanes;
  const std::size_t rem = n % lanes;
  std::vector<std::size_t> start(lanes);  // first recorded cycle index
  std::vector<std::size_t> len(lanes);
  std::vector<std::size_t> warm(lanes);   // per-lane warm-up (clamped)
  std::size_t steps = 0;                  // sweeps needed (max over lanes)
  for (std::size_t L = 0, c = 0; L < lanes; ++L) {
    start[L] = c;
    len[L] = base + (L < rem ? 1 : 0);
    c += len[L];
    warm[L] = std::min(wu, start[L]);
    steps = std::max(steps, warm[L] + len[L]);
  }
  std::vector<std::size_t> idle(lanes);
  for (std::size_t L = 0; L < lanes; ++L) {
    idle[L] = steps - warm[L] - len[L];
  }

  // Per-lane operand state (held constant while a lane idles) and the
  // lane-major input assembly: one 64x64 transpose per operand per
  // 64-lane sub-block per sweep turns the row stimuli into the
  // per-primary-input words the engine consumes (sub-word j of input i
  // carries lanes [64j, 64j + 64)).
  std::vector<std::uint64_t> curA(sampler_->lanes(), 0);
  std::vector<std::uint64_t> curB(sampler_->lanes(), 0);
  std::vector<std::uint64_t> cinWords(kWords, 0);
  std::array<std::uint64_t, 64> aM{};
  std::array<std::uint64_t, 64> bM{};
  std::array<std::uint64_t, 64> outM{};
  const std::size_t subBlocks = (lanes + 63) / 64;
  std::vector<std::uint64_t> inWords((2 * width + 1) * kWords, 0);
  std::vector<std::uint64_t> outWords;
  const auto assembleInputs = [&] {
    for (std::size_t sb = 0; sb < subBlocks; ++sb) {
      std::copy_n(curA.begin() + static_cast<std::ptrdiff_t>(sb * 64), 64,
                  aM.begin());
      std::copy_n(curB.begin() + static_cast<std::ptrdiff_t>(sb * 64), 64,
                  bM.begin());
      netlist::transpose64(aM);
      netlist::transpose64(bM);
      for (std::size_t i = 0; i < width; ++i) {
        inWords[i * kWords + sb] = aM[i];
        inWords[(width + i) * kWords + sb] = bM[i];
      }
      inWords[2 * width * kWords + sb] = cinWords[sb];
    }
  };
  const auto setLane = [&](std::size_t L, const Stimulus& s) {
    curA[L] = s.a;
    curB[L] = s.b;
    const std::uint64_t bit = std::uint64_t{1} << (L % 64);
    std::uint64_t& w = cinWords[L / 64];
    w = s.carryIn ? (w | bit) : (w & ~bit);
  };

  sampler_->simulator().reset();
  for (std::size_t L = 0; L < lanes; ++L) {
    setLane(L, stimuli[start[L] - warm[L]]);  // chunk's settle vector
  }
  assembleInputs();
  sampler_->initialize(inWords);

  for (std::size_t j = 0; j < steps; ++j) {
    for (std::size_t L = 0; L < lanes; ++L) {
      if (j >= idle[L]) {
        setLane(L, stimuli[start[L] - warm[L] + 1 + (j - idle[L])]);
      }
    }
    assembleInputs();
    sampler_->stepInto(inWords, outWords);
    // Output words are lane-major (sub-word sb of word o = output o
    // across lanes [64sb, 64sb + 64)); one transpose per sub-block yields
    // each lane's packed output value in its own row.
    for (std::size_t sb = 0; sb < subBlocks; ++sb) {
      for (std::size_t o = 0; o <= width; ++o) {
        outM[o] = outWords[o * kWords + sb];
      }
      std::fill(outM.begin() + static_cast<std::ptrdiff_t>(width + 1),
                outM.end(), 0);
      netlist::transpose64(outM);
      const std::size_t laneEnd = std::min<std::size_t>(lanes - sb * 64, 64);
      for (std::size_t l = 0; l < laneEnd; ++l) {
        const std::size_t L = sb * 64 + l;
        if (j < idle[L] + warm[L]) continue;  // idling or warming up
        const std::size_t rec = start[L] + (j - idle[L] - warm[L]);
        trace[rec].silver = outM[l] & sumMask;
        trace[rec].silverCout = ((outM[l] >> width) & 1u) != 0;
      }
    }
  }
}

CollectedTrace TraceCollector::collectPacked(
    Workload& workload, std::uint64_t cycles,
    const predict::FeatureExtractor& extractor) {
  if (extractor.width() != design_.config.width) {
    throw std::invalid_argument(
        "TraceCollector::collectPacked: extractor width mismatch");
  }
  CollectedTrace out;
  out.trace = collect(workload, cycles);
  out.packed = extractor.packTrace(out.trace);
  return out;
}

predict::Trace collectTrace(const circuits::SynthesizedDesign& design,
                            double periodNs, Workload& workload,
                            std::uint64_t cycles) {
  TraceCollector collector(design, periodNs);
  return collector.collect(workload, cycles);
}

predict::Trace collectTraceScalar(const circuits::SynthesizedDesign& design,
                                  double periodNs, Workload& workload,
                                  std::uint64_t cycles) {
  const int width = design.config.width;
  const core::IsaAdder behavioral(design.config);
  timing::ClockedSampler sampler(design.netlist, design.delays, periodNs);

  // Reusable input/output buffers: the per-cycle loop performs no heap
  // allocation (trace growth aside), keeping the wheel engine's event
  // processing the only per-cycle cost.
  std::vector<std::uint8_t> inputs;
  std::vector<std::uint8_t> outputs;

  const Stimulus reset = workload.next();
  circuits::packOperandsInto(reset.a, reset.b, reset.carryIn, width, inputs);
  sampler.initialize(inputs);

  predict::Trace trace;
  trace.reserve(cycles);
  for (std::uint64_t t = 0; t < cycles; ++t) {
    const Stimulus stim = workload.next();
    circuits::packOperandsInto(stim.a, stim.b, stim.carryIn, width, inputs);
    sampler.stepInto(inputs, outputs);

    predict::TraceRecord rec;
    rec.a = stim.a;
    rec.b = stim.b;
    rec.carryIn = stim.carryIn;
    const core::IsaSum diamond =
        behavioral.exactAdd(stim.a, stim.b, stim.carryIn);
    rec.diamond = diamond.sum;
    rec.diamondCout = diamond.carryOut;
    const core::IsaSum gold = behavioral.add(stim.a, stim.b, stim.carryIn);
    rec.gold = gold.sum;
    rec.goldCout = gold.carryOut;
    rec.silver = circuits::unpackSum(outputs, width);
    rec.silverCout = circuits::unpackCarryOut(outputs, width);
    trace.push_back(rec);
  }
  return trace;
}

}  // namespace oisa::experiments
