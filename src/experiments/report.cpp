#include "experiments/report.h"

#include <algorithm>
#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace oisa::experiments {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void Table::addRow(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("Table::addRow: wrong cell count");
  }
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto printRow = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(widths[c]) + 2)
         << cells[c];
    }
    os << '\n';
  };
  printRow(headers_);
  std::string rule;
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    rule += std::string(widths[c], '-') + "  ";
  }
  os << rule << '\n';
  for (const auto& row : rows_) printRow(row);
}

void Table::writeCsv(std::ostream& os) const {
  auto writeRow = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c) os << ',';
      os << cells[c];
    }
    os << '\n';
  };
  writeRow(headers_);
  for (const auto& row : rows_) writeRow(row);
}

void Table::writeCsvFile(const std::string& path) const {
  std::ofstream os(path);
  if (!os) {
    throw std::runtime_error("Table::writeCsvFile: cannot open " + path);
  }
  writeCsv(os);
}

std::string formatSci(double v, int precision) {
  std::ostringstream os;
  os << std::scientific << std::setprecision(precision) << v;
  return os.str();
}

std::string formatFixed(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

double displayFloor(double v, double floor) noexcept {
  return v < floor ? floor : v;
}

}  // namespace oisa::experiments
