#include "experiments/grid_scheduler.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "obs/metrics.h"
#include "obs/span.h"

namespace oisa::experiments {

namespace {

std::int64_t monotonicNowNs() noexcept {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::string buildGridErrorMessage(const std::vector<CellFailure>& failures,
                                  bool cancelled, std::size_t cellsNotRun) {
  std::string msg = "GridScheduler: ";
  if (!failures.empty()) {
    msg += std::to_string(failures.size()) + " cell(s) failed";
    msg += " (first: cell " + std::to_string(failures.front().cell) + ": " +
           failures.front().status.toString() + ")";
  }
  if (cancelled) {
    if (!failures.empty()) msg += "; ";
    msg += "cancelled with " + std::to_string(cellsNotRun) +
           " cell(s) never claimed";
  }
  return msg;
}

/// Retry unless the taxonomy says the failure cannot be transient.
bool isRetryable(const core::Status& status) noexcept {
  return status.code() != core::StatusCode::InvalidInput &&
         status.code() != core::StatusCode::Deadline;
}

}  // namespace

GridError::GridError(std::vector<CellFailure> failures, bool cancelled,
                     std::size_t cellsNotRun)
    : std::runtime_error(
          buildGridErrorMessage(failures, cancelled, cellsNotRun)),
      failures_(std::move(failures)),
      cancelled_(cancelled),
      cellsNotRun_(cellsNotRun) {}

GridScheduler::GridScheduler(unsigned threads) {
  unsigned n = threads == 0 ? std::thread::hardware_concurrency() : threads;
  if (n == 0) n = 1;
  threadCount_ = n;
  workers_.reserve(n - 1);
  for (unsigned i = 0; i + 1 < n; ++i) {
    workers_.emplace_back([this] { workerLoop(); });
  }
}

GridScheduler::~GridScheduler() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  wake_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void GridScheduler::executeCell(std::size_t cell) {
  static obs::Counter& cellsCompleted = obs::counter("grid.cells_completed");
  static obs::Counter& cellRetries = obs::counter("grid.retries");
  static obs::Counter& cellFailures = obs::counter("grid.cell_failures");
  const obs::ObsSpan span("cell", "grid", "cell", cell);
  const RunPolicy& policy = *policy_;
  core::Status status;
  unsigned attempt = 0;
  for (;;) {
    ++attempt;
    try {
      (*task_)(cell);
      cellsCompleted.add();
      return;
    } catch (const core::StatusError& e) {
      status = e.status();
    } catch (const GridError& e) {
      status = core::Status::internal(e.what());
    } catch (const std::exception& e) {
      status = core::Status::internal(e.what());
    } catch (...) {
      status = core::Status::internal("unknown exception");
    }
    const bool cancelled =
        policy.cancel != nullptr && policy.cancel->cancelled();
    if (attempt >= policy.maxAttempts || !isRetryable(status) || cancelled) {
      break;
    }
    cellRetries.add();
    if (policy.retryCounter != nullptr) {
      policy.retryCounter->fetch_add(1, std::memory_order_relaxed);
    }
    if (policy.retryBackoff.count() > 0) {
      // Exponential backoff, capped at 2^10 periods so a misconfigured
      // attempt count cannot sleep for hours.
      const unsigned shift = std::min(attempt - 1, 10u);
      std::this_thread::sleep_for(policy.retryBackoff * (1u << shift));
    }
  }
  cellFailures.add();
  const std::lock_guard<std::mutex> lock(mutex_);
  failures_.push_back(CellFailure{cell, std::move(status), attempt});
}

void GridScheduler::drain() {
  const RunPolicy& policy = *policy_;
  for (;;) {
    // Prompt cancellation: the token is re-checked before *every* claim,
    // so no worker picks up new work after it fires (cells already
    // running finish — cells are the preemption granularity). Checking
    // before the claim keeps next_ an exact count of claimed-and-run
    // cells on the cancellation path.
    if (stopClaims_.load(std::memory_order_relaxed)) break;
    if (policy.cancel != nullptr && policy.cancel->cancelled()) {
      stopClaims_.store(true, std::memory_order_relaxed);
      break;
    }
    const std::size_t i = next_.fetch_add(1);
    if (i >= count_) break;
    // Queue wait: how long this cell sat unclaimed behind the cells ahead
    // of it. Per claim, not per word — cells are whole simulation runs.
    static obs::Histogram& queueWait = obs::histogram("grid.queue_wait_us");
    const std::int64_t start = runStartNs_.load(std::memory_order_relaxed);
    queueWait.record(
        static_cast<std::uint64_t>(
            std::max<std::int64_t>(0, monotonicNowNs() - start)) /
        1000);
    executeCell(i);
  }
}

void GridScheduler::workerLoop() {
  std::uint64_t seen = 0;
  for (;;) {
    std::unique_lock<std::mutex> lock(mutex_);
    wake_.wait(lock, [&] { return stop_ || generation_ != seen; });
    if (stop_) return;
    seen = generation_;
    lock.unlock();
    drain();
    lock.lock();
    if (--busy_ == 0) done_.notify_one();
  }
}

void GridScheduler::run(std::size_t count,
                        const std::function<void(std::size_t)>& task,
                        const RunPolicy& policy) {
  if (count == 0) return;
  runStartNs_.store(monotonicNowNs(), std::memory_order_relaxed);
  if (workers_.empty()) {
    // Serial degradation: same claim loop and failure aggregation, no
    // synchronization overhead beyond the shared code path.
    task_ = &task;
    policy_ = &policy;
    count_ = count;
    next_.store(0);
    stopClaims_.store(false, std::memory_order_relaxed);
    failures_.clear();
    drain();
  } else {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      task_ = &task;
      policy_ = &policy;
      count_ = count;
      next_.store(0);
      stopClaims_.store(false, std::memory_order_relaxed);
      failures_.clear();
      busy_ = static_cast<unsigned>(workers_.size());
      ++generation_;
    }
    wake_.notify_all();
    drain();  // the calling thread claims cells too
    std::unique_lock<std::mutex> lock(mutex_);
    done_.wait(lock, [&] { return busy_ == 0; });
  }
  task_ = nullptr;
  policy_ = nullptr;
  const bool cancelled = stopClaims_.load(std::memory_order_relaxed);
  const std::size_t claimed = std::min(next_.load(), count);
  if (!failures_.empty() || cancelled) {
    std::vector<CellFailure> failures = std::move(failures_);
    failures_.clear();
    // Deterministic report order regardless of which worker lost the
    // race to the failures vector.
    std::sort(failures.begin(), failures.end(),
              [](const CellFailure& a, const CellFailure& b) {
                return a.cell < b.cell;
              });
    throw GridError(std::move(failures), cancelled,
                    cancelled ? count - claimed : 0);
  }
}

}  // namespace oisa::experiments
