#include "experiments/grid_scheduler.h"

#include <algorithm>

namespace oisa::experiments {

GridScheduler::GridScheduler(unsigned threads) {
  unsigned n = threads == 0 ? std::thread::hardware_concurrency() : threads;
  if (n == 0) n = 1;
  threadCount_ = n;
  workers_.reserve(n - 1);
  for (unsigned i = 0; i + 1 < n; ++i) {
    workers_.emplace_back([this] { workerLoop(); });
  }
}

GridScheduler::~GridScheduler() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  wake_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void GridScheduler::drain() {
  for (std::size_t i = next_.fetch_add(1); i < count_;
       i = next_.fetch_add(1)) {
    try {
      (*task_)(i);
    } catch (...) {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (!error_) error_ = std::current_exception();
      next_.store(count_);  // cancel unclaimed cells
    }
  }
}

void GridScheduler::workerLoop() {
  std::uint64_t seen = 0;
  for (;;) {
    std::unique_lock<std::mutex> lock(mutex_);
    wake_.wait(lock, [&] { return stop_ || generation_ != seen; });
    if (stop_) return;
    seen = generation_;
    lock.unlock();
    drain();
    lock.lock();
    if (--busy_ == 0) done_.notify_one();
  }
}

void GridScheduler::run(std::size_t count,
                        const std::function<void(std::size_t)>& task) {
  if (count == 0) return;
  if (workers_.empty()) {
    // Serial degradation: no synchronization, exceptions propagate as-is.
    for (std::size_t i = 0; i < count; ++i) task(i);
    return;
  }
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    task_ = &task;
    count_ = count;
    next_.store(0);
    busy_ = static_cast<unsigned>(workers_.size());
    error_ = nullptr;
    ++generation_;
  }
  wake_.notify_all();
  drain();  // the calling thread claims cells too
  std::unique_lock<std::mutex> lock(mutex_);
  done_.wait(lock, [&] { return busy_ == 0; });
  task_ = nullptr;
  if (error_) {
    std::exception_ptr e = error_;
    error_ = nullptr;
    std::rethrow_exception(e);
  }
}

}  // namespace oisa::experiments
