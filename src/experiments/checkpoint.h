// oisa_experiments: crash-safe, resumable campaign checkpoints.
//
// A characterization campaign is a grid of cells, each a *pure function*
// of (inputs, seed) — that is the GridScheduler determinism contract.
// Purity makes resumption trivial in principle: persist each completed
// cell's result, and a restarted campaign replays the missing cells and
// copies the rest, producing byte-identical output (doubles are stored
// as raw bit patterns, so not even a ULP moves).
//
// The file format is a single versioned binary snapshot:
//
//   "OISACKPT"  8-byte magic
//   u32 version (currently 1)
//   u64 campaign fingerprint  — hash of everything the cells depend on
//   u64 cellCount             — grid size (shape check on resume)
//   u64 recordCount
//   recordCount × { u64 cell, u64 payloadSize, payload bytes }
//   u32 CRC-32 of every preceding byte
//
// all little-endian. Writes are atomic: serialize to memory, write to
// `path + ".tmp"`, fsync, rename over `path`, fsync the directory — a
// SIGKILL at any instant leaves either the previous snapshot or the new
// one, never a torn file. The CRC catches the remaining ways a snapshot
// can rot (partial copies, bit rot, truncation); loaders report
// StatusCode::Corruption and campaigns fall back to recomputing.
//
// Fault-injection sites (core/fault_inject.h): "checkpoint.write"
// simulates a torn write (half the bytes land in the final path,
// bypassing the tmp+rename dance), "checkpoint.read" a failing disk
// read, "file.open" a failing open — the robustness tests drive every
// recovery path through them.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/status.h"

namespace oisa::experiments {

// --- cell payload codec ----------------------------------------------

/// Appends little-endian fields to a byte string. Doubles are stored as
/// their IEEE-754 bit pattern so round-trips are byte-exact.
class PayloadWriter {
 public:
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void f64(double v);
  void str(std::string_view v);  ///< length-prefixed

  [[nodiscard]] std::string take() { return std::move(bytes_); }

 private:
  std::string bytes_;
};

/// Mirror reader with a sticky error: any out-of-bounds or malformed
/// read trips it, reads after that return zeros, and the caller checks
/// `ok() && atEnd()` once at the end — a truncated or oversized payload
/// can never silently produce a half-decoded row.
class PayloadReader {
 public:
  explicit PayloadReader(std::string_view bytes) : bytes_(bytes) {}

  [[nodiscard]] std::uint32_t u32();
  [[nodiscard]] std::uint64_t u64();
  [[nodiscard]] double f64();
  [[nodiscard]] std::string str();

  [[nodiscard]] bool ok() const noexcept { return ok_; }
  [[nodiscard]] bool atEnd() const noexcept { return pos_ == bytes_.size(); }

 private:
  bool take(std::size_t n, const char** out);

  std::string_view bytes_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

// --- campaign fingerprint --------------------------------------------

/// FNV-1a accumulator over everything a campaign's cells are a function
/// of: pipeline name, design identities, grid axes, seeds, workload and
/// model options. Two campaigns with the same fingerprint compute the
/// same cells, so their checkpoints are interchangeable; anything else
/// must not resume (the loader rejects mismatches).
class CampaignFingerprint {
 public:
  explicit CampaignFingerprint(std::string_view pipeline) { mix(pipeline); }

  CampaignFingerprint& mix(std::string_view text);
  CampaignFingerprint& mix(std::uint64_t v);
  CampaignFingerprint& mix(double v);  ///< bit pattern, not value rounding

  [[nodiscard]] std::uint64_t digest() const noexcept { return hash_; }

 private:
  std::uint64_t hash_ = 0xcbf29ce484222325ull;  // FNV offset basis
};

// --- snapshot file ----------------------------------------------------

/// In-memory image of one checkpoint file: completed cell index →
/// serialized row payload, plus the campaign identity it belongs to.
class GridCheckpoint {
 public:
  GridCheckpoint() = default;
  GridCheckpoint(std::uint64_t fingerprint, std::uint64_t cellCount)
      : fingerprint_(fingerprint), cellCount_(cellCount) {}

  [[nodiscard]] std::uint64_t fingerprint() const noexcept {
    return fingerprint_;
  }
  [[nodiscard]] std::uint64_t cellCount() const noexcept {
    return cellCount_;
  }
  [[nodiscard]] std::size_t completedCells() const noexcept {
    return cells_.size();
  }
  [[nodiscard]] const std::string* payload(std::uint64_t cell) const;

  /// Records (or replaces) a completed cell's payload.
  void record(std::uint64_t cell, std::string payload);

  /// Completed cell indices, ascending.
  [[nodiscard]] std::vector<std::uint64_t> cellIndices() const;

  /// Adopts every cell payload of `other`; `other` wins conflicts. The
  /// shard-merge building block — callers are responsible for calling it
  /// in a fixed order (mergeSnapshots does).
  void mergeFrom(const GridCheckpoint& other);

  /// Atomically writes the snapshot (tmp + fsync + rename).
  [[nodiscard]] core::Status saveTo(const std::string& path) const;

  /// Loads and integrity-checks a snapshot. IoError when the file cannot
  /// be opened/read, Corruption when magic/version/CRC/structure checks
  /// fail.
  [[nodiscard]] static core::StatusOr<GridCheckpoint> loadFrom(
      const std::string& path);

 private:
  std::uint64_t fingerprint_ = 0;
  std::uint64_t cellCount_ = 0;
  std::map<std::uint64_t, std::string> cells_;  ///< ordered for stable files
};

/// Loads the snapshot files in the given order and unions their cells
/// (later files win conflicts — shard slices are disjoint, so in
/// practice there are none). The fixed path order is what makes the
/// merged snapshot, and therefore the final CSV, byte-stable across
/// supervision runs. Files that are missing or fail integrity checks
/// are skipped with a stderr warning — the campaign recomputes their
/// cells, which is always safe. Corruption when the loadable snapshots
/// disagree on fingerprint or grid shape; IoError when `paths` is
/// non-empty but no snapshot could be loaded at all.
[[nodiscard]] core::StatusOr<GridCheckpoint> mergeSnapshots(
    const std::vector<std::string>& paths);

// --- campaign-facing wrapper ------------------------------------------

/// CLI-facing checkpoint controls (`--checkpoint=path --resume
/// --checkpoint-every=N`).
struct CheckpointOptions {
  std::string path;  ///< empty = checkpointing disabled
  /// Adopt an existing snapshot at `path` before running. A missing file
  /// starts fresh (so crash-restart loops can always pass --resume); a
  /// corrupt, foreign or wrong-shape snapshot is *ignored* with a stderr
  /// warning and every cell recomputes — resuming it would break the
  /// byte-identity guarantee.
  bool resume = false;
  std::uint64_t everyCells = 8;  ///< autosave after this many new cells
};

/// Thread-safe campaign adapter: resume-loads on construction, streams
/// completed cells in, autosaves every N new cells, and persists partial
/// results when the grid dies (the pipelines call finish() on the error
/// path too).
class CampaignCheckpoint {
 public:
  CampaignCheckpoint(const CheckpointOptions& options,
                     std::uint64_t fingerprint, std::uint64_t cellCount);

  [[nodiscard]] bool enabled() const noexcept { return !options_.path.empty(); }
  /// Cells adopted from the resumed snapshot.
  [[nodiscard]] std::size_t resumedCells() const noexcept { return resumed_; }

  /// The resumed payload for `cell`, when present.
  [[nodiscard]] std::optional<std::string> tryLoad(std::uint64_t cell) const;

  /// Records a freshly computed cell; autosaves per CheckpointOptions.
  /// Save failures warn on stderr but never kill the campaign — losing
  /// checkpoint coverage is strictly better than losing the run.
  void commit(std::uint64_t cell, std::string payload);

  /// Final save (call on success *and* on the error path so partial
  /// results survive). Returns the save status; also warns on stderr.
  core::Status finish();

 private:
  CheckpointOptions options_;
  mutable std::mutex mutex_;
  GridCheckpoint snapshot_;
  std::size_t resumed_ = 0;
  std::uint64_t sinceSave_ = 0;
};

}  // namespace oisa::experiments
