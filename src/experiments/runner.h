// oisa_experiments: end-to-end experiment pipelines for the paper's
// evaluation section. One function per figure; bench binaries are thin
// wrappers around these so tests can exercise the same code paths.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include <functional>

#include "circuits/synthesis.h"
#include "core/error_model.h"
#include "experiments/checkpoint.h"
#include "experiments/shard.h"
#include "experiments/workload.h"
#include "predict/bit_predictor.h"

namespace oisa::experiments {

/// Shared run controls.
struct RunOptions {
  std::uint64_t cycles = 20000;     ///< characterization cycles per run
  std::uint64_t seed = 42;
  std::string workload = "uniform";
  double signOffPeriodNs = 0.3;     ///< the paper's constraint
  /// Worker threads across (design, CPR) points; 0 = hardware concurrency.
  /// Results are bit-identical regardless of the thread count (each point
  /// owns its seeded workload and simulator).
  unsigned threads = 0;
  /// Crash-safety: when checkpoint.path is set, completed grid cells are
  /// snapshotted there (atomically, every checkpoint.everyCells cells)
  /// and checkpoint.resume skips cells the snapshot already holds —
  /// resumed campaigns are byte-identical to uninterrupted ones because
  /// every cell is a pure function of (inputs, seed).
  CheckpointOptions checkpoint;
  /// Per-cell tries (1 = no retry); transient failures (IoError, ...)
  /// are retried with exponential backoff, then aggregated in GridError.
  unsigned cellAttempts = 1;
  std::uint64_t retryBackoffMs = 100;  ///< base backoff between tries
  /// Wall-clock budget for the whole grid; 0 = unlimited. On expiry the
  /// sweep stops claiming cells and throws GridError (completed cells
  /// are already checkpointed when checkpointing is on).
  double deadlineSeconds = 0.0;
  /// Multi-process sharding (experiments/shard.h): this process computes
  /// only the cells its slice owns; quarantined cells are skipped (their
  /// output rows stay default-constructed). The default slice owns all.
  ShardSlice shard;
  /// Periodic single-line progress heartbeat on stderr (cells done/total,
  /// retries, ETA) — the --progress flag.
  bool progress = false;
  /// Non-owning; shard workers set this so the grid loop reports cell
  /// starts/completions upstream over the supervisor's heartbeat pipe.
  HeartbeatEmitter* heartbeat = nullptr;
};

/// One (design, CPR) row of the Fig. 9 study.
struct CombinationRow {
  std::string design;
  double cprPercent = 0.0;
  double periodNs = 0.0;
  // Relative-error RMS, the paper's headline metric (in fractional units;
  // multiply by 100 for the paper's % axis).
  double rmsRelStruct = 0.0;
  double rmsRelTiming = 0.0;
  double rmsRelJoint = 0.0;
  // Supporting numbers.
  double meanAbsJointArith = 0.0;
  double structErrorRate = 0.0;
  double timingErrorRate = 0.0;
  std::uint64_t cycles = 0;
};

/// Fig. 9: structural/timing/joint relative-error RMS per design per CPR.
[[nodiscard]] std::vector<CombinationRow> runErrorCombination(
    const std::vector<circuits::SynthesizedDesign>& designs,
    std::span<const double> cprPercents, const RunOptions& options);

/// One (design, CPR) row of the Fig. 7 / Fig. 8 studies.
struct PredictionRow {
  std::string design;
  double cprPercent = 0.0;
  double periodNs = 0.0;
  double abper = 0.0;
  double avpe = 0.0;
  std::uint64_t trainCycles = 0;
  std::uint64_t testCycles = 0;
};

/// Extra controls for the prediction study.
struct PredictionOptions {
  RunOptions run{};
  std::uint64_t trainCycles = 12000;
  std::uint64_t testCycles = 6000;
  predict::PredictorParams predictor{};
  /// When non-empty, each grid cell persists its trained bank as binary
  /// envelope v2 at "<modelOut>.<design>.cpr<cpr>.ffb" after fitting.
  std::string modelOut;
  /// When non-empty, each grid cell mmap-loads its bank from
  /// "<modelIn>.<design>.cpr<cpr>.ffb" instead of collecting a training
  /// trace and fitting — the evaluation rows are bit-identical to the
  /// trained run that wrote the banks (neither path is fingerprinted
  /// into checkpoints for exactly that reason).
  std::string modelIn;
};

/// Figs. 7-8: train the bit-level model per (design, CPR), evaluate ABPER
/// and AVPE on held-out cycles.
[[nodiscard]] std::vector<PredictionRow> runPredictionEvaluation(
    const std::vector<circuits::SynthesizedDesign>& designs,
    std::span<const double> cprPercents, const PredictionOptions& options);

/// Fig. 10: per-bit-position structural and timing error rates.
struct BitDistributionResult {
  std::string design;
  double cprPercent = 0.0;
  std::vector<double> structuralRate;  ///< index = bit position (cout last)
  std::vector<double> timingRate;
};

[[nodiscard]] BitDistributionResult runBitDistribution(
    const circuits::SynthesizedDesign& design, double cprPercent,
    const RunOptions& options);

/// One design row of the functional (zero-delay) structural-error scan.
struct FunctionalScanRow {
  std::string design;
  std::uint64_t samples = 0;
  double structErrorRate = 0.0;  ///< P(E_struct != 0), gate level
  double rmsRelStruct = 0.0;     ///< RMS of E_struct / y_diamond
  double meanStruct = 0.0;       ///< mean signed E_struct
  /// Netlist output == behavioral y_gold on every sample (golden-model
  /// cross-check riding along with the scan for free).
  bool matchesBehavioral = true;
};

/// Gate-level structural-error characterization with no timing involved:
/// drives each design's synthesized netlist with the workload through the
/// word-parallel BatchEvaluator, 64 stimuli per topological sweep. This is
/// the default engine for structural-only metrics — per-pattern netlist
/// evaluation is reserved for the timed (overclocked) pipelines above,
/// where event ordering matters.
[[nodiscard]] std::vector<FunctionalScanRow> runFunctionalErrorScan(
    const std::vector<circuits::SynthesizedDesign>& designs,
    const RunOptions& options);

/// Fans task(0..count-1) across a GridScheduler pool sized to the owned
/// cells, applying the RunOptions failure policy (retry/backoff,
/// deadline), shard-slice filtering, and progress/heartbeat monitoring.
/// Every campaign pipeline's grid loop goes through here, which is what
/// makes sharded and unsharded runs byte-identical: the only difference
/// is which cells the slice owns. Honors the OISA_ABORT_ON_CELL=<cell>
/// environment hook (deterministic poison-cell crash for quarantine
/// tests).
void runCampaignGrid(std::size_t count, const RunOptions& options,
                     const std::function<void(std::size_t)>& task);

}  // namespace oisa::experiments
