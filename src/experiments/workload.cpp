#include "experiments/workload.h"

#include <array>
#include <stdexcept>
#include <string>

#include "netlist/bitops.h"

namespace oisa::experiments {

namespace {
[[nodiscard]] constexpr std::uint64_t maskBits(int n) noexcept {
  if (n <= 0) return 0;
  if (n >= 64) return ~std::uint64_t{0};
  return (std::uint64_t{1} << n) - 1;
}
}  // namespace

UniformWorkload::UniformWorkload(int width, std::uint64_t seed)
    : rng_(seed), mask_(maskBits(width)) {}

Stimulus UniformWorkload::next() {
  Stimulus s;
  s.a = rng_() & mask_;
  s.b = rng_() & mask_;
  s.carryIn = false;  // the paper studies plain unsigned addition
  return s;
}

RandomWalkWorkload::RandomWalkWorkload(int width, int stepBits,
                                       std::uint64_t seed)
    : rng_(seed), mask_(maskBits(width)), stepMask_(maskBits(stepBits)) {
  a_ = rng_() & mask_;
  b_ = rng_() & mask_;
}

Stimulus RandomWalkWorkload::next() {
  const std::uint64_t stepA = rng_() & stepMask_;
  const std::uint64_t stepB = rng_() & stepMask_;
  // Signed steps: direction chosen by one extra random bit each.
  a_ = ((rng_() & 1u) ? a_ + stepA : a_ - stepA) & mask_;
  b_ = ((rng_() & 1u) ? b_ + stepB : b_ - stepB) & mask_;
  return Stimulus{a_, b_, false};
}

SparseToggleWorkload::SparseToggleWorkload(int width,
                                           double toggleProbability,
                                           std::uint64_t seed)
    : rng_(seed), width_(width), toggleProbability_(toggleProbability) {
  if (toggleProbability < 0.0 || toggleProbability > 1.0) {
    throw std::invalid_argument("SparseToggleWorkload: bad probability");
  }
  a_ = rng_() & maskBits(width);
  b_ = rng_() & maskBits(width);
}

Stimulus SparseToggleWorkload::next() {
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  for (int i = 0; i < width_; ++i) {
    if (coin(rng_) < toggleProbability_) a_ ^= std::uint64_t{1} << i;
    if (coin(rng_) < toggleProbability_) b_ ^= std::uint64_t{1} << i;
  }
  return Stimulus{a_, b_, false};
}

std::unique_ptr<Workload> makeWorkload(const std::string& kind, int width,
                                       std::uint64_t seed) {
  if (kind == "uniform") {
    return std::make_unique<UniformWorkload>(width, seed);
  }
  if (kind == "random-walk") {
    return std::make_unique<RandomWalkWorkload>(width, 8, seed);
  }
  if (kind == "sparse-toggle") {
    return std::make_unique<SparseToggleWorkload>(width, 0.05, seed);
  }
  throw std::invalid_argument("makeWorkload: unknown kind '" + kind + "'");
}

void packStimulusBlock(std::span<const Stimulus> stims, int width,
                       std::span<std::uint64_t> inputWords) {
  constexpr std::size_t kLanes = 64;
  if (stims.empty() || stims.size() > kLanes) {
    throw std::invalid_argument("packStimulusBlock: need 1..64 stimuli");
  }
  if (inputWords.size() != static_cast<std::size_t>(2 * width + 1)) {
    throw std::invalid_argument(
        "packStimulusBlock: expected " + std::to_string(2 * width + 1) +
        " input words (adder port convention), got " +
        std::to_string(inputWords.size()));
  }
  std::array<std::uint64_t, kLanes> aM{};
  std::array<std::uint64_t, kLanes> bM{};
  std::uint64_t cinWord = 0;
  for (std::size_t lane = 0; lane < kLanes; ++lane) {
    const Stimulus& s = stims[lane < stims.size() ? lane : 0];
    aM[lane] = s.a;
    bM[lane] = s.b;
    if (lane < stims.size() && s.carryIn) {
      cinWord |= std::uint64_t{1} << lane;
    }
  }
  // Lane-major packing: after the transpose, aM[i] holds operand bit i
  // across all lanes, i.e. the 64-lane word of primary input a_i.
  netlist::transpose64(aM);
  netlist::transpose64(bM);
  for (int i = 0; i < width; ++i) {
    inputWords[static_cast<std::size_t>(i)] = aM[static_cast<std::size_t>(i)];
    inputWords[static_cast<std::size_t>(width + i)] =
        bM[static_cast<std::size_t>(i)];
  }
  inputWords[static_cast<std::size_t>(2 * width)] = cinWord;
}

}  // namespace oisa::experiments
