// oisa_experiments: ASCII table and CSV reporting.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace oisa::experiments {

/// Minimal column-aligned table, printable as ASCII or CSV.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void addRow(std::vector<std::string> cells);

  /// Column-aligned ASCII rendering.
  void print(std::ostream& os) const;

  /// RFC-ish CSV (no quoting needed for our numeric content).
  void writeCsv(std::ostream& os) const;

  /// Writes the CSV to a file path; throws on I/O failure.
  void writeCsvFile(const std::string& path) const;

  [[nodiscard]] std::size_t rowCount() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Scientific notation with `precision` significant decimals (log-plot
/// friendly, like the paper's 10^-6..10^2 axes).
[[nodiscard]] std::string formatSci(double v, int precision = 3);

/// Fixed-point formatting.
[[nodiscard]] std::string formatFixed(double v, int precision = 4);

/// Clamps a value to the paper's display floor (10^-6 stands in for "no
/// error observed" on log axes, as in Figs. 7-8).
[[nodiscard]] double displayFloor(double v, double floor = 1e-6) noexcept;

}  // namespace oisa::experiments
