// oisa_predict: the paper's bit-level timing-error prediction model.
//
// One binary classifier per output bit (32 sum bits + carry-out for the
// 32-bit adders) predicts whether that bit is timing-erroneous at a given
// overclocked period, from {x[t], x[t-1], yRTL_n[t-1], yRTL_n[t]}. The
// model never emits arithmetic values directly: it predicts a timing-class
// vector (bit-flip positions) and deduces the predicted y_silver from
// y_gold (Sec. IV-B).
//
// The bank runs on the packed column-major substrate end to end: fit()
// extracts the shared operand/transition columns once per trace (only the
// two yRTL_n columns differ per bit) and trains every forest with the
// popcount CART trainer; evaluate() sweeps the test trace 64 cycles at a
// time through the lane-masked batched forest walk, so ABPER reduces to
// popcounts of prediction-vs-label words.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <span>
#include <vector>

#include "ml/random_forest.h"
#include "predict/features.h"
#include "predict/trace.h"

namespace oisa::predict {

/// Model family for the per-bit classifiers (ablation bench).
enum class ModelKind : std::uint8_t {
  RandomForest,  ///< the paper's choice
  DecisionTree,  ///< single CART tree
  Majority,      ///< constant baseline
};

/// Training controls.
struct PredictorParams {
  ModelKind model = ModelKind::RandomForest;
  ml::ForestParams forest{};   ///< used when model == RandomForest
  ml::TreeParams tree{};       ///< used when model == DecisionTree
  bool includeOutputBits = true;  ///< feature ablation switch
  std::uint64_t seed = 1;
};

/// Prediction for one cycle: flip mask over sum bits plus carry-out flip.
struct PredictedFlips {
  std::uint64_t sumFlips = 0;  ///< bit n set = sum bit n predicted erroneous
  bool coutFlip = false;

  [[nodiscard]] std::uint64_t predictedSilver(
      std::uint64_t gold) const noexcept {
    return gold ^ sumFlips;
  }
};

/// Evaluation result over a test trace.
struct PredictorEvaluation {
  double abper = 0.0;  ///< average bit-level prediction error rate (eq. 1)
  double avpe = 0.0;   ///< average value-level predictive error (eq. 4)
  std::uint64_t cycles = 0;
  std::uint64_t avpeSkipped = 0;  ///< cycles with real y_silver == 0
  /// Per-bit misprediction rates (LSB-first, carry-out last).
  std::vector<double> perBitErrorRate;
};

/// Per-output-bit timing-error classifier bank.
class BitLevelPredictor {
 public:
  /// `width` — adder width (output bits = width + 1 including carry-out).
  explicit BitLevelPredictor(int width, const PredictorParams& params = {});

  /// Trains every per-bit classifier on consecutive record pairs of the
  /// training trace (records 1..n-1 each paired with their predecessor).
  /// The trace is packed once; all width+1 per-bit datasets are views over
  /// the shared matrix.
  void fit(const Trace& trainTrace);

  /// Trains directly from pre-packed bit columns (the lane trace
  /// collector's native output — see experiments::TraceCollector::
  /// collectPacked), skipping the per-call packing pass. `packed` must
  /// have been produced by an extractor configured like this bank's
  /// (same width and output-bit ablation).
  void fit(const PackedTraceFeatures& packed);

  /// Predicts the timing-class vector for the cycle `current` given the
  /// preceding record. Allocation-free: one shared feature extraction per
  /// call, two patched bytes per bit.
  [[nodiscard]] PredictedFlips predictFlips(const TraceRecord& previous,
                                            const TraceRecord& current) const;

  /// Runs the model over a test trace and computes ABPER / AVPE via the
  /// 64-lane batched sweep (bit-identical to the per-cycle scalar path).
  [[nodiscard]] PredictorEvaluation evaluate(const Trace& testTrace) const;

  /// Like evaluate(testTrace) but consuming the trace's pre-packed
  /// columns (`packed` must be the packing of `testTrace` by an extractor
  /// configured like this bank's); the trace itself is only read for the
  /// value-level (AVPE) arithmetic.
  [[nodiscard]] PredictorEvaluation evaluate(
      const Trace& testTrace, const PackedTraceFeatures& packed) const;

  [[nodiscard]] int width() const noexcept { return extractor_.width(); }
  [[nodiscard]] const FeatureExtractor& extractor() const noexcept {
    return extractor_;
  }
  [[nodiscard]] bool trained() const noexcept { return trained_; }

  /// Aggregate feature importance across all per-bit models (RandomForest
  /// and DecisionTree kinds; all-zero for Majority). Normalized to sum 1.
  [[nodiscard]] std::vector<double> featureImportance() const;

  /// Persists a trained RandomForest-kind predictor (text format).
  /// Throws std::logic_error for other model kinds or untrained banks.
  void save(std::ostream& os) const;

  /// Reloads a predictor saved with save().
  [[nodiscard]] static BitLevelPredictor load(std::istream& is);

 private:
  /// Scalar per-bit prediction; precondition: trained() (validated once at
  /// the public entry points, not per bit).
  [[nodiscard]] bool predictBit(std::span<const std::uint8_t> features,
                                int bit) const noexcept;
  /// Batched per-bit prediction over one 64-cycle lane word.
  [[nodiscard]] std::uint64_t predictBitWord(
      std::span<const std::uint64_t> featureWords, int bit,
      std::span<double> probabilities) const;
  /// Checks that `packed` matches this bank's extractor configuration.
  void validatePacked(const PackedTraceFeatures& packed) const;

  PredictorParams params_;
  FeatureExtractor extractor_;
  // One model per output bit; exactly one of these is populated per bit
  // depending on params_.model.
  std::vector<ml::RandomForest> forests_;
  std::vector<ml::DecisionTree> treesOnly_;
  std::vector<ml::MajorityClassifier> majorities_;
  bool trained_ = false;
};

}  // namespace oisa::predict
