// oisa_predict: the paper's bit-level timing-error prediction model.
//
// One binary classifier per output bit (32 sum bits + carry-out for the
// 32-bit adders) predicts whether that bit is timing-erroneous at a given
// overclocked period, from {x[t], x[t-1], yRTL_n[t-1], yRTL_n[t]}. The
// model never emits arithmetic values directly: it predicts a timing-class
// vector (bit-flip positions) and deduces the predicted y_silver from
// y_gold (Sec. IV-B).
//
// The bank runs on the packed column-major substrate end to end: fit()
// extracts the shared operand/transition columns once per trace (only the
// two yRTL_n columns differ per bit) and trains every forest with the
// popcount CART trainer; evaluate() sweeps the test trace 64 cycles at a
// time through the lane-masked batched forest walk, so ABPER reduces to
// popcounts of prediction-vs-label words.
//
// Serving path: a trained RandomForest bank is flattened into an
// ml::FlatForestBank (structure-of-arrays node arena, ml/flat_forest.h)
// the moment training or loading completes, and every batched inference
// — evaluate() and the predictFlipsBlock hot path — walks the flat
// arrays. predictFlipsBlock scores up to 64 record pairs per call with
// zero allocation: one packBlock column extraction shared by all output
// bits, one lane-masked flat walk per bit, one 64x64 transpose back to
// per-lane flip masks. Banks persist either as the text format (v1,
// pointer forests, human-diffable) or the binary flat envelope v2
// (saveFlat/loadFlat), which mmaps straight into the inference arrays.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/status.h"
#include "ml/flat_forest.h"
#include "ml/random_forest.h"
#include "ml/serialize.h"
#include "predict/features.h"
#include "predict/trace.h"

namespace oisa::predict {

/// Model family for the per-bit classifiers (ablation bench).
enum class ModelKind : std::uint8_t {
  RandomForest,  ///< the paper's choice
  DecisionTree,  ///< single CART tree
  Majority,      ///< constant baseline
};

/// Training controls.
struct PredictorParams {
  ModelKind model = ModelKind::RandomForest;
  ml::ForestParams forest{};   ///< used when model == RandomForest
  ml::TreeParams tree{};       ///< used when model == DecisionTree
  bool includeOutputBits = true;  ///< feature ablation switch
  std::uint64_t seed = 1;
};

/// Prediction for one cycle: flip mask over sum bits plus carry-out flip.
struct PredictedFlips {
  std::uint64_t sumFlips = 0;  ///< bit n set = sum bit n predicted erroneous
  bool coutFlip = false;

  [[nodiscard]] std::uint64_t predictedSilver(
      std::uint64_t gold) const noexcept {
    return gold ^ sumFlips;
  }
};

/// Evaluation result over a test trace.
struct PredictorEvaluation {
  double abper = 0.0;  ///< average bit-level prediction error rate (eq. 1)
  double avpe = 0.0;   ///< average value-level predictive error (eq. 4)
  std::uint64_t cycles = 0;
  std::uint64_t avpeSkipped = 0;  ///< cycles with real y_silver == 0
  /// Per-bit misprediction rates (LSB-first, carry-out last).
  std::vector<double> perBitErrorRate;
};

/// Per-output-bit timing-error classifier bank.
class BitLevelPredictor {
 public:
  /// `width` — adder width (output bits = width + 1 including carry-out).
  explicit BitLevelPredictor(int width, const PredictorParams& params = {});

  /// Trains every per-bit classifier on consecutive record pairs of the
  /// training trace (records 1..n-1 each paired with their predecessor).
  /// The trace is packed once; all width+1 per-bit datasets are views over
  /// the shared matrix.
  void fit(const Trace& trainTrace);

  /// Trains directly from pre-packed bit columns (the lane trace
  /// collector's native output — see experiments::TraceCollector::
  /// collectPacked), skipping the per-call packing pass. `packed` must
  /// have been produced by an extractor configured like this bank's
  /// (same width and output-bit ablation).
  void fit(const PackedTraceFeatures& packed);

  /// Predicts the timing-class vector for the cycle `current` given the
  /// preceding record. Thin wrapper over predictFlipsBlock (a one-lane
  /// block); still allocation-free.
  [[nodiscard]] PredictedFlips predictFlips(const TraceRecord& previous,
                                            const TraceRecord& current) const;

  /// The batch-64 serving hot path: predicts the consecutive record pairs
  /// (records[r], records[r+1]), r = 0 .. records.size()-2, writing
  /// out[r]. Requires 2..65 records and out.size() == records.size()-1
  /// (the final block of a window is naturally ragged). Allocation-free:
  /// the shared operand columns are packed once for the whole block
  /// (FeatureExtractor::packBlock) and each output bit's classifier walks
  /// its flat forest once under lane masks. Lane-for-lane identical to
  /// calling predictFlips per pair.
  void predictFlipsBlock(std::span<const TraceRecord> records,
                         std::span<PredictedFlips> out) const;

  /// The seed scalar reference path — per-record byte-feature extraction
  /// and pointer-model walks — kept as the differential baseline for
  /// bench/micro_predict and the flat-equivalence tests. Requires pointer
  /// models (unavailable on a loadFlat()-ed bank: throws std::logic_error).
  [[nodiscard]] PredictedFlips predictFlipsReference(
      const TraceRecord& previous, const TraceRecord& current) const;

  /// Runs the model over a test trace and computes ABPER / AVPE via the
  /// 64-lane batched sweep (bit-identical to the per-cycle scalar path).
  [[nodiscard]] PredictorEvaluation evaluate(const Trace& testTrace) const;

  /// Like evaluate(testTrace) but consuming the trace's pre-packed
  /// columns (`packed` must be the packing of `testTrace` by an extractor
  /// configured like this bank's); the trace itself is only read for the
  /// value-level (AVPE) arithmetic.
  [[nodiscard]] PredictorEvaluation evaluate(
      const Trace& testTrace, const PackedTraceFeatures& packed) const;

  [[nodiscard]] int width() const noexcept { return extractor_.width(); }
  [[nodiscard]] const FeatureExtractor& extractor() const noexcept {
    return extractor_;
  }
  [[nodiscard]] bool trained() const noexcept { return trained_; }

  /// Aggregate feature importance across all per-bit models (RandomForest
  /// and DecisionTree kinds; all-zero for Majority). Normalized to sum 1.
  [[nodiscard]] std::vector<double> featureImportance() const;

  /// Persists a trained RandomForest-kind predictor (text format v1).
  /// InvalidInput for other model kinds, untrained banks, or flat-loaded
  /// banks (which carry no pointer forests — use saveFlat); IoError when
  /// the stream fails.
  [[nodiscard]] core::Status write(std::ostream& os) const;

  /// Status-returning loader for the text format: Corruption for any
  /// malformed or integrity-failing input, IoError for stream failures.
  [[nodiscard]] static core::StatusOr<BitLevelPredictor> read(
      std::istream& is);

  /// Throwing wrappers around write()/read(), preserving the pre-Status
  /// contract: save() throws std::logic_error on non-persistable banks,
  /// load() throws core::StatusError (is-a std::runtime_error).
  void save(std::ostream& os) const;
  [[nodiscard]] static BitLevelPredictor load(std::istream& is);

  /// Persists the flat bank as binary envelope v2 (serialize.h), the
  /// serving/design-cache format: width and feature configuration ride in
  /// the header meta words, the node arrays are the file body.
  /// InvalidInput unless trained RandomForest kind.
  [[nodiscard]] core::Status saveFlat(const std::string& path) const;

  /// Loads a saveFlat() file by mmap (one read fallback): header + CRC +
  /// structural validation, zero per-node parsing. The result serves
  /// predictFlips/predictFlipsBlock/evaluate straight off the mapped
  /// arrays; it carries no pointer forests (write()/save() and
  /// featureImportance() are unavailable).
  [[nodiscard]] static core::StatusOr<BitLevelPredictor> loadFlat(
      const std::string& path);

  /// The flat inference arrays (valid while this predictor lives).
  /// Precondition: trained RandomForest kind.
  [[nodiscard]] ml::FlatBankView flatView() const noexcept {
    return mappedBank_.empty() ? flatBank_.view() : mappedBank_.view();
  }

 private:
  /// Scalar per-bit prediction on the pointer models (reference path);
  /// precondition: trained() with pointer models present.
  [[nodiscard]] bool predictBit(std::span<const std::uint8_t> features,
                                int bit) const noexcept;
  /// Batched per-bit prediction over one 64-cycle lane word. `flat` is
  /// the bank view (hoisted by the caller; only read for RandomForest
  /// kind).
  [[nodiscard]] std::uint64_t predictBitWord(
      std::span<const std::uint64_t> featureWords, int bit,
      std::span<double> probabilities, const ml::FlatBankView& flat) const;
  /// Checks that `packed` matches this bank's extractor configuration.
  void validatePacked(const PackedTraceFeatures& packed) const;
  /// Rebuilds flatBank_ from forests_ (RandomForest kind after fit/read).
  void buildFlatBank();

  PredictorParams params_;
  FeatureExtractor extractor_;
  // One model per output bit; exactly one of these is populated per bit
  // depending on params_.model. A loadFlat()-ed bank populates none of
  // them (mappedBank_ carries the nodes instead).
  std::vector<ml::RandomForest> forests_;
  std::vector<ml::DecisionTree> treesOnly_;
  std::vector<ml::MajorityClassifier> majorities_;
  // Flat serving substrate for RandomForest kind: exactly one of these
  // is non-empty once trained (built from forests_, or mmap-ed by
  // loadFlat). Views are computed on demand, so copies/moves stay safe.
  ml::FlatForestBank flatBank_;
  ml::MappedForestBank mappedBank_;
  bool trained_ = false;
};

}  // namespace oisa::predict
