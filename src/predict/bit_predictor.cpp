#include "predict/bit_predictor.h"

#include <cmath>
#include <istream>
#include <ostream>
#include <stdexcept>

#include "ml/importance.h"
#include "ml/serialize.h"

namespace oisa::predict {

BitLevelPredictor::BitLevelPredictor(int width,
                                     const PredictorParams& params)
    : params_(params), extractor_(width, params.includeOutputBits) {}

void BitLevelPredictor::fit(const Trace& trainTrace) {
  if (trainTrace.size() < 2) {
    throw std::invalid_argument(
        "BitLevelPredictor::fit: need at least two records");
  }
  const int bits = extractor_.outputBitCount();
  forests_.clear();
  treesOnly_.clear();
  majorities_.clear();

  std::vector<std::uint8_t> row(extractor_.featureCount());
  for (int bit = 0; bit < bits; ++bit) {
    ml::Dataset data(extractor_.featureCount());
    data.reserve(trainTrace.size() - 1);
    for (std::size_t t = 1; t < trainTrace.size(); ++t) {
      extractor_.extract(trainTrace[t - 1], trainTrace[t], bit, row);
      data.addRow(row, FeatureExtractor::timingErroneous(
                           trainTrace[t], bit, extractor_.width()));
    }
    const std::uint64_t seed =
        params_.seed + 0x9e3779b97f4a7c15ull * static_cast<std::uint64_t>(bit + 1);
    switch (params_.model) {
      case ModelKind::RandomForest: {
        ml::RandomForest forest;
        forest.fit(data, params_.forest, seed);
        forests_.push_back(std::move(forest));
        break;
      }
      case ModelKind::DecisionTree: {
        ml::DecisionTree tree;
        tree.fit(data, params_.tree, seed);
        treesOnly_.push_back(std::move(tree));
        break;
      }
      case ModelKind::Majority: {
        ml::MajorityClassifier majority;
        majority.fit(data);
        majorities_.push_back(std::move(majority));
        break;
      }
    }
  }
  trained_ = true;
}

bool BitLevelPredictor::predictBit(std::span<const std::uint8_t> features,
                                   int bit) const {
  const auto idx = static_cast<std::size_t>(bit);
  switch (params_.model) {
    case ModelKind::RandomForest: return forests_[idx].predict(features);
    case ModelKind::DecisionTree: return treesOnly_[idx].predict(features);
    case ModelKind::Majority: return majorities_[idx].predict(features);
  }
  return false;
}

std::vector<double> BitLevelPredictor::featureImportance() const {
  std::vector<double> total(extractor_.featureCount(), 0.0);
  if (!trained_) return total;
  double mass = 0.0;
  auto accumulate = [&](const std::vector<double>& one) {
    for (std::size_t i = 0; i < total.size(); ++i) total[i] += one[i];
    mass += 1.0;
  };
  for (const auto& forest : forests_) {
    accumulate(ml::featureImportance(forest, total.size()));
  }
  for (const auto& tree : treesOnly_) {
    accumulate(ml::featureImportance(tree, total.size()));
  }
  double sum = 0.0;
  for (const double v : total) sum += v;
  if (sum > 0.0) {
    for (double& v : total) v /= sum;
  }
  return total;
}

void BitLevelPredictor::save(std::ostream& os) const {
  if (!trained_ || params_.model != ModelKind::RandomForest) {
    throw std::logic_error(
        "BitLevelPredictor::save: only trained RandomForest banks persist");
  }
  os << "bitpredictor " << extractor_.width() << ' '
     << (params_.includeOutputBits ? 1 : 0) << ' ' << forests_.size()
     << "\n";
  for (const ml::RandomForest& forest : forests_) {
    ml::saveForest(forest, os);
  }
}

BitLevelPredictor BitLevelPredictor::load(std::istream& is) {
  std::string tag;
  int width = 0;
  int includeOutputBits = 0;
  std::size_t banks = 0;
  if (!(is >> tag >> width >> includeOutputBits >> banks) ||
      tag != "bitpredictor") {
    throw std::runtime_error("BitLevelPredictor::load: bad header");
  }
  PredictorParams params;
  params.model = ModelKind::RandomForest;
  params.includeOutputBits = includeOutputBits != 0;
  BitLevelPredictor predictor(width, params);
  if (banks != static_cast<std::size_t>(width) + 1) {
    throw std::runtime_error("BitLevelPredictor::load: bank count mismatch");
  }
  predictor.forests_.reserve(banks);
  for (std::size_t i = 0; i < banks; ++i) {
    predictor.forests_.push_back(ml::loadForest(is));
  }
  predictor.trained_ = true;
  return predictor;
}

PredictedFlips BitLevelPredictor::predictFlips(
    const TraceRecord& previous, const TraceRecord& current) const {
  if (!trained_) {
    throw std::logic_error("BitLevelPredictor: predict before fit");
  }
  PredictedFlips flips;
  std::vector<std::uint8_t> row(extractor_.featureCount());
  const int width = extractor_.width();
  for (int bit = 0; bit <= width; ++bit) {
    extractor_.extract(previous, current, bit, row);
    if (!predictBit(row, bit)) continue;
    if (bit == width) {
      flips.coutFlip = true;
    } else {
      flips.sumFlips |= std::uint64_t{1} << bit;
    }
  }
  return flips;
}

PredictorEvaluation BitLevelPredictor::evaluate(const Trace& testTrace) const {
  if (!trained_) {
    throw std::logic_error("BitLevelPredictor: evaluate before fit");
  }
  if (testTrace.size() < 2) {
    throw std::invalid_argument(
        "BitLevelPredictor::evaluate: need at least two records");
  }
  const int width = extractor_.width();
  const int bits = extractor_.outputBitCount();
  PredictorEvaluation eval;
  std::vector<std::uint64_t> wrong(static_cast<std::size_t>(bits), 0);

  double avpeSum = 0.0;
  for (std::size_t t = 1; t < testTrace.size(); ++t) {
    const TraceRecord& prev = testTrace[t - 1];
    const TraceRecord& cur = testTrace[t];
    const PredictedFlips flips = predictFlips(prev, cur);
    // Bit-level accuracy (ABPER numerator).
    for (int bit = 0; bit < bits; ++bit) {
      const bool predicted =
          bit == width ? flips.coutFlip
                       : ((flips.sumFlips >> bit) & 1u) != 0;
      const bool real = FeatureExtractor::timingErroneous(cur, bit, width);
      if (predicted != real) ++wrong[static_cast<std::size_t>(bit)];
    }
    // Value-level accuracy (AVPE): deduce predicted y_silver from y_gold,
    // over full composed output values (sum plus carry-out).
    const bool predictedCout = cur.goldCout != flips.coutFlip;
    const std::uint64_t predictedSilver =
        flips.predictedSilver(cur.gold) |
        (static_cast<std::uint64_t>(predictedCout ? 1 : 0) << width);
    const std::uint64_t realSilver = cur.silverValue(width);
    if (realSilver == 0) {
      ++eval.avpeSkipped;
    } else {
      const double diff = std::abs(static_cast<double>(predictedSilver) -
                                   static_cast<double>(realSilver));
      avpeSum += diff / static_cast<double>(realSilver);
    }
    ++eval.cycles;
  }

  eval.perBitErrorRate.resize(static_cast<std::size_t>(bits));
  double abperSum = 0.0;
  for (int bit = 0; bit < bits; ++bit) {
    const double rate = static_cast<double>(wrong[static_cast<std::size_t>(bit)]) /
                        static_cast<double>(eval.cycles);
    eval.perBitErrorRate[static_cast<std::size_t>(bit)] = rate;
    abperSum += rate;
  }
  eval.abper = abperSum / static_cast<double>(bits);
  const std::uint64_t avpeCycles = eval.cycles - eval.avpeSkipped;
  eval.avpe = avpeCycles ? avpeSum / static_cast<double>(avpeCycles) : 0.0;
  return eval;
}

}  // namespace oisa::predict
