#include "predict/bit_predictor.h"

#include <algorithm>
#include <array>
#include <bit>
#include <istream>
#include <ostream>
#include <stdexcept>

#include "ml/importance.h"
#include "ml/serialize.h"
#include "netlist/bitops.h"
#include "obs/metrics.h"

namespace oisa::predict {

using core::Status;
using core::StatusOr;

BitLevelPredictor::BitLevelPredictor(int width,
                                     const PredictorParams& params)
    : params_(params), extractor_(width, params.includeOutputBits) {}

void BitLevelPredictor::fit(const Trace& trainTrace) {
  if (trainTrace.size() < 2) {
    throw std::invalid_argument(
        "BitLevelPredictor::fit: need at least two records");
  }
  // One packed pass over the trace; the per-bit datasets are views sharing
  // the operand/transition columns (only the two yRTL_n columns and the
  // labels differ per bit).
  fit(extractor_.packTrace(trainTrace));
}

void BitLevelPredictor::fit(const PackedTraceFeatures& packed) {
  validatePacked(packed);
  if (packed.rowCount < 1) {
    throw std::invalid_argument(
        "BitLevelPredictor::fit: need at least one packed row");
  }
  const int bits = extractor_.outputBitCount();
  forests_.clear();
  treesOnly_.clear();
  majorities_.clear();

  for (int bit = 0; bit < bits; ++bit) {
    const ml::PackedView view = extractor_.bitView(packed, bit);
    const std::uint64_t seed =
        params_.seed + 0x9e3779b97f4a7c15ull * static_cast<std::uint64_t>(bit + 1);
    switch (params_.model) {
      case ModelKind::RandomForest: {
        ml::RandomForest forest;
        forest.fit(view, params_.forest, seed);
        forests_.push_back(std::move(forest));
        break;
      }
      case ModelKind::DecisionTree: {
        ml::DecisionTree tree;
        tree.fit(view, params_.tree, seed);
        treesOnly_.push_back(std::move(tree));
        break;
      }
      case ModelKind::Majority: {
        ml::MajorityClassifier majority;
        majority.fit(view);
        majorities_.push_back(std::move(majority));
        break;
      }
    }
  }
  trained_ = true;
  mappedBank_ = ml::MappedForestBank{};  // re-fit drops any mapped file
  buildFlatBank();
}

void BitLevelPredictor::buildFlatBank() {
  if (params_.model == ModelKind::RandomForest) {
    flatBank_ = ml::FlatForestBank::build(
        forests_, static_cast<std::uint32_t>(extractor_.featureCount()));
  } else {
    flatBank_ = ml::FlatForestBank{};
  }
}

bool BitLevelPredictor::predictBit(std::span<const std::uint8_t> features,
                                   int bit) const noexcept {
  const auto idx = static_cast<std::size_t>(bit);
  switch (params_.model) {
    case ModelKind::RandomForest:
      return forests_[idx].probabilityUnchecked(features) >= 0.5;
    case ModelKind::DecisionTree:
      return treesOnly_[idx].probabilityUnchecked(features) >= 0.5;
    case ModelKind::Majority: return majorities_[idx].predict(features);
  }
  return false;
}

std::uint64_t BitLevelPredictor::predictBitWord(
    std::span<const std::uint64_t> featureWords, int bit,
    std::span<double> probabilities, const ml::FlatBankView& flat) const {
  const auto idx = static_cast<std::size_t>(bit);
  switch (params_.model) {
    case ModelKind::RandomForest: {
      // The flat walk accumulates into caller-zeroed sums; same summation
      // order as RandomForest::predictBatch, so the word is bit-identical
      // to the pointer-forest path.
      std::fill_n(probabilities.data(), 64, 0.0);
      return ml::FlatForest(flat, idx).predictWord(featureWords,
                                                   probabilities.data());
    }
    case ModelKind::DecisionTree:
      return treesOnly_[idx].predictBatch(featureWords, probabilities);
    case ModelKind::Majority:
      return majorities_[idx].predictBatch(featureWords, probabilities);
  }
  return 0;
}

std::vector<double> BitLevelPredictor::featureImportance() const {
  std::vector<double> total(extractor_.featureCount(), 0.0);
  if (!trained_) return total;
  double mass = 0.0;
  auto accumulate = [&](const std::vector<double>& one) {
    for (std::size_t i = 0; i < total.size(); ++i) total[i] += one[i];
    mass += 1.0;
  };
  for (const auto& forest : forests_) {
    accumulate(ml::featureImportance(forest, total.size()));
  }
  for (const auto& tree : treesOnly_) {
    accumulate(ml::featureImportance(tree, total.size()));
  }
  double sum = 0.0;
  for (const double v : total) sum += v;
  if (sum > 0.0) {
    for (double& v : total) v /= sum;
  }
  return total;
}

core::Status BitLevelPredictor::write(std::ostream& os) const {
  if (!trained_ || params_.model != ModelKind::RandomForest) {
    return Status::invalidInput(
        "BitLevelPredictor::write: only trained RandomForest banks persist");
  }
  if (forests_.empty()) {
    return Status::invalidInput(
        "BitLevelPredictor::write: flat-loaded bank carries no pointer "
        "forests (use saveFlat)");
  }
  os << "bitpredictor " << extractor_.width() << ' '
     << (params_.includeOutputBits ? 1 : 0) << ' ' << forests_.size()
     << "\n";
  for (const ml::RandomForest& forest : forests_) {
    ml::saveForest(forest, os);
  }
  if (!os) {
    return Status::ioError("BitLevelPredictor::write: stream write failed");
  }
  return Status::ok();
}

void BitLevelPredictor::save(std::ostream& os) const {
  if (!trained_ || params_.model != ModelKind::RandomForest ||
      forests_.empty()) {
    throw std::logic_error(
        "BitLevelPredictor::save: only trained RandomForest banks persist");
  }
  core::throwIfError(write(os));
}

core::StatusOr<BitLevelPredictor> BitLevelPredictor::read(std::istream& is) {
  std::string tag;
  int width = 0;
  int includeOutputBits = 0;
  std::size_t banks = 0;
  if (!(is >> tag >> width >> includeOutputBits >> banks) ||
      tag != "bitpredictor") {
    return Status::corruption("BitLevelPredictor::read: bad header");
  }
  if (width < 1 || width > 63) {
    return Status::corruption("BitLevelPredictor::read: width " +
                              std::to_string(width) + " out of range");
  }
  PredictorParams params;
  params.model = ModelKind::RandomForest;
  params.includeOutputBits = includeOutputBits != 0;
  BitLevelPredictor predictor(width, params);
  if (banks != static_cast<std::size_t>(width) + 1) {
    return Status::corruption("BitLevelPredictor::read: bank count mismatch");
  }
  predictor.forests_.reserve(banks);
  for (std::size_t i = 0; i < banks; ++i) {
    StatusOr<ml::RandomForest> forest = ml::readForest(is);
    if (!forest.isOk()) return forest.status();
    predictor.forests_.push_back(std::move(forest).value());
  }
  predictor.trained_ = true;
  predictor.buildFlatBank();
  return predictor;
}

BitLevelPredictor BitLevelPredictor::load(std::istream& is) {
  return read(is).valueOrThrow();
}

core::Status BitLevelPredictor::saveFlat(const std::string& path) const {
  if (!trained_ || params_.model != ModelKind::RandomForest) {
    return Status::invalidInput(
        "BitLevelPredictor::saveFlat: only trained RandomForest banks "
        "persist");
  }
  return ml::writeFlatBankFile(
      path, flatView(), static_cast<std::uint32_t>(extractor_.width()),
      params_.includeOutputBits ? 1u : 0u);
}

core::StatusOr<BitLevelPredictor> BitLevelPredictor::loadFlat(
    const std::string& path) {
  StatusOr<ml::MappedForestBank> bank = ml::MappedForestBank::open(path);
  if (!bank.isOk()) return bank.status();
  const std::uint32_t width = bank.value().meta0();
  if (width < 1 || width > 63) {
    return Status::corruption("BitLevelPredictor::loadFlat: width " +
                              std::to_string(width) + " out of range");
  }
  PredictorParams params;
  params.model = ModelKind::RandomForest;
  params.includeOutputBits = (bank.value().meta1() & 1u) != 0;
  BitLevelPredictor predictor(static_cast<int>(width), params);
  const ml::FlatBankView& view = bank.value().view();
  if (view.forestCount() != static_cast<std::size_t>(width) + 1) {
    return Status::corruption(
        "BitLevelPredictor::loadFlat: bank count mismatch (" +
        std::to_string(view.forestCount()) + " forests for width " +
        std::to_string(width) + ")");
  }
  if (view.featureCount != predictor.extractor_.featureCount()) {
    return Status::corruption(
        "BitLevelPredictor::loadFlat: feature count mismatch");
  }
  predictor.mappedBank_ = std::move(bank).value();
  predictor.trained_ = true;
  return predictor;
}

PredictedFlips BitLevelPredictor::predictFlips(
    const TraceRecord& previous, const TraceRecord& current) const {
  const std::array<TraceRecord, 2> pair{previous, current};
  PredictedFlips flips;
  predictFlipsBlock(pair, std::span<PredictedFlips>(&flips, 1));
  return flips;
}

void BitLevelPredictor::predictFlipsBlock(
    std::span<const TraceRecord> records,
    std::span<PredictedFlips> out) const {
  if (!trained_) {
    throw std::logic_error("BitLevelPredictor: predict before fit");
  }
  if (records.size() < 2 || records.size() > 65) {
    throw std::invalid_argument(
        "BitLevelPredictor::predictFlipsBlock: need 2..65 records");
  }
  if (out.size() != records.size() - 1) {
    throw std::invalid_argument(
        "BitLevelPredictor::predictFlipsBlock: out must hold one entry per "
        "record pair");
  }
  const std::size_t shared = extractor_.sharedFeatureCount();
  const int bits = extractor_.outputBitCount();
  const int width = extractor_.width();
  // Everything below lives on the stack: kMaxFeatureCount caps the
  // feature columns (width <= 63) and output bits fit one 64-word block.
  std::array<std::uint64_t, FeatureExtractor::kMaxFeatureCount> featureWords;
  std::array<std::uint64_t, 64> goldPrevCols;
  std::array<std::uint64_t, 64> goldCurCols;
  const std::size_t lanes = extractor_.packBlock(
      records, std::span(featureWords).first(shared), goldPrevCols,
      goldCurCols);
  const ml::FlatBankView flat = params_.model == ModelKind::RandomForest
                                    ? flatView()
                                    : ml::FlatBankView{};
  std::array<std::uint64_t, 64> predWords{};
  std::array<double, 64> probabilities;
  const std::span<const std::uint64_t> features(featureWords.data(),
                                                extractor_.featureCount());
  for (int bit = 0; bit < bits; ++bit) {
    const auto b = static_cast<std::size_t>(bit);
    if (params_.includeOutputBits) {
      featureWords[shared] = goldPrevCols[b];
      featureWords[shared + 1] = goldCurCols[b];
    }
    predWords[b] = predictBitWord(features, bit, probabilities, flat);
  }
  // predWords rows are output bits; one transpose turns them into
  // per-lane flip words (bit b of word L = bit b's prediction for lane L).
  netlist::transpose64(predWords);
  const std::uint64_t coutBit = std::uint64_t{1} << width;
  for (std::size_t lane = 0; lane < lanes; ++lane) {
    out[lane].sumFlips = predWords[lane] & (coutBit - 1);
    out[lane].coutFlip = (predWords[lane] & coutBit) != 0;
  }
  // Serving telemetry: three adds per <=64-record block, never per lane.
  // Occupancy tracks how full the batch-64 blocks arrive — the request
  // coalescing headroom the future serving layer cares about.
  static obs::Counter& blocksServed = obs::counter("predict.blocks_served");
  static obs::Counter& recordsServed = obs::counter("predict.records_served");
  static obs::Histogram& occupancy = obs::histogram("predict.block_occupancy");
  blocksServed.add();
  recordsServed.add(lanes);
  occupancy.record(lanes);
}

PredictedFlips BitLevelPredictor::predictFlipsReference(
    const TraceRecord& previous, const TraceRecord& current) const {
  if (!trained_) {
    throw std::logic_error("BitLevelPredictor: predict before fit");
  }
  if (params_.model == ModelKind::RandomForest && forests_.empty()) {
    throw std::logic_error(
        "BitLevelPredictor::predictFlipsReference: flat-loaded bank has no "
        "pointer models");
  }
  PredictedFlips flips;
  // Stack row buffer (width <= 63 caps featureCount); the shared operand
  // block is extracted once, only the two yRTL_n bytes change per bit.
  std::array<std::uint8_t, FeatureExtractor::kMaxFeatureCount> buffer;
  const std::span<std::uint8_t> row{buffer.data(),
                                    extractor_.featureCount()};
  extractor_.extractShared(previous, current, row);
  const int width = extractor_.width();
  for (int bit = 0; bit <= width; ++bit) {
    extractor_.patchBitFeatures(previous, current, bit, row);
    if (!predictBit(row, bit)) continue;
    if (bit == width) {
      flips.coutFlip = true;
    } else {
      flips.sumFlips |= std::uint64_t{1} << bit;
    }
  }
  return flips;
}

void BitLevelPredictor::validatePacked(
    const PackedTraceFeatures& packed) const {
  const auto bits = static_cast<std::size_t>(extractor_.outputBitCount());
  const std::size_t expected = bits * packed.wordCount;
  if (packed.sharedCount != extractor_.sharedFeatureCount() ||
      packed.labels.size() != expected ||
      (params_.includeOutputBits &&
       (packed.goldPrev.size() != expected ||
        packed.goldCur.size() != expected))) {
    throw std::invalid_argument(
        "BitLevelPredictor: packed columns do not match the extractor "
        "configuration (width / output-bit ablation)");
  }
}

PredictorEvaluation BitLevelPredictor::evaluate(const Trace& testTrace) const {
  // Pack the test trace once, then run the packed sweep below.
  if (testTrace.size() < 2) {
    throw std::invalid_argument(
        "BitLevelPredictor::evaluate: need at least two records");
  }
  return evaluate(testTrace, extractor_.packTrace(testTrace));
}

PredictorEvaluation BitLevelPredictor::evaluate(
    const Trace& testTrace, const PackedTraceFeatures& packed) const {
  if (!trained_) {
    throw std::logic_error("BitLevelPredictor: evaluate before fit");
  }
  validatePacked(packed);
  if (testTrace.size() < 2 || packed.rowCount != testTrace.size() - 1) {
    throw std::invalid_argument(
        "BitLevelPredictor::evaluate: packed rows must be the trace's "
        "consecutive record pairs");
  }
  const int width = extractor_.width();
  const int bits = extractor_.outputBitCount();
  PredictorEvaluation eval;
  std::vector<std::uint64_t> wrong(static_cast<std::size_t>(bits), 0);

  // Sweep the packed columns 64 cycles at a time: per block each bit's
  // classifier walks its forest under lane masks, the mispredictions are
  // popcounts of prediction-vs-label words, and only the value-level
  // (AVPE) arithmetic touches individual cycles.
  const std::size_t words = packed.wordCount;
  const std::size_t rows = packed.rowCount;
  const std::size_t shared = packed.sharedCount;
  const ml::FlatBankView flat = params_.model == ModelKind::RandomForest
                                    ? flatView()
                                    : ml::FlatBankView{};
  std::vector<std::uint64_t> featureWords(extractor_.featureCount());
  std::vector<std::uint64_t> predWords(static_cast<std::size_t>(bits));
  std::array<double, 64> probabilities;

  double avpeSum = 0.0;
  for (std::size_t w = 0; w < words; ++w) {
    const std::size_t lanes = std::min<std::size_t>(64, rows - w * 64);
    const std::uint64_t active =
        lanes == 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << lanes) - 1;
    for (std::size_t f = 0; f < shared; ++f) {
      featureWords[f] = packed.shared[f * words + w];
    }
    for (int bit = 0; bit < bits; ++bit) {
      const auto b = static_cast<std::size_t>(bit);
      if (params_.includeOutputBits) {
        featureWords[shared] = packed.goldPrev[b * words + w];
        featureWords[shared + 1] = packed.goldCur[b * words + w];
      }
      const std::uint64_t pred =
          predictBitWord(featureWords, bit, probabilities, flat);
      predWords[b] = pred;
      // Bit-level accuracy (ABPER numerator): one popcount per 64 cycles.
      wrong[b] += static_cast<std::uint64_t>(
          std::popcount((pred ^ packed.labels[b * words + w]) & active));
    }
    // Value-level accuracy (AVPE): deduce predicted y_silver from y_gold,
    // over full composed output values (sum plus carry-out), in cycle
    // order.
    for (std::size_t lane = 0; lane < lanes; ++lane) {
      const TraceRecord& cur = testTrace[w * 64 + lane + 1];
      std::uint64_t sumFlips = 0;
      for (int bit = 0; bit < width; ++bit) {
        const std::uint64_t flip =
            (predWords[static_cast<std::size_t>(bit)] >> lane) & 1u;
        sumFlips |= flip << bit;
      }
      const bool coutFlip =
          ((predWords[static_cast<std::size_t>(width)] >> lane) & 1u) != 0;
      const bool predictedCout = cur.goldCout != coutFlip;
      const std::uint64_t predictedSilver =
          (cur.gold ^ sumFlips) |
          (static_cast<std::uint64_t>(predictedCout ? 1 : 0) << width);
      const std::uint64_t realSilver = cur.silverValue(width);
      if (realSilver == 0) {
        ++eval.avpeSkipped;
      } else {
        // Magnitude in integer arithmetic: |a - b| on 64-bit values loses
        // precision past 2^53 when computed on doubles.
        const std::uint64_t diff = predictedSilver >= realSilver
                                       ? predictedSilver - realSilver
                                       : realSilver - predictedSilver;
        avpeSum +=
            static_cast<double>(diff) / static_cast<double>(realSilver);
      }
      ++eval.cycles;
    }
  }

  eval.perBitErrorRate.resize(static_cast<std::size_t>(bits));
  double abperSum = 0.0;
  for (int bit = 0; bit < bits; ++bit) {
    const double rate = static_cast<double>(wrong[static_cast<std::size_t>(bit)]) /
                        static_cast<double>(eval.cycles);
    eval.perBitErrorRate[static_cast<std::size_t>(bit)] = rate;
    abperSum += rate;
  }
  eval.abper = abperSum / static_cast<double>(bits);
  const std::uint64_t avpeCycles = eval.cycles - eval.avpeSkipped;
  eval.avpe = avpeCycles ? avpeSum / static_cast<double>(avpeCycles) : 0.0;
  // Two adds per evaluation sweep, outside every packed-word loop.
  static obs::Counter& evaluations = obs::counter("predict.evaluations");
  static obs::Counter& evalRows = obs::counter("predict.eval_rows");
  evaluations.add();
  evalRows.add(eval.cycles);
  return eval;
}

}  // namespace oisa::predict
