#include "predict/features.h"

#include <algorithm>
#include <array>
#include <stdexcept>

#include "netlist/bitops.h"

namespace oisa::predict {

FeatureExtractor::FeatureExtractor(int width, bool includeOutputBits)
    : width_(width), includeOutputBits_(includeOutputBits) {
  if (width < 1 || width > 63) {
    throw std::invalid_argument("FeatureExtractor: width must be 1..63");
  }
  const std::size_t perCycle = 2 * static_cast<std::size_t>(width) + 1;
  featureCount_ = 2 * perCycle + (includeOutputBits ? 2 : 0);
}

void FeatureExtractor::extract(const TraceRecord& previous,
                               const TraceRecord& current, int bit,
                               std::span<std::uint8_t> out) const {
  extractShared(previous, current, out);
  patchBitFeatures(previous, current, bit, out);
}

void FeatureExtractor::extractShared(const TraceRecord& previous,
                                     const TraceRecord& current,
                                     std::span<std::uint8_t> out) const {
  if (out.size() != featureCount_) {
    throw std::invalid_argument("FeatureExtractor: bad output span size");
  }
  const auto w = static_cast<std::size_t>(width_);
  std::size_t k = 0;
  auto emitCycle = [&](const TraceRecord& rec) {
    for (std::size_t i = 0; i < w; ++i) {
      out[k++] = static_cast<std::uint8_t>((rec.a >> i) & 1u);
    }
    for (std::size_t i = 0; i < w; ++i) {
      out[k++] = static_cast<std::uint8_t>((rec.b >> i) & 1u);
    }
    out[k++] = rec.carryIn ? 1 : 0;
  };
  emitCycle(current);
  emitCycle(previous);
}

void FeatureExtractor::patchBitFeatures(const TraceRecord& previous,
                                        const TraceRecord& current, int bit,
                                        std::span<std::uint8_t> out) const {
  if (!includeOutputBits_) return;
  if (out.size() != featureCount_) {
    throw std::invalid_argument("FeatureExtractor: bad output span size");
  }
  const std::size_t k = sharedFeatureCount();
  out[k] = goldBit(previous, bit, width_) ? 1 : 0;
  out[k + 1] = goldBit(current, bit, width_) ? 1 : 0;
}

std::vector<std::uint8_t> FeatureExtractor::extract(
    const TraceRecord& previous, const TraceRecord& current, int bit) const {
  std::vector<std::uint8_t> out(featureCount_);
  extract(previous, current, bit, out);
  return out;
}

std::size_t FeatureExtractor::packBlock(
    std::span<const TraceRecord> records, std::span<std::uint64_t> sharedOut,
    std::span<std::uint64_t> goldPrevOut,
    std::span<std::uint64_t> goldCurOut) const {
  if (records.size() < 2 || records.size() > 65) {
    throw std::invalid_argument(
        "FeatureExtractor::packBlock: need 2..65 records");
  }
  const std::size_t lanes = records.size() - 1;
  const std::size_t sharedCount = sharedFeatureCount();
  const auto bits = static_cast<std::size_t>(outputBitCount());
  if (sharedOut.size() < sharedCount ||
      (includeOutputBits_ &&
       (goldPrevOut.size() < bits || goldCurOut.size() < bits))) {
    throw std::invalid_argument(
        "FeatureExtractor::packBlock: output spans too small");
  }
  // A row's shared feature vector is just the concatenated operand words
  // {cur.a, cur.b, cur.cin, prev.a, prev.b, prev.cin} read as a (4W+2)-bit
  // little-endian integer, and its gold vectors are (width+1)-bit words —
  // so packing a block is a handful of shifts per row plus one 64x64 bit
  // transpose per 64 columns (the BatchEvaluator lane idiom), not a
  // per-(row, column) scatter. Sum bits are masked to the width so the
  // composed words match goldBit()/timingErroneous() exactly even on
  // records carrying stray high bits.
  const auto w = static_cast<std::size_t>(width_);
  const std::uint64_t coutBit = std::uint64_t{1} << width_;
  const std::uint64_t sumMask = coutBit - 1;
  const std::size_t chunks = (sharedCount + 63) / 64;
  std::array<std::array<std::uint64_t, 64>, kMaxSharedChunks> rowChunks;
  for (std::size_t c = 0; c < chunks; ++c) rowChunks[c].fill(0);
  std::array<std::uint64_t, 64> goldPrevRows{};
  std::array<std::uint64_t, 64> goldCurRows{};
  for (std::size_t lane = 0; lane < lanes; ++lane) {
    const TraceRecord& prev = records[lane];
    const TraceRecord& cur = records[lane + 1];
    std::size_t p = 0;
    auto append = [&](std::uint64_t value, std::size_t nbits) {
      const std::size_t chunk = p / 64;
      const std::size_t off = p % 64;
      rowChunks[chunk][lane] |= value << off;
      if (off != 0 && off + nbits > 64) {
        rowChunks[chunk + 1][lane] |= value >> (64 - off);
      }
      p += nbits;
    };
    append(cur.a & sumMask, w);
    append(cur.b & sumMask, w);
    append(cur.carryIn ? 1 : 0, 1);
    append(prev.a & sumMask, w);
    append(prev.b & sumMask, w);
    append(prev.carryIn ? 1 : 0, 1);
    goldPrevRows[lane] = (prev.gold & sumMask) | (prev.goldCout ? coutBit : 0);
    goldCurRows[lane] = (cur.gold & sumMask) | (cur.goldCout ? coutBit : 0);
  }
  for (std::size_t c = 0; c < chunks; ++c) {
    netlist::transpose64(rowChunks[c]);
    const std::size_t columns = std::min<std::size_t>(64, sharedCount - c * 64);
    for (std::size_t j = 0; j < columns; ++j) {
      sharedOut[c * 64 + j] = rowChunks[c][j];
    }
  }
  if (includeOutputBits_) {
    netlist::transpose64(goldPrevRows);
    netlist::transpose64(goldCurRows);
    for (std::size_t b = 0; b < bits; ++b) {
      goldPrevOut[b] = goldPrevRows[b];
      goldCurOut[b] = goldCurRows[b];
    }
  }
  return lanes;
}

PackedTraceFeatures FeatureExtractor::packTrace(const Trace& trace) const {
  PackedTraceFeatures out;
  out.rowCount = trace.size() < 2 ? 0 : trace.size() - 1;
  out.wordCount = (out.rowCount + 63) / 64;
  out.sharedCount = sharedFeatureCount();
  const std::size_t words = out.wordCount;
  const auto bits = static_cast<std::size_t>(outputBitCount());
  out.shared.assign(out.sharedCount * words, 0);
  if (includeOutputBits_) {
    out.goldPrev.assign(bits * words, 0);
    out.goldCur.assign(bits * words, 0);
  }
  out.labels.assign(bits * words, 0);

  // Per 64-row block: packBlock composes the shared and gold columns (the
  // same code the inference hot path runs), then the label columns — which
  // need the silver outputs packBlock deliberately ignores — are composed
  // and transposed here.
  const std::uint64_t coutBit = std::uint64_t{1} << width_;
  const std::uint64_t sumMask = coutBit - 1;
  std::array<std::uint64_t, kMaxFeatureCount> sharedCols;
  std::array<std::uint64_t, 64> goldPrevCols;
  std::array<std::uint64_t, 64> goldCurCols;
  std::array<std::uint64_t, 64> labelRows{};

  for (std::size_t block = 0; block < words; ++block) {
    const std::size_t base = block * 64;
    const std::size_t lanes = std::min<std::size_t>(64, out.rowCount - base);
    (void)packBlock(std::span(trace).subspan(base, lanes + 1),
                    std::span(sharedCols).first(out.sharedCount),
                    goldPrevCols, goldCurCols);
    labelRows.fill(0);
    for (std::size_t lane = 0; lane < lanes; ++lane) {
      const TraceRecord& cur = trace[base + lane + 1];
      labelRows[lane] = ((cur.gold ^ cur.silver) & sumMask) |
                        (cur.goldCout != cur.silverCout ? coutBit : 0);
    }
    for (std::size_t f = 0; f < out.sharedCount; ++f) {
      out.shared[f * words + block] = sharedCols[f];
    }
    if (includeOutputBits_) {
      for (std::size_t b = 0; b < bits; ++b) {
        out.goldPrev[b * words + block] = goldPrevCols[b];
        out.goldCur[b * words + block] = goldCurCols[b];
      }
    }
    netlist::transpose64(labelRows);
    for (std::size_t b = 0; b < bits; ++b) {
      out.labels[b * words + block] = labelRows[b];
    }
  }
  return out;
}

ml::PackedView FeatureExtractor::bitView(const PackedTraceFeatures& packed,
                                         int bit) const {
  if (bit < 0 || bit > width_) {
    throw std::invalid_argument("FeatureExtractor::bitView: bad bit");
  }
  ml::PackedView view;
  view.rowCount = packed.rowCount;
  view.wordCount = packed.wordCount;
  view.columns.reserve(featureCount_);
  for (std::size_t f = 0; f < packed.sharedCount; ++f) {
    view.columns.push_back(packed.sharedColumn(f));
  }
  if (includeOutputBits_) {
    const auto b = static_cast<std::size_t>(bit);
    view.columns.push_back(packed.goldPrev.data() + b * packed.wordCount);
    view.columns.push_back(packed.goldCur.data() + b * packed.wordCount);
  }
  view.labels = packed.labelColumn(bit);
  return view;
}

std::string FeatureExtractor::featureName(std::size_t index) const {
  if (index >= featureCount_) {
    throw std::invalid_argument("FeatureExtractor::featureName: bad index");
  }
  const auto w = static_cast<std::size_t>(width_);
  const std::size_t perCycle = 2 * w + 1;
  const char* suffix = index < perCycle ? "[t]" : "[t-1]";
  std::size_t k = index % perCycle;
  if (index >= 2 * perCycle) {
    return index == 2 * perCycle ? "yRTL_n[t-1]" : "yRTL_n[t]";
  }
  if (k < w) return "a" + std::to_string(k) + suffix;
  if (k < 2 * w) return "b" + std::to_string(k - w) + suffix;
  return std::string("cin") + suffix;
}

bool FeatureExtractor::goldBit(const TraceRecord& rec, int bit,
                               int width) noexcept {
  if (bit == width) return rec.goldCout;
  return ((rec.gold >> bit) & 1u) != 0;
}

bool FeatureExtractor::silverBit(const TraceRecord& rec, int bit,
                                 int width) noexcept {
  if (bit == width) return rec.silverCout;
  return ((rec.silver >> bit) & 1u) != 0;
}

}  // namespace oisa::predict
