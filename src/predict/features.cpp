#include "predict/features.h"

#include <stdexcept>

namespace oisa::predict {

FeatureExtractor::FeatureExtractor(int width, bool includeOutputBits)
    : width_(width), includeOutputBits_(includeOutputBits) {
  if (width < 1 || width > 63) {
    throw std::invalid_argument("FeatureExtractor: width must be 1..63");
  }
  const std::size_t perCycle = 2 * static_cast<std::size_t>(width) + 1;
  featureCount_ = 2 * perCycle + (includeOutputBits ? 2 : 0);
}

void FeatureExtractor::extract(const TraceRecord& previous,
                               const TraceRecord& current, int bit,
                               std::span<std::uint8_t> out) const {
  if (out.size() != featureCount_) {
    throw std::invalid_argument("FeatureExtractor: bad output span size");
  }
  const auto w = static_cast<std::size_t>(width_);
  std::size_t k = 0;
  auto emitCycle = [&](const TraceRecord& rec) {
    for (std::size_t i = 0; i < w; ++i) {
      out[k++] = static_cast<std::uint8_t>((rec.a >> i) & 1u);
    }
    for (std::size_t i = 0; i < w; ++i) {
      out[k++] = static_cast<std::uint8_t>((rec.b >> i) & 1u);
    }
    out[k++] = rec.carryIn ? 1 : 0;
  };
  emitCycle(current);
  emitCycle(previous);
  if (includeOutputBits_) {
    out[k++] = goldBit(previous, bit, width_) ? 1 : 0;
    out[k++] = goldBit(current, bit, width_) ? 1 : 0;
  }
}

std::vector<std::uint8_t> FeatureExtractor::extract(
    const TraceRecord& previous, const TraceRecord& current, int bit) const {
  std::vector<std::uint8_t> out(featureCount_);
  extract(previous, current, bit, out);
  return out;
}

std::string FeatureExtractor::featureName(std::size_t index) const {
  if (index >= featureCount_) {
    throw std::invalid_argument("FeatureExtractor::featureName: bad index");
  }
  const auto w = static_cast<std::size_t>(width_);
  const std::size_t perCycle = 2 * w + 1;
  const char* suffix = index < perCycle ? "[t]" : "[t-1]";
  std::size_t k = index % perCycle;
  if (index >= 2 * perCycle) {
    return index == 2 * perCycle ? "yRTL_n[t-1]" : "yRTL_n[t]";
  }
  if (k < w) return "a" + std::to_string(k) + suffix;
  if (k < 2 * w) return "b" + std::to_string(k - w) + suffix;
  return std::string("cin") + suffix;
}

bool FeatureExtractor::goldBit(const TraceRecord& rec, int bit,
                               int width) noexcept {
  if (bit == width) return rec.goldCout;
  return ((rec.gold >> bit) & 1u) != 0;
}

bool FeatureExtractor::silverBit(const TraceRecord& rec, int bit,
                                 int width) noexcept {
  if (bit == width) return rec.silverCout;
  return ((rec.silver >> bit) & 1u) != 0;
}

}  // namespace oisa::predict
