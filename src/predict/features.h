// oisa_predict: feature extraction for bit-level timing-error prediction.
//
// Per the paper (Sec. III-A), the feature vector of output bit n at cycle t
// is { x[t], x[t-1], yRTL_n[t-1], yRTL_n[t] }: the output is jointly
// determined by the current and preceding input vectors, and a latched
// timing error requires the two consecutive RTL output bits to differ.
// Layout (width = W):
//   [0,W)      a[t] bits       [W,2W)     b[t] bits      [2W]    cin[t]
//   [2W+1,3W+1) a[t-1] bits    [3W+1,4W+1) b[t-1] bits   [4W+1]  cin[t-1]
//   [4W+2]     yRTL_n[t-1]     [4W+3]     yRTL_n[t]
//
// The operand/transition block [0, 4W+2) is *shared* by all output bits —
// only the trailing two yRTL_n entries depend on the bit. packTrace()
// exploits that: it extracts the shared block once per trace into packed
// bit-columns (the ml::PackedView layout) and the per-bit gold/label
// columns once per bit, so training and batched evaluation never touch a
// per-(bit, row) byte matrix.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "ml/dataset.h"
#include "predict/trace.h"

namespace oisa::predict {

/// Column-major packed features of a whole trace. Row r is the consecutive
/// record pair (trace[r], trace[r+1]), r = 0 .. trace.size()-2; bit (r %
/// 64) of word (r / 64) holds the row's value, tail bits are zero.
struct PackedTraceFeatures {
  std::size_t rowCount = 0;
  std::size_t wordCount = 0;    ///< ceil(rowCount / 64)
  std::size_t sharedCount = 0;  ///< operand/transition column count (4W+2)
  std::vector<std::uint64_t> shared;    ///< sharedCount x wordCount
  std::vector<std::uint64_t> goldPrev;  ///< bits x wordCount (empty when
                                        ///< output-bit features are ablated)
  std::vector<std::uint64_t> goldCur;   ///< bits x wordCount (ditto)
  std::vector<std::uint64_t> labels;    ///< bits x wordCount: timing errors

  [[nodiscard]] const std::uint64_t* sharedColumn(std::size_t f) const {
    return shared.data() + f * wordCount;
  }
  [[nodiscard]] const std::uint64_t* labelColumn(int bit) const {
    return labels.data() + static_cast<std::size_t>(bit) * wordCount;
  }
};

/// Extracts per-bit feature vectors from consecutive trace records.
class FeatureExtractor {
 public:
  /// Largest featureCount() any valid width yields (W = 63): a stack
  /// buffer of this size fits every extracted row.
  static constexpr std::size_t kMaxFeatureCount = 2 * (2 * 63 + 1) + 2;
  /// 64-row transpose chunks covering the widest shared block — sizes the
  /// allocation-free packBlock scratch.
  static constexpr std::size_t kMaxSharedChunks = (2 * (2 * 63 + 1) + 63) / 64;

  /// `width` — adder width W; output bits 0..W-1 are sum bits, bit W is the
  /// carry-out. `includeOutputBits` — ablation switch for the
  /// {yRTL[t-1], yRTL[t]} features.
  explicit FeatureExtractor(int width, bool includeOutputBits = true);

  [[nodiscard]] std::size_t featureCount() const noexcept {
    return featureCount_;
  }
  /// Features independent of the output bit (the leading block).
  [[nodiscard]] std::size_t sharedFeatureCount() const noexcept {
    return 2 * (2 * static_cast<std::size_t>(width_) + 1);
  }
  [[nodiscard]] int width() const noexcept { return width_; }
  [[nodiscard]] int outputBitCount() const noexcept { return width_ + 1; }

  /// Fills `out` (featureCount() entries) for output bit `bit` at the cycle
  /// described by `current`, with `previous` the preceding cycle's record.
  void extract(const TraceRecord& previous, const TraceRecord& current,
               int bit, std::span<std::uint8_t> out) const;

  /// Fills only the shared operand/transition block of `out` (featureCount()
  /// entries); pair with patchBitFeatures to reuse one extraction across
  /// all output bits of a cycle.
  void extractShared(const TraceRecord& previous, const TraceRecord& current,
                     std::span<std::uint8_t> out) const;

  /// Overwrites the two per-bit yRTL_n entries of `out` (no-op when the
  /// output-bit features are ablated).
  void patchBitFeatures(const TraceRecord& previous,
                        const TraceRecord& current, int bit,
                        std::span<std::uint8_t> out) const;

  /// Convenience allocating overload.
  [[nodiscard]] std::vector<std::uint8_t> extract(
      const TraceRecord& previous, const TraceRecord& current,
      int bit) const;

  /// Packs one block of up to 64 consecutive record pairs
  /// (records[r], records[r+1]), r = 0 .. records.size()-2, into
  /// caller-owned single-word bit columns: sharedOut[f] = shared feature
  /// f (bit r = row r's value), goldPrevOut[b] / goldCurOut[b] = output
  /// bit b's yRTL[t-1] / yRTL[t] columns (untouched when the output-bit
  /// features are ablated). Tail bits past the row count are zero.
  /// Allocation-free — this is the per-block body of packTrace(), shared
  /// with the predictFlipsBlock inference hot path so both pack
  /// bit-identically by construction. Returns the row (lane) count.
  /// Requires 2..65 records, sharedOut.size() >= sharedFeatureCount(),
  /// and (unless ablated) gold spans of >= outputBitCount() words.
  std::size_t packBlock(std::span<const TraceRecord> records,
                        std::span<std::uint64_t> sharedOut,
                        std::span<std::uint64_t> goldPrevOut,
                        std::span<std::uint64_t> goldCurOut) const;

  /// Packs a whole trace into bit-columns: the shared block is extracted
  /// once per *trace*, the gold/label columns once per *bit* — the 33x
  /// redundant per-bit re-extraction of the seed pipeline collapses into
  /// this one pass.
  [[nodiscard]] PackedTraceFeatures packTrace(const Trace& trace) const;

  /// Assembles output bit `bit`'s training view over `packed`: column
  /// pointers into the shared matrix plus the bit's gold and label columns.
  /// No copies; the view lives as long as `packed`.
  [[nodiscard]] ml::PackedView bitView(const PackedTraceFeatures& packed,
                                       int bit) const;

  /// Human-readable name of feature `index` ("a3[t]", "cin[t-1]",
  /// "yRTL_n[t]", ...), for importance reports.
  [[nodiscard]] std::string featureName(std::size_t index) const;

  /// The golden (RTL) value of output bit `bit` in `rec` (sum or carry).
  [[nodiscard]] static bool goldBit(const TraceRecord& rec, int bit,
                                    int width) noexcept;
  /// The silver (overclocked) value of output bit `bit`.
  [[nodiscard]] static bool silverBit(const TraceRecord& rec, int bit,
                                      int width) noexcept;
  /// Timing class of output bit `bit`: true = timing-erroneous.
  [[nodiscard]] static bool timingErroneous(const TraceRecord& rec, int bit,
                                            int width) noexcept {
    return goldBit(rec, bit, width) != silverBit(rec, bit, width);
  }

 private:
  int width_;
  bool includeOutputBits_;
  std::size_t featureCount_;
};

}  // namespace oisa::predict
