// oisa_predict: feature extraction for bit-level timing-error prediction.
//
// Per the paper (Sec. III-A), the feature vector of output bit n at cycle t
// is { x[t], x[t-1], yRTL_n[t-1], yRTL_n[t] }: the output is jointly
// determined by the current and preceding input vectors, and a latched
// timing error requires the two consecutive RTL output bits to differ.
// Layout (width = W):
//   [0,W)      a[t] bits       [W,2W)     b[t] bits      [2W]    cin[t]
//   [2W+1,3W+1) a[t-1] bits    [3W+1,4W+1) b[t-1] bits   [4W+1]  cin[t-1]
//   [4W+2]     yRTL_n[t-1]     [4W+3]     yRTL_n[t]
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "predict/trace.h"

namespace oisa::predict {

/// Extracts per-bit feature vectors from consecutive trace records.
class FeatureExtractor {
 public:
  /// `width` — adder width W; output bits 0..W-1 are sum bits, bit W is the
  /// carry-out. `includeOutputBits` — ablation switch for the
  /// {yRTL[t-1], yRTL[t]} features.
  explicit FeatureExtractor(int width, bool includeOutputBits = true);

  [[nodiscard]] std::size_t featureCount() const noexcept {
    return featureCount_;
  }
  [[nodiscard]] int width() const noexcept { return width_; }
  [[nodiscard]] int outputBitCount() const noexcept { return width_ + 1; }

  /// Fills `out` (featureCount() entries) for output bit `bit` at the cycle
  /// described by `current`, with `previous` the preceding cycle's record.
  void extract(const TraceRecord& previous, const TraceRecord& current,
               int bit, std::span<std::uint8_t> out) const;

  /// Convenience allocating overload.
  [[nodiscard]] std::vector<std::uint8_t> extract(
      const TraceRecord& previous, const TraceRecord& current,
      int bit) const;

  /// Human-readable name of feature `index` ("a3[t]", "cin[t-1]",
  /// "yRTL_n[t]", ...), for importance reports.
  [[nodiscard]] std::string featureName(std::size_t index) const;

  /// The golden (RTL) value of output bit `bit` in `rec` (sum or carry).
  [[nodiscard]] static bool goldBit(const TraceRecord& rec, int bit,
                                    int width) noexcept;
  /// The silver (overclocked) value of output bit `bit`.
  [[nodiscard]] static bool silverBit(const TraceRecord& rec, int bit,
                                      int width) noexcept;
  /// Timing class of output bit `bit`: true = timing-erroneous.
  [[nodiscard]] static bool timingErroneous(const TraceRecord& rec, int bit,
                                            int width) noexcept {
    return goldBit(rec, bit, width) != silverBit(rec, bit, width);
  }

 private:
  int width_;
  bool includeOutputBits_;
  std::size_t featureCount_;
};

}  // namespace oisa::predict
