// oisa_predict: per-cycle trace records of an overclocked circuit.
//
// One record captures everything the paper's data-collection step needs at
// a cycle: the input vector x[t], the pure-RTL output yRTL[t] (here: the
// behavioral ISA output, i.e. y_gold), and the gate-level sampled output
// y[t] (y_silver) at the overclocked period. The exact sum y_diamond is
// also carried for the error-combination study.
#pragma once

#include <cstdint>
#include <vector>

namespace oisa::predict {

/// One clock cycle of stimulus and responses.
struct TraceRecord {
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  bool carryIn = false;
  std::uint64_t diamond = 0;      ///< exact sum bits
  bool diamondCout = false;
  std::uint64_t gold = 0;         ///< behavioral/RTL inexact sum bits
  bool goldCout = false;
  std::uint64_t silver = 0;       ///< gate-level overclocked sampled sum bits
  bool silverCout = false;

  /// Full unsigned output values (carry-out composed above the sum bits);
  /// the paper's arithmetic metrics operate on these. At width 64 the
  /// carry-out does not fit in the composed word and is dropped.
  [[nodiscard]] std::uint64_t diamondValue(int width) const noexcept {
    return compose(diamond, diamondCout, width);
  }
  [[nodiscard]] std::uint64_t goldValue(int width) const noexcept {
    return compose(gold, goldCout, width);
  }
  [[nodiscard]] std::uint64_t silverValue(int width) const noexcept {
    return compose(silver, silverCout, width);
  }

 private:
  [[nodiscard]] static std::uint64_t compose(std::uint64_t sum, bool cout,
                                             int width) noexcept {
    if (width >= 64) return sum;
    return sum | (static_cast<std::uint64_t>(cout ? 1 : 0) << width);
  }
};

using Trace = std::vector<TraceRecord>;

}  // namespace oisa::predict
