// Calibration lock: the generic65 cell library and the synthesis flow must
// keep the paper's timing story true — every design signs off at 0.3 ns,
// the exact adder is the most timing-critical, and path delays order the
// designs the way the paper's overclocking results require.
#include <gtest/gtest.h>

#include <map>

#include "circuits/synthesis.h"
#include "timing/sta.h"

namespace {

using oisa::circuits::SynthesisOptions;
using oisa::circuits::synthesize;
using oisa::circuits::synthesizePaperDesigns;
using oisa::timing::CellLibrary;

class CalibrationTest : public ::testing::Test {
 protected:
  static const std::vector<oisa::circuits::SynthesizedDesign>& designs() {
    static const auto all =
        synthesizePaperDesigns(CellLibrary::generic65(), SynthesisOptions{});
    return all;
  }

  static double criticalOf(const std::string& name) {
    for (const auto& d : designs()) {
      if (d.config.name() == name) return d.criticalDelayNs;
    }
    ADD_FAILURE() << "no design " << name;
    return 0.0;
  }
};

TEST_F(CalibrationTest, EveryPaperDesignMeetsTheConstraint) {
  for (const auto& d : designs()) {
    EXPECT_TRUE(d.meetsTiming) << d.config.name();
    EXPECT_LE(d.criticalDelayNs, 0.3) << d.config.name();
    EXPECT_GT(d.criticalDelayNs, 0.05) << d.config.name();
  }
}

TEST_F(CalibrationTest, ExactAdderIsTheMostTimingCritical) {
  const double exact = criticalOf("exact");
  EXPECT_GE(exact, 0.26) << "exact adder should sit just under 0.3 ns";
  for (const auto& d : designs()) {
    if (!d.config.exact) {
      EXPECT_LT(d.criticalDelayNs, exact + 1e-9) << d.config.name();
    }
  }
}

TEST_F(CalibrationTest, EightBitBlocksAreFasterThanSixteen) {
  // The paper's robustness ordering under overclocking requires 8-bit-block
  // ISAs to have more timing headroom than 16-bit-block ones.
  double worst8 = 0.0, best16 = 1.0;
  for (const auto& d : designs()) {
    if (d.config.exact) continue;
    if (d.config.block == 8) {
      worst8 = std::max(worst8, d.criticalDelayNs);
    } else {
      best16 = std::min(best16, d.criticalDelayNs);
    }
  }
  EXPECT_LT(worst8, best16);
}

TEST_F(CalibrationTest, SixteenBitDesignsAreExposedAtDeepOverclock) {
  // At 15% CPR (0.255 ns) the 16-bit-block designs must have paths longer
  // than the clock (they "fall to timing errors" in Fig. 9c), while at 5%
  // CPR (0.285 ns) the 8-bit-block designs must still have headroom.
  for (const auto& d : designs()) {
    if (d.config.exact) continue;
    if (d.config.block == 16) {
      EXPECT_GT(d.criticalDelayNs, 0.255) << d.config.name();
    } else {
      EXPECT_LT(d.criticalDelayNs, 0.285) << d.config.name();
    }
  }
}

TEST_F(CalibrationTest, ExactAdderIsExposedAtFivePercent) {
  EXPECT_GT(criticalOf("exact"), 0.285);
}

TEST_F(CalibrationTest, AreaGrowsWithAccuracyMachinery) {
  // More speculation/compensation hardware costs area: the richest ISA is
  // bigger than the barest one at the same block size.
  std::map<std::string, double> area;
  for (const auto& d : designs()) area[d.config.name()] = d.areaNand2;
  EXPECT_GT(area.at("(8,0,1,6)"), area.at("(8,0,0,0)"));
  EXPECT_GT(area.at("(16,7,0,8)"), area.at("(16,0,0,0)"));
  for (const auto& d : designs()) {
    EXPECT_GT(d.areaNand2, 0.0);
  }
}

TEST_F(CalibrationTest, SynthesisSelectorPrefersCheapTopologies) {
  // With a loose constraint the selector must pick ripple-carry; with the
  // paper constraint a 32-bit exact adder needs a prefix topology.
  const CellLibrary lib = CellLibrary::generic65();
  SynthesisOptions loose;
  loose.targetPeriodNs = 10.0;
  const auto relaxed = synthesize(oisa::core::makeExact(32), lib, loose);
  EXPECT_EQ(relaxed.topology, oisa::circuits::AdderTopology::RippleCarry);

  SynthesisOptions paper;
  const auto tight = synthesize(oisa::core::makeExact(32), lib, paper);
  EXPECT_NE(tight.topology, oisa::circuits::AdderTopology::RippleCarry);
  EXPECT_TRUE(tight.meetsTiming);
}

TEST_F(CalibrationTest, ForcedTopologyIsHonored) {
  const CellLibrary lib = CellLibrary::generic65();
  SynthesisOptions options;
  options.forcedTopology = oisa::circuits::AdderTopology::KoggeStone;
  const auto d = synthesize(oisa::core::makeIsa(8, 0, 0, 4), lib, options);
  EXPECT_EQ(d.topology, oisa::circuits::AdderTopology::KoggeStone);
}

TEST_F(CalibrationTest, RelaxationKeepsSignOff) {
  const CellLibrary lib = CellLibrary::generic65();
  SynthesisOptions options;
  options.relaxSlack = true;
  for (const auto& cfg : oisa::core::paperDesigns()) {
    const auto d = synthesize(cfg, lib, options);
    EXPECT_LE(d.criticalDelayNs, 0.3 + 1e-9) << cfg.name();
  }
}

}  // namespace
