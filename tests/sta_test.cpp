// Static timing analysis tests: arrival/slack math on hand-built netlists,
// fanout-loaded delays, critical-path extraction, and the slack-relaxation
// (power-recovery) pass invariants.
#include <gtest/gtest.h>

#include <random>

#include "circuits/isa_netlist.h"
#include "netlist/netlist.h"
#include "timing/cell_library.h"
#include "timing/delay_annotation.h"
#include "timing/relaxation.h"
#include "timing/sta.h"

namespace {

using oisa::netlist::GateKind;
using oisa::netlist::Netlist;
using oisa::netlist::NetId;
using oisa::timing::CellLibrary;
using oisa::timing::DelayAnnotation;
using oisa::timing::RelaxationOptions;
using oisa::timing::StaResult;

CellLibrary unitLibrary() {
  CellLibrary lib;
  for (const GateKind kind : oisa::netlist::allGateKinds()) {
    lib.cell(kind) = oisa::timing::CellTiming{1.0, 0.0, 1.0};
  }
  lib.cell(GateKind::Const0) = oisa::timing::CellTiming{0.0, 0.0, 0.0};
  lib.cell(GateKind::Const1) = oisa::timing::CellTiming{0.0, 0.0, 0.0};
  return lib;
}

TEST(StaTest, ChainArrivalIsDepthTimesDelay) {
  Netlist nl;
  NetId n = nl.input("a");
  for (int i = 0; i < 5; ++i) n = nl.gate1(GateKind::Inv, n);
  nl.output("y", n);
  const DelayAnnotation delays(nl, unitLibrary());
  const StaResult sta = analyze(nl, delays, 10.0);
  EXPECT_DOUBLE_EQ(sta.criticalDelayNs, 5.0);
  EXPECT_DOUBLE_EQ(sta.worstSlackNs(), 5.0);
  ASSERT_EQ(sta.criticalPath.size(), 5u);
  EXPECT_DOUBLE_EQ(sta.criticalPath.front().arrivalNs, 1.0);
  EXPECT_DOUBLE_EQ(sta.criticalPath.back().arrivalNs, 5.0);
}

TEST(StaTest, ReconvergentPathsTakeWorstArrival) {
  Netlist nl;
  const NetId a = nl.input("a");
  const NetId shortPath = nl.gate1(GateKind::Inv, a);
  NetId longPath = a;
  for (int i = 0; i < 3; ++i) longPath = nl.gate1(GateKind::Buf, longPath);
  const NetId joined = nl.gate2(GateKind::And2, shortPath, longPath);
  nl.output("y", joined);
  const DelayAnnotation delays(nl, unitLibrary());
  const StaResult sta = analyze(nl, delays, 5.0);
  EXPECT_DOUBLE_EQ(sta.criticalDelayNs, 4.0);
  // The short branch finishes at 1 ns but is only required by 5 - 1 = 4 ns
  // (period minus the AND): 3 ns of slack. The long branch has 1 ns.
  const auto& inv = nl.net(shortPath);
  EXPECT_DOUBLE_EQ(sta.gateSlack[inv.driverGate.value], 3.0);
  const auto& join = nl.net(joined);
  EXPECT_DOUBLE_EQ(sta.gateSlack[join.driverGate.value], 1.0);
}

TEST(StaTest, FanoutLoadIncreasesDelay) {
  CellLibrary lib = unitLibrary();
  lib.cell(GateKind::Inv) = oisa::timing::CellTiming{1.0, 0.5, 1.0};
  Netlist nl;
  const NetId a = nl.input("a");
  const NetId hub = nl.gate1(GateKind::Inv, a);
  (void)nl.gate1(GateKind::Buf, hub);
  (void)nl.gate1(GateKind::Buf, hub);
  nl.output("y", nl.gate1(GateKind::Buf, hub));
  const DelayAnnotation delays(nl, lib);
  // hub drives 3 readers -> 1.0 + 0.5 * 2 = 2.0 ns.
  EXPECT_DOUBLE_EQ(delays.delayNs(nl.net(hub).driverGate), 2.0);
}

TEST(StaTest, AreaSumsCellCosts) {
  CellLibrary lib = unitLibrary();
  lib.cell(GateKind::Xor2) = oisa::timing::CellTiming{1.0, 0.0, 2.5};
  Netlist nl;
  const NetId a = nl.input("a");
  const NetId b = nl.input("b");
  (void)nl.gate2(GateKind::Xor2, a, b);
  (void)nl.gate2(GateKind::And2, a, b);
  EXPECT_DOUBLE_EQ(totalArea(nl, lib), 3.5);
}

TEST(StaTest, CriticalPathBacktracksWorstInputs) {
  Netlist nl;
  const NetId a = nl.input("a");
  const NetId b = nl.input("b");
  NetId deep = a;
  for (int i = 0; i < 4; ++i) deep = nl.gate1(GateKind::Buf, deep);
  const NetId shallow = nl.gate1(GateKind::Inv, b);
  nl.output("y", nl.gate2(GateKind::Or2, deep, shallow));
  const DelayAnnotation delays(nl, unitLibrary());
  const StaResult sta = analyze(nl, delays, 10.0);
  ASSERT_EQ(sta.criticalPath.size(), 5u);  // 4 bufs + or
  for (std::size_t i = 0; i + 1 < sta.criticalPath.size(); ++i) {
    EXPECT_LT(sta.criticalPath[i].arrivalNs,
              sta.criticalPath[i + 1].arrivalNs);
  }
  const std::string report = formatCriticalPath(nl, sta);
  EXPECT_NE(report.find("OR2"), std::string::npos);
}

TEST(RelaxationTest, ConsumesSlackWithoutBreakingTiming) {
  // ISA netlist with plenty of slack at 0.3 ns: relaxation should slow
  // non-critical gates but never break the sign-off constraint.
  const auto cfg = oisa::core::makeIsa(8, 0, 0, 4);
  const Netlist nl = oisa::circuits::buildIsaNetlist(cfg);
  const CellLibrary lib = CellLibrary::generic65();
  DelayAnnotation delays(nl, lib);

  RelaxationOptions options;
  options.targetPeriodNs = 0.3;
  const auto report = relaxSlack(nl, delays, options);

  EXPECT_LE(report.criticalBeforeNs, 0.3);
  EXPECT_LE(report.criticalAfterNs, 0.3 + 1e-9);
  EXPECT_GE(report.criticalAfterNs, report.criticalBeforeNs - 1e-9);
  EXPECT_GT(report.meanSlowdown, 1.0);
  EXPECT_LE(report.meanSlowdown, options.maxSlowdown + 1e-9);
}

TEST(RelaxationTest, CapLimitsPerGateSlowdown) {
  Netlist nl;
  NetId n = nl.input("a");
  n = nl.gate1(GateKind::Inv, n);
  nl.output("y", n);
  const CellLibrary lib = unitLibrary();
  DelayAnnotation delays(nl, lib);
  RelaxationOptions options;
  options.targetPeriodNs = 100.0;  // huge slack
  options.maxSlowdown = 1.5;
  options.iterations = 50;
  (void)relaxSlack(nl, delays, options);
  // Even with enormous slack the single gate may slow at most 1.5x.
  EXPECT_LE(delays.delayNs(oisa::netlist::GateId{0}), 1.5 + 1e-9);
}

TEST(DelayAnnotationTest, VariationIsBoundedAndSeeded) {
  const auto cfg = oisa::core::makeExact(32);
  const Netlist nl = oisa::circuits::buildIsaNetlist(cfg);
  const CellLibrary lib = CellLibrary::generic65();
  DelayAnnotation a(nl, lib);
  DelayAnnotation b(nl, lib);
  std::mt19937_64 rngA(5), rngB(5);
  a.applyVariation(rngA, 0.05);
  b.applyVariation(rngB, 0.05);
  bool anyChanged = false;
  for (std::uint32_t g = 0; g < nl.gateCount(); ++g) {
    const oisa::netlist::GateId gid{g};
    EXPECT_DOUBLE_EQ(a.delayNs(gid), b.delayNs(gid));  // deterministic
    EXPECT_GE(a.delayNs(gid), 0.0);
    const DelayAnnotation fresh(nl, lib);
    if (a.delayNs(gid) != fresh.delayNs(gid)) anyChanged = true;
  }
  EXPECT_TRUE(anyChanged);
}

}  // namespace
