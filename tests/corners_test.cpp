// PVT corner and guardband tests.
#include <gtest/gtest.h>

#include "circuits/isa_netlist.h"
#include "timing/corners.h"
#include "timing/sta.h"

namespace {

using oisa::timing::analyzeGuardband;
using oisa::timing::CellLibrary;
using oisa::timing::Corner;
using oisa::timing::cornerDeratingFactor;
using oisa::timing::libraryAtCorner;

TEST(CornerTest, DeratingFactorsAreOrdered) {
  EXPECT_LT(cornerDeratingFactor(Corner::FastFast), 1.0);
  EXPECT_DOUBLE_EQ(cornerDeratingFactor(Corner::TypicalTypical), 1.0);
  EXPECT_GT(cornerDeratingFactor(Corner::SlowSlow), 1.0);
}

TEST(CornerTest, LibraryScalingPreservesArea) {
  const CellLibrary nominal = CellLibrary::generic65();
  const CellLibrary slow = libraryAtCorner(nominal, Corner::SlowSlow);
  for (const auto kind : oisa::netlist::allGateKinds()) {
    EXPECT_DOUBLE_EQ(slow.cell(kind).area, nominal.cell(kind).area);
    EXPECT_NEAR(slow.cell(kind).intrinsicNs,
                nominal.cell(kind).intrinsicNs * 1.25, 1e-12);
  }
}

TEST(CornerTest, GuardbandReportIsConsistent) {
  const auto nl = oisa::circuits::buildIsaNetlist(oisa::core::makeExact(32));
  const auto report = analyzeGuardband(nl, CellLibrary::generic65());
  EXPECT_LT(report.bestDelayNs, report.typicalDelayNs);
  EXPECT_LT(report.typicalDelayNs, report.worstDelayNs);
  EXPECT_NEAR(report.worstDelayNs, report.typicalDelayNs * 1.25, 1e-9);
  EXPECT_GT(report.guardbandNs(), 0.0);
  // A worst-case-designed clock leaves exactly the derating margin on
  // typical silicon: 1 - 1/1.25 = 20% recoverable by overclocking — the
  // headroom the paper's 5..15% CPR points live inside.
  EXPECT_NEAR(report.recoverableFraction(), 0.2, 1e-6);
}

TEST(CornerTest, GuardbandCoversPaperCprRange) {
  // Every paper design's worst-case guardband exceeds the deepest CPR the
  // paper applies (15%), so overclocked operation at TT stays plausible.
  for (const auto& cfg : oisa::core::paperDesigns()) {
    const auto nl = oisa::circuits::buildIsaNetlist(cfg);
    const auto report =
        analyzeGuardband(nl, CellLibrary::generic65());
    EXPECT_GT(report.recoverableFraction(), 0.15) << cfg.name();
  }
}

}  // namespace
