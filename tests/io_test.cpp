// Export-format tests: structural Verilog and VCD waveform dumping.
#include <gtest/gtest.h>

#include <sstream>

#include "circuits/isa_netlist.h"
#include "netlist/verilog.h"
#include "timing/cell_library.h"
#include "timing/event_sim.h"
#include "timing/vcd.h"

namespace {

using oisa::netlist::GateKind;
using oisa::netlist::Netlist;
using oisa::netlist::NetId;
using oisa::netlist::verilogIdentifier;
using oisa::netlist::writeVerilog;
using oisa::timing::VcdWriter;

TEST(VerilogTest, IdentifierSanitization) {
  EXPECT_EQ(verilogIdentifier("abc_123"), "abc_123");
  EXPECT_EQ(verilogIdentifier("(8,0,0,4)"), "_8_0_0_4_");
  EXPECT_EQ(verilogIdentifier("3x"), "n_3x");
  EXPECT_EQ(verilogIdentifier(""), "n_");
}

TEST(VerilogTest, HalfAdderModuleShape) {
  Netlist nl("half");
  const NetId a = nl.input("a");
  const NetId b = nl.input("b");
  nl.output("s", nl.gate2(GateKind::Xor2, a, b));
  nl.output("c", nl.gate2(GateKind::And2, a, b));
  std::ostringstream os;
  writeVerilog(nl, os);
  const std::string v = os.str();
  EXPECT_NE(v.find("module half ("), std::string::npos);
  EXPECT_NE(v.find("input  wire a"), std::string::npos);
  EXPECT_NE(v.find("output wire s"), std::string::npos);
  EXPECT_NE(v.find("^"), std::string::npos);
  EXPECT_NE(v.find("&"), std::string::npos);
  EXPECT_NE(v.find("endmodule"), std::string::npos);
}

TEST(VerilogTest, EveryGateKindHasAnExpression) {
  Netlist nl("allkinds");
  const NetId a = nl.input("a");
  const NetId b = nl.input("b");
  const NetId c = nl.input("c");
  int outIndex = 0;
  for (const GateKind kind : oisa::netlist::allGateKinds()) {
    const int arity = oisa::netlist::gateArity(kind);
    NetId out{};
    if (arity == 0) out = nl.gate(kind, {});
    if (arity == 1) out = nl.gate1(kind, a);
    if (arity == 2) out = nl.gate2(kind, a, b);
    if (arity == 3) out = nl.gate3(kind, a, b, c);
    nl.output("o" + std::to_string(outIndex++), out);
  }
  std::ostringstream os;
  writeVerilog(nl, os);
  const std::string v = os.str();
  EXPECT_NE(v.find("1'b0"), std::string::npos);
  EXPECT_NE(v.find("1'b1"), std::string::npos);
  EXPECT_NE(v.find("? "), std::string::npos);   // mux
  EXPECT_EQ(v.find("1'bx"), std::string::npos); // no unknown kinds
}

TEST(VerilogTest, FullIsaExportsWithoutCollisions) {
  const auto nl =
      oisa::circuits::buildIsaNetlist(oisa::core::makeIsa(8, 2, 1, 4));
  std::ostringstream os;
  writeVerilog(nl, os);
  const std::string v = os.str();
  // One assign per gate plus one per output.
  std::size_t assigns = 0;
  for (std::size_t pos = v.find("assign"); pos != std::string::npos;
       pos = v.find("assign", pos + 1)) {
    ++assigns;
  }
  EXPECT_EQ(assigns, nl.gateCount() + nl.primaryOutputs().size());
}

TEST(VcdTest, RecordsOnlyChanges) {
  Netlist nl("wave");
  const NetId a = nl.input("a");
  nl.output("y", nl.gate1(GateKind::Inv, a));
  VcdWriter vcd = VcdWriter::forPorts(nl);
  const oisa::timing::CellLibrary lib =
      oisa::timing::CellLibrary::generic65();
  const oisa::timing::DelayAnnotation delays(nl, lib);
  oisa::timing::TimedSimulator sim(nl, delays);
  sim.setChangeObserver([&](double t, NetId net, bool v) {
    vcd.record(t, net, v);
  });
  vcd.sample(0.0, sim.netValues());  // initial values
  const std::size_t initial = vcd.changeCount();

  const std::vector<std::uint8_t> one{1}, zero{0};
  sim.applyInputs(one);
  (void)sim.settle();
  sim.applyInputs(one);  // no change: no events
  (void)sim.settle();
  sim.applyInputs(zero);
  (void)sim.settle();
  // a: 0->1->0 (2 changes), y: 1->0->1 (2 changes).
  EXPECT_EQ(vcd.changeCount(), initial + 4);

  std::ostringstream os;
  vcd.write(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("$timescale 1ps $end"), std::string::npos);
  EXPECT_NE(out.find("$var wire 1"), std::string::npos);
  EXPECT_NE(out.find("$enddefinitions"), std::string::npos);
  EXPECT_NE(out.find("#0"), std::string::npos);
}

TEST(VcdTest, TimesAreInPicoseconds) {
  Netlist nl("t");
  const NetId a = nl.input("a");
  nl.output("y", nl.gate1(GateKind::Buf, a));
  VcdWriter vcd(nl, {a});
  vcd.record(0.251, a, true);  // 0.251 ns = 251 ps
  std::ostringstream os;
  vcd.write(os);
  EXPECT_NE(os.str().find("#251"), std::string::npos);
}

TEST(VcdTest, RejectsInvalidNets) {
  Netlist nl("bad");
  (void)nl.input("a");
  EXPECT_THROW(VcdWriter(nl, {NetId{99}}), std::invalid_argument);
}

}  // namespace
