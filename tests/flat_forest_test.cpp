// Flat forest bank tests: SoA flattening vs pointer forests (bit-exact,
// on random datasets and on banks trained from real collected traces),
// the binary envelope v2 (round trips, mmap loads, flip-any-byte /
// truncate-anywhere corruption), and the batch-64 predictFlipsBlock hot
// path vs the scalar reference, including the ragged final block.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstdio>
#include <filesystem>
#include <random>
#include <span>
#include <sstream>
#include <vector>

#include "circuits/synthesis.h"
#include "core/isa_adder.h"
#include "core/status.h"
#include "experiments/trace_collector.h"
#include "experiments/workload.h"
#include "ml/dataset.h"
#include "ml/flat_forest.h"
#include "ml/random_forest.h"
#include "ml/serialize.h"
#include "predict/bit_predictor.h"
#include "timing/cell_library.h"

namespace {

using oisa::core::Status;
using oisa::core::StatusCode;
using oisa::ml::FlatBankView;
using oisa::ml::FlatForest;
using oisa::ml::FlatForestBank;
using oisa::ml::ForestParams;
using oisa::ml::MappedForestBank;
using oisa::ml::RandomForest;
using oisa::predict::BitLevelPredictor;
using oisa::predict::PredictedFlips;
using oisa::predict::PredictorParams;
using oisa::predict::Trace;
using oisa::predict::TraceRecord;

oisa::ml::Dataset randomDataset(std::size_t features, std::size_t rows,
                                std::uint64_t seed) {
  // Label = f0 XOR f2 with noise, so trees grow real structure.
  oisa::ml::Dataset data(features);
  std::mt19937_64 rng(seed);
  std::vector<std::uint8_t> row(features);
  for (std::size_t r = 0; r < rows; ++r) {
    for (auto& f : row) f = static_cast<std::uint8_t>(rng() & 1u);
    bool label = (row[0] ^ row[2]) != 0;
    if ((rng() & 0xfu) == 0) label = !label;
    data.addRow(row, label);
  }
  return data;
}

std::vector<RandomForest> trainForests(std::size_t count,
                                       std::size_t features,
                                       std::uint64_t seed) {
  std::vector<RandomForest> forests;
  for (std::size_t i = 0; i < count; ++i) {
    ForestParams params;
    params.treeCount = 5;
    // Shallow trees keep banks small enough for the O(bytes^2)
    // flip-every-byte / truncate-everywhere corruption sweeps.
    params.tree.maxDepth = 4;
    RandomForest forest;
    forest.fit(randomDataset(features, 200, seed * 31 + i), params, seed + i);
    forests.push_back(std::move(forest));
  }
  return forests;
}

/// Synthetic overclocked-adder trace with transition-sensitized flips
/// (the micro_predict generator, narrowed).
Trace syntheticTrace(int width, std::uint64_t cycles, std::uint64_t seed) {
  const std::uint64_t mask = (std::uint64_t{1} << width) - 1;
  std::mt19937_64 rng(seed);
  Trace trace;
  std::uint64_t prevA = 0;
  for (std::uint64_t t = 0; t < cycles; ++t) {
    TraceRecord rec;
    rec.a = rng() & mask;
    rec.b = rng() & mask;
    const std::uint64_t sum = rec.a + rec.b;
    rec.gold = sum & mask;
    rec.goldCout = ((sum >> width) & 1u) != 0;
    rec.diamond = rec.gold;
    rec.diamondCout = rec.goldCout;
    rec.silver = rec.gold;
    rec.silverCout = rec.goldCout;
    for (const int k : {1, 5, 9}) {
      if (k + 1 >= width) continue;
      const bool carry = ((rec.a >> k) & (rec.b >> k) & 1u) != 0;
      if (carry && ((prevA >> k) & 1u) == 0) {
        rec.silver ^= std::uint64_t{1} << (k + 1);
      }
    }
    if ((rng() & 0x1fu) == 0) rec.silverCout = !rec.silverCout;
    prevA = rec.a;
    trace.push_back(rec);
  }
  return trace;
}

/// Asserts block-path predictions equal the scalar reference pair by
/// pair over the whole trace, sweeping in 64-lane blocks (final ragged).
void expectBlockMatchesReference(const BitLevelPredictor& predictor,
                                 const Trace& trace) {
  const std::size_t rows = trace.size() - 1;
  std::vector<PredictedFlips> flips(rows);
  const std::span<const TraceRecord> records(trace);
  for (std::size_t base = 0; base < rows; base += 64) {
    const std::size_t n = std::min<std::size_t>(64, rows - base);
    predictor.predictFlipsBlock(records.subspan(base, n + 1),
                                std::span(flips).subspan(base, n));
  }
  for (std::size_t r = 0; r < rows; ++r) {
    const PredictedFlips ref =
        predictor.predictFlipsReference(trace[r], trace[r + 1]);
    ASSERT_EQ(flips[r].sumFlips, ref.sumFlips) << "row " << r;
    ASSERT_EQ(flips[r].coutFlip, ref.coutFlip) << "row " << r;
  }
}

TEST(FlatForestTest, MatchesPointerForestsOnRandomDatasets) {
  for (const std::uint64_t seed : {7u, 19u, 83u}) {
    constexpr std::size_t kFeatures = 12;
    const auto forests = trainForests(4, kFeatures, seed);
    const FlatForestBank bank = FlatForestBank::build(forests, kFeatures);
    ASSERT_TRUE(oisa::ml::validateFlatBank(bank.view()).isOk());
    std::mt19937_64 rng(seed ^ 0xabcdu);
    std::vector<std::uint8_t> row(kFeatures);
    for (int r = 0; r < 200; ++r) {
      for (auto& f : row) f = static_cast<std::uint8_t>(rng() & 1u);
      for (std::size_t i = 0; i < forests.size(); ++i) {
        const FlatForest flat(bank.view(), i);
        ASSERT_DOUBLE_EQ(flat.probability(row),
                         forests[i].predictProbability(row));
        ASSERT_EQ(flat.predict(row), forests[i].predict(row));
      }
    }
  }
}

TEST(FlatForestTest, PredictWordMatchesScalarLaneForLane) {
  constexpr std::size_t kFeatures = 10;
  const auto forests = trainForests(3, kFeatures, 5);
  const FlatForestBank bank = FlatForestBank::build(forests, kFeatures);
  std::mt19937_64 rng(99);
  // 64 random rows as bit-columns: featureWords[f] bit `lane` = row value.
  std::array<std::vector<std::uint8_t>, 64> rows;
  std::vector<std::uint64_t> featureWords(kFeatures, 0);
  for (std::size_t lane = 0; lane < 64; ++lane) {
    rows[lane].resize(kFeatures);
    for (std::size_t f = 0; f < kFeatures; ++f) {
      rows[lane][f] = static_cast<std::uint8_t>(rng() & 1u);
      if (rows[lane][f] != 0) featureWords[f] |= std::uint64_t{1} << lane;
    }
  }
  std::array<double, 64> sums{};
  for (std::size_t i = 0; i < forests.size(); ++i) {
    const FlatForest flat(bank.view(), i);
    sums.fill(0.0);
    const std::uint64_t word = flat.predictWord(featureWords, sums.data());
    for (std::size_t lane = 0; lane < 64; ++lane) {
      ASSERT_DOUBLE_EQ(sums[lane], forests[i].predictProbability(rows[lane]));
      ASSERT_EQ(((word >> lane) & 1u) != 0, forests[i].predict(rows[lane]));
    }
  }
}

TEST(FlatForestTest, ValidateRejectsStructuralViolations) {
  const auto forests = trainForests(2, 8, 11);
  const FlatForestBank bank = FlatForestBank::build(forests, 8);
  const FlatBankView good = bank.view();
  ASSERT_TRUE(oisa::ml::validateFlatBank(good).isOk());

  // Each doctored copy must be rejected even though its CRC would be
  // valid if re-serialized: validation is structural, not checksummed.
  auto copyArrays = [&] {
    struct Arrays {
      std::vector<std::uint32_t> forestBegin;
      std::vector<std::uint32_t> roots, left, right;
      std::vector<std::int16_t> feature;
      std::vector<float> prob;
      FlatBankView view(std::uint32_t featureCount) const {
        FlatBankView v;
        v.forestBegin = forestBegin;
        v.roots = roots;
        v.feature = feature;
        v.left = left;
        v.right = right;
        v.prob = prob;
        v.featureCount = featureCount;
        return v;
      }
    } a;
    a.forestBegin.assign(good.forestBegin.begin(), good.forestBegin.end());
    a.roots.assign(good.roots.begin(), good.roots.end());
    a.feature.assign(good.feature.begin(), good.feature.end());
    a.left.assign(good.left.begin(), good.left.end());
    a.right.assign(good.right.begin(), good.right.end());
    a.prob.assign(good.prob.begin(), good.prob.end());
    return a;
  };

  {  // A split node whose child does not follow it (cycle potential).
    auto a = copyArrays();
    for (std::size_t i = 0; i < a.feature.size(); ++i) {
      if (a.feature[i] >= 0) {
        a.left[i] = static_cast<std::uint32_t>(i);
        break;
      }
    }
    EXPECT_EQ(oisa::ml::validateFlatBank(a.view(8)).code(),
              StatusCode::Corruption);
  }
  {  // Root index out of range.
    auto a = copyArrays();
    a.roots[0] = static_cast<std::uint32_t>(a.feature.size());
    EXPECT_EQ(oisa::ml::validateFlatBank(a.view(8)).code(),
              StatusCode::Corruption);
  }
  {  // Split feature beyond the declared feature count.
    auto a = copyArrays();
    EXPECT_EQ(oisa::ml::validateFlatBank(a.view(1)).code(),
              StatusCode::Corruption);
  }
  {  // Non-monotonic forest offsets.
    auto a = copyArrays();
    a.forestBegin.back() = 0;
    EXPECT_EQ(oisa::ml::validateFlatBank(a.view(8)).code(),
              StatusCode::Corruption);
  }
}

TEST(EnvelopeV2Test, RoundTripsThroughBufferAndFile) {
  const auto forests = trainForests(3, 9, 23);
  const FlatForestBank bank = FlatForestBank::build(forests, 9);
  const std::string bytes = oisa::ml::serializeFlatBank(bank.view(), 17, 1);

  auto fromBuf = MappedForestBank::fromBuffer(bytes);
  ASSERT_TRUE(fromBuf.isOk()) << fromBuf.status().toString();
  const MappedForestBank inMemory = std::move(fromBuf).valueOrThrow();
  EXPECT_EQ(inMemory.meta0(), 17u);
  EXPECT_EQ(inMemory.meta1(), 1u);
  EXPECT_FALSE(inMemory.mapped());

  const auto path =
      (std::filesystem::temp_directory_path() / "flat_forest_test.ffb")
          .string();
  ASSERT_TRUE(oisa::ml::writeFlatBankFile(path, bank.view(), 17, 1).isOk());
  auto fromFile = MappedForestBank::open(path);
  ASSERT_TRUE(fromFile.isOk()) << fromFile.status().toString();
  const MappedForestBank mapped = std::move(fromFile).valueOrThrow();
  std::remove(path.c_str());

  for (const MappedForestBank* loaded : {&inMemory, &mapped}) {
    const FlatBankView v = loaded->view();
    const FlatBankView w = bank.view();
    ASSERT_TRUE(oisa::ml::validateFlatBank(v).isOk());
    ASSERT_EQ(v.featureCount, w.featureCount);
    ASSERT_TRUE(std::ranges::equal(v.forestBegin, w.forestBegin));
    ASSERT_TRUE(std::ranges::equal(v.roots, w.roots));
    ASSERT_TRUE(std::ranges::equal(v.feature, w.feature));
    ASSERT_TRUE(std::ranges::equal(v.left, w.left));
    ASSERT_TRUE(std::ranges::equal(v.right, w.right));
    ASSERT_TRUE(std::ranges::equal(v.prob, w.prob));
  }
}

TEST(EnvelopeV2Test, FlippingAnyByteIsCorruption) {
  const auto forests = trainForests(2, 6, 3);
  const FlatForestBank bank = FlatForestBank::build(forests, 6);
  const std::string bytes = oisa::ml::serializeFlatBank(bank.view());
  ASSERT_TRUE(MappedForestBank::fromBuffer(bytes).isOk());
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    std::string corrupt = bytes;
    corrupt[i] = static_cast<char>(corrupt[i] ^ 0x5a);
    const auto result = MappedForestBank::fromBuffer(std::move(corrupt));
    ASSERT_FALSE(result.isOk()) << "byte " << i << " flip went undetected";
    ASSERT_EQ(result.status().code(), StatusCode::Corruption) << "byte " << i;
  }
}

TEST(EnvelopeV2Test, TruncatingAnywhereIsCorruption) {
  const auto forests = trainForests(2, 6, 13);
  const FlatForestBank bank = FlatForestBank::build(forests, 6);
  const std::string bytes = oisa::ml::serializeFlatBank(bank.view());
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    const auto result = MappedForestBank::fromBuffer(bytes.substr(0, len));
    ASSERT_FALSE(result.isOk()) << "truncation to " << len << " undetected";
    ASSERT_EQ(result.status().code(), StatusCode::Corruption) << "len " << len;
  }
}

TEST(PredictFlipsBlockTest, MatchesScalarIncludingRaggedFinalBlock) {
  // 150 pairs = two full 64-lane blocks + a ragged 22-lane tail.
  const Trace train = syntheticTrace(16, 1500, 71);
  const Trace test = syntheticTrace(16, 151, 72);
  PredictorParams params;
  params.forest.treeCount = 6;
  BitLevelPredictor predictor(16, params);
  predictor.fit(train);
  expectBlockMatchesReference(predictor, test);
}

TEST(PredictFlipsBlockTest, GuardsAgainstMisuse) {
  const Trace train = syntheticTrace(8, 600, 5);
  BitLevelPredictor predictor(8);
  predictor.fit(train);
  std::array<PredictedFlips, 4> out;
  const std::span<const TraceRecord> records(train);
  EXPECT_THROW(predictor.predictFlipsBlock(records.first(1),
                                           std::span(out).first(0)),
               std::invalid_argument);
  EXPECT_THROW(predictor.predictFlipsBlock(records.first(5),
                                           std::span(out).first(3)),
               std::invalid_argument);
  EXPECT_THROW(predictor.predictFlipsBlock(records.first(66),
                                           std::span(out)),
               std::invalid_argument);
}

TEST(FlatBankPersistenceTest, SaveFlatLoadFlatServesIdentically) {
  const Trace train = syntheticTrace(12, 1200, 29);
  const Trace test = syntheticTrace(12, 300, 30);
  PredictorParams params;
  params.forest.treeCount = 6;
  BitLevelPredictor predictor(12, params);
  predictor.fit(train);

  const auto path =
      (std::filesystem::temp_directory_path() / "flat_bank_persist.ffb")
          .string();
  ASSERT_TRUE(predictor.saveFlat(path).isOk());
  auto loadedOr = BitLevelPredictor::loadFlat(path);
  ASSERT_TRUE(loadedOr.isOk()) << loadedOr.status().toString();
  const BitLevelPredictor loaded = std::move(loadedOr).valueOrThrow();
  std::remove(path.c_str());

  EXPECT_TRUE(loaded.trained());
  EXPECT_EQ(loaded.width(), predictor.width());
  const auto evalA = predictor.evaluate(test);
  const auto evalB = loaded.evaluate(test);
  EXPECT_EQ(evalA.abper, evalB.abper);
  EXPECT_EQ(evalA.avpe, evalB.avpe);
  for (std::size_t r = 0; r + 1 < test.size(); ++r) {
    const PredictedFlips a = predictor.predictFlips(test[r], test[r + 1]);
    const PredictedFlips b = loaded.predictFlips(test[r], test[r + 1]);
    ASSERT_EQ(a.sumFlips, b.sumFlips);
    ASSERT_EQ(a.coutFlip, b.coutFlip);
  }

  // A flat-loaded bank carries no pointer forests: the text envelope and
  // the scalar reference path are unavailable, explicitly.
  std::ostringstream os;
  EXPECT_EQ(loaded.write(os).code(), StatusCode::InvalidInput);
  EXPECT_THROW((void)loaded.predictFlipsReference(test[0], test[1]),
               std::logic_error);
}

TEST(FlatBankPersistenceTest, LoadFlatRejectsForeignBanks) {
  // A structurally valid envelope whose forest count does not match any
  // predictor geometry (meta0 width + 1 forests) must be refused.
  const auto forests = trainForests(3, 8, 47);
  const FlatForestBank bank = FlatForestBank::build(forests, 8);
  const auto path =
      (std::filesystem::temp_directory_path() / "flat_bank_foreign.ffb")
          .string();
  ASSERT_TRUE(oisa::ml::writeFlatBankFile(path, bank.view(), 8, 1).isOk());
  EXPECT_FALSE(BitLevelPredictor::loadFlat(path).isOk());
  std::remove(path.c_str());
}

TEST(FlatForestTest, TrainedFigureBanksMatchPointerPath) {
  // Banks trained from real collected traces of a paper design at every
  // figure CPR point: the flat block path must match the pointer-forest
  // scalar reference on every evaluation pair.
  const auto lib = oisa::timing::CellLibrary::generic65();
  oisa::circuits::SynthesisOptions synth;
  synth.relaxSlack = true;
  const auto design =
      oisa::circuits::synthesize(oisa::core::makeIsa(16, 2, 0, 4), lib, synth);
  for (const double cpr : {5.0, 10.0, 15.0}) {
    const double period = oisa::experiments::overclockedPeriodNs(0.3, cpr);
    auto trainWl = oisa::experiments::makeWorkload("uniform", 32, 7);
    auto testWl = oisa::experiments::makeWorkload("uniform", 32, 8);
    const Trace train =
        oisa::experiments::collectTrace(design, period, *trainWl, 700);
    const Trace test =
        oisa::experiments::collectTrace(design, period, *testWl, 200);
    PredictorParams params;
    params.forest.treeCount = 5;
    BitLevelPredictor predictor(32, params);
    predictor.fit(train);
    ASSERT_TRUE(oisa::ml::validateFlatBank(predictor.flatView()).isOk())
        << "cpr " << cpr;
    expectBlockMatchesReference(predictor, test);
  }
}

}  // namespace
