// Sharded-campaign tests: slice partitioning, worker-spec and cell-list
// parsing, the heartbeat protocol, and the full supervisor loop driven
// by fake workers — clean completion, crash-restart-resume, spawn-fault
// retry, poison-cell quarantine, lost-D absolution and restart-budget
// exhaustion.
//
// This binary provides its own main(): re-invoked with --fake-worker it
// becomes a scriptable shard worker (complete cells, crash on cue, drop
// protocol lines), which is how the supervisor tests exercise real
// fork/exec, real SIGABRT deaths and real snapshot merging without the
// cost of a real campaign.
#include <gtest/gtest.h>

#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "core/fault_inject.h"
#include "core/status.h"
#include "core/subprocess.h"
#include "experiments/checkpoint.h"
#include "experiments/cli.h"
#include "experiments/shard.h"
#include "obs/metrics.h"

namespace {

using oisa::core::ProcessExit;
using oisa::core::ScopedFaultPlan;
using oisa::core::StatusCode;
using oisa::experiments::formatCellList;
using oisa::experiments::GridCheckpoint;
using oisa::experiments::HeartbeatEmitter;
using oisa::experiments::parseCellList;
using oisa::experiments::PayloadReader;
using oisa::experiments::PayloadWriter;
using oisa::experiments::QuarantinedCell;
using oisa::experiments::runShardSupervisor;
using oisa::experiments::shardCheckpointPath;
using oisa::experiments::ShardReport;
using oisa::experiments::ShardSlice;
using oisa::experiments::ShardSupervisorOptions;
using oisa::experiments::ShardWorkerSpec;

constexpr std::uint64_t kFakeFingerprint = 0xF00DF00Dull;
constexpr std::uint64_t kNoCell = ~std::uint64_t{0};

std::string gSelfPath;  // set in main() before RUN_ALL_TESTS

// Fresh checkpoint base path: stale snapshots from a previous run would
// let fake workers resume instead of exercising their crash cues.
std::string tempBase(const std::string& name) {
  const std::string base = testing::TempDir() + "oisa_shard_" + name + ".bin";
  std::remove(base.c_str());
  for (unsigned i = 0; i < 8; ++i) {
    std::remove(shardCheckpointPath(base, i).c_str());
  }
  return base;
}

// --- slice / spec / cell-list units ------------------------------------

TEST(ShardSliceTest, RoundRobinPartitionIsDisjointAndComplete) {
  constexpr unsigned kShards = 3;
  constexpr std::uint64_t kCells = 17;
  std::size_t totalOwned = 0;
  for (std::uint64_t cell = 0; cell < kCells; ++cell) {
    unsigned owners = 0;
    for (unsigned i = 0; i < kShards; ++i) {
      const ShardSlice slice{i, kShards, {}};
      owners += slice.owns(cell) ? 1 : 0;
    }
    EXPECT_EQ(owners, 1u) << "cell " << cell;  // disjoint cover
  }
  for (unsigned i = 0; i < kShards; ++i) {
    totalOwned += ShardSlice{i, kShards, {}}.ownedCells(kCells);
  }
  EXPECT_EQ(totalOwned, kCells);
}

TEST(ShardSliceTest, DefaultSliceOwnsEverything) {
  const ShardSlice slice;
  for (std::uint64_t cell : {0ull, 1ull, 99ull, 12345ull}) {
    EXPECT_TRUE(slice.owns(cell));
  }
  EXPECT_EQ(slice.ownedCells(1000), 1000u);
}

TEST(ShardSliceTest, SkipCellsAreNeverOwned) {
  ShardSlice slice{1, 2, {3, 7}};  // owns odd cells minus the skip list
  EXPECT_TRUE(slice.owns(1));
  EXPECT_TRUE(slice.owns(5));
  EXPECT_FALSE(slice.owns(3));  // quarantined
  EXPECT_FALSE(slice.owns(7));  // quarantined
  EXPECT_FALSE(slice.owns(4));  // other shard's residue class
  EXPECT_EQ(slice.ownedCells(10), 3u);  // 1, 5, 9
  // A skip list also bites with count == 1 (the post-merge final pass).
  const ShardSlice finalPass{0, 1, {5}};
  EXPECT_FALSE(finalPass.owns(5));
  EXPECT_EQ(finalPass.ownedCells(10), 9u);
}

TEST(ShardWorkerSpecTest, ParsesIndexSlashCount) {
  const auto spec = ShardWorkerSpec::parse("2/4");
  ASSERT_TRUE(spec.isOk());
  EXPECT_EQ(spec.value().index, 2u);
  EXPECT_EQ(spec.value().count, 4u);
}

TEST(ShardWorkerSpecTest, RejectsNonsense) {
  for (const char* bad : {"", "3", "/4", "4/", "4/4", "5/4", "a/b", "1/0",
                          "1/2/3", "-1/4", "2097153/2097154"}) {
    const auto spec = ShardWorkerSpec::parse(bad);
    EXPECT_FALSE(spec.isOk()) << "'" << bad << "'";
    EXPECT_EQ(spec.status().code(), StatusCode::InvalidInput);
    // The diagnostic names the flag and echoes the offending text.
    EXPECT_NE(spec.status().message().find("--shard-worker"),
              std::string::npos);
  }
}

TEST(CellListTest, ParsesSortsAndDeduplicates) {
  const auto cells = parseCellList("25,3,17,3");
  ASSERT_TRUE(cells.isOk());
  EXPECT_EQ(cells.value(), (std::vector<std::uint64_t>{3, 17, 25}));
  EXPECT_EQ(formatCellList(cells.value()), "3,17,25");
  const auto empty = parseCellList("");
  ASSERT_TRUE(empty.isOk());
  EXPECT_TRUE(empty.value().empty());
}

TEST(CellListTest, RoundTripsThroughFormat) {
  const std::vector<std::uint64_t> cells{0, 7, 42, 1000000};
  const auto back = parseCellList(formatCellList(cells));
  ASSERT_TRUE(back.isOk());
  EXPECT_EQ(back.value(), cells);
}

TEST(CellListTest, RejectsMalformedItems) {
  for (const char* bad : {"3,x", "1,2,-3", "0x10"}) {
    const auto cells = parseCellList(bad);
    EXPECT_FALSE(cells.isOk()) << "'" << bad << "'";
    EXPECT_EQ(cells.status().code(), StatusCode::InvalidInput);
  }
}

TEST(ShardPathTest, AppendsShardSuffix) {
  EXPECT_EQ(shardCheckpointPath("/tmp/run.bin", 0), "/tmp/run.bin.shard0");
  EXPECT_EQ(shardCheckpointPath("/tmp/run.bin", 12), "/tmp/run.bin.shard12");
}

// --- heartbeat emitter --------------------------------------------------

std::string readAll(int fd) {
  std::string out;
  char buf[256];
  ssize_t n;
  while ((n = ::read(fd, buf, sizeof buf)) > 0) {
    out.append(buf, static_cast<std::size_t>(n));
  }
  return out;
}

TEST(HeartbeatEmitterTest, WritesNewlineFramedProtocolLines) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  {
    HeartbeatEmitter hb(fds[1]);
    hb.cellStart(7);
    hb.cellDone(7);
    hb.retries(2);
    hb.tick();
  }
  ::close(fds[1]);
  EXPECT_EQ(readAll(fds[0]), "S 7\nD 7\nR 2\nH\n");
  ::close(fds[0]);
}

TEST(HeartbeatEmitterTest, FaultSiteDropsLinesSilently) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  {
    ScopedFaultPlan plan("worker.heartbeat:2+");
    HeartbeatEmitter hb(fds[1]);
    hb.cellStart(9);  // hit 1: delivered
    hb.cellDone(9);   // hit 2+: dropped — the worker looks dead upstream
    hb.tick();
  }
  ::close(fds[1]);
  EXPECT_EQ(readAll(fds[0]), "S 9\n");
  ::close(fds[0]);
}

// --- supervisor with fake workers --------------------------------------

struct FakeFleet {
  unsigned shards = 2;
  std::uint64_t cells = 8;
  std::string base;
  std::vector<std::string> extraArgs;  ///< crash cues for every worker

  ShardSupervisorOptions options() const {
    ShardSupervisorOptions sup;
    sup.shards = shards;
    sup.binary = gSelfPath;
    sup.checkpointBase = base;
    sup.cellCount = cells;
    sup.heartbeatTimeoutSec = 0;  // stall-kill off: aborts drive these tests
    sup.restartBackoffMs = 1;     // keep restart loops fast
    const std::uint64_t cellCount = cells;
    const unsigned shardCount = shards;
    const std::string basePath = base;
    const std::vector<std::string> extra = extraArgs;
    sup.buildWorkerArgs = [cellCount, shardCount, basePath, extra](
                              unsigned shard,
                              const std::vector<std::uint64_t>& quarantined) {
      std::vector<std::string> args{
          "--fake-worker",
          "--shard-worker=" + std::to_string(shard) + "/" +
              std::to_string(shardCount),
          "--base=" + basePath, "--cells=" + std::to_string(cellCount)};
      if (!quarantined.empty()) {
        args.push_back("--quarantine=" + formatCellList(quarantined));
      }
      args.insert(args.end(), extra.begin(), extra.end());
      return args;
    };
    return sup;
  }
};

// The payload the fake worker records for `cell` (mirrored in
// fakeWorkerMain below).
std::uint64_t fakePayloadValue(std::uint64_t cell) { return cell * 3 + 1; }

void expectMergedSnapshotComplete(const std::string& base,
                                  std::uint64_t cells,
                                  const std::set<std::uint64_t>& missing) {
  const auto merged = GridCheckpoint::loadFrom(base);
  ASSERT_TRUE(merged.isOk()) << merged.status().toString();
  EXPECT_EQ(merged.value().fingerprint(), kFakeFingerprint);
  EXPECT_EQ(merged.value().cellCount(), cells);
  for (std::uint64_t cell = 0; cell < cells; ++cell) {
    const std::string* payload = merged.value().payload(cell);
    if (missing.count(cell) != 0) {
      EXPECT_EQ(payload, nullptr) << "cell " << cell;
      continue;
    }
    ASSERT_NE(payload, nullptr) << "cell " << cell;
    PayloadReader r(*payload);
    EXPECT_EQ(r.u64(), fakePayloadValue(cell));
    EXPECT_TRUE(r.ok() && r.atEnd());
  }
}

TEST(ShardSupervisorTest, CleanRunCompletesAndMergesAllCells) {
  FakeFleet fleet;
  fleet.base = tempBase("clean");
  const auto report = runShardSupervisor(fleet.options());
  ASSERT_TRUE(report.isOk()) << report.status().toString();
  EXPECT_EQ(report.value().restarts, 0u);
  EXPECT_TRUE(report.value().quarantined.empty());
  EXPECT_TRUE(report.value().absolved.empty());
  EXPECT_EQ(report.value().cellsDone, fleet.cells);
  expectMergedSnapshotComplete(fleet.base, fleet.cells, {});
}

TEST(ShardSupervisorTest, FleetCountersSumWorkerDeltasExactly) {
  // Each fake worker bumps obs counter "fake.cells" once per completed
  // cell and streams the delta over the heartbeat pipe ("M" lines); on a
  // clean run the supervisor's rollup must equal the total cell count —
  // the exactness the merged-metrics acceptance check relies on.
  FakeFleet fleet;
  fleet.base = tempBase("fleet_metrics");
  const auto report = runShardSupervisor(fleet.options());
  ASSERT_TRUE(report.isOk()) << report.status().toString();
  ASSERT_EQ(report.value().fleetCounters.count("fake.cells"), 1u);
  EXPECT_EQ(report.value().fleetCounters.at("fake.cells"), fleet.cells);
  EXPECT_EQ(report.value().fleetCounters.at("fake.cells"),
            report.value().cellsDone);
}

TEST(ShardSupervisorTest, CrashedWorkerIsRestartedAndResumes) {
  FakeFleet fleet;
  fleet.base = tempBase("crash_once");
  // Every worker aborts after its first fresh cell — but only on its
  // first incarnation (a resumed snapshot disables the cue), so each
  // shard needs exactly one restart and its second life resumes the
  // completed cell instead of recomputing it.
  fleet.extraArgs = {"--crash-after-first"};
  const auto report = runShardSupervisor(fleet.options());
  ASSERT_TRUE(report.isOk()) << report.status().toString();
  EXPECT_EQ(report.value().restarts, fleet.shards);
  EXPECT_TRUE(report.value().quarantined.empty());
  EXPECT_EQ(report.value().cellsDone, fleet.cells);
  expectMergedSnapshotComplete(fleet.base, fleet.cells, {});
}

TEST(ShardSupervisorTest, SpawnFaultIsRetriedWithBackoff) {
  FakeFleet fleet;
  fleet.base = tempBase("spawn_fault");
  ScopedFaultPlan plan("worker.spawn:1");  // first fork/exec fails
  const auto report = runShardSupervisor(fleet.options());
  ASSERT_TRUE(report.isOk()) << report.status().toString();
  EXPECT_EQ(report.value().restarts, 1u);  // the failed spawn, retried
  EXPECT_EQ(report.value().cellsDone, fleet.cells);
  expectMergedSnapshotComplete(fleet.base, fleet.cells, {});
}

TEST(ShardSupervisorTest, PoisonCellIsQuarantinedAfterKStrikes) {
  FakeFleet fleet;
  fleet.base = tempBase("poison");
  fleet.extraArgs = {"--poison=5"};  // SIGABRT whenever cell 5 is started
  auto options = fleet.options();
  options.maxCellStrikes = 2;
  const auto report = runShardSupervisor(options);
  ASSERT_TRUE(report.isOk()) << report.status().toString();
  ASSERT_EQ(report.value().quarantined.size(), 1u);
  const QuarantinedCell& q = report.value().quarantined.front();
  EXPECT_EQ(q.cell, 5u);
  EXPECT_EQ(q.shard, 5u % fleet.shards);
  EXPECT_EQ(q.strikes, 2u);
  EXPECT_EQ(q.lastExit.kind, ProcessExit::Kind::Signaled);
  EXPECT_EQ(q.lastExit.signal, SIGABRT);
  EXPECT_FALSE(q.stalled);
  EXPECT_EQ(report.value().cellsDone, fleet.cells - 1);
  // Every healthy cell survives; only the poison cell is missing.
  expectMergedSnapshotComplete(fleet.base, fleet.cells, {5});
}

TEST(ShardSupervisorTest, LostDoneLineIsAbsolvedAfterMerge) {
  FakeFleet fleet;
  fleet.base = tempBase("absolve");
  // The worker completes cell 3 and saves its payload but dies before
  // the "D 3" line: to the supervisor that is an in-flight death, so the
  // cell is struck and (at one strike) quarantined — until the merge
  // finds its payload and absolves it.
  fleet.extraArgs = {"--drop-done=3"};
  auto options = fleet.options();
  options.maxCellStrikes = 1;
  const auto report = runShardSupervisor(options);
  ASSERT_TRUE(report.isOk()) << report.status().toString();
  EXPECT_TRUE(report.value().quarantined.empty());
  EXPECT_EQ(report.value().absolved,
            (std::vector<std::uint64_t>{3}));
  EXPECT_EQ(report.value().cellsDone, fleet.cells);
  expectMergedSnapshotComplete(fleet.base, fleet.cells, {});
}

TEST(ShardSupervisorTest, RestartBudgetExhaustionIsIoError) {
  FakeFleet fleet;
  fleet.base = tempBase("budget");
  fleet.extraArgs = {"--fail-always"};  // exit 1 before doing anything
  auto options = fleet.options();
  options.maxRestartsPerShard = 2;
  const auto report = runShardSupervisor(options);
  ASSERT_FALSE(report.isOk());
  EXPECT_EQ(report.status().code(), StatusCode::IoError);
  EXPECT_NE(report.status().message().find("restart budget"),
            std::string::npos);
}

TEST(ShardSupervisorTest, RejectsUnusableOptions) {
  ShardSupervisorOptions options;
  options.binary = gSelfPath;
  options.checkpointBase = "";  // merging needs a base path
  auto report = runShardSupervisor(options);
  ASSERT_FALSE(report.isOk());
  EXPECT_EQ(report.status().code(), StatusCode::InvalidInput);

  options.checkpointBase = tempBase("opts");
  options.binary = "";
  report = runShardSupervisor(options);
  ASSERT_FALSE(report.isOk());
  EXPECT_EQ(report.status().code(), StatusCode::InvalidInput);
}

// --- fake worker --------------------------------------------------------

// The scriptable shard worker this binary becomes under --fake-worker.
// Completes the cells its slice owns (resuming from its shard snapshot,
// saving after every cell) and obeys crash cues:
//   --crash-after-first  SIGABRT after the first fresh cell, first
//                        incarnation only (restart/resume tests)
//   --poison=C           SIGABRT whenever cell C starts (quarantine)
//   --drop-done=C        complete + save cell C but die before its D
//                        line (absolution)
//   --fail-always        exit 1 immediately (restart-budget tests)
int fakeWorkerMain(int argc, char** argv) {
  using namespace oisa;
  const experiments::ArgParser args(argc, argv);
  if (args.getBool("fail-always", false)) return 1;

  const auto spec =
      experiments::ShardWorkerSpec::parse(
          args.getString("shard-worker", "0/1"))
          .valueOrThrow();
  const std::string base = args.getString("base", "");
  const std::uint64_t cells = args.getU64("cells", 0);
  const std::uint64_t poison = args.getU64("poison", kNoCell);
  const std::uint64_t dropDone = args.getU64("drop-done", kNoCell);

  experiments::ShardSlice slice;
  slice.index = spec.index;
  slice.count = spec.count;
  slice.skipCells =
      experiments::parseCellList(args.getString("quarantine", ""))
          .valueOrThrow();

  const auto hb = HeartbeatEmitter::fromEnv();
  const std::string path = shardCheckpointPath(base, spec.index);
  GridCheckpoint snap(kFakeFingerprint, cells);
  bool firstIncarnation = true;
  if (auto loaded = GridCheckpoint::loadFrom(path); loaded.isOk()) {
    firstIncarnation = loaded.value().completedCells() == 0;
    snap = std::move(loaded).value();
  }

  bool completedFresh = false;
  for (std::uint64_t cell = 0; cell < cells; ++cell) {
    if (!slice.owns(cell)) continue;
    if (snap.payload(cell) != nullptr) continue;
    if (hb) hb->cellStart(cell);
    if (cell == poison) std::abort();
    PayloadWriter w;
    w.u64(fakePayloadValue(cell));
    snap.record(cell, w.take());
    if (!snap.saveTo(path).isOk()) return 2;
    if (cell == dropDone) std::abort();  // payload saved, D never sent
    if (hb) hb->cellDone(cell);
    // Stream the metric delta the way a real worker's ticker would, so
    // the supervisor's fleet rollup can be asserted on exactly.
    oisa::obs::counter("fake.cells").add();
    if (hb) hb->metricsFlush();
    if (completedFresh) continue;
    completedFresh = true;
    if (firstIncarnation && args.getBool("crash-after-first", false)) {
      std::abort();
    }
  }
  if (!snap.saveTo(path).isOk()) return 2;
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--fake-worker") {
      return fakeWorkerMain(argc, argv);
    }
  }
  gSelfPath = oisa::core::selfExecutablePath(argv[0]);
  testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
