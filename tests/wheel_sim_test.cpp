// Differential tests of the integer-time wheel engine (TimedSimulator)
// against the retained seed heap engine (HeapSimulator): both run on the
// same integer-picosecond grid, so agreement is exact — per-cycle sampled
// outputs, final net state, and committed-event counts. Also covers the
// ps quantization rules, wheel-specific edge cases, and the GridScheduler
// determinism contract (bit-identical sweeps at any thread count).
#include <gtest/gtest.h>

#include <atomic>
#include <random>
#include <stdexcept>

#include "circuits/isa_netlist.h"
#include "circuits/synthesis.h"
#include "core/isa_config.h"
#include "experiments/grid_scheduler.h"
#include "experiments/runner.h"
#include "netlist/gate.h"
#include "timing/cell_library.h"
#include "timing/delay_annotation.h"
#include "timing/event_sim.h"
#include "timing/heap_sim.h"
#include "timing/sta.h"

#include "differential_harness.h"

namespace {

using oisa::circuits::packOperands;
using oisa::netlist::GateKind;
using oisa::netlist::Netlist;
using oisa::netlist::NetId;
using oisa::timing::CellLibrary;
using oisa::timing::DelayAnnotation;
using oisa::timing::HeapSimulator;
using oisa::timing::TimedSimulator;
using oisa::timing::TimePs;

using oisa::testing::randomNetlist;
using oisa::testing::unitLibrary;

std::vector<std::uint8_t> randomInputs(std::mt19937_64& rng,
                                       std::size_t count) {
  std::vector<std::uint8_t> in(count);
  for (auto& v : in) v = static_cast<std::uint8_t>(rng() & 1);
  return in;
}

/// Drives both engines through `cycles` clocked cycles and asserts exact
/// agreement on every sample, the final committed-event count, and every
/// net value.
void expectEnginesAgree(const Netlist& nl, const DelayAnnotation& delays,
                        TimePs periodPs, std::uint64_t cycles,
                        std::uint64_t stimulusSeed) {
  TimedSimulator wheel(nl, delays);
  HeapSimulator heap(nl, delays);
  std::mt19937_64 rng(stimulusSeed);
  const std::size_t inputs = nl.primaryInputs().size();

  const auto reset = randomInputs(rng, inputs);
  wheel.applyInputs(reset);
  heap.applyInputs(reset);
  EXPECT_EQ(wheel.settlePs(), heap.settlePs());

  std::vector<std::uint8_t> wheelOut;
  for (std::uint64_t t = 0; t < cycles; ++t) {
    const auto in = randomInputs(rng, inputs);
    wheel.applyInputs(in);
    heap.applyInputs(in);
    wheel.advancePs(periodPs);
    heap.advancePs(periodPs);
    wheel.sampleOutputsInto(wheelOut);
    ASSERT_EQ(wheelOut, heap.sampleOutputs()) << "cycle " << t;
  }
  EXPECT_EQ(wheel.eventsProcessed(), heap.eventsProcessed());
  for (std::uint32_t n = 0; n < nl.netCount(); ++n) {
    ASSERT_EQ(wheel.netValue(NetId{n}), heap.netValue(NetId{n}))
        << "net " << n;
  }
}

TEST(QuantizationTest, DelaysFloorToThePicosecondGrid) {
  Netlist nl;
  nl.output("y", nl.gate1(GateKind::Buf, nl.input("a")));
  DelayAnnotation delays(nl, unitLibrary());
  const oisa::netlist::GateId g{0};
  delays.setDelayNs(g, 0.0185);  // 18.5 ps floors to 18
  EXPECT_EQ(delays.delayPs(g), 18);
  delays.setDelayNs(g, 0.011);  // representation noise must not floor to 10
  EXPECT_EQ(delays.delayPs(g), 11);
  delays.setDelayNs(g, 0.0009);  // sub-ps floors to zero
  EXPECT_EQ(delays.delayPs(g), 0);
}

TEST(QuantizationTest, SpansRoundUpToThePicosecondGrid) {
  EXPECT_EQ(oisa::timing::quantizeSpanPs(1.0), 1000);
  EXPECT_EQ(oisa::timing::quantizeSpanPs(0.255), 255);
  EXPECT_EQ(oisa::timing::quantizeSpanPs(1e-6), 1);  // advance-past-epsilon
  EXPECT_EQ(oisa::timing::quantizeSpanPs(0.2541), 255);
  EXPECT_EQ(oisa::timing::quantizeSpanPs(0.0), 0);
}

TEST(WheelVsHeapTest, ExactAgreementOnRandomNetlists) {
  std::mt19937_64 rng(101);
  for (int trial = 0; trial < 12; ++trial) {
    const Netlist nl = randomNetlist(rng, 12, 80, 8);
    DelayAnnotation delays(nl, CellLibrary::generic65());
    // Process-variation jitter produces off-grid double delays, so the
    // shared floor quantization itself is under test.
    delays.applyVariation(rng, 0.35);
    const double critical = criticalDelayNs(nl, delays);
    // Sweep from savage overclock to comfortable slack.
    for (const double frac : {0.3, 0.7, 1.5}) {
      const TimePs period = std::max<TimePs>(
          1, oisa::timing::quantizeSpanPs(critical * frac));
      expectEnginesAgree(nl, delays, period, 60,
                         900 + static_cast<std::uint64_t>(trial));
    }
  }
}

TEST(WheelVsHeapTest, ExactAgreementOnAllPaperDesigns) {
  oisa::circuits::SynthesisOptions options;
  options.relaxSlack = true;  // exercise relaxation-mutated delays
  const auto designs = oisa::circuits::synthesizePaperDesigns(
      CellLibrary::generic65(), options);
  ASSERT_EQ(designs.size(), 12u);
  const TimePs period =
      oisa::timing::quantizeSpanPs(0.3 * 0.90);  // 10% CPR
  for (const auto& design : designs) {
    SCOPED_TRACE(design.config.name());
    expectEnginesAgree(design.netlist, design.delays, period, 120, 7);
  }
}

TEST(WheelSimulatorTest, SettleTimeIsExactOnTheGrid) {
  // Three-stage chain at 1 ns per stage: settle must land on exactly
  // 3000 ps — the integer grid needs no epsilon horizon.
  Netlist nl;
  NetId n = nl.input("a");
  for (int i = 0; i < 3; ++i) n = nl.gate1(GateKind::Inv, n);
  nl.output("y", n);
  const DelayAnnotation delays(nl, unitLibrary());
  TimedSimulator sim(nl, delays);
  sim.applyInputs(std::vector<std::uint8_t>{1});
  EXPECT_EQ(sim.settlePs(), 3000);
  EXPECT_DOUBLE_EQ(sim.nowNs(), 3.0);
}

TEST(WheelSimulatorTest, RejectsDelaysBeyondTheSupportedRange) {
  // The wheel's memory scales with the maximum gate delay, and GateRec
  // narrows it to 32 bits: out-of-range delays must throw at
  // construction, not wrap and silently diverge from the heap engine.
  Netlist nl;
  nl.output("y", nl.gate1(GateKind::Buf, nl.input("a")));
  DelayAnnotation delays(nl, unitLibrary());
  delays.setDelayNs(oisa::netlist::GateId{0}, 2000.0);  // 2e6 ps > 2^20
  EXPECT_THROW(TimedSimulator(nl, delays), std::invalid_argument);
  HeapSimulator heap(nl, delays);  // reference engine has no such bound
}

TEST(WheelSimulatorTest, SplitAdvanceMatchesWholePeriod) {
  // Advancing one period in uneven chunks must process the same events in
  // the same order as a single advance (cursor/wheel bookkeeping check).
  const auto cfg = oisa::core::makeIsa(8, 2, 1, 4);
  const Netlist nl = oisa::circuits::buildIsaNetlist(cfg);
  const DelayAnnotation delays(nl, CellLibrary::generic65());
  TimedSimulator whole(nl, delays);
  TimedSimulator split(nl, delays);

  std::mt19937_64 rng(31);
  for (int t = 0; t < 40; ++t) {
    const auto in = packOperands(rng(), rng(), rng() & 1, 32);
    whole.applyInputs(in);
    split.applyInputs(in);
    whole.advancePs(230);
    split.advancePs(13);
    split.advancePs(200);
    split.advancePs(17);
    ASSERT_EQ(whole.sampleOutputs(), split.sampleOutputs()) << "cycle " << t;
  }
  EXPECT_EQ(whole.eventsProcessed(), split.eventsProcessed());
  EXPECT_EQ(whole.nowPs(), split.nowPs());
}

TEST(WheelSimulatorTest, ResetReplaysIdentically) {
  const auto cfg = oisa::core::makeIsa(8, 0, 1, 6);
  const Netlist nl = oisa::circuits::buildIsaNetlist(cfg);
  const DelayAnnotation delays(nl, CellLibrary::generic65());
  TimedSimulator sim(nl, delays);

  auto runOnce = [&] {
    std::vector<std::uint8_t> trace;
    std::mt19937_64 rng(77);
    for (int t = 0; t < 30; ++t) {
      sim.applyInputs(packOperands(rng(), rng(), false, 32));
      sim.advancePs(240);
      const auto out = sim.sampleOutputs();
      trace.insert(trace.end(), out.begin(), out.end());
    }
    return trace;
  };
  const auto first = runOnce();
  sim.reset();
  EXPECT_EQ(sim.nowPs(), 0);
  EXPECT_EQ(sim.eventsProcessed(), 0u);
  EXPECT_EQ(runOnce(), first);
}

TEST(GridSchedulerTest, RunsEveryCellExactlyOnce) {
  oisa::experiments::GridScheduler pool(4);
  std::vector<std::atomic<int>> hits(257);
  pool.run(hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(GridSchedulerTest, PropagatesTaskExceptions) {
  for (const unsigned threads : {1u, 4u}) {
    oisa::experiments::GridScheduler pool(threads);
    EXPECT_THROW(
        pool.run(64,
                 [&](std::size_t i) {
                   if (i == 13) throw std::runtime_error("cell failed");
                 }),
        std::runtime_error);
    // The pool must survive a failed run and accept the next one.
    std::atomic<int> ran{0};
    pool.run(8, [&](std::size_t) { ++ran; });
    EXPECT_EQ(ran.load(), 8);
  }
}

TEST(GridSchedulerTest, ErrorCombinationIsBitIdenticalAcrossThreadCounts) {
  const CellLibrary lib = CellLibrary::generic65();
  std::vector<oisa::circuits::SynthesizedDesign> designs;
  designs.push_back(oisa::circuits::synthesize(
      oisa::core::makeIsa(8, 0, 0, 4), lib, {}));
  designs.push_back(oisa::circuits::synthesize(
      oisa::core::makeIsa(8, 2, 1, 4), lib, {}));
  const std::vector<double> cprs = {5.0, 15.0};

  auto runAt = [&](unsigned threads) {
    oisa::experiments::RunOptions options;
    options.cycles = 400;
    options.seed = 42;
    options.threads = threads;
    return oisa::experiments::runErrorCombination(designs, cprs, options);
  };
  const auto serial = runAt(1);
  ASSERT_EQ(serial.size(), 4u);
  for (const unsigned threads : {2u, 8u}) {
    const auto parallel = runAt(threads);
    ASSERT_EQ(parallel.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
      SCOPED_TRACE(serial[i].design + " @ " +
                   std::to_string(serial[i].cprPercent));
      EXPECT_EQ(parallel[i].design, serial[i].design);
      // Exact equality on purpose: per-cell state makes the grid result a
      // pure function of (inputs, seed), independent of scheduling.
      EXPECT_EQ(parallel[i].rmsRelStruct, serial[i].rmsRelStruct);
      EXPECT_EQ(parallel[i].rmsRelTiming, serial[i].rmsRelTiming);
      EXPECT_EQ(parallel[i].rmsRelJoint, serial[i].rmsRelJoint);
      EXPECT_EQ(parallel[i].meanAbsJointArith, serial[i].meanAbsJointArith);
      EXPECT_EQ(parallel[i].structErrorRate, serial[i].structErrorRate);
      EXPECT_EQ(parallel[i].timingErrorRate, serial[i].timingErrorRate);
      EXPECT_EQ(parallel[i].cycles, serial[i].cycles);
    }
  }
}

}  // namespace
