// Differential tests of the stuck-at fault subsystem: the PPSFP engine is
// proven bit-exact against the serial single-pattern reference simulator
// on random netlists, the ISCAS-85 c17 benchmark and all twelve paper
// designs; structural equivalence collapsing is proven sound by checking
// every universe member against its class representative; and the timed
// injection hook (LaneTimedSimulator::forceNet) is cross-checked against
// the functional faulty machine at a settling period.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <stdexcept>

#include "circuits/synthesis.h"
#include "core/isa_config.h"
#include "experiments/fault_scan.h"
#include "fault/coverage.h"
#include "fault/fault_universe.h"
#include "fault/ppsfp.h"
#include "fault/serial_fault_sim.h"
#include "fault/timed_fault.h"
#include "netlist/bench_io.h"
#include "netlist/compiled_netlist.h"
#include "netlist/gate.h"
#include "timing/cell_library.h"
#include "timing/delay_annotation.h"
#include "timing/lane_sim.h"

#include "differential_harness.h"

namespace {

using oisa::fault::CoverageOptions;
using oisa::fault::Fault;
using oisa::fault::FaultUniverse;
using oisa::fault::PpsfpEngine;
using oisa::fault::SerialFaultSimulator;
using oisa::fault::StuckAt;
using oisa::netlist::CompiledNetlist;
using oisa::netlist::GateKind;
using oisa::netlist::Netlist;
using oisa::netlist::NetId;

using oisa::testing::kC17;
using oisa::testing::randomWords;

/// Harness DAG with this suite's historical 6-output shape (the seeded
/// rng consumption, and so every netlist below, is unchanged).
Netlist randomNetlist(std::mt19937_64& rng, int inputCount, int gateCount) {
  return oisa::testing::randomNetlist(rng, inputCount, gateCount, 6);
}

/// Asserts PPSFP detection == serial reference detection for every fault
/// in `faults`, on one `count`-pattern block of `words`.
void expectBlockMatchesSerial(const std::shared_ptr<const CompiledNetlist>&
                                  compiled,
                              std::span<const Fault> faults,
                              std::span<const std::uint64_t> words,
                              std::size_t count) {
  PpsfpEngine engine(compiled);
  engine.loadPatterns(words, count);
  std::vector<std::uint64_t> detected(faults.size());
  for (std::size_t fi = 0; fi < faults.size(); ++fi) {
    detected[fi] = engine.detectLanes(faults[fi]);
    // Lanes beyond the pattern count must never report detection.
    ASSERT_EQ(detected[fi] & ~engine.laneMask(), 0u);
  }
  SerialFaultSimulator serial(compiled);
  std::vector<std::uint8_t> bits(words.size());
  for (std::size_t lane = 0; lane < count; ++lane) {
    for (std::size_t i = 0; i < words.size(); ++i) {
      bits[i] = static_cast<std::uint8_t>((words[i] >> lane) & 1u);
    }
    serial.setPattern(bits);
    for (std::size_t fi = 0; fi < faults.size(); ++fi) {
      ASSERT_EQ(serial.detects(faults[fi]),
                ((detected[fi] >> lane) & 1u) != 0)
          << "fault " << oisa::fault::describeFault(*compiled, faults[fi])
          << " lane " << lane;
    }
  }
}

TEST(FaultUniverseTest, EnumeratesStemsAndMultiFanoutBranches) {
  // y = (a & b) | b: b has two reader entries -> 2 branch-fault pairs;
  // a and the AND output have one each -> stems only.
  Netlist nl("u");
  const NetId a = nl.input("a");
  const NetId b = nl.input("b");
  const NetId ab = nl.gate2(GateKind::And2, a, b, "ab");
  nl.output("y", nl.gate2(GateKind::Or2, ab, b, "y"));
  const auto compiled = CompiledNetlist::compile(nl);
  FaultUniverse universe(compiled);
  // Nets: a, b, ab, y -> 8 stem faults; branches only on b -> 4.
  EXPECT_EQ(universe.all().size(), 12u);
  std::size_t branches = 0;
  for (const Fault& f : universe.all()) {
    if (!f.isStem()) {
      ++branches;
      EXPECT_EQ(f.net, b.value);
    }
  }
  EXPECT_EQ(branches, 4u);
  // Class sizes add back up to the full universe.
  std::size_t members = 0;
  for (std::size_t ci = 0; ci < universe.collapsed().size(); ++ci) {
    members += universe.classSize(ci);
  }
  EXPECT_EQ(members, universe.all().size());
}

TEST(FaultUniverseTest, CollapsesFanoutFreeChainsToTheDominator) {
  // Inverter chain a -> x -> y -> out: all stem faults collapse into two
  // classes (one per polarity at the dominator), 8 -> 2.
  Netlist nl("chain");
  const NetId a = nl.input("a");
  const NetId x = nl.gate1(GateKind::Inv, a, "x");
  const NetId y = nl.gate1(GateKind::Inv, x, "y");
  nl.output("out", nl.gate1(GateKind::Inv, y, "out"));
  const auto compiled = CompiledNetlist::compile(nl);
  FaultUniverse universe(compiled);
  EXPECT_EQ(universe.all().size(), 8u);
  ASSERT_EQ(universe.collapsed().size(), 2u);
  // Representatives sit on the chain's output net (the dominator).
  for (const Fault& rep : universe.collapsed()) {
    EXPECT_TRUE(rep.isStem());
    EXPECT_EQ(compiled->source().net(NetId{rep.net}).name, "out");
  }
}

TEST(FaultUniverseTest, PrimaryOutputTapsBlockCollapsing) {
  // The AND output is itself a primary output, so its input-side faults
  // must NOT merge past it even though the net is fanout-free from the
  // gate's perspective... but here `t` both feeds the inverter and is a
  // PO: t/SA0 is directly observable while inv-out/SA1 is not equivalent.
  Netlist nl("po");
  const NetId a = nl.input("a");
  const NetId b = nl.input("b");
  const NetId t = nl.gate2(GateKind::And2, a, b, "t");
  nl.output("t", t);
  nl.output("y", nl.gate1(GateKind::Inv, t, "y"));
  const auto compiled = CompiledNetlist::compile(nl);
  FaultUniverse universe(compiled);
  for (std::size_t f = 0; f < universe.all().size(); ++f) {
    const Fault& fault = universe.all()[f];
    if (fault.net == t.value && fault.isStem()) {
      // t's stem faults form their own classes (possibly joined by a/b
      // faults from below, never by the inverter output above).
      const Fault& rep = universe.collapsed()[universe.classOf(f)];
      EXPECT_NE(compiled->source().net(NetId{rep.net}).name, "y");
    }
  }
}

TEST(FaultCollapsingTest, EveryMemberMatchesItsRepresentativeOnRandomBlocks) {
  OISA_TRACE_SEED(2024);
  std::mt19937_64 rng(2024);
  for (int trial = 0; trial < 8; ++trial) {
    const Netlist nl = randomNetlist(rng, 6, 24);
    const auto compiled = CompiledNetlist::compile(nl);
    FaultUniverse universe(compiled);
    PpsfpEngine engine(compiled);
    for (int blk = 0; blk < 3; ++blk) {
      const auto words = randomWords(rng, compiled->inputNets().size());
      engine.loadPatterns(words);
      for (std::size_t f = 0; f < universe.all().size(); ++f) {
        const Fault& member = universe.all()[f];
        const Fault& rep = universe.collapsed()[universe.classOf(f)];
        ASSERT_EQ(engine.detectLanes(member), engine.detectLanes(rep))
            << "member " << oisa::fault::describeFault(*compiled, member)
            << " vs rep " << oisa::fault::describeFault(*compiled, rep);
      }
    }
  }
}

TEST(PpsfpTest, MatchesSerialReferenceOnRandomNetlists) {
  OISA_TRACE_SEED(7);
  std::mt19937_64 rng(7);
  for (int trial = 0; trial < 10; ++trial) {
    const Netlist nl = randomNetlist(rng, 6, 30);
    const auto compiled = CompiledNetlist::compile(nl);
    FaultUniverse universe(compiled);
    // Full blocks and a short block exercise the lane mask.
    const std::size_t counts[] = {64, 1 + rng() % 63};
    for (const std::size_t count : counts) {
      const auto words = randomWords(rng, compiled->inputNets().size());
      expectBlockMatchesSerial(compiled,
                               {universe.all().begin(), universe.all().end()},
                               words, count);
    }
  }
}

TEST(PpsfpTest, MatchesSerialReferenceOnC17Exhaustively) {
  const Netlist nl = oisa::netlist::readBenchString(kC17, "c17");
  const auto compiled = CompiledNetlist::compile(nl);
  FaultUniverse universe(compiled);
  // All 32 input patterns in one block.
  std::vector<std::uint64_t> words(5, 0);
  for (std::uint64_t p = 0; p < 32; ++p) {
    for (std::size_t i = 0; i < 5; ++i) {
      words[i] |= ((p >> i) & 1u) << p;
    }
  }
  expectBlockMatchesSerial(compiled,
                           {universe.all().begin(), universe.all().end()},
                           words, 32);
  // c17 is fully testable: exhaustive stimuli detect every single fault
  // in the full universe.
  PpsfpEngine engine(compiled);
  engine.loadPatterns(words, 32);
  for (const Fault& f : universe.all()) {
    EXPECT_NE(engine.detectLanes(f), 0u)
        << oisa::fault::describeFault(*compiled, f);
  }
}

TEST(PpsfpTest, MatchesSerialReferenceOnAllPaperDesigns) {
  const auto designs = oisa::circuits::synthesizePaperDesigns(
      oisa::timing::CellLibrary::generic65(), {});
  ASSERT_EQ(designs.size(), 12u);
  std::mt19937_64 rng(99);
  for (const auto& design : designs) {
    const auto compiled = CompiledNetlist::compile(design.netlist);
    FaultUniverse universe(compiled);
    const auto faults = sampleFaults(universe.all(), 40);
    const auto words = randomWords(rng, compiled->inputNets().size());
    expectBlockMatchesSerial(compiled, faults, words, 64);
  }
}

TEST(CoverageTest, DroppingDoesNotChangeTheDetectedSet) {
  std::mt19937_64 rng(5);
  const Netlist nl = randomNetlist(rng, 8, 40);
  const auto compiled = CompiledNetlist::compile(nl);
  FaultUniverse universe(compiled);
  PpsfpEngine dropEngine(compiled);
  PpsfpEngine keepEngine(compiled);
  CoverageOptions options;
  options.patterns = 512;
  options.seed = 11;
  options.dropDetected = true;
  const auto dropped =
      oisa::fault::runRandomCoverage(universe, dropEngine, options);
  options.dropDetected = false;
  const auto kept =
      oisa::fault::runRandomCoverage(universe, keepEngine, options);
  EXPECT_EQ(dropped.detected, kept.detected);
  EXPECT_EQ(dropped.detectedClasses, kept.detectedClasses);
  EXPECT_EQ(dropped.firstDetectedAt, kept.firstDetectedAt);
  EXPECT_EQ(dropped.patternsApplied, kept.patternsApplied);
  EXPECT_GT(dropped.detectedClasses, 0u);
  // Dropping strictly saves work once anything was detected early.
  EXPECT_LT(dropEngine.faultsSimulated(), keepEngine.faultsSimulated());
}

TEST(CoverageTest, C17ReachesFullCoverageExhaustively) {
  const Netlist nl = oisa::netlist::readBenchString(kC17, "c17");
  const auto compiled = CompiledNetlist::compile(nl);
  FaultUniverse universe(compiled);
  PpsfpEngine engine(compiled);
  // 5 inputs: 64 random patterns all but surely include the needed ones;
  // use exhaustive stimuli via the block source for determinism.
  CoverageOptions options;
  options.patterns = 32;
  bool served = false;
  const auto result = oisa::fault::runCoverage(
      universe, engine, options,
      [&](std::span<std::uint64_t> words) -> std::size_t {
        if (served) return 0;
        served = true;
        std::fill(words.begin(), words.end(), 0);
        for (std::uint64_t p = 0; p < 32; ++p) {
          for (std::size_t i = 0; i < 5; ++i) {
            words[i] |= ((p >> i) & 1u) << p;
          }
        }
        return 32;
      });
  EXPECT_EQ(result.detectedClasses, result.collapsedClasses);
  EXPECT_DOUBLE_EQ(result.coverage(), 1.0);
  for (const std::uint64_t at : result.firstDetectedAt) {
    EXPECT_LT(at, 32u);
  }
}

TEST(FaultModelTest, RejectsCyclicAndBranchMisuse) {
  // Cyclic compile (self-referential through replaceGateInput).
  Netlist nl("cyc");
  const NetId a = nl.input("a");
  const NetId x = nl.gate2(GateKind::And2, a, a, "x");
  const NetId y = nl.gate1(GateKind::Buf, x, "y");
  nl.output("y", y);
  nl.replaceGateInput(oisa::netlist::GateId{0}, 1,
                      y);  // x now reads y: cycle
  const auto compiled = CompiledNetlist::compile(nl);
  ASSERT_FALSE(compiled->acyclic());
  EXPECT_THROW(FaultUniverse{compiled}, std::runtime_error);
  EXPECT_THROW(PpsfpEngine{compiled}, std::runtime_error);
  EXPECT_THROW(SerialFaultSimulator{compiled}, std::runtime_error);
}

// --- timing-aware injection ---------------------------------------------

oisa::timing::CellLibrary unitLibrary() {
  oisa::timing::CellLibrary lib;
  for (const GateKind kind : oisa::netlist::allGateKinds()) {
    lib.cell(kind) = oisa::timing::CellTiming{1.0, 0.0, 1.0};
  }
  lib.cell(GateKind::Const0) = oisa::timing::CellTiming{0.0, 0.0, 0.0};
  lib.cell(GateKind::Const1) = oisa::timing::CellTiming{0.0, 0.0, 0.0};
  return lib;
}

TEST(TimedFaultTest, ClampedLaneSimulatorMatchesFunctionalFaultyMachine) {
  std::mt19937_64 rng(31);
  for (int trial = 0; trial < 6; ++trial) {
    const Netlist nl = randomNetlist(rng, 6, 25);
    const auto compiled = CompiledNetlist::compile(nl);
    const oisa::timing::DelayAnnotation delays(nl, unitLibrary());
    FaultUniverse universe(compiled);
    SerialFaultSimulator serial(compiled);

    // Pick a handful of stem faults.
    std::vector<Fault> stems;
    for (const Fault& f : universe.collapsed()) {
      if (f.isStem()) stems.push_back(f);
    }
    ASSERT_FALSE(stems.empty());
    for (std::size_t pick = 0; pick < std::min<std::size_t>(4, stems.size());
         ++pick) {
      const Fault f = stems[rng() % stems.size()];
      // Period far beyond the critical path: sampled outputs are the
      // settled faulty function of the cycle's inputs.
      oisa::timing::LaneClockedSampler sampler(compiled, delays, 1000.0);
      oisa::fault::injectStuckAt(sampler.simulator(), f);
      const auto words = randomWords(rng, compiled->inputNets().size());
      sampler.initialize(words);
      std::vector<std::uint64_t> out;
      const auto step = randomWords(rng, compiled->inputNets().size());
      sampler.stepInto(step, out);

      std::vector<std::uint8_t> bits(step.size());
      for (std::size_t lane = 0; lane < 64; ++lane) {
        for (std::size_t i = 0; i < step.size(); ++i) {
          bits[i] = static_cast<std::uint8_t>((step[i] >> lane) & 1u);
        }
        serial.setPattern(bits);
        const auto faulty = serial.faultyOutputs(f);
        for (std::size_t o = 0; o < out.size(); ++o) {
          ASSERT_EQ((out[o] >> lane) & 1u, faulty[o])
              << "fault " << oisa::fault::describeFault(*compiled, f)
              << " lane " << lane << " output " << o;
        }
      }
    }
  }
}

TEST(TimedFaultTest, PartialLaneMaskKeepsHealthyLanesOnTheGoodMachine) {
  std::mt19937_64 rng(47);
  const Netlist nl = randomNetlist(rng, 5, 20);
  const auto compiled = CompiledNetlist::compile(nl);
  const oisa::timing::DelayAnnotation delays(nl, unitLibrary());
  FaultUniverse universe(compiled);
  Fault stem;
  bool found = false;
  for (const Fault& f : universe.collapsed()) {
    if (f.isStem()) {
      stem = f;
      found = true;
      break;
    }
  }
  ASSERT_TRUE(found);

  // Defect only in the low 32 lanes; the high lanes stay healthy.
  constexpr std::uint64_t kFaultyLanes = 0xffffffffull;
  oisa::timing::LaneClockedSampler sampler(compiled, delays, 1000.0);
  oisa::fault::injectStuckAt(sampler.simulator(), stem, kFaultyLanes);
  const auto step = randomWords(rng, compiled->inputNets().size());
  sampler.initialize(step);
  std::vector<std::uint64_t> out;
  sampler.stepInto(step, out);

  SerialFaultSimulator serial(compiled);
  std::vector<std::uint8_t> bits(step.size());
  for (std::size_t lane = 0; lane < 64; ++lane) {
    for (std::size_t i = 0; i < step.size(); ++i) {
      bits[i] = static_cast<std::uint8_t>((step[i] >> lane) & 1u);
    }
    serial.setPattern(bits);
    const auto expected = (kFaultyLanes >> lane) & 1u
                              ? serial.faultyOutputs(stem)
                              : serial.goodOutputs();
    for (std::size_t o = 0; o < out.size(); ++o) {
      ASSERT_EQ((out[o] >> lane) & 1u, expected[o]) << "lane " << lane;
    }
  }
}

TEST(TimedFaultTest, SelectTimedFaultsFiltersBranchFaults) {
  const std::vector<Fault> mixed = {
      Fault{3, Fault::kStem, StuckAt::SA0},
      Fault{5, 2, StuckAt::SA1},  // branch: skipped
      Fault{7, Fault::kStem, StuckAt::SA1},
  };
  const auto picked = oisa::fault::selectTimedFaults(mixed, 8);
  ASSERT_EQ(picked.size(), 2u);
  EXPECT_EQ(picked[0].net, 3u);
  EXPECT_EQ(picked[1].net, 7u);

  oisa::timing::CellLibrary lib = unitLibrary();
  Netlist nl("tiny");
  nl.output("y", nl.gate1(GateKind::Inv, nl.input("a"), "y"));
  const oisa::timing::DelayAnnotation delays(nl, lib);
  oisa::timing::LaneTimedSimulator sim(nl, delays);
  EXPECT_THROW(
      oisa::fault::injectStuckAt(sim, Fault{0, 0, StuckAt::SA0}),
      std::invalid_argument);
}

TEST(FaultScanTest, SmallDesignScanProducesCoverageAndShift) {
  // Two small ISA designs keep this fast while exercising the whole
  // pipeline: universe -> collapse -> PPSFP coverage -> timed defects.
  oisa::circuits::SynthesisOptions synth;
  const std::vector<oisa::circuits::SynthesizedDesign> designs = {
      oisa::circuits::synthesize(oisa::core::makeIsa(4, 1, 1, 2, 16),
                                 oisa::timing::CellLibrary::generic65(),
                                 synth),
      oisa::circuits::synthesize(oisa::core::makeIsa(4, 2, 1, 2, 16),
                                 oisa::timing::CellLibrary::generic65(),
                                 synth),
  };
  oisa::experiments::FaultScanOptions options;
  options.run.cycles = 512;
  options.run.seed = 3;
  options.run.threads = 1;
  options.cprPercent = 15.0;
  options.timedCycles = 256;
  options.timedFaults = 3;
  const auto rows = oisa::experiments::runFaultErrorScan(designs, options);
  ASSERT_EQ(rows.size(), 2u);
  for (const auto& row : rows) {
    EXPECT_GT(row.universeFaults, row.collapsedClasses);
    EXPECT_GT(row.detectedClasses, 0u);
    EXPECT_GT(row.coveragePercent, 0.0);
    EXPECT_EQ(row.timedFaultsMeasured, 3u);
    // A stuck-at defect on a detected class must hurt (or at least not
    // help) the joint error of the overclocked machine on average.
    EXPECT_GE(row.rmsRelJointFaulty, 0.0);
    EXPECT_GE(row.worstRelJointFaulty, row.rmsRelJointFaulty);
  }

  // Grid determinism: two threads produce the identical rows.
  options.run.threads = 2;
  const auto rows2 = oisa::experiments::runFaultErrorScan(designs, options);
  ASSERT_EQ(rows2.size(), rows.size());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(rows2[i].detectedClasses, rows[i].detectedClasses);
    EXPECT_DOUBLE_EQ(rows2[i].rmsRelJointHealthy, rows[i].rmsRelJointHealthy);
    EXPECT_DOUBLE_EQ(rows2[i].rmsRelJointFaulty, rows[i].rmsRelJointFaulty);
    EXPECT_DOUBLE_EQ(rows2[i].eJointShift, rows[i].eJointShift);
  }
}

}  // namespace
