// Subprocess wrapper tests: exit-status decoding (codes vs. signals),
// the heartbeat pipe plumbing (child writes land on the supervisor's
// non-blocking read end; EOF means the child is gone), exec-failure and
// fault-injected spawn paths, and self-path discovery.
#include <gtest/gtest.h>

#include <csignal>
#include <string>
#include <vector>

#include "core/fault_inject.h"
#include "core/status.h"
#include "core/subprocess.h"

namespace {

using oisa::core::ProcessExit;
using oisa::core::ScopedFaultPlan;
using oisa::core::StatusCode;
using oisa::core::Subprocess;

// Polls the heartbeat fd until EOF, collecting every byte the child
// wrote. Returns after the write end is closed (child exited).
std::string drainHeartbeat(Subprocess& proc) {
  std::string out;
  while (proc.readHeartbeat(out) != -1) {
    // Busy-wait is fine for these tiny children.
  }
  return out;
}

TEST(SubprocessTest, CleanExitDecodesCode) {
  auto proc = Subprocess::spawn("/bin/sh", {"-c", "exit 0"});
  ASSERT_TRUE(proc.isOk()) << proc.status().toString();
  const ProcessExit exit = proc.value().wait();
  EXPECT_EQ(exit.kind, ProcessExit::Kind::Exited);
  EXPECT_EQ(exit.exitCode, 0);
  EXPECT_TRUE(exit.clean());
  EXPECT_EQ(exit.toString(), "exit 0");
}

TEST(SubprocessTest, NonzeroExitIsNotClean) {
  auto proc = Subprocess::spawn("/bin/sh", {"-c", "exit 3"});
  ASSERT_TRUE(proc.isOk());
  const ProcessExit exit = proc.value().wait();
  EXPECT_EQ(exit.kind, ProcessExit::Kind::Exited);
  EXPECT_EQ(exit.exitCode, 3);
  EXPECT_FALSE(exit.clean());
  EXPECT_EQ(exit.toString(), "exit 3");
}

TEST(SubprocessTest, SignalDeathDecodesSignal) {
  auto proc = Subprocess::spawn("/bin/sh", {"-c", "kill -KILL $$"});
  ASSERT_TRUE(proc.isOk());
  const ProcessExit exit = proc.value().wait();
  EXPECT_EQ(exit.kind, ProcessExit::Kind::Signaled);
  EXPECT_EQ(exit.signal, SIGKILL);
  EXPECT_FALSE(exit.clean());
  EXPECT_NE(exit.toString().find("signal 9"), std::string::npos);
}

TEST(SubprocessTest, KillTerminatesARunningChild) {
  auto proc = Subprocess::spawn("/bin/sh", {"-c", "exec sleep 30"});
  ASSERT_TRUE(proc.isOk());
  Subprocess child = std::move(proc).value();
  EXPECT_TRUE(child.valid());
  EXPECT_GT(child.pid(), 0);
  EXPECT_FALSE(child.poll().has_value());  // still running
  child.kill(SIGKILL);
  const ProcessExit exit = child.wait();
  EXPECT_EQ(exit.kind, ProcessExit::Kind::Signaled);
  EXPECT_EQ(exit.signal, SIGKILL);
}

TEST(SubprocessTest, HeartbeatPipeCarriesChildWrites) {
  // The child writes to the fd spawn() published in OISA_HEARTBEAT_FD —
  // the same channel HeartbeatEmitter uses.
  auto proc = Subprocess::spawn(
      "/bin/sh", {"-c", "printf 'S 1\\nD 1\\n' >&\"$OISA_HEARTBEAT_FD\""});
  ASSERT_TRUE(proc.isOk());
  Subprocess child = std::move(proc).value();
  EXPECT_GE(child.heartbeatFd(), 0);
  const std::string bytes = drainHeartbeat(child);
  EXPECT_EQ(bytes, "S 1\nD 1\n");
  EXPECT_EQ(child.heartbeatFd(), -1);  // closed as an EOF side effect
  EXPECT_TRUE(child.wait().clean());
}

TEST(SubprocessTest, HeartbeatEofSignalsChildGone) {
  auto proc = Subprocess::spawn("/bin/sh", {"-c", "exit 0"});
  ASSERT_TRUE(proc.isOk());
  Subprocess child = std::move(proc).value();
  std::string out;
  int rc;
  do {
    rc = child.readHeartbeat(out);
  } while (rc != -1);
  EXPECT_TRUE(out.empty());
  // After EOF the fd stays closed and reads keep reporting EOF.
  EXPECT_EQ(child.readHeartbeat(out), -1);
  (void)child.wait();
}

TEST(SubprocessTest, ExtraEnvReachesTheChild) {
  auto proc = Subprocess::spawn(
      "/bin/sh",
      {"-c", "printf '%s' \"$OISA_TEST_TOKEN\" >&\"$OISA_HEARTBEAT_FD\""},
      {{"OISA_TEST_TOKEN", "hello-shard"}});
  ASSERT_TRUE(proc.isOk());
  Subprocess child = std::move(proc).value();
  EXPECT_EQ(drainHeartbeat(child), "hello-shard");
  EXPECT_TRUE(child.wait().clean());
}

TEST(SubprocessTest, ExecFailureSurfacesAsExit127) {
  auto proc = Subprocess::spawn("/nonexistent/oisa-no-such-binary", {});
  ASSERT_TRUE(proc.isOk());  // the fork itself succeeds
  const ProcessExit exit = proc.value().wait();
  EXPECT_EQ(exit.kind, ProcessExit::Kind::Exited);
  EXPECT_EQ(exit.exitCode, 127);
}

TEST(SubprocessTest, SpawnFaultSiteFailsDeterministically) {
  ScopedFaultPlan plan("worker.spawn:1");
  auto first = Subprocess::spawn("/bin/sh", {"-c", "exit 0"});
  ASSERT_FALSE(first.isOk());
  EXPECT_EQ(first.status().code(), StatusCode::IoError);
  // Transient fault: the second attempt (the supervisor's retry) works.
  auto second = Subprocess::spawn("/bin/sh", {"-c", "exit 0"});
  ASSERT_TRUE(second.isOk());
  EXPECT_TRUE(second.value().wait().clean());
}

TEST(SubprocessTest, DestructorReapsARunningChildWithoutLeaks) {
  int pid = 0;
  {
    auto proc = Subprocess::spawn("/bin/sh", {"-c", "exec sleep 30"});
    ASSERT_TRUE(proc.isOk());
    pid = proc.value().pid();
    // Destructor runs here with the child still alive.
  }
  // The child must be gone: kill(pid, 0) on a reaped pid fails (ESRCH),
  // unless the pid was recycled — vanishingly unlikely inside one test.
  EXPECT_NE(::kill(pid, 0), 0);
}

TEST(SubprocessTest, SelfExecutablePathPointsAtThisBinary) {
  const std::string path = oisa::core::selfExecutablePath("fallback");
  ASSERT_FALSE(path.empty());
  EXPECT_NE(path, "fallback");  // /proc/self/exe resolved
  EXPECT_EQ(path.front(), '/');
  EXPECT_NE(path.find("subprocess_test"), std::string::npos);
}

}  // namespace
