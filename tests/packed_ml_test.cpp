// Packed ML substrate tests: the column-major packed dataset view, the
// popcount CART trainer's node-for-node equality with the retained
// row-scan reference trainer, 64-lane batched inference agreement with the
// scalar walks, the packed trace feature matrix, and serialization of
// packed-trained forests — on random data and on a real collected trace of
// a synthesized paper design across all 33 output bits.
#include <gtest/gtest.h>

#include <array>
#include <memory>
#include <random>
#include <sstream>
#include <vector>

#include "circuits/synthesis.h"
#include "experiments/trace_collector.h"
#include "experiments/workload.h"
#include "ml/dataset.h"
#include "ml/decision_tree.h"
#include "ml/random_forest.h"
#include "ml/serialize.h"
#include "predict/bit_predictor.h"
#include "predict/features.h"

#include "differential_harness.h"

namespace {

using oisa::ml::Dataset;
using oisa::ml::DecisionTree;
using oisa::ml::ForestParams;
using oisa::ml::MajorityClassifier;
using oisa::ml::PackedView;
using oisa::ml::RandomForest;
using oisa::ml::TreeParams;
using oisa::predict::BitLevelPredictor;
using oisa::predict::FeatureExtractor;
using oisa::predict::Trace;
using oisa::predict::TraceRecord;

using oisa::testing::randomDataset;

void expectSameNodes(const DecisionTree& a, const DecisionTree& b) {
  ASSERT_EQ(a.nodes().size(), b.nodes().size());
  for (std::size_t i = 0; i < a.nodes().size(); ++i) {
    EXPECT_EQ(a.nodes()[i].feature, b.nodes()[i].feature) << "node " << i;
    EXPECT_EQ(a.nodes()[i].left, b.nodes()[i].left) << "node " << i;
    EXPECT_EQ(a.nodes()[i].right, b.nodes()[i].right) << "node " << i;
    EXPECT_EQ(a.nodes()[i].probability, b.nodes()[i].probability)
        << "node " << i;
  }
}

TEST(PackedViewTest, MatchesByteMatrixBitForBit) {
  const Dataset data = randomDataset(201, 13, 5);  // odd row count: tail word
  const PackedView& view = data.packed();
  ASSERT_EQ(view.rowCount, data.rowCount());
  ASSERT_EQ(view.featureCount(), data.featureCount());
  ASSERT_EQ(view.wordCount, (data.rowCount() + 63) / 64);
  for (std::size_t r = 0; r < data.rowCount(); ++r) {
    for (std::size_t f = 0; f < data.featureCount(); ++f) {
      const bool packed =
          ((view.columns[f][r / 64] >> (r % 64)) & 1u) != 0;
      EXPECT_EQ(packed, data.feature(r, f) != 0) << r << "," << f;
    }
    const bool label = ((view.labels[r / 64] >> (r % 64)) & 1u) != 0;
    EXPECT_EQ(label, data.label(r)) << r;
  }
  // Tail bits past rowCount stay zero (trainers rely on it).
  const std::size_t tail = data.rowCount() % 64;
  for (std::size_t f = 0; f < view.featureCount(); ++f) {
    EXPECT_EQ(view.columns[f][view.wordCount - 1] >> tail, 0u);
  }
  EXPECT_EQ(view.positiveCount(), data.positiveCount());
}

TEST(PackedViewTest, CopiesRebuildTheirOwnCache) {
  // The cached view points into the owning Dataset's storage: a copy must
  // not inherit those pointers (it rebuilds over its own rows), and the
  // copy stays correct after the source is mutated or destroyed.
  auto source = std::make_unique<Dataset>(randomDataset(70, 5, 99));
  (void)source->packed();  // populate the source's cache first
  Dataset copy = *source;
  Dataset assigned(1);
  assigned = *source;
  source->addRow(std::vector<std::uint8_t>(5, 1), true);
  source.reset();
  for (Dataset* d : {&copy, &assigned}) {
    const PackedView& view = d->packed();
    ASSERT_EQ(view.rowCount, 70u);
    for (std::size_t r = 0; r < d->rowCount(); ++r) {
      for (std::size_t f = 0; f < d->featureCount(); ++f) {
        ASSERT_EQ(((view.columns[f][r / 64] >> (r % 64)) & 1u) != 0,
                  d->feature(r, f) != 0);
      }
    }
  }
}

TEST(PackedViewTest, CacheInvalidatedByAddRow) {
  Dataset data(2);
  data.addRow(std::vector<std::uint8_t>{1, 0}, true);
  EXPECT_EQ(data.packed().rowCount, 1u);
  data.addRow(std::vector<std::uint8_t>{0, 1}, false);
  EXPECT_EQ(data.packed().rowCount, 2u);
  EXPECT_EQ(data.packed().positiveCount(), 1u);
}

TEST(PackedTrainerTest, MatchesReferenceAcrossRandomDatasets) {
  // Property: identical node arrays for the same rows, params and rng
  // seed, across dataset shapes and growth-control corners.
  const TreeParams paramSets[] = {
      TreeParams{},                 // defaults
      TreeParams{3, 4, 1, 0},       // shallow
      TreeParams{12, 2, 3, 4},      // feature subsampling + leaf minimum
      TreeParams{20, 8, 1, 5},      // deep, subsampled
  };
  std::uint64_t seed = 1000;
  for (const std::size_t rows : {5u, 64u, 65u, 300u}) {
    for (const std::size_t features : {3u, 17u}) {
      const Dataset data = randomDataset(rows, features, ++seed);
      for (const TreeParams& params : paramSets) {
        DecisionTree packed, reference;
        packed.fit(data, params, seed);
        reference.fitReference(data, params, seed);
        expectSameNodes(packed, reference);
      }
    }
  }
}

TEST(PackedTrainerTest, MatchesReferenceOnBootstrapMultisets) {
  // Duplicate row indices (the bootstrap case) carry multiplicity, which
  // the packed trainer encodes as bit-planes — counts must match the
  // reference multiset semantics exactly.
  const Dataset data = randomDataset(150, 9, 77);
  std::mt19937_64 sampler(3);
  for (int trial = 0; trial < 5; ++trial) {
    std::vector<std::uint32_t> rows(200);
    std::uniform_int_distribution<std::uint32_t> pick(0, 149);
    for (auto& r : rows) r = pick(sampler);
    TreeParams params;
    params.featuresPerSplit = 3;
    DecisionTree packed, reference;
    std::mt19937_64 rngA(42 + trial), rngB(42 + trial);
    packed.fit(data.packed(), rows, params, rngA);
    reference.fitReference(data, rows, params, rngB);
    expectSameNodes(packed, reference);
  }
}

TEST(PackedTrainerTest, RejectsBadRows) {
  const Dataset data = randomDataset(10, 4, 9);
  DecisionTree tree;
  std::mt19937_64 rng(1);
  const std::vector<std::uint32_t> empty;
  EXPECT_THROW(tree.fit(data.packed(), empty, TreeParams{}, rng),
               std::invalid_argument);
  const std::vector<std::uint32_t> outOfRange{0, 10};
  EXPECT_THROW(tree.fit(data.packed(), outOfRange, TreeParams{}, rng),
               std::out_of_range);
}

TEST(PackedForestTest, FitMatchesReferenceTreeForTree) {
  const Dataset data = randomDataset(400, 12, 21);
  ForestParams params;
  params.treeCount = 7;
  RandomForest packed, reference;
  packed.fit(data, params, 33);
  reference.fitReference(data, params, 33);
  ASSERT_EQ(packed.trees().size(), reference.trees().size());
  for (std::size_t t = 0; t < packed.trees().size(); ++t) {
    expectSameNodes(packed.trees()[t], reference.trees()[t]);
  }
}

TEST(PackedForestTest, ConstantLabelShortcutMatchesReference) {
  Dataset data(4);
  std::mt19937_64 rng(5);
  for (int i = 0; i < 100; ++i) {
    std::vector<std::uint8_t> row(4);
    for (auto& v : row) v = static_cast<std::uint8_t>(rng() & 1);
    data.addRow(row, true);
  }
  RandomForest packed, reference;
  packed.fit(data, ForestParams{}, 2);
  reference.fitReference(data, ForestParams{}, 2);
  ASSERT_EQ(packed.trees().size(), 1u);
  ASSERT_EQ(reference.trees().size(), 1u);
  expectSameNodes(packed.trees()[0], reference.trees()[0]);
}

// Lane-major feature words for rows [base, base+64) of a dataset.
std::vector<std::uint64_t> laneWords(const Dataset& data, std::size_t base) {
  std::vector<std::uint64_t> words(data.featureCount(), 0);
  for (std::size_t lane = 0; lane < 64; ++lane) {
    const std::size_t r = base + lane;
    if (r >= data.rowCount()) break;
    for (std::size_t f = 0; f < data.featureCount(); ++f) {
      if (data.feature(r, f) != 0) {
        words[f] |= std::uint64_t{1} << lane;
      }
    }
  }
  return words;
}

TEST(PredictBatchTest, TreeAndForestMatchScalarLaneForLane) {
  const Dataset train = randomDataset(500, 10, 55);
  const Dataset test = randomDataset(200, 10, 56);
  DecisionTree tree;
  tree.fit(train, TreeParams{});
  RandomForest forest;
  ForestParams params;
  params.treeCount = 9;
  forest.fit(train, params, 8);

  std::array<double, 64> probs{};
  for (std::size_t base = 0; base < test.rowCount(); base += 64) {
    const auto words = laneWords(test, base);
    const std::uint64_t treeBatch = tree.predictBatch(words, probs);
    for (std::size_t lane = 0; lane < 64 && base + lane < test.rowCount();
         ++lane) {
      EXPECT_EQ(((treeBatch >> lane) & 1u) != 0,
                tree.predict(test.row(base + lane)));
      EXPECT_DOUBLE_EQ(probs[lane],
                       tree.predictProbability(test.row(base + lane)));
    }
    const std::uint64_t forestBatch = forest.predictBatch(words, probs);
    for (std::size_t lane = 0; lane < 64 && base + lane < test.rowCount();
         ++lane) {
      EXPECT_EQ(((forestBatch >> lane) & 1u) != 0,
                forest.predict(test.row(base + lane)));
      // Identical summation order: exact equality, not approximate.
      EXPECT_EQ(probs[lane],
                forest.predictProbability(test.row(base + lane)));
    }
  }
}

TEST(PredictBatchTest, MajorityAndBaseClassFallbackAgree) {
  const Dataset data = randomDataset(100, 6, 61);
  MajorityClassifier majority;
  majority.fit(data);
  std::array<double, 64> probs{};
  const auto words = laneWords(data, 0);
  const std::uint64_t batch = majority.predictBatch(words, probs);
  EXPECT_EQ(batch, majority.predict(data.row(0))
                       ? ~std::uint64_t{0}
                       : std::uint64_t{0});
  EXPECT_EQ(probs[17], majority.predictProbability(data.row(17)));

  // The BinaryClassifier default implementation (scalar unpacking) must
  // agree with the word-parallel overrides.
  RandomForest forest;
  ForestParams params;
  params.treeCount = 3;
  forest.fit(data, params, 4);
  std::array<double, 64> defaultProbs{};
  const std::uint64_t fast = forest.predictBatch(words, probs);
  const std::uint64_t slow =
      forest.BinaryClassifier::predictBatch(words, defaultProbs);
  EXPECT_EQ(fast, slow);
  for (std::size_t lane = 0; lane < 64; ++lane) {
    EXPECT_EQ(probs[lane], defaultProbs[lane]);
  }
}

TEST(PredictBatchTest, ValidatesArguments) {
  const Dataset data = randomDataset(80, 5, 71);
  RandomForest forest;
  forest.fit(data, ForestParams{}, 1);
  std::array<double, 64> probs{};
  const auto words = laneWords(data, 0);
  RandomForest untrained;
  EXPECT_THROW((void)untrained.predictBatch(words, probs), std::logic_error);
  std::array<double, 10> small{};
  EXPECT_THROW((void)forest.predictBatch(words, small),
               std::invalid_argument);
}

// ---------------------------------------------------------------------
// Packed trace features and the full predictor bank on a real collected
// trace of a synthesized paper design.
// ---------------------------------------------------------------------

Trace collectPaperTrace(std::uint64_t cycles, std::uint64_t seed) {
  static const oisa::circuits::SynthesizedDesign design =
      oisa::circuits::synthesize(oisa::core::makeIsa(8, 2, 1, 4),
                                 oisa::timing::CellLibrary::generic65(),
                                 oisa::circuits::SynthesisOptions{});
  // 15% CPR: aggressive enough that several output bits see real timing
  // errors, so the per-bit forests grow non-trivial trees.
  const double period = design.criticalDelayNs * 0.85;
  auto workload =
      oisa::experiments::makeWorkload("uniform", design.config.width, seed);
  return oisa::experiments::collectTrace(design, period, *workload, cycles);
}

TEST(PackedTraceTest, ColumnsMatchScalarExtraction) {
  const Trace trace = collectPaperTrace(200, 11);
  const FeatureExtractor fx(32);
  const oisa::predict::PackedTraceFeatures packed = fx.packTrace(trace);
  ASSERT_EQ(packed.rowCount, trace.size() - 1);
  std::vector<std::uint8_t> row(fx.featureCount());
  for (int bit = 0; bit <= 32; ++bit) {
    const PackedView view = fx.bitView(packed, bit);
    ASSERT_EQ(view.featureCount(), fx.featureCount());
    for (std::size_t r = 0; r < packed.rowCount; ++r) {
      fx.extract(trace[r], trace[r + 1], bit, row);
      for (std::size_t f = 0; f < view.featureCount(); ++f) {
        const bool packedBit =
            ((view.columns[f][r / 64] >> (r % 64)) & 1u) != 0;
        ASSERT_EQ(packedBit, row[f] != 0)
            << "bit " << bit << " row " << r << " feature " << f;
      }
      const bool label = ((view.labels[r / 64] >> (r % 64)) & 1u) != 0;
      ASSERT_EQ(label,
                FeatureExtractor::timingErroneous(trace[r + 1], bit, 32));
    }
  }
}

TEST(PackedTraceTest, AblatedExtractorDropsGoldColumns) {
  const Trace trace = collectPaperTrace(150, 13);
  const FeatureExtractor fx(32, /*includeOutputBits=*/false);
  const oisa::predict::PackedTraceFeatures packed = fx.packTrace(trace);
  EXPECT_TRUE(packed.goldPrev.empty());
  EXPECT_TRUE(packed.goldCur.empty());
  const PackedView view = fx.bitView(packed, 0);
  EXPECT_EQ(view.featureCount(), fx.sharedFeatureCount());
}

TEST(PackedPredictorTest, AllBitsAgreeWithScalarOnCollectedTrace) {
  const Trace train = collectPaperTrace(600, 17);
  const Trace test = collectPaperTrace(400, 19);
  oisa::predict::PredictorParams params;
  params.forest.treeCount = 5;
  BitLevelPredictor predictor(32, params);
  predictor.fit(train);

  // evaluate()'s batched sweep must equal the scalar per-cycle pipeline:
  // recompute ABPER/AVPE through the public predictFlips path.
  const auto eval = predictor.evaluate(test);
  std::vector<std::uint64_t> wrong(33, 0);
  double avpeSum = 0.0;
  std::uint64_t skipped = 0;
  for (std::size_t t = 1; t < test.size(); ++t) {
    const auto flips = predictor.predictFlips(test[t - 1], test[t]);
    for (int bit = 0; bit <= 32; ++bit) {
      const bool predicted = bit == 32
                                 ? flips.coutFlip
                                 : ((flips.sumFlips >> bit) & 1u) != 0;
      if (predicted !=
          FeatureExtractor::timingErroneous(test[t], bit, 32)) {
        ++wrong[static_cast<std::size_t>(bit)];
      }
    }
    const bool predictedCout = test[t].goldCout != flips.coutFlip;
    const std::uint64_t predictedSilver =
        flips.predictedSilver(test[t].gold) |
        (static_cast<std::uint64_t>(predictedCout ? 1 : 0) << 32);
    const std::uint64_t realSilver = test[t].silverValue(32);
    if (realSilver == 0) {
      ++skipped;
    } else {
      const std::uint64_t diff = predictedSilver >= realSilver
                                     ? predictedSilver - realSilver
                                     : realSilver - predictedSilver;
      avpeSum += static_cast<double>(diff) / static_cast<double>(realSilver);
    }
  }
  const std::uint64_t cycles = test.size() - 1;
  ASSERT_EQ(eval.cycles, cycles);
  EXPECT_EQ(eval.avpeSkipped, skipped);
  double abperSum = 0.0;
  for (int bit = 0; bit <= 32; ++bit) {
    const double rate =
        static_cast<double>(wrong[static_cast<std::size_t>(bit)]) /
        static_cast<double>(cycles);
    EXPECT_EQ(eval.perBitErrorRate[static_cast<std::size_t>(bit)], rate)
        << "bit " << bit;
    abperSum += rate;
  }
  EXPECT_EQ(eval.abper, abperSum / 33.0);
  const std::uint64_t avpeCycles = cycles - skipped;
  EXPECT_EQ(eval.avpe,
            avpeCycles ? avpeSum / static_cast<double>(avpeCycles) : 0.0);
}

TEST(PackedPredictorTest, SerializeRoundTripOnPackedTrainedForests) {
  const Trace train = collectPaperTrace(500, 23);
  const Trace test = collectPaperTrace(200, 29);
  oisa::predict::PredictorParams params;
  params.forest.treeCount = 4;
  BitLevelPredictor predictor(32, params);
  predictor.fit(train);

  std::stringstream ss;
  predictor.save(ss);
  const BitLevelPredictor loaded = BitLevelPredictor::load(ss);
  for (std::size_t t = 1; t < test.size(); ++t) {
    const auto original = predictor.predictFlips(test[t - 1], test[t]);
    const auto reloaded = loaded.predictFlips(test[t - 1], test[t]);
    EXPECT_EQ(original.sumFlips, reloaded.sumFlips);
    EXPECT_EQ(original.coutFlip, reloaded.coutFlip);
  }
  const auto e1 = predictor.evaluate(test);
  const auto e2 = loaded.evaluate(test);
  EXPECT_EQ(e1.abper, e2.abper);
  EXPECT_EQ(e1.avpe, e2.avpe);
}

TEST(PackedPredictorTest, StandaloneForestRoundTripPreservesNodes) {
  // saveForest/loadForest on a packed-trained forest: the node arrays
  // themselves survive, not just the predictions.
  const Dataset data = randomDataset(300, 8, 91);
  RandomForest forest;
  ForestParams params;
  params.treeCount = 6;
  forest.fit(data, params, 14);
  std::stringstream ss;
  oisa::ml::saveForest(forest, ss);
  const RandomForest loaded = oisa::ml::loadForest(ss);
  ASSERT_EQ(loaded.trees().size(), forest.trees().size());
  for (std::size_t t = 0; t < forest.trees().size(); ++t) {
    expectSameNodes(loaded.trees()[t], forest.trees()[t]);
  }
}

TEST(PackedPredictorTest, LoadRejectsEmptyTreesAndForests) {
  // The fast (unchecked/batched) inference paths rely on loaded models
  // being non-empty; the serializer must reject degenerate records at the
  // trust boundary instead of letting them reach those walks.
  std::stringstream emptyTree("tree 0\n");
  EXPECT_THROW((void)oisa::ml::loadTree(emptyTree), std::runtime_error);
  std::stringstream emptyForest("forest 0\n");
  EXPECT_THROW((void)oisa::ml::loadForest(emptyForest), std::runtime_error);
  std::stringstream bank("bitpredictor 1 1 2\nforest 1\ntree 0\n");
  EXPECT_THROW((void)BitLevelPredictor::load(bank), std::runtime_error);
}

TEST(PackedPredictorTest, AvpeUsesIntegerMagnitude) {
  // Values past 2^53: |a - b| computed through doubles collapses small
  // differences to zero; the integer-arithmetic path must not. Build a
  // width-60 trace whose silver value differs from gold by exactly 1 in a
  // minority of cycles, so the Majority baseline predicts "no flips" and
  // every erroneous cycle contributes 1/realSilver ~ 2^-59 to AVPE — tiny
  // but strictly positive. The double-subtraction implementation rounds
  // gold and gold^1 to the same double (spacing 128 at 2^59) and returns
  // exactly 0.
  const int width = 60;
  Trace trace;
  for (int t = 0; t < 130; ++t) {
    TraceRecord rec;
    rec.a = (std::uint64_t{1} << 59) + static_cast<std::uint64_t>(t);
    rec.b = 1;
    rec.gold = rec.a + rec.b;
    rec.silver = (t % 3 == 0) ? (rec.gold ^ 1u) : rec.gold;
    rec.diamond = rec.gold;
    trace.push_back(rec);
  }
  oisa::predict::PredictorParams params;
  params.model = oisa::predict::ModelKind::Majority;
  BitLevelPredictor predictor(width, params);
  predictor.fit(trace);
  const auto eval = predictor.evaluate(trace);
  EXPECT_GT(eval.avpe, 0.0);
  EXPECT_LT(eval.avpe, 1e-17);
}

}  // namespace
