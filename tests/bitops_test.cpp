// Exhaustive-ish unit coverage of the word-level primitives everything
// else is built on: the 64x64 bit-matrix transpose (netlist/bitops.h) and
// the portable LaneBlock<W> register type (netlist/lane_block.h) at every
// supported width. The intrinsic (AVX2/AVX-512) specializations are
// deliberately not nameable here — only the -m-flagged dispatch TUs may
// instantiate them — so their equivalence is proven end-to-end through
// the dispatched engines in lane_width_test.cpp instead.
#include <gtest/gtest.h>

#include <array>
#include <bit>
#include <cstdint>
#include <random>

#include "netlist/batch_evaluator.h"
#include "netlist/bitops.h"
#include "netlist/gate.h"
#include "netlist/lane_block.h"

#include "differential_harness.h"

namespace {

using oisa::netlist::GateKind;
using oisa::netlist::LaneArch;
using oisa::netlist::LaneBlock;

// ---------------------------------------------------------------------------
// transpose64
// ---------------------------------------------------------------------------

TEST(Transpose64Test, EverySingleBitLandsTransposed) {
  // All 4096 one-hot matrices: bit (i, j) must move to (j, i) and nothing
  // else may be set.
  for (std::size_t i = 0; i < 64; ++i) {
    for (std::size_t j = 0; j < 64; ++j) {
      std::array<std::uint64_t, 64> m{};
      m[i] = std::uint64_t{1} << j;
      oisa::netlist::transpose64(m);
      for (std::size_t r = 0; r < 64; ++r) {
        ASSERT_EQ(m[r], r == j ? std::uint64_t{1} << i : 0u)
            << "bit (" << i << ", " << j << ") row " << r;
      }
    }
  }
}

TEST(Transpose64Test, IsAnInvolutionOnRandomMatrices) {
  OISA_TRACE_SEED(321);
  std::mt19937_64 rng(321);
  for (int trial = 0; trial < 50; ++trial) {
    std::array<std::uint64_t, 64> m{};
    for (auto& r : m) r = rng();
    const auto original = m;
    oisa::netlist::transpose64(m);
    // Element-for-element check against the definition...
    for (std::size_t i = 0; i < 64; ++i) {
      for (std::size_t j = 0; j < 64; ++j) {
        ASSERT_EQ((m[j] >> i) & 1u, (original[i] >> j) & 1u)
            << "trial " << trial << " (" << i << ", " << j << ")";
      }
    }
    // ... and the round trip restores the input exactly.
    oisa::netlist::transpose64(m);
    ASSERT_EQ(m, original) << "trial " << trial;
  }
}

TEST(Transpose64Test, FixedPoints) {
  std::array<std::uint64_t, 64> zero{};
  oisa::netlist::transpose64(zero);
  for (const auto r : zero) EXPECT_EQ(r, 0u);

  std::array<std::uint64_t, 64> full{};
  for (auto& r : full) r = ~std::uint64_t{0};
  oisa::netlist::transpose64(full);
  for (const auto r : full) EXPECT_EQ(r, ~std::uint64_t{0});

  std::array<std::uint64_t, 64> identity{};
  for (std::size_t i = 0; i < 64; ++i) identity[i] = std::uint64_t{1} << i;
  oisa::netlist::transpose64(identity);
  for (std::size_t i = 0; i < 64; ++i) {
    EXPECT_EQ(identity[i], std::uint64_t{1} << i) << "row " << i;
  }
}

// ---------------------------------------------------------------------------
// Portable LaneBlock<W> primitives, all three widths through one typed
// suite. Every operation is checked word-for-word against plain uint64
// arithmetic on the backing storage.
// ---------------------------------------------------------------------------

template <class Block>
class LaneBlockTest : public ::testing::Test {};

using PortableBlocks =
    ::testing::Types<LaneBlock<64, LaneArch::Portable>,
                     LaneBlock<256, LaneArch::Portable>,
                     LaneBlock<512, LaneArch::Portable>>;
TYPED_TEST_SUITE(LaneBlockTest, PortableBlocks);

TYPED_TEST(LaneBlockTest, StaticShape) {
  using Block = TypeParam;
  static_assert(Block::kBits == Block::kWords * 64);
  static_assert(Block::kArch == LaneArch::Portable);
  EXPECT_EQ(sizeof(Block), Block::kWords * sizeof(std::uint64_t));
}

TYPED_TEST(LaneBlockTest, LoadStoreRoundTripAndWordSlicing) {
  using Block = TypeParam;
  OISA_TRACE_SEED(11);
  std::mt19937_64 rng(11);
  for (int trial = 0; trial < 25; ++trial) {
    std::array<std::uint64_t, Block::kWords> src{};
    for (auto& w : src) w = rng();
    const Block b = Block::load(src.data());
    std::array<std::uint64_t, Block::kWords> dst{};
    b.store(dst.data());
    ASSERT_EQ(dst, src) << "trial " << trial;
    // word(j) is the slice-to-u64 primitive the differential harness
    // leans on: sub-word j must be lanes [64j, 64j + 64) exactly.
    for (std::size_t j = 0; j < Block::kWords; ++j) {
      ASSERT_EQ(b.word(j), src[j]) << "trial " << trial << " word " << j;
    }
  }
}

TYPED_TEST(LaneBlockTest, SplatZeroOnes) {
  using Block = TypeParam;
  const std::uint64_t pattern = 0xdeadbeefcafef00dull;
  const Block s = Block::splat(pattern);
  for (std::size_t j = 0; j < Block::kWords; ++j) {
    EXPECT_EQ(s.word(j), pattern) << "word " << j;
    EXPECT_EQ(Block::zero().word(j), 0u) << "word " << j;
    EXPECT_EQ(Block::ones().word(j), ~std::uint64_t{0}) << "word " << j;
  }
  EXPECT_FALSE(Block::zero().any());
  EXPECT_TRUE(Block::ones().any());
  EXPECT_EQ(Block::zero().popcount(), 0);
  EXPECT_EQ(Block::ones().popcount(), static_cast<int>(Block::kBits));
}

TYPED_TEST(LaneBlockTest, BitwiseOpsMatchScalarPerWord) {
  using Block = TypeParam;
  OISA_TRACE_SEED(12);
  std::mt19937_64 rng(12);
  for (int trial = 0; trial < 25; ++trial) {
    std::array<std::uint64_t, Block::kWords> wa{};
    std::array<std::uint64_t, Block::kWords> wb{};
    for (auto& w : wa) w = rng();
    for (auto& w : wb) w = rng();
    const Block a = Block::load(wa.data());
    const Block b = Block::load(wb.data());
    for (std::size_t j = 0; j < Block::kWords; ++j) {
      ASSERT_EQ((a & b).word(j), wa[j] & wb[j]);
      ASSERT_EQ((a | b).word(j), wa[j] | wb[j]);
      ASSERT_EQ((a ^ b).word(j), wa[j] ^ wb[j]);
      ASSERT_EQ((~a).word(j), ~wa[j]);
    }
  }
}

TYPED_TEST(LaneBlockTest, EqualityAnyAndPopcount) {
  using Block = TypeParam;
  OISA_TRACE_SEED(13);
  std::mt19937_64 rng(13);
  for (int trial = 0; trial < 25; ++trial) {
    std::array<std::uint64_t, Block::kWords> wa{};
    for (auto& w : wa) w = rng();
    const Block a = Block::load(wa.data());
    ASSERT_TRUE(a == Block::load(wa.data()));
    ASSERT_FALSE((a ^ a).any());
    ASSERT_EQ((a ^ a).popcount(), 0);

    int expected = 0;
    for (const auto w : wa) expected += std::popcount(w);
    ASSERT_EQ(a.popcount(), expected);

    // Flip exactly one lane: equality must break, the XOR must expose
    // exactly that lane in exactly that sub-word ("any-lane-changed").
    const std::size_t lane = rng() % Block::kBits;
    auto wd = wa;
    wd[lane / 64] ^= std::uint64_t{1} << (lane % 64);
    const Block d = Block::load(wd.data());
    ASSERT_FALSE(a == d);
    const Block x = a ^ d;
    ASSERT_TRUE(x.any());
    ASSERT_EQ(x.popcount(), 1);
    for (std::size_t j = 0; j < Block::kWords; ++j) {
      ASSERT_EQ(x.word(j), j == lane / 64
                               ? std::uint64_t{1} << (lane % 64)
                               : 0u);
    }
  }
}

TYPED_TEST(LaneBlockTest, EvalGateBlockMatchesEvalGateWordEverySubWord) {
  using Block = TypeParam;
  OISA_TRACE_SEED(14);
  std::mt19937_64 rng(14);
  for (int trial = 0; trial < 20; ++trial) {
    std::array<std::uint64_t, Block::kWords> wa{};
    std::array<std::uint64_t, Block::kWords> wb{};
    std::array<std::uint64_t, Block::kWords> wc{};
    for (auto& w : wa) w = rng();
    for (auto& w : wb) w = rng();
    for (auto& w : wc) w = rng();
    const Block a = Block::load(wa.data());
    const Block b = Block::load(wb.data());
    const Block c = Block::load(wc.data());
    for (const GateKind kind : oisa::netlist::allGateKinds()) {
      const Block out = oisa::netlist::evalGateBlock(kind, a, b, c);
      for (std::size_t j = 0; j < Block::kWords; ++j) {
        ASSERT_EQ(out.word(j),
                  oisa::netlist::evalGateWord(kind, wa[j], wb[j], wc[j]))
            << "trial " << trial << " kind " << static_cast<int>(kind)
            << " word " << j;
      }
    }
  }
}

}  // namespace
