// The wide-lane proof suite: every LaneSelection this build + CPU can
// instantiate (64-lane reference, portable 256/512, AVX2 256, AVX-512
// 512) is driven against the 64-lane reference engines through the
// differential harness and must agree bit-for-bit — functional
// (BatchEvaluator), timed (LaneClockedSampler, including forceNet stuck
// clamps), and PPSFP fault detection — on random DAGs, all twelve paper
// design points and the ISCAS-85 c17 benchmark. On top of the engine
// slices, the consumer invariants: TraceCollector traces and
// fault-coverage campaign results are pure functions of the stimulus
// stream, identical at every forced width. Also pins down the
// OISA_FORCE_LANE_WIDTH parsing/dispatch contract.
#include <gtest/gtest.h>

#include <cstdlib>
#include <random>
#include <stdexcept>
#include <string>
#include <vector>

#include "circuits/synthesis.h"
#include "core/isa_config.h"
#include "experiments/trace_collector.h"
#include "experiments/workload.h"
#include "fault/coverage.h"
#include "fault/fault_universe.h"
#include "fault/ppsfp_dispatch.h"
#include "fault/timed_fault.h"
#include "netlist/bench_io.h"
#include "netlist/compiled_netlist.h"
#include "netlist/lane_width.h"
#include "timing/cell_library.h"
#include "timing/delay_annotation.h"
#include "timing/lane_dispatch.h"
#include "timing/sta.h"

#include "differential_harness.h"

namespace {

using oisa::netlist::CompiledNetlist;
using oisa::netlist::LaneArch;
using oisa::netlist::LaneSelection;
using oisa::netlist::Netlist;
using oisa::timing::CellLibrary;
using oisa::timing::DelayAnnotation;
using oisa::testing::kC17;
using oisa::testing::randomNetlist;
using oisa::testing::unitLibrary;

constexpr LaneSelection kReference{64, LaneArch::Portable};

/// The OISA_FORCE_LANE_WIDTH spelling that forces exactly `sel`.
std::string specFor(LaneSelection sel) {
  if (sel.width == 64) return "64";
  if (sel.arch == LaneArch::Portable) {
    return "portable" + std::to_string(sel.width);
  }
  return std::to_string(sel.width);
}

/// Temporarily pins OISA_FORCE_LANE_WIDTH, restoring on destruction.
class ScopedLaneWidth {
 public:
  explicit ScopedLaneWidth(const std::string& spec) {
    const char* old = std::getenv(oisa::netlist::kLaneWidthEnvVar);
    if (old != nullptr) saved_ = old;
    had_ = old != nullptr;
    ::setenv(oisa::netlist::kLaneWidthEnvVar, spec.c_str(), 1);
  }
  ~ScopedLaneWidth() {
    if (had_) {
      ::setenv(oisa::netlist::kLaneWidthEnvVar, saved_.c_str(), 1);
    } else {
      ::unsetenv(oisa::netlist::kLaneWidthEnvVar);
    }
  }
  ScopedLaneWidth(const ScopedLaneWidth&) = delete;
  ScopedLaneWidth& operator=(const ScopedLaneWidth&) = delete;

 private:
  std::string saved_;
  bool had_ = false;
};

/// Every variant except the 64-lane reference itself.
std::vector<LaneSelection> wideSelections() {
  std::vector<LaneSelection> wide;
  for (const LaneSelection sel : oisa::netlist::availableLaneSelections()) {
    if (!(sel == kReference)) wide.push_back(sel);
  }
  return wide;
}

// ---------------------------------------------------------------------------
// Dispatch contract.
// ---------------------------------------------------------------------------

TEST(LaneWidthTest, AvailableSelectionsAreWellFormed) {
  const auto available = oisa::netlist::availableLaneSelections();
  ASSERT_FALSE(available.empty());
  EXPECT_TRUE(available.front() == kReference)
      << "the 64-lane reference must always be element 0";
  for (const LaneSelection sel : available) {
    EXPECT_EQ(sel.width % 64, 0u);
    EXPECT_EQ(sel.wordsPerNet(), sel.width / 64);
    EXPECT_TRUE(oisa::netlist::cpuSupportsLaneArch(sel.arch))
        << oisa::netlist::laneSelectionName(sel);
  }
  // The default is always instantiable, and never a wide portable variant
  // (strictly more work per sweep than the reference without vector
  // units).
  const LaneSelection def = oisa::netlist::defaultLaneSelection();
  bool found = false;
  for (const LaneSelection sel : available) found = found || sel == def;
  EXPECT_TRUE(found);
  if (def.arch == LaneArch::Portable) EXPECT_EQ(def.width, 64u);
}

TEST(LaneWidthTest, ParseLaneWidthSpecContract) {
  using oisa::netlist::parseLaneWidthSpec;
  EXPECT_TRUE(parseLaneWidthSpec("64") == kReference);
  EXPECT_TRUE(parseLaneWidthSpec("portable") ==
              (LaneSelection{256, LaneArch::Portable}));
  EXPECT_TRUE(parseLaneWidthSpec("portable256") ==
              (LaneSelection{256, LaneArch::Portable}));
  EXPECT_TRUE(parseLaneWidthSpec("portable512") ==
              (LaneSelection{512, LaneArch::Portable}));
  // Forced 256/512 take the vector unit when this build + CPU has it and
  // degrade to the portable flavor otherwise — never a failure.
  const LaneSelection s256 = parseLaneWidthSpec("256");
  EXPECT_EQ(s256.width, 256u);
  EXPECT_TRUE(oisa::netlist::cpuSupportsLaneArch(s256.arch));
  const LaneSelection s512 = parseLaneWidthSpec("512");
  EXPECT_EQ(s512.width, 512u);
  EXPECT_TRUE(oisa::netlist::cpuSupportsLaneArch(s512.arch));
  for (const char* bad : {"", "128", "65", "avx2", "64 ", "wide"}) {
    EXPECT_THROW((void)parseLaneWidthSpec(bad), std::invalid_argument)
        << "spec '" << bad << "'";
  }
}

TEST(LaneWidthTest, EnvOverrideIsReadPerCall) {
  for (const LaneSelection sel : oisa::netlist::availableLaneSelections()) {
    ScopedLaneWidth env(specFor(sel));
    EXPECT_TRUE(oisa::netlist::selectLaneWidth() == sel)
        << oisa::netlist::laneSelectionName(sel);
  }
  {
    ScopedLaneWidth env("this-is-not-a-width");
    EXPECT_THROW((void)oisa::netlist::selectLaneWidth(),
                 std::invalid_argument);
  }
}

TEST(LaneWidthTest, EnginesReportTheirSelection) {
  std::mt19937_64 rng(77);
  const Netlist nl = randomNetlist(rng, 8, 30);
  const auto compiled = CompiledNetlist::compile(nl);
  const DelayAnnotation delays(nl, unitLibrary());
  for (const LaneSelection sel : oisa::netlist::availableLaneSelections()) {
    const auto evaluator = oisa::netlist::makeBatchEvaluator(compiled, sel);
    EXPECT_TRUE(evaluator->selection() == sel);
    EXPECT_EQ(evaluator->lanes(), sel.width);
    EXPECT_EQ(evaluator->wordsPerNet(), sel.wordsPerNet());
    const auto sampler = oisa::timing::makeLaneSampler(compiled, delays,
                                                       1.0, sel);
    EXPECT_TRUE(sampler->selection() == sel);
    EXPECT_EQ(sampler->lanes(), sel.width);
    const auto engine = oisa::fault::makePpsfpEngine(compiled, sel);
    EXPECT_TRUE(engine->selection() == sel);
    EXPECT_EQ(engine->lanes(), sel.width);
  }
}

// ---------------------------------------------------------------------------
// Engine bit-exactness: every wide variant vs the 64-lane reference.
// ---------------------------------------------------------------------------

TEST(LaneWidthTest, BatchEvaluatorBitExactOnRandomNetlists) {
  OISA_TRACE_SEED(1234);
  std::mt19937_64 rng(1234);
  for (int trial = 0; trial < 4; ++trial) {
    const Netlist nl = randomNetlist(rng, 12, 80);
    const auto compiled = CompiledNetlist::compile(nl);
    const auto reference =
        oisa::netlist::makeBatchEvaluator(compiled, kReference);
    for (const LaneSelection sel : wideSelections()) {
      SCOPED_TRACE("trial " + std::to_string(trial) + " " +
                   oisa::netlist::laneSelectionName(sel));
      const auto wide = oisa::netlist::makeBatchEvaluator(compiled, sel);
      oisa::testing::expectLaneBitExact(*reference, *wide, rng);
    }
  }
}

TEST(LaneWidthTest, BatchEvaluatorBitExactOnAllPaperDesignsAndC17) {
  OISA_TRACE_SEED(56);
  std::mt19937_64 rng(56);
  std::vector<std::shared_ptr<const CompiledNetlist>> compiles;
  const auto designs =
      oisa::circuits::synthesizePaperDesigns(CellLibrary::generic65(), {});
  ASSERT_EQ(designs.size(), 12u);
  for (const auto& design : designs) {
    compiles.push_back(CompiledNetlist::compile(design.netlist));
  }
  compiles.push_back(CompiledNetlist::compile(
      oisa::netlist::readBenchString(kC17, "c17")));
  for (const auto& compiled : compiles) {
    const auto reference =
        oisa::netlist::makeBatchEvaluator(compiled, kReference);
    for (const LaneSelection sel : wideSelections()) {
      SCOPED_TRACE(oisa::netlist::laneSelectionName(sel));
      const auto wide = oisa::netlist::makeBatchEvaluator(compiled, sel);
      oisa::testing::expectLaneBitExact(*reference, *wide, rng, 2);
    }
  }
}

TEST(LaneWidthTest, TimedSamplerBitExactOnRandomNetlists) {
  OISA_TRACE_SEED(909);
  std::mt19937_64 rng(909);
  for (int trial = 0; trial < 3; ++trial) {
    const Netlist nl = randomNetlist(rng, 10, 60);
    DelayAnnotation delays(nl, CellLibrary::generic65());
    delays.applyVariation(rng, 0.35);  // off-grid doubles: quantization
    const double critical = criticalDelayNs(nl, delays);
    for (const double frac : {0.4, 1.2}) {
      const double periodNs = std::max(critical * frac, 0.001);
      for (const LaneSelection sel : wideSelections()) {
        SCOPED_TRACE("trial " + std::to_string(trial) + " frac " +
                     std::to_string(frac) + " " +
                     oisa::netlist::laneSelectionName(sel));
        oisa::testing::expectLaneBitExact(CompiledNetlist::compile(nl),
                                          delays, periodNs, sel, 10, rng);
      }
    }
  }
}

TEST(LaneWidthTest, TimedSamplerBitExactOnAllPaperDesigns) {
  OISA_TRACE_SEED(4242);
  std::mt19937_64 rng(4242);
  oisa::circuits::SynthesisOptions options;
  options.relaxSlack = true;  // exercise relaxation-mutated delays
  const auto designs = oisa::circuits::synthesizePaperDesigns(
      CellLibrary::generic65(), options);
  ASSERT_EQ(designs.size(), 12u);
  const double periodNs = oisa::experiments::overclockedPeriodNs(0.3, 15.0);
  for (const auto& design : designs) {
    const auto compiled = CompiledNetlist::compile(design.netlist);
    for (const LaneSelection sel : wideSelections()) {
      SCOPED_TRACE(design.config.name() + " " +
                   oisa::netlist::laneSelectionName(sel));
      oisa::testing::expectLaneBitExact(compiled, design.delays, periodNs,
                                        sel, 6, rng);
    }
  }
}

TEST(LaneWidthTest, TimedSamplerBitExactWithStuckClampOnC17) {
  // forceNet at wide widths broadcasts the 64-bit lane mask across every
  // sub-block; a defective run must slice exactly like a healthy one.
  OISA_TRACE_SEED(31);
  std::mt19937_64 rng(31);
  const Netlist nl = oisa::netlist::readBenchString(kC17, "c17");
  const auto compiled = CompiledNetlist::compile(nl);
  const DelayAnnotation delays(nl, unitLibrary());
  oisa::fault::FaultUniverse universe(compiled);
  std::vector<oisa::fault::Fault> stems;
  for (const auto& f : universe.all()) {
    if (f.isStem()) stems.push_back(f);
  }
  ASSERT_FALSE(stems.empty());
  for (const LaneSelection sel : wideSelections()) {
    const auto& fault = stems[rng() % stems.size()];
    const std::uint64_t laneMask = rng() | 1;  // nonempty lane subset
    SCOPED_TRACE(oisa::netlist::laneSelectionName(sel));
    oisa::testing::expectLaneBitExact(
        compiled, delays, 2.5, sel, 8, rng,
        [&](oisa::timing::AnyLaneSimulator& sim) {
          oisa::fault::injectStuckAt(sim, fault, laneMask);
        });
  }
}

TEST(LaneWidthTest, PpsfpBitExactOnRandomNetlistsAndC17) {
  OISA_TRACE_SEED(777);
  std::mt19937_64 rng(777);
  std::vector<std::shared_ptr<const CompiledNetlist>> compiles;
  for (int trial = 0; trial < 3; ++trial) {
    compiles.push_back(
        CompiledNetlist::compile(randomNetlist(rng, 8, 40, 6)));
  }
  compiles.push_back(CompiledNetlist::compile(
      oisa::netlist::readBenchString(kC17, "c17")));
  for (const auto& compiled : compiles) {
    oisa::fault::FaultUniverse universe(compiled);
    const auto reference =
        oisa::fault::makePpsfpEngine(compiled, kReference);
    for (const LaneSelection sel : wideSelections()) {
      SCOPED_TRACE(oisa::netlist::laneSelectionName(sel));
      const auto wide = oisa::fault::makePpsfpEngine(compiled, sel);
      oisa::testing::expectLaneBitExact(*reference, *wide, universe.all(),
                                        rng, 4);
    }
  }
}

TEST(LaneWidthTest, PpsfpBitExactOnPaperDesigns) {
  OISA_TRACE_SEED(888);
  std::mt19937_64 rng(888);
  for (const auto cfg : {oisa::core::makeIsa(4, 1, 1, 2, 16),
                         oisa::core::makeIsa(8, 2, 1, 4)}) {
    const auto design =
        oisa::circuits::synthesize(cfg, CellLibrary::generic65(), {});
    const auto compiled = CompiledNetlist::compile(design.netlist);
    oisa::fault::FaultUniverse universe(compiled);
    const auto reference =
        oisa::fault::makePpsfpEngine(compiled, kReference);
    for (const LaneSelection sel : wideSelections()) {
      SCOPED_TRACE(design.config.name() + " " +
                   oisa::netlist::laneSelectionName(sel));
      const auto wide = oisa::fault::makePpsfpEngine(compiled, sel);
      oisa::testing::expectLaneBitExact(*reference, *wide,
                                        universe.collapsed(), rng, 2);
    }
  }
}

// ---------------------------------------------------------------------------
// Consumer invariance: traces and coverage campaigns are pure functions
// of the stimulus stream — identical output at every forced width.
// ---------------------------------------------------------------------------

TEST(LaneWidthTest, TraceCollectorInvariantAcrossWidths) {
  const auto design = oisa::circuits::synthesize(
      oisa::core::makeIsa(8, 2, 1, 4), CellLibrary::generic65(), {});
  const double periodNs = oisa::experiments::overclockedPeriodNs(0.3, 15.0);
  auto collectAt = [&](const std::string& spec) {
    ScopedLaneWidth env(spec);
    auto wl = oisa::experiments::makeWorkload("uniform", 32, 99);
    return oisa::experiments::collectTrace(design, periodNs, *wl, 391);
  };
  const auto reference = collectAt("64");
  for (const LaneSelection sel : wideSelections()) {
    SCOPED_TRACE(oisa::netlist::laneSelectionName(sel));
    const auto trace = collectAt(specFor(sel));
    ASSERT_EQ(trace.size(), reference.size());
    for (std::size_t t = 0; t < trace.size(); ++t) {
      ASSERT_EQ(trace[t].silver, reference[t].silver) << "record " << t;
      ASSERT_EQ(trace[t].silverCout, reference[t].silverCout)
          << "record " << t;
      ASSERT_EQ(trace[t].a, reference[t].a) << "record " << t;
    }
  }
}

TEST(LaneWidthTest, RandomCoverageInvariantAcrossWidths) {
  std::mt19937_64 rng(606);
  std::vector<std::shared_ptr<const CompiledNetlist>> compiles;
  compiles.push_back(CompiledNetlist::compile(
      oisa::netlist::readBenchString(kC17, "c17")));
  compiles.push_back(
      CompiledNetlist::compile(randomNetlist(rng, 8, 40, 6)));
  oisa::fault::CoverageOptions options;
  options.patterns = 300;  // not a multiple of any block width
  options.seed = 5;
  for (const auto& compiled : compiles) {
    oisa::fault::FaultUniverse universe(compiled);
    const auto refEngine =
        oisa::fault::makePpsfpEngine(compiled, kReference);
    const auto reference =
        oisa::fault::runRandomCoverage(universe, *refEngine, options);
    for (const LaneSelection sel : wideSelections()) {
      SCOPED_TRACE(oisa::netlist::laneSelectionName(sel));
      const auto engine = oisa::fault::makePpsfpEngine(compiled, sel);
      const auto result =
          oisa::fault::runRandomCoverage(universe, *engine, options);
      EXPECT_EQ(result.universeFaults, reference.universeFaults);
      EXPECT_EQ(result.collapsedClasses, reference.collapsedClasses);
      EXPECT_EQ(result.detectedClasses, reference.detectedClasses);
      EXPECT_EQ(result.patternsApplied, reference.patternsApplied);
      EXPECT_EQ(result.detected, reference.detected);
      EXPECT_EQ(result.firstDetectedAt, reference.firstDetectedAt);
    }
  }
}

}  // namespace
