// Tests for the synthesis-style cleanup transforms (constant propagation,
// alias collapsing, dead-gate elimination) and the simulation-based
// equivalence checker.
#include <gtest/gtest.h>

#include <random>

#include "circuits/isa_netlist.h"
#include "netlist/equivalence.h"
#include "netlist/evaluator.h"
#include "netlist/transform.h"

namespace {

using oisa::netlist::checkEquivalence;
using oisa::netlist::EquivalenceOptions;
using oisa::netlist::Evaluator;
using oisa::netlist::GateKind;
using oisa::netlist::Netlist;
using oisa::netlist::NetId;
using oisa::netlist::sweep;

TEST(SweepTest, FoldsFullyConstantCone) {
  Netlist nl;
  const NetId a = nl.input("a");
  const NetId c1 = nl.constant(true);
  const NetId c0 = nl.constant(false);
  const NetId x = nl.gate2(GateKind::And2, c1, c0);  // == 0
  const NetId y = nl.gate2(GateKind::Or2, x, a);     // == a
  nl.output("y", y);

  const auto result = sweep(nl);
  EXPECT_EQ(result.netlist.gateCount(), 0u);  // output aliases the input
  const Evaluator eval(result.netlist);
  EXPECT_EQ(eval.evaluateWord(0), 0u);
  EXPECT_EQ(eval.evaluateWord(1), 1u);
}

TEST(SweepTest, XorWithConstOneBecomesInverter) {
  Netlist nl;
  const NetId a = nl.input("a");
  nl.output("y", nl.gate2(GateKind::Xor2, a, nl.constant(true)));
  const auto result = sweep(nl);
  ASSERT_EQ(result.netlist.gateCount(), 1u);
  EXPECT_EQ(result.netlist.gateAt(oisa::netlist::GateId{0}).kind,
            GateKind::Inv);
}

TEST(SweepTest, MuxWithConstantSelectPicksBranch) {
  Netlist nl;
  const NetId a = nl.input("a");
  const NetId b = nl.input("b");
  nl.output("y0", nl.gate3(GateKind::Mux2, a, b, nl.constant(false)));
  nl.output("y1", nl.gate3(GateKind::Mux2, a, b, nl.constant(true)));
  const auto result = sweep(nl);
  EXPECT_EQ(result.netlist.gateCount(), 0u);
  const Evaluator eval(result.netlist);
  // y0 = a, y1 = b.
  EXPECT_EQ(eval.evaluateWord(0b01), 0b01u);
  EXPECT_EQ(eval.evaluateWord(0b10), 0b10u);
}

TEST(SweepTest, RemovesDeadLogic) {
  Netlist nl;
  const NetId a = nl.input("a");
  const NetId live = nl.gate1(GateKind::Inv, a);
  NetId dead = nl.gate1(GateKind::Inv, a);
  for (int i = 0; i < 5; ++i) dead = nl.gate1(GateKind::Buf, dead);
  nl.output("y", live);
  const auto result = sweep(nl);
  EXPECT_EQ(result.netlist.gateCount(), 1u);
  EXPECT_GE(result.deadGates + result.foldedGates, 6u);
}

// Exhaustive single-gate check: for every kind and every combination of
// {constant, variable} inputs, the swept netlist computes the same function.
TEST(SweepTest, PerGateConstantFoldingIsSound) {
  for (const GateKind kind : oisa::netlist::allGateKinds()) {
    const int arity = oisa::netlist::gateArity(kind);
    if (arity == 0) continue;
    // Each input is: 0 = variable, 1 = const0, 2 = const1.
    int combos = 1;
    for (int i = 0; i < arity; ++i) combos *= 3;
    for (int combo = 0; combo < combos; ++combo) {
      Netlist nl;
      std::vector<NetId> vars;
      std::vector<NetId> ins;
      int rest = combo;
      for (int i = 0; i < arity; ++i) {
        const int mode = rest % 3;
        rest /= 3;
        if (mode == 0) {
          vars.push_back(nl.input("v" + std::to_string(i)));
          ins.push_back(vars.back());
        } else {
          ins.push_back(nl.constant(mode == 2));
        }
      }
      nl.output("y", nl.gate(kind, ins));
      const auto result = sweep(nl);
      // Compare against the original on all variable assignments.
      const Evaluator before(nl);
      const Evaluator after(result.netlist);
      const std::uint64_t limit = std::uint64_t{1} << vars.size();
      for (std::uint64_t pattern = 0; pattern < limit; ++pattern) {
        std::vector<std::uint8_t> in(vars.size());
        for (std::size_t i = 0; i < vars.size(); ++i) {
          in[i] = static_cast<std::uint8_t>((pattern >> i) & 1u);
        }
        EXPECT_EQ(before.evaluateOutputs(in), after.evaluateOutputs(in))
            << oisa::netlist::gateName(kind) << " combo " << combo
            << " pattern " << pattern;
      }
    }
  }
}

TEST(SweepTest, IsaNetlistsSurviveSweepEquivalently) {
  for (const auto& cfg : oisa::core::paperDesigns()) {
    const Netlist original = oisa::circuits::buildIsaNetlist(cfg);
    const auto result = sweep(original);
    EXPECT_LE(result.netlist.gateCount(), original.gateCount());
    EquivalenceOptions options;
    options.randomVectors = 600;
    const auto eq = checkEquivalence(original, result.netlist, options);
    EXPECT_TRUE(eq.equivalent) << cfg.name() << ": " << eq.message;
  }
}

TEST(SweepTest, PreservesPortNamesAndOrder) {
  const auto cfg = oisa::core::makeIsa(8, 2, 1, 4);
  const Netlist original = oisa::circuits::buildIsaNetlist(cfg);
  const auto result = sweep(original);
  ASSERT_EQ(result.netlist.primaryInputs().size(),
            original.primaryInputs().size());
  ASSERT_EQ(result.netlist.primaryOutputs().size(),
            original.primaryOutputs().size());
  for (std::size_t i = 0; i < original.primaryInputs().size(); ++i) {
    EXPECT_EQ(result.netlist.net(result.netlist.primaryInputs()[i]).name,
              original.net(original.primaryInputs()[i]).name);
  }
  for (std::size_t i = 0; i < original.primaryOutputs().size(); ++i) {
    EXPECT_EQ(result.netlist.outputName(i), original.outputName(i));
  }
}

TEST(EquivalenceTest, DetectsSingleGateDifference) {
  Netlist a, b;
  {
    const NetId x = a.input("x");
    const NetId y = a.input("y");
    a.output("z", a.gate2(GateKind::And2, x, y));
  }
  {
    const NetId x = b.input("x");
    const NetId y = b.input("y");
    b.output("z", b.gate2(GateKind::Or2, x, y));
  }
  const auto result = checkEquivalence(a, b);
  EXPECT_FALSE(result.equivalent);
  ASSERT_TRUE(result.counterexample.has_value());
  EXPECT_NE(result.message.find("mismatch"), std::string::npos);
}

TEST(EquivalenceTest, ExhaustiveForSmallCircuits) {
  Netlist a, b;
  {
    const NetId x = a.input("x");
    a.output("z", a.gate1(GateKind::Inv, a.gate1(GateKind::Inv, x)));
  }
  {
    const NetId x = b.input("x");
    b.output("z", b.gate1(GateKind::Buf, x));
  }
  const auto result = checkEquivalence(a, b);
  EXPECT_TRUE(result.equivalent);
  EXPECT_EQ(result.vectorsTried, 2u);
  EXPECT_NE(result.message.find("exhaustive"), std::string::npos);
}

TEST(EquivalenceTest, RejectsPortShapeMismatch) {
  Netlist a, b;
  a.output("z", a.gate1(GateKind::Inv, a.input("x")));
  const NetId x = b.input("x");
  const NetId y = b.input("y");
  b.output("z", b.gate2(GateKind::And2, x, y));
  const auto result = checkEquivalence(a, b);
  EXPECT_FALSE(result.equivalent);
  EXPECT_EQ(result.message, "port shape mismatch");
}

TEST(EquivalenceTest, FindsRareMismatchViaCornerPatterns) {
  // Two 20-input functions that differ only near the all-ones vector (a
  // ~1e-6 density): random vectors alone would likely miss it; the
  // directed corner patterns must catch it.
  Netlist a, b;
  {
    std::vector<NetId> ins;
    for (int i = 0; i < 20; ++i) ins.push_back(a.input("i" + std::to_string(i)));
    a.output("z", oisa::circuits::andTree(a, ins));
  }
  {
    std::vector<NetId> ins;
    for (int i = 0; i < 20; ++i) ins.push_back(b.input("i" + std::to_string(i)));
    // AND of the first 19 with the last input inverted.
    std::vector<NetId> most(ins.begin(), ins.end() - 1);
    most.push_back(b.gate1(GateKind::Inv, ins.back()));
    b.output("z", oisa::circuits::andTree(b, most));
  }
  EquivalenceOptions options;
  options.randomVectors = 10;
  const auto result = checkEquivalence(a, b, options);
  EXPECT_FALSE(result.equivalent);
}

}  // namespace
