// Cross-module integration odds and ends: swept netlists through the timed
// simulator, overclocked multipliers, VCD capture of a sampler run, CSV
// file output, report formatting.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <random>
#include <sstream>

#include "circuits/multiplier_netlist.h"
#include "circuits/synthesis.h"
#include "core/isa_multiplier.h"
#include "experiments/report.h"
#include "netlist/equivalence.h"
#include "netlist/transform.h"
#include "timing/event_sim.h"
#include "timing/sta.h"
#include "timing/vcd.h"

namespace {

using oisa::circuits::packMultiplierOperands;
using oisa::circuits::packOperands;
using oisa::circuits::unpackProduct;
using oisa::netlist::checkEquivalence;
using oisa::netlist::sweep;
using oisa::timing::CellLibrary;
using oisa::timing::ClockedSampler;
using oisa::timing::DelayAnnotation;

TEST(MiscIntegrationTest, SweptSpeculateHighNetlistStaysEquivalent) {
  oisa::core::IsaConfig cfg = oisa::core::makeIsa(8, 2, 1, 4);
  cfg.speculateHigh = true;
  const auto original = oisa::circuits::buildIsaNetlist(cfg);
  const auto swept = sweep(original);
  oisa::netlist::EquivalenceOptions options;
  options.randomVectors = 500;
  const auto eq = checkEquivalence(original, swept.netlist, options);
  EXPECT_TRUE(eq.equivalent) << eq.message;
}

TEST(MiscIntegrationTest, SweptMultiplierStaysEquivalent) {
  const auto cfg = oisa::core::MultiplierConfig::make(8, 8, 0, 0, 4);
  const auto original = oisa::circuits::buildMultiplierNetlist(cfg);
  const auto swept = sweep(original);
  // The multiplier uses constant zero fills: sweep must shrink it.
  EXPECT_LT(swept.netlist.gateCount(), original.gateCount());
  oisa::netlist::EquivalenceOptions options;
  options.randomVectors = 500;
  const auto eq = checkEquivalence(original, swept.netlist, options);
  EXPECT_TRUE(eq.equivalent) << eq.message;
}

TEST(MiscIntegrationTest, SweptNetlistSimulatesIdentically) {
  // Timed simulation of the swept netlist at a generous clock matches the
  // behavioral model (the sweep preserves function, not just statics).
  const auto cfg = oisa::core::makeIsa(16, 2, 1, 6);
  const auto original = oisa::circuits::buildIsaNetlist(cfg);
  const auto swept = sweep(original);
  const CellLibrary lib = CellLibrary::generic65();
  const DelayAnnotation delays(swept.netlist, lib);
  ClockedSampler sampler(swept.netlist, delays, 5.0);
  const oisa::core::IsaAdder behavioral(cfg);
  std::mt19937_64 rng(3);
  sampler.initialize(packOperands(rng(), rng(), false, 32));
  for (int i = 0; i < 100; ++i) {
    const std::uint64_t a = rng();
    const std::uint64_t b = rng();
    const auto out = sampler.step(packOperands(a, b, false, 32));
    EXPECT_EQ(oisa::circuits::unpackSum(out, 32), behavioral.add(a, b).sum);
  }
}

TEST(MiscIntegrationTest, OverclockedMultiplierProducesTimingErrors) {
  // An aggressive clock on the (much deeper) multiplier produces timing
  // errors on top of its structural ones.
  const auto cfg = oisa::core::MultiplierConfig::make(8, 8, 0, 0, 4);
  const auto nl = oisa::circuits::buildMultiplierNetlist(cfg);
  const CellLibrary lib = CellLibrary::generic65();
  const DelayAnnotation delays(nl, lib);
  const double critical = criticalDelayNs(nl, delays);
  EXPECT_GT(critical, 0.3) << "8 chained row adders must exceed one adder";

  const oisa::core::IsaMultiplier behavioral(cfg);
  ClockedSampler sampler(nl, delays, critical * 0.7);
  std::mt19937_64 rng(7);
  sampler.initialize(packMultiplierOperands(rng() & 0xff, rng() & 0xff, 8));
  int timingErrors = 0;
  for (int i = 0; i < 400; ++i) {
    const std::uint64_t a = rng() & 0xffu;
    const std::uint64_t b = rng() & 0xffu;
    const auto out = sampler.step(packMultiplierOperands(a, b, 8));
    if (unpackProduct(out, 8) != behavioral.multiply(a, b)) ++timingErrors;
  }
  EXPECT_GT(timingErrors, 0);
}

TEST(MiscIntegrationTest, VcdCapturesSamplerRun) {
  const auto design = synthesize(oisa::core::makeIsa(8, 0, 0, 4),
                                 CellLibrary::generic65(),
                                 oisa::circuits::SynthesisOptions{});
  oisa::timing::VcdWriter vcd =
      oisa::timing::VcdWriter::forPorts(design.netlist);
  ClockedSampler sampler(design.netlist, design.delays, 0.255);
  sampler.simulator().setChangeObserver(
      [&](double t, oisa::netlist::NetId net, bool v) {
        vcd.record(t, net, v);
      });
  std::mt19937_64 rng(11);
  sampler.initialize(packOperands(rng(), rng(), false, 32));
  for (int i = 0; i < 20; ++i) {
    (void)sampler.step(packOperands(rng(), rng(), false, 32));
  }
  EXPECT_GT(vcd.changeCount(), 100u);
  std::ostringstream os;
  vcd.write(os);
  EXPECT_GT(os.str().size(), 1000u);
}

TEST(MiscIntegrationTest, CsvFileRoundTrip) {
  oisa::experiments::Table table({"k", "v"});
  table.addRow({"a", "1"});
  table.addRow({"b", "2"});
  const std::string path = "/tmp/oisa_csv_test.csv";
  table.writeCsvFile(path);
  std::ifstream in(path);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_EQ(content, "k,v\na,1\nb,2\n");
  std::remove(path.c_str());
  EXPECT_THROW(table.writeCsvFile("/nonexistent-dir/x.csv"),
               std::runtime_error);
}

TEST(MiscIntegrationTest, CriticalPathReportNamesEndpointStages) {
  const auto design = synthesize(oisa::core::makeExact(32),
                                 CellLibrary::generic65(),
                                 oisa::circuits::SynthesisOptions{});
  const auto sta =
      analyze(design.netlist, design.delays, 0.3);
  const std::string report = formatCriticalPath(design.netlist, sta);
  EXPECT_NE(report.find("critical path ("), std::string::npos);
  EXPECT_NE(report.find("stages"), std::string::npos);
  // The deepest stage count of a 32-bit prefix adder is > 5.
  EXPECT_GT(sta.criticalPath.size(), 5u);
}

TEST(MiscIntegrationTest, RelaxedDesignKeepsFunctionalEquivalence) {
  // Slack relaxation changes delays only, never logic.
  oisa::circuits::SynthesisOptions plain;
  oisa::circuits::SynthesisOptions relaxed;
  relaxed.relaxSlack = true;
  const auto a = synthesize(oisa::core::makeIsa(16, 2, 0, 4),
                            CellLibrary::generic65(), plain);
  const auto b = synthesize(oisa::core::makeIsa(16, 2, 0, 4),
                            CellLibrary::generic65(), relaxed);
  oisa::netlist::EquivalenceOptions options;
  options.randomVectors = 300;
  EXPECT_TRUE(checkEquivalence(a.netlist, b.netlist, options).equivalent);
  // But the relaxed one is slower (slack consumed).
  EXPECT_GT(b.criticalDelayNs, a.criticalDelayNs - 1e-12);
}

}  // namespace
