// Analytic-model tests: closed-form fault probabilities and error
// statistics against Monte-Carlo measurements of the behavioral adder.
#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "core/analysis.h"
#include "core/isa_adder.h"

namespace {

using oisa::core::carryProbability;
using oisa::core::correctionProbability;
using oisa::core::expectedStructuralErrorApprox;
using oisa::core::faultProbability;
using oisa::core::IsaAdder;
using oisa::core::IsaConfig;
using oisa::core::makeIsa;
using oisa::core::meanFaultsPerAddition;
using oisa::core::PathTrace;
using oisa::core::sampleStructuralErrors;
using oisa::core::structuralErrorRateApprox;

TEST(AnalysisTest, CarryProbabilityClosedForm) {
  EXPECT_DOUBLE_EQ(carryProbability(0), 0.0);
  EXPECT_DOUBLE_EQ(carryProbability(1), 0.25);
  EXPECT_DOUBLE_EQ(carryProbability(2), 0.375);
  EXPECT_NEAR(carryProbability(30), 0.5, 1e-8);
}

TEST(AnalysisTest, CarryProbabilityMatchesMonteCarlo) {
  std::mt19937_64 rng(3);
  const int n = 200000;
  std::vector<int> counts(9, 0);
  for (int i = 0; i < n; ++i) {
    const std::uint64_t a = rng() & 0xffu;
    const std::uint64_t b = rng() & 0xffu;
    const std::uint64_t carries = (a + b) ^ a ^ b;  // carry into each bit
    for (int j = 1; j <= 8; ++j) {
      counts[j] += static_cast<int>((carries >> j) & 1u);
    }
  }
  for (int j = 1; j <= 8; ++j) {
    const double measured = static_cast<double>(counts[j]) / n;
    EXPECT_NEAR(measured, carryProbability(j), 0.005) << "bit " << j;
  }
}

TEST(AnalysisTest, FaultProbabilityMatchesMonteCarlo) {
  const std::uint64_t n = 100000;
  for (const IsaConfig& cfg :
       {makeIsa(8, 0, 0, 0), makeIsa(8, 2, 0, 0), makeIsa(16, 1, 0, 0),
        makeIsa(16, 7, 0, 0), makeIsa(4, 1, 0, 0, 16)}) {
    const auto mc = sampleStructuralErrors(cfg, n, 5);
    ASSERT_EQ(mc.pathFaults.size(),
              static_cast<std::size_t>(cfg.pathCount()));
    for (int p = 0; p < cfg.pathCount(); ++p) {
      EXPECT_NEAR(mc.faultRate(p), faultProbability(cfg, p), 0.01)
          << cfg.name() << " path " << p;
    }
    EXPECT_THROW((void)mc.faultRate(cfg.pathCount()), std::invalid_argument);
  }
}

TEST(AnalysisTest, FaultProbabilityBasics) {
  const auto cfg = makeIsa(8, 0, 0, 0);
  EXPECT_DOUBLE_EQ(faultProbability(cfg, 0), 0.0);
  // S=0: fault iff a carry crosses the boundary.
  EXPECT_DOUBLE_EQ(faultProbability(cfg, 1), carryProbability(8));
  // Wider windows reduce fault probability by 2^-S.
  const auto spec2 = makeIsa(8, 2, 0, 0);
  EXPECT_DOUBLE_EQ(faultProbability(spec2, 1),
                   0.25 * carryProbability(6));
  EXPECT_THROW((void)faultProbability(cfg, 7), std::invalid_argument);
  EXPECT_DOUBLE_EQ(faultProbability(oisa::core::makeExact(32), 0), 0.0);
}

TEST(AnalysisTest, MeanFaultsIsLinearInPathProbabilities) {
  const auto cfg = makeIsa(8, 0, 0, 0);
  double sum = 0.0;
  for (int p = 1; p < cfg.pathCount(); ++p) sum += faultProbability(cfg, p);
  EXPECT_DOUBLE_EQ(meanFaultsPerAddition(cfg), sum);
  EXPECT_DOUBLE_EQ(meanFaultsPerAddition(oisa::core::makeExact(32)), 0.0);
}

TEST(AnalysisTest, MeanFaultsMatchesMonteCarlo) {
  const std::uint64_t n = 100000;
  for (const IsaConfig& cfg : oisa::core::paperDesigns()) {
    if (cfg.exact) continue;
    const auto mc = sampleStructuralErrors(cfg, n, 7);
    EXPECT_NEAR(mc.meanFaultsPerAddition(), meanFaultsPerAddition(cfg), 0.02)
        << cfg.name();
  }
}

TEST(AnalysisTest, CorrectionProbabilityMatchesMonteCarlo) {
  // Fraction of faults repaired by correction: 1 - 2^-C.
  std::mt19937_64 rng(9);
  const auto cfg = makeIsa(8, 0, 2, 0);
  const IsaAdder isa(cfg);
  std::vector<PathTrace> traces;
  int faults = 0, corrected = 0;
  for (int i = 0; i < 200000; ++i) {
    (void)isa.addTraced(rng(), rng(), false, traces);
    for (const PathTrace& t : traces) {
      if (t.faultDirection != 0) {
        ++faults;
        corrected += t.corrected ? 1 : 0;
      }
    }
  }
  ASSERT_GT(faults, 1000);
  EXPECT_NEAR(static_cast<double>(corrected) / faults,
              correctionProbability(cfg), 0.02);
  EXPECT_DOUBLE_EQ(correctionProbability(makeIsa(8, 0, 0, 4)), 0.0);
  EXPECT_DOUBLE_EQ(correctionProbability(makeIsa(8, 0, 1, 0)), 0.5);
}

TEST(AnalysisTest, ErrorRateApproxTracksMonteCarlo) {
  const std::uint64_t n = 100000;
  for (const IsaConfig& cfg :
       {makeIsa(8, 0, 0, 0), makeIsa(8, 0, 1, 0), makeIsa(16, 2, 0, 0),
        makeIsa(16, 2, 1, 0)}) {
    const auto mc = sampleStructuralErrors(cfg, n, 11);
    const double measured = mc.errors.errorRate();
    const double predicted = structuralErrorRateApprox(cfg);
    // Cross-boundary correlation makes this approximate: allow 10% rel.
    EXPECT_NEAR(measured, predicted, 0.1 * predicted + 0.005) << cfg.name();
  }
}

TEST(AnalysisTest, ExpectedErrorApproxTracksMonteCarlo) {
  const std::uint64_t n = 200000;
  for (const IsaConfig& cfg :
       {makeIsa(8, 0, 0, 0), makeIsa(8, 0, 0, 4), makeIsa(16, 1, 0, 2)}) {
    const auto mc = sampleStructuralErrors(cfg, n, 13);
    const double measured = mc.errors.mean();
    const double predicted = expectedStructuralErrorApprox(cfg);
    EXPECT_LT(measured, 0.0);
    EXPECT_LT(predicted, 0.0);
    // Post-fault sum distributions are approximated as uniform: 25% rel.
    EXPECT_NEAR(measured, predicted, std::abs(predicted) * 0.25)
        << cfg.name();
  }
}

TEST(AnalysisTest, WiderWindowsMonotonicallyReduceFaultRate) {
  for (int s = 1; s <= 7; ++s) {
    EXPECT_LT(faultProbability(makeIsa(8, s, 0, 0), 1),
              faultProbability(makeIsa(8, s - 1, 0, 0), 1));
  }
}

}  // namespace
